// Command pyroute is the scale-out front tier: an HTTP router that
// consistent-hashes MiniPy programs across N pyserve replicas and keeps
// serving while individual replicas crash, wedge, drain, or shed. The
// routing engine lives in internal/route; this command is flag parsing
// and wiring.
//
// Usage:
//
//	pyroute -backends http://h1:8042,http://h2:8042,http://h3:8042 \
//	        [-addr :8040] [-max-attempts 3] [-hedge] [-probe-interval 1s]
//	pyroute -backends-file /etc/pyroute/backends [-addr :8040]
//
// With -backends-file, the fleet can be reconfigured without a restart:
// edit the file (one backend URL per line, # comments) and send the
// process SIGHUP — the router swaps the backend set in place, draining
// in-flight requests on removed nodes. PUT /v1/admin/backends does the
// same over HTTP.
//
// Endpoints:
//
//	POST /v1/run            route one program to its backend (with
//	                        health-aware failover, bounded retries,
//	                        optional hedging)
//	GET  /v1/metrics        fleet-wide Prometheus exposition: router
//	                        counters plus the summed backend families
//	GET  /v1/healthz        router liveness + per-backend health states
//	GET  /v1/readyz         same: a router is ready exactly when it can
//	                        route
//	GET  /v1/admin/backends current fleet, including removed nodes still
//	                        draining
//	PUT  /v1/admin/backends replace the backend set at runtime
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/route"
	"repro/internal/telemetry"
)

func run() int {
	var (
		addr           = flag.String("addr", ":8040", "listen address")
		backends       = flag.String("backends", "", "comma-separated pyserve base URLs")
		backendsFile   = flag.String("backends-file", "", "file with one pyserve base URL per line (# comments); SIGHUP re-reads it and reconfigures the fleet without a restart")
		timeout        = flag.Duration("timeout", 30*time.Second, "per-attempt upstream timeout")
		probeInterval  = flag.Duration("probe-interval", time.Second, "active health probe interval")
		failThreshold  = flag.Int("fail-threshold", 3, "consecutive connect failures before ejection")
		readmitAfter   = flag.Duration("readmit-after", 2*time.Second, "ejection cooldown before a half-open trial")
		maxAttempts    = flag.Int("max-attempts", 3, "attempts per request including the first")
		retryRatio     = flag.Float64("retry-ratio", 0.2, "retry budget: tokens earned per incoming request")
		hedge          = flag.Bool("hedge", false, "enable tail-latency hedging (duplicates slow requests)")
		hedgeQuantile  = flag.Float64("hedge-quantile", 0.95, "latency quantile that arms the hedge timer")
		metricsTimeout = flag.Duration("metrics-timeout", time.Second, "per-backend deadline for the fleet /v1/metrics aggregation")
	)
	flag.Parse()

	urls := splitBackends(*backends)
	if *backendsFile != "" {
		fileURLs, err := readBackendsFile(*backendsFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pyroute:", err)
			return 2
		}
		urls = append(urls, fileURLs...)
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "pyroute: -backends or -backends-file is required (pyserve URLs)")
		return 2
	}

	reg := telemetry.NewRegistry()
	rt, err := route.New(route.Config{
		Backends:         urls,
		UpstreamTimeout:  *timeout,
		ProbeInterval:    *probeInterval,
		FailThreshold:    *failThreshold,
		ReadmitAfter:     *readmitAfter,
		MaxAttempts:      *maxAttempts,
		RetryBudgetRatio: *retryRatio,
		Hedge:            *hedge,
		HedgeQuantile:    *hedgeQuantile,
		MetricsTimeout:   *metricsTimeout,
		Metrics:          route.NewMetrics(reg, urls),
		Logw:             os.Stderr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pyroute:", err)
		return 2
	}
	defer rt.Close()

	if *backendsFile != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				next, err := readBackendsFile(*backendsFile)
				if err != nil {
					fmt.Fprintln(os.Stderr, "pyroute: SIGHUP:", err)
					continue
				}
				added, removed, err := rt.Reconfigure(next)
				if err != nil {
					fmt.Fprintln(os.Stderr, "pyroute: SIGHUP reconfigure:", err)
					continue
				}
				fmt.Fprintf(os.Stderr, "pyroute: SIGHUP: fleet now %d backends (+%v -%v)\n",
					len(next), added, removed)
			}
		}()
	}

	fmt.Fprintf(os.Stderr, "pyroute: listening on %s, routing to %d backends\n", *addr, len(urls))
	if err := http.ListenAndServe(*addr, rt.Mux()); err != nil {
		fmt.Fprintln(os.Stderr, "pyroute:", err)
		return 1
	}
	return 0
}

// splitBackends parses the -backends flag, tolerating blanks and
// trailing slashes.
func splitBackends(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// readBackendsFile reads one backend URL per line; blank lines and
// #-comments are skipped.
func readBackendsFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("backends file: %w", err)
	}
	var out []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, strings.TrimRight(line, "/"))
	}
	return out, nil
}

func main() { os.Exit(run()) }
