// Command pyexp reproduces the paper's tables and figures.
//
// Usage:
//
//	pyexp -exp fig4a [-scale 0.125] [-quick] [-paper] [-csv] [-bench a,b,c]
//	pyexp -list
//	pyexp -exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment id (see -list) or 'all'")
	list := flag.Bool("list", false, "list experiment ids")
	scale := flag.Float64("scale", 0.125, "capacity scale factor for caches and nurseries")
	quick := flag.Bool("quick", false, "smaller benchmark sets and fewer sweep points")
	paper := flag.Bool("paper", false, "use the paper's 2-warmup/3-measurement protocol")
	csv := flag.Bool("csv", false, "CSV output")
	benches := flag.String("bench", "", "comma-separated benchmark override")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			e, _ := experiments.Get(id)
			fmt.Printf("%-12s %s\n", id, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: pyexp -exp <id>|all  (use -list to enumerate)")
		os.Exit(2)
	}
	opts := &experiments.Options{
		W:     os.Stdout,
		Scale: *scale,
		Quick: *quick,
		Paper: *paper,
		CSV:   *csv,
	}
	if *benches != "" {
		opts.Benchmarks = strings.Split(*benches, ",")
	}
	if err := experiments.Run(*exp, opts); err != nil {
		fmt.Fprintln(os.Stderr, "pyexp:", err)
		os.Exit(1)
	}
}
