// Command pyload is the serving-stack load generator: it drives a mixed
// MiniPy corpus (compute kernels + generated programs, each stamped with
// its fresh-runner expectation) against a /v1/run endpoint and emits a
// JSON report — latency distribution (p50/p90/p99), throughput, outcome
// counts, wrong-answer count, and an error-budget verdict.
//
// With -baseline the same corpus is also driven against a second
// endpoint (typically a single pyserve, to measure a router's overhead)
// and the report carries both runs plus the p50/p99 deltas.
//
// Usage:
//
//	pyload -target http://router:8040 [-baseline http://pyserve:8042]
//	       [-n 200] [-c 8] [-corpus 24] [-seed 1] [-budget 0]
//	       [-by-ref] [-o report.json]
//
// With -by-ref the corpus is registered with the target's
// POST /v1/programs first and every request ships a programRef instead
// of inline source — the content-addressed program-store path.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/interp"
	"repro/internal/load"
)

// comparison is the two-run report shape emitted when -baseline is set.
type comparison struct {
	Target   *load.Report `json:"target"`
	Baseline *load.Report `json:"baseline,omitempty"`
	// Overhead deltas of target over baseline, in percent (p50 and p99).
	OverheadP50Pct float64 `json:"overheadP50Pct,omitempty"`
	OverheadP99Pct float64 `json:"overheadP99Pct,omitempty"`
}

func run() int {
	var (
		target   = flag.String("target", "", "base URL of the tier under test (required)")
		baseline = flag.String("baseline", "", "optional second base URL to compare against (overhead measurement)")
		n        = flag.Int("n", 200, "total requests per run")
		c        = flag.Int("c", 8, "concurrent in-flight requests")
		corpusN  = flag.Int("corpus", 24, "corpus size (compute kernels + generated programs)")
		seed     = flag.Uint64("seed", 1, "corpus generation and walk seed")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		budget   = flag.Float64("budget", 0, "allowed unbudgeted-failure ratio (error budget)")
		byRef    = flag.Bool("by-ref", false, "register the corpus via POST /v1/programs first and drive run-by-reference requests (programRef instead of inline src)")
		minServe = flag.Float64("min-served", 0.9, "minimum fraction of requests actually served (ok or python_error) for the run to pass; budgeted rejections are within contract but a mostly-rejected run is not a usable measurement")
		out      = flag.String("o", "", "write the JSON report here (default stdout)")
	)
	flag.Parse()
	if *target == "" {
		fmt.Fprintln(os.Stderr, "pyload: -target is required")
		return 2
	}

	// Reference limits for corpus stamping. The step budget doubles as
	// a cost cap: generated programs that would run long trip it on the
	// reference runner and are dropped from the corpus, keeping
	// per-request work in the low milliseconds.
	lim := interp.Limits{
		MaxSteps:       2_000_000,
		MaxHeapBytes:   64 << 20,
		Deadline:       2 * time.Second,
		MaxOutputBytes: 1 << 20,
	}
	fmt.Fprintf(os.Stderr, "pyload: building %d-program corpus (seed %d)\n", *corpusN, *seed)
	corpus := load.MixedCorpus(*corpusN, *seed, lim)
	if len(corpus) == 0 {
		fmt.Fprintln(os.Stderr, "pyload: corpus generation produced nothing")
		return 1
	}

	drive := func(url string) (*load.Report, error) {
		fmt.Fprintf(os.Stderr, "pyload: %d requests x %d concurrent -> %s\n", *n, *c, url)
		return load.Run(load.Config{
			Target:              url,
			Corpus:              corpus,
			Concurrency:         *c,
			Requests:            *n,
			Timeout:             *timeout,
			Seed:                *seed,
			AllowedFailureRatio: *budget,
			ByRef:               *byRef,
		})
	}

	rep, err := drive(*target)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pyload:", err)
		return 1
	}
	cmp := &comparison{Target: rep}
	if *baseline != "" {
		base, err := drive(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pyload:", err)
			return 1
		}
		cmp.Baseline = base
		if base.Latency.P50Ms > 0 {
			cmp.OverheadP50Pct = 100 * (rep.Latency.P50Ms - base.Latency.P50Ms) / base.Latency.P50Ms
		}
		if base.Latency.P99Ms > 0 {
			cmp.OverheadP99Pct = 100 * (rep.Latency.P99Ms - base.Latency.P99Ms) / base.Latency.P99Ms
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pyload:", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(cmp); err != nil {
		fmt.Fprintln(os.Stderr, "pyload:", err)
		return 1
	}

	verdict := func(name string, r *load.Report) (ok bool) {
		served := float64(r.Outcomes["ok"]+r.Outcomes["python_error"]) / float64(r.Requests)
		switch {
		case r.WrongAnswers != 0:
			fmt.Fprintf(os.Stderr, "pyload: FAIL (%s: %d wrong answers)\n", name, r.WrongAnswers)
		case !r.WithinBudget:
			fmt.Fprintf(os.Stderr, "pyload: FAIL (%s: unbudgeted failure ratio %.3f exceeds budget %.3f)\n", name, r.FailureRatio, r.AllowedFailureRatio)
		case served < *minServe:
			// A run where most requests were rejected (shed, no backends)
			// is within the error budget but measures nothing.
			fmt.Fprintf(os.Stderr, "pyload: FAIL (%s: only %.0f%% of requests served, floor %.0f%%; outcomes %v)\n", name, 100*served, 100**minServe, r.Outcomes)
		default:
			return true
		}
		return false
	}
	ok := verdict("target", rep)
	if cmp.Baseline != nil {
		ok = verdict("baseline", cmp.Baseline) && ok
	}
	if !ok {
		return 1
	}
	fmt.Fprintln(os.Stderr, "pyload: ok")
	return 0
}

func main() { os.Exit(run()) }
