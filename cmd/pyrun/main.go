// Command pyrun executes a MiniPy program or a named suite benchmark on a
// chosen run-time configuration, printing the program's output and
// optionally run statistics.
//
// Usage:
//
//	pyrun [-mode cpython|pypy-nojit|pypy-jit|v8like] [-stats] [-core simple|ooo|none]
//	      [-nursery bytes] (-bench name | file.py)
//	pyrun -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/pybench"
	"repro/internal/runtime"
)

func main() {
	mode := flag.String("mode", "cpython", "runtime mode: cpython, pypy-nojit, pypy-jit, v8like")
	bench := flag.String("bench", "", "run a named suite benchmark instead of a file")
	list := flag.Bool("list", false, "list suite benchmarks and exit")
	stats := flag.Bool("stats", false, "print run statistics")
	coreKind := flag.String("core", "none", "core model: simple, ooo, none")
	nursery := flag.Uint64("nursery", runtime.DefaultNursery, "nursery size in bytes (generational modes)")
	maxBytecodes := flag.Uint64("max-bytecodes", 0, "abort after this many bytecodes (0 = unlimited)")
	flag.Parse()

	if *list {
		for _, b := range pybench.All() {
			fmt.Println(b.Name)
		}
		return
	}

	m, err := runtime.ParseMode(*mode)
	if err != nil {
		fatal(err)
	}

	var name, src string
	switch {
	case *bench != "":
		b, err := pybench.ByName(*bench)
		if err != nil {
			fatal(err)
		}
		name, src = b.Name, b.Source
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		name, src = flag.Arg(0), string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: pyrun [flags] (-bench name | file.py); see -h")
		os.Exit(2)
	}

	cfg := runtime.DefaultConfig(m)
	cfg.NurseryBytes = *nursery
	cfg.Stdout = os.Stdout
	cfg.MaxBytecodes = *maxBytecodes
	switch *coreKind {
	case "simple":
		cfg.Core = runtime.SimpleCore
	case "ooo":
		cfg.Core = runtime.OOOCore
	case "none":
		cfg.Core = runtime.CountOnly
		cfg.Warmups = 0
		cfg.Measures = 1
	default:
		fatal(fmt.Errorf("unknown core %q", *coreKind))
	}

	r, err := runtime.NewRunner(cfg)
	if err != nil {
		fatal(err)
	}
	res, err := r.Run(name, src)
	if err != nil {
		fatal(err)
	}

	if *stats {
		fmt.Fprintf(os.Stderr, "\n== %s on %s ==\n", name, m)
		if cfg.Core != runtime.CountOnly {
			fmt.Fprintf(os.Stderr, "cycles=%d instrs=%d CPI=%.3f LLC-miss=%.2f%% L1D-miss=%.2f%%\n",
				res.Cycles, res.Instrs, res.CPI, res.LLCMissRate*100, res.L1DMissRate*100)
		}
		if cfg.Core == runtime.SimpleCore {
			fmt.Fprintln(os.Stderr, res.Breakdown.String())
		}
		fmt.Fprintf(os.Stderr, "gc: allocs=%d bytes=%d minor=%d major=%d copied=%d\n",
			res.GC.Allocations, res.GC.BytesAlloc, res.GC.MinorGCs, res.GC.MajorGCs, res.GC.BytesCopied)
		if res.JIT != nil {
			fmt.Fprintf(os.Stderr, "jit: %+v\n", *res.JIT)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pyrun:", err)
	os.Exit(1)
}
