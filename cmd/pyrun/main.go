// Command pyrun executes a MiniPy program or a named suite benchmark on a
// chosen run-time configuration, printing the program's output and
// optionally run statistics.
//
// Usage:
//
//	pyrun [-mode cpython|pypy-nojit|pypy-jit|v8like] [-stats] [-core simple|ooo|none]
//	      [-nursery bytes] [-quick] [-max-steps n] [-max-heap bytes]
//	      [-timeout dur] [-max-output bytes] (-bench name | file.py)
//	pyrun -list
//
// Exit status: 0 success, 1 Python error, 2 usage error, 3 internal VM
// error, 4 step/deadline limit (TimeoutError), 5 memory limit
// (MemoryError), 6 recursion limit (RecursionError), 7 output limit
// (OutputLimitError).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/interp"
	"repro/internal/pybench"
	"repro/internal/runtime"
	"repro/internal/supervise"
)

// Exit statuses shared with the serving layer: supervise.Class defines
// the error-to-code mapping (0 success, 1 Python error, 3 internal, 4-7
// limit trips); 2 is the CLI-only usage-error code.
const (
	exitPyError = 1
	exitUsage   = 2
)

// exitCode maps a runner error to the command's exit status through the
// supervisor's classifier, so pyrun and pyserve agree byte-for-byte.
func exitCode(err error) int {
	return supervise.Classify(err).ExitCode()
}

// run is the whole command, parameterized over args and output streams so
// tests can drive it in-process. It returns the exit status.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pyrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	mode := fs.String("mode", "cpython", "runtime mode: cpython, pypy-nojit, pypy-jit, v8like")
	bench := fs.String("bench", "", "run a named suite benchmark instead of a file")
	list := fs.Bool("list", false, "list suite benchmarks and exit")
	stats := fs.Bool("stats", false, "print run statistics")
	coreKind := fs.String("core", "none", "core model: simple, ooo, none")
	nursery := fs.Uint64("nursery", runtime.DefaultNursery, "nursery size in bytes (generational modes)")
	maxBytecodes := fs.Uint64("max-bytecodes", 0, "abort after this many bytecodes (0 = unlimited)")
	quick := fs.Bool("quick", false, "skip the warmup protocol (one measured run)")
	maxSteps := fs.Uint64("max-steps", 0, "step budget per run in bytecodes; exceeding raises TimeoutError (0 = unlimited)")
	maxHeap := fs.Uint64("max-heap", 0, "live-heap cap in bytes; exceeding raises MemoryError (0 = unlimited)")
	timeout := fs.Duration("timeout", 0, "wall-clock deadline per run; exceeding raises TimeoutError (0 = none)")
	maxRecur := fs.Int("max-recursion", 0, "call-depth cap; exceeding raises RecursionError (0 = default valve)")
	maxOutput := fs.Uint64("max-output", 0, "output cap in bytes; exceeding raises OutputLimitError (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "pyrun:", err)
		return exitPyError
	}

	if *list {
		for _, b := range pybench.All() {
			fmt.Fprintln(stdout, b.Name)
		}
		return 0
	}

	m, err := runtime.ParseMode(*mode)
	if err != nil {
		return fail(err)
	}

	var name, src string
	switch {
	case *bench != "":
		b, err := pybench.ByName(*bench)
		if err != nil {
			return fail(err)
		}
		name, src = b.Name, b.Source
	case fs.NArg() == 1:
		data, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return fail(err)
		}
		name, src = fs.Arg(0), string(data)
	default:
		fmt.Fprintln(stderr, "usage: pyrun [flags] (-bench name | file.py); see -h")
		return 2
	}

	cfg := runtime.DefaultConfig(m)
	cfg.NurseryBytes = *nursery
	cfg.Stdout = stdout
	cfg.MaxBytecodes = *maxBytecodes
	cfg.Limits = interp.Limits{
		MaxSteps:          *maxSteps,
		MaxHeapBytes:      *maxHeap,
		MaxRecursionDepth: *maxRecur,
		Deadline:          *timeout,
		MaxOutputBytes:    *maxOutput,
	}
	switch *coreKind {
	case "simple":
		cfg.Core = runtime.SimpleCore
	case "ooo":
		cfg.Core = runtime.OOOCore
	case "none":
		cfg.Core = runtime.CountOnly
		cfg.Warmups = 0
		cfg.Measures = 1
	default:
		return fail(fmt.Errorf("unknown core %q", *coreKind))
	}
	if *quick {
		cfg.Warmups = 0
		cfg.Measures = 1
	}

	r, err := runtime.NewRunner(cfg)
	if err != nil {
		return fail(err)
	}
	res, err := r.Run(name, src)
	if err != nil {
		fmt.Fprintln(stderr, "pyrun:", err)
		return exitCode(err)
	}

	if *stats {
		fmt.Fprintf(stderr, "\n== %s on %s ==\n", name, m)
		if cfg.Core != runtime.CountOnly {
			fmt.Fprintf(stderr, "cycles=%d instrs=%d CPI=%.3f LLC-miss=%.2f%% L1D-miss=%.2f%%\n",
				res.Cycles, res.Instrs, res.CPI, res.LLCMissRate*100, res.L1DMissRate*100)
		}
		if cfg.Core == runtime.SimpleCore {
			fmt.Fprintln(stderr, res.Breakdown.String())
		}
		fmt.Fprintf(stderr, "gc: allocs=%d bytes=%d minor=%d major=%d copied=%d\n",
			res.GC.Allocations, res.GC.BytesAlloc, res.GC.MinorGCs, res.GC.MajorGCs, res.GC.BytesCopied)
		if res.JIT != nil {
			fmt.Fprintf(stderr, "jit: %+v\n", *res.JIT)
		}
	}
	return 0
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }
