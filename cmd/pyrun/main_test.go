package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/supervise"
)

func runPyrun(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var stdout, stderr strings.Builder
	code := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), code
}

func TestListBenchmarks(t *testing.T) {
	out, _, code := runPyrun(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "float") {
		t.Errorf("bench list missing 'float':\n%s", out)
	}
}

func TestQuickBenchAllModes(t *testing.T) {
	for _, mode := range []string{"cpython", "pypy-nojit", "pypy-jit", "v8like"} {
		out, errOut, code := runPyrun(t, "-quick", "-mode", mode, "-bench", "richards")
		if code != 0 {
			t.Fatalf("mode %s: exit %d, stderr:\n%s", mode, code, errOut)
		}
		if out == "" {
			t.Errorf("mode %s: no program output", mode)
		}
	}
}

func TestQuickFileWithStats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prog.py")
	src := "x = 0\nfor i in xrange(100):\n    x += i\nprint(x)\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, errOut, code := runPyrun(t, "-quick", "-core", "simple", "-stats", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut)
	}
	if !strings.Contains(out, "4950") {
		t.Errorf("program output wrong:\n%s", out)
	}
	if !strings.Contains(errOut, "cycles=") || !strings.Contains(errOut, "gc: allocs=") {
		t.Errorf("stats missing from stderr:\n%s", errOut)
	}
}

func TestUsageErrors(t *testing.T) {
	if _, _, code := runPyrun(t); code != 2 {
		t.Errorf("no args: want exit 2, got %d", code)
	}
	if _, _, code := runPyrun(t, "-mode", "nope", "-bench", "float"); code != 1 {
		t.Errorf("bad mode: want exit 1, got %d", code)
	}
	if _, _, code := runPyrun(t, "-bench", "no-such-bench"); code != 1 {
		t.Errorf("bad bench: want exit 1, got %d", code)
	}
}

// writeProg writes a temp program and returns its path.
func writeProg(t *testing.T, src string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "prog.py")
	if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestLimitExitCodes checks each governor limit maps to its distinct exit
// status, across a JIT and a non-JIT mode.
func TestLimitExitCodes(t *testing.T) {
	cases := []struct {
		name string
		src  string
		flag []string
		code int
	}{
		{"steps", "i = 0\nwhile True:\n    i = i + 1\n",
			[]string{"-max-steps", "100000"}, supervise.ClassTimeout.ExitCode()},
		{"deadline", "i = 0\nwhile True:\n    i = i + 1\n",
			[]string{"-timeout", "30ms"}, supervise.ClassTimeout.ExitCode()},
		{"heap", "l = []\nwhile True:\n    l.append(\"0123456789abcdef\")\n",
			[]string{"-max-heap", "1048576"}, supervise.ClassMemory.ExitCode()},
		{"recursion", "def f(n):\n    return f(n + 1)\nf(0)\n",
			[]string{"-max-recursion", "64"}, supervise.ClassRecursion.ExitCode()},
		{"output", "while True:\n    print(\"aaaaaaaaaaaaaaaa\")\n",
			[]string{"-max-output", "4096"}, supervise.ClassOutput.ExitCode()},
	}
	for _, mode := range []string{"cpython", "pypy-jit"} {
		for _, c := range cases {
			t.Run(mode+"/"+c.name, func(t *testing.T) {
				p := writeProg(t, c.src)
				args := append([]string{"-mode", mode}, c.flag...)
				args = append(args, p)
				_, errOut, code := runPyrun(t, args...)
				if code != c.code {
					t.Fatalf("exit %d, want %d; stderr:\n%s", code, c.code, errOut)
				}
			})
		}
	}
}

// TestPlainPythonErrorStaysExitOne: an ordinary Python error is not a
// limit trip.
func TestPlainPythonErrorStaysExitOne(t *testing.T) {
	p := writeProg(t, "print(1 / 0)\n")
	_, errOut, code := runPyrun(t, "-max-steps", "100000", p)
	if code != exitPyError {
		t.Fatalf("exit %d, want %d; stderr:\n%s", code, exitPyError, errOut)
	}
	if !strings.Contains(errOut, "ZeroDivisionError") {
		t.Errorf("stderr should carry the Python error: %s", errOut)
	}
}

// TestLimitsWithinBudgetSucceed: limits set but not hit leave the run
// untouched.
func TestLimitsWithinBudgetSucceed(t *testing.T) {
	p := writeProg(t, "print(sum(range(100)))\n")
	out, errOut, code := runPyrun(t,
		"-max-steps", "1000000", "-max-heap", "16777216",
		"-timeout", "30s", "-max-output", "65536", p)
	if code != 0 {
		t.Fatalf("exit %d; stderr:\n%s", code, errOut)
	}
	if !strings.Contains(out, "4950") {
		t.Errorf("output: %q", out)
	}
}
