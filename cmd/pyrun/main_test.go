package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runPyrun(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var stdout, stderr strings.Builder
	code := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), code
}

func TestListBenchmarks(t *testing.T) {
	out, _, code := runPyrun(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "float") {
		t.Errorf("bench list missing 'float':\n%s", out)
	}
}

func TestQuickBenchAllModes(t *testing.T) {
	for _, mode := range []string{"cpython", "pypy-nojit", "pypy-jit", "v8like"} {
		out, errOut, code := runPyrun(t, "-quick", "-mode", mode, "-bench", "richards")
		if code != 0 {
			t.Fatalf("mode %s: exit %d, stderr:\n%s", mode, code, errOut)
		}
		if out == "" {
			t.Errorf("mode %s: no program output", mode)
		}
	}
}

func TestQuickFileWithStats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prog.py")
	src := "x = 0\nfor i in xrange(100):\n    x += i\nprint(x)\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, errOut, code := runPyrun(t, "-quick", "-core", "simple", "-stats", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut)
	}
	if !strings.Contains(out, "4950") {
		t.Errorf("program output wrong:\n%s", out)
	}
	if !strings.Contains(errOut, "cycles=") || !strings.Contains(errOut, "gc: allocs=") {
		t.Errorf("stats missing from stderr:\n%s", errOut)
	}
}

func TestUsageErrors(t *testing.T) {
	if _, _, code := runPyrun(t); code != 2 {
		t.Errorf("no args: want exit 2, got %d", code)
	}
	if _, _, code := runPyrun(t, "-mode", "nope", "-bench", "float"); code != 1 {
		t.Errorf("bad mode: want exit 1, got %d", code)
	}
	if _, _, code := runPyrun(t, "-bench", "no-such-bench"); code != 1 {
		t.Errorf("bad bench: want exit 1, got %d", code)
	}
}
