// Command pyfuzz soak-runs the differential execution oracle: it
// generates seeded MiniPy programs and executes each under the
// interpreter-only baseline and every JIT/GC leg, failing on any
// divergence in output, exception, or final globals, or on any runtime-
// statistics invariant violation. Divergences are minimized and written
// to the corpus directory as standalone reproducers.
//
// Usage:
//
//	pyfuzz -seed 1 -n 1000
//	pyfuzz -n 200 -corpus /tmp/corpus -nurseries 64,256,4096
//	pyfuzz -replay internal/difftest/corpus
//	pyfuzz -faults -n 200
//	pyfuzz -pool -n 500
//	pyfuzz -sched -n 500
//	pyfuzz -quicken -n 500
//	pyfuzz -progstore -n 300
//
// With -quicken, the leg matrix narrows to the quickening soak: the
// tier-2 quickened interpreter as baseline against the cold interpreter
// (quickening disabled), inline-cache flush churn at several intervals
// (worst case: every cache invalidated after every fill), the tier-2
// ablation legs — poly-cold (monomorphic caches only), fusion-flush
// (superinstructions de-fused and re-fused on a tight cadence), and
// intfast-overflow (the unboxed-int magnitude cap lowered so the
// speculative arithmetic paths deopt constantly) — and a JIT leg that
// must observe the same guard state. Any behavioural effect of
// quickening, inline caches, polymorphic stubs, superinstruction
// fusion, or de-quickening shows up as a divergence.
//
// With -progstore, the leg matrix narrows to the content-addressed
// program store: the directly-compiled baseline against the store's
// shared code object cold, the portable IC-seed warm start, eviction
// and recompile churn in a capacity-2 store, and a seeded leg whose
// every seed import is damaged by SeedCorrupt fault injection. Seeds
// are advisory by contract — a wrong or damaged seed may cost refills
// but may never change output, exceptions, or final globals — so every
// leg is held to exact agreement with the baseline.
//
// With -faults, the run becomes a chaos soak: every leg except the
// baseline executes under seeded fault injection (allocation failures,
// nursery exhaustion, corrupted JIT guards, aborted trace compiles), and
// the oracle verifies faults only ever surface as well-formed Python
// exceptions — never as output divergences, internal errors, or host
// panics.
//
// With -sched, the same generated programs — plus long multi-quantum
// loops — run through the step-sliced scheduler (internal/supervise
// Sched) from concurrent submitters at a deliberately small quantum, so
// every long job is preempted many times; the oracle diffs each
// executed result against a fresh exclusive reference run, proving
// arbitrary park/resume interleavings change nothing observable.
//
// With -pool, the attack moves up a layer: the same generated programs
// run through the internal/supervise worker pool while seeded
// supervision faults (worker wedges, pool slot leaks) fire, and the
// oracle verifies the supervisor's contract — faults never take the
// pool down, never cross-contaminate another job's output, and always
// surface as a well-formed error class.
//
// Exit status is nonzero if any divergence or invariant failure was
// observed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/difftest"
	"repro/internal/route"
	"repro/internal/supervise"
	"repro/internal/telemetry"
)

func run() int {
	var (
		seed      = flag.Uint64("seed", 1, "base seed; program i uses seed+i")
		n         = flag.Int("n", 200, "number of generated programs to check")
		corpus    = flag.String("corpus", "", "directory for minimized reproducers (empty: don't write)")
		replay    = flag.String("replay", "", "replay an existing corpus directory instead of generating")
		budget    = flag.Uint64("budget", 0, "per-leg bytecode budget (0: default)")
		nurseries = flag.String("nurseries", "", "comma-separated nursery sizes in KB (empty: 64,256,4096)")
		quiet     = flag.Bool("q", false, "suppress per-program progress")
		showGen   = flag.Uint64("print-seed", 0, "print the program for this seed and exit")
		faults    = flag.Bool("faults", false, "chaos soak: run faulted legs under seeded fault injection")
		faultRate = flag.Uint64("fault-rate", 1000, "with -faults, each fault kind fires ~1/rate per site visit")
		faultSeed = flag.Uint64("fault-seed", 0, "with -faults, injector seed (0: use -seed)")
		quicken   = flag.Bool("quicken", false, "quickening soak: focused leg matrix (cold interpreter, inline-cache flush churn, JIT) against the quickened baseline")
		progstore = flag.Bool("progstore", false, "program-store soak: store-cold, IC-seed warm start, eviction/recompile churn, and SeedCorrupt injection on the seed path, all diffed against the directly-compiled baseline")
		pool      = flag.Bool("pool", false, "pool-chaos soak: run programs through the supervise worker pool under injected supervision faults")
		sched     = flag.Bool("sched", false, "scheduler-chaos soak: mixed long/short jobs through the step-sliced scheduler with forced preemption, each diffed against a fresh exclusive reference run")
		slots     = flag.Int("sched-slots", 2, "with -sched, concurrent execution slots")
		quantum   = flag.Uint64("sched-quantum", 2000, "with -sched, preemption granularity in bytecodes")
		poolSize  = flag.Int("pool-workers", 4, "with -pool, number of warm workers")
		wedgeN    = flag.Uint64("pool-wedge-every", 40, "with -pool, inject a worker wedge every Nth job (0: never)")
		leakN     = flag.Uint64("pool-leak-every", 25, "with -pool, inject a slot leak every Nth job (0: never)")
		metrics   = flag.Bool("metrics", false, "with -pool, instrument the soak pool and print the Prometheus exposition after the jobs drain")
		routing   = flag.Bool("route", false, "router chaos soak: drive a verified corpus through a real pyroute front over real replicas while backend kill/wedge/flap faults fire")
		downN     = flag.Uint64("route-down-every", 20, "with -route, kill replica 1 for good at this injector tick (0: never)")
		slowN     = flag.Uint64("route-slow-every", 35, "with -route, wedge the last replica every Nth tick (0: never)")
		flapN     = flag.Uint64("route-flap-every", 50, "with -route, bounce the last replica every Nth tick (0: never)")
		byteChaos = flag.Bool("route-bytechaos", false, "with -route, interpose byte-level chaos proxies (resets, stalls, truncation, corruption) and stamp every request with an idempotency key, arming the exactly-once oracle")
		reloadN   = flag.Uint64("route-reload-every", 0, "with -route, toggle one replica out of and back into the fleet every Nth tick via live reconfiguration (0: never)")
	)
	flag.Parse()

	if *showGen != 0 {
		fmt.Print(difftest.Generate(*showGen))
		return 0
	}

	if *routing {
		// Hedging on: a replica wedged for less than the ejection
		// hysteresis stalls its in-flight requests past the upstream
		// timeout, and those are not retry-safe — the hedge's duplicate
		// attempt is the only way to serve them.
		cfg := route.SoakConfig{
			Seed:         *seed,
			Jobs:         *n,
			DownEveryN:   *downN,
			SlowEveryN:   *slowN,
			FlapEveryN:   *flapN,
			ReloadEveryN: *reloadN,
			Hedge:        true,
		}
		if *byteChaos {
			// Byte chaos and hedging don't mix: a hedge duplicates an
			// attempt by design, which muddies the exactly-once audit.
			// Idempotency keys take over mid-flight recovery instead.
			cfg.Hedge = false
			cfg.ByteChaos = true
			cfg.IdempotencyKeys = true
			cfg.NetResetRate = 60
			cfg.NetTruncateRate = 60
			cfg.NetCorruptRate = 80
			cfg.NetDelayRate = 40
			cfg.NetStallRate = 400
			cfg.AllowedFailureRatio = 0.25
		}
		res := route.Soak(cfg)
		if rep := res.Report; rep != nil {
			fmt.Printf("route soak: %d requests, outcomes %v, %d wrong answers, %d budgeted / %d unbudgeted failures (ratio %.3f, budget %.3f)\n",
				rep.Requests, rep.Outcomes, rep.WrongAnswers,
				rep.BudgetedFailures, rep.UnbudgetedFailures, rep.FailureRatio, rep.AllowedFailureRatio)
			fmt.Printf("route soak: p50 %.1fms p99 %.1fms, %d ejections, %d readmits; killed=%d wedges=%d flaps=%d reloads=%d\n",
				rep.Latency.P50Ms, rep.Latency.P99Ms, res.Ejections, res.Readmits,
				res.Killed, res.Wedges, res.Flaps, res.Reloads)
			if cfg.IdempotencyKeys {
				fmt.Printf("route soak: exactly-once: %d deduped replies, %d duplicate executions, %d dedup hits, max executions/key %d\n",
					rep.DedupedReplies, rep.DuplicateExecutions, res.DedupHits, res.MaxExecutions)
			}
		}
		fmt.Println(res.Faults)
		if res.NetFaults != "" {
			fmt.Println(res.NetFaults)
		}
		for _, v := range res.Violations {
			fmt.Printf("violation: %s\n", v)
		}
		if !res.Ok() {
			return 1
		}
		return 0
	}

	if *sched {
		cfg := supervise.SchedSoakConfig{
			Seed:         *seed,
			Jobs:         *n,
			Slots:        *slots,
			QuantumSteps: *quantum,
			WedgeEveryN:  *wedgeN,
		}
		var reg *telemetry.Registry
		if *metrics {
			reg = telemetry.NewRegistry()
			cfg.Metrics = supervise.NewMetrics(reg)
		}
		res := supervise.SchedSoak(cfg)
		s := res.Stats
		fmt.Printf("sched soak: %d jobs, %d completed, %d preemptions, %d shed, %d wedged, %d slots\n",
			res.Jobs, s.Completed, s.Preempted, s.Shed, s.Wedged, s.Workers)
		for _, v := range res.Violations {
			fmt.Printf("violation: %s\n", v)
		}
		if reg != nil {
			if err := reg.WritePrometheus(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "pyfuzz: metrics exposition: %v\n", err)
			}
		}
		if !res.Ok() {
			return 1
		}
		return 0
	}

	if *pool {
		cfg := supervise.SoakConfig{
			Seed:        *seed,
			Jobs:        *n,
			Workers:     *poolSize,
			WedgeEveryN: *wedgeN,
			LeakEveryN:  *leakN,
		}
		var reg *telemetry.Registry
		if *metrics {
			reg = telemetry.NewRegistry()
			cfg.Metrics = supervise.NewMetrics(reg)
		}
		res := supervise.Soak(cfg)
		s := res.Stats
		fmt.Printf("pool soak: %d jobs, %d completed, %d shed, %d wedged, %d poisoned, %d leaked, %d recycled, %d restarts, %d live workers\n",
			res.Jobs, s.Completed, s.Shed, s.Wedged, s.Poisoned, s.Leaked, s.Recycled, s.Restarts, s.Workers)
		for _, v := range res.Violations {
			fmt.Printf("violation: %s\n", v)
		}
		if reg != nil {
			if err := reg.WritePrometheus(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "pyfuzz: metrics exposition: %v\n", err)
			}
		}
		if !res.Ok() {
			return 1
		}
		return 0
	}

	var sizes []uint64
	if *nurseries != "" {
		for _, f := range strings.Split(*nurseries, ",") {
			kb, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
			if err != nil || kb == 0 {
				fmt.Fprintf(os.Stderr, "pyfuzz: bad nursery size %q\n", f)
				return 2
			}
			sizes = append(sizes, kb<<10)
		}
	}

	if *replay != "" {
		// LoadCorpus treats a missing directory as an empty corpus,
		// which is right for optional corpora but would make a typo'd
		// -replay path report success — require it to exist here.
		if st, err := os.Stat(*replay); err != nil || !st.IsDir() {
			fmt.Fprintf(os.Stderr, "pyfuzz: replay directory %s not found\n", *replay)
			return 2
		}
		legs := difftest.Legs(sizes, nil)
		divs, invs, err := difftest.RunCorpus(*replay, legs, *budget)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pyfuzz: %v\n", err)
			return 2
		}
		for i := range divs {
			fmt.Printf("divergence: %s\n", divs[i].String())
		}
		for _, iv := range invs {
			fmt.Printf("invariant: %s\n", iv)
		}
		if len(divs)+len(invs) > 0 {
			return 1
		}
		fmt.Printf("corpus %s: conformant across %d legs\n", *replay, len(legs))
		return 0
	}

	opts := difftest.Options{
		Seed:      *seed,
		N:         *n,
		Nurseries: sizes,
		Budget:    *budget,
		CorpusDir: *corpus,
		Quicken:   *quicken,
		Progstore: *progstore,
	}
	if *progstore && (*quicken || *faults) {
		fmt.Fprintln(os.Stderr, "pyfuzz: -progstore is mutually exclusive with -quicken and -faults")
		return 2
	}
	if *faults {
		if *quicken {
			fmt.Fprintln(os.Stderr, "pyfuzz: -quicken and -faults are mutually exclusive")
			return 2
		}
		if *faultRate == 0 {
			fmt.Fprintln(os.Stderr, "pyfuzz: -fault-rate must be nonzero")
			return 2
		}
		opts.FaultRate = *faultRate
		opts.FaultSeed = *faultSeed
	}
	if !*quiet {
		opts.Progress = func(done int) {
			if done%25 == 0 || done == *n {
				fmt.Fprintf(os.Stderr, "pyfuzz: %d/%d programs\n", done, *n)
			}
		}
	}
	rep, err := difftest.RunWith(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pyfuzz: %v\n", err)
		return 2
	}
	fmt.Println(rep.Summary())
	for _, p := range rep.ReproPaths {
		fmt.Printf("reproducer written: %s\n", p)
	}
	if !rep.OK() {
		return 1
	}
	return 0
}

func main() { os.Exit(run()) }
