// Command pyserve is the MiniPy serving daemon: an HTTP/JSON front end
// over the internal/supervise worker pool. Programs run on warm,
// reusable VM workers under per-request resource budgets; worker
// failures are quarantined and replaced without dropping the service.
//
// Usage:
//
//	pyserve [-addr :8042] [-workers 4] [-queue 8] [-timeout 5s]
//	        [-max-steps n] [-max-heap bytes] [-max-output bytes]
//	        [-recycle 256]
//
// Endpoints:
//
//	POST /run     {"src": "...", "mode": "pypy-jit", "limits": {...},
//	               "breakdown": true}
//	              -> {"exitClass": "ok", "exitCode": 0, "stdout": ...,
//	                  "requestId": "r42", "breakdown": {...}}
//	GET  /metrics -> Prometheus text exposition: job counters by exit
//	              class, queue-wait and run-time histograms, pool
//	              occupancy gauges, live overhead-category attribution
//	GET  /healthz -> pool statistics; 503 once no workers are live
//	POST /drainz  -> graceful drain: stop admitting, wait for in-flight
//
// A request's "mode" selects the runtime per request (cpython,
// pypy-nojit, pypy-jit, v8like; default cpython). Shed requests return
// 503 with a Retry-After header. /run returns 200 for every executed
// job — the job's own outcome (Python error, limit trip, internal
// error) is in exitClass/exitCode, mirroring pyrun's exit statuses.
// Setting "breakdown": true runs the job with the paper's attribution
// core armed and returns the Table-II-style per-category report.
//
// Every executed request gets a daemon-unique id, echoed in the
// response body, the X-Request-Id header, and one structured JSON log
// line on stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/runtime"
	"repro/internal/supervise"
	"repro/internal/telemetry"
)

// runRequest is the POST /run body.
type runRequest struct {
	Name   string     `json:"name,omitempty"`
	Src    string     `json:"src"`
	Mode   string     `json:"mode,omitempty"`
	Limits *reqLimits `json:"limits,omitempty"`
	// Breakdown opts this request into live overhead attribution: the
	// job runs on the worker's attribution-core runner (slower) and the
	// response carries the per-category cycle breakdown.
	Breakdown bool `json:"breakdown,omitempty"`
}

// reqLimits is the per-request budget override; zero fields inherit the
// server defaults.
type reqLimits struct {
	MaxSteps          uint64 `json:"maxSteps,omitempty"`
	MaxHeapBytes      uint64 `json:"maxHeapBytes,omitempty"`
	MaxRecursionDepth int    `json:"maxRecursionDepth,omitempty"`
	DeadlineMs        int64  `json:"deadlineMs,omitempty"`
	MaxOutputBytes    uint64 `json:"maxOutputBytes,omitempty"`
}

// runResponse is the POST /run reply.
type runResponse struct {
	RequestID  string       `json:"requestId"`
	ExitClass  string       `json:"exitClass"`
	ExitCode   int          `json:"exitCode"`
	Stdout     string       `json:"stdout"`
	Error      string       `json:"error,omitempty"`
	Mode       string       `json:"mode"`
	Worker     int          `json:"worker"`
	QueuedMs   float64      `json:"queuedMs"`
	RunMs      float64      `json:"runMs"`
	RetryAfter float64      `json:"retryAfterMs,omitempty"`
	Stats      *runStats    `json:"stats,omitempty"`
	Breakdown  *core.Report `json:"breakdown,omitempty"`
}

// runStats carries the execution counters of a successful run.
type runStats struct {
	Bytecodes   uint64 `json:"bytecodes"`
	Allocs      uint64 `json:"allocs"`
	MinorGCs    uint64 `json:"minorGCs"`
	MajorGCs    uint64 `json:"majorGCs"`
	ErrorDeopts uint64 `json:"errorDeopts,omitempty"`
}

// server ties the pool to the HTTP mux; tests drive it in-process.
type server struct {
	pool *supervise.Pool
	// reg is the telemetry registry backing GET /metrics.
	reg *telemetry.Registry
	// drainTimeout bounds how long /drainz waits for in-flight jobs.
	drainTimeout time.Duration
	// nextID numbers executed requests; the id is echoed in the
	// response, the X-Request-Id header, and the per-job log line.
	nextID atomic.Uint64
	// logw receives one JSON line per executed job (nil disables).
	// logMu serializes writers so interleaved handlers cannot shear a
	// line.
	logw  io.Writer
	logMu sync.Mutex
}

func newServer(pool *supervise.Pool, reg *telemetry.Registry, drainTimeout time.Duration, logw io.Writer) *server {
	return &server{pool: pool, reg: reg, drainTimeout: drainTimeout, logw: logw}
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/drainz", s.handleDrainz)
	return mux
}

// jobLog is the structured per-job log line.
type jobLog struct {
	Time      string  `json:"ts"`
	RequestID string  `json:"requestId"`
	Name      string  `json:"name"`
	Mode      string  `json:"mode"`
	Class     string  `json:"class"`
	Worker    int     `json:"worker"`
	QueuedMs  float64 `json:"queuedMs"`
	RunMs     float64 `json:"runMs"`
	Bytecodes uint64  `json:"bytecodes,omitempty"`
	Error     string  `json:"error,omitempty"`
}

func (s *server) logJob(id string, job *supervise.Job, res *supervise.JobResult) {
	if s.logw == nil {
		return
	}
	line, err := json.Marshal(jobLog{
		Time:      time.Now().UTC().Format(time.RFC3339Nano),
		RequestID: id,
		Name:      job.Name,
		Mode:      res.Mode.String(),
		Class:     res.Class.String(),
		Worker:    res.Worker,
		QueuedMs:  float64(res.Queued) / float64(time.Millisecond),
		RunMs:     float64(res.RunTime) / float64(time.Millisecond),
		Bytecodes: res.Bytecodes,
		Error:     res.Err,
	})
	if err != nil {
		return
	}
	s.logMu.Lock()
	_, _ = s.logw.Write(append(line, '\n'))
	s.logMu.Unlock()
}

// maxBody bounds a /run request body (programs are small; a runaway
// client must not balloon the daemon).
const maxBody = 1 << 20

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	if len(body) > maxBody {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("program exceeds %d bytes", maxBody))
		return
	}
	var req runRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.Src == "" {
		httpError(w, http.StatusBadRequest, "missing src")
		return
	}
	mode := runtime.CPython
	if req.Mode != "" {
		mode, err = runtime.ParseMode(req.Mode)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	job := &supervise.Job{
		Name: req.Name,
		Src:  req.Src,
		Mode: mode,
	}
	if job.Name == "" {
		job.Name = "request.py"
	}
	job.Breakdown = req.Breakdown
	if l := req.Limits; l != nil {
		// Negative budgets must not reach the pool: a negative Deadline
		// is nonzero, so it would bypass the server default and skew the
		// watchdog derivation.
		if l.DeadlineMs < 0 {
			httpError(w, http.StatusBadRequest, "limits.deadlineMs must be >= 0")
			return
		}
		// The ms→Duration conversion multiplies by 10^6: a deadlineMs
		// beyond ~292 million years overflows int64 and lands negative,
		// which used to flow into the pool and produce an already-expired
		// watchdog that condemned the healthy worker running the job.
		// Nothing legitimate asks for more than a day.
		if l.DeadlineMs > maxDeadlineMs {
			httpError(w, http.StatusBadRequest,
				fmt.Sprintf("limits.deadlineMs must be <= %d", int64(maxDeadlineMs)))
			return
		}
		if l.MaxRecursionDepth < 0 {
			httpError(w, http.StatusBadRequest, "limits.maxRecursionDepth must be >= 0")
			return
		}
		job.Limits = interp.Limits{
			MaxSteps:          l.MaxSteps,
			MaxHeapBytes:      l.MaxHeapBytes,
			MaxRecursionDepth: l.MaxRecursionDepth,
			Deadline:          time.Duration(l.DeadlineMs) * time.Millisecond,
			MaxOutputBytes:    l.MaxOutputBytes,
		}
	}

	id := "r" + strconv.FormatUint(s.nextID.Add(1), 10)
	res := s.pool.Submit(job)
	s.logJob(id, job, res)
	resp := runResponse{
		RequestID: id,
		ExitClass: res.Class.String(),
		ExitCode:  res.Class.ExitCode(),
		Stdout:    res.Output,
		Error:     res.Err,
		Mode:      res.Mode.String(),
		Worker:    res.Worker,
		QueuedMs:  float64(res.Queued) / float64(time.Millisecond),
		RunMs:     float64(res.RunTime) / float64(time.Millisecond),
	}
	status := http.StatusOK
	if res.Class == supervise.ClassShed {
		status = http.StatusServiceUnavailable
		resp.RetryAfter = float64(res.RetryAfter) / float64(time.Millisecond)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(res.RetryAfter)))
	}
	if res.Class == supervise.ClassOK {
		resp.Stats = &runStats{
			Bytecodes:   res.Bytecodes,
			Allocs:      res.Allocs,
			MinorGCs:    res.MinorGCs,
			MajorGCs:    res.MajorGCs,
			ErrorDeopts: res.ErrorDeopts,
		}
		if res.Breakdown != nil {
			resp.Breakdown = res.Breakdown.Report()
		}
	}
	w.Header().Set("X-Request-Id", id)
	writeJSON(w, status, resp)
}

// maxDeadlineMs caps a request's deadlineMs at 24 hours — far above any
// sane serving budget, far below the ~2^63 ns where the ms→Duration
// conversion overflows.
const maxDeadlineMs = 24 * 60 * 60 * 1000

// retryAfterSeconds renders a shed result's retry hint as the integer
// seconds of the Retry-After header, rounding UP: truncation would tell
// clients to come back before the hint elapses (1.9s became "1"),
// re-shedding the well-behaved ones.
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// healthzResponse reports pool occupancy and lifetime counters.
type healthzResponse struct {
	Ok    bool            `json:"ok"`
	Stats supervise.Stats `json:"stats"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.pool.Stats()
	ok := st.Workers > 0 && !st.Draining
	status := http.StatusOK
	if !ok {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, healthzResponse{Ok: ok, Stats: st})
}

// drainzResponse reports the drain outcome.
type drainzResponse struct {
	Drained bool            `json:"drained"`
	Stats   supervise.Stats `json:"stats"`
}

func (s *server) handleDrainz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	ok := s.pool.Drain(s.drainTimeout)
	status := http.StatusOK
	if !ok {
		status = http.StatusGatewayTimeout
	}
	writeJSON(w, status, drainzResponse{Drained: ok, Stats: s.pool.Stats()})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func run() int {
	var (
		addr      = flag.String("addr", ":8042", "listen address")
		workers   = flag.Int("workers", 4, "warm VM workers in the pool")
		queue     = flag.Int("queue", 0, "admission queue depth (0: 2x workers)")
		timeout   = flag.Duration("timeout", 5*time.Second, "default wall-clock deadline per job")
		maxSteps  = flag.Uint64("max-steps", 50_000_000, "default step budget per job (0: unlimited)")
		maxHeap   = flag.Uint64("max-heap", 256<<20, "default live-heap cap per job in bytes (0: unlimited)")
		maxOutput = flag.Uint64("max-output", 8<<20, "default output cap per job in bytes (0: unlimited)")
		recycle   = flag.Int("recycle", 256, "retire a worker after this many jobs")
		drainWait = flag.Duration("drain-timeout", 30*time.Second, "how long /drainz waits for in-flight jobs")
	)
	flag.Parse()

	reg := telemetry.NewRegistry()
	pool := supervise.NewPool(supervise.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		RecycleAfter: *recycle,
		Metrics:      supervise.NewMetrics(reg),
		DefaultLimits: interp.Limits{
			MaxSteps:       *maxSteps,
			MaxHeapBytes:   *maxHeap,
			Deadline:       *timeout,
			MaxOutputBytes: *maxOutput,
		},
	})
	defer pool.Close()

	srv := newServer(pool, reg, *drainWait, os.Stderr)
	fmt.Fprintf(os.Stderr, "pyserve: listening on %s (%d workers)\n", *addr, *workers)
	if err := http.ListenAndServe(*addr, srv.mux()); err != nil {
		fmt.Fprintln(os.Stderr, "pyserve:", err)
		return 1
	}
	return 0
}

func main() { os.Exit(run()) }
