// Command pyserve is the MiniPy serving daemon: an HTTP/JSON front end
// over the internal/supervise worker pool. Programs run on warm,
// reusable VM workers under per-request resource budgets; worker
// failures are quarantined and replaced without dropping the service.
//
// Usage:
//
//	pyserve [-addr :8042] [-workers 4] [-queue 8] [-timeout 5s]
//	        [-max-steps n] [-max-heap bytes] [-max-output bytes]
//	        [-recycle 256]
//
// Endpoints (versioned API, see internal/api):
//
//	POST /v1/run     {"src": "...", "mode": "pypy-jit", "limits": {...},
//	                  "breakdown": true}
//	                 -> {"apiVersion": "v1", "exitClass": "ok",
//	                     "exitCode": 0, "stdout": ..., "requestId": "r42",
//	                     "stats": {..., "icHits": n, "icHitRate": r},
//	                     "breakdown": {...}}
//	                 Errors carry a machine-readable envelope:
//	                 {"error": {"code": "invalid_limits", "message": ...}}
//	GET  /v1/metrics -> Prometheus text exposition: job counters by exit
//	                 class, queue-wait and run-time histograms, pool
//	                 occupancy gauges, live overhead-category attribution,
//	                 inline-cache hit/miss/invalidation counters
//	GET  /v1/healthz -> pool statistics; 503 once no workers are live
//	POST /drainz     -> graceful drain: stop admitting, wait for in-flight
//
// The unversioned endpoints (/run, /metrics, /healthz) are deprecated
// aliases kept for existing clients: same behavior, but /run answers
// with a Deprecation header and its validation errors keep the legacy
// flat {"error": "message"} shape. They will be removed no sooner than
// two releases after a /v2 ships.
//
// A request's "mode" selects the runtime per request (cpython,
// pypy-nojit, pypy-jit, v8like; default cpython). Shed requests return
// 503 with a Retry-After header. /run returns 200 for every executed
// job — the job's own outcome (Python error, limit trip, internal
// error) is in exitClass/exitCode, mirroring pyrun's exit statuses.
// Setting "breakdown": true runs the job with the paper's attribution
// core armed and returns the Table-II-style per-category report.
//
// Every executed request gets a daemon-unique id, echoed in the
// response body, the X-Request-Id header, and one structured JSON log
// line on stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/interp"
	"repro/internal/runtime"
	"repro/internal/supervise"
	"repro/internal/telemetry"
)

// The request/response wire types are the shared versioned API structs;
// the legacy /run alias serves the same shapes.
type (
	runRequest  = api.RunRequestV1
	runResponse = api.RunResultV1
)

// server ties the pool to the HTTP mux; tests drive it in-process.
type server struct {
	pool *supervise.Pool
	// reg is the telemetry registry backing GET /metrics.
	reg *telemetry.Registry
	// drainTimeout bounds how long /drainz waits for in-flight jobs.
	drainTimeout time.Duration
	// nextID numbers executed requests; the id is echoed in the
	// response, the X-Request-Id header, and the per-job log line.
	nextID atomic.Uint64
	// logw receives one JSON line per executed job (nil disables).
	// logMu serializes writers so interleaved handlers cannot shear a
	// line.
	logw  io.Writer
	logMu sync.Mutex
}

func newServer(pool *supervise.Pool, reg *telemetry.Registry, drainTimeout time.Duration, logw io.Writer) *server {
	return &server{pool: pool, reg: reg, drainTimeout: drainTimeout, logw: logw}
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", s.handleRunV1)
	mux.HandleFunc("/v1/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/run", s.handleRunLegacy)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/drainz", s.handleDrainz)
	return mux
}

// jobLog is the structured per-job log line.
type jobLog struct {
	Time      string  `json:"ts"`
	RequestID string  `json:"requestId"`
	Name      string  `json:"name"`
	Mode      string  `json:"mode"`
	Class     string  `json:"class"`
	Worker    int     `json:"worker"`
	QueuedMs  float64 `json:"queuedMs"`
	RunMs     float64 `json:"runMs"`
	Bytecodes uint64  `json:"bytecodes,omitempty"`
	Error     string  `json:"error,omitempty"`
}

func (s *server) logJob(id string, job *supervise.Job, res *supervise.JobResult) {
	if s.logw == nil {
		return
	}
	line, err := json.Marshal(jobLog{
		Time:      time.Now().UTC().Format(time.RFC3339Nano),
		RequestID: id,
		Name:      job.Name,
		Mode:      res.Mode.String(),
		Class:     res.Class.String(),
		Worker:    res.Worker,
		QueuedMs:  float64(res.Queued) / float64(time.Millisecond),
		RunMs:     float64(res.RunTime) / float64(time.Millisecond),
		Bytecodes: res.Bytecodes,
		Error:     res.Err,
	})
	if err != nil {
		return
	}
	s.logMu.Lock()
	_, _ = s.logw.Write(append(line, '\n'))
	s.logMu.Unlock()
}

// maxBody bounds a /run request body (programs are small; a runaway
// client must not balloon the daemon).
const maxBody = 1 << 20

func (s *server) handleRunV1(w http.ResponseWriter, r *http.Request) {
	s.serveRun(w, r, true)
}

// handleRunLegacy is the deprecated unversioned alias of /v1/run: same
// execution path, but it announces its deprecation in headers and keeps
// the flat {"error": "message"} error shape for existing clients.
func (s *server) handleRunLegacy(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Link", `</v1/run>; rel="successor-version"`)
	s.serveRun(w, r, false)
}

// failRun writes a request-rejection response: the /v1 machine-readable
// envelope, or the legacy flat shape for the deprecated alias.
func (s *server) failRun(w http.ResponseWriter, v1 bool, status int, code, msg string) {
	if v1 {
		writeJSON(w, status, api.ErrorEnvelope{Err: api.Error{Code: code, Message: msg}})
		return
	}
	httpError(w, status, msg)
}

func (s *server) serveRun(w http.ResponseWriter, r *http.Request, v1 bool) {
	fail := func(status int, code, msg string) { s.failRun(w, v1, status, code, msg) }
	if r.Method != http.MethodPost {
		fail(http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		fail(http.StatusBadRequest, api.CodeBadJSON, "read body: "+err.Error())
		return
	}
	if len(body) > maxBody {
		fail(http.StatusRequestEntityTooLarge, api.CodeBodyTooLarge,
			fmt.Sprintf("program exceeds %d bytes", maxBody))
		return
	}
	var req runRequest
	if err := json.Unmarshal(body, &req); err != nil {
		fail(http.StatusBadRequest, api.CodeBadJSON, "bad JSON: "+err.Error())
		return
	}
	if req.Src == "" {
		fail(http.StatusBadRequest, api.CodeMissingSrc, "missing src")
		return
	}
	mode := runtime.CPython
	if req.Mode != "" {
		mode, err = runtime.ParseMode(req.Mode)
		if err != nil {
			fail(http.StatusBadRequest, api.CodeBadMode, err.Error())
			return
		}
	}
	job := &supervise.Job{
		Name: req.Name,
		Src:  req.Src,
		Mode: mode,
	}
	if job.Name == "" {
		job.Name = "request.py"
	}
	job.Breakdown = req.Breakdown
	if l := req.Limits; l != nil {
		// All budget validation — negative rejection, the 24h deadline
		// cap that used to be an overflow hazard — lives in Normalize;
		// nothing invalid ever reaches the pool.
		norm, err := l.Normalize()
		if err != nil {
			code := api.CodeInvalidLimits
			if ae, ok := err.(*api.Error); ok {
				code = ae.Code
			}
			fail(http.StatusBadRequest, code, err.Error())
			return
		}
		job.Limits = norm
	}

	id := "r" + strconv.FormatUint(s.nextID.Add(1), 10)
	res := s.pool.Submit(job)
	s.logJob(id, job, res)
	resp := runResponse{
		APIVersion: api.Version,
		RequestID:  id,
		ExitClass:  res.Class.String(),
		ExitCode:   res.Class.ExitCode(),
		Stdout:     res.Output,
		Error:      res.Err,
		Mode:       res.Mode.String(),
		Worker:     res.Worker,
		QueuedMs:   float64(res.Queued) / float64(time.Millisecond),
		RunMs:      float64(res.RunTime) / float64(time.Millisecond),
	}
	status := http.StatusOK
	if res.Class == supervise.ClassShed {
		status = http.StatusServiceUnavailable
		resp.RetryAfter = float64(res.RetryAfter) / float64(time.Millisecond)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(res.RetryAfter)))
	}
	if res.Class == supervise.ClassOK {
		resp.Stats = &api.RunStatsV1{
			Bytecodes:   res.Bytecodes,
			Allocs:      res.Allocs,
			MinorGCs:    res.MinorGCs,
			MajorGCs:    res.MajorGCs,
			ErrorDeopts: res.ErrorDeopts,
			ICHits:      res.IC.Hits(),
			ICMisses:    res.IC.Misses(),
			ICHitRate:   res.IC.HitRate(),
		}
		if res.Breakdown != nil {
			resp.Breakdown = res.Breakdown.Report()
		}
	}
	w.Header().Set("X-Request-Id", id)
	writeJSON(w, status, resp)
}

// retryAfterSeconds renders a shed result's retry hint as the integer
// seconds of the Retry-After header, rounding UP: truncation would tell
// clients to come back before the hint elapses (1.9s became "1"),
// re-shedding the well-behaved ones.
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// healthzResponse reports pool occupancy and lifetime counters.
type healthzResponse struct {
	Ok    bool            `json:"ok"`
	Stats supervise.Stats `json:"stats"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.pool.Stats()
	ok := st.Workers > 0 && !st.Draining
	status := http.StatusOK
	if !ok {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, healthzResponse{Ok: ok, Stats: st})
}

// drainzResponse reports the drain outcome.
type drainzResponse struct {
	Drained bool            `json:"drained"`
	Stats   supervise.Stats `json:"stats"`
}

func (s *server) handleDrainz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	ok := s.pool.Drain(s.drainTimeout)
	status := http.StatusOK
	if !ok {
		status = http.StatusGatewayTimeout
	}
	writeJSON(w, status, drainzResponse{Drained: ok, Stats: s.pool.Stats()})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func run() int {
	var (
		addr      = flag.String("addr", ":8042", "listen address")
		workers   = flag.Int("workers", 4, "warm VM workers in the pool")
		queue     = flag.Int("queue", 0, "admission queue depth (0: 2x workers)")
		timeout   = flag.Duration("timeout", 5*time.Second, "default wall-clock deadline per job")
		maxSteps  = flag.Uint64("max-steps", 50_000_000, "default step budget per job (0: unlimited)")
		maxHeap   = flag.Uint64("max-heap", 256<<20, "default live-heap cap per job in bytes (0: unlimited)")
		maxOutput = flag.Uint64("max-output", 8<<20, "default output cap per job in bytes (0: unlimited)")
		recycle   = flag.Int("recycle", 256, "retire a worker after this many jobs")
		drainWait = flag.Duration("drain-timeout", 30*time.Second, "how long /drainz waits for in-flight jobs")
	)
	flag.Parse()

	reg := telemetry.NewRegistry()
	pool := supervise.NewPool(supervise.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		RecycleAfter: *recycle,
		Metrics:      supervise.NewMetrics(reg),
		DefaultLimits: interp.Limits{
			MaxSteps:       *maxSteps,
			MaxHeapBytes:   *maxHeap,
			Deadline:       *timeout,
			MaxOutputBytes: *maxOutput,
		},
	})
	defer pool.Close()

	srv := newServer(pool, reg, *drainWait, os.Stderr)
	fmt.Fprintf(os.Stderr, "pyserve: listening on %s (%d workers)\n", *addr, *workers)
	if err := http.ListenAndServe(*addr, srv.mux()); err != nil {
		fmt.Fprintln(os.Stderr, "pyserve:", err)
		return 1
	}
	return 0
}

func main() { os.Exit(run()) }
