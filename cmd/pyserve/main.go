// Command pyserve is the MiniPy serving daemon: an HTTP/JSON front end
// over the internal/supervise worker pool. Programs run on warm,
// reusable VM workers under per-request resource budgets; worker
// failures are quarantined and replaced without dropping the service.
// The server itself lives in internal/serve so the routing tier
// (internal/route, cmd/pyroute) can spin in-process backends; this
// command is flag parsing and wiring.
//
// Usage:
//
//	pyserve [-addr :8042] [-workers 4] [-queue 8] [-timeout 5s]
//	        [-max-steps n] [-max-heap bytes] [-max-output bytes]
//	        [-recycle 256] [-dedup-ttl 5m] [-dedup-cap 4096]
//	        [-prog-ttl 30m] [-prog-cap 1024]
//	        [-sched] [-lanes 2] [-quantum-steps 50000]
//
// With -sched the backend is the step-sliced scheduler instead of the
// exclusive pool: -workers becomes the concurrent slot count, jobs
// interleave at -quantum-steps granularity under strict-priority lanes
// and per-tenant fair queueing, and many more jobs than slots can be
// in flight at once (long programs no longer block short ones).
//
// Endpoints (versioned API, see internal/api and internal/serve):
//
//	POST /v1/run     execute one program (inline src or by programRef);
//	                 errors carry the machine-readable envelope
//	POST /v1/programs          register source in the content-addressed
//	                           program store; returns its programRef
//	GET/DELETE /v1/programs/{ref}  store metadata / invalidation
//	GET  /v1/metrics Prometheus text exposition
//	GET  /v1/healthz pure liveness (200 while any worker is alive,
//	                 draining included)
//	GET  /v1/readyz  readiness (503 while draining or shedding at the
//	                 heap watermark)
//	POST /drainz     graceful drain
//
// plus the deprecated unversioned aliases /run, /metrics, /healthz.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/interp"
	"repro/internal/serve"
	"repro/internal/supervise"
	"repro/internal/telemetry"
)

func run() int {
	var (
		addr      = flag.String("addr", ":8042", "listen address")
		workers   = flag.Int("workers", 4, "warm VM workers in the pool")
		queue     = flag.Int("queue", 0, "admission queue depth (0: 2x workers)")
		timeout   = flag.Duration("timeout", 5*time.Second, "default wall-clock deadline per job")
		maxSteps  = flag.Uint64("max-steps", 50_000_000, "default step budget per job (0: unlimited)")
		maxHeap   = flag.Uint64("max-heap", 256<<20, "default live-heap cap per job in bytes (0: unlimited)")
		maxOutput = flag.Uint64("max-output", 8<<20, "default output cap per job in bytes (0: unlimited)")
		recycle   = flag.Int("recycle", 256, "retire a worker after this many jobs")
		drainWait = flag.Duration("drain-timeout", 30*time.Second, "how long /drainz waits for in-flight jobs")
		dedupTTL  = flag.Duration("dedup-ttl", 5*time.Minute, "how long an idempotency key's recorded result answers replays")
		dedupCap  = flag.Int("dedup-cap", 4096, "max idempotency keys held in the dedup cache")
		progTTL   = flag.Duration("prog-ttl", 30*time.Minute, "how long a registered program stays resolvable by reference")
		progCap   = flag.Int("prog-cap", 1024, "max programs held in the content-addressed store")
		sched     = flag.Bool("sched", false, "step-sliced scheduler backend: jobs interleave at quantum granularity instead of holding a worker exclusively")
		lanes     = flag.Int("lanes", 2, "strict-priority lanes (with -sched; lane 0 served first)")
		quantum   = flag.Uint64("quantum-steps", 0, "preemption granularity in bytecodes (with -sched; 0: 50k default)")
	)
	flag.Parse()

	reg := telemetry.NewRegistry()
	limits := interp.Limits{
		MaxSteps:       *maxSteps,
		MaxHeapBytes:   *maxHeap,
		Deadline:       *timeout,
		MaxOutputBytes: *maxOutput,
	}
	var backend serve.Backend
	if *sched {
		s := supervise.NewSched(supervise.SchedConfig{
			Slots:         *workers,
			QuantumSteps:  *quantum,
			Lanes:         *lanes,
			RecycleAfter:  *recycle,
			Metrics:       supervise.NewMetrics(reg),
			DefaultLimits: limits,
		})
		defer s.Close()
		backend = s
	} else {
		pool := supervise.NewPool(supervise.Config{
			Workers:       *workers,
			QueueDepth:    *queue,
			RecycleAfter:  *recycle,
			Metrics:       supervise.NewMetrics(reg),
			DefaultLimits: limits,
		})
		defer pool.Close()
		backend = pool
	}

	srv := serve.NewWithOptions(backend, reg, serve.Options{
		DrainTimeout: *drainWait,
		LogW:         os.Stderr,
		DedupTTL:     *dedupTTL,
		DedupCap:     *dedupCap,
		ProgTTL:      *progTTL,
		ProgCap:      *progCap,
	})
	mode := "workers"
	if *sched {
		mode = "step-sliced slots"
	}
	fmt.Fprintf(os.Stderr, "pyserve: listening on %s (%d %s)\n", *addr, *workers, mode)
	if err := http.ListenAndServe(*addr, srv.Mux()); err != nil {
		fmt.Fprintln(os.Stderr, "pyserve:", err)
		return 1
	}
	return 0
}

func main() { os.Exit(run()) }
