// Command pyserve is the MiniPy serving daemon: an HTTP/JSON front end
// over the internal/supervise worker pool. Programs run on warm,
// reusable VM workers under per-request resource budgets; worker
// failures are quarantined and replaced without dropping the service.
//
// Usage:
//
//	pyserve [-addr :8042] [-workers 4] [-queue 8] [-timeout 5s]
//	        [-max-steps n] [-max-heap bytes] [-max-output bytes]
//	        [-recycle 256]
//
// Endpoints:
//
//	POST /run     {"src": "...", "mode": "pypy-jit", "limits": {...}}
//	              -> {"exitClass": "ok", "exitCode": 0, "stdout": ...}
//	GET  /healthz -> pool statistics; 503 once no workers are live
//	POST /drainz  -> graceful drain: stop admitting, wait for in-flight
//
// A request's "mode" selects the runtime per request (cpython,
// pypy-nojit, pypy-jit, v8like; default cpython). Shed requests return
// 503 with a Retry-After header. /run returns 200 for every executed
// job — the job's own outcome (Python error, limit trip, internal
// error) is in exitClass/exitCode, mirroring pyrun's exit statuses.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"repro/internal/interp"
	"repro/internal/runtime"
	"repro/internal/supervise"
)

// runRequest is the POST /run body.
type runRequest struct {
	Name   string     `json:"name,omitempty"`
	Src    string     `json:"src"`
	Mode   string     `json:"mode,omitempty"`
	Limits *reqLimits `json:"limits,omitempty"`
}

// reqLimits is the per-request budget override; zero fields inherit the
// server defaults.
type reqLimits struct {
	MaxSteps          uint64 `json:"maxSteps,omitempty"`
	MaxHeapBytes      uint64 `json:"maxHeapBytes,omitempty"`
	MaxRecursionDepth int    `json:"maxRecursionDepth,omitempty"`
	DeadlineMs        int64  `json:"deadlineMs,omitempty"`
	MaxOutputBytes    uint64 `json:"maxOutputBytes,omitempty"`
}

// runResponse is the POST /run reply.
type runResponse struct {
	ExitClass  string    `json:"exitClass"`
	ExitCode   int       `json:"exitCode"`
	Stdout     string    `json:"stdout"`
	Error      string    `json:"error,omitempty"`
	Mode       string    `json:"mode"`
	Worker     int       `json:"worker"`
	QueuedMs   float64   `json:"queuedMs"`
	RunMs      float64   `json:"runMs"`
	RetryAfter float64   `json:"retryAfterMs,omitempty"`
	Stats      *runStats `json:"stats,omitempty"`
}

// runStats carries the execution counters of a successful run.
type runStats struct {
	Bytecodes   uint64 `json:"bytecodes"`
	Allocs      uint64 `json:"allocs"`
	MinorGCs    uint64 `json:"minorGCs"`
	MajorGCs    uint64 `json:"majorGCs"`
	ErrorDeopts uint64 `json:"errorDeopts,omitempty"`
}

// server ties the pool to the HTTP mux; tests drive it in-process.
type server struct {
	pool *supervise.Pool
	// drainTimeout bounds how long /drainz waits for in-flight jobs.
	drainTimeout time.Duration
}

func newServer(pool *supervise.Pool, drainTimeout time.Duration) *server {
	return &server{pool: pool, drainTimeout: drainTimeout}
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/drainz", s.handleDrainz)
	return mux
}

// maxBody bounds a /run request body (programs are small; a runaway
// client must not balloon the daemon).
const maxBody = 1 << 20

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	if len(body) > maxBody {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("program exceeds %d bytes", maxBody))
		return
	}
	var req runRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.Src == "" {
		httpError(w, http.StatusBadRequest, "missing src")
		return
	}
	mode := runtime.CPython
	if req.Mode != "" {
		mode, err = runtime.ParseMode(req.Mode)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	job := &supervise.Job{
		Name: req.Name,
		Src:  req.Src,
		Mode: mode,
	}
	if job.Name == "" {
		job.Name = "request.py"
	}
	if l := req.Limits; l != nil {
		// Negative budgets must not reach the pool: a negative Deadline
		// is nonzero, so it would bypass the server default and skew the
		// watchdog derivation.
		if l.DeadlineMs < 0 {
			httpError(w, http.StatusBadRequest, "limits.deadlineMs must be >= 0")
			return
		}
		if l.MaxRecursionDepth < 0 {
			httpError(w, http.StatusBadRequest, "limits.maxRecursionDepth must be >= 0")
			return
		}
		job.Limits = interp.Limits{
			MaxSteps:          l.MaxSteps,
			MaxHeapBytes:      l.MaxHeapBytes,
			MaxRecursionDepth: l.MaxRecursionDepth,
			Deadline:          time.Duration(l.DeadlineMs) * time.Millisecond,
			MaxOutputBytes:    l.MaxOutputBytes,
		}
	}

	res := s.pool.Submit(job)
	resp := runResponse{
		ExitClass: res.Class.String(),
		ExitCode:  res.Class.ExitCode(),
		Stdout:    res.Output,
		Error:     res.Err,
		Mode:      res.Mode.String(),
		Worker:    res.Worker,
		QueuedMs:  float64(res.Queued) / float64(time.Millisecond),
		RunMs:     float64(res.RunTime) / float64(time.Millisecond),
	}
	status := http.StatusOK
	if res.Class == supervise.ClassShed {
		status = http.StatusServiceUnavailable
		resp.RetryAfter = float64(res.RetryAfter) / float64(time.Millisecond)
		secs := int(res.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	if res.Class == supervise.ClassOK {
		resp.Stats = &runStats{
			Bytecodes:   res.Bytecodes,
			Allocs:      res.Allocs,
			MinorGCs:    res.MinorGCs,
			MajorGCs:    res.MajorGCs,
			ErrorDeopts: res.ErrorDeopts,
		}
	}
	writeJSON(w, status, resp)
}

// healthzResponse reports pool occupancy and lifetime counters.
type healthzResponse struct {
	Ok    bool            `json:"ok"`
	Stats supervise.Stats `json:"stats"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.pool.Stats()
	ok := st.Workers > 0 && !st.Draining
	status := http.StatusOK
	if !ok {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, healthzResponse{Ok: ok, Stats: st})
}

// drainzResponse reports the drain outcome.
type drainzResponse struct {
	Drained bool            `json:"drained"`
	Stats   supervise.Stats `json:"stats"`
}

func (s *server) handleDrainz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	ok := s.pool.Drain(s.drainTimeout)
	status := http.StatusOK
	if !ok {
		status = http.StatusGatewayTimeout
	}
	writeJSON(w, status, drainzResponse{Drained: ok, Stats: s.pool.Stats()})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func run() int {
	var (
		addr      = flag.String("addr", ":8042", "listen address")
		workers   = flag.Int("workers", 4, "warm VM workers in the pool")
		queue     = flag.Int("queue", 0, "admission queue depth (0: 2x workers)")
		timeout   = flag.Duration("timeout", 5*time.Second, "default wall-clock deadline per job")
		maxSteps  = flag.Uint64("max-steps", 50_000_000, "default step budget per job (0: unlimited)")
		maxHeap   = flag.Uint64("max-heap", 256<<20, "default live-heap cap per job in bytes (0: unlimited)")
		maxOutput = flag.Uint64("max-output", 8<<20, "default output cap per job in bytes (0: unlimited)")
		recycle   = flag.Int("recycle", 256, "retire a worker after this many jobs")
		drainWait = flag.Duration("drain-timeout", 30*time.Second, "how long /drainz waits for in-flight jobs")
	)
	flag.Parse()

	pool := supervise.NewPool(supervise.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		RecycleAfter: *recycle,
		DefaultLimits: interp.Limits{
			MaxSteps:       *maxSteps,
			MaxHeapBytes:   *maxHeap,
			Deadline:       *timeout,
			MaxOutputBytes: *maxOutput,
		},
	})
	defer pool.Close()

	srv := newServer(pool, *drainWait)
	fmt.Fprintf(os.Stderr, "pyserve: listening on %s (%d workers)\n", *addr, *workers)
	if err := http.ListenAndServe(*addr, srv.mux()); err != nil {
		fmt.Fprintln(os.Stderr, "pyserve:", err)
		return 1
	}
	return 0
}

func main() { os.Exit(run()) }
