package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/interp"
	"repro/internal/runtime"
	"repro/internal/supervise"
)

func smokeServer(t *testing.T) (*httptest.Server, *supervise.Pool) {
	t.Helper()
	pool := supervise.NewPool(supervise.Config{
		Workers: 2,
		DefaultLimits: interp.Limits{
			MaxSteps:       10_000_000,
			MaxHeapBytes:   128 << 20,
			Deadline:       30 * time.Second,
			MaxOutputBytes: 1 << 20,
		},
	})
	ts := httptest.NewServer(newServer(pool, 10*time.Second).mux())
	t.Cleanup(func() {
		ts.Close()
		pool.Close()
	})
	return ts, pool
}

func postRun(t *testing.T, ts *httptest.Server, req runRequest) (int, runResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out runResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode /run response: %v", err)
	}
	return resp.StatusCode, out
}

// TestSmoke is the CI gate: 50 mixed-mode requests through the HTTP
// surface — healthy programs, an ordinary Python error, and one request
// per governor limit class — after which the pool must report zero
// worker deaths of any kind.
func TestSmoke(t *testing.T) {
	ts, pool := smokeServer(t)

	type want struct {
		status int
		class  string
		exit   int
		stdout string
	}
	post := func(i int, req runRequest, w want) {
		t.Helper()
		status, out := postRun(t, ts, req)
		if status != w.status || out.ExitClass != w.class || out.ExitCode != w.exit {
			t.Fatalf("request %d (%s): status %d class %s exit %d (err %q), want %d/%s/%d",
				i, req.Name, status, out.ExitClass, out.ExitCode, out.Error,
				w.status, w.class, w.exit)
		}
		if w.stdout != "" && out.Stdout != w.stdout {
			t.Fatalf("request %d (%s): stdout %q, want %q", i, req.Name, out.Stdout, w.stdout)
		}
	}

	reqs := 0
	// 44 healthy requests cycling through every runtime mode.
	for i := 0; i < 44; i++ {
		mode := runtime.Mode(i % int(runtime.NumModes)).String()
		post(reqs, runRequest{
			Name: fmt.Sprintf("ok-%d.py", i),
			Mode: mode,
			Src:  fmt.Sprintf("total = 0\nfor j in range(50):\n    total = total + j\nprint(total + %d)\n", i),
		}, want{status: 200, class: "ok", exit: 0, stdout: fmt.Sprintf("%d\n", 1225+i)})
		reqs++
	}

	// One ordinary Python error.
	post(reqs, runRequest{Name: "err.py", Src: "print(no_such_name)\n"},
		want{status: 200, class: "error", exit: 1})
	reqs++

	// One request per limit class, each with a per-request budget.
	limitReqs := []struct {
		name  string
		src   string
		lim   reqLimits
		class string
		exit  int
	}{
		{"steps.py", "i = 0\nwhile True:\n    i = i + 1\n",
			reqLimits{MaxSteps: 100_000}, "timeout", 4},
		{"deadline.py", "i = 0\nwhile True:\n    i = i + 1\n",
			reqLimits{MaxSteps: 1 << 40, DeadlineMs: 30}, "timeout", 4},
		{"heap.py", "l = []\nwhile True:\n    l.append(\"0123456789abcdef\")\n",
			reqLimits{MaxHeapBytes: 1 << 20}, "memory", 5},
		{"recursion.py", "def f(n):\n    return f(n + 1)\nf(0)\n",
			reqLimits{MaxRecursionDepth: 64}, "recursion", 6},
		{"output.py", "while True:\n    print(\"aaaaaaaaaaaaaaaa\")\n",
			reqLimits{MaxOutputBytes: 32 << 10}, "output-limit", 7},
	}
	for i, lr := range limitReqs {
		mode := runtime.Mode(i % int(runtime.NumModes)).String()
		post(reqs, runRequest{Name: lr.name, Src: lr.src, Mode: mode, Limits: &lr.lim},
			want{status: 200, class: lr.class, exit: lr.exit})
		reqs++
	}

	if reqs != 50 {
		t.Fatalf("smoke sent %d requests, want 50", reqs)
	}

	st := pool.Stats()
	if st.Poisoned != 0 || st.Wedged != 0 || st.Leaked != 0 {
		t.Fatalf("smoke run killed workers: %+v", st)
	}
	if st.Workers == 0 {
		t.Fatalf("no live workers after smoke: %+v", st)
	}
}

// TestHealthz: the health endpoint reports live workers and lifetime
// counters.
func TestHealthz(t *testing.T) {
	ts, _ := smokeServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var h healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.Ok || h.Stats.Workers != 2 {
		t.Fatalf("healthz %+v", h)
	}
}

// TestDrainz: draining flips the daemon into rejection mode; /healthz
// goes unhealthy and /run sheds.
func TestDrainz(t *testing.T) {
	ts, _ := smokeServer(t)
	resp, err := http.Post(ts.URL+"/drainz", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("drainz status %d", resp.StatusCode)
	}
	status, out := postRun(t, ts, runRequest{Name: "x.py", Src: "print(1)\n"})
	if status != http.StatusServiceUnavailable || out.ExitClass != "shed" {
		t.Fatalf("post-drain run: status %d class %s", status, out.ExitClass)
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err == nil {
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("post-drain healthz status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestBadRequests: malformed input gets 4xx, not a crash.
func TestBadRequests(t *testing.T) {
	ts, _ := smokeServer(t)
	for _, tc := range []struct {
		name   string
		body   string
		status int
	}{
		{"bad json", "{", http.StatusBadRequest},
		{"no src", "{}", http.StatusBadRequest},
		{"bad mode", `{"src": "print(1)", "mode": "jython"}`, http.StatusBadRequest},
		{"negative deadline", `{"src": "print(1)", "limits": {"deadlineMs": -1}}`, http.StatusBadRequest},
		{"negative recursion depth", `{"src": "print(1)", "limits": {"maxRecursionDepth": -5}}`, http.StatusBadRequest},
		{"negative steps", `{"src": "print(1)", "limits": {"maxSteps": -1}}`, http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Fatalf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}
	resp, err := http.Get(ts.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /run status %d", resp.StatusCode)
	}
}
