package repro_test

// Ablation studies for the design choices DESIGN.md calls out: the
// dependence-annotated event stream (which produces the paper's "low ILP"
// result), the category-at-source attribution, and the JIT's compiled-code
// footprint.

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/emit"
	"repro/internal/gc"
	"repro/internal/interp"
	"repro/internal/isa"
	"repro/internal/jit"
	"repro/internal/uarch"
)

// stripDeps clears the DepPrev annotation before forwarding — ablating
// the serial-chain information the emitters encode.
type stripDeps struct{ next isa.Sink }

func (s stripDeps) Exec(ev *isa.Event) {
	e := *ev
	e.DepPrev = false
	s.next.Exec(&e)
}

const ablationLoop = `
def work(n):
    acc = 0
    for i in xrange(n):
        acc += i * 3 & 1023
    return acc

print(work(15000))
`

func runCPI(t testing.TB, wide bool, ablate bool) float64 {
	cfg := uarch.DefaultConfig()
	if wide {
		cfg.IssueWidth = 16
		cfg.FetchBytes = 64
	}
	ooo := uarch.NewOOOCore(cfg)
	var sink isa.Sink = ooo
	if ablate {
		sink = stripDeps{ooo}
	}
	var out strings.Builder
	vm := interp.New(emit.NewEngine(sink), gc.DefaultRefCountConfig(), &out)
	if err := vm.RunSource("ablate", ablationLoop); err != nil {
		t.Fatal(err)
	}
	return ooo.CPI()
}

// TestAblationDependenceAnnotations: without the dependence annotations
// the interpreter's dispatch chains look embarrassingly parallel and a
// wide machine becomes fast — i.e. the annotations are what reproduce the
// paper's low-ILP finding, and removing them changes the conclusion.
func TestAblationDependenceAnnotations(t *testing.T) {
	annotated := runCPI(t, true, false)
	ablated := runCPI(t, true, true)
	if ablated >= annotated*0.7 {
		t.Errorf("ablating dependences should expose ILP: CPI %.3f -> %.3f",
			annotated, ablated)
	}
	// With annotations, widening the machine barely helps (the paper's
	// issue-width insensitivity).
	narrow := runCPI(t, false, false)
	if gain := narrow / annotated; gain > 1.5 {
		t.Errorf("issue-width gain %.2fx too large for a dependence-bound stream", gain)
	}
}

func BenchmarkAblationDependencesOn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runCPI(b, true, false)
	}
}

func BenchmarkAblationDependencesOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runCPI(b, true, true)
	}
}

// fusionAblationSrc is the dispatch-heavy workload the superinstruction
// ablation runs: the loop body is exactly the pair shapes the fusion
// pass targets (compare+jump loop header, attribute load+call,
// local+local, const operands).
const fusionAblationSrc = `
STEP = 3
class Acc:
    def __init__(self):
        self.total = 0
    def bump(self, v):
        self.total = self.total + v
def run(n):
    a = Acc()
    i = 0
    while i < n:
        a.bump(STEP)
        a.total = a.total + STEP
        i = i + 1
    return a.total
print(run(20000))
`

// benchmarkFusion times the fully quickened interpreter with the
// superinstruction fusion pass toggled — the ablation isolating how
// much of the tier-2 win the fused dispatches themselves carry, with
// polymorphic stubs and unboxed-int speculation held constant.
func benchmarkFusion(b *testing.B, fuse bool) {
	for i := 0; i < b.N; i++ {
		var out strings.Builder
		vm := interp.New(emit.NewEngine(isa.NullSink{}), gc.DefaultRefCountConfig(), &out)
		vm.SetFusion(fuse)
		if err := vm.RunSource("fuse_ablate", fusionAblationSrc); err != nil {
			b.Fatal(err)
		}
		if out.String() != "120000\n" {
			b.Fatalf("fuse=%v output %q, want %q", fuse, out.String(), "120000\n")
		}
	}
}

func BenchmarkAblationFusionOn(b *testing.B)  { benchmarkFusion(b, true) }
func BenchmarkAblationFusionOff(b *testing.B) { benchmarkFusion(b, false) }

// TestAblationJITCodeFootprint: the v8like JIT's bulkier code (more
// simulated instructions per trace op) must cost instruction-cache
// capacity — visible once many distinct loops compile.
func TestAblationJITCodeFootprint(t *testing.T) {
	run := func(instrPerOp int) float64 {
		cfg := uarch.DefaultConfig().ScaleCaches(0.03125) // tiny caches
		ooo := uarch.NewOOOCore(cfg)
		var out strings.Builder
		vm := interp.New(emit.NewEngine(ooo), gc.DefaultGenConfig(256<<10), &out)
		jcfg := jit.DefaultConfig()
		jcfg.HotThreshold = 20
		jcfg.InstrPerOp = instrPerOp
		jit.New(vm, jcfg)
		src := `
def w0(n):
    a = 0
    for i in xrange(n):
        a += i ^ 1
    return a
def w1(n):
    a = 0
    for i in xrange(n):
        a += i ^ 2
    return a
def w2(n):
    a = 0
    for i in xrange(n):
        a += i ^ 3
    return a
def w3(n):
    a = 0
    for i in xrange(n):
        a += i ^ 4
    return a
total = 0
for rep in xrange(40):
    total += w0(300) + w1(300) + w2(300) + w3(300)
print(total)
`
		if err := vm.RunSource("fp", src); err != nil {
			t.Fatal(err)
		}
		return ooo.CPI()
	}
	slim := run(2)
	bulky := run(48)
	if bulky <= slim {
		t.Errorf("bulkier compiled code should raise CPI on tiny caches: %.3f vs %.3f",
			bulky, slim)
	}
}

// TestAttributionConservation: every cycle the simple core spends is
// attributed to exactly one category — the sum of the per-category
// breakdown is the total, for an arbitrary program.
func TestAttributionConservation(t *testing.T) {
	simple := uarch.NewSimpleCore(uarch.DefaultConfig())
	var out strings.Builder
	vm := interp.New(emit.NewEngine(simple), gc.DefaultRefCountConfig(), &out)
	if err := vm.RunSource("conserve", `
d = {}
for i in xrange(300):
    d["k%d" % (i % 40)] = [i, i * 2]
total = 0
for k in d.keys():
    total += d[k][1]
print(total)
`); err != nil {
		t.Fatal(err)
	}
	bd := simple.Breakdown()
	if bd.TotalCycles() != simple.Cycles() {
		t.Errorf("attribution leak: categories sum to %d, core ran %d",
			bd.TotalCycles(), simple.Cycles())
	}
	var phases uint64
	for p := core.Phase(0); p < core.NumPhases; p++ {
		phases += bd.PhaseCycles[p]
	}
	if phases != bd.TotalCycles() {
		t.Errorf("phase accounting leak: %d vs %d", phases, bd.TotalCycles())
	}
}
