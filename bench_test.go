package repro_test

// One testing.B benchmark per table and figure of the paper, each running
// the corresponding experiment on a reduced configuration (quick sweep
// points, three-benchmark sets) so `go test -bench=.` regenerates the
// whole evaluation in miniature. Component microbenchmarks at the end
// measure the simulator itself.

import (
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/emit"
	"repro/internal/experiments"
	"repro/internal/gc"
	"repro/internal/interp"
	"repro/internal/isa"
	"repro/internal/jit"
	"repro/internal/pybench"
	"repro/internal/pycompile"
	"repro/internal/runtime"
	"repro/internal/supervise"
	"repro/internal/telemetry"
	"repro/internal/uarch"
)

// benchExperiment runs one experiment per iteration with quick settings.
func benchExperiment(b *testing.B, id string, benchNames []string) {
	b.Helper()
	opts := &experiments.Options{
		W:          io.Discard,
		Quick:      true,
		Benchmarks: benchNames,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(id, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// small benchmark sets keep the per-iteration cost sane.
var smallSet = []string{"nqueens", "telco", "unpack_seq"}
var allocSet = []string{"telco", "unpack_seq", "logging_format"}
var jsSet = []string{"crypto_pyaes", "deltablue", "regex_v8"}

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1", nil) }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2", nil) }

func BenchmarkFig4a(b *testing.B)       { benchExperiment(b, "fig4a", smallSet) }
func BenchmarkFig4b(b *testing.B)       { benchExperiment(b, "fig4b", smallSet) }
func BenchmarkFig4Summary(b *testing.B) { benchExperiment(b, "fig4summary", smallSet) }
func BenchmarkFig5(b *testing.B)        { benchExperiment(b, "fig5", smallSet) }
func BenchmarkFig6(b *testing.B)        { benchExperiment(b, "fig6", jsSet) }

func BenchmarkFig7(b *testing.B)  { benchExperiment(b, "fig7", smallSet[:2]) }
func BenchmarkFig8(b *testing.B)  { benchExperiment(b, "fig8", smallSet[:2]) }
func BenchmarkFig9(b *testing.B)  { benchExperiment(b, "fig9", jsSet[:2]) }
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10", allocSet) }
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11", allocSet) }
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12", allocSet[:2]) }
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13", allocSet) }
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14", allocSet) }
func BenchmarkFig15(b *testing.B) { benchExperiment(b, "fig15", allocSet) }
func BenchmarkFig16(b *testing.B) { benchExperiment(b, "fig16", jsSet[:2]) }
func BenchmarkFig17(b *testing.B) { benchExperiment(b, "fig17", allocSet) }

// ---- Component microbenchmarks ----

const hotLoop = `
acc = 0
for i in xrange(20000):
    acc += i * 3 & 1023
print(acc)
`

// BenchmarkInterpreterThroughput measures interpreted bytecodes/sec with
// events discarded.
func BenchmarkInterpreterThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var out strings.Builder
		vm := interp.New(emit.NewEngine(isa.NullSink{}), gc.DefaultRefCountConfig(), &out)
		if err := vm.RunSource("bench", hotLoop); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpreterThroughputGoverned is BenchmarkInterpreterThroughput
// with every resource limit armed (but far from tripping): the two
// together measure the governor's dispatch-loop cost, which must stay
// under 5% (one threshold compare per bytecode plus a stride-paced
// deadline poll).
func BenchmarkInterpreterThroughputGoverned(b *testing.B) {
	limits := interp.Limits{
		MaxSteps:          1 << 40,
		MaxHeapBytes:      1 << 40,
		MaxRecursionDepth: 100000,
		Deadline:          time.Hour,
		MaxOutputBytes:    1 << 30,
	}
	for i := 0; i < b.N; i++ {
		var out strings.Builder
		vm := interp.New(emit.NewEngine(isa.NullSink{}), gc.DefaultRefCountConfig(), &out)
		vm.SetLimits(limits)
		if err := vm.RunSource("bench", hotLoop); err != nil {
			b.Fatal(err)
		}
	}
}

// benchGovernedLimits arms every limit far from tripping, as in
// BenchmarkInterpreterThroughputGoverned.
var benchGovernedLimits = interp.Limits{
	MaxSteps:          1 << 40,
	MaxHeapBytes:      1 << 40,
	MaxRecursionDepth: 100000,
	Deadline:          time.Hour,
	MaxOutputBytes:    1 << 30,
}

// BenchmarkRunnerDirectGoverned is the supervised benchmark's baseline:
// the same governed program on a fresh single-use Runner per iteration,
// with no pool in the way.
func BenchmarkRunnerDirectGoverned(b *testing.B) {
	code, err := pycompile.CompileSource("bench", hotLoop)
	if err != nil {
		b.Fatal(err)
	}
	cfg := runtime.DefaultConfig(runtime.CPython)
	cfg.Core = runtime.CountOnly
	cfg.Warmups, cfg.Measures = 0, 1
	cfg.Limits = benchGovernedLimits
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := runtime.NewRunner(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.RunCode(code); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSupervisedThroughput runs the same governed program through a
// warm one-worker supervise pool: the delta against
// BenchmarkRunnerDirectGoverned is the full supervision overhead
// (admission, dispatch, watchdog, health probe, warm reset), which must
// stay under 5%.
func BenchmarkSupervisedThroughput(b *testing.B) {
	code, err := pycompile.CompileSource("bench", hotLoop)
	if err != nil {
		b.Fatal(err)
	}
	pool := supervise.NewPool(supervise.Config{
		Workers:       1,
		DefaultLimits: benchGovernedLimits,
		// The armed-but-far MaxHeapBytes reserves 1 TiB per job; lift
		// the admission watermark accordingly.
		HeapWatermark: 1 << 41,
	})
	defer pool.Close()
	job := &supervise.Job{Name: "bench", Code: code, Mode: runtime.CPython}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := pool.Submit(job); res.Class != supervise.ClassOK {
			b.Fatalf("class %s: %s", res.Class, res.Err)
		}
	}
}

// BenchmarkSupervisedThroughputTelemetry is BenchmarkSupervisedThroughput
// with the pool fully instrumented (job counters, queue-wait and run-time
// histograms, occupancy gauges): the delta between the two is the
// telemetry tax per job, which must stay within ~2% of the uninstrumented
// pool (see EXPERIMENTS.md).
func BenchmarkSupervisedThroughputTelemetry(b *testing.B) {
	code, err := pycompile.CompileSource("bench", hotLoop)
	if err != nil {
		b.Fatal(err)
	}
	pool := supervise.NewPool(supervise.Config{
		Workers:       1,
		DefaultLimits: benchGovernedLimits,
		HeapWatermark: 1 << 41,
		Metrics:       supervise.NewMetrics(telemetry.NewRegistry()),
	})
	defer pool.Close()
	job := &supervise.Job{Name: "bench", Code: code, Mode: runtime.CPython}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := pool.Submit(job); res.Class != supervise.ClassOK {
			b.Fatalf("class %s: %s", res.Class, res.Err)
		}
	}
}

// BenchmarkSimpleCoreSimulation measures the attribution pipeline
// end to end (interpreter + simple core + caches).
func BenchmarkSimpleCoreSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var out strings.Builder
		eng := emit.NewEngine(uarch.NewSimpleCore(uarch.DefaultConfig()))
		vm := interp.New(eng, gc.DefaultRefCountConfig(), &out)
		if err := vm.RunSource("bench", hotLoop); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOOOCoreSimulation measures the out-of-order model end to end.
func BenchmarkOOOCoreSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var out strings.Builder
		eng := emit.NewEngine(uarch.NewOOOCore(uarch.DefaultConfig()))
		vm := interp.New(eng, gc.DefaultRefCountConfig(), &out)
		if err := vm.RunSource("bench", hotLoop); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJITCompiledLoop measures compiled-trace execution.
func BenchmarkJITCompiledLoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var out strings.Builder
		vm := interp.New(emit.NewEngine(isa.NullSink{}), gc.DefaultGenConfig(4<<20), &out)
		cfg := jit.DefaultConfig()
		cfg.HotThreshold = 50
		jit.New(vm, cfg)
		if err := vm.RunSource("bench", hotLoop); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMinorGC measures generational collection under heavy churn.
func BenchmarkMinorGC(b *testing.B) {
	src := `
keep = []
for i in xrange(8000):
    t = [i, i + 1, i + 2]
    if i % 500 == 0:
        keep.append(t)
print(len(keep))
`
	for i := 0; i < b.N; i++ {
		var out strings.Builder
		vm := interp.New(emit.NewEngine(isa.NullSink{}), gc.DefaultGenConfig(32<<10), &out)
		if err := vm.RunSource("bench", src); err != nil {
			b.Fatal(err)
		}
		if vm.Heap.Stats.MinorGCs == 0 {
			b.Fatal("expected collections")
		}
	}
}

// BenchmarkSuiteCPythonBreakdown measures a full suite-benchmark run with
// attribution (the unit of work behind Fig 4).
func BenchmarkSuiteCPythonBreakdown(b *testing.B) {
	bm, err := pybench.ByName("richards")
	if err != nil {
		b.Fatal(err)
	}
	cfg := runtime.DefaultConfig(runtime.CPython)
	cfg.Core = runtime.SimpleCore
	cfg.Warmups, cfg.Measures = 0, 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := runtime.NewRunner(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.RunCode(bm.Compiled()); err != nil {
			b.Fatal(err)
		}
	}
}
