package main

import (
	"strings"
	"testing"
)

func TestQuickSmoke(t *testing.T) {
	var out strings.Builder
	if err := run(true, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"benchmark: float", "cpython", "pypy-jit", "v8like"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}
