// JIT comparison: run one benchmark on all four run-time configurations
// and contrast instruction counts, CPI, and GC share — the paper's
// CPython / PyPy(±JIT) / V8 comparison in miniature (Figs 7 and 13).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/pybench"
	"repro/internal/runtime"
	"repro/internal/uarch"
)

// run executes the comparison; quick skips the warmup protocol so smoke
// tests finish fast while still exercising all four modes.
func run(quick bool, out io.Writer) error {
	bench, err := pybench.ByName("float")
	if err != nil {
		return err
	}
	machine := uarch.DefaultConfig().ScaleCaches(0.125)

	fmt.Fprintf(out, "benchmark: %s\n\n", bench.Name)
	fmt.Fprintf(out, "%-12s %14s %12s %8s %8s %12s\n",
		"runtime", "instructions", "cycles", "CPI", "GC%", "jit-iters")
	for _, mode := range []runtime.Mode{
		runtime.CPython, runtime.PyPyNoJIT, runtime.PyPyJIT, runtime.V8Like,
	} {
		cfg := runtime.DefaultConfig(mode)
		cfg.Core = runtime.OOOCore
		cfg.Uarch = machine
		cfg.NurseryBytes = 512 << 10
		if quick {
			cfg.Warmups = 0
			cfg.Measures = 1
		}
		runner, err := runtime.NewRunner(cfg)
		if err != nil {
			return err
		}
		res, err := runner.RunCode(bench.Compiled())
		if err != nil {
			return err
		}
		jitIters := uint64(0)
		if res.JIT != nil {
			jitIters = res.JIT.CompiledIters
		}
		fmt.Fprintf(out, "%-12s %14d %12d %8.3f %7.1f%% %12d\n",
			mode, res.Instrs, res.Cycles, res.CPI, res.GCShare()*100, jitIters)
	}
	fmt.Fprintln(out, "\nThe JIT executes far fewer instructions but at a higher CPI")
	fmt.Fprintln(out, "(more memory-bound), and garbage collection becomes a much larger")
	fmt.Fprintln(out, "share of the remaining time - the paper's Figs 7 and 13.")
	return nil
}

func main() {
	quick := flag.Bool("quick", false, "skip warmups for a fast run")
	flag.Parse()
	if err := run(*quick, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
