// JIT comparison: run one benchmark on all four run-time configurations
// and contrast instruction counts, CPI, and GC share — the paper's
// CPython / PyPy(±JIT) / V8 comparison in miniature (Figs 7 and 13).
package main

import (
	"fmt"
	"log"

	"repro/internal/pybench"
	"repro/internal/runtime"
	"repro/internal/uarch"
)

func main() {
	bench, err := pybench.ByName("float")
	if err != nil {
		log.Fatal(err)
	}
	machine := uarch.DefaultConfig().ScaleCaches(0.125)

	fmt.Printf("benchmark: %s\n\n", bench.Name)
	fmt.Printf("%-12s %14s %12s %8s %8s %12s\n",
		"runtime", "instructions", "cycles", "CPI", "GC%", "jit-iters")
	for _, mode := range []runtime.Mode{
		runtime.CPython, runtime.PyPyNoJIT, runtime.PyPyJIT, runtime.V8Like,
	} {
		cfg := runtime.DefaultConfig(mode)
		cfg.Core = runtime.OOOCore
		cfg.Uarch = machine
		cfg.NurseryBytes = 512 << 10
		runner, err := runtime.NewRunner(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := runner.RunCode(bench.Compiled())
		if err != nil {
			log.Fatal(err)
		}
		jitIters := uint64(0)
		if res.JIT != nil {
			jitIters = res.JIT.CompiledIters
		}
		fmt.Printf("%-12s %14d %12d %8.3f %7.1f%% %12d\n",
			mode, res.Instrs, res.Cycles, res.CPI, res.GCShare()*100, jitIters)
	}
	fmt.Println("\nThe JIT executes far fewer instructions but at a higher CPI")
	fmt.Println("(more memory-bound), and garbage collection becomes a much larger")
	fmt.Println("share of the remaining time - the paper's Figs 7 and 13.")
}
