// Quickstart: compile and run a MiniPy program on the instrumented
// CPython-like interpreter and print where its execution time goes — the
// paper's Fig 4 methodology on your own code.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/runtime"
)

const program = `
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)

total = 0
for i in xrange(200):
    d = {"value": fib(12), "index": i}
    total += d["value"] % 7
print("result:", total)
`

func main() {
	cfg := runtime.DefaultConfig(runtime.CPython)
	cfg.Core = runtime.SimpleCore // per-category cycle attribution
	cfg.Stdout = os.Stdout
	runner, err := runtime.NewRunner(cfg)
	if err != nil {
		log.Fatal(err)
	}

	res, err := runner.Run("quickstart", program)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n-- overhead breakdown (simple core, Table II categories) --")
	fmt.Print(res.Breakdown.String())
	fmt.Printf("\nThe interpreter spent %.1f%% of cycles on overhead; an equivalent\n",
		res.Breakdown.OverheadPercent())
	fmt.Printf("C program needs only the 'execute' slice, so the implied slowdown is %.1fx.\n",
		res.Breakdown.SlowdownVsC())
}
