// Quickstart: compile and run a MiniPy program on the instrumented
// CPython-like interpreter and print where its execution time goes — the
// paper's Fig 4 methodology on your own code.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"repro/internal/runtime"
)

const program = `
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)

total = 0
for i in xrange(200):
    d = {"value": fib(12), "index": i}
    total += d["value"] % 7
print("result:", total)
`

// run executes the example; quick shrinks the workload and skips the
// warmup protocol so smoke tests finish in milliseconds.
func run(quick bool, out io.Writer) error {
	src := program
	cfg := runtime.DefaultConfig(runtime.CPython)
	cfg.Core = runtime.SimpleCore // per-category cycle attribution
	cfg.Stdout = out
	if quick {
		src = strings.Replace(src, "xrange(200)", "xrange(20)", 1)
		cfg.Warmups = 0
		cfg.Measures = 1
	}
	runner, err := runtime.NewRunner(cfg)
	if err != nil {
		return err
	}

	res, err := runner.Run("quickstart", src)
	if err != nil {
		return err
	}

	fmt.Fprintln(out, "\n-- overhead breakdown (simple core, Table II categories) --")
	fmt.Fprint(out, res.Breakdown.String())
	fmt.Fprintf(out, "\nThe interpreter spent %.1f%% of cycles on overhead; an equivalent\n",
		res.Breakdown.OverheadPercent())
	fmt.Fprintf(out, "C program needs only the 'execute' slice, so the implied slowdown is %.1fx.\n",
		res.Breakdown.SlowdownVsC())
	return nil
}

func main() {
	quick := flag.Bool("quick", false, "run a reduced workload with no warmups")
	flag.Parse()
	if err := run(*quick, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
