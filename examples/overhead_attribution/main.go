// Overhead attribution: compare where two styles of the same computation
// spend their time — dictionary-based records vs class instances — using
// the Table II taxonomy. This is the kind of question the paper's
// methodology answers without annotating the program itself.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/runtime"
)

const dictVersion = `
total = 0
for i in xrange(4000):
    rec = {"x": i, "y": i * 2}
    total += rec["x"] + rec["y"]
print(total)
`

const classVersion = `
class Rec:
    def __init__(self, x, y):
        self.x = x
        self.y = y

total = 0
for i in xrange(4000):
    rec = Rec(i, i * 2)
    total += rec.x + rec.y
print(total)
`

func breakdown(name, src string) *runtime.Result {
	cfg := runtime.DefaultConfig(runtime.CPython)
	cfg.Core = runtime.SimpleCore
	runner, err := runtime.NewRunner(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := runner.Run(name, src)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	d := breakdown("dict-version", dictVersion)
	c := breakdown("class-version", classVersion)

	fmt.Printf("%-24s %12s %12s\n", "category", "dict-style", "class-style")
	for _, cat := range []core.Category{
		core.NameResolution, core.FunctionSetup, core.ObjectAllocation,
		core.CFunctionCall, core.Dispatch, core.GarbageCollection,
		core.Boxing, core.Execute,
	} {
		fmt.Printf("%-24s %11.1f%% %11.1f%%\n",
			cat, d.Breakdown.Percent(cat), c.Breakdown.Percent(cat))
	}
	fmt.Printf("\n%-24s %12d %12d\n", "total cycles", d.Cycles, c.Cycles)
	fmt.Println("\nClass instances pay extra name resolution (attribute lookups walk")
	fmt.Println("instance and class dicts) and function setup (__init__ frames);")
	fmt.Println("dict records pay more in the C-function-call protocol of dict ops.")
}
