// Overhead attribution: compare where two styles of the same computation
// spend their time — dictionary-based records vs class instances — using
// the Table II taxonomy. This is the kind of question the paper's
// methodology answers without annotating the program itself.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/runtime"
)

const dictVersion = `
total = 0
for i in xrange(4000):
    rec = {"x": i, "y": i * 2}
    total += rec["x"] + rec["y"]
print(total)
`

const classVersion = `
class Rec:
    def __init__(self, x, y):
        self.x = x
        self.y = y

total = 0
for i in xrange(4000):
    rec = Rec(i, i * 2)
    total += rec.x + rec.y
print(total)
`

func breakdown(name, src string, quick bool) (*runtime.Result, error) {
	cfg := runtime.DefaultConfig(runtime.CPython)
	cfg.Core = runtime.SimpleCore
	if quick {
		src = strings.Replace(src, "xrange(4000)", "xrange(400)", 1)
		cfg.Warmups = 0
		cfg.Measures = 1
	}
	runner, err := runtime.NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	return runner.Run(name, src)
}

// run compares the two record styles; quick shrinks the loops and skips
// the warmup protocol.
func run(quick bool, out io.Writer) error {
	d, err := breakdown("dict-version", dictVersion, quick)
	if err != nil {
		return err
	}
	c, err := breakdown("class-version", classVersion, quick)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "%-24s %12s %12s\n", "category", "dict-style", "class-style")
	for _, cat := range []core.Category{
		core.NameResolution, core.FunctionSetup, core.ObjectAllocation,
		core.CFunctionCall, core.Dispatch, core.GarbageCollection,
		core.Boxing, core.Execute,
	} {
		fmt.Fprintf(out, "%-24s %11.1f%% %11.1f%%\n",
			cat, d.Breakdown.Percent(cat), c.Breakdown.Percent(cat))
	}
	fmt.Fprintf(out, "\n%-24s %12d %12d\n", "total cycles", d.Cycles, c.Cycles)
	fmt.Fprintln(out, "\nClass instances pay extra name resolution (attribute lookups walk")
	fmt.Fprintln(out, "instance and class dicts) and function setup (__init__ frames);")
	fmt.Fprintln(out, "dict records pay more in the C-function-call protocol of dict ops.")
	return nil
}

func main() {
	quick := flag.Bool("quick", false, "run reduced workloads with no warmups")
	flag.Parse()
	if err := run(*quick, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
