package main

import (
	"strings"
	"testing"
)

func TestQuickSmoke(t *testing.T) {
	var out strings.Builder
	if err := run(true, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"LLC:", "nursery", "vs-first", "cache-resident"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	// The quick sweep still runs two nursery sizes.
	if !strings.Contains(got, "16384") || !strings.Contains(got, "262144") {
		t.Errorf("expected both sweep points in output:\n%s", got)
	}
}
