// Nursery tuning: reproduce the paper's central hardware-interaction
// finding on a single allocation-heavy program — sweeping the PyPy-style
// nursery trades cache locality against collection frequency, and the
// best size is application-specific (Figs 10-12).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/uarch"
)

const program = `
def churn(n):
    keep = []
    for i in xrange(n):
        row = [i, i * 2, "tag-%d" % (i % 50)]
        if i % 100 == 0:
            keep.append(row)
    total = 0
    for row in keep:
        total += row[1]
    return total

print(churn(30000))
`

// run sweeps nursery sizes; quick shrinks the workload and the sweep so
// smoke tests still cross at least one minor-collection boundary.
func run(quick bool, out io.Writer) error {
	src := program
	sweep := []uint64{16 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10, 2 << 20, 8 << 20}
	if quick {
		src = strings.Replace(src, "churn(30000)", "churn(3000)", 1)
		sweep = []uint64{16 << 10, 256 << 10}
	}

	// A 256 kB last-level cache makes the trade-off visible quickly.
	machine := uarch.DefaultConfig().ScaleCaches(0.125)
	fmt.Fprintf(out, "LLC: %d kB\n\n", machine.L3.SizeBytes>>10)
	fmt.Fprintf(out, "%-10s %12s %10s %8s %8s %10s\n",
		"nursery", "cycles", "LLC-miss%", "GC%", "minorGCs", "vs-first")

	var first float64
	for _, nursery := range sweep {
		cfg := runtime.DefaultConfig(runtime.PyPyJIT)
		cfg.Core = runtime.SimpleCore
		cfg.Uarch = machine
		cfg.NurseryBytes = nursery
		if quick {
			cfg.Warmups = 0
			cfg.Measures = 1
		}
		runner, err := runtime.NewRunner(cfg)
		if err != nil {
			return err
		}
		res, err := runner.Run("nursery-tuning", src)
		if err != nil {
			return err
		}
		if first == 0 {
			first = float64(res.Cycles)
		}
		fmt.Fprintf(out, "%-10d %12d %9.1f%% %7.1f%% %8d %9.3fx\n",
			nursery, res.Cycles, res.LLCMissRate*100,
			res.Breakdown.PhasePercent(core.PhaseGC),
			res.GC.MinorGCs, float64(res.Cycles)/first)
	}
	fmt.Fprintln(out, "\nSmall nurseries stay cache-resident but collect constantly;")
	fmt.Fprintln(out, "large ones amortize GC but stream through the cache. The minimum")
	fmt.Fprintln(out, "moves with the application and the cache size - size per app.")
	return nil
}

func main() {
	quick := flag.Bool("quick", false, "run a reduced workload and sweep")
	flag.Parse()
	if err := run(*quick, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
