// Package repro is a from-scratch Go reproduction of "Quantitative
// Overhead Analysis for Python" (Ismail & Suh, IISWC 2018): an annotated
// CPython-like interpreter, a PyPy-like tracing JIT with generational
// garbage collection, a Zsim-like microarchitecture simulator, the paper's
// benchmark suite ported to the MiniPy subset, and a harness that
// regenerates every table and figure of the evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results.
package repro
