// Package route is the pyroute front tier: an HTTP router that
// consistent-hashes MiniPy programs across N backend pyserve replicas
// and keeps serving correctly while individual nodes crash, wedge,
// drain, or shed.
//
// Robustness machinery, in the order a request meets it:
//
//   - Consistent hashing (ring.go): the program's content hash pins it
//     to one backend, keeping that backend's inline caches warm for it;
//     ejections only remap the keys that hashed to the ejected node.
//   - Active health checking (health.go): per-backend probes against
//     /v1/readyz drive an eject → half-open → readmit state machine,
//     with readiness (draining, heap watermark) kept distinct from
//     liveness so draining nodes are bypassed, not ejected.
//   - Per-backend flap breaker: readmissions are budgeted per window,
//     mirroring the supervisor's restart-budget breaker — a flapping
//     node is held out instead of being fed traffic on every recovery.
//   - Bounded retries: only failures that prove the job never executed
//     (dial errors, 503 rejections) are re-routed; anything that may
//     have executed returns an upstream_error instead of risking a
//     double execution. Retries spend from a token-bucket retry budget
//     and back off exponentially with jitter, honoring backend
//     Retry-After hints.
//   - Optional tail-latency hedging: after a histogram-derived delay, a
//     duplicate attempt races the slow primary (safe because /v1/run is
//     pure compute); first acceptable answer wins, the loser is
//     canceled.
//   - Graceful degradation: with a single routable backend the router
//     collapses to pass-through — no hedging, no re-routing, just the
//     one hop.
//
// The happy path stays off every slow structure: one ring lookup, one
// atomic-token nibble, one upstream round trip; health state is only
// read, never written, unless a failure happens.
package route

import (
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterizes a Router. Zero values take the documented
// defaults.
type Config struct {
	// Backends are the pyserve replica base URLs ("http://host:port").
	// Required, at least one.
	Backends []string

	// UpstreamTimeout bounds one forwarded attempt (default 30s).
	UpstreamTimeout time.Duration
	// ProbeInterval paces the active health prober (default 1s);
	// ProbeTimeout bounds one probe (default 500ms).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// FailThreshold is how many consecutive connect failures (probe or
	// traffic) eject a backend (default 3).
	FailThreshold int
	// ReadmitAfter is the ejection cooldown before a half-open trial
	// (default 2s).
	ReadmitAfter time.Duration
	// ReadmitBudget/ReadmitWindow are the flap breaker: at most Budget
	// readmissions per Window, past which the backend is held ejected
	// (defaults 4 per minute).
	ReadmitBudget int
	ReadmitWindow time.Duration

	// MaxAttempts caps attempts per request, first try included
	// (default 3, clamped to the initial backend count).
	MaxAttempts int
	// MetricsTimeout bounds one backend's /v1/metrics fetch during fleet
	// aggregation (default 1s). Each backend gets its own deadline: one
	// stalled replica delays the fleet scrape by at most this much, it
	// cannot hold the whole scrape hostage.
	MetricsTimeout time.Duration
	// RetryBudgetRatio is the token-bucket accrual: each incoming
	// request earns this many retry tokens, each retry spends one
	// (default 0.2 — retries may not exceed ~20% of traffic). The
	// bucket is capped at RetryBudgetBurst (default 50).
	RetryBudgetRatio float64
	RetryBudgetBurst float64
	// BackoffBase/BackoffMax pace same-request retries when no
	// alternative backend is immediately available (defaults 25ms/1s);
	// a backend Retry-After hint floors the wait. MaxRetryWait bounds
	// the total sleeping one request may do (default 2s) — a hint
	// beyond it fails the request fast instead of parking the client.
	BackoffBase  time.Duration
	BackoffMax   time.Duration
	MaxRetryWait time.Duration

	// Hedge enables tail-latency hedging: if the primary attempt is
	// still in flight after the observed HedgeQuantile upstream latency
	// (default p95, floored by HedgeMinDelay, default 5ms), a duplicate
	// races it on the next ring backend. Off by default — it trades
	// duplicate execution for tail latency, which is only safe because
	// /v1/run is pure compute.
	Hedge         bool
	HedgeQuantile float64
	HedgeMinDelay time.Duration

	// Seed drives the retry-jitter PRNG (0 picks a fixed default).
	Seed uint64
	// Metrics, when non-nil, mirrors router activity into telemetry
	// (see NewMetrics). Nil runs unobserved at zero cost.
	Metrics *Metrics
	// Logw receives one structured JSON line per request and per
	// health-state transition (nil disables).
	Logw io.Writer
}

func (c *Config) setDefaults() {
	if c.UpstreamTimeout <= 0 {
		c.UpstreamTimeout = 30 * time.Second
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 500 * time.Millisecond
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.ReadmitAfter <= 0 {
		c.ReadmitAfter = 2 * time.Second
	}
	if c.ReadmitBudget <= 0 {
		c.ReadmitBudget = 4
	}
	if c.ReadmitWindow <= 0 {
		c.ReadmitWindow = time.Minute
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if n := len(c.Backends); c.MaxAttempts > n && n > 0 {
		c.MaxAttempts = n
	}
	if c.MetricsTimeout <= 0 {
		c.MetricsTimeout = time.Second
	}
	if c.RetryBudgetRatio <= 0 {
		c.RetryBudgetRatio = 0.2
	}
	if c.RetryBudgetBurst <= 0 {
		c.RetryBudgetBurst = 50
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 25 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = time.Second
	}
	if c.MaxRetryWait <= 0 {
		c.MaxRetryWait = 2 * time.Second
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile >= 1 {
		c.HedgeQuantile = 0.95
	}
	if c.HedgeMinDelay <= 0 {
		c.HedgeMinDelay = 5 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 0x9E3779B97F4A7C15
	}
}

// fleet is one immutable generation of the router's backend set: the
// backends and the ring built over them, published together behind one
// atomic pointer. Every reader — request routing, probing, health
// reports, metric gauges — loads the pointer once and works on a
// consistent snapshot; Reconfigure builds the next generation and swaps
// it in, so the traffic path never sees a half-updated fleet and never
// takes a lock.
type fleet struct {
	backends []*backend // index-aligned with the ring's idx space
	ring     *ring
}

// Router is the front tier. Obtain one from New, serve its Mux, Close it
// when done. The backend set can be changed at runtime via Reconfigure
// (SIGHUP or /v1/admin/backends in cmd/pyroute) without a restart.
type Router struct {
	cfg   Config
	fleet atomic.Pointer[fleet]

	// reconfigMu serializes Reconfigure calls (the traffic path never
	// takes it); it also guards parting.
	reconfigMu sync.Mutex
	// parting holds removed backends still draining in-flight requests;
	// pruned on the next admin read once their inflight count hits zero.
	parting []*backend

	client      *http.Client // upstream traffic
	probeClient *http.Client // active probes (shorter timeout)

	// retryTokens is the token bucket, in millitokens so the accrual
	// ratio works on an atomic integer. Each incoming request adds
	// ratio*1000; each retry spends 1000.
	retryTokens atomic.Int64

	// lat tracks upstream attempt latency for the hedge delay.
	lat latencyTracker

	// rng drives retry jitter (xorshift64 under rngMu; jitter is off
	// the happy path).
	rngMu sync.Mutex
	rng   uint64

	nextID atomic.Uint64 // generated request ids ("pr<N>")

	// progMu guards progSrc: the router's memory of program sources
	// registered through it (ref → source), used to re-register
	// read-through when a backend answers a run-by-reference request
	// with unknown_program (fresh replica, expired entry, invalidation).
	progMu  sync.Mutex
	progSrc map[string]progRecord

	metrics *Metrics
	logw    io.Writer
	logMu   sync.Mutex

	probeStop chan struct{}
	probeDone chan struct{}
	closeOnce sync.Once
}

// New builds and starts a Router (including its health prober).
func New(cfg Config) (*Router, error) {
	cfg.setDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errNoBackendsConfigured
	}
	rt := &Router{
		cfg: cfg,
		client: &http.Client{
			Timeout: cfg.UpstreamTimeout,
			// The default transport caps idle conns per host at 2; a
			// router funnels all traffic through few hosts, so raise it
			// or every burst pays connection setup.
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 64,
				IdleConnTimeout:     90 * time.Second,
				DialContext: (&net.Dialer{
					Timeout: cfg.UpstreamTimeout,
				}).DialContext,
			},
		},
		probeClient: &http.Client{Timeout: cfg.ProbeTimeout},
		progSrc:     make(map[string]progRecord),
		rng:         cfg.Seed,
		metrics:     cfg.Metrics,
		logw:        cfg.Logw,
		probeStop:   make(chan struct{}),
		probeDone:   make(chan struct{}),
	}
	f := &fleet{ring: buildRing(cfg.Backends)}
	for _, u := range cfg.Backends {
		f.backends = append(f.backends, &backend{url: u, slot: rt.slotFor(u)})
	}
	rt.fleet.Store(f)
	rt.retryTokens.Store(int64(cfg.RetryBudgetBurst * 1000))
	if rt.metrics != nil {
		rt.registerGauges()
	}
	go rt.probeLoop()
	return rt, nil
}

// Close stops the health prober. In-flight requests finish normally.
func (rt *Router) Close() {
	rt.closeOnce.Do(func() {
		close(rt.probeStop)
		<-rt.probeDone
	})
}

// errNoBackendsConfigured rejects a backend-less Config at construction.
var errNoBackendsConfigured = errString("route: no backends configured")

type errString string

func (e errString) Error() string { return string(e) }

// candidates returns the backends eligible for key in ring-preference
// order: the healthy ones, or — when nothing in the fleet is healthy —
// the drained-but-alive ones as a last resort. A drained backend is
// alive and enforcing its own admission control (watermark shedding,
// graceful drain), so when there is no better node the request is
// passed through and the backend's per-request verdict (accept, or
// 503 + Retry-After) stands; synthesizing a router-side rejection here
// would make a fleet that is merely saturated look dead. Ejected and
// half-open backends are never candidates. A nil slice means nothing
// is even alive to try.
func (rt *Router) candidates(key uint64) []*backend {
	f := rt.fleet.Load()
	var out []*backend
	f.ring.walk(key, func(idx int) bool {
		if b := f.backends[idx]; b.routable() {
			out = append(out, b)
		}
		return true
	})
	if out == nil {
		f.ring.walk(key, func(idx int) bool {
			if b := f.backends[idx]; b.drained() {
				out = append(out, b)
			}
			return true
		})
	}
	return out
}

// routableCount is the current number of routable backends.
func (rt *Router) routableCount() int {
	n := 0
	for _, b := range rt.fleet.Load().backends {
		if b.routable() {
			n++
		}
	}
	return n
}

// slotFor resolves a backend URL's stable metrics slot (see
// Metrics.slotFor); -1 when unobserved.
func (rt *Router) slotFor(url string) int { return rt.metrics.slotFor(url) }

// earnRetryToken credits the bucket for one incoming request.
func (rt *Router) earnRetryToken() {
	cap := int64(rt.cfg.RetryBudgetBurst * 1000)
	add := int64(rt.cfg.RetryBudgetRatio * 1000)
	if v := rt.retryTokens.Add(add); v > cap {
		rt.retryTokens.Store(cap)
	}
}

// spendRetryToken takes one retry's worth from the bucket; false means
// the budget is exhausted and the retry must not happen.
func (rt *Router) spendRetryToken() bool {
	for {
		v := rt.retryTokens.Load()
		if v < 1000 {
			return false
		}
		if rt.retryTokens.CompareAndSwap(v, v-1000) {
			return true
		}
	}
}

// jitter scales d by a factor uniform in [0.5, 1.5).
func (rt *Router) jitter(d time.Duration) time.Duration {
	rt.rngMu.Lock()
	x := rt.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	rt.rng = x
	rt.rngMu.Unlock()
	frac := float64(x%1024) / 1024 // [0, 1)
	return time.Duration(float64(d) * (0.5 + frac))
}

// hedgeDelay derives the hedge trigger from observed upstream latency:
// the configured quantile, floored by HedgeMinDelay (which also covers
// the cold start before enough samples exist).
func (rt *Router) hedgeDelay() time.Duration {
	d := rt.lat.quantile(rt.cfg.HedgeQuantile)
	if d < rt.cfg.HedgeMinDelay {
		d = rt.cfg.HedgeMinDelay
	}
	return d
}

// latencyTracker is a tiny lock-free log2-bucketed duration histogram,
// just enough to answer quantile queries for the hedge delay without
// pulling the full telemetry registry onto the request path.
type latencyTracker struct {
	buckets [40]atomic.Uint64 // bucket i covers (2^(i-1), 2^i] microseconds
}

func (l *latencyTracker) observe(d time.Duration) {
	us := uint64(d / time.Microsecond)
	i := 0
	for us > 1 && i < len(l.buckets)-1 {
		us >>= 1
		i++
	}
	l.buckets[i].Add(1)
}

// quantile returns an upper bound for the q-quantile of observed
// latencies (zero when empty).
func (l *latencyTracker) quantile(q float64) time.Duration {
	var counts [40]uint64
	var total uint64
	for i := range l.buckets {
		counts[i] = l.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	target := uint64(float64(total) * q)
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum > target {
			return time.Duration(uint64(1)<<uint(i)) * time.Microsecond
		}
	}
	return time.Duration(uint64(1)<<uint(len(counts)-1)) * time.Microsecond
}
