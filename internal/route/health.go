package route

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// backendState is the health state machine's position for one backend.
type backendState int

const (
	// stHealthy: routable. Probes pass, traffic flows.
	stHealthy backendState = iota
	// stDrained: alive but not ready (/v1/readyz said 503 while
	// /v1/healthz still answers). Not routable, but NOT ejected: no
	// failure threshold, no readmit cooldown — the instant readiness
	// returns, traffic does. This is how a node drains without the
	// router treating it as dead.
	stDrained
	// stEjected: the failure threshold tripped (probe or traffic
	// connect failures). No traffic; after ReadmitAfter the prober
	// moves it to half-open.
	stEjected
	// stHalfOpen: cooldown expired; the next probe decides — pass
	// readmits (budget permitting), fail re-ejects.
	stHalfOpen
)

var stateNames = map[backendState]string{
	stHealthy:  "healthy",
	stDrained:  "drained",
	stEjected:  "ejected",
	stHalfOpen: "half-open",
}

func (s backendState) String() string { return stateNames[s] }

// backend is one replica behind the router. Backend objects survive
// Reconfigure: a URL kept across a fleet swap keeps its object, so its
// health state, failure streak, and flap-breaker history persist.
type backend struct {
	url string // base URL, e.g. http://127.0.0.1:9001
	// slot is the backend's stable index into the growable per-backend
	// metric families (-1 when the router runs unobserved). Unlike a
	// fleet index it never changes or collides across reconfigurations.
	slot int

	// inflight counts attempts currently holding this backend. A backend
	// removed by Reconfigure serves its in-flight requests to completion
	// (requests hold the pointer, not a fleet index); the router reports
	// it as draining until this reaches zero.
	inflight atomic.Int64
	// removed marks the backend as dropped from the fleet: no longer
	// probed, no longer a candidate, finishing what it already has.
	removed atomic.Bool

	mu          sync.Mutex
	state       backendState
	consecFails int       // consecutive connect/probe failures
	ejectedAt   time.Time // when state last became stEjected
	readmits    []time.Time
}

// routable reports whether live traffic may be sent to the backend.
func (b *backend) routable() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == stHealthy
}

// drained reports whether the backend is alive but not ready — the
// last-resort candidate pool when nothing in the fleet is healthy.
func (b *backend) drained() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == stDrained
}

func (b *backend) currentState() (backendState, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.consecFails
}

// recordSuccess notes a successful exchange (probe pass or a served
// request). It clears the failure streak; only the prober transitions
// out of ejection, so a half-open backend is not readmitted by a stray
// late response.
func (b *backend) recordSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecFails = 0
}

// recordFailure notes a connect-level failure (probe or traffic) and
// reports whether this one crossed the eject threshold. The caller owns
// the metrics/log side effects; the state flip happens here so traffic
// and probes share one threshold.
func (b *backend) recordFailure(threshold int, now time.Time) (ejected bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecFails++
	if b.state == stHealthy || b.state == stDrained {
		if b.consecFails >= threshold {
			b.state = stEjected
			b.ejectedAt = now
			return true
		}
	} else if b.state == stHalfOpen {
		// The trial probe failed: back to ejection, cooldown restarts.
		b.state = stEjected
		b.ejectedAt = now
	}
	return false
}

// health runs the router's active prober: every ProbeInterval each
// backend is checked against its state — readiness (GET /v1/readyz) for
// routable-or-drained backends, a liveness trial for ejected ones whose
// cooldown expired. One goroutine probes all backends; probes are cheap
// (a GET against a local JSON endpoint) and serializing them keeps the
// state machine free of probe-vs-probe races.
func (rt *Router) probeLoop() {
	defer close(rt.probeDone)
	tick := time.NewTicker(rt.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-rt.probeStop:
			return
		case <-tick.C:
		}
		for _, b := range rt.fleet.Load().backends {
			rt.probe(b)
		}
	}
}

// probeVerdict is what one active probe learned.
type probeVerdict int

const (
	probeReady    probeVerdict = iota // 200 from /v1/readyz
	probeNotReady                     // live but not ready (drain, watermark)
	probeDown                         // connect failure / timeout / 5xx liveness
)

// checkReadyz performs one readiness probe against b.
func (rt *Router) checkReadyz(b *backend) probeVerdict {
	req, err := http.NewRequest(http.MethodGet, b.url+"/v1/readyz", nil)
	if err != nil {
		return probeDown
	}
	resp, err := rt.probeClient.Do(req)
	if err != nil {
		return probeDown
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return probeReady
	case http.StatusServiceUnavailable:
		// Distinguish "alive but draining/at watermark" from "the node's
		// HTTP stack is up but the service is gone": a well-formed
		// readyz body means alive.
		var rz struct {
			Ready  bool   `json:"ready"`
			Reason string `json:"reason"`
		}
		if json.NewDecoder(resp.Body).Decode(&rz) == nil && rz.Reason == "no live workers" {
			return probeDown
		}
		return probeNotReady
	default:
		return probeDown
	}
}

// probe advances one backend's state machine by one active check.
func (rt *Router) probe(b *backend) {
	now := time.Now()

	b.mu.Lock()
	state := b.state
	switch state {
	case stEjected:
		if now.Sub(b.ejectedAt) < rt.cfg.ReadmitAfter {
			b.mu.Unlock()
			return
		}
		// Cooldown served. The flap breaker mirrors the supervisor's
		// restart-budget breaker: at most ReadmitBudget readmissions per
		// ReadmitWindow; past it the backend is held ejected until the
		// window slides — a flapping node must not be fed live traffic
		// on every brief recovery.
		cut := now.Add(-rt.cfg.ReadmitWindow)
		live := b.readmits[:0]
		for _, t := range b.readmits {
			if t.After(cut) {
				live = append(live, t)
			}
		}
		b.readmits = live
		if len(b.readmits) >= rt.cfg.ReadmitBudget {
			b.ejectedAt = now // re-arm the cooldown; check again next window
			b.mu.Unlock()
			rt.metrics.breakerHeld(b.slot)
			return
		}
		b.state = stHalfOpen
	case stHalfOpen:
		// A previous trial is still deciding this tick; fall through and
		// try again.
	}
	b.mu.Unlock()

	verdict := rt.checkReadyz(b)

	// The state flip happens under b.mu; the log line is emitted after
	// release. logEvent must never run with b.mu held — it snapshots no
	// state of its own, and the mutex is not reentrant.
	var event string
	b.mu.Lock()
	switch b.state {
	case stHealthy, stDrained:
		switch verdict {
		case probeReady:
			b.state = stHealthy
			b.consecFails = 0
		case probeNotReady:
			if b.state != stDrained {
				event = "backend drained"
			}
			b.state = stDrained
			b.consecFails = 0
		case probeDown:
			b.consecFails++
			if b.consecFails >= rt.cfg.FailThreshold {
				b.state = stEjected
				b.ejectedAt = now
				rt.metrics.eject(b.slot)
				event = "backend ejected"
			}
		}
	case stHalfOpen:
		if verdict == probeReady {
			b.state = stHealthy
			b.consecFails = 0
			b.readmits = append(b.readmits, now)
			rt.metrics.readmit(b.slot)
			event = "backend readmitted"
		} else {
			b.state = stEjected
			b.ejectedAt = now
		}
	}
	st, fails := b.state, b.consecFails
	b.mu.Unlock()
	if event != "" {
		rt.logEvent(event, b.url, st, fails)
	}
}

// backendHealth is one backend's entry in the router health report.
type backendHealth struct {
	URL         string `json:"url"`
	State       string `json:"state"`
	ConsecFails int    `json:"consecFails,omitempty"`
}

// healthReport summarizes the fleet for /v1/healthz and /v1/readyz.
func (rt *Router) healthReport() (ok bool, report []backendHealth) {
	backends := rt.fleet.Load().backends
	report = make([]backendHealth, len(backends))
	for i, b := range backends {
		st, fails := b.currentState()
		report[i] = backendHealth{URL: b.url, State: st.String(), ConsecFails: fails}
		if st == stHealthy {
			ok = true
		}
	}
	return ok, report
}

// logEvent emits one structured health-event log line. The state is
// passed in as a snapshot: callers may (and do) decide to log while
// holding a backend's mutex, so logEvent must not lock it again.
func (rt *Router) logEvent(event, url string, st backendState, fails int) {
	if rt.logw == nil {
		return
	}
	line := fmt.Sprintf(`{"ts":%q,"event":%q,"backend":%q,"state":%q,"consecFails":%d}`,
		time.Now().UTC().Format(time.RFC3339Nano), event, url, st.String(), fails)
	rt.logMu.Lock()
	fmt.Fprintln(rt.logw, line)
	rt.logMu.Unlock()
}
