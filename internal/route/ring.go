package route

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// ContentHash is the routing key: a stable 64-bit digest of the program
// source. It is the same content identity a compile/quicken artifact
// cache will key on later — programs hash identically here and there, so
// a router pins each distinct program to one backend and that backend's
// warm inline caches (and eventually its cached artifacts) stay hot for
// it.
func ContentHash(src string) uint64 {
	sum := sha256.Sum256([]byte(src))
	return binary.BigEndian.Uint64(sum[:8])
}

// RefKey resolves a program reference (hex SHA-256 of the source, see
// progstore.Ref) to the ring key ContentHash would produce for the same
// source: the first 8 bytes of the digest are the first 16 hex digits
// of the ref. Run-by-reference requests therefore pin to the same
// backend as inline requests for the same program — the ref IS the
// content identity the ring hashes. Reports false for malformed refs.
func RefKey(ref string) (uint64, bool) {
	if len(ref) != 64 {
		return 0, false
	}
	key, err := strconv.ParseUint(ref[:16], 16, 64)
	if err != nil {
		return 0, false
	}
	return key, true
}

// vnodes is how many ring points each backend contributes. 64 points per
// backend keeps the keyspace split within a few percent of even for the
// small replica counts a front tier realistically fronts.
const vnodes = 64

// ring is a consistent-hash ring over backend indexes. Immutable after
// construction: health is consulted at walk time, not baked into the
// ring, so ejecting a backend only remaps the keys that hashed to it.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	idx  int
}

// buildRing places vnodes points per backend name on the ring. Points
// hash the backend name, not its index, so reordering the backend list
// does not reshuffle the keyspace.
func buildRing(names []string) *ring {
	r := &ring{points: make([]ringPoint, 0, len(names)*vnodes)}
	for i, name := range names {
		for v := 0; v < vnodes; v++ {
			sum := sha256.Sum256([]byte(name + "#" + strconv.Itoa(v)))
			r.points = append(r.points, ringPoint{
				hash: binary.BigEndian.Uint64(sum[:8]),
				idx:  i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// walk yields distinct backend indexes in ring order starting at key's
// successor point: the key's owner first, then the fallbacks a retry
// should prefer, in a deterministic order every router instance agrees
// on. Stops early when yield returns false.
func (r *ring) walk(key uint64, yield func(idx int) bool) {
	if len(r.points) == 0 {
		return
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	seen := make(map[int]bool, 8)
	for n := 0; n < len(r.points); n++ {
		p := r.points[(start+n)%len(r.points)]
		if seen[p.idx] {
			continue
		}
		seen[p.idx] = true
		if !yield(p.idx) {
			return
		}
	}
}

// owner returns the key's primary backend index (-1 on an empty ring).
func (r *ring) owner(key uint64) int {
	idx := -1
	r.walk(key, func(i int) bool { idx = i; return false })
	return idx
}
