package route

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"repro/internal/api"
)

// maxBody bounds a forwarded request body, mirroring the backend's cap.
const maxBody = 1 << 20

// maxUpstreamBody bounds a backend response the router will buffer.
const maxUpstreamBody = 8 << 20

// Mux returns the router's route table.
func (rt *Router) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", rt.handleRun)
	mux.HandleFunc("/v1/metrics", rt.handleMetrics)
	mux.HandleFunc("/v1/healthz", rt.handleHealthz)
	mux.HandleFunc("/v1/readyz", rt.handleReadyz)
	return mux
}

// Request outcomes, the router's top-level accounting. Indexes into the
// pyroute_requests_total counter family.
const (
	outOK          = iota // 2xx passed through
	outClientError        // backend 4xx passed through
	outShed               // backend 503 passed through (all alternatives spent)
	outNoBackends         // no routable backend could take the job
	outRetryBudget        // retry-safe failure, but the budget was dry
	outUpstream           // non-retryable upstream failure (may have executed)
	numOutcomes
)

var outcomeNames = [numOutcomes]string{
	"ok", "client_error", "shed", "no_backends", "retry_budget_exhausted", "upstream_error",
}

// upstreamResp is one attempt's buffered backend response.
type upstreamResp struct {
	status     int
	body       []byte
	retryAfter string // verbatim Retry-After header ("" if none)
	latency    time.Duration
}

// routeResult is what forward hands back to the HTTP layer.
type routeResult struct {
	status     int
	body       []byte // response body, already JSON
	retryAfter string // Retry-After to propagate ("" if none)
	backend    string // backend that produced the response ("" if router-generated)
	attempts   int
	hedged     bool
	outcome    int
}

func (rt *Router) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rt.writeEnvelope(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		rt.writeEnvelope(w, http.StatusBadRequest, api.CodeBadJSON, "read body: "+err.Error())
		return
	}
	if len(body) > maxBody {
		rt.writeEnvelope(w, http.StatusRequestEntityTooLarge, api.CodeBodyTooLarge,
			fmt.Sprintf("program exceeds %d bytes", maxBody))
		return
	}
	// The router parses just enough to route: the program source for the
	// content hash. Full validation stays at the backend; the original
	// bytes are forwarded untouched.
	var req api.RunRequestV1
	if err := json.Unmarshal(body, &req); err != nil {
		rt.writeEnvelope(w, http.StatusBadRequest, api.CodeBadJSON, "bad JSON: "+err.Error())
		return
	}
	if req.Src == "" {
		rt.writeEnvelope(w, http.StatusBadRequest, api.CodeMissingSrc, "missing src")
		return
	}

	id := r.Header.Get(api.HeaderRequestID)
	if id == "" || len(id) > 128 {
		id = "pr" + strconv.FormatUint(rt.nextID.Add(1), 10)
	}
	rt.earnRetryToken()

	start := time.Now()
	res := rt.forward(r.Context(), ContentHash(req.Src), body, id)
	rt.metrics.request(res.outcome)
	rt.logRequest(id, res, time.Since(start))

	w.Header().Set(api.HeaderRequestID, id)
	w.Header().Set("Content-Type", "application/json")
	if res.retryAfter != "" {
		w.Header().Set("Retry-After", res.retryAfter)
	}
	if res.backend != "" {
		w.Header().Set("X-Pyroute-Backend", res.backend)
	}
	w.Header().Set("X-Pyroute-Attempts", strconv.Itoa(res.attempts))
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// forward runs the attempt loop: primary by ring order, then retries
// against the remaining candidates under the retry budget. Only
// failures that prove the job never executed are re-routed.
func (rt *Router) forward(ctx context.Context, key uint64, body []byte, id string) routeResult {
	cands := rt.candidates(key)
	if len(cands) == 0 {
		return rt.routerReject(http.StatusServiceUnavailable, outNoBackends,
			api.CodeNoBackends, "no routable backends", 2*rt.cfg.ProbeInterval)
	}
	// Single-node degradation: with one routable replica the router is a
	// pass-through — no re-routing targets, no hedging. (Dial errors may
	// still retry the same node below: a restarting replica is a
	// transient, and the job provably never ran.)
	single := len(cands) == 1

	maxAttempts := rt.cfg.MaxAttempts
	var slept time.Duration
	var lastShed *upstreamResp
	attempts, hedged := 0, false

	for ci := 0; attempts < maxAttempts; {
		b := cands[ci%len(cands)]
		attemptID := id
		if attempts > 0 {
			attemptID = fmt.Sprintf("%s.r%d", id, attempts+1)
		}

		var resp *upstreamResp
		var err error
		var safe bool
		if attempts == 0 && rt.cfg.Hedge && !single {
			alt := cands[(ci+1)%len(cands)]
			var won bool
			resp, err, safe, won = rt.hedgedAttempt(ctx, b, alt, body, id)
			if won {
				hedged = true
				b = alt // response came from the hedge target
			}
		} else {
			resp, err, safe = rt.attempt(ctx, b, body, attemptID)
		}
		attempts++

		switch {
		case err == nil && resp.status != http.StatusServiceUnavailable:
			out := outOK
			if resp.status >= 400 {
				out = outClientError
			}
			return routeResult{
				status: resp.status, body: resp.body, backend: b.url,
				attempts: attempts, hedged: hedged, outcome: out,
			}

		case err == nil: // 503: the backend rejected before execution
			lastShed = resp
			if single || attempts >= maxAttempts {
				// Nowhere else to go: pass the shed (and its hint)
				// through so the client backs off instead of parking
				// here.
				return routeResult{
					status: http.StatusServiceUnavailable, body: resp.body,
					retryAfter: resp.retryAfter, backend: b.url,
					attempts: attempts, hedged: hedged, outcome: outShed,
				}
			}
			if !rt.spendRetryToken() {
				rt.metrics.retryBudgetDry()
				return routeResult{
					status: http.StatusServiceUnavailable, body: resp.body,
					retryAfter: resp.retryAfter, backend: b.url,
					attempts: attempts, hedged: hedged, outcome: outShed,
				}
			}
			// A shed is a load signal, not a death: re-route to the next
			// ring candidate immediately, no backoff.
			rt.metrics.retry()
			ci++

		case safe: // connect-level failure: the job never reached a worker
			if attempts >= maxAttempts {
				return rt.routerReject(http.StatusServiceUnavailable, outNoBackends,
					api.CodeNoBackends,
					fmt.Sprintf("backend %s unreachable after %d attempts: %v", b.url, attempts, err),
					rt.cfg.BackoffMax)
			}
			if !rt.spendRetryToken() {
				rt.metrics.retryBudgetDry()
				return rt.routerReject(http.StatusServiceUnavailable, outRetryBudget,
					api.CodeRetryBudget,
					"retry budget exhausted: "+err.Error(), rt.cfg.BackoffMax)
			}
			rt.metrics.retry()
			if single || len(cands) == 1 {
				// Same node again: back off (exponential, jittered,
				// bounded) so a restarting replica gets air.
				back := rt.jitter(rt.backoffFor(attempts, lastShed))
				if slept+back > rt.cfg.MaxRetryWait {
					return rt.routerReject(http.StatusServiceUnavailable, outNoBackends,
						api.CodeNoBackends, "backend unreachable: "+err.Error(), rt.cfg.BackoffMax)
				}
				slept += back
				if !sleepCtx(ctx, back) {
					return rt.routerReject(http.StatusServiceUnavailable, outNoBackends,
						api.CodeNoBackends, "canceled while backing off", rt.cfg.BackoffMax)
				}
			} else {
				ci++ // different node, immediately
			}

		default: // unsafe: the job may have executed — never re-route
			return rt.routerReject(http.StatusBadGateway, outUpstream,
				api.CodeUpstreamError,
				fmt.Sprintf("backend %s failed mid-flight (not retried: the job may have executed): %v", b.url, err),
				0)
		}
	}
	// Attempts exhausted on sheds.
	res := rt.routerReject(http.StatusServiceUnavailable, outShed,
		api.CodeNoBackends, "every candidate shed the job", rt.cfg.BackoffMax)
	if lastShed != nil {
		res.body = lastShed.body
		res.retryAfter = lastShed.retryAfter
	}
	res.attempts = attempts
	res.hedged = hedged
	return res
}

// backoffFor derives the pre-retry sleep for attempt n, flooring it with
// the backend's Retry-After hint when one was given.
func (rt *Router) backoffFor(n int, shed *upstreamResp) time.Duration {
	back := rt.cfg.BackoffBase << uint(n-1)
	if back > rt.cfg.BackoffMax || back <= 0 {
		back = rt.cfg.BackoffMax
	}
	if shed != nil && shed.retryAfter != "" {
		if secs, err := strconv.Atoi(shed.retryAfter); err == nil {
			if hint := time.Duration(secs) * time.Second; hint > back {
				back = hint
			}
		}
	}
	return back
}

// sleepCtx sleeps d unless ctx ends first; reports whether it slept out.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// attempt forwards the request bytes to one backend and buffers the
// response. The third return reports retry safety: true means the job
// provably never executed (the connection was never established), so
// re-routing cannot double-execute it.
func (rt *Router) attempt(ctx context.Context, b *backend, body []byte, attemptID string) (*upstreamResp, error, bool) {
	rt.metrics.backendRequest(b.idx)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+"/v1/run", bytes.NewReader(body))
	if err != nil {
		return nil, err, false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.HeaderRequestID, attemptID)

	start := time.Now()
	resp, err := rt.client.Do(req)
	if err != nil {
		safe := dialFailure(err)
		rt.metrics.backendFailure(b.idx)
		if safe {
			if b.recordFailure(rt.cfg.FailThreshold, time.Now()) {
				rt.metrics.eject(b.idx)
				st, fails := b.currentState()
				rt.logEvent("backend ejected", b.url, st, fails)
			}
		}
		return nil, err, safe
	}
	defer resp.Body.Close()
	rb, err := io.ReadAll(io.LimitReader(resp.Body, maxUpstreamBody))
	if err != nil {
		// The response started and died: the job may have executed.
		rt.metrics.backendFailure(b.idx)
		return nil, err, false
	}
	lat := time.Since(start)
	// Any complete HTTP exchange — a shed included — proves the backend
	// alive; clear its failure streak and feed the hedge histogram.
	b.recordSuccess()
	rt.lat.observe(lat)
	rt.metrics.observeUpstream(b.idx, lat)
	return &upstreamResp{
		status:     resp.StatusCode,
		body:       rb,
		retryAfter: resp.Header.Get("Retry-After"),
		latency:    lat,
	}, nil, false
}

// dialFailure reports whether err proves the request never reached the
// backend: the dial itself failed (refused, unreachable, dial timeout).
// Anything past an established connection — reset mid-read, EOF,
// response timeout — may mean the job executed, so it is never
// retry-safe.
func dialFailure(err error) bool {
	var op *net.OpError
	for e := err; e != nil; e = errors.Unwrap(e) {
		if errors.As(e, &op) {
			return op.Op == "dial"
		}
	}
	return false
}

// hedgedAttempt runs the primary attempt and, if it is still in flight
// after the histogram-derived hedge delay, races a duplicate on alt.
// The first acceptable response (no transport error, not a shed) wins
// and the loser's context is canceled. Returns won=true when the
// hedge's response is the one returned.
func (rt *Router) hedgedAttempt(parent context.Context, primary, alt *backend, body []byte, id string) (*upstreamResp, error, bool, bool) {
	type res struct {
		resp *upstreamResp
		err  error
		safe bool
	}
	ctx1, cancel1 := context.WithCancel(parent)
	ctx2, cancel2 := context.WithCancel(parent)
	defer cancel1()
	defer cancel2()

	ch1 := make(chan res, 1)
	go func() {
		r, err, safe := rt.attempt(ctx1, primary, body, id)
		ch1 <- res{r, err, safe}
	}()

	timer := time.NewTimer(rt.hedgeDelay())
	defer timer.Stop()
	select {
	case r1 := <-ch1:
		return r1.resp, r1.err, r1.safe, false
	case <-timer.C:
	}

	// Primary is slow: launch the hedge.
	rt.metrics.hedge()
	ch2 := make(chan res, 1)
	go func() {
		r, err, safe := rt.attempt(ctx2, alt, body, id+".h2")
		ch2 <- res{r, err, safe}
	}()

	acceptable := func(r res) bool {
		return r.err == nil && r.resp.status != http.StatusServiceUnavailable
	}
	select {
	case r1 := <-ch1:
		if acceptable(r1) {
			cancel2()
			return r1.resp, r1.err, r1.safe, false
		}
		r2 := <-ch2
		if acceptable(r2) {
			rt.metrics.hedgeWin()
			return r2.resp, r2.err, r2.safe, true
		}
		return r1.resp, r1.err, r1.safe, false
	case r2 := <-ch2:
		if acceptable(r2) {
			cancel1()
			rt.metrics.hedgeWin()
			return r2.resp, r2.err, r2.safe, true
		}
		r1 := <-ch1
		return r1.resp, r1.err, r1.safe, false
	}
}

// routerReject builds a router-generated error result with the /v1
// machine-readable envelope and a Retry-After hint for 503s.
func (rt *Router) routerReject(status, outcome int, code, msg string, retryHint time.Duration) routeResult {
	body, _ := json.Marshal(api.ErrorEnvelope{Err: api.Error{Code: code, Message: msg}})
	body = append(body, '\n')
	res := routeResult{status: status, body: body, outcome: outcome, attempts: 1}
	if status == http.StatusServiceUnavailable && retryHint > 0 {
		secs := int((retryHint + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		res.retryAfter = strconv.Itoa(secs)
	}
	return res
}

// writeEnvelope writes a router-side rejection directly.
func (rt *Router) writeEnvelope(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(api.ErrorEnvelope{Err: api.Error{Code: code, Message: msg}})
}

// handleHealthz reports router liveness: 200 while at least one backend
// is routable, with the per-backend state table either way.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rt.writeHealth(w)
}

// handleReadyz mirrors healthz: a router is ready exactly when it can
// route somewhere.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	rt.writeHealth(w)
}

type routerHealth struct {
	Ok       bool            `json:"ok"`
	Backends []backendHealth `json:"backends"`
}

func (rt *Router) writeHealth(w http.ResponseWriter) {
	ok, report := rt.healthReport()
	status := http.StatusOK
	if !ok {
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(int((2*rt.cfg.ProbeInterval+time.Second-1)/time.Second)))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(routerHealth{Ok: ok, Backends: report})
}

// requestLog is the router's structured per-request log line.
type requestLog struct {
	Time      string  `json:"ts"`
	RequestID string  `json:"requestId"`
	Backend   string  `json:"backend,omitempty"`
	Attempts  int     `json:"attempts"`
	Hedged    bool    `json:"hedged,omitempty"`
	Status    int     `json:"status"`
	Outcome   string  `json:"outcome"`
	TotalMs   float64 `json:"totalMs"`
}

func (rt *Router) logRequest(id string, res routeResult, total time.Duration) {
	if rt.logw == nil {
		return
	}
	line, err := json.Marshal(requestLog{
		Time:      time.Now().UTC().Format(time.RFC3339Nano),
		RequestID: id,
		Backend:   res.backend,
		Attempts:  res.attempts,
		Hedged:    res.hedged,
		Status:    res.status,
		Outcome:   outcomeNames[res.outcome],
		TotalMs:   float64(total) / float64(time.Millisecond),
	})
	if err != nil {
		return
	}
	rt.logMu.Lock()
	_, _ = rt.logw.Write(append(line, '\n'))
	rt.logMu.Unlock()
}
