package route

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/api"
)

// maxBody bounds a forwarded request body, mirroring the backend's cap.
const maxBody = 1 << 20

// maxUpstreamBody bounds a backend response the router will buffer.
const maxUpstreamBody = 8 << 20

// Mux returns the router's route table.
func (rt *Router) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", rt.handleRun)
	mux.HandleFunc("/v1/programs", rt.handlePrograms)
	mux.HandleFunc("/v1/programs/", rt.handleProgram)
	mux.HandleFunc("/v1/metrics", rt.handleMetrics)
	mux.HandleFunc("/v1/healthz", rt.handleHealthz)
	mux.HandleFunc("/v1/readyz", rt.handleReadyz)
	mux.HandleFunc("/v1/admin/backends", rt.handleAdminBackends)
	return mux
}

// Request outcomes, the router's top-level accounting. Indexes into the
// pyroute_requests_total counter family.
const (
	outOK          = iota // 2xx passed through
	outClientError        // backend 4xx passed through
	outShed               // backend 503 passed through (all alternatives spent)
	outNoBackends         // no routable backend could take the job
	outRetryBudget        // retry-safe failure, but the budget was dry
	outUpstream           // non-retryable upstream failure (may have executed)
	numOutcomes
)

var outcomeNames = [numOutcomes]string{
	"ok", "client_error", "shed", "no_backends", "retry_budget_exhausted", "upstream_error",
}

// upstreamResp is one attempt's buffered backend response.
type upstreamResp struct {
	status     int
	body       []byte
	retryAfter string // verbatim Retry-After header ("" if none)
	latency    time.Duration
}

// routeResult is what forward hands back to the HTTP layer.
type routeResult struct {
	status     int
	body       []byte // response body, already JSON
	retryAfter string // Retry-After to propagate ("" if none)
	backend    string // backend that produced the response ("" if router-generated)
	attempts   int
	hedged     bool
	outcome    int
}

func (rt *Router) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rt.writeEnvelope(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		rt.writeEnvelope(w, http.StatusBadRequest, api.CodeBadJSON, "read body: "+err.Error())
		return
	}
	if len(body) > maxBody {
		rt.writeEnvelope(w, http.StatusRequestEntityTooLarge, api.CodeBodyTooLarge,
			fmt.Sprintf("program exceeds %d bytes", maxBody))
		return
	}
	// The router parses just enough to route: the program source for the
	// content hash. Full validation stays at the backend; the original
	// bytes are forwarded untouched.
	var req api.RunRequestV1
	if err := json.Unmarshal(body, &req); err != nil {
		rt.writeEnvelope(w, http.StatusBadRequest, api.CodeBadJSON, "bad JSON: "+err.Error())
		return
	}
	if (req.Src == "") == (req.ProgramRef == "") {
		rt.writeEnvelope(w, http.StatusBadRequest, api.CodeMissingProgram,
			"exactly one of src and programRef is required")
		return
	}
	// Inline source and its reference hash to the SAME ring key (the ref
	// is the content digest ContentHash truncates), so both forms of the
	// same program pin to the same backend and share its warm store entry.
	var key uint64
	if req.ProgramRef != "" {
		var ok bool
		if key, ok = RefKey(req.ProgramRef); !ok {
			rt.writeEnvelope(w, http.StatusBadRequest, api.CodeBadProgram,
				"programRef must be a hex SHA-256")
			return
		}
	} else {
		key = ContentHash(req.Src)
	}

	id := r.Header.Get(api.HeaderRequestID)
	if id == "" || len(id) > 128 {
		id = "pr" + strconv.FormatUint(rt.nextID.Add(1), 10)
	}
	rt.earnRetryToken()

	start := time.Now()
	res := rt.forward(r.Context(), key, body, id, req.IdempotencyKey != "", req.ProgramRef)
	rt.metrics.request(res.outcome)
	rt.logRequest(id, res, time.Since(start))

	w.Header().Set(api.HeaderRequestID, id)
	w.Header().Set("Content-Type", "application/json")
	if res.retryAfter != "" {
		w.Header().Set("Retry-After", res.retryAfter)
	}
	if res.backend != "" {
		w.Header().Set("X-Pyroute-Backend", res.backend)
	}
	w.Header().Set("X-Pyroute-Attempts", strconv.Itoa(res.attempts))
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// forward runs the attempt loop: primary by ring order, then retries
// against the remaining candidates under the retry budget. Failures
// that prove the job never executed are always re-routable; mid-flight
// failures are additionally re-routable when the request declared an
// idempotency key (idem) — the backends' dedup cache absorbs the case
// where the first attempt did execute, so a replay cannot double-run
// the job. The first mid-flight replay targets the SAME backend (if the
// job ran there, the recorded result answers instantly); later ones
// advance along the ring. ref, when non-empty, is the request's
// programRef: a backend 404 unknown_program triggers one read-through
// re-registration per request when the router remembers the source.
func (rt *Router) forward(ctx context.Context, key uint64, body []byte, id string, idem bool, ref string) routeResult {
	digest := api.Digest(body)
	cands := rt.candidates(key)
	if len(cands) == 0 {
		return rt.routerReject(http.StatusServiceUnavailable, outNoBackends,
			api.CodeNoBackends, "no routable backends", 2*rt.cfg.ProbeInterval)
	}
	// Single-node degradation: with one routable replica the router is a
	// pass-through — no re-routing targets, no hedging. (Dial errors may
	// still retry the same node below: a restarting replica is a
	// transient, and the job provably never ran.)
	single := len(cands) == 1

	maxAttempts := rt.cfg.MaxAttempts
	var slept time.Duration
	var lastShed *upstreamResp
	attempts, hedged := 0, false
	replayedSame := false // one same-node replay per request (idem only)
	repaired := false     // one unknown_program read-through repair per request

	for ci := 0; attempts < maxAttempts; {
		b := cands[ci%len(cands)]
		attemptID := id
		if attempts > 0 {
			attemptID = fmt.Sprintf("%s.r%d", id, attempts+1)
		}

		var resp *upstreamResp
		var err error
		var safe bool
		// Hedging is suppressed for keyed requests: the hedge races the
		// same body on a SECOND replica, and the dedup cache that makes
		// keyed requests exactly-once is per-replica — a slow (but
		// executing) primary plus a hedge would run the job on two
		// replicas, violating the fleet-wide max-executions<=1 oracle.
		// Keyed requests fall back to the replay discipline instead
		// (same-backend first), which is dedup-safe by construction.
		if attempts == 0 && rt.cfg.Hedge && !single && !idem {
			alt := cands[(ci+1)%len(cands)]
			var won bool
			resp, err, safe, won = rt.hedgedAttempt(ctx, b, alt, body, id, digest)
			if won {
				hedged = true
				b = alt // response came from the hedge target
			}
		} else {
			resp, err, safe = rt.attempt(ctx, b, body, attemptID, digest)
		}
		attempts++

		switch {
		case err == nil && resp.status != http.StatusServiceUnavailable:
			if ref != "" && !repaired && isUnknownProgram(resp.status, resp.body) &&
				rt.repairUnknownProgram(ctx, b, ref) {
				// The backend lacked the ref (fresh replica, expired or
				// invalidated entry) and the router re-registered the
				// remembered source there. The run never executed — the
				// rejection happened at resolution — so repeating the
				// SAME attempt on the SAME backend is unconditionally
				// safe. One repair per request: a second 404 means
				// something is deleting the entry under us, and looping
				// against that would hide it.
				repaired = true
				attempts-- // the resolution reject was not an execution attempt
				continue
			}
			out := outOK
			if resp.status >= 400 {
				out = outClientError
			}
			return routeResult{
				status: resp.status, body: resp.body, backend: b.url,
				attempts: attempts, hedged: hedged, outcome: out,
			}

		case err == nil: // 503: the backend rejected before execution
			lastShed = resp
			if single || attempts >= maxAttempts {
				// Nowhere else to go: pass the shed (and its hint)
				// through so the client backs off instead of parking
				// here.
				return routeResult{
					status: http.StatusServiceUnavailable, body: resp.body,
					retryAfter: resp.retryAfter, backend: b.url,
					attempts: attempts, hedged: hedged, outcome: outShed,
				}
			}
			if !rt.spendRetryToken() {
				rt.metrics.retryBudgetDry()
				return routeResult{
					status: http.StatusServiceUnavailable, body: resp.body,
					retryAfter: resp.retryAfter, backend: b.url,
					attempts: attempts, hedged: hedged, outcome: outShed,
				}
			}
			// A shed is a load signal, not a death: re-route to the next
			// ring candidate immediately, no backoff.
			rt.metrics.retry()
			ci++

		case safe: // connect-level failure: the job never reached a worker
			if attempts >= maxAttempts {
				return rt.routerReject(http.StatusServiceUnavailable, outNoBackends,
					api.CodeNoBackends,
					fmt.Sprintf("backend %s unreachable after %d attempts: %v", b.url, attempts, err),
					rt.cfg.BackoffMax)
			}
			if !rt.spendRetryToken() {
				rt.metrics.retryBudgetDry()
				return rt.routerReject(http.StatusServiceUnavailable, outRetryBudget,
					api.CodeRetryBudget,
					"retry budget exhausted: "+err.Error(), rt.cfg.BackoffMax)
			}
			rt.metrics.retry()
			if single || len(cands) == 1 {
				// Same node again: back off (exponential, jittered,
				// bounded) so a restarting replica gets air.
				back := rt.jitter(rt.backoffFor(attempts, lastShed))
				if slept+back > rt.cfg.MaxRetryWait {
					return rt.routerReject(http.StatusServiceUnavailable, outNoBackends,
						api.CodeNoBackends, "backend unreachable: "+err.Error(), rt.cfg.BackoffMax)
				}
				slept += back
				if !sleepCtx(ctx, back) {
					return rt.routerReject(http.StatusServiceUnavailable, outNoBackends,
						api.CodeNoBackends, "canceled while backing off", rt.cfg.BackoffMax)
				}
			} else {
				ci++ // different node, immediately
			}

		default: // unsafe: the job may have executed
			if !idem {
				// Without an idempotency key a replay could double-run the
				// job; surface the failure instead.
				return rt.routerReject(http.StatusBadGateway, outUpstream,
					api.CodeUpstreamError,
					fmt.Sprintf("backend %s failed mid-flight (not retried: the job may have executed): %v", b.url, err),
					0)
			}
			// Idempotent-declared: the backend's dedup cache makes the
			// replay safe — if the interrupted attempt executed, the
			// replay returns its recorded result instead of running
			// again.
			if attempts >= maxAttempts {
				return rt.routerReject(http.StatusBadGateway, outUpstream,
					api.CodeUpstreamError,
					fmt.Sprintf("backend %s failed mid-flight; idempotent replays exhausted after %d attempts: %v", b.url, attempts, err),
					0)
			}
			if !rt.spendRetryToken() {
				rt.metrics.retryBudgetDry()
				return rt.routerReject(http.StatusBadGateway, outRetryBudget,
					api.CodeRetryBudget,
					"mid-flight failure, retry budget exhausted: "+err.Error(), 0)
			}
			rt.metrics.retry()
			rt.metrics.idemReplay()
			// Give the wounded path a breath, bounded by the request's
			// total sleep budget.
			back := rt.jitter(rt.cfg.BackoffBase)
			if slept+back > rt.cfg.MaxRetryWait || !sleepCtx(ctx, back) {
				return rt.routerReject(http.StatusBadGateway, outUpstream,
					api.CodeUpstreamError, "mid-flight failure: "+err.Error(), 0)
			}
			slept += back
			if replayedSame || single {
				ci++ // same node already re-tried once: advance the ring
			} else {
				replayedSame = true // replay the same node first
			}
		}
	}
	// Attempts exhausted on sheds.
	res := rt.routerReject(http.StatusServiceUnavailable, outShed,
		api.CodeNoBackends, "every candidate shed the job", rt.cfg.BackoffMax)
	if lastShed != nil {
		res.body = lastShed.body
		res.retryAfter = lastShed.retryAfter
	}
	res.attempts = attempts
	res.hedged = hedged
	return res
}

// backoffFor derives the pre-retry sleep for attempt n, flooring it with
// the backend's Retry-After hint when one was given.
func (rt *Router) backoffFor(n int, shed *upstreamResp) time.Duration {
	back := rt.cfg.BackoffBase << uint(n-1)
	if back > rt.cfg.BackoffMax || back <= 0 {
		back = rt.cfg.BackoffMax
	}
	if shed != nil && shed.retryAfter != "" {
		if hint, ok := parseRetryAfter(shed.retryAfter, time.Now()); ok && hint > back {
			back = hint
		}
	}
	return back
}

// parseRetryAfter interprets a Retry-After header value per RFC 9110:
// either delta-seconds ("3") or an HTTP-date ("Fri, 07 Aug 2026
// 11:00:00 GMT", and the obsolete RFC 850 / asctime forms via
// http.ParseTime). Returns ok=false for garbage and for negative
// deltas; a date already in the past parses to zero (retry now).
func parseRetryAfter(v string, now time.Time) (time.Duration, bool) {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(v); err == nil {
		d := t.Sub(now)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

// sleepCtx sleeps d unless ctx ends first; reports whether it slept out.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// attempt forwards the request bytes to one backend and buffers the
// response. The third return reports retry safety: true means the job
// provably never executed (the connection was never established, or the
// backend's integrity gate rejected damaged request bytes before
// parsing), so re-routing cannot double-execute it.
func (rt *Router) attempt(ctx context.Context, b *backend, body []byte, attemptID, digest string) (*upstreamResp, error, bool) {
	rt.metrics.backendRequest(b.slot)
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+"/v1/run", bytes.NewReader(body))
	if err != nil {
		return nil, err, false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.HeaderRequestID, attemptID)
	req.Header.Set(api.HeaderContentDigest, digest)

	start := time.Now()
	resp, err := rt.client.Do(req)
	if err != nil {
		safe := dialFailure(err)
		rt.metrics.backendFailure(b.slot)
		if safe {
			if b.recordFailure(rt.cfg.FailThreshold, time.Now()) {
				rt.metrics.eject(b.slot)
				st, fails := b.currentState()
				rt.logEvent("backend ejected", b.url, st, fails)
			}
		}
		return nil, err, safe
	}
	defer resp.Body.Close()
	rb, err := io.ReadAll(io.LimitReader(resp.Body, maxUpstreamBody))
	if err != nil {
		// The response started and died: the job may have executed.
		rt.metrics.backendFailure(b.slot)
		return nil, err, false
	}
	lat := time.Since(start)
	// Any complete HTTP exchange — a shed included — proves the backend
	// alive; clear its failure streak and feed the hedge histogram.
	b.recordSuccess()
	rt.lat.observe(lat)
	rt.metrics.observeUpstream(b.slot, lat)

	// Response-integrity gate: the backend stamps X-Pyserve-Digest on
	// every /v1/run response. A mismatch means the bytes were damaged
	// between the backend and here; a MISSING digest on a 2xx means the
	// damage ate the header itself (or the body was substituted
	// wholesale). Either way the response is untrustworthy — treat it as
	// a mid-flight failure (the job ran; only the answer was lost), never
	// pass the bytes to the client.
	if want := resp.Header.Get(api.HeaderResultDigest); want != "" {
		if api.Digest(rb) != want {
			rt.metrics.integrityFailure()
			rt.metrics.backendFailure(b.slot)
			return nil, fmt.Errorf("response from %s failed integrity check", b.url), false
		}
	} else if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		rt.metrics.integrityFailure()
		rt.metrics.backendFailure(b.slot)
		return nil, fmt.Errorf("2xx response from %s missing %s", b.url, api.HeaderResultDigest), false
	}

	// A 422 integrity_violation means the REQUEST bytes were damaged on
	// the way out: the backend refused them before parsing, so the job
	// provably never executed — retry-safe, and not the backend's fault.
	if resp.StatusCode == http.StatusUnprocessableEntity {
		var env api.ErrorEnvelope
		if json.Unmarshal(rb, &env) == nil && env.Err.Code == api.CodeIntegrity {
			rt.metrics.integrityFailure()
			return nil, fmt.Errorf("request damaged in transit to %s (backend integrity reject)", b.url), true
		}
	}
	return &upstreamResp{
		status:     resp.StatusCode,
		body:       rb,
		retryAfter: resp.Header.Get("Retry-After"),
		latency:    lat,
	}, nil, false
}

// dialFailure reports whether err proves the request never reached the
// backend: the dial itself failed (refused, unreachable, dial timeout).
// Anything past an established connection — reset mid-read, EOF,
// response timeout — may mean the job executed, so it is never
// retry-safe.
func dialFailure(err error) bool {
	var op *net.OpError
	for e := err; e != nil; e = errors.Unwrap(e) {
		if errors.As(e, &op) {
			return op.Op == "dial"
		}
	}
	return false
}

// hedgedAttempt runs the primary attempt and, if it is still in flight
// after the histogram-derived hedge delay, races a duplicate on alt.
// The first acceptable response (no transport error, not a shed) wins
// and the loser's context is canceled. Returns won=true when the
// hedge's response is the one returned.
func (rt *Router) hedgedAttempt(parent context.Context, primary, alt *backend, body []byte, id, digest string) (*upstreamResp, error, bool, bool) {
	type res struct {
		resp *upstreamResp
		err  error
		safe bool
	}
	ctx1, cancel1 := context.WithCancel(parent)
	ctx2, cancel2 := context.WithCancel(parent)
	defer cancel1()
	defer cancel2()

	ch1 := make(chan res, 1)
	go func() {
		r, err, safe := rt.attempt(ctx1, primary, body, id, digest)
		ch1 <- res{r, err, safe}
	}()

	timer := time.NewTimer(rt.hedgeDelay())
	defer timer.Stop()
	select {
	case r1 := <-ch1:
		return r1.resp, r1.err, r1.safe, false
	case <-timer.C:
	}

	// Primary is slow: launch the hedge.
	rt.metrics.hedge()
	ch2 := make(chan res, 1)
	go func() {
		r, err, safe := rt.attempt(ctx2, alt, body, id+".h2", digest)
		ch2 <- res{r, err, safe}
	}()

	acceptable := func(r res) bool {
		return r.err == nil && r.resp.status != http.StatusServiceUnavailable
	}
	select {
	case r1 := <-ch1:
		if acceptable(r1) {
			cancel2()
			return r1.resp, r1.err, r1.safe, false
		}
		r2 := <-ch2
		if acceptable(r2) {
			rt.metrics.hedgeWin()
			return r2.resp, r2.err, r2.safe, true
		}
		return r1.resp, r1.err, r1.safe, false
	case r2 := <-ch2:
		if acceptable(r2) {
			cancel1()
			rt.metrics.hedgeWin()
			return r2.resp, r2.err, r2.safe, true
		}
		r1 := <-ch1
		return r1.resp, r1.err, r1.safe, false
	}
}

// routerReject builds a router-generated error result with the /v1
// machine-readable envelope and a Retry-After hint for 503s.
func (rt *Router) routerReject(status, outcome int, code, msg string, retryHint time.Duration) routeResult {
	body, _ := json.Marshal(api.ErrorEnvelope{Err: api.Error{Code: code, Message: msg}})
	body = append(body, '\n')
	res := routeResult{status: status, body: body, outcome: outcome, attempts: 1}
	if status == http.StatusServiceUnavailable && retryHint > 0 {
		secs := int((retryHint + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		res.retryAfter = strconv.Itoa(secs)
	}
	return res
}

// writeEnvelope writes a router-side rejection directly.
func (rt *Router) writeEnvelope(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(api.ErrorEnvelope{Err: api.Error{Code: code, Message: msg}})
}

// handleHealthz reports router liveness: 200 while at least one backend
// is routable, with the per-backend state table either way.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rt.writeHealth(w)
}

// handleReadyz mirrors healthz: a router is ready exactly when it can
// route somewhere.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	rt.writeHealth(w)
}

type routerHealth struct {
	Ok       bool            `json:"ok"`
	Backends []backendHealth `json:"backends"`
}

func (rt *Router) writeHealth(w http.ResponseWriter) {
	ok, report := rt.healthReport()
	status := http.StatusOK
	if !ok {
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(int((2*rt.cfg.ProbeInterval+time.Second-1)/time.Second)))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(routerHealth{Ok: ok, Backends: report})
}

// requestLog is the router's structured per-request log line.
type requestLog struct {
	Time      string  `json:"ts"`
	RequestID string  `json:"requestId"`
	Backend   string  `json:"backend,omitempty"`
	Attempts  int     `json:"attempts"`
	Hedged    bool    `json:"hedged,omitempty"`
	Status    int     `json:"status"`
	Outcome   string  `json:"outcome"`
	TotalMs   float64 `json:"totalMs"`
}

func (rt *Router) logRequest(id string, res routeResult, total time.Duration) {
	if rt.logw == nil {
		return
	}
	line, err := json.Marshal(requestLog{
		Time:      time.Now().UTC().Format(time.RFC3339Nano),
		RequestID: id,
		Backend:   res.backend,
		Attempts:  res.attempts,
		Hedged:    res.hedged,
		Status:    res.status,
		Outcome:   outcomeNames[res.outcome],
		TotalMs:   float64(total) / float64(time.Millisecond),
	})
	if err != nil {
		return
	}
	rt.logMu.Lock()
	_, _ = rt.logw.Write(append(line, '\n'))
	rt.logMu.Unlock()
}
