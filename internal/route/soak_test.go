package route

import (
	"testing"
	"time"
)

// TestRouterChaosSoak is the CI chaos leg: three real replicas behind a
// real pyroute front, one killed for good early in the run, the last
// one wedging and flapping throughout — zero wrong answers, zero
// transport errors, failures within the declared budget, service
// continues on the survivors.
func TestRouterChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short")
	}
	if raceEnabled {
		// The soak's fault cadence is wall-clock-driven; under the race
		// detector's slowdown (on small machines, ~10x with six
		// interpreter pools sharing the cores) faults outpace throughput
		// and the run measures the detector, not the router. Race
		// coverage of the router comes from the rest of this package;
		// the soak runs race-free in its own CI leg.
		t.Skip("chaos soak skipped under the race detector")
	}
	res := Soak(SoakConfig{
		Seed:       7,
		Jobs:       150,
		Backends:   3,
		Workers:    2,
		TickEvery:  15 * time.Millisecond,
		DownEveryN: 20, // kill replica 1 ~300ms in
		SlowEveryN: 35, // wedge the last replica periodically
		FlapEveryN: 50, // and bounce it
		SlowFor:    200 * time.Millisecond,
	})
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.Report != nil {
		t.Logf("chaos soak: outcomes=%v wrong=%d budgeted=%d unbudgeted=%d ratio=%.3f ejections=%d readmits=%d killed=%d wedges=%d flaps=%d",
			res.Report.Outcomes, res.Report.WrongAnswers, res.Report.BudgetedFailures,
			res.Report.UnbudgetedFailures, res.Report.FailureRatio,
			res.Ejections, res.Readmits, res.Killed, res.Wedges, res.Flaps)
	}
	if res.Killed != 1 {
		t.Errorf("kill fault fired %d times, want exactly 1", res.Killed)
	}
	if res.Wedges == 0 {
		t.Error("wedge fault never fired")
	}
	if res.Flaps == 0 {
		t.Error("flap fault never fired")
	}
	if res.Ejections == 0 {
		t.Error("router never ejected the killed replica")
	}
}

// TestRouterByteChaosSoak is the exactly-once CI leg: four replicas
// behind byte-mangling chaos proxies, one killed for good, one toggled
// out of and back into the fleet by live reconfiguration, every request
// carrying an idempotency key — zero wrong answers, zero duplicate
// executions, replays absorbed by the backends' dedup caches.
func TestRouterByteChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("byte-chaos soak skipped in -short")
	}
	if raceEnabled {
		t.Skip("byte-chaos soak skipped under the race detector")
	}
	res := Soak(SoakConfig{
		Seed:                11,
		Jobs:                150,
		Backends:            4,
		Workers:             2,
		TickEvery:           15 * time.Millisecond,
		DownEveryN:          40, // kill replica 1 mid-run
		ReloadEveryN:        25, // toggle replica 2 out of / into the fleet
		ByteChaos:           true,
		NetResetRate:        60,
		NetTruncateRate:     60,
		NetCorruptRate:      80,
		NetDelayRate:        40,
		NetStallRate:        400, // rare: each stall burns a full upstream timeout
		IdempotencyKeys:     true,
		AllowedFailureRatio: 0.25,
	})
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.Report != nil {
		t.Logf("byte chaos: outcomes=%v wrong=%d dupExec=%d dedupHits=%d maxExec=%d reloads=%d ejections=%d readmits=%d %s | %s",
			res.Report.Outcomes, res.Report.WrongAnswers, res.Report.DuplicateExecutions,
			res.DedupHits, res.MaxExecutions, res.Reloads, res.Ejections, res.Readmits,
			res.Faults, res.NetFaults)
	}
	if res.Reloads == 0 {
		t.Error("no live reconfiguration was driven")
	}
	if res.NetFaults == "" {
		t.Error("byte-chaos injector reported no activity")
	}
}
