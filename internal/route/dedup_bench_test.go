package route

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/benchgate"
)

// TestDedupOverheadGuard is the performance regression gate for the
// exactly-once layer: stamping every routed request with an idempotency
// key (digest computation, dedup-cache consult and record on the
// backend) must cost at most the p50 overhead the shared benchgate
// table allows versus the same traffic without keys. Best-of-N
// attempts with interleaved legs keep scheduler noise from flaking the
// gate; a negative overhead (keyed leg faster) trivially passes.
func TestDedupOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing guard skipped under the race detector")
	}
	gate := benchgate.Lookup("router-dedup-overhead")

	_, back := newServeBackend(t, 2)
	_, front := newRouter(t, Config{Backends: []string{back.URL}, ProbeInterval: quietProbes})
	src := "print(7)\n"

	var keySeq int
	p50 := func(n int, keyed bool) time.Duration {
		t.Helper()
		lats := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			rr := api.RunRequestV1{Src: src}
			if keyed {
				keySeq++
				rr.IdempotencyKey = fmt.Sprintf("ovh-%d", keySeq)
			}
			body, _ := json.Marshal(rr)
			start := time.Now()
			resp, err := http.Post(front.URL+"/v1/run", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatalf("POST: %v", err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			lats = append(lats, time.Since(start))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d (keyed=%v)", resp.StatusCode, keyed)
			}
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return lats[len(lats)/2]
	}

	p50(50, false) // warm the pool, the connections, and the caches

	const (
		attempts = 3
		reqs     = 200
	)
	best := 1e18
	for attempt := 1; attempt <= attempts; attempt++ {
		plain := p50(reqs, false)
		keyed := p50(reqs, true)
		overhead := (float64(keyed) - float64(plain)) / float64(plain) * 100
		if overhead < best {
			best = overhead
		}
		t.Logf("attempt %d: plain p50 %v, keyed p50 %v, overhead %+.2f%%", attempt, plain, keyed, overhead)
		if best <= gate.MaxOverheadPct {
			return
		}
	}
	t.Fatalf("dedup-enabled p50 overhead %+.2f%%, gate allows at most %.2f%%", best, gate.MaxOverheadPct)
}
