package route

// Tests for the router's program-registration plane: fleet-wide
// broadcast, ring affinity shared between inline source and
// run-by-reference, and read-through repair of backends that lost a
// store entry.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/progstore"
	"repro/internal/serve"
	"repro/internal/supervise"
	"repro/internal/telemetry"
)

// TestRefKeyMatchesContentHash pins the routing identity the whole
// design leans on: a program's ref and its inline source hash to the
// same ring key, so by-reference and inline requests for one program
// pin to the same backend.
func TestRefKeyMatchesContentHash(t *testing.T) {
	for _, src := range []string{"print(1)\n", "x = 2\nprint(x)\n", ""} {
		key, ok := RefKey(progstore.Ref(src))
		if !ok {
			t.Fatalf("RefKey rejected a valid ref for %q", src)
		}
		if key != ContentHash(src) {
			t.Errorf("RefKey(Ref(%q)) = %#x, ContentHash = %#x: ring affinity broken",
				src, key, ContentHash(src))
		}
	}
	if _, ok := RefKey("nothex"); ok {
		t.Error("RefKey accepted a malformed ref")
	}
	if _, ok := RefKey(strings.Repeat("g", 64)); ok {
		t.Error("RefKey accepted 64 non-hex characters")
	}
}

// countingBackend is a pyserve replica whose /v1/run hits are counted.
func countingBackend(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	reg := telemetry.NewRegistry()
	pool := supervise.NewPool(supervise.Config{
		Workers:       1,
		Metrics:       supervise.NewMetrics(reg),
		DefaultLimits: testLimits,
	})
	mux := serve.New(pool, reg, time.Second, nil).Mux()
	var runs atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/run" {
			runs.Add(1)
		}
		mux.ServeHTTP(w, r)
	}))
	t.Cleanup(func() { ts.Close(); pool.Close() })
	return ts, &runs
}

func registerViaRouter(t *testing.T, frontURL, src string) api.RegisterResultV1 {
	t.Helper()
	body, _ := json.Marshal(api.RegisterRequestV1{Src: src})
	resp, err := http.Post(frontURL+"/v1/programs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("router registration status %d: %s", resp.StatusCode, raw)
	}
	var res api.RegisterResultV1
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("decode registration: %v", err)
	}
	return res
}

func runByRef(t *testing.T, frontURL, ref string) (*http.Response, map[string]interface{}) {
	t.Helper()
	body, _ := json.Marshal(api.RunRequestV1{ProgramRef: ref})
	resp, err := http.Post(frontURL+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode run-by-ref response (status %d): %v", resp.StatusCode, err)
	}
	return resp, out
}

// TestProgramBroadcastAndAffinity: a registration through the router
// resolves on every replica, by-reference runs land on the same backend
// as inline runs of the same source, and the fleet-wide DELETE makes
// the ref unknown again everywhere.
func TestProgramBroadcastAndAffinity(t *testing.T) {
	var urls []string
	var counters []*atomic.Int64
	for i := 0; i < 3; i++ {
		ts, runs := countingBackend(t)
		urls = append(urls, ts.URL)
		counters = append(counters, runs)
	}
	_, front := newRouter(t, Config{Backends: urls, ProbeInterval: quietProbes})

	src := "print(5 * 5)\n"
	reg := registerViaRouter(t, front.URL, src)
	if reg.ProgramRef != progstore.Ref(src) {
		t.Fatalf("router returned ref %q, want %q", reg.ProgramRef, progstore.Ref(src))
	}

	// The broadcast reached every replica: each backend resolves the ref
	// directly, without the router in the path.
	for i, u := range urls {
		resp, err := http.Get(u + "/v1/programs/" + reg.ProgramRef)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("backend %d does not resolve the broadcast ref (status %d)", i, resp.StatusCode)
		}
	}

	// Inline and by-reference traffic for one program share a backend.
	if resp, body := postRun(t, front.URL, src, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("inline run: status %d body %v", resp.StatusCode, body)
	}
	owner := -1
	for i, c := range counters {
		if c.Load() > 0 {
			owner = i
		}
	}
	const refRuns = 8
	for i := 0; i < refRuns; i++ {
		resp, out := runByRef(t, front.URL, reg.ProgramRef)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run-by-ref %d: status %d body %v", i, resp.StatusCode, out)
		}
		if got, _ := out["stdout"].(string); got != "25\n" {
			t.Fatalf("run-by-ref %d stdout %q", i, got)
		}
	}
	for i, c := range counters {
		got := c.Load()
		want := int64(0)
		if i == owner {
			want = refRuns + 1
		}
		if got != want {
			t.Errorf("backend %d saw %d /v1/run hits, want %d (owner=%d): affinity broken",
				i, got, want, owner)
		}
	}

	// GET through the router answers with the owner's metadata.
	resp, err := http.Get(front.URL + "/v1/programs/" + reg.ProgramRef)
	if err != nil {
		t.Fatal(err)
	}
	var info api.ProgramInfoV1
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("decode info via router: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || info.ProgramRef != reg.ProgramRef || info.Hits == 0 {
		t.Errorf("router GET info = status %d %+v", resp.StatusCode, info)
	}

	// Fleet-wide invalidation: after the router DELETE, no replica
	// resolves the ref and the router (which forgot the source) passes
	// the owner's 404 through instead of repairing.
	dreq, _ := http.NewRequest(http.MethodDelete, front.URL+"/v1/programs/"+reg.ProgramRef, nil)
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("router DELETE status %d", dresp.StatusCode)
	}
	resp2, out := runByRef(t, front.URL, reg.ProgramRef)
	if resp2.StatusCode != http.StatusNotFound || errCode(out) != api.CodeUnknownProgram {
		t.Errorf("run after fleet DELETE: status %d code %q, want 404 unknown_program",
			resp2.StatusCode, errCode(out))
	}
}

// TestProgramReadThroughRepair: a backend that lost a store entry (here
// via a direct DELETE behind the router's back; in production a restart
// or TTL expiry) is transparently re-registered from the router's
// memory and the run succeeds — the client never sees the 404.
func TestProgramReadThroughRepair(t *testing.T) {
	_, back := newServeBackend(t, 1)
	_, front := newRouter(t, Config{Backends: []string{back.URL}, ProbeInterval: quietProbes})

	src := "print(11 * 11)\n"
	reg := registerViaRouter(t, front.URL, src)

	// Knock the entry out directly on the backend.
	dreq, _ := http.NewRequest(http.MethodDelete, back.URL+"/v1/programs/"+reg.ProgramRef, nil)
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("direct backend DELETE status %d", dresp.StatusCode)
	}

	// The router recalls the source, re-registers, and the run succeeds.
	for i := 0; i < 3; i++ {
		resp, out := runByRef(t, front.URL, reg.ProgramRef)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run-by-ref after backend lost the entry: status %d body %v (repair failed)",
				resp.StatusCode, out)
		}
		if got, _ := out["stdout"].(string); got != "121\n" {
			t.Fatalf("repaired run %d stdout %q", i, got)
		}
	}
}

// TestProgramRegistrationRejection: a deterministic 4xx from the owner
// (bad source) passes through the router unchanged.
func TestProgramRegistrationRejection(t *testing.T) {
	_, back := newServeBackend(t, 1)
	_, front := newRouter(t, Config{Backends: []string{back.URL}, ProbeInterval: quietProbes})

	body, _ := json.Marshal(api.RegisterRequestV1{Src: "def f(:\n"})
	resp, err := http.Post(front.URL+"/v1/programs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest || errCode(out) != api.CodeBadProgram {
		t.Errorf("bad program via router: status %d code %q, want 400 %s",
			resp.StatusCode, errCode(out), api.CodeBadProgram)
	}

	mresp, err := http.Post(front.URL+"/v1/run", "application/json",
		strings.NewReader(fmt.Sprintf(`{"programRef": %q, "src": "print(1)\n"}`, progstore.Ref("print(1)\n"))))
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var menv map[string]interface{}
	if err := json.NewDecoder(mresp.Body).Decode(&menv); err != nil {
		t.Fatal(err)
	}
	if mresp.StatusCode != http.StatusBadRequest || errCode(menv) != api.CodeMissingProgram {
		t.Errorf("src+ref via router: status %d code %q, want 400 %s",
			mresp.StatusCode, errCode(menv), api.CodeMissingProgram)
	}
}
