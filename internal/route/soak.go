package route

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaosnet"
	"repro/internal/faults"
	"repro/internal/interp"
	"repro/internal/load"
	"repro/internal/serve"
	"repro/internal/supervise"
	"repro/internal/telemetry"
)

// soak.go is the router chaos soak: a real pyroute front over real
// in-process pyserve replicas on real TCP listeners, with the
// internal/faults injector killing, wedging, and flapping replicas
// mid-run while a verified load corpus (fresh-runner expectations
// stamped per program) flows through the front door.
//
// The oracle, asserted over the whole run:
//
//   - Zero wrong answers: every 200 matches its reference output
//     bit-for-bit. A fault may cost a request, never corrupt one.
//   - Zero transport errors at the client: the router always answers,
//     whatever the fleet looks like.
//   - Failures stay within the declared error budget: sheds and routing
//     rejections (Retry-After semantics, job never ran) are budgeted;
//     upstream errors from mid-flight kills are bounded by
//     AllowedFailureRatio.
//   - Service continues: a majority of requests still succeed with one
//     replica killed for good and another flapping.

// SoakConfig parameterizes the router chaos soak.
type SoakConfig struct {
	Seed uint64
	// Jobs is the total request count (default 300).
	Jobs int
	// Backends is the replica count (default 3; minimum 2).
	Backends int
	// Workers per replica (default 2).
	Workers int
	// Concurrency is the load generator's in-flight requests (default 6).
	Concurrency int

	// Fault cadence, in injector ticks (one tick every TickEvery,
	// default 20ms). Zero disables a kind.
	//   DownEveryN: kill replica 1 for good (fires once).
	//   SlowEveryN: wedge the last replica for SlowFor (requests and
	//     probes stall instead of failing fast).
	//   FlapEveryN: bounce the last replica down/up.
	DownEveryN uint64
	SlowEveryN uint64
	FlapEveryN uint64
	TickEvery  time.Duration
	// SlowFor is the wedge duration (default 300ms).
	SlowFor time.Duration

	// ByteChaos interposes a chaosnet proxy in front of every replica
	// and drives the byte-level fault kinds below from one shared seeded
	// injector: resets, half-open stalls, truncation, corruption, delay.
	ByteChaos bool
	// Per-chunk firing rates for byte chaos (fire with probability 1/N
	// per forwarded chunk; zero disables a kind).
	NetResetRate, NetStallRate, NetTruncateRate, NetCorruptRate, NetDelayRate uint64
	// NetStallFor bounds one half-open stall (default 2.5s — above the
	// soak router's 2s upstream timeout, so only the deadline, never an
	// error, unsticks the victim).
	NetStallFor time.Duration

	// ReloadEveryN, in ticks, toggles one replica out of and back into
	// the fleet via Reconfigure — zero-downtime reconfiguration under
	// chaos (zero disables; forces Backends >= 4 so the reload target is
	// distinct from the floor, kill, and chaos replicas).
	ReloadEveryN uint64

	// IdempotencyKeys stamps every request with a unique key. This
	// authorizes the router to replay mid-flight failures and arms the
	// exactly-once oracle: zero duplicate executions, per-key execution
	// stamps <= 1, replays absorbed by the backends' dedup caches.
	IdempotencyKeys bool

	// AllowedFailureRatio is the declared error budget for unbudgeted
	// failures — mid-flight kills and wedge stalls land here (default
	// 0.2). The casualty count scales with request duration times fault
	// rate, so it is machine-speed-dependent: on a slow or oversubscribed
	// host a larger fraction of requests is in flight whenever a fault
	// fires. The exact invariants (zero wrong answers, zero transport
	// errors, service continues) do not get this slack.
	AllowedFailureRatio float64
	// Hedge enables tail-latency hedging during the soak.
	Hedge bool
	// Logw receives router logs (nil disables).
	Logw io.Writer
}

// SoakResult is the soak verdict.
type SoakResult struct {
	Report     *load.Report
	Violations []string
	// Faults is the injector's per-kind site/fired summary; NetFaults is
	// the byte-chaos injector's ("" when ByteChaos is off).
	Faults    string
	NetFaults string
	// Killed/Wedges/Flaps count the fleet events actually driven;
	// Reloads counts mid-run fleet reconfigurations.
	Killed, Wedges, Flaps, Reloads int
	// Ejections/Readmits are the router's counters summed over backends.
	Ejections, Readmits uint64
	// DedupHits sums replays absorbed by the backends' dedup caches;
	// MaxExecutions is the worst per-key execution stamp observed across
	// the fleet (exactly-once holds iff <= 1).
	DedupHits     uint64
	MaxExecutions int
}

// Ok reports whether the soak finished without an oracle violation.
func (r *SoakResult) Ok() bool { return len(r.Violations) == 0 }

// soakLimits are the per-job budgets: the deterministic step budget
// decides outcomes; the deadline is a generous backstop.
var soakLimits = interp.Limits{
	MaxSteps:       2_000_000,
	MaxHeapBytes:   64 << 20,
	Deadline:       2 * time.Second,
	MaxOutputBytes: 1 << 20,
}

// chaosBackend is one pyserve replica on a real, killable TCP listener.
// Stop hard-closes the listener and every connection (in-flight work
// dies mid-response, as a crash would); Start rebinds the same address.
type chaosBackend struct {
	addr string
	pool *supervise.Pool
	api  *serve.Server // for DedupStats in the exactly-once oracle

	handler http.Handler
	wedged  atomic.Bool

	mu  sync.Mutex
	srv *http.Server
	up  bool
}

func newChaosBackend(workers int) (*chaosBackend, error) {
	reg := telemetry.NewRegistry()
	pool := supervise.NewPool(supervise.Config{
		Workers:       workers,
		Metrics:       supervise.NewMetrics(reg),
		DefaultLimits: soakLimits,
	})
	srv := serve.New(pool, reg, time.Second, nil)
	cb := &chaosBackend{pool: pool, api: srv}
	inner := srv.Mux()
	cb.handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if cb.wedged.Load() {
			// Wedge: neither answer nor refuse — hold the connection
			// until the caller gives up. Probes time out too, which is
			// exactly how the router must notice a wedged node.
			<-r.Context().Done()
			return
		}
		inner.ServeHTTP(w, r)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		pool.Close()
		return nil, err
	}
	cb.addr = ln.Addr().String()
	cb.serveOn(ln)
	return cb, nil
}

func (cb *chaosBackend) serveOn(ln net.Listener) {
	srv := &http.Server{Handler: cb.handler}
	cb.mu.Lock()
	cb.srv = srv
	cb.up = true
	cb.mu.Unlock()
	go srv.Serve(ln)
}

// Stop kills the node: listener and all connections close immediately.
func (cb *chaosBackend) Stop() {
	cb.mu.Lock()
	srv := cb.srv
	cb.srv = nil
	cb.up = false
	cb.mu.Unlock()
	if srv != nil {
		_ = srv.Close()
	}
}

// Start revives the node on its original address.
func (cb *chaosBackend) Start() error {
	cb.mu.Lock()
	if cb.up {
		cb.mu.Unlock()
		return nil
	}
	cb.mu.Unlock()
	ln, err := net.Listen("tcp", cb.addr)
	if err != nil {
		return err
	}
	cb.serveOn(ln)
	return nil
}

func (cb *chaosBackend) Up() bool {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	return cb.up
}

func (cb *chaosBackend) Close() {
	cb.Stop()
	cb.pool.Close()
}

// Soak runs the router chaos soak.
func Soak(cfg SoakConfig) *SoakResult {
	if cfg.Jobs <= 0 {
		cfg.Jobs = 300
	}
	if cfg.Backends < 2 {
		cfg.Backends = 3
	}
	if cfg.ReloadEveryN > 0 && cfg.Backends < 4 {
		// The reload target must be distinct from the healthy floor
		// (replica 0), the kill target (1) and the chaos target (last).
		cfg.Backends = 4
	}
	if cfg.NetStallFor <= 0 {
		cfg.NetStallFor = 2500 * time.Millisecond
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 6
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 20 * time.Millisecond
	}
	if cfg.SlowFor <= 0 {
		cfg.SlowFor = 300 * time.Millisecond
	}
	if cfg.AllowedFailureRatio <= 0 {
		cfg.AllowedFailureRatio = 0.2
	}
	res := &SoakResult{}
	violate := func(format string, args ...interface{}) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}

	// Fleet: replica 0 stays healthy throughout (the soak's floor),
	// replica 1 is the kill target, the last replica takes the wedge
	// and flap faults.
	backs := make([]*chaosBackend, cfg.Backends)
	urls := make([]string, cfg.Backends)
	for i := range backs {
		cb, err := newChaosBackend(cfg.Workers)
		if err != nil {
			violate("backend %d failed to start: %v", i, err)
			return res
		}
		defer cb.Close()
		backs[i] = cb
		urls[i] = "http://" + cb.addr
	}
	killTarget, chaosTarget := backs[1], backs[len(backs)-1]

	// Byte chaos: one proxy per replica, all sharing one seeded injector
	// (consults serialized by the proxy group), so the whole run's byte
	// damage is replayable from the seed. The router then talks to the
	// proxies; the backends themselves stay clean.
	routerURLs := make([]string, len(urls))
	copy(routerURLs, urls)
	var netInj *faults.Injector
	var proxies []*chaosnet.Proxy
	if cfg.ByteChaos {
		njCfg := faults.Config{Seed: cfg.Seed + 1}
		njCfg.Rate[faults.NetReset] = cfg.NetResetRate
		njCfg.Rate[faults.NetStall] = cfg.NetStallRate
		njCfg.Rate[faults.NetTruncate] = cfg.NetTruncateRate
		njCfg.Rate[faults.NetCorrupt] = cfg.NetCorruptRate
		njCfg.Rate[faults.NetDelay] = cfg.NetDelayRate
		netInj = faults.New(njCfg)
		targets := make([]string, len(backs))
		for i, cb := range backs {
			targets[i] = cb.addr
		}
		var perr error
		proxies, perr = chaosnet.Group(targets, chaosnet.Config{
			Faults: netInj, StallFor: cfg.NetStallFor,
		})
		if perr != nil {
			violate("chaos proxies failed to start: %v", perr)
			return res
		}
		defer func() {
			for _, p := range proxies {
				_ = p.Close()
			}
		}()
		for i, p := range proxies {
			routerURLs[i] = p.URL()
		}
	}

	reg := telemetry.NewRegistry()
	metrics := NewMetrics(reg, routerURLs)
	readmitBudget := 3
	if cfg.ByteChaos {
		// Random byte faults hit probes too, so ejections happen to
		// perfectly healthy replicas; a tight flap budget would starve the
		// fleet for reasons unrelated to what this run proves.
		readmitBudget = 100
	}
	rt, err := New(Config{
		Backends:        routerURLs,
		UpstreamTimeout: 2 * time.Second,
		ProbeInterval:   20 * time.Millisecond,
		// Generous probe timeout: a healthy node on a saturated CPU may
		// answer readyz slowly; only a truly wedged or dead node should
		// blow this.
		ProbeTimeout:  250 * time.Millisecond,
		FailThreshold: 2,
		ReadmitAfter:  100 * time.Millisecond,
		ReadmitBudget: readmitBudget,
		ReadmitWindow: time.Minute,
		Hedge:         cfg.Hedge,
		Seed:          cfg.Seed,
		Metrics:       metrics,
		Logw:          cfg.Logw,
	})
	if err != nil {
		violate("router failed to start: %v", err)
		return res
	}
	defer rt.Close()
	front := &http.Server{Handler: rt.Mux()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		violate("front listener: %v", err)
		return res
	}
	go front.Serve(ln)
	defer front.Close()

	// Fault driver: one injector tick per TickEvery until the load run
	// finishes. Deterministic in tick count via EveryN cadences.
	injCfg := faults.Config{Seed: cfg.Seed}
	injCfg.EveryN[faults.BackendDown] = cfg.DownEveryN
	injCfg.EveryN[faults.BackendSlow] = cfg.SlowEveryN
	injCfg.EveryN[faults.BackendFlap] = cfg.FlapEveryN
	inj := faults.New(injCfg)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(cfg.TickEvery)
		defer tick.Stop()
		var tickN uint64
		reloadedOut := false
		const reloadIdx = 2 // distinct from floor (0), kill (1), chaos (last)
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			tickN++
			if cfg.ReloadEveryN != 0 && tickN%cfg.ReloadEveryN == 0 {
				// Zero-downtime reconfiguration under fire: toggle the
				// reload target out of and back into the fleet. In-flight
				// requests on the removed node drain; its keyspace moves
				// and moves back; everything else stays pinned.
				set := routerURLs
				if !reloadedOut {
					set = make([]string, 0, len(routerURLs)-1)
					for i, u := range routerURLs {
						if i != reloadIdx {
							set = append(set, u)
						}
					}
				}
				if _, _, rerr := rt.Reconfigure(set); rerr != nil {
					violate("mid-run reconfigure failed: %v", rerr)
				} else {
					res.Reloads++
					reloadedOut = !reloadedOut
				}
			}
			if inj.Should(faults.BackendDown) && res.Killed == 0 {
				killTarget.Stop() // for good: no revival
				res.Killed++
			}
			if inj.Should(faults.BackendSlow) && chaosTarget.Up() {
				if chaosTarget.wedged.CompareAndSwap(false, true) {
					res.Wedges++
					time.AfterFunc(cfg.SlowFor, func() { chaosTarget.wedged.Store(false) })
				}
			}
			if inj.Should(faults.BackendFlap) {
				res.Flaps++
				if chaosTarget.Up() {
					chaosTarget.Stop()
				} else if err := chaosTarget.Start(); err != nil {
					violate("flap target failed to rebind %s: %v", chaosTarget.addr, err)
				}
			}
		}
	}()

	corpus := load.MixedCorpus(12, cfg.Seed, soakLimits)
	rep, err := load.Run(load.Config{
		Target:              "http://" + ln.Addr().String(),
		Corpus:              corpus,
		Concurrency:         cfg.Concurrency,
		Requests:            cfg.Jobs,
		Timeout:             10 * time.Second,
		Seed:                cfg.Seed,
		AllowedFailureRatio: cfg.AllowedFailureRatio,
		IdempotencyKeys:     cfg.IdempotencyKeys,
	})
	close(stop)
	<-done
	// Close the proxies before reading the net injector: its counters are
	// only consistent once every pump goroutine has drained.
	for _, p := range proxies {
		_ = p.Close()
	}
	if err != nil {
		violate("load run failed: %v", err)
		return res
	}
	res.Report = rep
	res.Faults = inj.String()
	if netInj != nil {
		res.NetFaults = netInj.String()
	}
	for i := range routerURLs {
		res.Ejections += metrics.ejections.Value(i)
		res.Readmits += metrics.readmits.Value(i)
	}
	for _, cb := range backs {
		st := cb.api.DedupStats()
		res.DedupHits += st.Hits
		if st.MaxExecutions > res.MaxExecutions {
			res.MaxExecutions = st.MaxExecutions
		}
	}

	// The oracle.
	if rep.WrongAnswers != 0 {
		violate("%d wrong answers: a fault corrupted a served result", rep.WrongAnswers)
	}
	if n := rep.Outcomes["transport_error"]; n != 0 {
		violate("%d transport errors at the client: the router stopped answering", n)
	}
	if !rep.WithinBudget {
		violate("unbudgeted failure ratio %.3f exceeds the declared budget %.3f (outcomes %v)",
			rep.FailureRatio, rep.AllowedFailureRatio, rep.Outcomes)
	}
	served := rep.Outcomes["ok"] + rep.Outcomes["python_error"]
	if served < cfg.Jobs/2 {
		violate("only %d/%d requests served: the fleet did not keep serving through the chaos", served, cfg.Jobs)
	}
	if res.Killed > 0 && res.Ejections == 0 {
		violate("a replica was killed but the router never ejected anything")
	}
	if cfg.ReloadEveryN != 0 && res.Reloads == 0 {
		violate("reload cadence configured but no reconfiguration was driven")
	}
	if cfg.IdempotencyKeys {
		// The exactly-once oracle, from both ends: the client never saw an
		// executions stamp above 1, and no backend ever recorded a key
		// executing twice on its own pool.
		if rep.DuplicateExecutions != 0 {
			violate("%d responses carried an executions stamp > 1: a replay re-ran a job", rep.DuplicateExecutions)
		}
		if res.MaxExecutions > 1 {
			violate("a backend recorded %d executions under one idempotency key", res.MaxExecutions)
		}
	}
	if cfg.ByteChaos && cfg.IdempotencyKeys && netInj != nil {
		// Resets, truncations, and corruptions on the response path all
		// strike after the backend executed the job; the replays they force
		// must be answered from the dedup cache, not by re-running.
		respFaults := netInj.Fired[faults.NetReset] + netInj.Fired[faults.NetTruncate] +
			netInj.Fired[faults.NetCorrupt]
		if respFaults >= 3 && res.DedupHits == 0 {
			violate("byte chaos fired %d response-path faults but no replay was absorbed by a dedup cache", respFaults)
		}
	}
	return res
}
