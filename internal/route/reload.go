package route

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strings"
)

// reload.go is the router's zero-downtime reconfiguration surface:
// Reconfigure swaps the backend set at runtime — cmd/pyroute drives it
// from SIGHUP (re-reading its backends file) and from PUT
// /v1/admin/backends — without restarting the process or disturbing
// requests in flight.
//
// Key-movement discipline: the ring hashes backend *names* (buildRing),
// so a reconfiguration that removes one node only remaps the keys that
// hashed to that node, and adding a node back restores its old keyspace.
// Kept backends keep their *backend objects, so health state, failure
// streaks, and flap-breaker history survive the swap. Removed backends
// finish their in-flight requests (attempts hold the object pointer, not
// a fleet index) and are reported as draining until they do.

// Reconfigure atomically replaces the backend set with urls. It returns
// the added and removed URL lists. Unknown-scheme or duplicate URLs and
// an empty set are rejected without touching the fleet.
func (rt *Router) Reconfigure(urls []string) (added, removed []string, err error) {
	if len(urls) == 0 {
		return nil, nil, errNoBackendsConfigured
	}
	seen := make(map[string]bool, len(urls))
	for _, u := range urls {
		p, perr := url.Parse(u)
		if perr != nil || (p.Scheme != "http" && p.Scheme != "https") || p.Host == "" {
			return nil, nil, fmt.Errorf("route: bad backend url %q", u)
		}
		if seen[u] {
			return nil, nil, fmt.Errorf("route: duplicate backend url %q", u)
		}
		seen[u] = true
	}

	rt.reconfigMu.Lock()
	defer rt.reconfigMu.Unlock()

	old := rt.fleet.Load()
	byURL := make(map[string]*backend, len(old.backends))
	for _, b := range old.backends {
		byURL[b.url] = b
	}

	next := &fleet{ring: buildRing(urls), backends: make([]*backend, 0, len(urls))}
	for _, u := range urls {
		if b, ok := byURL[u]; ok {
			// Kept: same object, health state persists.
			next.backends = append(next.backends, b)
			delete(byURL, u)
			continue
		}
		added = append(added, u)
		next.backends = append(next.backends, &backend{url: u, slot: rt.slotFor(u)})
	}
	for u, b := range byURL {
		removed = append(removed, u)
		b.removed.Store(true)
		rt.parting = append(rt.parting, b)
	}
	sort.Strings(removed) // map order; the API reply should be stable

	rt.fleet.Store(next)
	rt.metrics.reconfig()
	rt.logEvent("fleet reconfigured",
		fmt.Sprintf("%d backends (+%d -%d)", len(urls), len(added), len(removed)),
		stHealthy, 0)
	return added, removed, nil
}

// drainingReport snapshots removed-but-still-busy backends and prunes
// the ones that have finished. Callers hold no locks.
func (rt *Router) drainingReport() []adminBackend {
	rt.reconfigMu.Lock()
	defer rt.reconfigMu.Unlock()
	var out []adminBackend
	live := rt.parting[:0]
	for _, b := range rt.parting {
		n := b.inflight.Load()
		if n == 0 {
			continue // drained out; forget it
		}
		live = append(live, b)
		st, fails := b.currentState()
		out = append(out, adminBackend{
			URL: b.url, State: st.String(), ConsecFails: fails,
			Inflight: n, Draining: true,
		})
	}
	rt.parting = live
	return out
}

// adminBackend is one backend row in the admin API.
type adminBackend struct {
	URL         string `json:"url"`
	State       string `json:"state"`
	ConsecFails int    `json:"consecFails,omitempty"`
	Inflight    int64  `json:"inflight"`
	Draining    bool   `json:"draining,omitempty"`
}

// adminBackendsGet is the GET /v1/admin/backends reply.
type adminBackendsGet struct {
	Backends []adminBackend `json:"backends"`
	Draining []adminBackend `json:"draining,omitempty"`
}

// adminBackendsPut is the PUT /v1/admin/backends request body.
type adminBackendsPut struct {
	Backends []string `json:"backends"`
}

// adminBackendsPutReply reports what a reconfiguration changed.
type adminBackendsPutReply struct {
	Backends int      `json:"backends"`
	Added    []string `json:"added,omitempty"`
	Removed  []string `json:"removed,omitempty"`
}

// handleAdminBackends is the fleet-reconfiguration API:
//
//	GET  /v1/admin/backends  current fleet (state, in-flight) plus
//	                         removed backends still draining
//	PUT  /v1/admin/backends  {"backends":["http://...", ...]} replaces
//	                         the set; POST is accepted as an alias
func (rt *Router) handleAdminBackends(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		backends := rt.fleet.Load().backends
		rep := adminBackendsGet{Backends: make([]adminBackend, len(backends))}
		for i, b := range backends {
			st, fails := b.currentState()
			rep.Backends[i] = adminBackend{
				URL: b.url, State: st.String(), ConsecFails: fails,
				Inflight: b.inflight.Load(),
			}
		}
		rep.Draining = rt.drainingReport()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetEscapeHTML(false)
		_ = enc.Encode(rep)

	case http.MethodPut, http.MethodPost:
		var putReq adminBackendsPut
		if err := json.NewDecoder(r.Body).Decode(&putReq); err != nil {
			rt.writeEnvelope(w, http.StatusBadRequest, "bad_json", "bad JSON: "+err.Error())
			return
		}
		for i := range putReq.Backends {
			putReq.Backends[i] = strings.TrimRight(putReq.Backends[i], "/")
		}
		added, removed, err := rt.Reconfigure(putReq.Backends)
		if err != nil {
			rt.writeEnvelope(w, http.StatusBadRequest, "bad_backends", err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetEscapeHTML(false)
		_ = enc.Encode(adminBackendsPutReply{
			Backends: len(putReq.Backends), Added: added, Removed: removed,
		})

	default:
		rt.writeEnvelope(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET, PUT or POST")
	}
}
