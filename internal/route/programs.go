package route

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/api"
	"repro/internal/progstore"
)

// Program-registration forwarding.
//
// A program registered through the router must be runnable by reference
// on whichever backend the ring picks — now, and after reconfigs,
// restarts, and store evictions. Two mechanisms cover that:
//
//   - POST /v1/programs broadcasts the registration to every live
//     backend, so the ref resolves fleet-wide immediately (retries and
//     hedges land on non-owner replicas).
//   - The router remembers ref → source for registrations that passed
//     through it, and when a forwarded run-by-reference request comes
//     back 404 unknown_program (fresh replica, TTL expiry, explicit
//     invalidation), it re-registers the source on that backend and
//     retries once — read-through repair, invisible to the client.
//
// The memory is an optimization, not a correctness dependency: a ref
// registered directly with a backend (bypassing the router) still
// routes correctly, it just surfaces the backend's 404 when the entry
// is gone.

// progRecord is the router's memory of one registration.
type progRecord struct {
	name string
	src  string
}

// maxProgMemory bounds the ref → source memory; at capacity the whole
// map is flushed (registrations are idempotent and clients can always
// re-register, so losing the memory only costs a future 404).
const maxProgMemory = 4096

// rememberProgram records a registration for read-through repair.
func (rt *Router) rememberProgram(ref, name, src string) {
	rt.progMu.Lock()
	if len(rt.progSrc) >= maxProgMemory {
		rt.progSrc = make(map[string]progRecord)
	}
	rt.progSrc[ref] = progRecord{name: name, src: src}
	rt.progMu.Unlock()
}

// recallProgram looks up a remembered registration.
func (rt *Router) recallProgram(ref string) (progRecord, bool) {
	rt.progMu.Lock()
	rec, ok := rt.progSrc[ref]
	rt.progMu.Unlock()
	return rec, ok
}

// forgetProgram drops a ref from the memory (fleet-wide DELETE).
func (rt *Router) forgetProgram(ref string) {
	rt.progMu.Lock()
	delete(rt.progSrc, ref)
	rt.progMu.Unlock()
}

// registerOn posts one registration to one backend, returning the
// backend's response body and status. Control-plane path: no retry
// budget, no hedging.
func (rt *Router) registerOn(ctx context.Context, b *backend, body []byte) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+"/v1/programs", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	rb, err := io.ReadAll(io.LimitReader(resp.Body, maxUpstreamBody))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, rb, nil
}

// handlePrograms is POST /v1/programs on the router: validate, remember,
// and broadcast the registration to every live backend so the ref
// resolves wherever the ring (or a retry) sends the run. Like the other
// admin-plane surface (PUT /v1/admin/backends), this endpoint is
// auth-free; deployments front it with their own auth.
func (rt *Router) handlePrograms(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rt.writeEnvelope(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		rt.writeEnvelope(w, http.StatusBadRequest, api.CodeBadJSON, "read body: "+err.Error())
		return
	}
	if len(body) > maxBody {
		rt.writeEnvelope(w, http.StatusRequestEntityTooLarge, api.CodeBodyTooLarge,
			fmt.Sprintf("request exceeds %d bytes", maxBody))
		return
	}
	var req api.RegisterRequestV1
	if err := json.Unmarshal(body, &req); err != nil {
		rt.writeEnvelope(w, http.StatusBadRequest, api.CodeBadJSON, "bad JSON: "+err.Error())
		return
	}
	if req.Src == "" {
		rt.writeEnvelope(w, http.StatusBadRequest, api.CodeMissingSrc, "missing src")
		return
	}

	ref := progstore.Ref(req.Src)
	key, _ := RefKey(ref)
	// Owner-first order: the ring owner's reply is the one passed
	// through (its store is the one run-by-reference traffic hits
	// first), the rest of the broadcast warms the fallbacks.
	cands := rt.candidates(key)
	if len(cands) == 0 {
		rt.writeEnvelope(w, http.StatusServiceUnavailable, api.CodeNoBackends, "no routable backends")
		return
	}
	var passStatus int
	var passBody []byte
	for i, b := range cands {
		status, rb, err := rt.registerOn(r.Context(), b, body)
		if err != nil {
			continue
		}
		if i == 0 || passBody == nil {
			passStatus, passBody = status, rb
		}
		if status >= 400 && status < 500 {
			// Deterministic rejection (bad source): every replica would
			// answer identically — pass it through, register nowhere else.
			passStatus, passBody = status, rb
			break
		}
	}
	if passBody == nil {
		rt.writeEnvelope(w, http.StatusServiceUnavailable, api.CodeNoBackends,
			"no backend accepted the registration")
		return
	}
	if passStatus == http.StatusOK {
		name := req.Name
		if name == "" {
			name = "program.py"
		}
		rt.rememberProgram(ref, name, req.Src)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(passStatus)
	_, _ = w.Write(passBody)
}

// handleProgram is GET/DELETE /v1/programs/{ref} on the router: GET
// forwards to the ref's ring owner (whose store serves its traffic);
// DELETE broadcasts the invalidation fleet-wide — a half-invalidated
// fleet would keep answering by-reference runs from surviving replicas.
func (rt *Router) handleProgram(w http.ResponseWriter, r *http.Request) {
	ref := strings.TrimPrefix(r.URL.Path, "/v1/programs/")
	key, ok := RefKey(ref)
	if !ok || !progstore.ValidRef(ref) {
		rt.writeEnvelope(w, http.StatusBadRequest, api.CodeBadProgram, "programRef must be a hex SHA-256")
		return
	}
	cands := rt.candidates(key)
	if len(cands) == 0 {
		rt.writeEnvelope(w, http.StatusServiceUnavailable, api.CodeNoBackends, "no routable backends")
		return
	}
	switch r.Method {
	case http.MethodGet:
		for _, b := range cands {
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, b.url+"/v1/programs/"+ref, nil)
			if err != nil {
				continue
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				continue
			}
			rb, err := io.ReadAll(io.LimitReader(resp.Body, maxUpstreamBody))
			resp.Body.Close()
			if err != nil {
				continue
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(resp.StatusCode)
			_, _ = w.Write(rb)
			return
		}
		rt.writeEnvelope(w, http.StatusServiceUnavailable, api.CodeNoBackends, "no backend answered")
	case http.MethodDelete:
		var passStatus int
		var passBody []byte
		for _, b := range cands {
			req, err := http.NewRequestWithContext(r.Context(), http.MethodDelete, b.url+"/v1/programs/"+ref, nil)
			if err != nil {
				continue
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				continue
			}
			rb, err := io.ReadAll(io.LimitReader(resp.Body, maxUpstreamBody))
			resp.Body.Close()
			if err != nil {
				continue
			}
			// Any replica's 200 makes the fleet-wide delete a success;
			// a replica that never held the entry 404s harmlessly.
			if resp.StatusCode == http.StatusOK || passBody == nil {
				passStatus, passBody = resp.StatusCode, rb
			}
		}
		if passBody == nil {
			rt.writeEnvelope(w, http.StatusServiceUnavailable, api.CodeNoBackends, "no backend answered")
			return
		}
		rt.forgetProgram(ref)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(passStatus)
		_, _ = w.Write(passBody)
	default:
		rt.writeEnvelope(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "GET or DELETE only")
	}
}

// repairUnknownProgram handles a backend's 404 unknown_program on a
// forwarded run-by-reference request: if the router remembers the
// source, re-register it on that backend (read-through repair) and
// report that the attempt is worth repeating. The run provably never
// executed — the backend rejected it at resolution — so the repeat is
// always safe, keyed or not.
func (rt *Router) repairUnknownProgram(ctx context.Context, b *backend, ref string) bool {
	rec, ok := rt.recallProgram(ref)
	if !ok {
		return false
	}
	body, err := json.Marshal(api.RegisterRequestV1{Name: rec.name, Src: rec.src})
	if err != nil {
		return false
	}
	status, _, err := rt.registerOn(ctx, b, body)
	return err == nil && status == http.StatusOK
}

// isUnknownProgram reports whether a buffered backend response is the
// 404 unknown_program envelope.
func isUnknownProgram(status int, body []byte) bool {
	if status != http.StatusNotFound {
		return false
	}
	var env api.ErrorEnvelope
	return json.Unmarshal(body, &env) == nil && env.Err.Code == api.CodeUnknownProgram
}
