//go:build race

package route

// raceEnabled reports whether this test binary was built with the race
// detector. The chaos soak couples fault cadence to wall clock and is
// skipped under the detector's slowdown (see soak_test.go).
const raceEnabled = true
