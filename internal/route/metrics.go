package route

import (
	"time"

	"repro/internal/telemetry"
)

// Metrics mirrors router activity into a telemetry registry under the
// pyroute_ prefix. All record methods are safe on a nil receiver, so an
// unwired router pays one predictable branch per event.
type Metrics struct {
	reg *telemetry.Registry

	// requests counts completed requests by outcome (ok, client_error,
	// shed, no_backends, retry_budget_exhausted, upstream_error).
	requests *telemetry.CounterVec
	// retries counts re-routed attempts; retryBudgetExhausted counts
	// retry-safe failures the budget refused to retry.
	retries              *telemetry.Counter
	retryBudgetExhausted *telemetry.Counter
	// hedges counts launched hedge attempts; hedgeWins counts the ones
	// whose response was used.
	hedges    *telemetry.Counter
	hedgeWins *telemetry.Counter
	// reconfigs counts applied fleet reconfigurations.
	reconfigs *telemetry.Counter
	// integrityFailures counts backend responses whose bytes failed the
	// X-Pyserve-Digest check (or lacked it on a 2xx).
	integrityFailures *telemetry.Counter
	// idemReplays counts mid-flight failures replayed under an
	// idempotency key instead of surfacing as upstream_error.
	idemReplays *telemetry.Counter

	// Per-backend families, labelled by backend URL. Growable: the fleet
	// is hot-reloadable, so new backends mint new series at runtime
	// (slotFor) instead of fixing the label set at registration.
	backendRequests *telemetry.GrowableCounterVec
	backendFailures *telemetry.GrowableCounterVec
	ejections       *telemetry.GrowableCounterVec
	readmits        *telemetry.GrowableCounterVec
	breakerHolds    *telemetry.GrowableCounterVec
	upstreamLatency *telemetry.GrowableHistogramVec
}

// NewMetrics registers the router's metric families on reg. The backend
// URL list seeds the per-backend label sets; Reconfigure grows them for
// backends added later.
func NewMetrics(reg *telemetry.Registry, backends []string) *Metrics {
	outcomes := make([]string, numOutcomes)
	copy(outcomes, outcomeNames[:])
	return &Metrics{
		reg: reg,
		requests: reg.CounterVec("pyroute_requests_total",
			"Completed router requests by outcome.", "outcome", outcomes),
		retries: reg.Counter("pyroute_retries_total",
			"Re-routed attempts (retry-safe failures sent to another backend or retried after backoff)."),
		retryBudgetExhausted: reg.Counter("pyroute_retry_budget_exhausted_total",
			"Retry-safe failures not retried because the retry token bucket was empty."),
		hedges: reg.Counter("pyroute_hedges_total",
			"Hedge attempts launched after the tail-latency delay."),
		hedgeWins: reg.Counter("pyroute_hedge_wins_total",
			"Hedge attempts whose response was returned to the client."),
		reconfigs: reg.Counter("pyroute_reconfigs_total",
			"Fleet reconfigurations applied (SIGHUP or admin API)."),
		integrityFailures: reg.Counter("pyroute_integrity_failures_total",
			"Backend responses failing the X-Pyserve-Digest integrity check."),
		idemReplays: reg.Counter("pyroute_idempotent_replays_total",
			"Mid-flight failures replayed under an idempotency key."),
		backendRequests: reg.GrowableCounterVec("pyroute_backend_requests_total",
			"Attempts forwarded per backend.", "backend", backends),
		backendFailures: reg.GrowableCounterVec("pyroute_backend_failures_total",
			"Transport-level attempt failures per backend.", "backend", backends),
		ejections: reg.GrowableCounterVec("pyroute_backend_ejections_total",
			"Health ejections per backend.", "backend", backends),
		readmits: reg.GrowableCounterVec("pyroute_backend_readmits_total",
			"Half-open readmissions per backend.", "backend", backends),
		breakerHolds: reg.GrowableCounterVec("pyroute_backend_breaker_holds_total",
			"Readmissions refused by the flap breaker per backend.", "backend", backends),
		upstreamLatency: reg.GrowableHistogramVec("pyroute_upstream_seconds",
			"Upstream attempt latency per backend.", "backend", backends),
	}
}

// slotFor resolves url's slot across every per-backend family, growing
// them in lockstep so one slot number indexes them all. -1 on a nil
// Metrics (the unobserved router).
func (m *Metrics) slotFor(url string) int {
	if m == nil {
		return -1
	}
	m.backendFailures.Slot(url)
	m.ejections.Slot(url)
	m.readmits.Slot(url)
	m.breakerHolds.Slot(url)
	m.upstreamLatency.Slot(url)
	return m.backendRequests.Slot(url)
}

func (m *Metrics) request(outcome int) {
	if m == nil {
		return
	}
	m.requests.Inc(outcome)
}

func (m *Metrics) retry() {
	if m == nil {
		return
	}
	m.retries.Inc()
}

func (m *Metrics) retryBudgetDry() {
	if m == nil {
		return
	}
	m.retryBudgetExhausted.Inc()
}

func (m *Metrics) hedge() {
	if m == nil {
		return
	}
	m.hedges.Inc()
}

func (m *Metrics) hedgeWin() {
	if m == nil {
		return
	}
	m.hedgeWins.Inc()
}

func (m *Metrics) reconfig() {
	if m == nil {
		return
	}
	m.reconfigs.Inc()
}

func (m *Metrics) integrityFailure() {
	if m == nil {
		return
	}
	m.integrityFailures.Inc()
}

func (m *Metrics) idemReplay() {
	if m == nil {
		return
	}
	m.idemReplays.Inc()
}

func (m *Metrics) backendRequest(idx int) {
	if m == nil {
		return
	}
	m.backendRequests.Inc(idx)
}

func (m *Metrics) backendFailure(idx int) {
	if m == nil {
		return
	}
	m.backendFailures.Inc(idx)
}

func (m *Metrics) eject(idx int) {
	if m == nil {
		return
	}
	m.ejections.Inc(idx)
}

func (m *Metrics) readmit(idx int) {
	if m == nil {
		return
	}
	m.readmits.Inc(idx)
}

func (m *Metrics) breakerHeld(idx int) {
	if m == nil {
		return
	}
	m.breakerHolds.Inc(idx)
}

func (m *Metrics) observeUpstream(idx int, d time.Duration) {
	if m == nil {
		return
	}
	m.upstreamLatency.Observe(idx, d)
}

// registerGauges wires the router's live state into scrape-time gauges.
// Called once from New when a Metrics is configured.
func (rt *Router) registerGauges() {
	reg := rt.metrics.reg
	if reg == nil {
		return
	}
	// The fleet is hot-reloadable, so the series set is computed fresh at
	// every scrape from the current fleet snapshot.
	reg.DynamicGaugeFunc("pyroute_backend_up",
		"Whether the backend is routable (1) or drained/ejected/half-open (0).",
		"backend", func() []telemetry.LabelValue {
			backends := rt.fleet.Load().backends
			out := make([]telemetry.LabelValue, len(backends))
			for i, b := range backends {
				v := 0.0
				if b.routable() {
					v = 1
				}
				out[i] = telemetry.LabelValue{Value: b.url, V: v}
			}
			return out
		})
	reg.GaugeFunc("pyroute_backends_routable",
		"Number of currently routable backends.", func() float64 {
			return float64(rt.routableCount())
		})
	reg.GaugeFunc("pyroute_retry_tokens",
		"Current retry-budget token level.", func() float64 {
			return float64(rt.retryTokens.Load()) / 1000
		})
}
