package route

import (
	"time"

	"repro/internal/telemetry"
)

// Metrics mirrors router activity into a telemetry registry under the
// pyroute_ prefix. All record methods are safe on a nil receiver, so an
// unwired router pays one predictable branch per event.
type Metrics struct {
	reg *telemetry.Registry

	// requests counts completed requests by outcome (ok, client_error,
	// shed, no_backends, retry_budget_exhausted, upstream_error).
	requests *telemetry.CounterVec
	// retries counts re-routed attempts; retryBudgetExhausted counts
	// retry-safe failures the budget refused to retry.
	retries              *telemetry.Counter
	retryBudgetExhausted *telemetry.Counter
	// hedges counts launched hedge attempts; hedgeWins counts the ones
	// whose response was used.
	hedges    *telemetry.Counter
	hedgeWins *telemetry.Counter

	// Per-backend families, labelled by backend URL.
	backendRequests *telemetry.CounterVec
	backendFailures *telemetry.CounterVec
	ejections       *telemetry.CounterVec
	readmits        *telemetry.CounterVec
	breakerHolds    *telemetry.CounterVec
	upstreamLatency *telemetry.HistogramVec
}

// NewMetrics registers the router's metric families on reg. The backend
// URL list fixes the per-backend label sets (the router's fleet is
// static per process).
func NewMetrics(reg *telemetry.Registry, backends []string) *Metrics {
	outcomes := make([]string, numOutcomes)
	copy(outcomes, outcomeNames[:])
	return &Metrics{
		reg: reg,
		requests: reg.CounterVec("pyroute_requests_total",
			"Completed router requests by outcome.", "outcome", outcomes),
		retries: reg.Counter("pyroute_retries_total",
			"Re-routed attempts (retry-safe failures sent to another backend or retried after backoff)."),
		retryBudgetExhausted: reg.Counter("pyroute_retry_budget_exhausted_total",
			"Retry-safe failures not retried because the retry token bucket was empty."),
		hedges: reg.Counter("pyroute_hedges_total",
			"Hedge attempts launched after the tail-latency delay."),
		hedgeWins: reg.Counter("pyroute_hedge_wins_total",
			"Hedge attempts whose response was returned to the client."),
		backendRequests: reg.CounterVec("pyroute_backend_requests_total",
			"Attempts forwarded per backend.", "backend", backends),
		backendFailures: reg.CounterVec("pyroute_backend_failures_total",
			"Transport-level attempt failures per backend.", "backend", backends),
		ejections: reg.CounterVec("pyroute_backend_ejections_total",
			"Health ejections per backend.", "backend", backends),
		readmits: reg.CounterVec("pyroute_backend_readmits_total",
			"Half-open readmissions per backend.", "backend", backends),
		breakerHolds: reg.CounterVec("pyroute_backend_breaker_holds_total",
			"Readmissions refused by the flap breaker per backend.", "backend", backends),
		upstreamLatency: reg.HistogramVec("pyroute_upstream_seconds",
			"Upstream attempt latency per backend.", "backend", backends),
	}
}

func (m *Metrics) request(outcome int) {
	if m == nil {
		return
	}
	m.requests.Inc(outcome)
}

func (m *Metrics) retry() {
	if m == nil {
		return
	}
	m.retries.Inc()
}

func (m *Metrics) retryBudgetDry() {
	if m == nil {
		return
	}
	m.retryBudgetExhausted.Inc()
}

func (m *Metrics) hedge() {
	if m == nil {
		return
	}
	m.hedges.Inc()
}

func (m *Metrics) hedgeWin() {
	if m == nil {
		return
	}
	m.hedgeWins.Inc()
}

func (m *Metrics) backendRequest(idx int) {
	if m == nil {
		return
	}
	m.backendRequests.Inc(idx)
}

func (m *Metrics) backendFailure(idx int) {
	if m == nil {
		return
	}
	m.backendFailures.Inc(idx)
}

func (m *Metrics) eject(idx int) {
	if m == nil {
		return
	}
	m.ejections.Inc(idx)
}

func (m *Metrics) readmit(idx int) {
	if m == nil {
		return
	}
	m.readmits.Inc(idx)
}

func (m *Metrics) breakerHeld(idx int) {
	if m == nil {
		return
	}
	m.breakerHolds.Inc(idx)
}

func (m *Metrics) observeUpstream(idx int, d time.Duration) {
	if m == nil {
		return
	}
	m.upstreamLatency.Observe(idx, d)
}

// registerGauges wires the router's live state into scrape-time gauges.
// Called once from New when a Metrics is configured.
func (rt *Router) registerGauges() {
	reg := rt.metrics.reg
	if reg == nil {
		return
	}
	reg.GaugeFuncVec("pyroute_backend_up",
		"Whether the backend is routable (1) or drained/ejected/half-open (0).",
		"backend", rt.cfg.Backends, func(i int) float64 {
			if rt.backends[i].routable() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("pyroute_backends_routable",
		"Number of currently routable backends.", func() float64 {
			return float64(rt.routableCount())
		})
	reg.GaugeFunc("pyroute_retry_tokens",
		"Current retry-budget token level.", func() float64 {
			return float64(rt.retryTokens.Load()) / 1000
		})
}
