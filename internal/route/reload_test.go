package route

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/telemetry"
)

// ---- helpers -------------------------------------------------------------

// stubBackend starts a stub pyserve that answers /v1/run with a fixed
// 200 body (digest-stamped) and /v1/readyz with ready:true.
func stubBackend(t *testing.T, stdout string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", func(w http.ResponseWriter, r *http.Request) {
		stubRun(w, fmt.Sprintf(`{"apiVersion":"v1","exitClass":"ok","stdout":%q}`, stdout))
	})
	mux.HandleFunc("/v1/readyz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"ready":true}`)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// postRunKey posts one program with an idempotency key through url.
func postRunKey(t *testing.T, url, src, key string) (*http.Response, map[string]interface{}) {
	t.Helper()
	body, _ := json.Marshal(api.RunRequestV1{Src: src, IdempotencyKey: key})
	resp, err := http.Post(url+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/run: %v", err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response (status %d): %v", resp.StatusCode, err)
	}
	return resp, out
}

// adminGet fetches and decodes GET /v1/admin/backends.
func adminGet(t *testing.T, front string) adminBackendsGet {
	t.Helper()
	resp, err := http.Get(front + "/v1/admin/backends")
	if err != nil {
		t.Fatalf("GET admin: %v", err)
	}
	defer resp.Body.Close()
	var rep adminBackendsGet
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatalf("decode admin reply: %v", err)
	}
	return rep
}

// ---- Retry-After parsing (RFC 9110 both forms) ---------------------------

func TestRetryAfterParse(t *testing.T) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"3", 3 * time.Second, true},
		{" 10 ", 10 * time.Second, true},
		{"0", 0, true},
		{"-1", 0, false},
		{now.Add(5 * time.Second).Format(http.TimeFormat), 5 * time.Second, true},
		{now.Add(-time.Minute).Format(http.TimeFormat), 0, true},  // past date: retry now
		{"Friday, 07-Aug-26 12:00:05 GMT", 5 * time.Second, true}, // RFC 850 form
		{"garbage", 0, false},
		{"", 0, false},
		{"1.5", 0, false},
	}
	for _, c := range cases {
		got, ok := parseRetryAfter(c.in, now)
		if ok != c.ok || got != c.want {
			t.Errorf("parseRetryAfter(%q) = (%v, %v), want (%v, %v)", c.in, got, ok, c.want, c.ok)
		}
	}
}

// ---- hot reload ----------------------------------------------------------

func TestReconfigureAddRemove(t *testing.T) {
	a, b, c := stubBackend(t, "a\n"), stubBackend(t, "b\n"), stubBackend(t, "c\n")
	rt, front := newRouter(t, Config{Backends: []string{a.URL, b.URL}, ProbeInterval: quietProbes})

	added, removed, err := rt.Reconfigure([]string{a.URL, c.URL})
	if err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}
	if len(added) != 1 || added[0] != c.URL {
		t.Fatalf("added = %v, want [%s]", added, c.URL)
	}
	if len(removed) != 1 || removed[0] != b.URL {
		t.Fatalf("removed = %v, want [%s]", removed, b.URL)
	}

	rep := adminGet(t, front.URL)
	if len(rep.Backends) != 2 || rep.Backends[0].URL != a.URL || rep.Backends[1].URL != c.URL {
		t.Fatalf("admin backends = %+v, want [%s %s]", rep.Backends, a.URL, c.URL)
	}

	// Traffic still flows, and only to the new fleet.
	for i := 0; i < 20; i++ {
		resp, body := postRun(t, front.URL, fmt.Sprintf("print(%d)\n", i), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-reload request %d: status %d body %v", i, resp.StatusCode, body)
		}
		if be := resp.Header.Get("X-Pyroute-Backend"); be == b.URL {
			t.Fatalf("request %d routed to removed backend %s", i, be)
		}
	}
}

func TestReconfigureAdminPut(t *testing.T) {
	a, b := stubBackend(t, "a\n"), stubBackend(t, "b\n")
	_, front := newRouter(t, Config{Backends: []string{a.URL}, ProbeInterval: quietProbes})

	put := func(body string) (*http.Response, []byte) {
		req, _ := http.NewRequest(http.MethodPut, front.URL+"/v1/admin/backends", strings.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("PUT admin: %v", err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	resp, rb := put(fmt.Sprintf(`{"backends":[%q,%q]}`, a.URL, b.URL+"/"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT: status %d body %s", resp.StatusCode, rb)
	}
	var rep adminBackendsPutReply
	if err := json.Unmarshal(rb, &rep); err != nil {
		t.Fatalf("decode PUT reply: %v", err)
	}
	// The trailing slash is normalized away before Reconfigure.
	if rep.Backends != 2 || len(rep.Added) != 1 || rep.Added[0] != b.URL {
		t.Fatalf("PUT reply = %+v, want 2 backends, added [%s]", rep, b.URL)
	}

	// Invalid sets are rejected without touching the fleet.
	for _, bad := range []string{
		`{"backends":[]}`,
		`{"backends":["ftp://nope"]}`,
		fmt.Sprintf(`{"backends":[%q,%q]}`, a.URL, a.URL),
		`not json`,
	} {
		resp, rb := put(bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("PUT %s: status %d body %s, want 400", bad, resp.StatusCode, rb)
		}
	}
	if got := adminGet(t, front.URL); len(got.Backends) != 2 {
		t.Fatalf("fleet changed by rejected PUT: %+v", got.Backends)
	}
}

// TestReconfigureMinimalKeyMovement: removing one node must only remap
// the keys that hashed to it — every key owned by a kept node keeps its
// owner, because the ring hashes backend names, not fleet indexes.
func TestReconfigureMinimalKeyMovement(t *testing.T) {
	urls := []string{"http://10.0.0.1:9001", "http://10.0.0.2:9001", "http://10.0.0.3:9001"}
	rt, _ := newRouter(t, Config{Backends: urls, ProbeInterval: quietProbes})

	ownerURL := func(key uint64) string {
		f := rt.fleet.Load()
		return f.backends[f.ring.owner(key)].url
	}
	const keys = 500
	before := make([]string, keys)
	for i := range before {
		before[i] = ownerURL(ContentHash(fmt.Sprintf("print(%d)\n", i)))
	}

	if _, _, err := rt.Reconfigure([]string{urls[0], urls[2]}); err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}
	moved := 0
	for i := range before {
		after := ownerURL(ContentHash(fmt.Sprintf("print(%d)\n", i)))
		if before[i] == urls[1] {
			moved++
			continue // the removed node's keys must move somewhere
		}
		if after != before[i] {
			t.Fatalf("key %d moved %s -> %s though its owner was kept", i, before[i], after)
		}
	}
	if moved == 0 {
		t.Fatal("no key was owned by the removed backend; sample too small")
	}

	// Adding the node back restores its old keyspace exactly.
	if _, _, err := rt.Reconfigure(urls); err != nil {
		t.Fatalf("Reconfigure (restore): %v", err)
	}
	for i := range before {
		if after := ownerURL(ContentHash(fmt.Sprintf("print(%d)\n", i))); after != before[i] {
			t.Fatalf("key %d not restored: %s != %s", i, after, before[i])
		}
	}
}

// TestReconfigureKeepsHealthState: a URL kept across a fleet swap keeps
// its *backend object, so ejection state survives the reconfiguration.
func TestReconfigureKeepsHealthState(t *testing.T) {
	urls := []string{"http://10.0.0.1:9001", "http://10.0.0.2:9001"}
	rt, _ := newRouter(t, Config{Backends: urls, ProbeInterval: quietProbes, FailThreshold: 1})

	b0 := rt.fleet.Load().backends[0]
	if !b0.recordFailure(1, time.Now()) {
		t.Fatal("recordFailure did not eject at threshold 1")
	}

	if _, _, err := rt.Reconfigure([]string{urls[0], urls[1], "http://10.0.0.3:9001"}); err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}
	nb0 := rt.fleet.Load().backends[0]
	if nb0 != b0 {
		t.Fatal("kept backend was rebuilt; health state would be lost")
	}
	if st, _ := nb0.currentState(); st != stEjected {
		t.Fatalf("kept backend state = %v, want ejected", st)
	}
}

// TestReconfigureDrainsInflight: a removed backend finishes its in-flight
// request, is reported as draining while it does, and is forgotten after.
func TestReconfigureDrainsInflight(t *testing.T) {
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
			return
		}
		stubRun(w, `{"apiVersion":"v1","exitClass":"ok","stdout":"slowpoke\n"}`)
	})
	blocker := httptest.NewServer(mux)
	t.Cleanup(blocker.Close)
	spare := stubBackend(t, "spare\n")

	rt, front := newRouter(t, Config{Backends: []string{blocker.URL}, ProbeInterval: quietProbes})
	old := rt.fleet.Load().backends[0]

	type runRes struct {
		status int
		body   map[string]interface{}
	}
	resCh := make(chan runRes, 1)
	go func() {
		body, _ := json.Marshal(api.RunRequestV1{Src: "print(1)\n"})
		resp, err := http.Post(front.URL+"/v1/run", "application/json", bytes.NewReader(body))
		if err != nil {
			resCh <- runRes{status: -1}
			return
		}
		defer resp.Body.Close()
		var out map[string]interface{}
		json.NewDecoder(resp.Body).Decode(&out)
		resCh <- runRes{status: resp.StatusCode, body: out}
	}()
	waitFor(t, "request in flight", func() bool { return old.inflight.Load() == 1 })

	if _, removed, err := rt.Reconfigure([]string{spare.URL}); err != nil || len(removed) != 1 {
		t.Fatalf("Reconfigure: removed=%v err=%v", removed, err)
	}
	rep := adminGet(t, front.URL)
	if len(rep.Draining) != 1 || rep.Draining[0].URL != blocker.URL || rep.Draining[0].Inflight != 1 {
		t.Fatalf("draining = %+v, want %s with 1 in flight", rep.Draining, blocker.URL)
	}

	// New traffic goes to the new fleet even while the old node drains.
	if resp, _ := postRun(t, front.URL, "print(2)\n", nil); resp.Header.Get("X-Pyroute-Backend") != spare.URL {
		t.Fatalf("new traffic hit %s, want %s", resp.Header.Get("X-Pyroute-Backend"), spare.URL)
	}

	close(release)
	got := <-resCh
	if got.status != http.StatusOK {
		t.Fatalf("in-flight request on removed backend: status %d body %v", got.status, got.body)
	}
	waitFor(t, "drain to finish", func() bool { return len(adminGet(t, front.URL).Draining) == 0 })
}

// TestReloadUnderLoad: requests flow through repeated fleet swaps with
// zero failed requests — reconfiguration is invisible to clients.
func TestReloadUnderLoad(t *testing.T) {
	_, a := newServeBackend(t, 2)
	_, b := newServeBackend(t, 2)
	_, c := newServeBackend(t, 2)
	rt, front := newRouter(t, Config{Backends: []string{a.URL, b.URL}, ProbeInterval: quietProbes})

	stop := make(chan struct{})
	reloads := make(chan int, 1)
	go func() {
		n := 0
		for {
			select {
			case <-stop:
				reloads <- n
				return
			case <-time.After(5 * time.Millisecond):
			}
			var err error
			if n%2 == 0 {
				_, _, err = rt.Reconfigure([]string{a.URL, b.URL, c.URL})
			} else {
				_, _, err = rt.Reconfigure([]string{a.URL, b.URL})
			}
			if err != nil {
				t.Errorf("Reconfigure %d: %v", n, err)
				reloads <- n
				return
			}
			n++
		}
	}()

	const workers, perWorker = 4, 25
	var failures atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				src := fmt.Sprintf("print(%d)\n", w*perWorker+i)
				body, _ := json.Marshal(api.RunRequestV1{Src: src})
				resp, err := http.Post(front.URL+"/v1/run", "application/json", bytes.NewReader(body))
				if err != nil {
					failures.Add(1)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
				}
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	n := <-reloads
	if n == 0 {
		t.Fatal("no reconfiguration happened during the load run")
	}
	if f := failures.Load(); f != 0 {
		t.Fatalf("%d/%d requests failed across %d live reloads", f, workers*perWorker, n)
	}
}

// ---- idempotent replay & response integrity ------------------------------

// midflightBackend fails its first /v1/run mid-response (connection
// established, then killed — the unsafe failure mode) and serves
// normally afterwards.
func midflightBackend(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("no hijacker")
				return
			}
			conn, _, err := hj.Hijack()
			if err == nil {
				conn.Close()
			}
			return
		}
		stubRun(w, `{"apiVersion":"v1","exitClass":"ok","stdout":"revived\n"}`)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &hits
}

// TestMidflightNotRetriedWithoutKey: without an idempotency key a
// mid-flight failure must surface as upstream_error, never replay.
func TestMidflightNotRetriedWithoutKey(t *testing.T) {
	broken, hits := midflightBackend(t)
	spare := stubBackend(t, "spare\n")
	rt, front := newRouter(t, Config{
		Backends: []string{broken.URL, spare.URL}, ProbeInterval: quietProbes,
	})
	src := srcOwnedBy(t, rt, 0)

	resp, body := postRun(t, front.URL, src, nil)
	if resp.StatusCode != http.StatusBadGateway || errCode(body) != api.CodeUpstreamError {
		t.Fatalf("status %d code %q, want 502 %s", resp.StatusCode, errCode(body), api.CodeUpstreamError)
	}
	if hits.Load() != 1 {
		t.Fatalf("broken backend hit %d times, want exactly 1 (no replay)", hits.Load())
	}
}

// TestMidflightReplayedWithKey: an idempotency key authorizes replaying
// the mid-flight failure — same node first, where the backend's dedup
// cache would absorb a completed execution.
func TestMidflightReplayedWithKey(t *testing.T) {
	broken, hits := midflightBackend(t)
	spare := stubBackend(t, "spare\n")
	reg := telemetry.NewRegistry()
	urls := []string{broken.URL, spare.URL}
	rt, front := newRouter(t, Config{
		Backends: urls, ProbeInterval: quietProbes,
		BackoffBase: time.Millisecond, Metrics: NewMetrics(reg, urls),
	})
	src := srcOwnedBy(t, rt, 0)

	resp, body := postRunKey(t, front.URL, src, "job-7")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %v, want 200 via replay", resp.StatusCode, body)
	}
	if got := body["stdout"]; got != "revived\n" {
		t.Fatalf("stdout = %v, want the same-node replay's answer", got)
	}
	if hits.Load() != 2 {
		t.Fatalf("broken backend hit %d times, want 2 (original + same-node replay)", hits.Load())
	}
	if resp.Header.Get("X-Pyroute-Attempts") != "2" {
		t.Fatalf("attempts = %s, want 2", resp.Header.Get("X-Pyroute-Attempts"))
	}
	if v := rt.metrics.idemReplays.Value(); v != 1 {
		t.Fatalf("idemReplays = %d, want 1", v)
	}
}

// corruptBackend answers /v1/run with a valid body but a digest stamped
// over different bytes — the wire-corruption signature.
func corruptBackend(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", func(w http.ResponseWriter, r *http.Request) {
		body := []byte(`{"apiVersion":"v1","exitClass":"ok","stdout":"corrupt\n"}` + "\n")
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(api.HeaderResultDigest, api.Digest([]byte("not those bytes")))
		w.Write(body)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestCorruptResponseNeverServed: a response failing the digest check is
// never passed to the client — 502 without a key, re-routed to a clean
// replica with one.
func TestCorruptResponseNeverServed(t *testing.T) {
	corrupt := corruptBackend(t)
	good1, good2 := stubBackend(t, "clean\n"), stubBackend(t, "clean\n")
	reg := telemetry.NewRegistry()
	urls := []string{corrupt.URL, good1.URL, good2.URL}
	rt, front := newRouter(t, Config{
		Backends: urls, ProbeInterval: quietProbes,
		BackoffBase: time.Millisecond, Metrics: NewMetrics(reg, urls),
	})
	src := srcOwnedBy(t, rt, 0)

	resp, body := postRun(t, front.URL, src, nil)
	if resp.StatusCode != http.StatusBadGateway || errCode(body) != api.CodeUpstreamError {
		t.Fatalf("no key: status %d code %q, want 502 %s", resp.StatusCode, errCode(body), api.CodeUpstreamError)
	}
	if strings.Contains(fmt.Sprint(body), "corrupt") {
		t.Fatalf("corrupt bytes leaked to the client: %v", body)
	}

	resp, body = postRunKey(t, front.URL, src, "job-9")
	if resp.StatusCode != http.StatusOK || body["stdout"] != "clean\n" {
		t.Fatalf("with key: status %d body %v, want 200 from a clean replica", resp.StatusCode, body)
	}
	if v := rt.metrics.integrityFailures.Value(); v < 2 {
		t.Fatalf("integrityFailures = %d, want >= 2", v)
	}
}

// ---- bounded fleet metrics aggregation -----------------------------------

// TestMetricsAggregationBoundedByStall: one stalled replica delays the
// fleet scrape by at most its own MetricsTimeout and is reported
// unreachable; the healthy replica's series still aggregate.
func TestMetricsAggregationBoundedByStall(t *testing.T) {
	good := http.NewServeMux()
	good.HandleFunc("/v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "# HELP pyserve_test_total test\npyserve_test_total 41\n")
	})
	goodTS := httptest.NewServer(good)
	t.Cleanup(goodTS.Close)

	stalled := http.NewServeMux()
	stalled.HandleFunc("/v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // hold the scrape until the router gives up
	})
	stalledTS := httptest.NewServer(stalled)
	t.Cleanup(stalledTS.Close)

	_, front := newRouter(t, Config{
		Backends: []string{goodTS.URL, stalledTS.URL}, ProbeInterval: quietProbes,
		MetricsTimeout: 100 * time.Millisecond,
	})

	start := time.Now()
	resp, err := http.Get(front.URL + "/v1/metrics")
	if err != nil {
		t.Fatalf("GET /v1/metrics: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Fatalf("scrape took %v; the stalled backend held it past its own deadline", elapsed)
	}
	out := buf.String()
	if !strings.Contains(out, "pyserve_test_total 41") {
		t.Fatalf("healthy backend's series missing from scrape:\n%s", out)
	}
	if !strings.Contains(out, "aggregated 1 backends, 1 unreachable") {
		t.Fatalf("unreachable trailer missing:\n%s", out)
	}
}

// ---- half-open readmission race ------------------------------------------

// TestHalfOpenReadmitRace drives two concurrent probe goroutines against
// a backend that keeps flipping back to ejected via traffic-path
// failures, with the cooldown held at ~zero so only the flap breaker
// limits readmission. Run under -race in CI; the invariant either way:
// readmissions never exceed the budget in one window.
func TestHalfOpenReadmitRace(t *testing.T) {
	back := stubBackend(t, "up\n") // readyz always ready
	reg := telemetry.NewRegistry()
	urls := []string{back.URL}
	rt, _ := newRouter(t, Config{
		Backends: urls, ProbeInterval: quietProbes,
		FailThreshold: 1, ReadmitAfter: time.Nanosecond,
		ReadmitBudget: 2, ReadmitWindow: time.Hour,
		Metrics: NewMetrics(reg, urls),
	})
	b := rt.fleet.Load().backends[0]
	b.recordFailure(1, time.Now().Add(-time.Second)) // eject, cooldown long served

	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				rt.probe(b)
			}
		}()
	}
	wg.Add(1)
	go func() { // traffic path racing the probes: failures re-eject
		defer wg.Done()
		for i := 0; i < 100; i++ {
			b.recordFailure(1, time.Now())
		}
	}()
	wg.Wait()

	b.mu.Lock()
	readmits := len(b.readmits)
	b.mu.Unlock()
	if budget := rt.cfg.ReadmitBudget; readmits > budget {
		t.Fatalf("%d readmissions in one window, budget is %d: the flap breaker leaked", readmits, budget)
	}
	if v := reg0BreakerHolds(rt); readmits == rt.cfg.ReadmitBudget && v == 0 {
		t.Fatalf("budget exhausted but no breaker hold was recorded")
	}
}

func reg0BreakerHolds(rt *Router) uint64 {
	return rt.metrics.breakerHolds.Value(rt.fleet.Load().backends[0].slot)
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
