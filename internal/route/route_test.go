package route

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/interp"
	"repro/internal/serve"
	"repro/internal/supervise"
	"repro/internal/telemetry"
)

// ---- helpers -------------------------------------------------------------

// testLimits keeps test jobs small and fast.
var testLimits = interp.Limits{
	MaxSteps:       5_000_000,
	MaxHeapBytes:   64 << 20,
	Deadline:       2 * time.Second,
	MaxOutputBytes: 1 << 20,
}

// newServeBackend starts a real in-process pyserve backend.
func newServeBackend(t *testing.T, workers int) (*supervise.Pool, *httptest.Server) {
	t.Helper()
	reg := telemetry.NewRegistry()
	pool := supervise.NewPool(supervise.Config{
		Workers:       workers,
		Metrics:       supervise.NewMetrics(reg),
		DefaultLimits: testLimits,
	})
	ts := httptest.NewServer(serve.New(pool, reg, time.Second, nil).Mux())
	t.Cleanup(func() { ts.Close(); pool.Close() })
	return pool, ts
}

// newRouter builds and starts a Router over cfg plus an HTTP front for
// it, with cleanup registered.
func newRouter(t *testing.T, cfg Config) (*Router, *httptest.Server) {
	t.Helper()
	if cfg.Logw == nil {
		// Always exercise the health-event logging path: it once
		// self-deadlocked (logEvent re-locking a backend mutex its caller
		// held) and only runs when a log writer is configured.
		cfg.Logw = io.Discard
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	front := httptest.NewServer(rt.Mux())
	t.Cleanup(func() { front.Close(); rt.Close() })
	return rt, front
}

// postRun posts one program through url and decodes the response.
func postRun(t *testing.T, url, src string, hdr map[string]string) (*http.Response, map[string]interface{}) {
	t.Helper()
	body, _ := json.Marshal(api.RunRequestV1{Src: src})
	req, err := http.NewRequest(http.MethodPost, url+"/v1/run", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/run: %v", err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response (status %d): %v", resp.StatusCode, err)
	}
	return resp, out
}

// errCode digs the machine-readable code out of an error envelope.
func errCode(body map[string]interface{}) string {
	env, _ := body["error"].(map[string]interface{})
	code, _ := env["code"].(string)
	return code
}

// deadURL returns a URL nothing is listening on.
func deadURL(t *testing.T) string {
	t.Helper()
	ts := httptest.NewServer(http.NotFoundHandler())
	u := ts.URL
	ts.Close()
	return u
}

// stubRun writes a stub 200 /v1/run body with the X-Pyserve-Digest
// stamp the router requires on every 2xx run response.
func stubRun(w http.ResponseWriter, body string) {
	b := []byte(body + "\n")
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(api.HeaderResultDigest, api.Digest(b))
	_, _ = w.Write(b)
}

// srcOwnedBy finds a program source whose ring owner is backend idx.
func srcOwnedBy(t *testing.T, rt *Router, idx int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		src := fmt.Sprintf("print(%d)\n", i)
		if rt.fleet.Load().ring.owner(ContentHash(src)) == idx {
			return src
		}
	}
	t.Fatal("no source found owned by backend")
	return ""
}

// quietProbes is a probe interval long enough that the prober never
// fires during a unit test (traffic-driven behavior only).
const quietProbes = time.Hour

// ---- ring ----------------------------------------------------------------

func TestContentHashStable(t *testing.T) {
	a := ContentHash("print(1)\n")
	if a != ContentHash("print(1)\n") {
		t.Fatal("same source hashed differently")
	}
	if a == ContentHash("print(2)\n") {
		t.Fatal("distinct sources collided (astronomically unlikely)")
	}
}

func TestRingDistribution(t *testing.T) {
	names := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := buildRing(names)
	counts := make([]int, len(names))
	const keys = 30000
	for i := 0; i < keys; i++ {
		counts[r.owner(ContentHash(fmt.Sprintf("key-%d", i)))]++
	}
	for i, c := range counts {
		frac := float64(c) / keys
		if frac < 0.15 || frac > 0.55 {
			t.Errorf("backend %d owns %.1f%% of keys; want a roughly even split", i, 100*frac)
		}
	}
}

func TestRingStabilityUnderEjection(t *testing.T) {
	names := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := buildRing(names)
	// Keys not owned by backend 1 must keep their owner when backend 1
	// is skipped (ejection only remaps the ejected node's keys).
	moved := 0
	for i := 0; i < 5000; i++ {
		key := ContentHash(fmt.Sprintf("key-%d", i))
		owner := r.owner(key)
		var surviving int
		r.walk(key, func(idx int) bool {
			if idx == 1 {
				return true // skip the "ejected" backend
			}
			surviving = idx
			return false
		})
		if owner != 1 && surviving != owner {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys not owned by the ejected backend changed owner", moved)
	}
}

func TestRingWalkDistinct(t *testing.T) {
	names := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r := buildRing(names)
	var order []int
	r.walk(ContentHash("x"), func(idx int) bool { order = append(order, idx); return true })
	if len(order) != len(names) {
		t.Fatalf("walk yielded %d backends, want %d distinct", len(order), len(names))
	}
	seen := map[int]bool{}
	for _, i := range order {
		if seen[i] {
			t.Fatalf("walk yielded backend %d twice", i)
		}
		seen[i] = true
	}
}

// ---- happy path ----------------------------------------------------------

func TestRouterHappyPath(t *testing.T) {
	_, b1 := newServeBackend(t, 2)
	_, b2 := newServeBackend(t, 2)
	_, b3 := newServeBackend(t, 2)
	reg := telemetry.NewRegistry()
	backends := []string{b1.URL, b2.URL, b3.URL}
	rt, front := newRouter(t, Config{
		Backends:      backends,
		ProbeInterval: quietProbes,
		Metrics:       NewMetrics(reg, backends),
	})

	resp, body := postRun(t, front.URL, "print(6*7)\n", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200; body %v", resp.StatusCode, body)
	}
	if got := body["stdout"]; got != "42\n" {
		t.Fatalf("stdout %q, want %q", got, "42\n")
	}
	if resp.Header.Get("X-Pyroute-Backend") == "" {
		t.Error("missing X-Pyroute-Backend header")
	}
	if resp.Header.Get(api.HeaderRequestID) == "" {
		t.Error("missing X-Request-Id header")
	}
	if resp.Header.Get("X-Pyroute-Attempts") != "1" {
		t.Errorf("attempts header %q, want 1", resp.Header.Get("X-Pyroute-Attempts"))
	}
	if rt.metrics.requests.Value(outOK) != 1 {
		t.Errorf("requests{ok} = %d, want 1", rt.metrics.requests.Value(outOK))
	}
}

func TestRouterPinsContentToOneBackend(t *testing.T) {
	_, b1 := newServeBackend(t, 2)
	_, b2 := newServeBackend(t, 2)
	_, front := newRouter(t, Config{
		Backends:      []string{b1.URL, b2.URL},
		ProbeInterval: quietProbes,
	})
	var first string
	for i := 0; i < 5; i++ {
		resp, _ := postRun(t, front.URL, "print(1+1)\n", nil)
		got := resp.Header.Get("X-Pyroute-Backend")
		if first == "" {
			first = got
		} else if got != first {
			t.Fatalf("same program routed to %s then %s", first, got)
		}
	}
}

func TestRouterValidation(t *testing.T) {
	_, b1 := newServeBackend(t, 1)
	_, front := newRouter(t, Config{Backends: []string{b1.URL}, ProbeInterval: quietProbes})

	resp, err := http.Post(front.URL+"/v1/run", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: status %d, want 400", resp.StatusCode)
	}

	resp2, body := postRun(t, front.URL, "", nil)
	if resp2.StatusCode != http.StatusBadRequest || errCode(body) != api.CodeMissingProgram {
		t.Errorf("missing program: status %d code %q, want 400 %q", resp2.StatusCode, errCode(body), api.CodeMissingProgram)
	}
}

// ---- retries -------------------------------------------------------------

func TestRetryOnConnectError(t *testing.T) {
	_, live := newServeBackend(t, 2)
	dead := deadURL(t)
	reg := telemetry.NewRegistry()
	backends := []string{dead, live.URL}
	rt, front := newRouter(t, Config{
		Backends:      backends,
		ProbeInterval: quietProbes,
		FailThreshold: 100, // keep the dead node routable: force the retry path
		Metrics:       NewMetrics(reg, backends),
	})

	deadFirst := srcOwnedBy(t, rt, 0)
	resp, body := postRun(t, front.URL, deadFirst, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 via retry; body %v", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Pyroute-Attempts") != "2" {
		t.Errorf("attempts %q, want 2", resp.Header.Get("X-Pyroute-Attempts"))
	}
	if rt.metrics.retries.Value() != 1 {
		t.Errorf("retries = %d, want 1", rt.metrics.retries.Value())
	}
}

func TestRetryTagsRequestID(t *testing.T) {
	var gotID atomic.Value
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", func(w http.ResponseWriter, r *http.Request) {
		gotID.Store(r.Header.Get(api.HeaderRequestID))
		stubRun(w, `{"apiVersion":"v1","exitClass":"ok","stdout":""}`)
	})
	live := httptest.NewServer(mux)
	t.Cleanup(live.Close)
	dead := deadURL(t)

	rt, front := newRouter(t, Config{
		Backends:      []string{dead, live.URL},
		ProbeInterval: quietProbes,
		FailThreshold: 100,
	})
	deadFirst := srcOwnedBy(t, rt, 0)
	resp, _ := postRun(t, front.URL, deadFirst, map[string]string{api.HeaderRequestID: "edge-42"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if id, _ := gotID.Load().(string); id != "edge-42.r2" {
		t.Errorf("backend saw request id %q, want %q", id, "edge-42.r2")
	}
	if resp.Header.Get(api.HeaderRequestID) != "edge-42" {
		t.Errorf("client got id %q, want the original %q", resp.Header.Get(api.HeaderRequestID), "edge-42")
	}
}

func TestShedReroutesToNextBackend(t *testing.T) {
	var shedHits atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", func(w http.ResponseWriter, r *http.Request) {
		shedHits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"apiVersion":"v1","exitClass":"shed","retryAfterMs":1000}`)
	})
	shedding := httptest.NewServer(mux)
	t.Cleanup(shedding.Close)
	_, live := newServeBackend(t, 2)

	rt, front := newRouter(t, Config{
		Backends:      []string{shedding.URL, live.URL},
		ProbeInterval: quietProbes,
	})
	shedFirst := srcOwnedBy(t, rt, 0)
	start := time.Now()
	resp, body := postRun(t, front.URL, shedFirst, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 via re-route; body %v", resp.StatusCode, body)
	}
	if shedHits.Load() == 0 {
		t.Fatal("shedding backend was never tried first")
	}
	// A shed re-routes immediately — the 1s Retry-After hint must not
	// park the request when another backend is available.
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Errorf("re-route took %v; shed failover should not sleep on the hint", d)
	}
}

func TestShedPassesThroughWhenAlone(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"apiVersion":"v1","exitClass":"shed","retryAfterMs":7000}`)
	})
	shedding := httptest.NewServer(mux)
	t.Cleanup(shedding.Close)

	_, front := newRouter(t, Config{
		Backends:      []string{shedding.URL},
		ProbeInterval: quietProbes,
	})
	resp, body := postRun(t, front.URL, "print(1)\n", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 pass-through", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "7" {
		t.Errorf("Retry-After %q, want the backend's hint 7", resp.Header.Get("Retry-After"))
	}
	if body["retryAfterMs"] == nil {
		t.Error("backend shed body not passed through")
	}
}

func TestNoRetryWhenJobMayHaveExecuted(t *testing.T) {
	var otherHits atomic.Int64
	// A backend that accepts the request, then kills the connection
	// mid-response: the job may have executed, so no retry is allowed.
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", func(w http.ResponseWriter, r *http.Request) {
		hj, ok := w.(http.Hijacker)
		if !ok {
			t.Error("hijack unsupported")
			return
		}
		conn, _, err := hj.Hijack()
		if err == nil {
			conn.Close()
		}
	})
	broken := httptest.NewServer(mux)
	t.Cleanup(broken.Close)
	other := http.NewServeMux()
	other.HandleFunc("/v1/run", func(w http.ResponseWriter, r *http.Request) {
		otherHits.Add(1)
		stubRun(w, `{}`)
	})
	spare := httptest.NewServer(other)
	t.Cleanup(spare.Close)

	reg := telemetry.NewRegistry()
	backends := []string{broken.URL, spare.URL}
	rt, front := newRouter(t, Config{
		Backends:      backends,
		ProbeInterval: quietProbes,
		Metrics:       NewMetrics(reg, backends),
	})
	brokenFirst := srcOwnedBy(t, rt, 0)
	resp, body := postRun(t, front.URL, brokenFirst, nil)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502; body %v", resp.StatusCode, body)
	}
	if errCode(body) != api.CodeUpstreamError {
		t.Errorf("code %q, want %q", errCode(body), api.CodeUpstreamError)
	}
	if otherHits.Load() != 0 {
		t.Fatal("request was re-routed although the job may have executed")
	}
	if rt.metrics.retries.Value() != 0 {
		t.Errorf("retries = %d, want 0", rt.metrics.retries.Value())
	}
}

func TestRetryBudgetExhausts(t *testing.T) {
	_, live := newServeBackend(t, 2)
	dead := deadURL(t)
	reg := telemetry.NewRegistry()
	backends := []string{dead, live.URL}
	rt, front := newRouter(t, Config{
		Backends:         backends,
		ProbeInterval:    quietProbes,
		FailThreshold:    1000,
		RetryBudgetRatio: 0.001, // essentially no refill
		RetryBudgetBurst: 1,     // one retry, then dry
		Metrics:          NewMetrics(reg, backends),
	})
	deadFirst := srcOwnedBy(t, rt, 0)

	sawBudget := false
	okCount := 0
	for i := 0; i < 5; i++ {
		resp, body := postRun(t, front.URL, deadFirst, nil)
		switch resp.StatusCode {
		case http.StatusOK:
			okCount++
		case http.StatusServiceUnavailable:
			if errCode(body) == api.CodeRetryBudget {
				sawBudget = true
				if resp.Header.Get("Retry-After") == "" {
					t.Error("budget rejection missing Retry-After hint")
				}
			}
		default:
			t.Fatalf("unexpected status %d: %v", resp.StatusCode, body)
		}
	}
	if okCount == 0 {
		t.Error("the budgeted retry never succeeded")
	}
	if !sawBudget {
		t.Error("never saw a retry_budget_exhausted rejection after the bucket drained")
	}
	if rt.metrics.retryBudgetExhausted.Value() == 0 {
		t.Error("retry_budget_exhausted counter not incremented")
	}
}

// ---- health state machine ------------------------------------------------

// flippableBackend is a fake pyserve whose readiness the test controls.
type flippableBackend struct {
	ts *httptest.Server
	// mode: "ready", "draining", "down" (readyz reports no live workers,
	// run refuses).
	mode atomic.Value
	runs atomic.Int64
}

func newFlippable(t *testing.T) *flippableBackend {
	f := &flippableBackend{}
	f.mode.Store("ready")
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		switch f.mode.Load().(string) {
		case "ready":
			fmt.Fprintln(w, `{"ready":true}`)
		case "draining":
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"ready":false,"reason":"draining"}`)
		default:
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"ready":false,"reason":"no live workers"}`)
		}
	})
	mux.HandleFunc("/v1/run", func(w http.ResponseWriter, r *http.Request) {
		f.runs.Add(1)
		stubRun(w, `{"apiVersion":"v1","exitClass":"ok","stdout":"flip\n"}`)
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

// waitState polls until backend b of rt reaches state want.
func waitState(t *testing.T, rt *Router, idx int, want backendState) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st, _ := rt.fleet.Load().backends[idx].currentState(); st == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	st, _ := rt.fleet.Load().backends[idx].currentState()
	t.Fatalf("backend %d stuck in %v, want %v", idx, st, want)
}

func TestProbeEjectsAndReadmits(t *testing.T) {
	f := newFlippable(t)
	_, spare := newServeBackend(t, 1)
	reg := telemetry.NewRegistry()
	backends := []string{f.ts.URL, spare.URL}
	rt, _ := newRouter(t, Config{
		Backends:      backends,
		ProbeInterval: 10 * time.Millisecond,
		ProbeTimeout:  200 * time.Millisecond,
		FailThreshold: 2,
		ReadmitAfter:  30 * time.Millisecond,
		Metrics:       NewMetrics(reg, backends),
	})

	f.mode.Store("down")
	waitState(t, rt, 0, stEjected)
	if rt.metrics.ejections.Value(0) == 0 {
		t.Error("ejections counter not incremented")
	}

	f.mode.Store("ready")
	waitState(t, rt, 0, stHealthy)
	if rt.metrics.readmits.Value(0) == 0 {
		t.Error("readmits counter not incremented")
	}
}

func TestDrainingBypassedNotEjected(t *testing.T) {
	f := newFlippable(t)
	_, spare := newServeBackend(t, 1)
	reg := telemetry.NewRegistry()
	backends := []string{f.ts.URL, spare.URL}
	rt, front := newRouter(t, Config{
		Backends:      backends,
		ProbeInterval: 10 * time.Millisecond,
		FailThreshold: 2,
		Metrics:       NewMetrics(reg, backends),
	})

	f.mode.Store("draining")
	waitState(t, rt, 0, stDrained)
	if rt.metrics.ejections.Value(0) != 0 {
		t.Fatal("draining backend was ejected; drain must bypass, not eject")
	}

	// Traffic owned by the draining node flows to the spare.
	drainFirst := srcOwnedBy(t, rt, 0)
	resp, _ := postRun(t, front.URL, drainFirst, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 via the spare", resp.StatusCode)
	}
	if f.runs.Load() != 0 {
		t.Error("draining backend received traffic")
	}

	// The instant readiness returns, so does traffic — no cooldown.
	f.mode.Store("ready")
	waitState(t, rt, 0, stHealthy)
}

func TestFlapBreakerHoldsFlappingBackend(t *testing.T) {
	f := newFlippable(t)
	_, spare := newServeBackend(t, 1)
	reg := telemetry.NewRegistry()
	backends := []string{f.ts.URL, spare.URL}
	rt, _ := newRouter(t, Config{
		Backends:      backends,
		ProbeInterval: 5 * time.Millisecond,
		FailThreshold: 1,
		ReadmitAfter:  10 * time.Millisecond,
		ReadmitBudget: 2,
		ReadmitWindow: time.Hour, // the window never slides during the test
		Metrics:       NewMetrics(reg, backends),
	})

	// Flap: down -> eject, up -> readmit, twice (exhausting the budget).
	for i := 0; i < 2; i++ {
		f.mode.Store("down")
		waitState(t, rt, 0, stEjected)
		f.mode.Store("ready")
		waitState(t, rt, 0, stHealthy)
	}
	// Third ejection: the node recovers, but the breaker must hold it.
	f.mode.Store("down")
	waitState(t, rt, 0, stEjected)
	f.mode.Store("ready")

	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) && rt.metrics.breakerHolds.Value(0) == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if rt.metrics.breakerHolds.Value(0) == 0 {
		t.Fatal("flap breaker never held the flapping backend")
	}
	if st, _ := rt.fleet.Load().backends[0].currentState(); st != stEjected {
		t.Fatalf("flapping backend is %v, want held ejected", st)
	}
	if got := rt.metrics.readmits.Value(0); got != 2 {
		t.Errorf("readmits = %d, want exactly the budget of 2", got)
	}
}

// ---- hedging -------------------------------------------------------------

func TestHedgingDuplicatesSlowRequests(t *testing.T) {
	slow := http.NewServeMux()
	slow.HandleFunc("/v1/run", func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(2 * time.Second):
		case <-r.Context().Done():
			return
		}
		stubRun(w, `{"apiVersion":"v1","exitClass":"ok","stdout":"slow\n"}`)
	})
	slowTS := httptest.NewServer(slow)
	t.Cleanup(slowTS.Close)
	_, fast := newServeBackend(t, 2)

	reg := telemetry.NewRegistry()
	backends := []string{slowTS.URL, fast.URL}
	rt, front := newRouter(t, Config{
		Backends:      backends,
		ProbeInterval: quietProbes,
		Hedge:         true,
		HedgeMinDelay: 10 * time.Millisecond,
		Metrics:       NewMetrics(reg, backends),
	})
	slowFirst := srcOwnedBy(t, rt, 0)

	start := time.Now()
	resp, body := postRun(t, front.URL, slowFirst, nil)
	took := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200; body %v", resp.StatusCode, body)
	}
	if took > time.Second {
		t.Errorf("hedged request took %v; the fast backend should have answered", took)
	}
	if rt.metrics.hedges.Value() == 0 {
		t.Error("hedges counter not incremented")
	}
	if rt.metrics.hedgeWins.Value() == 0 {
		t.Error("hedge_wins counter not incremented")
	}
}

// ---- degraded modes ------------------------------------------------------

// TestAllDrainedPassesThrough: when every backend is drained (alive but
// not ready — watermark backpressure or a fleet-wide drain), the router
// must still pass requests through and let the backend's own admission
// control answer, not synthesize no_backends for a fleet that is merely
// saturated. Ejected backends never get this fallback (see
// TestNoBackendsRoutable).
func TestAllDrainedPassesThrough(t *testing.T) {
	f := newFlippable(t)
	rt, front := newRouter(t, Config{
		Backends:      []string{f.ts.URL},
		ProbeInterval: 10 * time.Millisecond,
		FailThreshold: 2,
	})
	f.mode.Store("draining")
	waitState(t, rt, 0, stDrained)

	resp, body := postRun(t, front.URL, "print(1)\n", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 passed through the drained backend (body %v)", resp.StatusCode, body)
	}
	if got := body["stdout"]; got != "flip\n" {
		t.Errorf("stdout %q, want the drained backend's own answer", got)
	}
	if f.runs.Load() == 0 {
		t.Error("drained backend never saw the request")
	}
}

func TestNoBackendsRoutable(t *testing.T) {
	f := newFlippable(t)
	rt, front := newRouter(t, Config{
		Backends:      []string{f.ts.URL},
		ProbeInterval: 10 * time.Millisecond,
		FailThreshold: 1,
	})
	f.mode.Store("down")
	waitState(t, rt, 0, stEjected)

	resp, body := postRun(t, front.URL, "print(1)\n", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if errCode(body) != api.CodeNoBackends {
		t.Errorf("code %q, want %q", errCode(body), api.CodeNoBackends)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("no_backends rejection missing Retry-After")
	}

	hz, err := http.Get(front.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz status %d with zero routable backends, want 503", hz.StatusCode)
	}
}

func TestSingleBackendPassThrough(t *testing.T) {
	_, b := newServeBackend(t, 2)
	_, front := newRouter(t, Config{
		Backends:      []string{b.URL},
		ProbeInterval: quietProbes,
		Hedge:         true, // must be ignored with one backend
	})
	resp, body := postRun(t, front.URL, "print(2**10)\n", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200; body %v", resp.StatusCode, body)
	}
	if got := body["stdout"]; got != "1024\n" {
		t.Fatalf("stdout %q, want %q", got, "1024\n")
	}
}

// ---- metrics aggregation -------------------------------------------------

func TestMetricsAggregation(t *testing.T) {
	static := func(text string) *httptest.Server {
		mux := http.NewServeMux()
		mux.HandleFunc("/v1/metrics", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, text)
		})
		mux.HandleFunc("/v1/readyz", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, `{"ready":true}`)
		})
		return httptest.NewServer(mux)
	}
	b1 := static("# HELP jobs_total Jobs.\n# TYPE jobs_total counter\njobs_total{class=\"ok\"} 3\n")
	b2 := static("# HELP jobs_total Jobs.\n# TYPE jobs_total counter\njobs_total{class=\"ok\"} 4\n")
	t.Cleanup(func() { b1.Close(); b2.Close() })

	reg := telemetry.NewRegistry()
	backends := []string{b1.URL, b2.URL}
	_, front := newRouter(t, Config{
		Backends:      backends,
		ProbeInterval: quietProbes,
		Metrics:       NewMetrics(reg, backends),
	})

	resp, err := http.Get(front.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()

	if !strings.Contains(text, `jobs_total{class="ok"} 7`) {
		t.Errorf("backend series not summed across the fleet:\n%s", text)
	}
	if !strings.Contains(text, "pyroute_requests_total") {
		t.Error("router's own families missing from the aggregated scrape")
	}
	if !strings.Contains(text, "pyroute_backend_up") {
		t.Error("pyroute_backend_up gauge missing")
	}
	if !strings.Contains(text, "# pyroute: aggregated 2 backends, 0 unreachable") {
		t.Errorf("aggregation trailer missing or wrong:\n%s", text)
	}
}

// ---- kill smoke ----------------------------------------------------------

// TestThreeBackendKillSmoke is the CI smoke: three real backends, one is
// killed mid-run, traffic keeps answering 200 with correct output.
func TestThreeBackendKillSmoke(t *testing.T) {
	_, b1 := newServeBackend(t, 2)
	_, b2 := newServeBackend(t, 2)
	_, b3 := newServeBackend(t, 2)
	reg := telemetry.NewRegistry()
	backends := []string{b1.URL, b2.URL, b3.URL}
	rt, front := newRouter(t, Config{
		Backends:      backends,
		ProbeInterval: 20 * time.Millisecond,
		FailThreshold: 2,
		ReadmitAfter:  time.Hour, // stays dead for the whole test
		Metrics:       NewMetrics(reg, backends),
	})

	run := func(i int) {
		src := fmt.Sprintf("print(%d * 2)\n", i)
		want := fmt.Sprintf("%d\n", i*2)
		resp, body := postRun(t, front.URL, src, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d; body %v", i, resp.StatusCode, body)
		}
		if got := body["stdout"]; got != want {
			t.Fatalf("request %d: stdout %q, want %q (wrong answer after kill)", i, got, want)
		}
	}

	for i := 0; i < 20; i++ {
		run(i)
	}
	b2.CloseClientConnections()
	b2.Close() // kill one backend for good
	for i := 20; i < 60; i++ {
		run(i)
	}
	waitState(t, rt, 1, stEjected)
	for i := 60; i < 80; i++ {
		run(i)
	}
	if rt.metrics.requests.Value(outOK) != 80 {
		t.Errorf("requests{ok} = %d, want all 80", rt.metrics.requests.Value(outOK))
	}
}

// TestKeyedRequestNeverHedges is the exactly-once regression test for
// the hedge x idempotency interaction: the dedup cache is per-replica,
// so a hedge — which races the same body on a SECOND replica — can
// double-execute a keyed request fleet-wide (the old behavior). A keyed
// request whose primary is slow but executing must wait for the
// primary, not hedge: exactly one backend may ever see the body.
func TestKeyedRequestNeverHedges(t *testing.T) {
	var primaryRuns, altRuns atomic.Int64
	mkCounting := func(runs *atomic.Int64, delay time.Duration) *httptest.Server {
		mux := http.NewServeMux()
		mux.HandleFunc("/v1/run", func(w http.ResponseWriter, r *http.Request) {
			runs.Add(1)
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
				return
			}
			stubRun(w, `{"apiVersion":"v1","exitClass":"ok","stdout":"counted\n","executions":1}`)
		})
		ts := httptest.NewServer(mux)
		t.Cleanup(ts.Close)
		return ts
	}
	// Primary: slow enough that the hedge timer (10ms min delay) fires
	// long before it answers. Alt: instant, so an (incorrect) hedge
	// would win the race and be visible both in altRuns and the winner.
	primary := mkCounting(&primaryRuns, 400*time.Millisecond)
	alt := mkCounting(&altRuns, 0)

	reg := telemetry.NewRegistry()
	backends := []string{primary.URL, alt.URL}
	rt, front := newRouter(t, Config{
		Backends:      backends,
		ProbeInterval: quietProbes,
		Hedge:         true,
		HedgeMinDelay: 10 * time.Millisecond,
		Metrics:       NewMetrics(reg, backends),
	})
	src := srcOwnedBy(t, rt, 0)

	body, _ := json.Marshal(api.RunRequestV1{Src: src, IdempotencyKey: "exactly-once-1"})
	req, err := http.NewRequest(http.MethodPost, front.URL+"/v1/run", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %v", resp.StatusCode, out)
	}
	if got := primaryRuns.Load(); got != 1 {
		t.Fatalf("primary executions = %d, want 1", got)
	}
	if got := altRuns.Load(); got != 0 {
		t.Fatalf("keyed request reached %d backends beyond its owner: hedging must be suppressed for keyed requests", got+1)
	}
	if rt.metrics.hedges.Value() != 0 {
		t.Fatal("hedge launched for a keyed request")
	}

	// Control: an unkeyed request in the same fleet still hedges (the
	// tail-latency machinery stays intact for the dedup-free traffic).
	resp2, _ := postRun(t, front.URL, src, nil)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("unkeyed control status %d", resp2.StatusCode)
	}
	if rt.metrics.hedges.Value() == 0 {
		t.Fatal("unkeyed request no longer hedges")
	}
}
