package route

import (
	"bufio"
	"bytes"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// aggregate.go merges the backends' Prometheus text expositions into one
// fleet-wide scrape: series with identical name+labels are summed across
// backends (counters and histogram buckets sum exactly; pool-occupancy
// gauges sum into fleet totals), comment lines are deduplicated, and the
// router's own pyroute_ families are prepended. The router stays a thin
// front: it does not need to know any backend metric by name.

// promAggregator accumulates parsed exposition lines in first-seen order.
type promAggregator struct {
	order  []promEntry
	series map[string]int // series key -> index into order
	seen   map[string]bool
	// scraped/failed count backends contacted for the trailer comment.
	scraped, failed int
}

type promEntry struct {
	comment string  // non-empty for # lines
	key     string  // series name+labels
	value   float64 // summed value
}

func newPromAggregator() *promAggregator {
	return &promAggregator{series: make(map[string]int), seen: make(map[string]bool)}
}

// consume parses one backend's exposition and folds it in. Malformed
// lines are skipped — a half-written backend scrape must not break the
// fleet scrape.
func (a *promAggregator) consume(r io.Reader) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !a.seen[line] {
				a.seen[line] = true
				a.order = append(a.order, promEntry{comment: line})
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		key, raw := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			continue
		}
		if i, ok := a.series[key]; ok {
			a.order[i].value += v
		} else {
			a.series[key] = len(a.order)
			a.order = append(a.order, promEntry{key: key, value: v})
		}
	}
}

func (a *promAggregator) write(w io.Writer) {
	buf := bufio.NewWriter(w)
	for _, e := range a.order {
		if e.comment != "" {
			buf.WriteString(e.comment)
			buf.WriteByte('\n')
			continue
		}
		buf.WriteString(e.key)
		buf.WriteByte(' ')
		buf.WriteString(strconv.FormatFloat(e.value, 'g', -1, 64))
		buf.WriteByte('\n')
	}
	buf.Flush()
}

// handleMetrics serves the fleet-wide scrape: the router's own families
// first, then the summed backend families. Backends that fail to answer
// within the probe timeout are skipped and counted in a trailer comment.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	agg := newPromAggregator()
	for _, b := range rt.backends {
		resp, err := rt.probeClient.Get(b.url + "/v1/metrics")
		if err != nil {
			agg.failed++
			continue
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, maxUpstreamBody))
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			agg.failed++
			continue
		}
		agg.scraped++
		agg.consume(bytes.NewReader(body))
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if rt.metrics != nil && rt.metrics.reg != nil {
		_ = rt.metrics.reg.WritePrometheus(w)
	}
	agg.write(w)
	_, _ = io.WriteString(w, "# pyroute: aggregated "+strconv.Itoa(agg.scraped)+
		" backends, "+strconv.Itoa(agg.failed)+" unreachable\n")
}
