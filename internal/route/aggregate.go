package route

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// aggregate.go merges the backends' Prometheus text expositions into one
// fleet-wide scrape: series with identical name+labels are summed across
// backends (counters and histogram buckets sum exactly; pool-occupancy
// gauges sum into fleet totals), comment lines are deduplicated, and the
// router's own pyroute_ families are prepended. The router stays a thin
// front: it does not need to know any backend metric by name.

// promAggregator accumulates parsed exposition lines in first-seen order.
type promAggregator struct {
	order  []promEntry
	series map[string]int // series key -> index into order
	seen   map[string]bool
	// scraped/failed count backends contacted for the trailer comment.
	scraped, failed int
}

type promEntry struct {
	comment string  // non-empty for # lines
	key     string  // series name+labels
	value   float64 // summed value
}

func newPromAggregator() *promAggregator {
	return &promAggregator{series: make(map[string]int), seen: make(map[string]bool)}
}

// consume parses one backend's exposition and folds it in. Malformed
// lines are skipped — a half-written backend scrape must not break the
// fleet scrape.
func (a *promAggregator) consume(r io.Reader) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !a.seen[line] {
				a.seen[line] = true
				a.order = append(a.order, promEntry{comment: line})
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		key, raw := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			continue
		}
		if i, ok := a.series[key]; ok {
			a.order[i].value += v
		} else {
			a.series[key] = len(a.order)
			a.order = append(a.order, promEntry{key: key, value: v})
		}
	}
}

func (a *promAggregator) write(w io.Writer) {
	buf := bufio.NewWriter(w)
	for _, e := range a.order {
		if e.comment != "" {
			buf.WriteString(e.comment)
			buf.WriteByte('\n')
			continue
		}
		buf.WriteString(e.key)
		buf.WriteByte(' ')
		buf.WriteString(strconv.FormatFloat(e.value, 'g', -1, 64))
		buf.WriteByte('\n')
	}
	buf.Flush()
}

// handleMetrics serves the fleet-wide scrape: the router's own families
// first, then the summed backend families. Backend fetches run
// concurrently, each under its own MetricsTimeout deadline, so one
// stalled replica delays the scrape by at most one timeout instead of
// holding the whole fleet scrape hostage; backends that fail to answer
// are skipped and counted in a trailer comment. Results are folded in
// fleet order so the output is deterministic regardless of which fetch
// finished first.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	backends := rt.fleet.Load().backends
	bodies := make([][]byte, len(backends)) // nil = fetch failed
	var wg sync.WaitGroup
	for i, b := range backends {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.MetricsTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/v1/metrics", nil)
			if err != nil {
				return
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(io.LimitReader(resp.Body, maxUpstreamBody))
			if err != nil || resp.StatusCode != http.StatusOK {
				return
			}
			bodies[i] = body
		}(i, b)
	}
	wg.Wait()

	agg := newPromAggregator()
	for _, body := range bodies {
		if body == nil {
			agg.failed++
			continue
		}
		agg.scraped++
		agg.consume(bytes.NewReader(body))
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if rt.metrics != nil && rt.metrics.reg != nil {
		_ = rt.metrics.reg.WritePrometheus(w)
	}
	agg.write(w)
	_, _ = io.WriteString(w, "# pyroute: aggregated "+strconv.Itoa(agg.scraped)+
		" backends, "+strconv.Itoa(agg.failed)+" unreachable\n")
}
