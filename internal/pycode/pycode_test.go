package pycode

import (
	"strings"
	"testing"
)

func TestOpcodeNames(t *testing.T) {
	for op := Opcode(0); op < Opcode(NumOpcodes); op++ {
		if strings.HasPrefix(op.String(), "Opcode(") {
			t.Errorf("opcode %d unnamed", op)
		}
	}
}

func TestHasArgConsistency(t *testing.T) {
	if POP_TOP.HasArg() || BINARY_ADD.HasArg() || RETURN_VALUE.HasArg() {
		t.Error("no-arg opcodes report args")
	}
	for _, op := range []Opcode{LOAD_CONST, LOAD_FAST, CALL_FUNCTION, JUMP_ABSOLUTE, COMPARE_OP, FOR_ITER} {
		if !op.HasArg() {
			t.Errorf("%s should have an arg", op)
		}
	}
}

func TestConstEqualityAndString(t *testing.T) {
	if !IntConst(3).Equal(IntConst(3)) || IntConst(3).Equal(IntConst(4)) {
		t.Error("int const equality")
	}
	if IntConst(1).Equal(FloatConst(1)) {
		t.Error("int and float consts must differ (1 vs 1.0 literals)")
	}
	if !BoolConst(true).Equal(BoolConst(true)) || BoolConst(true).Equal(BoolConst(false)) {
		t.Error("bool const equality")
	}
	tup := Const{Kind: ConstTuple, Tuple: []Const{IntConst(1), StrConst("a")}}
	tup2 := Const{Kind: ConstTuple, Tuple: []Const{IntConst(1), StrConst("a")}}
	if !tup.Equal(tup2) {
		t.Error("tuple const equality")
	}
	if tup.String() != `(1, "a")` {
		t.Errorf("tuple const string %q", tup.String())
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	good := &Code{
		Name: "f", Varnames: []string{"x"}, Consts: []Const{NoneConst()},
		Code:      []Instr{{Op: LOAD_CONST, Arg: 0}, {Op: RETURN_VALUE}},
		StackSize: 4,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid code rejected: %v", err)
	}
	bad := *good
	bad.Code = []Instr{{Op: LOAD_CONST, Arg: 7}, {Op: RETURN_VALUE}}
	if bad.Validate() == nil {
		t.Error("out-of-range const accepted")
	}
	bad2 := *good
	bad2.Code = []Instr{{Op: JUMP_ABSOLUTE, Arg: 99}}
	if bad2.Validate() == nil {
		t.Error("out-of-range jump accepted")
	}
	bad3 := *good
	bad3.StackSize = 0
	if bad3.Validate() == nil {
		t.Error("zero stack accepted")
	}
	bad4 := *good
	bad4.Code = []Instr{{Op: LOAD_FAST, Arg: 3}, {Op: RETURN_VALUE}}
	if bad4.Validate() == nil {
		t.Error("out-of-range local accepted")
	}
}

func TestDisassembleShowsOperands(t *testing.T) {
	c := &Code{
		Name: "f", Varnames: []string{"x"}, Names: []string{"g"},
		Consts: []Const{IntConst(42)},
		Code: []Instr{
			{Op: LOAD_CONST, Arg: 0},
			{Op: STORE_FAST, Arg: 0},
			{Op: LOAD_GLOBAL, Arg: 0},
			{Op: COMPARE_OP, Arg: int32(CmpLE)},
			{Op: RETURN_VALUE},
		},
		StackSize: 4,
	}
	d := c.Disassemble()
	for _, want := range []string{"(42)", "(x)", "(g)", "(<=)", "LOAD_CONST"} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q:\n%s", want, d)
		}
	}
}
