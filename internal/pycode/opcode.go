// Package pycode defines the MiniPy bytecode: a CPython-2.7-style
// stack-machine instruction set, code objects, and a disassembler.
//
// The opcode set intentionally mirrors CPython's: the overhead study
// depends on the interpreter having the same structural work to do per
// bytecode (dispatch, stack traffic, const loads, block-stack management
// for loops, global/local name spaces) as the real interpreter.
package pycode

import "fmt"

// Opcode identifies a bytecode instruction.
type Opcode uint8

// The MiniPy opcode set.
const (
	// Stack manipulation.
	POP_TOP Opcode = iota
	DUP_TOP
	DUP_TOP_TWO
	ROT_TWO
	ROT_THREE

	// Constants and names.
	LOAD_CONST  // arg: const index
	LOAD_FAST   // arg: local slot
	STORE_FAST  // arg: local slot
	LOAD_GLOBAL // arg: name index; falls back to builtins
	STORE_GLOBAL
	LOAD_NAME // arg: name index; module-level load (globals then builtins)
	STORE_NAME
	LOAD_ATTR  // arg: name index
	STORE_ATTR // arg: name index

	// Unary operations.
	UNARY_NEGATIVE
	UNARY_NOT

	// Binary operations.
	BINARY_ADD
	BINARY_SUBTRACT
	BINARY_MULTIPLY
	BINARY_DIVIDE // true division on floats, floor on ints (py2)
	BINARY_FLOOR_DIVIDE
	BINARY_MODULO
	BINARY_POWER
	BINARY_LSHIFT
	BINARY_RSHIFT
	BINARY_AND
	BINARY_OR
	BINARY_XOR
	BINARY_SUBSCR

	// In-place operations (compile from augmented assignment).
	INPLACE_ADD
	INPLACE_SUBTRACT
	INPLACE_MULTIPLY
	INPLACE_DIVIDE
	INPLACE_FLOOR_DIVIDE
	INPLACE_MODULO
	INPLACE_AND
	INPLACE_OR
	INPLACE_XOR
	INPLACE_LSHIFT
	INPLACE_RSHIFT

	STORE_SUBSCR
	DELETE_SUBSCR

	// Comparison; arg: CmpOp.
	COMPARE_OP

	// Container construction; arg: element count.
	BUILD_LIST
	BUILD_TUPLE
	BUILD_MAP // arg: hint (pairs follow via STORE_MAP)
	STORE_MAP
	BUILD_SLICE // arg: 2 or 3 (start, stop[, step])
	UNPACK_SEQUENCE

	// Control flow.
	JUMP_FORWARD      // arg: absolute target (kept absolute for simplicity)
	JUMP_ABSOLUTE     // arg: absolute target
	POP_JUMP_IF_FALSE // arg: absolute target
	POP_JUMP_IF_TRUE
	JUMP_IF_FALSE_OR_POP
	JUMP_IF_TRUE_OR_POP
	SETUP_LOOP // arg: loop-exit target; pushes a block
	POP_BLOCK
	BREAK_LOOP
	CONTINUE_LOOP // arg: loop-start target
	GET_ITER
	FOR_ITER // arg: loop-exit target when exhausted

	// Functions and classes.
	CALL_FUNCTION // arg: positional argument count
	MAKE_FUNCTION // arg: default count; code object on stack (as const index in operand? const on stack)
	RETURN_VALUE
	BUILD_CLASS // arg: name index; methods dict and bases tuple on stack

	// Printing (py2-style statement support; MiniPy uses the print
	// builtin, but the opcode remains for the interpreter's rich
	// control-flow accounting tests).
	PRINT_ITEM
	PRINT_NEWLINE

	NOP

	// Quickened opcodes (inline-cache specializations). The compiler
	// never emits these: the interpreter rewrites the base opcode into
	// its quickened form in a per-VM instruction copy once the site's
	// inline cache is allocated, and rewrites it back (de-quickening)
	// after repeated guard failures. Operands are identical to the base
	// form, so PC layout never changes.
	LOAD_GLOBAL_IC // LOAD_GLOBAL with dict-version-guarded cache
	LOAD_ATTR_IC   // LOAD_ATTR with type+layout-guarded cache
	STORE_ATTR_IC  // STORE_ATTR with layout-guarded cache

	// Tier-2 quickened opcodes: superinstructions and speculative int
	// fast paths. Like the _IC forms these exist only in per-VM quickened
	// copies; the compiler never emits them and PC layout never changes.
	//
	// Fused pairs keep the second component's slot intact (the head
	// handler reads it as its second operand and skips it), so a jump
	// into the middle of a fused pair executes the original second
	// instruction standalone — fusion is invisible to control flow.
	LOAD_ATTR_CALL_METHOD // LOAD_ATTR head of an attr-load+call pair; pushes callee+self
	CALL_METHOD           // CALL_FUNCTION rewritten to consume the two-slot method layout
	COMPARE_POP_JUMP      // COMPARE_OP fused with the following POP_JUMP_IF_{FALSE,TRUE}
	LOAD_FAST_LOAD_FAST   // LOAD_FAST fused with the following LOAD_FAST

	// Speculative unboxed-int arithmetic (Brunthaler-style staging): one
	// guard, then the int fast path; any non-int operand or overflow
	// deopts to the generic handler for the identical slow-path result.
	BINARY_ADD_INT
	BINARY_SUB_INT
	BINARY_MUL_INT
	COMPARE_OP_INT

	// Operand-borrowing superinstructions (the staging step on top of
	// plain fusion): the head's operand is produced and fully consumed
	// inside one handler, so the stack round-trip and its incref/decref
	// pair are elided *together* — a balanced elision that leaves net
	// reference counts identical to the generic sequence. Borrowing is
	// safe precisely because no instruction can run between the fused
	// halves: a frame local, a constant, or a guarded global-dict entry
	// keeps its owning reference alive for the whole handler.
	LOAD_FAST_LOAD_ATTR     // LOAD_FAST + LOAD_ATTR(_IC), borrowed receiver
	LOAD_FAST_STORE_ATTR    // LOAD_FAST + STORE_ATTR(_IC), borrowed receiver
	LOAD_FAST_BINARY        // LOAD_FAST + BINARY_{ADD,SUB,MUL}(_INT), borrowed rhs
	LOAD_CONST_BINARY       // LOAD_CONST + BINARY_{ADD,SUB,MUL}(_INT), borrowed rhs
	LOAD_GLOBAL_BINARY      // LOAD_GLOBAL_IC + BINARY_{ADD,SUB,MUL}(_INT), borrowed rhs
	LOAD_FAST_FAST_CMP_JUMP // LOAD_FAST + LOAD_FAST + COMPARE_POP_JUMP quad head
	LOAD_CONST_RETURN       // LOAD_CONST + RETURN_VALUE

	numOpcodes
)

// NumOpcodes is the number of defined opcodes.
const NumOpcodes = int(numOpcodes)

var opNames = [...]string{
	POP_TOP: "POP_TOP", DUP_TOP: "DUP_TOP", DUP_TOP_TWO: "DUP_TOP_TWO",
	ROT_TWO: "ROT_TWO", ROT_THREE: "ROT_THREE",
	LOAD_CONST: "LOAD_CONST", LOAD_FAST: "LOAD_FAST", STORE_FAST: "STORE_FAST",
	LOAD_GLOBAL: "LOAD_GLOBAL", STORE_GLOBAL: "STORE_GLOBAL",
	LOAD_NAME: "LOAD_NAME", STORE_NAME: "STORE_NAME",
	LOAD_ATTR: "LOAD_ATTR", STORE_ATTR: "STORE_ATTR",
	UNARY_NEGATIVE: "UNARY_NEGATIVE", UNARY_NOT: "UNARY_NOT",
	BINARY_ADD: "BINARY_ADD", BINARY_SUBTRACT: "BINARY_SUBTRACT",
	BINARY_MULTIPLY: "BINARY_MULTIPLY", BINARY_DIVIDE: "BINARY_DIVIDE",
	BINARY_FLOOR_DIVIDE: "BINARY_FLOOR_DIVIDE", BINARY_MODULO: "BINARY_MODULO",
	BINARY_POWER: "BINARY_POWER", BINARY_LSHIFT: "BINARY_LSHIFT",
	BINARY_RSHIFT: "BINARY_RSHIFT", BINARY_AND: "BINARY_AND",
	BINARY_OR: "BINARY_OR", BINARY_XOR: "BINARY_XOR", BINARY_SUBSCR: "BINARY_SUBSCR",
	INPLACE_ADD: "INPLACE_ADD", INPLACE_SUBTRACT: "INPLACE_SUBTRACT",
	INPLACE_MULTIPLY: "INPLACE_MULTIPLY", INPLACE_DIVIDE: "INPLACE_DIVIDE",
	INPLACE_FLOOR_DIVIDE: "INPLACE_FLOOR_DIVIDE", INPLACE_MODULO: "INPLACE_MODULO",
	INPLACE_AND: "INPLACE_AND", INPLACE_OR: "INPLACE_OR", INPLACE_XOR: "INPLACE_XOR",
	INPLACE_LSHIFT: "INPLACE_LSHIFT", INPLACE_RSHIFT: "INPLACE_RSHIFT",
	STORE_SUBSCR: "STORE_SUBSCR", DELETE_SUBSCR: "DELETE_SUBSCR", COMPARE_OP: "COMPARE_OP",
	BUILD_LIST: "BUILD_LIST", BUILD_TUPLE: "BUILD_TUPLE", BUILD_MAP: "BUILD_MAP",
	STORE_MAP: "STORE_MAP", BUILD_SLICE: "BUILD_SLICE", UNPACK_SEQUENCE: "UNPACK_SEQUENCE",
	JUMP_FORWARD: "JUMP_FORWARD", JUMP_ABSOLUTE: "JUMP_ABSOLUTE",
	POP_JUMP_IF_FALSE: "POP_JUMP_IF_FALSE", POP_JUMP_IF_TRUE: "POP_JUMP_IF_TRUE",
	JUMP_IF_FALSE_OR_POP: "JUMP_IF_FALSE_OR_POP", JUMP_IF_TRUE_OR_POP: "JUMP_IF_TRUE_OR_POP",
	SETUP_LOOP: "SETUP_LOOP", POP_BLOCK: "POP_BLOCK", BREAK_LOOP: "BREAK_LOOP",
	CONTINUE_LOOP: "CONTINUE_LOOP", GET_ITER: "GET_ITER", FOR_ITER: "FOR_ITER",
	CALL_FUNCTION: "CALL_FUNCTION", MAKE_FUNCTION: "MAKE_FUNCTION",
	RETURN_VALUE: "RETURN_VALUE", BUILD_CLASS: "BUILD_CLASS",
	PRINT_ITEM: "PRINT_ITEM", PRINT_NEWLINE: "PRINT_NEWLINE", NOP: "NOP",
	LOAD_GLOBAL_IC: "LOAD_GLOBAL_IC", LOAD_ATTR_IC: "LOAD_ATTR_IC",
	STORE_ATTR_IC:         "STORE_ATTR_IC",
	LOAD_ATTR_CALL_METHOD: "LOAD_ATTR_CALL_METHOD", CALL_METHOD: "CALL_METHOD",
	COMPARE_POP_JUMP: "COMPARE_POP_JUMP", LOAD_FAST_LOAD_FAST: "LOAD_FAST_LOAD_FAST",
	BINARY_ADD_INT: "BINARY_ADD_INT", BINARY_SUB_INT: "BINARY_SUB_INT",
	BINARY_MUL_INT: "BINARY_MUL_INT", COMPARE_OP_INT: "COMPARE_OP_INT",
	LOAD_FAST_LOAD_ATTR: "LOAD_FAST_LOAD_ATTR", LOAD_FAST_STORE_ATTR: "LOAD_FAST_STORE_ATTR",
	LOAD_FAST_BINARY: "LOAD_FAST_BINARY", LOAD_CONST_BINARY: "LOAD_CONST_BINARY",
	LOAD_GLOBAL_BINARY:      "LOAD_GLOBAL_BINARY",
	LOAD_FAST_FAST_CMP_JUMP: "LOAD_FAST_FAST_CMP_JUMP",
	LOAD_CONST_RETURN:       "LOAD_CONST_RETURN",
}

// Quickened reports whether op is an inline-cache specialization.
func (op Opcode) Quickened() bool {
	switch op {
	case LOAD_GLOBAL_IC, LOAD_ATTR_IC, STORE_ATTR_IC,
		LOAD_ATTR_CALL_METHOD, CALL_METHOD, COMPARE_POP_JUMP, LOAD_FAST_LOAD_FAST,
		BINARY_ADD_INT, BINARY_SUB_INT, BINARY_MUL_INT, COMPARE_OP_INT,
		LOAD_FAST_LOAD_ATTR, LOAD_FAST_STORE_ATTR, LOAD_FAST_BINARY,
		LOAD_CONST_BINARY, LOAD_GLOBAL_BINARY, LOAD_FAST_FAST_CMP_JUMP,
		LOAD_CONST_RETURN:
		return true
	}
	return false
}

// Dequicken maps a quickened opcode back to its generic form; base
// opcodes map to themselves. The operand is shared, so rewriting an
// instruction between the two forms never moves a jump target.
func (op Opcode) Dequicken() Opcode {
	switch op {
	case LOAD_GLOBAL_IC:
		return LOAD_GLOBAL
	case LOAD_ATTR_IC, LOAD_ATTR_CALL_METHOD:
		return LOAD_ATTR
	case STORE_ATTR_IC:
		return STORE_ATTR
	case CALL_METHOD:
		return CALL_FUNCTION
	case COMPARE_POP_JUMP, COMPARE_OP_INT:
		return COMPARE_OP
	case LOAD_FAST_LOAD_FAST, LOAD_FAST_LOAD_ATTR, LOAD_FAST_STORE_ATTR,
		LOAD_FAST_BINARY, LOAD_FAST_FAST_CMP_JUMP:
		return LOAD_FAST
	case LOAD_CONST_BINARY, LOAD_CONST_RETURN:
		return LOAD_CONST
	case LOAD_GLOBAL_BINARY:
		return LOAD_GLOBAL
	case BINARY_ADD_INT:
		return BINARY_ADD
	case BINARY_SUB_INT:
		return BINARY_SUBTRACT
	case BINARY_MUL_INT:
		return BINARY_MULTIPLY
	}
	return op
}

// QuickenedOf returns the inline-cache specialization of op, if one
// exists.
func QuickenedOf(op Opcode) (Opcode, bool) {
	switch op {
	case LOAD_GLOBAL:
		return LOAD_GLOBAL_IC, true
	case LOAD_ATTR:
		return LOAD_ATTR_IC, true
	case STORE_ATTR:
		return STORE_ATTR_IC, true
	}
	return op, false
}

// String returns the opcode mnemonic.
func (op Opcode) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("Opcode(%d)", uint8(op))
}

// HasArg reports whether the opcode uses its operand.
func (op Opcode) HasArg() bool {
	switch op {
	case POP_TOP, DUP_TOP, DUP_TOP_TWO, ROT_TWO, ROT_THREE,
		UNARY_NEGATIVE, UNARY_NOT,
		BINARY_ADD, BINARY_SUBTRACT, BINARY_MULTIPLY, BINARY_DIVIDE,
		BINARY_FLOOR_DIVIDE, BINARY_MODULO, BINARY_POWER,
		BINARY_LSHIFT, BINARY_RSHIFT, BINARY_AND, BINARY_OR, BINARY_XOR,
		BINARY_SUBSCR,
		INPLACE_ADD, INPLACE_SUBTRACT, INPLACE_MULTIPLY, INPLACE_DIVIDE,
		INPLACE_FLOOR_DIVIDE, INPLACE_MODULO, INPLACE_AND, INPLACE_OR,
		INPLACE_XOR, INPLACE_LSHIFT, INPLACE_RSHIFT,
		STORE_SUBSCR, DELETE_SUBSCR, STORE_MAP, POP_BLOCK, BREAK_LOOP, GET_ITER,
		RETURN_VALUE, PRINT_ITEM, PRINT_NEWLINE, NOP,
		BINARY_ADD_INT, BINARY_SUB_INT, BINARY_MUL_INT:
		return false
	}
	return true
}

// CmpOp is the operand of COMPARE_OP.
type CmpOp uint16

// Comparison operators.
const (
	CmpLT CmpOp = iota
	CmpLE
	CmpEQ
	CmpNE
	CmpGT
	CmpGE
	CmpIn
	CmpNotIn
	CmpIs
	CmpIsNot
)

var cmpNames = [...]string{"<", "<=", "==", "!=", ">", ">=", "in", "not in", "is", "is not"}

// String returns the operator's source form.
func (c CmpOp) String() string {
	if int(c) < len(cmpNames) {
		return cmpNames[c]
	}
	return fmt.Sprintf("CmpOp(%d)", uint16(c))
}
