// Package pycode defines the MiniPy bytecode: a CPython-2.7-style
// stack-machine instruction set, code objects, and a disassembler.
//
// The opcode set intentionally mirrors CPython's: the overhead study
// depends on the interpreter having the same structural work to do per
// bytecode (dispatch, stack traffic, const loads, block-stack management
// for loops, global/local name spaces) as the real interpreter.
package pycode

import "fmt"

// Opcode identifies a bytecode instruction.
type Opcode uint8

// The MiniPy opcode set.
const (
	// Stack manipulation.
	POP_TOP Opcode = iota
	DUP_TOP
	DUP_TOP_TWO
	ROT_TWO
	ROT_THREE

	// Constants and names.
	LOAD_CONST  // arg: const index
	LOAD_FAST   // arg: local slot
	STORE_FAST  // arg: local slot
	LOAD_GLOBAL // arg: name index; falls back to builtins
	STORE_GLOBAL
	LOAD_NAME // arg: name index; module-level load (globals then builtins)
	STORE_NAME
	LOAD_ATTR  // arg: name index
	STORE_ATTR // arg: name index

	// Unary operations.
	UNARY_NEGATIVE
	UNARY_NOT

	// Binary operations.
	BINARY_ADD
	BINARY_SUBTRACT
	BINARY_MULTIPLY
	BINARY_DIVIDE // true division on floats, floor on ints (py2)
	BINARY_FLOOR_DIVIDE
	BINARY_MODULO
	BINARY_POWER
	BINARY_LSHIFT
	BINARY_RSHIFT
	BINARY_AND
	BINARY_OR
	BINARY_XOR
	BINARY_SUBSCR

	// In-place operations (compile from augmented assignment).
	INPLACE_ADD
	INPLACE_SUBTRACT
	INPLACE_MULTIPLY
	INPLACE_DIVIDE
	INPLACE_FLOOR_DIVIDE
	INPLACE_MODULO
	INPLACE_AND
	INPLACE_OR
	INPLACE_XOR
	INPLACE_LSHIFT
	INPLACE_RSHIFT

	STORE_SUBSCR
	DELETE_SUBSCR

	// Comparison; arg: CmpOp.
	COMPARE_OP

	// Container construction; arg: element count.
	BUILD_LIST
	BUILD_TUPLE
	BUILD_MAP // arg: hint (pairs follow via STORE_MAP)
	STORE_MAP
	BUILD_SLICE // arg: 2 or 3 (start, stop[, step])
	UNPACK_SEQUENCE

	// Control flow.
	JUMP_FORWARD      // arg: absolute target (kept absolute for simplicity)
	JUMP_ABSOLUTE     // arg: absolute target
	POP_JUMP_IF_FALSE // arg: absolute target
	POP_JUMP_IF_TRUE
	JUMP_IF_FALSE_OR_POP
	JUMP_IF_TRUE_OR_POP
	SETUP_LOOP // arg: loop-exit target; pushes a block
	POP_BLOCK
	BREAK_LOOP
	CONTINUE_LOOP // arg: loop-start target
	GET_ITER
	FOR_ITER // arg: loop-exit target when exhausted

	// Functions and classes.
	CALL_FUNCTION // arg: positional argument count
	MAKE_FUNCTION // arg: default count; code object on stack (as const index in operand? const on stack)
	RETURN_VALUE
	BUILD_CLASS // arg: name index; methods dict and bases tuple on stack

	// Printing (py2-style statement support; MiniPy uses the print
	// builtin, but the opcode remains for the interpreter's rich
	// control-flow accounting tests).
	PRINT_ITEM
	PRINT_NEWLINE

	NOP

	// Quickened opcodes (inline-cache specializations). The compiler
	// never emits these: the interpreter rewrites the base opcode into
	// its quickened form in a per-VM instruction copy once the site's
	// inline cache is allocated, and rewrites it back (de-quickening)
	// after repeated guard failures. Operands are identical to the base
	// form, so PC layout never changes.
	LOAD_GLOBAL_IC // LOAD_GLOBAL with dict-version-guarded cache
	LOAD_ATTR_IC   // LOAD_ATTR with type+layout-guarded cache
	STORE_ATTR_IC  // STORE_ATTR with layout-guarded cache

	numOpcodes
)

// NumOpcodes is the number of defined opcodes.
const NumOpcodes = int(numOpcodes)

var opNames = [...]string{
	POP_TOP: "POP_TOP", DUP_TOP: "DUP_TOP", DUP_TOP_TWO: "DUP_TOP_TWO",
	ROT_TWO: "ROT_TWO", ROT_THREE: "ROT_THREE",
	LOAD_CONST: "LOAD_CONST", LOAD_FAST: "LOAD_FAST", STORE_FAST: "STORE_FAST",
	LOAD_GLOBAL: "LOAD_GLOBAL", STORE_GLOBAL: "STORE_GLOBAL",
	LOAD_NAME: "LOAD_NAME", STORE_NAME: "STORE_NAME",
	LOAD_ATTR: "LOAD_ATTR", STORE_ATTR: "STORE_ATTR",
	UNARY_NEGATIVE: "UNARY_NEGATIVE", UNARY_NOT: "UNARY_NOT",
	BINARY_ADD: "BINARY_ADD", BINARY_SUBTRACT: "BINARY_SUBTRACT",
	BINARY_MULTIPLY: "BINARY_MULTIPLY", BINARY_DIVIDE: "BINARY_DIVIDE",
	BINARY_FLOOR_DIVIDE: "BINARY_FLOOR_DIVIDE", BINARY_MODULO: "BINARY_MODULO",
	BINARY_POWER: "BINARY_POWER", BINARY_LSHIFT: "BINARY_LSHIFT",
	BINARY_RSHIFT: "BINARY_RSHIFT", BINARY_AND: "BINARY_AND",
	BINARY_OR: "BINARY_OR", BINARY_XOR: "BINARY_XOR", BINARY_SUBSCR: "BINARY_SUBSCR",
	INPLACE_ADD: "INPLACE_ADD", INPLACE_SUBTRACT: "INPLACE_SUBTRACT",
	INPLACE_MULTIPLY: "INPLACE_MULTIPLY", INPLACE_DIVIDE: "INPLACE_DIVIDE",
	INPLACE_FLOOR_DIVIDE: "INPLACE_FLOOR_DIVIDE", INPLACE_MODULO: "INPLACE_MODULO",
	INPLACE_AND: "INPLACE_AND", INPLACE_OR: "INPLACE_OR", INPLACE_XOR: "INPLACE_XOR",
	INPLACE_LSHIFT: "INPLACE_LSHIFT", INPLACE_RSHIFT: "INPLACE_RSHIFT",
	STORE_SUBSCR: "STORE_SUBSCR", DELETE_SUBSCR: "DELETE_SUBSCR", COMPARE_OP: "COMPARE_OP",
	BUILD_LIST: "BUILD_LIST", BUILD_TUPLE: "BUILD_TUPLE", BUILD_MAP: "BUILD_MAP",
	STORE_MAP: "STORE_MAP", BUILD_SLICE: "BUILD_SLICE", UNPACK_SEQUENCE: "UNPACK_SEQUENCE",
	JUMP_FORWARD: "JUMP_FORWARD", JUMP_ABSOLUTE: "JUMP_ABSOLUTE",
	POP_JUMP_IF_FALSE: "POP_JUMP_IF_FALSE", POP_JUMP_IF_TRUE: "POP_JUMP_IF_TRUE",
	JUMP_IF_FALSE_OR_POP: "JUMP_IF_FALSE_OR_POP", JUMP_IF_TRUE_OR_POP: "JUMP_IF_TRUE_OR_POP",
	SETUP_LOOP: "SETUP_LOOP", POP_BLOCK: "POP_BLOCK", BREAK_LOOP: "BREAK_LOOP",
	CONTINUE_LOOP: "CONTINUE_LOOP", GET_ITER: "GET_ITER", FOR_ITER: "FOR_ITER",
	CALL_FUNCTION: "CALL_FUNCTION", MAKE_FUNCTION: "MAKE_FUNCTION",
	RETURN_VALUE: "RETURN_VALUE", BUILD_CLASS: "BUILD_CLASS",
	PRINT_ITEM: "PRINT_ITEM", PRINT_NEWLINE: "PRINT_NEWLINE", NOP: "NOP",
	LOAD_GLOBAL_IC: "LOAD_GLOBAL_IC", LOAD_ATTR_IC: "LOAD_ATTR_IC",
	STORE_ATTR_IC: "STORE_ATTR_IC",
}

// Quickened reports whether op is an inline-cache specialization.
func (op Opcode) Quickened() bool {
	switch op {
	case LOAD_GLOBAL_IC, LOAD_ATTR_IC, STORE_ATTR_IC:
		return true
	}
	return false
}

// Dequicken maps a quickened opcode back to its generic form; base
// opcodes map to themselves. The operand is shared, so rewriting an
// instruction between the two forms never moves a jump target.
func (op Opcode) Dequicken() Opcode {
	switch op {
	case LOAD_GLOBAL_IC:
		return LOAD_GLOBAL
	case LOAD_ATTR_IC:
		return LOAD_ATTR
	case STORE_ATTR_IC:
		return STORE_ATTR
	}
	return op
}

// QuickenedOf returns the inline-cache specialization of op, if one
// exists.
func QuickenedOf(op Opcode) (Opcode, bool) {
	switch op {
	case LOAD_GLOBAL:
		return LOAD_GLOBAL_IC, true
	case LOAD_ATTR:
		return LOAD_ATTR_IC, true
	case STORE_ATTR:
		return STORE_ATTR_IC, true
	}
	return op, false
}

// String returns the opcode mnemonic.
func (op Opcode) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("Opcode(%d)", uint8(op))
}

// HasArg reports whether the opcode uses its operand.
func (op Opcode) HasArg() bool {
	switch op {
	case POP_TOP, DUP_TOP, DUP_TOP_TWO, ROT_TWO, ROT_THREE,
		UNARY_NEGATIVE, UNARY_NOT,
		BINARY_ADD, BINARY_SUBTRACT, BINARY_MULTIPLY, BINARY_DIVIDE,
		BINARY_FLOOR_DIVIDE, BINARY_MODULO, BINARY_POWER,
		BINARY_LSHIFT, BINARY_RSHIFT, BINARY_AND, BINARY_OR, BINARY_XOR,
		BINARY_SUBSCR,
		INPLACE_ADD, INPLACE_SUBTRACT, INPLACE_MULTIPLY, INPLACE_DIVIDE,
		INPLACE_FLOOR_DIVIDE, INPLACE_MODULO, INPLACE_AND, INPLACE_OR,
		INPLACE_XOR, INPLACE_LSHIFT, INPLACE_RSHIFT,
		STORE_SUBSCR, DELETE_SUBSCR, STORE_MAP, POP_BLOCK, BREAK_LOOP, GET_ITER,
		RETURN_VALUE, PRINT_ITEM, PRINT_NEWLINE, NOP:
		return false
	}
	return true
}

// CmpOp is the operand of COMPARE_OP.
type CmpOp uint16

// Comparison operators.
const (
	CmpLT CmpOp = iota
	CmpLE
	CmpEQ
	CmpNE
	CmpGT
	CmpGE
	CmpIn
	CmpNotIn
	CmpIs
	CmpIsNot
)

var cmpNames = [...]string{"<", "<=", "==", "!=", ">", ">=", "in", "not in", "is", "is not"}

// String returns the operator's source form.
func (c CmpOp) String() string {
	if int(c) < len(cmpNames) {
		return cmpNames[c]
	}
	return fmt.Sprintf("CmpOp(%d)", uint16(c))
}
