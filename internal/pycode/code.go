package pycode

import (
	"fmt"
	"strings"
)

// ConstKind discriminates compile-time constant values.
type ConstKind uint8

// Constant kinds.
const (
	ConstNone ConstKind = iota
	ConstBool
	ConstInt
	ConstFloat
	ConstStr
	ConstCode
	ConstTuple
)

// Const is a compile-time constant. Code objects carry constants in this
// literal form; the runtime materializes them into heap objects at module
// load, mirroring CPython's unmarshaling of .pyc files.
type Const struct {
	Kind  ConstKind
	Int   int64 // also holds bool as 0/1
	Float float64
	Str   string
	Code  *Code
	Tuple []Const
}

// NoneConst, true/false, and scalar constructors.
func NoneConst() Const { return Const{Kind: ConstNone} }
func BoolConst(b bool) Const {
	c := Const{Kind: ConstBool}
	if b {
		c.Int = 1
	}
	return c
}
func IntConst(v int64) Const     { return Const{Kind: ConstInt, Int: v} }
func FloatConst(v float64) Const { return Const{Kind: ConstFloat, Float: v} }
func StrConst(s string) Const    { return Const{Kind: ConstStr, Str: s} }
func CodeConst(c *Code) Const    { return Const{Kind: ConstCode, Code: c} }

// String renders the constant in source-like form.
func (c Const) String() string {
	switch c.Kind {
	case ConstNone:
		return "None"
	case ConstBool:
		if c.Int != 0 {
			return "True"
		}
		return "False"
	case ConstInt:
		return fmt.Sprintf("%d", c.Int)
	case ConstFloat:
		return fmt.Sprintf("%g", c.Float)
	case ConstStr:
		return fmt.Sprintf("%q", c.Str)
	case ConstCode:
		return fmt.Sprintf("<code %s>", c.Code.Name)
	case ConstTuple:
		parts := make([]string, len(c.Tuple))
		for i, e := range c.Tuple {
			parts[i] = e.String()
		}
		return "(" + strings.Join(parts, ", ") + ")"
	}
	return "?"
}

// Equal reports deep equality of two constants (used for const pooling).
func (c Const) Equal(o Const) bool {
	if c.Kind != o.Kind {
		return false
	}
	switch c.Kind {
	case ConstNone:
		return true
	case ConstBool, ConstInt:
		return c.Int == o.Int
	case ConstFloat:
		return c.Float == o.Float
	case ConstStr:
		return c.Str == o.Str
	case ConstCode:
		return c.Code == o.Code
	case ConstTuple:
		if len(c.Tuple) != len(o.Tuple) {
			return false
		}
		for i := range c.Tuple {
			if !c.Tuple[i].Equal(o.Tuple[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// Instr is one bytecode instruction.
type Instr struct {
	Op  Opcode
	Arg int32
}

// Code is a compiled code object, the unit of execution.
type Code struct {
	// Name is the function (or "<module>") name.
	Name string
	// Filename is the source name, for diagnostics.
	Filename string
	// NumParams is the number of declared parameters; parameters occupy
	// the first NumParams slots of Varnames.
	NumParams int
	// Varnames names the fast-local slots.
	Varnames []string
	// Names lists the global/attribute names referenced by the code.
	Names []string
	// Consts is the constant pool.
	Consts []Const
	// Code is the instruction sequence.
	Code []Instr
	// StackSize is the value-stack capacity required by the code.
	StackSize int
	// Lines maps each instruction to a source line, for diagnostics.
	Lines []int32
	// IsModule marks module-level code (uses LOAD_NAME/STORE_NAME).
	IsModule bool

	// SiteOf maps each instruction index to its inline-cache site index,
	// or -1 for instructions that carry no cache. NumICSites is the
	// number of allocated sites. Both are filled by AllocateICSites at
	// compile time and immutable afterwards: the mutable cache state
	// itself lives per-VM (code objects are shared across concurrently
	// executing VMs), so this table is safe to read without locking.
	SiteOf     []int32
	NumICSites int
}

// AllocateICSites assigns one inline-cache site to every quickenable
// instruction (LOAD_GLOBAL, LOAD_ATTR, STORE_ATTR, and the speculative
// int arithmetic/compare sites, which use their slot only for the deopt
// miss budget), recursing into nested code constants. LOAD_NAME is
// deliberately excluded: module and class bodies execute once, where a
// cache never amortizes its guard.
func (c *Code) AllocateICSites() {
	c.SiteOf = make([]int32, len(c.Code))
	n := int32(0)
	for i, in := range c.Code {
		switch in.Op {
		case LOAD_GLOBAL, LOAD_ATTR, STORE_ATTR,
			BINARY_ADD, BINARY_SUBTRACT, BINARY_MULTIPLY, COMPARE_OP:
			c.SiteOf[i] = n
			n++
		default:
			c.SiteOf[i] = -1
		}
	}
	c.NumICSites = int(n)
	for _, k := range c.Consts {
		if k.Kind == ConstCode {
			k.Code.AllocateICSites()
		}
	}
}

// Disassemble renders the code object and, recursively, any nested code
// constants in a dis-like format.
func (c *Code) Disassemble() string {
	var sb strings.Builder
	c.disasmInto(&sb)
	return sb.String()
}

func (c *Code) disasmInto(sb *strings.Builder) {
	fmt.Fprintf(sb, "code %s (params=%d, locals=%d, stack=%d)\n",
		c.Name, c.NumParams, len(c.Varnames), c.StackSize)
	for i, in := range c.Code {
		line := int32(0)
		if i < len(c.Lines) {
			line = c.Lines[i]
		}
		fmt.Fprintf(sb, "%5d  %4d  %-22s", i, line, in.Op)
		if in.Op.HasArg() {
			fmt.Fprintf(sb, " %4d", in.Arg)
			switch in.Op {
			case LOAD_CONST:
				if int(in.Arg) < len(c.Consts) {
					fmt.Fprintf(sb, "  (%s)", c.Consts[in.Arg])
				}
			case LOAD_FAST, STORE_FAST:
				if int(in.Arg) < len(c.Varnames) {
					fmt.Fprintf(sb, "  (%s)", c.Varnames[in.Arg])
				}
			case LOAD_GLOBAL, STORE_GLOBAL, LOAD_NAME, STORE_NAME,
				LOAD_ATTR, STORE_ATTR, BUILD_CLASS,
				LOAD_GLOBAL_IC, LOAD_ATTR_IC, STORE_ATTR_IC, LOAD_ATTR_CALL_METHOD:
				if int(in.Arg) < len(c.Names) {
					fmt.Fprintf(sb, "  (%s)", c.Names[in.Arg])
				}
			case COMPARE_OP, COMPARE_OP_INT, COMPARE_POP_JUMP:
				fmt.Fprintf(sb, "  (%s)", CmpOp(in.Arg))
			}
		}
		sb.WriteByte('\n')
	}
	for _, k := range c.Consts {
		if k.Kind == ConstCode {
			sb.WriteByte('\n')
			k.Code.disasmInto(sb)
		}
	}
}

// Validate checks structural invariants of the code object: operand
// indices in range, jump targets within bounds, and a positive stack size.
func (c *Code) Validate() error {
	n := int32(len(c.Code))
	for i, in := range c.Code {
		switch in.Op {
		case LOAD_CONST:
			if in.Arg < 0 || int(in.Arg) >= len(c.Consts) {
				return fmt.Errorf("%s@%d: const index %d out of range", c.Name, i, in.Arg)
			}
		case LOAD_FAST, STORE_FAST:
			if in.Arg < 0 || int(in.Arg) >= len(c.Varnames) {
				return fmt.Errorf("%s@%d: local slot %d out of range", c.Name, i, in.Arg)
			}
		case LOAD_GLOBAL, STORE_GLOBAL, LOAD_NAME, STORE_NAME, LOAD_ATTR, STORE_ATTR, BUILD_CLASS,
			LOAD_GLOBAL_IC, LOAD_ATTR_IC, STORE_ATTR_IC, LOAD_ATTR_CALL_METHOD:
			if in.Arg < 0 || int(in.Arg) >= len(c.Names) {
				return fmt.Errorf("%s@%d: name index %d out of range", c.Name, i, in.Arg)
			}
		case LOAD_FAST_LOAD_FAST:
			if in.Arg < 0 || int(in.Arg) >= len(c.Varnames) {
				return fmt.Errorf("%s@%d: local slot %d out of range", c.Name, i, in.Arg)
			}
		case CALL_METHOD:
			if in.Arg < 0 {
				return fmt.Errorf("%s@%d: negative operand %d", c.Name, i, in.Arg)
			}
		case JUMP_FORWARD, JUMP_ABSOLUTE, POP_JUMP_IF_FALSE, POP_JUMP_IF_TRUE,
			JUMP_IF_FALSE_OR_POP, JUMP_IF_TRUE_OR_POP, SETUP_LOOP, CONTINUE_LOOP, FOR_ITER:
			if in.Arg < 0 || in.Arg > n {
				return fmt.Errorf("%s@%d: jump target %d out of range", c.Name, i, in.Arg)
			}
		case CALL_FUNCTION, BUILD_LIST, BUILD_TUPLE, BUILD_MAP, UNPACK_SEQUENCE, MAKE_FUNCTION:
			if in.Arg < 0 {
				return fmt.Errorf("%s@%d: negative operand %d", c.Name, i, in.Arg)
			}
		}
	}
	if c.StackSize <= 0 {
		return fmt.Errorf("%s: non-positive stack size %d", c.Name, c.StackSize)
	}
	for _, k := range c.Consts {
		if k.Kind == ConstCode {
			if err := k.Code.Validate(); err != nil {
				return err
			}
		}
	}
	return nil
}
