// Package serve is the pyserve HTTP serving layer: the versioned /v1
// JSON surface over an internal/supervise worker pool. cmd/pyserve is a
// thin flag-parsing wrapper; keeping the server here lets the router
// (internal/route) and its chaos soaks spin real in-process backends.
//
// Endpoints:
//
//	POST /v1/run     execute one MiniPy program on a warm worker
//	GET  /v1/metrics Prometheus text exposition
//	GET  /v1/healthz pure liveness: 200 while any worker is alive,
//	                 including while draining — "shutting down, stop
//	                 routing here" is readiness, not death
//	GET  /v1/readyz  readiness: 503 while draining or while admission
//	                 is shedding at the heap watermark; routers drain
//	                 nodes on this signal without ejecting them
//	POST /drainz     graceful drain: stop admitting, wait for in-flight
//
// The unversioned endpoints (/run, /metrics, /healthz) are deprecated
// aliases kept for existing clients: same behavior, but /run answers
// with a Deprecation header and its validation errors keep the legacy
// flat {"error": "message"} shape.
//
// Every executed request gets a request id — the client-supplied
// X-Request-Id when present (so a routing tier's ids survive end to
// end), a daemon-unique generated one otherwise — echoed in the
// response body, the X-Request-Id header, and one structured JSON log
// line.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/progstore"
	"repro/internal/runtime"
	"repro/internal/supervise"
	"repro/internal/telemetry"
)

// Backend is the execution engine behind the HTTP surface: the
// exclusive worker pool (supervise.Pool) or the step-sliced scheduler
// (supervise.Sched). The server only needs the submit/observe/drain
// triad — everything scheduler-specific travels inside Job and
// JobResult, so one handler serves both.
type Backend interface {
	Submit(job *supervise.Job) *supervise.JobResult
	Stats() supervise.Stats
	Drain(timeout time.Duration) bool
}

// Server ties the backend to the HTTP mux; tests and the router soak
// drive it in-process via Mux.
type Server struct {
	pool Backend
	// reg is the telemetry registry backing GET /metrics.
	reg *telemetry.Registry
	// drainTimeout bounds how long /drainz waits for in-flight jobs.
	drainTimeout time.Duration
	// nextID numbers executed requests that did not bring their own id.
	nextID atomic.Uint64
	// logw receives one JSON line per executed job (nil disables).
	// logMu serializes writers so interleaved handlers cannot shear a
	// line.
	logw  io.Writer
	logMu sync.Mutex

	// dedup is the exactly-once result cache for requests that declare
	// an idempotency key (see dedup.go).
	dedup *dedupCache
	// progs is the content-addressed program store behind /v1/programs
	// and run-by-reference; inline /v1/run sources register read-through.
	progs *progstore.Store
	// mIntegrityRejects counts requests rejected for an X-Content-Digest
	// mismatch before parsing.
	mIntegrityRejects *telemetry.Counter

	// limitsMemo caches Limits.Normalize results keyed by the raw
	// (comparable) Limits value. Serving traffic reuses a handful of
	// limit shapes across millions of submits; re-validating the same
	// value every time was measurable overhead for zero information.
	limitsMu   sync.Mutex
	limitsMemo map[api.Limits]api.Limits
}

// Options tunes server construction beyond the required pool/registry.
type Options struct {
	// DrainTimeout bounds how long /drainz waits for in-flight jobs.
	DrainTimeout time.Duration
	// LogW receives one JSON line per executed job (nil disables).
	LogW io.Writer
	// DedupTTL is how long an idempotency key's recorded result is
	// replayable (default 5m).
	DedupTTL time.Duration
	// DedupCap bounds the dedup cache population (default 4096).
	DedupCap int
	// ProgTTL is how long a registered program stays resolvable
	// (default progstore.DefaultTTL).
	ProgTTL time.Duration
	// ProgCap bounds the program-store population (default
	// progstore.DefaultCap).
	ProgCap int
}

// New builds a Server over a backend (the exclusive pool or the
// step-sliced scheduler). reg backs /metrics, drainTimeout bounds
// /drainz, logw (nil to disable) receives per-job structured log lines.
func New(pool Backend, reg *telemetry.Registry, drainTimeout time.Duration, logw io.Writer) *Server {
	return NewWithOptions(pool, reg, Options{DrainTimeout: drainTimeout, LogW: logw})
}

// NewWithOptions builds a Server over a backend with explicit Options.
func NewWithOptions(pool Backend, reg *telemetry.Registry, opts Options) *Server {
	s := &Server{
		pool:         pool,
		reg:          reg,
		drainTimeout: opts.DrainTimeout,
		logw:         opts.LogW,
		dedup:        newDedupCache(opts.DedupTTL, opts.DedupCap),
		progs:        progstore.New(progstore.Options{TTL: opts.ProgTTL, Cap: opts.ProgCap}),
		limitsMemo:   make(map[api.Limits]api.Limits),
	}
	s.progs.Instrument(reg)
	if reg != nil {
		s.dedup.cHits = reg.Counter("pyserve_dedup_hits_total",
			"Idempotent replays absorbed by the result-dedup cache.")
		s.dedup.cRecorded = reg.Counter("pyserve_dedup_recorded_total",
			"First executions recorded in the result-dedup cache.")
		s.dedup.cEvictions = reg.Counter("pyserve_dedup_evictions_total",
			"Dedup cache entries evicted for capacity before their TTL.")
		s.mIntegrityRejects = reg.Counter("pyserve_integrity_rejects_total",
			"Requests rejected for an X-Content-Digest mismatch.")
	}
	return s
}

// DedupStats reports the dedup cache's lifetime counters; the router
// chaos soak's oracle reads MaxExecutions to prove exactly-once.
func (s *Server) DedupStats() DedupStats { return s.dedup.stats() }

// ProgStats reports the program store's lifetime counters.
func (s *Server) ProgStats() progstore.Stats { return s.progs.StatsSnapshot() }

// Mux returns the server's route table.
func (s *Server) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", s.handleRunV1)
	mux.HandleFunc("/v1/programs", s.handleProgramsV1)
	mux.HandleFunc("/v1/programs/", s.handleProgramV1)
	mux.HandleFunc("/v1/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/readyz", s.handleReadyz)
	mux.HandleFunc("/run", s.handleRunLegacy)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/drainz", s.handleDrainz)
	return mux
}

// jobLog is the structured per-job log line.
type jobLog struct {
	Time      string  `json:"ts"`
	RequestID string  `json:"requestId"`
	Name      string  `json:"name"`
	Mode      string  `json:"mode"`
	Class     string  `json:"class"`
	Worker    int     `json:"worker"`
	QueuedMs  float64 `json:"queuedMs"`
	RunMs     float64 `json:"runMs"`
	Bytecodes uint64  `json:"bytecodes,omitempty"`
	Error     string  `json:"error,omitempty"`
	// Deduped marks a replay absorbed by the result-dedup cache; the
	// line records the recorded result, not a fresh execution.
	Deduped bool `json:"deduped,omitempty"`
}

func (s *Server) logJob(id string, job *supervise.Job, res *supervise.JobResult) {
	if s.logw == nil {
		return
	}
	line, err := json.Marshal(jobLog{
		Time:      time.Now().UTC().Format(time.RFC3339Nano),
		RequestID: id,
		Name:      job.Name,
		Mode:      res.Mode.String(),
		Class:     res.Class.String(),
		Worker:    res.Worker,
		QueuedMs:  float64(res.Queued) / float64(time.Millisecond),
		RunMs:     float64(res.RunTime) / float64(time.Millisecond),
		Bytecodes: res.Bytecodes,
		Error:     res.Err,
	})
	if err != nil {
		return
	}
	s.logMu.Lock()
	_, _ = s.logw.Write(append(line, '\n'))
	s.logMu.Unlock()
}

// logDedup writes the structured log line for a dedup hit: no job ran,
// so the fields come from the recorded result.
func (s *Server) logDedup(id string, req *api.RunRequestV1, rec *api.RunResultV1) {
	if s.logw == nil {
		return
	}
	name := req.Name
	if name == "" {
		name = "request.py"
	}
	line, err := json.Marshal(jobLog{
		Time:      time.Now().UTC().Format(time.RFC3339Nano),
		RequestID: id,
		Name:      name,
		Mode:      rec.Mode,
		Class:     rec.ExitClass,
		Worker:    rec.Worker,
		Deduped:   true,
	})
	if err != nil {
		return
	}
	s.logMu.Lock()
	_, _ = s.logw.Write(append(line, '\n'))
	s.logMu.Unlock()
}

// maxBody bounds a /run request body (programs are small; a runaway
// client must not balloon the daemon).
const maxBody = 1 << 20

// maxRequestID bounds a client-supplied X-Request-Id: beyond it the id
// is discarded and a local one generated, so a hostile client cannot
// stuff megabytes into every log line.
const maxRequestID = 128

// requestID resolves the request's id: the client-supplied X-Request-Id
// when present and sane, a daemon-unique generated one otherwise. A
// routing tier forwards its id (with per-attempt suffixes) through this
// header, so one id ties the router's log line to the backend's.
func (s *Server) requestID(r *http.Request) string {
	if id := r.Header.Get(api.HeaderRequestID); id != "" && len(id) <= maxRequestID {
		return id
	}
	return "r" + strconv.FormatUint(s.nextID.Add(1), 10)
}

func (s *Server) handleRunV1(w http.ResponseWriter, r *http.Request) {
	s.serveRun(w, r, true)
}

// LegacySunset is the retirement date the unversioned /run alias
// announces (RFC 8594 Sunset header). Only /v1 carries compatibility
// guarantees; the alias is frozen at its pre-v1 behavior until this
// date and may be removed after it.
const LegacySunset = "Fri, 01 Jan 2027 00:00:00 GMT"

// handleRunLegacy is the deprecated unversioned alias of /v1/run: same
// execution path, but it announces its deprecation and retirement date
// in headers and keeps the flat {"error": "message"} error shape for
// existing clients.
func (s *Server) handleRunLegacy(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Sunset", LegacySunset)
	w.Header().Set("Link", `</v1/run>; rel="successor-version"`)
	s.serveRun(w, r, false)
}

// failRun writes a request-rejection response: the /v1 machine-readable
// envelope (digest-stamped, like every /v1/run response), or the legacy
// flat shape for the deprecated alias.
func (s *Server) failRun(w http.ResponseWriter, v1 bool, status int, code, msg string) {
	if v1 {
		writeJSONDigested(w, status, api.ErrorEnvelope{Err: api.Error{Code: code, Message: msg}})
		return
	}
	httpError(w, status, msg)
}

func (s *Server) serveRun(w http.ResponseWriter, r *http.Request, v1 bool) {
	fail := func(status int, code, msg string) { s.failRun(w, v1, status, code, msg) }
	if r.Method != http.MethodPost {
		fail(http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		fail(http.StatusBadRequest, api.CodeBadJSON, "read body: "+err.Error())
		return
	}
	if len(body) > maxBody {
		fail(http.StatusRequestEntityTooLarge, api.CodeBodyTooLarge,
			fmt.Sprintf("program exceeds %d bytes", maxBody))
		return
	}
	// Integrity gate, before the parser ever sees the bytes: a routing
	// tier that stamped X-Content-Digest gets a hard reject if the body
	// was damaged in transit. The job provably never executed, so the
	// router retries this freely.
	if want := r.Header.Get(api.HeaderContentDigest); v1 && want != "" {
		if got := api.Digest(body); got != want {
			s.mIntegrityRejects.Inc()
			fail(http.StatusUnprocessableEntity, api.CodeIntegrity,
				"request body does not match "+api.HeaderContentDigest)
			return
		}
	}
	var req api.RunRequestV1
	if err := json.Unmarshal(body, &req); err != nil {
		fail(http.StatusBadRequest, api.CodeBadJSON, "bad JSON: "+err.Error())
		return
	}
	if v1 {
		// Exactly one program identity per request: inline source or a
		// registered reference, never both, never neither.
		if (req.Src == "") == (req.ProgramRef == "") {
			fail(http.StatusBadRequest, api.CodeMissingProgram,
				"exactly one of src and programRef is required")
			return
		}
	} else if req.Src == "" {
		// The legacy alias never grew run-by-reference (documented
		// v1-only); it keeps its original rejection.
		fail(http.StatusBadRequest, api.CodeMissingSrc, "missing src")
		return
	}
	if len(req.IdempotencyKey) > api.MaxIdempotencyKey {
		fail(http.StatusBadRequest, api.CodeBadIdempotencyKey,
			fmt.Sprintf("idempotencyKey exceeds %d bytes", api.MaxIdempotencyKey))
		return
	}
	if req.Lane < 0 {
		fail(http.StatusBadRequest, api.CodeBadJSON, "lane must be non-negative")
		return
	}
	if len(req.Tenant) > api.MaxTenant {
		fail(http.StatusBadRequest, api.CodeBadJSON,
			fmt.Sprintf("tenant exceeds %d bytes", api.MaxTenant))
		return
	}
	mode := runtime.CPython
	if req.Mode != "" {
		mode, err = runtime.ParseMode(req.Mode)
		if err != nil {
			fail(http.StatusBadRequest, api.CodeBadMode, err.Error())
			return
		}
	}
	job := &supervise.Job{
		Name:   req.Name,
		Src:    req.Src,
		Mode:   mode,
		Lane:   req.Lane,
		Tenant: req.Tenant,
	}
	if job.Name == "" {
		job.Name = "request.py"
	}
	job.Breakdown = req.Breakdown
	if l := req.Limits; l != nil {
		// All budget validation — negative rejection, the 24h deadline
		// cap that used to be an overflow hazard — lives in Normalize;
		// nothing invalid ever reaches the pool. Results are memoized:
		// serving traffic reuses a handful of limit shapes.
		norm, err := s.normalizeLimits(*l)
		if err != nil {
			code := api.CodeInvalidLimits
			if ae, ok := err.(*api.Error); ok {
				code = ae.Code
			}
			fail(http.StatusBadRequest, code, err.Error())
			return
		}
		job.Limits = norm
	}

	// Program-store resolution. Run-by-reference must find a live entry;
	// inline v1 sources register read-through (compile once per process,
	// fall back to worker-side compilation on a compile error so the
	// error response keeps its pre-store shape). The legacy alias never
	// touches the store.
	var prog *progstore.Program
	programCache := ""
	if v1 && req.ProgramRef != "" {
		if !progstore.ValidRef(req.ProgramRef) {
			fail(http.StatusBadRequest, api.CodeBadProgram,
				"programRef must be a hex SHA-256")
			return
		}
		p, ok := s.progs.Lookup(req.ProgramRef)
		if !ok {
			fail(http.StatusNotFound, api.CodeUnknownProgram,
				"unknown programRef (never registered, expired, or invalidated)")
			return
		}
		prog = p
		programCache = api.ProgramCacheHit
	} else if v1 {
		if p, hit, err := s.progs.Register(job.Name, req.Src); err == nil {
			prog = p
			programCache = api.ProgramCacheMiss
			if hit {
				programCache = api.ProgramCacheHit
			}
		}
	}
	if prog != nil {
		job.Code = prog.Code
		job.ICSeed = prog.Seed
		if prog.Seed != nil {
			programCache = api.ProgramCacheSeeded
		} else {
			// No seed donated yet: have this run export one. Collection
			// only observes the quickened state, so the run's semantics
			// and statistics are untouched.
			job.CollectICSeed = true
		}
	}

	id := s.requestID(r)

	// Exactly-once consult. Requests without a key skip all of this —
	// one string compare and the dedup layer vanishes. Keyed requests
	// single-flight: exactly one concurrent holder of a key executes;
	// replays (concurrent or later, within the TTL) absorb its recorded
	// result without touching the pool.
	var entry *dedupEntry
	if v1 && req.IdempotencyKey != "" {
	consult:
		for tries := 0; ; tries++ {
			verdict, e, rec := s.dedup.consult(req.IdempotencyKey, time.Now())
			switch verdict {
			case dedupHit:
				rec.RequestID = id
				rec.Deduped = true
				s.logDedup(id, &req, rec)
				w.Header().Set(api.HeaderRequestID, id)
				writeJSONDigested(w, http.StatusOK, rec)
				return
			case dedupWait:
				if !s.dedup.wait(r.Context(), e) {
					return // client gone; nothing to answer
				}
				if tries >= dedupWaitRetries {
					// The executor kept resolving uncacheably (shed).
					// Execute unrecorded rather than loop forever.
					break consult
				}
			case dedupExecute:
				entry = e
				break consult
			case dedupBypass:
				break consult
			}
		}
	}

	res := s.pool.Submit(job)
	if entry != nil && !res.Class.Executed() {
		// The job never started (shed): releasing the entry without a
		// result lets the retry that follows the Retry-After hint be the
		// key's first execution.
		s.dedup.resolve(entry, nil, false, time.Now())
		entry = nil
	}
	if prog != nil && res.Class == supervise.ClassOK && res.ICSeed != nil {
		// Donate the clean run's quickened shapes; the next run of this
		// ref — on this worker or a fresh one — starts tier-1-warm.
		s.progs.OfferSeed(prog.Ref, res.ICSeed)
	}
	s.logJob(id, job, res)
	resp := api.RunResultV1{
		APIVersion: api.Version,
		RequestID:  id,
		ExitClass:  res.Class.String(),
		ExitCode:   res.Class.ExitCode(),
		Stdout:     res.Output,
		Error:      res.Err,
		Mode:       res.Mode.String(),
		Worker:     res.Worker,
		QueuedMs:   float64(res.Queued) / float64(time.Millisecond),
		RunMs:      float64(res.RunTime) / float64(time.Millisecond),
	}
	if prog != nil {
		resp.ProgramCache = programCache
		resp.ProgramRef = prog.Ref
	}
	resp.Preemptions = res.Preemptions
	if n := len(res.Lifecycle); n > 0 {
		// Offsets are relative to the first event (QUEUED), so the trace
		// is self-contained without shipping absolute timestamps.
		t0 := res.Lifecycle[0].At
		resp.Lifecycle = make([]api.LifeEventV1, n)
		for i, ev := range res.Lifecycle {
			resp.Lifecycle[i] = api.LifeEventV1{
				State:    ev.State.String(),
				OffsetMs: float64(ev.At.Sub(t0)) / float64(time.Millisecond),
			}
		}
	}
	status := http.StatusOK
	if res.Class == supervise.ClassShed {
		status = http.StatusServiceUnavailable
		resp.RetryAfter = float64(res.RetryAfter) / float64(time.Millisecond)
		w.Header().Set("Retry-After", strconv.Itoa(RetryAfterSeconds(res.RetryAfter)))
	}
	if res.Class == supervise.ClassOK {
		resp.Stats = &api.RunStatsV1{
			Bytecodes:   res.Bytecodes,
			Allocs:      res.Allocs,
			MinorGCs:    res.MinorGCs,
			MajorGCs:    res.MajorGCs,
			ErrorDeopts: res.ErrorDeopts,
			ICHits:      res.IC.Hits(),
			ICMisses:    res.IC.Misses(),
			ICHitRate:   res.IC.HitRate(),
		}
		if res.Breakdown != nil {
			resp.Breakdown = res.Breakdown.Report()
		}
	}
	if v1 && req.IdempotencyKey != "" && res.Class.Executed() {
		// The execution-count stamp: how many times the body ran under
		// this key here. Recording happens below; a value above 1 would
		// mean the dedup layer failed, and the chaos soak asserts on it.
		resp.Executions = 1
	}
	if entry != nil {
		s.dedup.resolve(entry, &resp, true, time.Now())
	}
	w.Header().Set(api.HeaderRequestID, id)
	if v1 {
		writeJSONDigested(w, status, resp)
	} else {
		writeJSON(w, status, resp)
	}
}

// maxLimitsMemo bounds the normalize-memo population: distinct limit
// shapes beyond it flush the memo (a hostile client cycling limit
// values must not grow the map without bound; a flush only costs the
// next few requests a re-validation).
const maxLimitsMemo = 1024

// normalizeLimits is Limits.Normalize behind a memo keyed on the raw
// value. Only successful normalizations are cached — errors are the
// rare path and keep their exact message.
func (s *Server) normalizeLimits(l api.Limits) (api.Limits, error) {
	s.limitsMu.Lock()
	if norm, ok := s.limitsMemo[l]; ok {
		s.limitsMu.Unlock()
		return norm, nil
	}
	s.limitsMu.Unlock()
	norm, err := l.Normalize()
	if err != nil {
		return norm, err
	}
	s.limitsMu.Lock()
	if len(s.limitsMemo) >= maxLimitsMemo {
		s.limitsMemo = make(map[api.Limits]api.Limits)
	}
	s.limitsMemo[l] = norm
	s.limitsMu.Unlock()
	return norm, nil
}

// handleProgramsV1 is POST /v1/programs: register a program source in
// the content-addressed store. Registration is idempotent — re-posting
// the same source returns the same ref — and single-flight under
// concurrency. Like the backend-reconfig surface (PUT
// /v1/admin/backends), this is an unauthenticated admin-plane endpoint;
// deployments front it with their own auth.
func (s *Server) handleProgramsV1(w http.ResponseWriter, r *http.Request) {
	failV1 := func(status int, code, msg string) {
		writeJSONDigested(w, status, api.ErrorEnvelope{Err: api.Error{Code: code, Message: msg}})
	}
	if r.Method != http.MethodPost {
		failV1(http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		failV1(http.StatusBadRequest, api.CodeBadJSON, "read body: "+err.Error())
		return
	}
	if len(body) > maxBody {
		failV1(http.StatusRequestEntityTooLarge, api.CodeBodyTooLarge,
			fmt.Sprintf("request exceeds %d bytes", maxBody))
		return
	}
	var req api.RegisterRequestV1
	if err := json.Unmarshal(body, &req); err != nil {
		failV1(http.StatusBadRequest, api.CodeBadJSON, "bad JSON: "+err.Error())
		return
	}
	if req.Src == "" {
		failV1(http.StatusBadRequest, api.CodeMissingSrc, "missing src")
		return
	}
	if len(req.Src) > api.MaxProgramSrc {
		failV1(http.StatusRequestEntityTooLarge, api.CodeBodyTooLarge,
			fmt.Sprintf("src exceeds %d bytes", api.MaxProgramSrc))
		return
	}
	name := req.Name
	if name == "" {
		name = "program.py"
	}
	p, _, err := s.progs.Register(name, req.Src)
	if err != nil {
		// A syntactically bad program never occupies the store; the
		// compile error travels in the envelope.
		failV1(http.StatusBadRequest, api.CodeBadProgram, err.Error())
		return
	}
	writeJSONDigested(w, http.StatusOK, api.RegisterResultV1{
		APIVersion:      api.Version,
		ProgramRef:      p.Ref,
		Compiled:        true,
		ICSeedAvailable: p.Seed != nil,
	})
}

// handleProgramV1 is GET/DELETE /v1/programs/{ref}: store metadata for
// one program, and explicit invalidation.
func (s *Server) handleProgramV1(w http.ResponseWriter, r *http.Request) {
	failV1 := func(status int, code, msg string) {
		writeJSONDigested(w, status, api.ErrorEnvelope{Err: api.Error{Code: code, Message: msg}})
	}
	ref := strings.TrimPrefix(r.URL.Path, "/v1/programs/")
	if !progstore.ValidRef(ref) {
		failV1(http.StatusBadRequest, api.CodeBadProgram, "programRef must be a hex SHA-256")
		return
	}
	switch r.Method {
	case http.MethodGet:
		info, ok := s.progs.InfoFor(ref)
		if !ok {
			failV1(http.StatusNotFound, api.CodeUnknownProgram, "unknown programRef")
			return
		}
		writeJSONDigested(w, http.StatusOK, api.ProgramInfoV1{
			APIVersion:  api.Version,
			ProgramRef:  info.Ref,
			SrcBytes:    info.SrcBytes,
			Compiled:    info.Compiled,
			Hits:        info.Hits,
			AgeMs:       info.AgeMs,
			ICSeed:      info.ICSeed,
			ICSeedAgeMs: info.ICSeedAgeMs,
			ICSeedSites: info.ICSeedSites,
		})
	case http.MethodDelete:
		if !s.progs.Delete(ref) {
			failV1(http.StatusNotFound, api.CodeUnknownProgram, "unknown programRef")
			return
		}
		writeJSONDigested(w, http.StatusOK, map[string]bool{"deleted": true})
	default:
		failV1(http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "GET or DELETE only")
	}
}

// RetryAfterSeconds renders a retry hint as the integer seconds of the
// Retry-After header, rounding UP: truncation would tell clients to come
// back before the hint elapses (1.9s became "1"), re-shedding the
// well-behaved ones.
func RetryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// healthzResponse reports pool occupancy and lifetime counters.
type healthzResponse struct {
	Ok    bool            `json:"ok"`
	Stats supervise.Stats `json:"stats"`
}

// handleHealthz is pure liveness: 200 while any worker is alive. A
// draining node is still alive — conflating "shutting down, stop routing
// here" with "dead" made routers eject nodes that were gracefully
// finishing their in-flight work; that signal moved to /v1/readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.pool.Stats()
	ok := st.Workers > 0
	status := http.StatusOK
	if !ok {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, healthzResponse{Ok: ok, Stats: st})
}

// readyzResponse reports routability and the reason when not ready.
type readyzResponse struct {
	Ready  bool            `json:"ready"`
	Reason string          `json:"reason,omitempty"`
	Stats  supervise.Stats `json:"stats"`
}

// handleReadyz is readiness: whether this node should receive new work.
// Not-ready (503, with a Retry-After hint for backoff) while draining or
// while admission is shedding at the heap watermark; dead (no workers)
// is also not ready. Routers use this to drain nodes without ejecting
// them.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := s.pool.Stats()
	reason := ""
	switch {
	case st.Workers == 0:
		reason = "no live workers"
	case st.Draining:
		reason = "draining"
	case st.HeapWatermark > 0 && st.HeapReserved >= st.HeapWatermark:
		reason = "heap watermark reached"
	}
	if reason != "" {
		w.Header().Set("Retry-After", strconv.Itoa(RetryAfterSeconds(s.drainTimeout/4)))
		writeJSON(w, http.StatusServiceUnavailable, readyzResponse{Ready: false, Reason: reason, Stats: st})
		return
	}
	writeJSON(w, http.StatusOK, readyzResponse{Ready: true, Stats: st})
}

// drainzResponse reports the drain outcome.
type drainzResponse struct {
	Drained bool            `json:"drained"`
	Stats   supervise.Stats `json:"stats"`
}

func (s *Server) handleDrainz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	ok := s.pool.Drain(s.drainTimeout)
	status := http.StatusOK
	if !ok {
		// In-flight jobs outlived the drain window. Tell the caller when
		// another attempt could succeed: the longest a remaining job can
		// still run is one default deadline.
		status = http.StatusGatewayTimeout
		w.Header().Set("Retry-After", strconv.Itoa(RetryAfterSeconds(s.drainTimeout)))
	}
	writeJSON(w, status, drainzResponse{Drained: ok, Stats: s.pool.Stats()})
}

// writeJSONDigested is writeJSON for the /v1/run surface: the body is
// marshalled to a buffer first so its SHA-256 can travel in
// X-Pyserve-Digest. The router verifies the digest before trusting the
// bytes — a truncated or bit-flipped response fails closed instead of
// reaching a client as a wrong answer.
func writeJSONDigested(w http.ResponseWriter, status int, v interface{}) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		httpError(w, http.StatusInternalServerError, "encode response: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(api.HeaderResultDigest, api.Digest(buf.Bytes()))
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
