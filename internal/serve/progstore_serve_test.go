package serve

// Tests for the program-store serving surface: POST /v1/programs
// registration, GET/DELETE /v1/programs/{ref} admin operations,
// run-by-reference /v1/run with programCache stamping, IC-seed
// donation, and the benchgate overhead guard for the store's hot-path
// lookup cost.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/benchgate"
	"repro/internal/progstore"
)

// seedableSrc quickens enough sites (global builtin, attr slots, method
// loads) that a completed run exports a non-empty IC seed.
const seedableSrc = `
class Counter:
    def __init__(self):
        self.n = 0
    def inc(self):
        self.n = self.n + 1
        return self.n
c = Counter()
d = Counter()
total = 0
i = 0
while i < 200:
    total = total + c.inc() + d.inc()
    i = i + 1
print(total)
`

// postJSON posts body to path and returns the status and raw response.
func postJSON(t *testing.T, ts *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func registerProgram(t *testing.T, ts *httptest.Server, src string) api.RegisterResultV1 {
	t.Helper()
	body, _ := json.Marshal(api.RegisterRequestV1{Src: src})
	status, raw := postJSON(t, ts, "/v1/programs", string(body))
	if status != 200 {
		t.Fatalf("POST /v1/programs status %d: %s", status, raw)
	}
	var res api.RegisterResultV1
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("decode register result: %v", err)
	}
	return res
}

func envelopeCode(t *testing.T, raw []byte) string {
	t.Helper()
	var env api.ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("decode error envelope from %s: %v", raw, err)
	}
	return env.Err.Code
}

// TestProgramRegistration: registration returns the content address,
// is idempotent, and rejects malformed input with the v1 envelope.
func TestProgramRegistration(t *testing.T) {
	ts, _ := smokeServer(t)
	src := "print(6 * 7)\n"

	res := registerProgram(t, ts, src)
	if res.ProgramRef != progstore.Ref(src) {
		t.Errorf("ref %q, want content address %q", res.ProgramRef, progstore.Ref(src))
	}
	if !res.Compiled {
		t.Error("Compiled false on a 200 registration")
	}
	if res.ICSeedAvailable {
		t.Error("ICSeedAvailable true before any run")
	}
	if again := registerProgram(t, ts, src); again.ProgramRef != res.ProgramRef {
		t.Errorf("re-registration changed ref: %q vs %q", again.ProgramRef, res.ProgramRef)
	}

	// A source that does not compile is a 400 bad_program, and is not
	// cached: nothing to run by reference afterwards.
	bad := "def f(:\n"
	if status, raw := postJSON(t, ts, "/v1/programs", `{"src": "def f(:\n"}`); status != 400 {
		t.Errorf("bad program: status %d, want 400 (%s)", status, raw)
	} else if code := envelopeCode(t, raw); code != api.CodeBadProgram {
		t.Errorf("bad program: code %q, want %q", code, api.CodeBadProgram)
	}
	status, raw := postJSON(t, ts, "/v1/run", `{"programRef": "`+progstore.Ref(bad)+`"}`)
	if status != 404 || envelopeCode(t, raw) != api.CodeUnknownProgram {
		t.Errorf("failed compile left a resolvable ref: status %d, %s", status, raw)
	}

	if status, raw := postJSON(t, ts, "/v1/programs", `{}`); status != 400 {
		t.Errorf("missing src: status %d (%s)", status, raw)
	} else if code := envelopeCode(t, raw); code != api.CodeMissingSrc {
		t.Errorf("missing src: code %q, want %q", code, api.CodeMissingSrc)
	}
	resp, err := http.Get(ts.URL + "/v1/programs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/programs status %d, want 405", resp.StatusCode)
	}
}

// TestRunByRefLifecycle walks the full run-by-reference story: register,
// run by ref (hit, donates a seed), run again (seeded), inspect
// metadata, invalidate, and observe the 404.
func TestRunByRefLifecycle(t *testing.T) {
	ts, _, _ := metricsServer(t, io.Discard)
	reg := registerProgram(t, ts, seedableSrc)

	status, out := postRunV1(t, ts, api.RunRequestV1{ProgramRef: reg.ProgramRef})
	if status != 200 || out.ExitClass != "ok" {
		t.Fatalf("first run-by-ref: %d %s (%s)", status, out.ExitClass, out.Error)
	}
	if out.Stdout != "40200\n" {
		t.Errorf("stdout %q, want \"40200\\n\"", out.Stdout)
	}
	if out.ProgramCache != api.ProgramCacheHit {
		t.Errorf("first run-by-ref programCache %q, want %q", out.ProgramCache, api.ProgramCacheHit)
	}
	if out.ProgramRef != reg.ProgramRef {
		t.Errorf("result programRef %q, want %q", out.ProgramRef, reg.ProgramRef)
	}

	// The clean first run donated its IC seed before the response was
	// written, so the second run starts warm and says so.
	status, out = postRunV1(t, ts, api.RunRequestV1{ProgramRef: reg.ProgramRef})
	if status != 200 || out.ExitClass != "ok" {
		t.Fatalf("second run-by-ref: %d %s (%s)", status, out.ExitClass, out.Error)
	}
	if out.ProgramCache != api.ProgramCacheSeeded {
		t.Errorf("second run-by-ref programCache %q, want %q", out.ProgramCache, api.ProgramCacheSeeded)
	}

	resp, err := http.Get(ts.URL + "/v1/programs/" + reg.ProgramRef)
	if err != nil {
		t.Fatal(err)
	}
	var info api.ProgramInfoV1
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("decode program info: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET program info status %d", resp.StatusCode)
	}
	if info.ProgramRef != reg.ProgramRef || !info.Compiled {
		t.Errorf("info = %+v: wrong ref or uncompiled", info)
	}
	if info.SrcBytes != len(seedableSrc) {
		t.Errorf("info.SrcBytes = %d, want %d", info.SrcBytes, len(seedableSrc))
	}
	if info.Hits < 2 {
		t.Errorf("info.Hits = %d after two runs-by-ref, want >= 2", info.Hits)
	}
	if !info.ICSeed || info.ICSeedSites == 0 {
		t.Errorf("info = %+v: seed not recorded after a clean run", info)
	}

	// The donated seed is visible in the metrics exposition too.
	mresp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if strings.Contains(string(mb), "minipy_progstore_seeds_total 0") ||
		!strings.Contains(string(mb), "minipy_progstore_seeds_total") {
		t.Error("minipy_progstore_seeds_total missing or zero after seed donation")
	}

	// Invalidate, then prove the ref is gone everywhere.
	delReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/programs/"+reg.ProgramRef, nil)
	dresp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != 200 {
		t.Fatalf("DELETE status %d", dresp.StatusCode)
	}
	status, raw := postJSON(t, ts, "/v1/run", `{"programRef": "`+reg.ProgramRef+`"}`)
	if status != 404 || envelopeCode(t, raw) != api.CodeUnknownProgram {
		t.Errorf("run after DELETE: status %d body %s, want 404 unknown_program", status, raw)
	}
	dresp2, err := http.DefaultClient.Do(delReq.Clone(delReq.Context()))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp2.Body)
	dresp2.Body.Close()
	if dresp2.StatusCode != 404 {
		t.Errorf("second DELETE status %d, want 404", dresp2.StatusCode)
	}
}

// TestRunInlineProgramCacheStamps: inline v1 sources register
// read-through, so the first run is a store miss, and the run after a
// clean (seed-donating) one reports seeded.
func TestRunInlineProgramCacheStamps(t *testing.T) {
	ts, _ := smokeServer(t)
	status, out := postRunV1(t, ts, api.RunRequestV1{Src: seedableSrc})
	if status != 200 || out.ExitClass != "ok" {
		t.Fatalf("first inline run: %d %s (%s)", status, out.ExitClass, out.Error)
	}
	if out.ProgramCache != api.ProgramCacheMiss {
		t.Errorf("first inline run programCache %q, want %q", out.ProgramCache, api.ProgramCacheMiss)
	}
	if out.ProgramRef != progstore.Ref(seedableSrc) {
		t.Errorf("inline run programRef %q, want content address %q",
			out.ProgramRef, progstore.Ref(seedableSrc))
	}
	status, out = postRunV1(t, ts, api.RunRequestV1{Src: seedableSrc})
	if status != 200 {
		t.Fatalf("second inline run: %d", status)
	}
	if out.ProgramCache != api.ProgramCacheSeeded {
		t.Errorf("second inline run programCache %q, want %q", out.ProgramCache, api.ProgramCacheSeeded)
	}
	// Inline and by-ref resolve to the same entry: the ref from the
	// inline result runs directly.
	status, byRef := postRunV1(t, ts, api.RunRequestV1{ProgramRef: out.ProgramRef})
	if status != 200 || byRef.Stdout != out.Stdout {
		t.Errorf("run-by-ref of the inline ref: status %d stdout %q, want 200 %q",
			status, byRef.Stdout, out.Stdout)
	}

	// A compile error on the inline path must keep its pre-store shape:
	// worker-side compile error, no program stamps.
	status, bad := postRunV1(t, ts, api.RunRequestV1{Src: "def f(:\n"})
	if status != 200 || bad.ExitClass != "error" {
		t.Fatalf("inline compile error: status %d class %s", status, bad.ExitClass)
	}
	if bad.ProgramCache != "" || bad.ProgramRef != "" {
		t.Errorf("compile error stamped program fields: cache %q ref %q", bad.ProgramCache, bad.ProgramRef)
	}
}

// TestProgstoreOverheadGuard is the performance regression gate for
// run-by-reference: resolving a registered ref (store lookup by content
// hash) must cost at most the benchgate table's p50 overhead versus the
// same program shipped inline (itself a read-through store hit after
// the first request). Best-of-N with interleaved legs keeps scheduler
// noise from flaking the gate; negative overhead trivially passes.
func TestProgstoreOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing guard skipped under the race detector")
	}
	gate := benchgate.Lookup("progstore-lookup-overhead")

	ts, _ := smokeServer(t)
	src := "print(7)\n"
	ref := registerProgram(t, ts, src).ProgramRef

	p50 := func(n int, byRef bool) time.Duration {
		t.Helper()
		lats := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			rr := api.RunRequestV1{Src: src}
			if byRef {
				rr = api.RunRequestV1{ProgramRef: ref}
			}
			body, _ := json.Marshal(rr)
			start := time.Now()
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatalf("POST: %v", err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			lats = append(lats, time.Since(start))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d (byRef=%v)", resp.StatusCode, byRef)
			}
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return lats[len(lats)/2]
	}

	p50(50, false) // warm the pool, the connections, and the store entry

	const (
		attempts = 3
		reqs     = 200
	)
	best := 1e18
	for attempt := 1; attempt <= attempts; attempt++ {
		inline := p50(reqs, false)
		byRef := p50(reqs, true)
		overhead := (float64(byRef) - float64(inline)) / float64(inline) * 100
		if overhead < best {
			best = overhead
		}
		t.Logf("attempt %d: inline p50 %v, by-ref p50 %v, overhead %+.2f%%", attempt, inline, byRef, overhead)
		if best <= gate.MaxOverheadPct {
			return
		}
	}
	t.Fatalf("run-by-reference p50 overhead %+.2f%%, gate allows at most %.2f%%", best, gate.MaxOverheadPct)
}
