package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/interp"
	"repro/internal/supervise"
	"repro/internal/telemetry"
)

// dedupServer is metricsServer with the *Server exposed (for DedupStats)
// and dedup options under test control.
func dedupServer(t *testing.T, opts Options) (*httptest.Server, *Server, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	pool := supervise.NewPool(supervise.Config{
		Workers: 2,
		Metrics: supervise.NewMetrics(reg),
		DefaultLimits: interp.Limits{
			MaxSteps:       10_000_000,
			MaxHeapBytes:   128 << 20,
			Deadline:       30 * time.Second,
			MaxOutputBytes: 1 << 20,
		},
	})
	opts.DrainTimeout = 10 * time.Second
	opts.LogW = io.Discard
	srv := NewWithOptions(pool, reg, opts)
	ts := httptest.NewServer(srv.Mux())
	t.Cleanup(func() {
		ts.Close()
		pool.Close()
	})
	return ts, srv, reg
}

// postV1 posts req to /v1/run with optional extra headers and returns
// the raw response plus its decoded body bytes.
func postV1(t *testing.T, ts *httptest.Server, req runRequest, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/run", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		hr.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func decodeResult(t *testing.T, raw []byte) runResponse {
	t.Helper()
	var out runResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("decode /v1/run response: %v\n%s", err, raw)
	}
	return out
}

// TestDedupReplayAbsorbed: a replay of an executed key returns the
// recorded result — same stdout, Deduped set, no second execution.
func TestDedupReplayAbsorbed(t *testing.T) {
	ts, srv, reg := dedupServer(t, Options{})
	req := runRequest{Src: `print("once")`, IdempotencyKey: "key-1"}

	resp1, raw1 := postV1(t, ts, req, nil)
	out1 := decodeResult(t, raw1)
	if resp1.StatusCode != 200 || out1.Stdout != "once\n" {
		t.Fatalf("first run: status %d stdout %q (err %s)", resp1.StatusCode, out1.Stdout, out1.Error)
	}
	if out1.Executions != 1 || out1.Deduped {
		t.Fatalf("first run: Executions=%d Deduped=%v, want 1/false", out1.Executions, out1.Deduped)
	}

	resp2, raw2 := postV1(t, ts, req, map[string]string{api.HeaderRequestID: "replay-77"})
	out2 := decodeResult(t, raw2)
	if resp2.StatusCode != 200 || out2.Stdout != "once\n" {
		t.Fatalf("replay: status %d stdout %q", resp2.StatusCode, out2.Stdout)
	}
	if !out2.Deduped || out2.Executions != 1 {
		t.Fatalf("replay: Deduped=%v Executions=%d, want true/1", out2.Deduped, out2.Executions)
	}
	if out2.RequestID != "replay-77" {
		t.Fatalf("replay RequestID = %q, want the replay's own id", out2.RequestID)
	}

	st := srv.DedupStats()
	if st.Hits != 1 || st.Recorded != 1 || st.MaxExecutions != 1 {
		t.Fatalf("stats = %+v, want Hits=1 Recorded=1 MaxExecutions=1", st)
	}
	var sb strings.Builder
	_ = reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "pyserve_dedup_hits_total 1") {
		t.Errorf("exposition missing pyserve_dedup_hits_total 1")
	}
}

// TestDedupDistinctKeysExecute: different keys never collide.
func TestDedupDistinctKeysExecute(t *testing.T) {
	ts, srv, _ := dedupServer(t, Options{})
	for _, k := range []string{"a", "b", "c"} {
		_, raw := postV1(t, ts, runRequest{Src: `print("` + k + `")`, IdempotencyKey: k}, nil)
		out := decodeResult(t, raw)
		if out.Stdout != k+"\n" || out.Deduped {
			t.Fatalf("key %s: stdout %q deduped %v", k, out.Stdout, out.Deduped)
		}
	}
	if st := srv.DedupStats(); st.Hits != 0 || st.Recorded != 3 {
		t.Fatalf("stats = %+v, want Hits=0 Recorded=3", st)
	}
}

// TestDedupKeyTooLong: oversized keys are rejected before execution.
func TestDedupKeyTooLong(t *testing.T) {
	ts, _, _ := dedupServer(t, Options{})
	resp, raw := postV1(t, ts, runRequest{
		Src:            `print(1)`,
		IdempotencyKey: strings.Repeat("k", api.MaxIdempotencyKey+1),
	}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var env api.ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	if env.Err.Code != api.CodeBadIdempotencyKey {
		t.Fatalf("code = %q, want %q", env.Err.Code, api.CodeBadIdempotencyKey)
	}
}

// TestContentDigestVerified: a request whose body does not match its
// X-Content-Digest is rejected 422/integrity_violation without
// executing; a matching digest passes.
func TestContentDigestVerified(t *testing.T) {
	ts, _, reg := dedupServer(t, Options{})
	req := runRequest{Src: `print("ok")`}
	body, _ := json.Marshal(req)

	resp, raw := postV1(t, ts, req, map[string]string{api.HeaderContentDigest: api.Digest(body)})
	if out := decodeResult(t, raw); resp.StatusCode != 200 || out.Stdout != "ok\n" {
		t.Fatalf("matching digest: status %d stdout %q", resp.StatusCode, out.Stdout)
	}

	resp, raw = postV1(t, ts, req, map[string]string{api.HeaderContentDigest: api.Digest([]byte("other"))})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("mismatched digest: status = %d, want 422", resp.StatusCode)
	}
	var env api.ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	if env.Err.Code != api.CodeIntegrity {
		t.Fatalf("code = %q, want %q", env.Err.Code, api.CodeIntegrity)
	}
	var sb strings.Builder
	_ = reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "pyserve_integrity_rejects_total 1") {
		t.Errorf("exposition missing pyserve_integrity_rejects_total 1")
	}
}

// TestResultDigestStamped: every /v1/run response carries an
// X-Pyserve-Digest matching its body bytes — success and rejection
// alike — so the router can fail closed on damaged responses.
func TestResultDigestStamped(t *testing.T) {
	ts, _, _ := dedupServer(t, Options{})
	cases := []runRequest{
		{Src: `print(40 + 2)`},           // 200
		{Src: ""},                        // 400 missing_program
		{Src: `print(1)`, Mode: "bogus"}, // 400 bad_mode
	}
	for i, req := range cases {
		resp, raw := postV1(t, ts, req, nil)
		want := resp.Header.Get(api.HeaderResultDigest)
		if want == "" {
			t.Fatalf("case %d: response missing %s", i, api.HeaderResultDigest)
		}
		if got := api.Digest(raw); got != want {
			t.Fatalf("case %d: body digest %s != header %s", i, got, want)
		}
	}
}

// TestDedupConcurrentSingleFlight: many concurrent requests under one
// key produce exactly one execution; the rest absorb its result.
func TestDedupConcurrentSingleFlight(t *testing.T) {
	ts, srv, _ := dedupServer(t, Options{})
	const n = 16
	var wg sync.WaitGroup
	outs := make([]runResponse, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, raw := postV1(t, ts, runRequest{
				Src:            `print(sum(range(1000)))`,
				IdempotencyKey: "flight-1",
			}, nil)
			outs[i] = decodeResult(t, raw)
		}(i)
	}
	wg.Wait()
	deduped := 0
	for i, out := range outs {
		if out.Stdout != "499500\n" {
			t.Fatalf("request %d: stdout %q", i, out.Stdout)
		}
		if out.Executions > 1 {
			t.Fatalf("request %d: Executions = %d", i, out.Executions)
		}
		if out.Deduped {
			deduped++
		}
	}
	st := srv.DedupStats()
	if st.Recorded != 1 {
		t.Fatalf("Recorded = %d, want 1 (single flight)", st.Recorded)
	}
	if st.MaxExecutions != 1 {
		t.Fatalf("MaxExecutions = %d, want 1", st.MaxExecutions)
	}
	if deduped != n-1 {
		t.Fatalf("deduped replies = %d, want %d", deduped, n-1)
	}
}

// TestDedupCacheTTL: recorded results expire; the next consult after
// expiry executes afresh.
func TestDedupCacheTTL(t *testing.T) {
	c := newDedupCache(time.Minute, 8)
	t0 := time.Unix(1000, 0)

	v, e, _ := c.consult("k", t0)
	if v != dedupExecute {
		t.Fatalf("first consult = %d, want execute", v)
	}
	c.resolve(e, &api.RunResultV1{Stdout: "x", Executions: 1}, true, t0)

	if v, _, rec := c.consult("k", t0.Add(30*time.Second)); v != dedupHit || rec.Stdout != "x" {
		t.Fatalf("within TTL: verdict %d", v)
	}
	if v, _, _ := c.consult("k", t0.Add(2*time.Minute)); v != dedupExecute {
		t.Fatalf("after TTL: verdict %d, want execute", v)
	}
	if st := c.stats(); st.Expirations != 1 {
		t.Fatalf("Expirations = %d, want 1", st.Expirations)
	}
}

// TestDedupShedNotRecorded: resolving uncacheably (shed — the body
// never ran) releases the key so the retry executes.
func TestDedupShedNotRecorded(t *testing.T) {
	c := newDedupCache(time.Minute, 8)
	t0 := time.Unix(1000, 0)
	_, e, _ := c.consult("k", t0)
	c.resolve(e, nil, false, t0)
	if v, _, _ := c.consult("k", t0); v != dedupExecute {
		t.Fatalf("consult after shed = %d, want execute", v)
	}
	if st := c.stats(); st.Recorded != 0 {
		t.Fatalf("Recorded = %d, want 0", st.Recorded)
	}
}

// TestDedupCapacityEviction: at capacity the oldest resolved entry is
// evicted; when every entry is pending the consult degrades to bypass
// (at-least-once for that key) rather than evicting an in-flight entry.
func TestDedupCapacityEviction(t *testing.T) {
	c := newDedupCache(time.Minute, 2)
	t0 := time.Unix(1000, 0)

	_, e1, _ := c.consult("a", t0)
	c.resolve(e1, &api.RunResultV1{Stdout: "a"}, true, t0)
	_, e2, _ := c.consult("b", t0.Add(time.Second))
	c.resolve(e2, &api.RunResultV1{Stdout: "b"}, true, t0.Add(time.Second))

	// Third key evicts "a" (oldest resolved).
	if v, _, _ := c.consult("c", t0.Add(2*time.Second)); v != dedupExecute {
		t.Fatal("consult c: want execute")
	}
	if st := c.stats(); st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Evictions)
	}
	// The evicted key executes afresh (evicting "b" in turn — the cache
	// is full again).
	if v, _, _ := c.consult("a", t0.Add(2*time.Second)); v != dedupExecute {
		t.Fatal("evicted key a should execute afresh")
	}

	// All-pending cache refuses new keys instead of evicting in-flight.
	c2 := newDedupCache(time.Minute, 1)
	c2.consult("p", t0)
	if v, _, _ := c2.consult("q", t0); v != dedupBypass {
		t.Fatalf("all-pending consult = %d, want bypass", v)
	}
}

// TestDedupWaitCancel: a waiter whose context ends stops waiting.
func TestDedupWaitCancel(t *testing.T) {
	c := newDedupCache(time.Minute, 8)
	_, e, _ := c.consult("k", time.Unix(1000, 0))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if c.wait(ctx, e) {
		t.Fatal("wait returned true on cancelled context")
	}
}
