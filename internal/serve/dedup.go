package serve

import (
	"container/list"
	"context"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/telemetry"
)

// dedup.go is pyserve's exactly-once layer: a bounded, TTL'd,
// single-flight result cache keyed by client-supplied idempotency keys.
//
// The contract: for one key, the program body executes at most once per
// TTL window on this backend. The first request under a key executes and
// records its result; every replay within the TTL — a router re-routing
// a mid-flight network failure, a client retrying a timed-out call —
// returns the recorded RunResultV1 without touching the worker pool.
// Concurrent replays single-flight: one executes, the rest wait on it
// and absorb its result, so even a replay racing the original cannot
// double-execute.
//
// Overhead discipline (SlipCover's): requests without a key never touch
// the cache — one empty-string compare and the whole subsystem
// disappears. Keyed requests pay one mutex'd map lookup per consult,
// off the worker-pool critical path; nothing here runs inside a job.
// The p50 cost of the consult is pinned by the router-dedup-overhead
// benchgate entry.

// dedupDefaults.
const (
	defaultDedupTTL = 5 * time.Minute
	defaultDedupCap = 4096
	// dedupWaitRetries bounds how many times a waiter re-consults after
	// the executor it waited on resolved uncacheably (shed): each retry
	// either finds a recorded result or becomes the executor itself.
	dedupWaitRetries = 4
)

// dedupEntry is one key's lifecycle: pending while its executor runs,
// then either recorded (res holds the result) or deleted (uncacheable
// outcome). done is closed exactly once, at resolution.
type dedupEntry struct {
	key     string
	done    chan struct{}
	res     *api.RunResultV1 // nil until recorded
	execs   int              // times the body ran under this key (0 or 1)
	expires time.Time        // zero while pending
	elem    *list.Element    // position in the eviction order
}

// dedupCache is the bounded single-flight result cache.
type dedupCache struct {
	ttl time.Duration
	cap int

	mu      sync.Mutex
	entries map[string]*dedupEntry
	// order lists resolved entries oldest-first (uniform TTL makes
	// insertion order expiry order); pending entries are not listed and
	// are never evicted.
	order *list.List

	// Lifetime counters, mirrored into the registry via the c* counters
	// below (nil-safe; left nil when the server has no registry).
	hits, recorded, evictions, expirations uint64
	maxExecs                               int

	cHits, cRecorded, cEvictions *telemetry.Counter
}

func newDedupCache(ttl time.Duration, capacity int) *dedupCache {
	if ttl <= 0 {
		ttl = defaultDedupTTL
	}
	if capacity <= 0 {
		capacity = defaultDedupCap
	}
	return &dedupCache{
		ttl:     ttl,
		cap:     capacity,
		entries: make(map[string]*dedupEntry),
		order:   list.New(),
	}
}

// consultVerdict is what one consult decided.
type consultVerdict int

const (
	// dedupExecute: the caller is the executor — run the job, then call
	// resolve with the result.
	dedupExecute consultVerdict = iota
	// dedupHit: a recorded result was returned; nothing executes.
	dedupHit
	// dedupWait: another request holds the key; wait on entry.done and
	// consult again.
	dedupWait
	// dedupBypass: the cache refused the key (capacity exhausted by
	// pending entries); execute without recording. Correctness degrades
	// to at-least-once for this key only, never to a wrong answer.
	dedupBypass
)

// consult looks the key up and claims it when absent. Exactly one
// concurrent caller per key gets dedupExecute; the entry it must resolve
// is returned alongside.
func (c *dedupCache) consult(key string, now time.Time) (consultVerdict, *dedupEntry, *api.RunResultV1) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked(now)
	if e, ok := c.entries[key]; ok {
		if e.res != nil {
			c.hits++
			c.cHits.Inc()
			res := *e.res // copy: callers restamp the request id
			return dedupHit, e, &res
		}
		return dedupWait, e, nil
	}
	if len(c.entries) >= c.cap && !c.evictOneLocked() {
		return dedupBypass, nil, nil
	}
	e := &dedupEntry{key: key, done: make(chan struct{})}
	c.entries[key] = e
	return dedupExecute, e, nil
}

// resolve completes an entry claimed by consult. Executed outcomes are
// recorded for the TTL; uncacheable ones (shed — the body never ran)
// delete the entry so the next replay executes. Waiters are released
// either way.
func (c *dedupCache) resolve(e *dedupEntry, res *api.RunResultV1, cacheable bool, now time.Time) {
	c.mu.Lock()
	if cacheable {
		stored := *res
		e.res = &stored
		e.execs = res.Executions
		e.expires = now.Add(c.ttl)
		e.elem = c.order.PushBack(e)
		c.recorded++
		c.cRecorded.Inc()
		if e.execs > c.maxExecs {
			c.maxExecs = e.execs
		}
	} else {
		delete(c.entries, e.key)
	}
	c.mu.Unlock()
	close(e.done)
}

// wait blocks until e resolves or ctx ends; reports whether e resolved.
func (c *dedupCache) wait(ctx context.Context, e *dedupEntry) bool {
	select {
	case <-e.done:
		return true
	case <-ctx.Done():
		return false
	}
}

// sweepLocked drops entries whose TTL elapsed, oldest first.
func (c *dedupCache) sweepLocked(now time.Time) {
	for {
		front := c.order.Front()
		if front == nil {
			return
		}
		e := front.Value.(*dedupEntry)
		if e.expires.After(now) {
			return
		}
		c.order.Remove(front)
		delete(c.entries, e.key)
		c.expirations++
	}
}

// evictOneLocked drops the oldest resolved entry to make room; false
// means every entry is pending (nothing evictable).
func (c *dedupCache) evictOneLocked() bool {
	front := c.order.Front()
	if front == nil {
		return false
	}
	e := front.Value.(*dedupEntry)
	c.order.Remove(front)
	delete(c.entries, e.key)
	c.evictions++
	c.cEvictions.Inc()
	return true
}

// DedupStats is a point-in-time view of the dedup cache, used by the
// chaos soak's oracle and the admin surface.
type DedupStats struct {
	// Hits counts replays absorbed by a recorded result.
	Hits uint64 `json:"hits"`
	// Recorded counts first executions whose results were cached.
	Recorded uint64 `json:"recorded"`
	// Evictions counts capacity evictions; Expirations TTL sweeps.
	Evictions   uint64 `json:"evictions"`
	Expirations uint64 `json:"expirations"`
	// Entries is the current population (pending included).
	Entries int `json:"entries"`
	// MaxExecutions is the largest execution-count stamp ever recorded
	// under one key. The exactly-once invariant is MaxExecutions <= 1;
	// the byte-chaos soak asserts it.
	MaxExecutions int `json:"maxExecutions"`
}

func (c *dedupCache) stats() DedupStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return DedupStats{
		Hits:          c.hits,
		Recorded:      c.recorded,
		Evictions:     c.evictions,
		Expirations:   c.expirations,
		Entries:       len(c.entries),
		MaxExecutions: c.maxExecs,
	}
}
