//go:build race

package serve

// raceEnabled reports whether the race detector is compiled in; timing
// guards skip themselves under -race, where wall clocks are meaningless.
const raceEnabled = true
