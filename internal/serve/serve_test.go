package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/interp"
	"repro/internal/runtime"
	"repro/internal/supervise"
	"repro/internal/telemetry"
)

// The wire types under test are the shared versioned API structs.
type (
	runRequest  = api.RunRequestV1
	runResponse = api.RunResultV1
)

// syncBuffer is a mutex-guarded log sink for tests that inspect the
// per-job log lines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func smokeServer(t *testing.T) (*httptest.Server, *supervise.Pool) {
	ts, pool, _ := metricsServer(t, io.Discard)
	return ts, pool
}

// metricsServer is smokeServer with the telemetry registry exposed and a
// caller-chosen log sink.
func metricsServer(t *testing.T, logw io.Writer) (*httptest.Server, *supervise.Pool, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	pool := supervise.NewPool(supervise.Config{
		Workers: 2,
		Metrics: supervise.NewMetrics(reg),
		DefaultLimits: interp.Limits{
			MaxSteps:       10_000_000,
			MaxHeapBytes:   128 << 20,
			Deadline:       30 * time.Second,
			MaxOutputBytes: 1 << 20,
		},
	})
	ts := httptest.NewServer(New(pool, reg, 10*time.Second, logw).Mux())
	t.Cleanup(func() {
		ts.Close()
		pool.Close()
	})
	return ts, pool, reg
}

func postRun(t *testing.T, ts *httptest.Server, req runRequest) (int, runResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out runResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode /run response: %v", err)
	}
	return resp.StatusCode, out
}

// TestSmoke is the CI gate: 50 mixed-mode requests through the HTTP
// surface — healthy programs, an ordinary Python error, and one request
// per governor limit class — after which the pool must report zero
// worker deaths of any kind.
func TestSmoke(t *testing.T) {
	ts, pool := smokeServer(t)

	type want struct {
		status int
		class  string
		exit   int
		stdout string
	}
	post := func(i int, req runRequest, w want) {
		t.Helper()
		status, out := postRun(t, ts, req)
		if status != w.status || out.ExitClass != w.class || out.ExitCode != w.exit {
			t.Fatalf("request %d (%s): status %d class %s exit %d (err %q), want %d/%s/%d",
				i, req.Name, status, out.ExitClass, out.ExitCode, out.Error,
				w.status, w.class, w.exit)
		}
		if w.stdout != "" && out.Stdout != w.stdout {
			t.Fatalf("request %d (%s): stdout %q, want %q", i, req.Name, out.Stdout, w.stdout)
		}
	}

	reqs := 0
	// 44 healthy requests cycling through every runtime mode.
	for i := 0; i < 44; i++ {
		mode := runtime.Mode(i % int(runtime.NumModes)).String()
		post(reqs, runRequest{
			Name: fmt.Sprintf("ok-%d.py", i),
			Mode: mode,
			Src:  fmt.Sprintf("total = 0\nfor j in range(50):\n    total = total + j\nprint(total + %d)\n", i),
		}, want{status: 200, class: "ok", exit: 0, stdout: fmt.Sprintf("%d\n", 1225+i)})
		reqs++
	}

	// One ordinary Python error.
	post(reqs, runRequest{Name: "err.py", Src: "print(no_such_name)\n"},
		want{status: 200, class: "error", exit: 1})
	reqs++

	// One request per limit class, each with a per-request budget.
	limitReqs := []struct {
		name  string
		src   string
		lim   api.Limits
		class string
		exit  int
	}{
		{"steps.py", "i = 0\nwhile True:\n    i = i + 1\n",
			api.Limits{MaxSteps: 100_000}, "timeout", 4},
		{"deadline.py", "i = 0\nwhile True:\n    i = i + 1\n",
			api.Limits{MaxSteps: 1 << 40, Deadline: 30 * time.Millisecond}, "timeout", 4},
		{"heap.py", "l = []\nwhile True:\n    l.append(\"0123456789abcdef\")\n",
			api.Limits{MaxHeapBytes: 1 << 20}, "memory", 5},
		{"recursion.py", "def f(n):\n    return f(n + 1)\nf(0)\n",
			api.Limits{MaxRecursionDepth: 64}, "recursion", 6},
		{"output.py", "while True:\n    print(\"aaaaaaaaaaaaaaaa\")\n",
			api.Limits{MaxOutputBytes: 32 << 10}, "output-limit", 7},
	}
	for i, lr := range limitReqs {
		mode := runtime.Mode(i % int(runtime.NumModes)).String()
		post(reqs, runRequest{Name: lr.name, Src: lr.src, Mode: mode, Limits: &lr.lim},
			want{status: 200, class: lr.class, exit: lr.exit})
		reqs++
	}

	if reqs != 50 {
		t.Fatalf("smoke sent %d requests, want 50", reqs)
	}

	st := pool.Stats()
	if st.Poisoned != 0 || st.Wedged != 0 || st.Leaked != 0 {
		t.Fatalf("smoke run killed workers: %+v", st)
	}
	if st.Workers == 0 {
		t.Fatalf("no live workers after smoke: %+v", st)
	}
}

// TestHealthz: the health endpoint reports live workers and lifetime
// counters.
func TestHealthz(t *testing.T) {
	ts, _ := smokeServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var h healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.Ok || h.Stats.Workers != 2 {
		t.Fatalf("healthz %+v", h)
	}
}

// TestDrainz: draining flips the daemon into rejection mode — /run
// sheds with a Retry-After hint and /v1/readyz goes not-ready — but
// /healthz stays healthy: a draining node is alive (liveness), just not
// routable (readiness). Conflating the two made routers eject nodes
// that were gracefully finishing their in-flight work.
func TestDrainz(t *testing.T) {
	ts, _ := smokeServer(t)
	resp, err := http.Post(ts.URL+"/drainz", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("drainz status %d", resp.StatusCode)
	}
	body, _ := json.Marshal(runRequest{Name: "x.py", Src: "print(1)\n"})
	runResp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out runResponse
	if err := json.NewDecoder(runResp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	runResp.Body.Close()
	if runResp.StatusCode != http.StatusServiceUnavailable || out.ExitClass != "shed" {
		t.Fatalf("post-drain run: status %d class %s", runResp.StatusCode, out.ExitClass)
	}
	// The drain rejection must carry a Retry-After hint: the routing
	// tier's backoff keys off it instead of guessing.
	if ra := runResp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("post-drain 503 without Retry-After header")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("post-drain Retry-After %q not a positive integer", ra)
	}
	if out.RetryAfter <= 0 {
		t.Fatalf("post-drain body retryAfterMs %v, want > 0", out.RetryAfter)
	}
	// Liveness: still alive while draining.
	if resp, err := http.Get(ts.URL + "/healthz"); err == nil {
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-drain healthz status %d, want 200 (draining is not death)", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if resp, err := http.Get(ts.URL + "/v1/healthz"); err == nil {
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-drain /v1/healthz status %d, want 200", resp.StatusCode)
		}
		resp.Body.Close()
	}
	// Readiness: not routable while draining, with a backoff hint.
	resp2, err := http.Get(ts.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain readyz status %d, want 503", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Fatal("not-ready readyz without Retry-After header")
	}
	var rz readyzResponse
	if err := json.NewDecoder(resp2.Body).Decode(&rz); err != nil {
		t.Fatal(err)
	}
	if rz.Ready || rz.Reason != "draining" {
		t.Fatalf("post-drain readyz %+v, want not-ready/draining", rz)
	}
}

// TestReadyz: a healthy, undrained node is ready; readiness and liveness
// agree on the happy path.
func TestReadyz(t *testing.T) {
	ts, _ := smokeServer(t)
	resp, err := http.Get(ts.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz status %d", resp.StatusCode)
	}
	var rz readyzResponse
	if err := json.NewDecoder(resp.Body).Decode(&rz); err != nil {
		t.Fatal(err)
	}
	if !rz.Ready || rz.Reason != "" {
		t.Fatalf("readyz %+v, want ready", rz)
	}
	if rz.Stats.HeapWatermark == 0 {
		t.Fatalf("readyz stats missing heap watermark: %+v", rz.Stats)
	}
}

// TestDrainzTimeoutRetryAfter: when in-flight work outlives the drain
// window, the 504 carries a Retry-After hint for the next attempt.
func TestDrainzTimeoutRetryAfter(t *testing.T) {
	reg := telemetry.NewRegistry()
	pool := supervise.NewPool(supervise.Config{
		Workers: 1,
		DefaultLimits: interp.Limits{
			MaxSteps: 1 << 40,
			Deadline: 2 * time.Second,
		},
	})
	ts := httptest.NewServer(New(pool, reg, 50*time.Millisecond, io.Discard).Mux())
	t.Cleanup(func() {
		ts.Close()
		pool.Close()
	})

	// Occupy the only worker past the drain window.
	started := make(chan struct{})
	go func() {
		close(started)
		postRun(t, ts, runRequest{Name: "busy.py",
			Src: "i = 0\nwhile True:\n    i = i + 1\n",
			Limits: &api.Limits{MaxSteps: 1 << 40,
				Deadline: 900 * time.Millisecond}})
	}()
	<-started
	time.Sleep(100 * time.Millisecond) // let the job reach a worker

	resp, err := http.Post(ts.URL+"/drainz", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("drainz under load status %d, want 504", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drainz timeout 504 without Retry-After header")
	}
}

// TestRequestIDPropagation: a client-supplied X-Request-Id survives to
// the response body, header, and log line — the router's end-to-end id
// contract — while an oversized id is discarded for a generated one.
func TestRequestIDPropagation(t *testing.T) {
	logs := &syncBuffer{}
	ts, _, _ := metricsServer(t, logs)

	body, _ := json.Marshal(runRequest{Name: "rid.py", Src: "print(1)\n"})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/run", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(api.HeaderRequestID, "edge-7.r2")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var out runResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if out.RequestID != "edge-7.r2" || resp.Header.Get(api.HeaderRequestID) != "edge-7.r2" {
		t.Fatalf("client id not propagated: body %q header %q",
			out.RequestID, resp.Header.Get(api.HeaderRequestID))
	}
	if !strings.Contains(logs.String(), `"requestId":"edge-7.r2"`) {
		t.Fatalf("log line missing client id:\n%s", logs.String())
	}

	// An oversized id is replaced, not echoed.
	req2, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/run", bytes.NewReader(body))
	req2.Header.Set(api.HeaderRequestID, strings.Repeat("x", maxRequestID+1))
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	var out2 runResponse
	if err := json.NewDecoder(resp2.Body).Decode(&out2); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if strings.HasPrefix(out2.RequestID, "x") || out2.RequestID == "" {
		t.Fatalf("oversized client id echoed back: %q", out2.RequestID)
	}
}

// TestBadRequests: malformed input gets 4xx, not a crash.
func TestBadRequests(t *testing.T) {
	ts, _ := smokeServer(t)
	for _, tc := range []struct {
		name   string
		body   string
		status int
	}{
		{"bad json", "{", http.StatusBadRequest},
		{"no src", "{}", http.StatusBadRequest},
		{"bad mode", `{"src": "print(1)", "mode": "jython"}`, http.StatusBadRequest},
		{"negative deadline", `{"src": "print(1)", "limits": {"deadlineMs": -1}}`, http.StatusBadRequest},
		{"negative recursion depth", `{"src": "print(1)", "limits": {"maxRecursionDepth": -5}}`, http.StatusBadRequest},
		{"negative steps", `{"src": "print(1)", "limits": {"maxSteps": -1}}`, http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Fatalf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}
	resp, err := http.Get(ts.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /run status %d", resp.StatusCode)
	}
}

// TestMetricsEndpoint: after mixed traffic, GET /metrics serves a
// well-formed Prometheus exposition with job counters by class, latency
// histograms, and pool gauges.
func TestMetricsEndpoint(t *testing.T) {
	ts, _, _ := metricsServer(t, io.Discard)
	for i := 0; i < 3; i++ {
		if status, out := postRun(t, ts, runRequest{Src: "print(1)\n"}); status != 200 || out.ExitClass != "ok" {
			t.Fatalf("warm-up: %d %s", status, out.ExitClass)
		}
	}
	postRun(t, ts, runRequest{Src: "print(boom)\n"})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE minipy_jobs_total counter",
		`minipy_jobs_total{class="ok"} 3`,
		`minipy_jobs_total{class="error"} 1`,
		"# TYPE minipy_job_run_seconds histogram",
		`minipy_job_run_seconds_bucket{class="ok",le="+Inf"} 3`,
		"minipy_pool_workers 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", out)
	}

	if resp, err := http.Post(ts.URL+"/metrics", "text/plain", nil); err == nil {
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST /metrics status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestBreakdownRequest: "breakdown": true returns the Table-II-style
// per-category report alongside a correct result; ordinary requests
// carry none.
func TestBreakdownRequest(t *testing.T) {
	ts, _ := smokeServer(t)
	status, out := postRun(t, ts, runRequest{
		Name:      "bd.py",
		Src:       "print(sum(range(10)))\n",
		Breakdown: true,
	})
	if status != 200 || out.ExitClass != "ok" || out.Stdout != "45\n" {
		t.Fatalf("breakdown run: %d %s %q (%s)", status, out.ExitClass, out.Stdout, out.Error)
	}
	bd := out.Breakdown
	if bd == nil {
		t.Fatal("no breakdown in response")
	}
	if bd.TotalCycles == 0 || bd.TotalInstrs == 0 || len(bd.Rows) == 0 {
		t.Fatalf("degenerate breakdown: %+v", bd)
	}
	if bd.OverheadPercent < 0 || bd.OverheadPercent > 100 {
		t.Fatalf("overhead percent %v out of range", bd.OverheadPercent)
	}
	var pct float64
	for _, row := range bd.Rows {
		pct += row.Percent
	}
	if pct < 99.0 || pct > 101.0 {
		t.Fatalf("category percentages sum to %v, want ~100", pct)
	}

	if _, plain := postRun(t, ts, runRequest{Src: "print(1)\n"}); plain.Breakdown != nil {
		t.Fatal("plain request unexpectedly carries a breakdown")
	}
}

// TestDeadlineClamp is the overflow regression: a deadlineMs large
// enough to overflow the ms→ns conversion used to reach the pool as a
// negative Deadline and make the watchdog condemn the healthy worker
// mid-job. Normalize rejects it with a 400, the pool never sees it, and
// follow-up traffic finds the workers intact.
func TestDeadlineClamp(t *testing.T) {
	ts, pool := smokeServer(t)
	for _, deadlineMs := range []int64{
		1 << 62,               // overflows time.Duration(ms) * time.Millisecond
		9223372036854775807,   // MaxInt64
		api.MaxDeadlineMs + 1, // just past the cap
	} {
		body := fmt.Sprintf(`{"src": "print(6 * 7)\n", "limits": {"deadlineMs": %d}}`, deadlineMs)
		resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("deadlineMs %d: status %d, want 400", deadlineMs, resp.StatusCode)
		}
	}
	// The cap itself is admissible.
	if status, out := postRun(t, ts, runRequest{
		Src:    "print(6 * 7)\n",
		Limits: &api.Limits{Deadline: api.MaxDeadline},
	}); status != 200 || out.ExitClass != "ok" || out.Stdout != "42\n" {
		t.Fatalf("deadlineMs at cap: %d %s %q", status, out.ExitClass, out.Stdout)
	}

	st := pool.Stats()
	if st.Wedged != 0 || st.Poisoned != 0 || st.Restarts != 0 {
		t.Fatalf("deadline probes condemned workers: %+v", st)
	}
	if st.Workers != 2 {
		t.Fatalf("pool lost workers: %+v", st)
	}
}

// TestRetryAfterSeconds: the Retry-After header rounds the hint UP —
// truncation told clients to retry before the hint elapsed.
func TestRetryAfterSecondsRounding(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{time.Millisecond, 1},
		{time.Second, 1},
		{1900 * time.Millisecond, 2},
		{2 * time.Second, 2},
		{2*time.Second + time.Millisecond, 3},
	} {
		if got := RetryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("RetryAfterSeconds(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

// TestRequestIDs: every executed request gets a daemon-unique id echoed
// in body and header, and exactly one structured log line.
func TestRequestIDs(t *testing.T) {
	logs := &syncBuffer{}
	ts, _, _ := metricsServer(t, logs)

	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		body, _ := json.Marshal(runRequest{Name: fmt.Sprintf("id-%d.py", i), Src: "print(1)\n"})
		resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out runResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if out.RequestID == "" {
			t.Fatal("response without requestId")
		}
		if hdr := resp.Header.Get("X-Request-Id"); hdr != out.RequestID {
			t.Fatalf("header id %q != body id %q", hdr, out.RequestID)
		}
		if seen[out.RequestID] {
			t.Fatalf("duplicate request id %s", out.RequestID)
		}
		seen[out.RequestID] = true
	}

	lines := strings.Split(strings.TrimSpace(logs.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d log lines, want 3:\n%s", len(lines), logs.String())
	}
	for _, line := range lines {
		var entry jobLog
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			t.Fatalf("unparseable log line %q: %v", line, err)
		}
		if !seen[entry.RequestID] || entry.Class != "ok" || entry.Name == "" || entry.Time == "" {
			t.Fatalf("malformed log entry %+v", entry)
		}
	}
}

// postRunV1 drives the versioned endpoint.
func postRunV1(t *testing.T, ts *httptest.Server, req api.RunRequestV1) (int, api.RunResultV1) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out api.RunResultV1
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode /v1/run response: %v", err)
	}
	return resp.StatusCode, out
}

// TestV1Run: the versioned endpoint executes jobs, stamps the API
// version, and reports inline-cache effectiveness in stats.
func TestV1Run(t *testing.T) {
	ts, _ := smokeServer(t)
	status, out := postRunV1(t, ts, api.RunRequestV1{
		Name: "v1.py",
		Src:  "class C:\n    def __init__(self):\n        self.v = 3\n    def get(self):\n        return self.v\nc = C()\ntotal = 0\nfor i in range(200):\n    total = total + c.get()\nprint(total)\n",
	})
	if status != 200 || out.ExitClass != "ok" || out.Stdout != "600\n" {
		t.Fatalf("v1 run: %d %s %q (%s)", status, out.ExitClass, out.Stdout, out.Error)
	}
	if out.APIVersion != api.Version {
		t.Fatalf("apiVersion %q, want %q", out.APIVersion, api.Version)
	}
	if out.Stats == nil {
		t.Fatal("v1 result without stats")
	}
	if out.Stats.ICHits == 0 {
		t.Fatalf("attribute-heavy program recorded no IC hits: %+v", out.Stats)
	}
	if out.Stats.ICHitRate <= 0.5 || out.Stats.ICHitRate > 1 {
		t.Fatalf("IC hit rate %v out of expected range (stats %+v)", out.Stats.ICHitRate, out.Stats)
	}
}

// TestV1ErrorEnvelope: /v1 rejections carry machine-readable codes;
// the legacy alias keeps the flat error string.
func TestV1ErrorEnvelope(t *testing.T) {
	ts, _ := smokeServer(t)
	for _, tc := range []struct {
		name, body, code string
		status           int
	}{
		{"bad json", "{", api.CodeBadJSON, http.StatusBadRequest},
		{"no src", "{}", api.CodeMissingProgram, http.StatusBadRequest},
		{"src and ref", `{"src": "print(1)", "programRef": "` + strings.Repeat("a", 64) + `"}`,
			api.CodeMissingProgram, http.StatusBadRequest},
		{"malformed ref", `{"programRef": "nothex"}`, api.CodeBadProgram, http.StatusBadRequest},
		{"bad mode", `{"src": "print(1)", "mode": "jython"}`, api.CodeBadMode, http.StatusBadRequest},
		{"negative deadline", `{"src": "print(1)", "limits": {"deadlineMs": -1}}`, api.CodeInvalidLimits, http.StatusBadRequest},
		{"over-cap deadline", `{"src": "print(1)", "limits": {"deadlineMs": 86400001}}`, api.CodeInvalidLimits, http.StatusBadRequest},
		{"negative recursion", `{"src": "print(1)", "limits": {"maxRecursionDepth": -5}}`, api.CodeInvalidLimits, http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var env api.ErrorEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatalf("%s: decode envelope: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status || env.Err.Code != tc.code || env.Err.Message == "" {
			t.Fatalf("%s: status %d code %q msg %q, want %d/%s",
				tc.name, resp.StatusCode, env.Err.Code, env.Err.Message, tc.status, tc.code)
		}
	}

	// Legacy alias: flat {"error": "message"} shape, no envelope.
	resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	var flat map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&flat); err != nil {
		t.Fatalf("legacy error not flat: %v", err)
	}
	resp.Body.Close()
	if flat["error"] != "missing src" {
		t.Fatalf("legacy error body %v", flat)
	}
}

// TestLegacyDeprecationHeader: the unversioned /run alias executes
// identically to /v1/run but announces its deprecation.
func TestLegacyDeprecationHeader(t *testing.T) {
	ts, _ := smokeServer(t)
	body, _ := json.Marshal(runRequest{Src: "print(1)\n"})
	resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.Header.Get("Deprecation") != "true" {
		t.Fatal("legacy /run missing Deprecation header")
	}
	if link := resp.Header.Get("Link"); !strings.Contains(link, "/v1/run") {
		t.Fatalf("legacy /run Link header %q does not point at successor", link)
	}
	var out runResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.ExitClass != "ok" || out.Stdout != "1\n" {
		t.Fatalf("legacy run: %s %q", out.ExitClass, out.Stdout)
	}

	// The versioned endpoint must NOT carry the deprecation marker.
	resp2, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.Header.Get("Deprecation") != "" {
		t.Fatal("/v1/run unexpectedly marked deprecated")
	}
}

// TestV1MetricsICCounters: after IC-heavy traffic, /v1/metrics exposes
// the inline-cache counter families with nonzero hit counts.
func TestV1MetricsICCounters(t *testing.T) {
	ts, _, _ := metricsServer(t, io.Discard)
	src := "class C:\n    def __init__(self):\n        self.v = 1\nc = C()\nt = 0\nfor i in range(300):\n    t = t + c.v\nprint(t)\n"
	if status, out := postRunV1(t, ts, api.RunRequestV1{Src: src}); status != 200 || out.ExitClass != "ok" {
		t.Fatalf("warm-up: %d %s (%s)", status, out.ExitClass, out.Error)
	}
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/v1/metrics status %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	exposition := string(b)
	for _, want := range []string{
		"# TYPE minipy_ic_hits_total counter",
		`minipy_ic_hits_total{site="attr"}`,
		`minipy_ic_misses_total{site=`,
		"# TYPE minipy_ic_invalidations_total counter",
		"# TYPE minipy_ic_dequickened_total counter",
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if strings.Contains(exposition, `minipy_ic_hits_total{site="attr"} 0`) {
		t.Error("attr IC hits stayed zero after attribute-heavy traffic")
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", exposition)
	}
}

// TestV1Healthz: the versioned health endpoint mirrors /healthz.
func TestV1Healthz(t *testing.T) {
	ts, _ := smokeServer(t)
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/v1/healthz status %d", resp.StatusCode)
	}
	var h healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.Ok || h.Stats.Workers != 2 {
		t.Fatalf("v1 healthz %+v", h)
	}
}

// TestSchedBackendOverHTTP drives the step-sliced scheduler through the
// full HTTP surface: the serve layer is backend-generic, so lanes,
// tenants, preemption counts, and the lifecycle trace must survive the
// round trip through the /v1 wire types. Concurrent jobs on fewer slots
// force real interleaving.
func TestSchedBackendOverHTTP(t *testing.T) {
	reg := telemetry.NewRegistry()
	sched := supervise.NewSched(supervise.SchedConfig{
		Slots:        2,
		QuantumSteps: 2000,
		Metrics:      supervise.NewMetrics(reg),
		DefaultLimits: interp.Limits{
			MaxSteps:       50_000_000,
			MaxHeapBytes:   128 << 20,
			Deadline:       30 * time.Second,
			MaxOutputBytes: 1 << 20,
		},
	})
	ts := httptest.NewServer(New(sched, reg, 10*time.Second, io.Discard).Mux())
	t.Cleanup(func() {
		ts.Close()
		sched.Close()
	})

	loop := "i = 0\nacc = 0\nwhile i < 200000:\n    acc = acc + i\n    i = i + 1\nprint(acc)\n"
	const jobs = 8
	results := make([]runResponse, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(runRequest{
				Src:    loop,
				Lane:   i % 2,
				Tenant: fmt.Sprintf("tenant-%d", i%3),
			})
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if err := json.NewDecoder(resp.Body).Decode(&results[i]); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	preempted := 0
	for i, out := range results {
		if out.ExitClass != "ok" || out.Stdout != "19999900000\n" {
			t.Fatalf("job %d: class %q stdout %q err %q", i, out.ExitClass, out.Stdout, out.Error)
		}
		if out.Preemptions > 0 {
			preempted++
		}
		if n := len(out.Lifecycle); n > 0 {
			if out.Lifecycle[0].State != "queued" || out.Lifecycle[0].OffsetMs != 0 {
				t.Fatalf("job %d: lifecycle starts %+v, want queued at offset 0", i, out.Lifecycle[0])
			}
			if out.Lifecycle[n-1].State != "finished" {
				t.Fatalf("job %d: lifecycle ends %q, want finished", i, out.Lifecycle[n-1].State)
			}
		} else {
			t.Fatalf("job %d: no lifecycle trace from sched backend", i)
		}
	}
	if preempted == 0 {
		t.Fatal("8 jobs on 2 slots with a small quantum and none reported a preemption")
	}

	// The readiness/drain surface runs off the same Backend interface.
	resp, err := http.Get(ts.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz on idle sched backend: %d", resp.StatusCode)
	}
}
