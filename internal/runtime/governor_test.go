package runtime

import (
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/interp"
)

// hostile programs: each tries to exhaust one host resource. Every mode
// must terminate each of them with the expected in-language exception —
// never a host panic or hang.
var hostile = []struct {
	name   string
	src    string
	limits interp.Limits
	kind   string
}{
	{
		name:   "infinite-loop",
		src:    "i = 0\nwhile True:\n    i = i + 1\n",
		limits: interp.Limits{MaxSteps: 200_000},
		kind:   "TimeoutError",
	},
	{
		name:   "alloc-bomb",
		src:    "l = []\nwhile True:\n    l.append(\"0123456789abcdef0123456789abcdef\")\n",
		limits: interp.Limits{MaxHeapBytes: 1 << 20},
		kind:   "MemoryError",
	},
	{
		name:   "deep-recursion",
		src:    "def f(n):\n    return f(n + 1)\nf(0)\n",
		limits: interp.Limits{MaxRecursionDepth: 100},
		kind:   "RecursionError",
	},
	{
		name:   "output-flood",
		src:    "while True:\n    print(\"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\")\n",
		limits: interp.Limits{MaxOutputBytes: 64 << 10},
		kind:   "OutputLimitError",
	},
	{
		name: "gc-bound-deadline",
		src: "l = []\ni = 0\nwhile True:\n    l.append([i, i + 1])\n" +
			"    if len(l) > 256:\n        l = []\n    i = i + 1\n",
		limits: interp.Limits{Deadline: 30 * time.Millisecond},
		kind:   "TimeoutError",
	},
}

// TestHostileProgramsTerminateUnderAllModes is the acceptance matrix: 5
// hostile programs x 4 runtime modes, each ending in the right Python
// exception with the host intact.
func TestHostileProgramsTerminateUnderAllModes(t *testing.T) {
	for m := Mode(0); m < NumModes; m++ {
		for _, h := range hostile {
			t.Run(m.String()+"/"+h.name, func(t *testing.T) {
				cfg := DefaultConfig(m)
				cfg.Core = CountOnly
				cfg.Warmups = 0
				cfg.Measures = 1
				cfg.NurseryBytes = 64 << 10
				cfg.Stdout = io.Discard
				cfg.Limits = h.limits
				r, err := NewRunner(cfg)
				if err != nil {
					t.Fatal(err)
				}
				_, err = r.Run(h.name+".py", h.src)
				var pe *interp.PyError
				if !errors.As(err, &pe) || pe.Kind != h.kind {
					t.Fatalf("want %s, got %v", h.kind, err)
				}
			})
		}
	}
}

// TestLimitsInertOnWellBehavedProgram: a program far below every limit
// runs identically with the governor armed.
func TestLimitsInertOnWellBehavedProgram(t *testing.T) {
	for m := Mode(0); m < NumModes; m++ {
		cfg := DefaultConfig(m)
		cfg.Core = CountOnly
		cfg.Warmups = 0
		cfg.Measures = 1
		cfg.Limits = interp.Limits{
			MaxSteps:          1 << 40,
			MaxHeapBytes:      1 << 32,
			MaxRecursionDepth: 1000,
			Deadline:          time.Minute,
			MaxOutputBytes:    1 << 20,
		}
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run("ok.py", loopProgram)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.Output != "250008\n" {
			t.Fatalf("%v: output %q", m, res.Output)
		}
	}
}

// TestBadHeapConfigReturnsError: heap misconfiguration surfaces from
// NewRunner as an error, not a panic at first allocation.
func TestBadHeapConfigReturnsError(t *testing.T) {
	cfg := DefaultConfig(PyPyNoJIT)
	cfg.NurseryBytes = 1 // absurdly small: gc.Validate must reject it
	if _, err := NewRunner(cfg); err == nil {
		t.Fatal("want config error for 1-byte nursery, got nil")
	}
}
