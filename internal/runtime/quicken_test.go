package runtime

import (
	"testing"

	"repro/internal/core"
)

// icBenchProgram is the attribute/global-heavy workload: a tight loop of
// global reads, instance attribute loads and stores, and method calls —
// the dispatch shapes the paper's NameResolution and CFunctionCall
// categories are made of, and exactly what inline caches target.
const icBenchProgram = `
STEP = 3
class Acc:
    def __init__(self):
        self.total = 0
    def bump(self, v):
        self.total = self.total + v
def run(n):
    a = Acc()
    i = 0
    while i < n:
        a.bump(STEP)
        a.total = a.total + STEP
        i = i + 1
    return a.total
print(run(4000))
`

const icBenchWant = "24000\n"

// TestQuickeningShrinksNameResolution: under the attribution core, the
// quickened interpreter must shift the Table-II-style split — the
// name-resolution and C-function-call shares shrink versus the cold
// interpreter on the same program, with identical program output.
func TestQuickeningShrinksNameResolution(t *testing.T) {
	run := func(noQuicken bool) *Result {
		t.Helper()
		cfg := DefaultConfig(CPython)
		cfg.NoQuicken = noQuicken
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run("icbench.py", icBenchProgram)
		if err != nil {
			t.Fatal(err)
		}
		if res.Output != icBenchWant {
			t.Fatalf("noQuicken=%v output %q, want %q", noQuicken, res.Output, icBenchWant)
		}
		return res
	}
	cold := run(true)
	quick := run(false)

	if hits := quick.VM.IC.Hits(); hits == 0 {
		t.Fatalf("quickened run recorded no IC hits: %+v", quick.VM.IC)
	}
	if rate := quick.VM.IC.HitRate(); rate < 0.9 {
		t.Errorf("IC hit rate %.3f, want >= 0.9 on a monomorphic workload (%+v)", rate, quick.VM.IC)
	}
	if cold.VM.IC.Hits() != 0 || cold.VM.IC.Sites != 0 {
		t.Errorf("cold run recorded IC activity: %+v", cold.VM.IC)
	}

	coldNR := cold.Breakdown.Percent(core.NameResolution)
	quickNR := quick.Breakdown.Percent(core.NameResolution)
	if quickNR >= coldNR {
		t.Errorf("NameResolution share did not shrink: cold %.2f%% -> quickened %.2f%%", coldNR, quickNR)
	}
	// The elided DictGetStr/getAttr helper calls are CFunctionCall
	// traffic — the Brunthaler effect the paper attributes to quickening.
	coldCC := cold.Breakdown.Percent(core.CFunctionCall)
	quickCC := quick.Breakdown.Percent(core.CFunctionCall)
	if quickCC >= coldCC {
		t.Errorf("CFunctionCall share did not shrink: cold %.2f%% -> quickened %.2f%%", coldCC, quickCC)
	}
	if qt, ct := quick.Breakdown.TotalCycles(), cold.Breakdown.TotalCycles(); qt >= ct {
		t.Errorf("quickened run not cheaper in cycles: %d >= %d", qt, ct)
	}

	deltas := core.DiffBreakdowns(&cold.Breakdown, &quick.Breakdown)
	top := deltas[0].Category
	if top != core.NameResolution && top != core.CFunctionCall {
		t.Errorf("largest share shrink is %s, want name resolution or C function calls\n%+v",
			deltas[0].Name, deltas[:3])
	}
	t.Logf("cycles: cold %d -> quickened %d (%.1f%% saved); NameResolution %.2f%% -> %.2f%%; CFunctionCall %.2f%% -> %.2f%%; IC hit rate %.3f",
		cold.Breakdown.TotalCycles(), quick.Breakdown.TotalCycles(),
		100*(1-float64(quick.Breakdown.TotalCycles())/float64(cold.Breakdown.TotalCycles())),
		coldNR, quickNR, coldCC, quickCC, quick.VM.IC.HitRate())
}
