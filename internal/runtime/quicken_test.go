package runtime

import (
	"testing"

	"repro/internal/core"
)

// icBenchProgram is the attribute/global-heavy workload: a tight loop of
// global reads, instance attribute loads and stores, and method calls —
// the dispatch shapes the paper's NameResolution and CFunctionCall
// categories are made of, and exactly what inline caches target.
const icBenchProgram = `
STEP = 3
class Acc:
    def __init__(self):
        self.total = 0
    def bump(self, v):
        self.total = self.total + v
def run(n):
    a = Acc()
    i = 0
    while i < n:
        a.bump(STEP)
        a.total = a.total + STEP
        i = i + 1
    return a.total
print(run(4000))
`

const icBenchWant = "24000\n"

// TestQuickeningShrinksNameResolution: under the attribution core, the
// tier-1 quickened interpreter must shift the Table-II-style split — the
// name-resolution and C-function-call shares shrink versus the cold
// interpreter on the same program, with identical program output. The
// comparison pins NoTier2: superinstruction fusion cuts Dispatch, Stack
// and GC cycles so much that every surviving category's *share* rises,
// which would mask the tier-1 claim this test pins (tier-2's own
// breakdown shift is asserted separately below).
func TestQuickeningShrinksNameResolution(t *testing.T) {
	run := func(noQuicken bool) *Result {
		t.Helper()
		cfg := DefaultConfig(CPython)
		cfg.NoQuicken = noQuicken
		cfg.NoTier2 = true
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run("icbench.py", icBenchProgram)
		if err != nil {
			t.Fatal(err)
		}
		if res.Output != icBenchWant {
			t.Fatalf("noQuicken=%v output %q, want %q", noQuicken, res.Output, icBenchWant)
		}
		return res
	}
	cold := run(true)
	quick := run(false)

	if hits := quick.VM.IC.Hits(); hits == 0 {
		t.Fatalf("quickened run recorded no IC hits: %+v", quick.VM.IC)
	}
	if rate := quick.VM.IC.HitRate(); rate < 0.9 {
		t.Errorf("IC hit rate %.3f, want >= 0.9 on a monomorphic workload (%+v)", rate, quick.VM.IC)
	}
	if cold.VM.IC.Hits() != 0 || cold.VM.IC.Sites != 0 {
		t.Errorf("cold run recorded IC activity: %+v", cold.VM.IC)
	}

	coldNR := cold.Breakdown.Percent(core.NameResolution)
	quickNR := quick.Breakdown.Percent(core.NameResolution)
	if quickNR >= coldNR {
		t.Errorf("NameResolution share did not shrink: cold %.2f%% -> quickened %.2f%%", coldNR, quickNR)
	}
	// The elided DictGetStr/getAttr helper calls are CFunctionCall
	// traffic — the Brunthaler effect the paper attributes to quickening.
	coldCC := cold.Breakdown.Percent(core.CFunctionCall)
	quickCC := quick.Breakdown.Percent(core.CFunctionCall)
	if quickCC >= coldCC {
		t.Errorf("CFunctionCall share did not shrink: cold %.2f%% -> quickened %.2f%%", coldCC, quickCC)
	}
	if qt, ct := quick.Breakdown.TotalCycles(), cold.Breakdown.TotalCycles(); qt >= ct {
		t.Errorf("quickened run not cheaper in cycles: %d >= %d", qt, ct)
	}

	deltas := core.DiffBreakdowns(&cold.Breakdown, &quick.Breakdown)
	top := deltas[0].Category
	if top != core.NameResolution && top != core.CFunctionCall {
		t.Errorf("largest share shrink is %s, want name resolution or C function calls\n%+v",
			deltas[0].Name, deltas[:3])
	}
	t.Logf("cycles: cold %d -> quickened %d (%.1f%% saved); NameResolution %.2f%% -> %.2f%%; CFunctionCall %.2f%% -> %.2f%%; IC hit rate %.3f",
		cold.Breakdown.TotalCycles(), quick.Breakdown.TotalCycles(),
		100*(1-float64(quick.Breakdown.TotalCycles())/float64(cold.Breakdown.TotalCycles())),
		coldNR, quickNR, coldCC, quickCC, quick.VM.IC.HitRate())
}

// TestTier2ShiftsBreakdown: full tier-2 quickening (polymorphic stubs,
// superinstruction fusion, speculative unboxed-int rewrites) must beat
// tier-1 quickening in total cycles on the same workload, and the
// Table-II delta must show an absolute Dispatch+NameResolution cycle
// reduction — the categories the fused dispatches and guard chains exist
// to shrink — with identical program output and no new category.
func TestTier2ShiftsBreakdown(t *testing.T) {
	run := func(noTier2 bool) *Result {
		t.Helper()
		cfg := DefaultConfig(CPython)
		cfg.NoTier2 = noTier2
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run("icbench.py", icBenchProgram)
		if err != nil {
			t.Fatal(err)
		}
		if res.Output != icBenchWant {
			t.Fatalf("noTier2=%v output %q, want %q", noTier2, res.Output, icBenchWant)
		}
		return res
	}
	tier1 := run(true)
	tier2 := run(false)

	if tier2.VM.IC.FusedHits == 0 {
		t.Errorf("tier-2 run recorded no fused-superinstruction hits: %+v", tier2.VM.IC)
	}
	if tier2.VM.IC.IntFastHits == 0 {
		t.Errorf("tier-2 run recorded no unboxed-int fast-path hits: %+v", tier2.VM.IC)
	}
	if tier1.VM.IC.FusedHits != 0 || tier1.VM.IC.IntFastHits != 0 || tier1.VM.IC.PolyHits != 0 {
		t.Errorf("tier-1 run recorded tier-2 activity: %+v", tier1.VM.IC)
	}

	t1, t2 := tier1.Breakdown.TotalCycles(), tier2.Breakdown.TotalCycles()
	if t2 >= t1 {
		t.Errorf("tier-2 not cheaper in cycles than tier-1: %d >= %d", t2, t1)
	}
	dn1 := tier1.Breakdown.Cycles[core.Dispatch] + tier1.Breakdown.Cycles[core.NameResolution]
	dn2 := tier2.Breakdown.Cycles[core.Dispatch] + tier2.Breakdown.Cycles[core.NameResolution]
	if dn2 >= dn1 {
		t.Errorf("Dispatch+NameResolution cycles did not shrink under tier-2: %d >= %d", dn2, dn1)
	}
	deltas := core.DiffBreakdowns(&tier1.Breakdown, &tier2.Breakdown)
	if len(deltas) > int(core.NumCategories) {
		t.Errorf("tier-2 delta grew a new Table-II row: %d categories", len(deltas))
	}
	t.Logf("cycles: tier-1 %d -> tier-2 %d (%.1f%% saved); Dispatch+NameResolution %d -> %d; fused hits %d, intfast hits %d, poly hits %d",
		t1, t2, 100*(1-float64(t2)/float64(t1)), dn1, dn2,
		tier2.VM.IC.FusedHits, tier2.VM.IC.IntFastHits, tier2.VM.IC.PolyHits)
}
