// Package runtime assembles complete MiniPy run-time configurations — the
// paper's four systems under test — and drives the measurement protocol.
//
//   - CPython: bytecode interpreter + reference counting.
//   - PyPyNoJIT: bytecode interpreter + generational GC.
//   - PyPyJIT: tracing JIT + generational GC.
//   - V8Like: eager, bulkier JIT + generational GC (the v8-flavoured
//     runtime used to generalize the findings in Figs 6, 9, 16).
//
// A Runner executes a program with the paper's protocol (2 warmup runs, 3
// measured runs) against a chosen core model and returns the attribution
// breakdown, CPI, cache and GC statistics.
package runtime

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/emit"
	"repro/internal/faults"
	"repro/internal/gc"
	"repro/internal/interp"
	"repro/internal/isa"
	"repro/internal/jit"
	"repro/internal/pycode"
	"repro/internal/pycompile"
	"repro/internal/uarch"
)

// Mode identifies a run-time configuration.
type Mode uint8

// Run-time modes.
const (
	CPython Mode = iota
	PyPyNoJIT
	PyPyJIT
	V8Like
	NumModes
)

var modeNames = [NumModes]string{"cpython", "pypy-nojit", "pypy-jit", "v8like"}

// String returns the mode's name.
func (m Mode) String() string {
	if m < NumModes {
		return modeNames[m]
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// ParseMode resolves a mode name.
func ParseMode(s string) (Mode, error) {
	for m := Mode(0); m < NumModes; m++ {
		if modeNames[m] == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("runtime: unknown mode %q (want cpython, pypy-nojit, pypy-jit, v8like)", s)
}

// UsesJIT reports whether the mode compiles hot loops.
func (m Mode) UsesJIT() bool { return m == PyPyJIT || m == V8Like }

// UsesGenGC reports whether the mode uses the generational collector.
func (m Mode) UsesGenGC() bool { return m != CPython }

// CoreKind selects the simulated core model.
type CoreKind uint8

// Core models.
const (
	// SimpleCore attributes cycles to overhead categories (Fig 4).
	SimpleCore CoreKind = iota
	// OOOCore models the out-of-order pipeline (Figs 7-9).
	OOOCore
	// CountOnly skips timing simulation (fast functional runs).
	CountOnly
)

// Config assembles a full runtime-under-test.
type Config struct {
	Mode Mode
	Core CoreKind
	// Uarch is the machine configuration (Table I defaults).
	Uarch uarch.Config
	// NurseryBytes overrides the generational nursery size (default
	// 4 MB, PyPy's default).
	NurseryBytes uint64
	// Warmups and Measures set the protocol (paper: 2 and 3).
	Warmups  int
	Measures int
	// Stdout receives program output; nil discards it.
	Stdout io.Writer
	// MaxBytecodes bounds each run (safety valve; 0 = none).
	MaxBytecodes uint64
	// Limits is the resource governor: hard caps on steps, heap, call
	// depth, wall-clock time, and output volume. Each cap surfaces as an
	// in-language exception; zero values mean unlimited.
	Limits interp.Limits
	// Faults, when non-nil, arms chaos-mode fault injection on the heap
	// and JIT (soak harnesses; nil in normal operation).
	Faults *faults.Injector
	// NoQuicken disables bytecode quickening and inline caches (the
	// zero value keeps them on, the production default). Differential
	// harnesses use it for cold-interpreter reference legs.
	NoQuicken bool
	// NoTier2 caps quickening at tier 1 (monomorphic inline caches
	// only): no polymorphic stubs, no superinstruction fusion, no
	// speculative unboxed-int rewrites. Ablation harnesses use it to
	// isolate the tier-2 contribution; meaningless with NoQuicken set.
	NoTier2 bool
}

// DefaultNursery is PyPy's default nursery size.
const DefaultNursery = 4 << 20

// DefaultConfig returns the standard configuration for a mode.
func DefaultConfig(mode Mode) Config {
	return Config{
		Mode:         mode,
		Core:         SimpleCore,
		Uarch:        uarch.DefaultConfig(),
		NurseryBytes: DefaultNursery,
		Warmups:      2,
		Measures:     3,
	}
}

// ServingConfig returns the configuration serving layers run jobs under:
// purely functional execution (no timing simulation, no warmups, one
// run). This is what pool workers, reference runs, and soak oracles all
// use — one definition keeps them in lockstep.
func ServingConfig(mode Mode) Config {
	cfg := DefaultConfig(mode)
	cfg.Core = CountOnly
	cfg.Warmups = 0
	cfg.Measures = 1
	return cfg
}

// AttributedServingConfig is ServingConfig with the simple-core
// attribution pipeline armed: the run is slower, but its Result carries
// the paper's full per-category cycle breakdown. Serving layers use it
// for jobs that opt into live overhead attribution.
func AttributedServingConfig(mode Mode) Config {
	cfg := ServingConfig(mode)
	cfg.Core = SimpleCore
	return cfg
}

// Result is the outcome of a measured execution.
type Result struct {
	Mode Mode
	// Breakdown attributes cycles to overhead categories (averaged over
	// the measured runs).
	Breakdown core.Breakdown
	// Cycles and Instrs are per-measured-run averages.
	Cycles uint64
	Instrs uint64
	// CPI is cycles per instruction.
	CPI float64
	// PhaseCPI / PhaseShare report per-phase behaviour (OOO runs).
	PhaseCycles [core.NumPhases]float64
	PhaseInstrs [core.NumPhases]uint64
	// LLCMissRate is the last-level-cache miss rate during measurement.
	LLCMissRate float64
	LLCMisses   uint64
	LLCAccesses uint64
	// L1DMissRate is the L1 data-cache miss rate.
	L1DMissRate float64
	// BranchAccuracy is conditional-branch prediction accuracy (OOO).
	BranchAccuracy float64
	// GC summarizes collector activity over the measured runs.
	GC gc.Stats
	// VM summarizes interpreter activity (whole session, warmups
	// included).
	VM interp.VMStats
	// Heap is the heap's whole-session statistics (warmups included;
	// unlike GC, which is normalized to the measured runs). Supervision
	// layers use it for health probes: refcount balance and
	// free/allocation accounting.
	Heap gc.Stats
	// JIT summarizes compiler activity (whole session).
	JIT *jit.Stats
	// Output is the program output of the final measured run.
	Output string
	// ICSeed is the portable warm-start hint set exported from the VM's
	// quickened state after the run, when the caller opted in via
	// Runner.SetCollectICSeed (the program store's seed-donation path).
	ICSeed *interp.ICSeed
}

// GCShare returns the fraction of cycles attributed to the GC phase.
func (r *Result) GCShare() float64 {
	var t float64
	for _, c := range r.PhaseCycles {
		t += c
	}
	if t == 0 {
		return r.Breakdown.PhasePercent(core.PhaseGC) / 100
	}
	return r.PhaseCycles[core.PhaseGC] / t
}

// Runner executes programs under one configuration. A Runner is not safe
// for concurrent use.
//
// Each execution runs on pristine VM state: RunCode consumes the
// pre-built state left by Reset if one is waiting, and otherwise builds
// its own, so two sequential runs on one Runner behave exactly like runs
// on two fresh Runners. A warm worker pool calls Reset between jobs to
// pay the VM construction cost off the job's critical path.
type Runner struct {
	cfg  Config
	warm *runState
	// Step-slice hook re-armed on every state (SetYield); lives beside
	// the config so Reset-built warm states carry it too.
	yieldQuantum uint64
	yieldFn      func() time.Duration
	// Portable IC seed plumbing (SetICSeed / SetCollectICSeed), re-armed
	// on every state like the yield hook.
	icSeed      *interp.ICSeed
	collectSeed bool
}

// runState is the complete machinery for one execution: engine, VM,
// optional JIT, and core model.
type runState struct {
	eng    *emit.Engine
	vm     *interp.VM
	jit    *jit.JIT
	simple *uarch.SimpleCore
	ooo    *uarch.OOOCore
	out    *outBuffer
	faults *faults.Injector // injector the state was built with
}

// NewRunner validates cfg and returns a Runner.
func NewRunner(cfg Config) (*Runner, error) {
	if err := cfg.Uarch.Validate(); err != nil {
		return nil, err
	}
	if cfg.Warmups < 0 || cfg.Measures < 1 {
		return nil, fmt.Errorf("runtime: need at least one measured run")
	}
	if cfg.NurseryBytes == 0 {
		cfg.NurseryBytes = DefaultNursery
	}
	if err := gc.Validate(heapConfig(cfg)); err != nil {
		return nil, err
	}
	return &Runner{cfg: cfg}, nil
}

// Config returns the runner's configuration.
func (r *Runner) Config() Config { return r.cfg }

// SetLimits replaces the resource limits applied to subsequent runs (a
// worker pool arms per-job budgets on a warm Runner). Takes effect even
// when a pre-built state from Reset is waiting.
func (r *Runner) SetLimits(l interp.Limits) { r.cfg.Limits = l }

// SetFaults installs a chaos-mode fault injector for subsequent runs
// (nil disables). Injectors are stateful and per-execution; soak
// harnesses install a fresh one before each job.
func (r *Runner) SetFaults(in *faults.Injector) { r.cfg.Faults = in }

// SetYield installs a cooperative step-slice hook on subsequent runs:
// every quantum bytecodes the VM calls fn from the governor slow path,
// which may park the goroutine (see interp.VM.SetYield). Takes effect
// even when a pre-built state from Reset is waiting. quantum 0 or fn nil
// disarms.
func (r *Runner) SetYield(quantum uint64, fn func() time.Duration) {
	r.yieldQuantum, r.yieldFn = quantum, fn
	if r.warm != nil {
		r.warm.vm.SetYield(quantum, fn)
	}
}

// SetICSeed arms (nil: disarms) a portable IC seed for subsequent runs:
// the VM warm-starts its inline caches from a donor's observed shapes
// (see interp.ICSeed — advisory only, semantics can never change).
// Takes effect even when a pre-built state from Reset is waiting. Worker
// pools must disarm between jobs: an armed seed binds to whatever
// program runs next.
func (r *Runner) SetICSeed(s *interp.ICSeed) {
	r.icSeed = s
	if r.warm != nil {
		r.warm.vm.SetICSeed(s)
	}
}

// SetCollectICSeed opts subsequent runs into exporting their quickened
// state as a portable IC seed (Result.ICSeed). Off by default: the
// export walks every materialized code unit, which is pure waste for
// callers that discard it.
func (r *Runner) SetCollectICSeed(on bool) { r.collectSeed = on }

// Reset discards any state from a previous execution and pre-builds a
// pristine replacement for the next run. Calling it between jobs gives a
// warm worker two guarantees: no state crosses from one job to the next
// (the old VM, heap, and JIT are dropped wholesale), and the next job
// skips VM construction on its critical path.
func (r *Runner) Reset() { r.warm = r.buildState() }

// buildState constructs fresh execution state from the configuration.
func (r *Runner) buildState() *runState {
	cfg := r.cfg
	st := &runState{out: &outBuffer{tee: cfg.Stdout}, faults: cfg.Faults}
	st.eng = emit.NewEngine(isa.NullSink{})
	st.vm = interp.New(st.eng, heapConfig(cfg), st.out)
	st.vm.SetQuicken(!cfg.NoQuicken)
	if cfg.NoTier2 {
		st.vm.SetPolyICs(false)
		st.vm.SetFusion(false)
		st.vm.SetIntFast(false)
	}
	st.vm.MaxBytecodes = cfg.MaxBytecodes
	st.vm.SetLimits(cfg.Limits)
	st.vm.SetYield(r.yieldQuantum, r.yieldFn)
	st.vm.SetICSeed(r.icSeed)
	st.vm.Heap.SetFaults(cfg.Faults)

	switch cfg.Mode {
	case PyPyJIT:
		jc := jit.DefaultConfig()
		jc.Faults = cfg.Faults
		st.jit = jit.New(st.vm, jc)
	case V8Like:
		jc := jit.V8LikeConfig()
		jc.Faults = cfg.Faults
		st.jit = jit.New(st.vm, jc)
	}

	switch cfg.Core {
	case SimpleCore:
		st.simple = uarch.NewSimpleCore(cfg.Uarch)
		st.eng.SetSink(st.simple)
	case OOOCore:
		st.ooo = uarch.NewOOOCore(cfg.Uarch)
		st.eng.SetSink(st.ooo)
	case CountOnly:
		st.eng.SetSink(isa.NullSink{})
	}
	return st
}

// takeState returns the execution state for one RunCode call: the
// pre-built pristine state if Reset left one (and it still matches the
// configuration), else a fresh build.
func (r *Runner) takeState() *runState {
	st := r.warm
	r.warm = nil
	if st == nil || st.faults != r.cfg.Faults {
		return r.buildState()
	}
	// Re-arm the parts that may have changed since the state was built.
	st.out.tee = r.cfg.Stdout
	st.vm.MaxBytecodes = r.cfg.MaxBytecodes
	st.vm.SetLimits(r.cfg.Limits)
	st.vm.SetYield(r.yieldQuantum, r.yieldFn)
	st.vm.SetICSeed(r.icSeed)
	return st
}

// heapConfig derives the heap configuration a Config implies.
func heapConfig(cfg Config) gc.Config {
	if cfg.Mode.UsesGenGC() {
		return gc.DefaultGenConfig(cfg.NurseryBytes)
	}
	return gc.DefaultRefCountConfig()
}

// discard is a sink for program output when none is wanted.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// outBuffer collects the final run's output.
type outBuffer struct {
	buf  []byte
	tee  io.Writer
	keep bool
}

func (o *outBuffer) Write(p []byte) (int, error) {
	if o.keep {
		o.buf = append(o.buf, p...)
	}
	if o.tee != nil {
		return o.tee.Write(p)
	}
	return len(p), nil
}

// Run compiles and executes src under the measurement protocol.
func (r *Runner) Run(name, src string) (*Result, error) {
	code, err := pycompile.CompileSource(name, src)
	if err != nil {
		return nil, err
	}
	return r.RunCode(code)
}

// RunCode executes a compiled program under the measurement protocol: the
// VM, heap, JIT, and caches persist across runs (so warmup trains the JIT
// and warms the caches); statistics cover only the measured runs.
func (r *Runner) RunCode(code *pycode.Code) (*Result, error) {
	cfg := r.cfg
	st := r.takeState()
	vm, theJIT, simple, ooo, out := st.vm, st.jit, st.simple, st.ooo, st.out

	// Warmup runs: train JIT counters, caches, and predictors.
	for i := 0; i < cfg.Warmups; i++ {
		vm.ResetRand()
		if err := vm.RunCode(code); err != nil {
			return nil, fmt.Errorf("warmup run %d: %w", i+1, err)
		}
	}

	// Reset statistics, keeping all learned state warm.
	if simple != nil {
		simple.ResetStats()
	}
	if ooo != nil {
		ooo.ResetStats()
	}
	gcBefore := vm.Heap.Stats

	// Measured runs.
	for i := 0; i < cfg.Measures; i++ {
		vm.ResetRand()
		out.keep = i == cfg.Measures-1
		out.buf = out.buf[:0]
		if err := vm.RunCode(code); err != nil {
			return nil, fmt.Errorf("measured run %d: %w", i+1, err)
		}
	}

	res := &Result{Mode: cfg.Mode, Output: string(out.buf)}
	n := uint64(cfg.Measures)
	switch {
	case simple != nil:
		bd := *simple.Breakdown()
		bd.Scale(n)
		res.Breakdown = bd
		res.Cycles = bd.TotalCycles()
		res.Instrs = bd.TotalInstrs()
		res.CPI = bd.CPI()
		h := simple.Hierarchy()
		res.LLCMissRate = h.L3.Stats.MissRate()
		res.LLCMisses = h.L3.Stats.Misses / n
		res.LLCAccesses = h.L3.Stats.Accesses / n
		res.L1DMissRate = h.L1D.Stats.MissRate()
		for p := core.Phase(0); p < core.NumPhases; p++ {
			res.PhaseCycles[p] = float64(bd.PhaseCycles[p])
			res.PhaseInstrs[p] = bd.PhaseInstrs[p]
		}
	case ooo != nil:
		res.Cycles = ooo.Cycles() / n
		res.Instrs = ooo.Instrs() / n
		res.CPI = ooo.CPI()
		bd := *ooo.Breakdown()
		bd.Scale(n)
		res.Breakdown = bd
		h := ooo.Hierarchy()
		res.LLCMissRate = h.L3.Stats.MissRate()
		res.LLCMisses = h.L3.Stats.Misses / n
		res.LLCAccesses = h.L3.Stats.Accesses / n
		res.L1DMissRate = h.L1D.Stats.MissRate()
		res.BranchAccuracy = ooo.Predictor().Stats.CondAccuracy()
		for p := core.Phase(0); p < core.NumPhases; p++ {
			res.PhaseCycles[p] = ooo.PhaseCycles(p) / float64(n)
			res.PhaseInstrs[p] = ooo.PhaseInstrs(p) / n
		}
	}

	// GC activity during the measured runs only.
	after := vm.Heap.Stats
	res.GC = gc.Stats{
		Allocations:   (after.Allocations - gcBefore.Allocations) / n,
		BytesAlloc:    (after.BytesAlloc - gcBefore.BytesAlloc) / n,
		MinorGCs:      (after.MinorGCs - gcBefore.MinorGCs) / n,
		MajorGCs:      (after.MajorGCs - gcBefore.MajorGCs) / n,
		BytesCopied:   (after.BytesCopied - gcBefore.BytesCopied) / n,
		Survivors:     (after.Survivors - gcBefore.Survivors) / n,
		Frees:         (after.Frees - gcBefore.Frees) / n,
		BarrierHits:   (after.BarrierHits - gcBefore.BarrierHits) / n,
		BigAllocs:     (after.BigAllocs - gcBefore.BigAllocs) / n,
		FreelistReuse: (after.FreelistReuse - gcBefore.FreelistReuse) / n,
	}
	res.VM = vm.StatsSnapshot().VM
	res.Heap = after
	if r.collectSeed {
		res.ICSeed = vm.ExportICSeed(code)
	}
	if theJIT != nil {
		st := theJIT.StatsSnapshot()
		res.JIT = &st
	}
	return res, nil
}

// RunFunctional executes the program once with no simulation, returning
// its output (for correctness tests and example tooling).
func RunFunctional(mode Mode, name, src string, stdout io.Writer) error {
	cfg := DefaultConfig(mode)
	cfg.Core = CountOnly
	cfg.Warmups = 0
	cfg.Measures = 1
	cfg.Stdout = stdout
	r, err := NewRunner(cfg)
	if err != nil {
		return err
	}
	_, err = r.Run(name, src)
	return err
}
