package runtime

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/uarch"
)

const loopProgram = `
def work(n):
    acc = 0
    for i in xrange(n):
        acc += i & 255
    return acc

print(work(2000))
`

func TestParseMode(t *testing.T) {
	for m := Mode(0); m < NumModes; m++ {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("round trip %s failed: %v", m, err)
		}
	}
	if _, err := ParseMode("nope"); err == nil {
		t.Error("bad mode accepted")
	}
}

func TestModePredicates(t *testing.T) {
	if CPython.UsesJIT() || CPython.UsesGenGC() {
		t.Error("cpython predicates wrong")
	}
	if !PyPyJIT.UsesJIT() || !PyPyJIT.UsesGenGC() {
		t.Error("pypy-jit predicates wrong")
	}
	if PyPyNoJIT.UsesJIT() || !PyPyNoJIT.UsesGenGC() {
		t.Error("pypy-nojit predicates wrong")
	}
}

func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run("test", loopProgram)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSimpleCoreResult(t *testing.T) {
	cfg := DefaultConfig(CPython)
	cfg.Core = SimpleCore
	res := run(t, cfg)
	if res.Output != "250008\n" {
		t.Errorf("output %q", res.Output)
	}
	if res.Cycles == 0 || res.Instrs == 0 || res.CPI <= 0 {
		t.Errorf("timing empty: %+v", res)
	}
	if got := res.Breakdown.TotalCycles(); got != res.Cycles {
		t.Errorf("breakdown total %d != cycles %d", got, res.Cycles)
	}
	if res.Breakdown.Percent(core.Dispatch) <= 0 {
		t.Error("no dispatch attribution")
	}
}

func TestOOOCoreResult(t *testing.T) {
	cfg := DefaultConfig(PyPyJIT)
	cfg.Core = OOOCore
	res := run(t, cfg)
	if res.Output != "250008\n" {
		t.Errorf("output %q", res.Output)
	}
	if res.CPI <= 0 || res.BranchAccuracy <= 0.5 {
		t.Errorf("OOO stats off: CPI=%v acc=%v", res.CPI, res.BranchAccuracy)
	}
	if res.JIT == nil || res.JIT.TracesCompiled == 0 {
		t.Error("JIT inactive under pypy-jit")
	}
	if res.PhaseInstrs[core.PhaseJITCode] == 0 {
		t.Error("no compiled-phase instructions")
	}
}

func TestMeasurementAveraging(t *testing.T) {
	one := DefaultConfig(CPython)
	one.Core = SimpleCore
	one.Warmups, one.Measures = 1, 1
	three := one
	three.Measures = 3
	r1 := run(t, one)
	r3 := run(t, three)
	// Per-run averages must be comparable (warm caches make later runs
	// slightly cheaper, so allow a loose band).
	ratio := float64(r3.Cycles) / float64(r1.Cycles)
	if ratio < 0.8 || ratio > 1.2 {
		t.Errorf("per-run average off: %d vs %d (ratio %.2f)", r3.Cycles, r1.Cycles, ratio)
	}
}

func TestWarmupTrainsJIT(t *testing.T) {
	cold := DefaultConfig(PyPyJIT)
	cold.Core = CountOnly
	cold.Warmups, cold.Measures = 0, 1
	warm := cold
	warm.Warmups = 2
	rCold := run(t, cold)
	rWarm := run(t, warm)
	if rWarm.JIT.CompiledIters <= rCold.JIT.CompiledIters {
		t.Errorf("warmup did not increase compiled execution: %d vs %d",
			rWarm.JIT.CompiledIters, rCold.JIT.CompiledIters)
	}
}

func TestModesAgreeOnOutput(t *testing.T) {
	var outputs []string
	for m := Mode(0); m < NumModes; m++ {
		cfg := DefaultConfig(m)
		cfg.Core = CountOnly
		cfg.Warmups, cfg.Measures = 0, 1
		res := run(t, cfg)
		outputs = append(outputs, res.Output)
	}
	for i := 1; i < len(outputs); i++ {
		if outputs[i] != outputs[0] {
			t.Errorf("mode %s output %q != %q", Mode(i), outputs[i], outputs[0])
		}
	}
}

func TestRunFunctional(t *testing.T) {
	var out strings.Builder
	if err := RunFunctional(CPython, "t", "print(6 * 7)\n", &out); err != nil {
		t.Fatal(err)
	}
	if out.String() != "42\n" {
		t.Errorf("output %q", out.String())
	}
}

func TestInvalidConfigsRejected(t *testing.T) {
	bad := DefaultConfig(CPython)
	bad.Measures = 0
	if _, err := NewRunner(bad); err == nil {
		t.Error("zero measures accepted")
	}
	bad2 := DefaultConfig(CPython)
	bad2.Uarch.L1D.SizeBytes = 7777 // not divisible
	if _, err := NewRunner(bad2); err == nil {
		t.Error("invalid cache accepted")
	}
	_ = uarch.DefaultConfig()
}

func TestCompileErrorSurfaces(t *testing.T) {
	r, err := NewRunner(DefaultConfig(CPython))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run("bad", "def broken(:\n    pass\n"); err == nil {
		t.Error("compile error not surfaced")
	}
	if _, err := r.Run("raise", "x = [1]\nprint(x[5])\n"); err == nil {
		t.Error("runtime error not surfaced")
	}
}
