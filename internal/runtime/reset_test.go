package runtime

import (
	"io"
	"reflect"
	"testing"

	"repro/internal/interp"
)

// resetProgram exercises allocation, GC traffic, arithmetic, and (for JIT
// modes) a hot loop, so any state bleeding between runs shows up in the
// output or the statistics.
const resetProgram = `
keep = []
acc = 0
for i in xrange(3000):
    acc = acc + i * 3 & 1023
    t = [i, i + 1]
    if i % 700 == 0:
        keep.append(t)
print(acc)
print(len(keep))
`

// runFresh executes the program on a brand-new Runner.
func runFresh(t *testing.T, cfg Config) *Result {
	t.Helper()
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run("reset.py", resetProgram)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// sameResult compares everything deterministic about two results.
func sameResult(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if want.Output != got.Output {
		t.Errorf("%s: output %q != %q", label, got.Output, want.Output)
	}
	if !reflect.DeepEqual(want.VM, got.VM) {
		t.Errorf("%s: VM stats %+v != %+v", label, got.VM, want.VM)
	}
	if !reflect.DeepEqual(want.GC, got.GC) {
		t.Errorf("%s: GC stats %+v != %+v", label, got.GC, want.GC)
	}
	if !reflect.DeepEqual(want.Heap, got.Heap) {
		t.Errorf("%s: heap stats %+v != %+v", label, got.Heap, want.Heap)
	}
	if (want.JIT == nil) != (got.JIT == nil) {
		t.Fatalf("%s: JIT stats presence mismatch", label)
	}
	if want.JIT != nil && !reflect.DeepEqual(*want.JIT, *got.JIT) {
		t.Errorf("%s: JIT stats %+v != %+v", label, *got.JIT, *want.JIT)
	}
}

// TestResetMatchesFreshRunners: two sequential runs on one Runner — with
// and without an explicit Reset between them — produce byte- and
// stat-identical results to two fresh Runners, for every mode. This is
// the warm worker pool's reuse contract: no observable state crosses
// from one job to the next.
func TestResetMatchesFreshRunners(t *testing.T) {
	for m := Mode(0); m < NumModes; m++ {
		t.Run(m.String(), func(t *testing.T) {
			cfg := DefaultConfig(m)
			cfg.Core = CountOnly
			cfg.Warmups = 0
			cfg.Measures = 1
			cfg.NurseryBytes = 64 << 10 // force collections
			cfg.Stdout = io.Discard

			first := runFresh(t, cfg)
			second := runFresh(t, cfg)
			sameResult(t, "fresh-vs-fresh", first, second)

			warm, err := NewRunner(cfg)
			if err != nil {
				t.Fatal(err)
			}
			a, err := warm.Run("reset.py", resetProgram)
			if err != nil {
				t.Fatal(err)
			}
			warm.Reset() // pre-build pristine state off the critical path
			b, err := warm.Run("reset.py", resetProgram)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "warm run 1", first, a)
			sameResult(t, "warm run 2 (after Reset)", first, b)

			// Without Reset the runner still builds pristine state.
			c, err := warm.Run("reset.py", resetProgram)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "warm run 3 (no Reset)", first, c)
		})
	}
}

// TestSetLimitsAppliesToWarmState: limits installed after Reset still
// govern the next run (the pool arms per-job budgets on warm workers).
func TestSetLimitsAppliesToWarmState(t *testing.T) {
	cfg := DefaultConfig(CPython)
	cfg.Core = CountOnly
	cfg.Warmups = 0
	cfg.Measures = 1
	cfg.Stdout = io.Discard
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Reset() // warm state built with unlimited budgets
	r.SetLimits(interp.Limits{MaxSteps: 1000})
	_, err = r.Run("hot.py", "i = 0\nwhile True:\n    i = i + 1\n")
	if err == nil {
		t.Fatal("step budget armed after Reset did not fire")
	}
}
