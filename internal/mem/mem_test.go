package mem

import (
	"testing"
	"testing/quick"
)

func TestRegionAllocAlignment(t *testing.T) {
	r := NewRegion("t", 0x1000, 0x1000)
	a1, ok := r.Alloc(10, 16)
	if !ok || a1%16 != 0 {
		t.Fatalf("misaligned: %#x", a1)
	}
	a2, ok := r.Alloc(10, 16)
	if !ok || a2 <= a1 {
		t.Fatalf("non-monotonic: %#x then %#x", a1, a2)
	}
	if !r.Contains(a1) || r.Contains(0x2001) {
		t.Error("contains wrong")
	}
	if r.Used() == 0 || r.Avail() >= r.Size() {
		t.Error("usage accounting wrong")
	}
}

func TestRegionExhaustion(t *testing.T) {
	r := NewRegion("t", 0, 64)
	if _, ok := r.Alloc(65, 1); ok {
		t.Error("over-allocation succeeded")
	}
	if _, ok := r.Alloc(64, 1); !ok {
		t.Error("exact fit failed")
	}
	if _, ok := r.Alloc(1, 1); ok {
		t.Error("allocation from full region succeeded")
	}
	r.Reset()
	if _, ok := r.Alloc(64, 1); !ok {
		t.Error("reset did not rewind")
	}
}

func TestMustAllocPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Error("MustAlloc did not panic on exhaustion")
		}
		if _, ok := r.(*ExhaustedError); !ok {
			t.Errorf("panic value %T, want *ExhaustedError", r)
		}
	}()
	r := NewRegion("t", 0, 8)
	r.MustAlloc(16, 1)
}

func TestAllocErrReturnsTypedError(t *testing.T) {
	r := NewRegion("small", 0, 32)
	if _, err := r.AllocErr(16, 16); err != nil {
		t.Fatalf("fitting alloc failed: %v", err)
	}
	_, err := r.AllocErr(64, 16)
	ex, ok := err.(*ExhaustedError)
	if !ok {
		t.Fatalf("error %T, want *ExhaustedError", err)
	}
	if ex.Region != "small" || ex.Want != 64 {
		t.Errorf("bad error fields: %+v", ex)
	}
}

func TestFreeListAllocErrAndLiveBytes(t *testing.T) {
	fl := NewFreeList(NewRegion("t", 0x1000, 1<<20))
	a, _, err := fl.AllocErr(24)
	if err != nil {
		t.Fatal(err)
	}
	if got := fl.LiveBytes(); got != 32 { // 24 rounds to the 32-byte class
		t.Errorf("LiveBytes after alloc = %d, want 32", got)
	}
	fl.Free(a, 24)
	if got := fl.LiveBytes(); got != 0 {
		t.Errorf("LiveBytes after free = %d, want 0", got)
	}
	if _, reused, _ := fl.AllocErr(24); !reused {
		t.Error("free-list block not reused")
	}
	if got := fl.LiveBytes(); got != 32 {
		t.Errorf("LiveBytes after reuse = %d, want 32", got)
	}

	tiny := NewFreeList(NewRegion("tiny", 0, 16))
	if _, _, err := tiny.AllocErr(64); err == nil {
		t.Error("AllocErr on full region returned nil error")
	}
}

func TestFreeListReusesLIFO(t *testing.T) {
	fl := NewFreeList(NewRegion("t", 0x1000, 1<<20))
	a, reused := fl.Alloc(24)
	if reused {
		t.Error("first alloc cannot be reuse")
	}
	b, _ := fl.Alloc(24)
	fl.Free(a, 24)
	fl.Free(b, 24)
	c, reused := fl.Alloc(24)
	if !reused || c != b {
		t.Errorf("expected LIFO reuse of %#x, got %#x (reused=%v)", b, c, reused)
	}
	d, reused := fl.Alloc(24)
	if !reused || d != a {
		t.Errorf("expected reuse of %#x, got %#x", a, d)
	}
}

// Property: live blocks handed out by the free list never overlap.
func TestFreeListNoOverlapProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		fl := NewFreeList(NewRegion("t", 0x1000, 1<<22))
		type blk struct{ addr, size uint64 }
		var live []blk
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				// free a pseudo-random live block
				i := int(op) % len(live)
				fl.Free(live[i].addr, live[i].size)
				live = append(live[:i], live[i+1:]...)
				continue
			}
			size := uint64(op%100) + 1
			addr, _ := fl.Alloc(size)
			live = append(live, blk{addr, size})
		}
		for i := 0; i < len(live); i++ {
			for j := i + 1; j < len(live); j++ {
				a, b := live[i], live[j]
				if a.addr < b.addr+b.size && b.addr < a.addr+a.size {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCStack(t *testing.T) {
	s := NewCStack(0x1000)
	p1 := s.Push(64)
	if p1 != 0x1000-64 {
		t.Errorf("push: %#x", p1)
	}
	p2 := s.Push(32)
	if p2 != p1-32 || s.Depth() != 96 {
		t.Errorf("second push %#x depth %d", p2, s.Depth())
	}
	s.Pop(32)
	if s.SP() != p1 {
		t.Errorf("pop mismatch: %#x != %#x", s.SP(), p1)
	}
	s.Reset()
	if s.Depth() != 0 {
		t.Error("reset did not empty")
	}
}
