package mem

import (
	"testing"
	"testing/quick"
)

func TestRegionAllocAlignment(t *testing.T) {
	r := NewRegion("t", 0x1000, 0x1000)
	a1, ok := r.Alloc(10, 16)
	if !ok || a1%16 != 0 {
		t.Fatalf("misaligned: %#x", a1)
	}
	a2, ok := r.Alloc(10, 16)
	if !ok || a2 <= a1 {
		t.Fatalf("non-monotonic: %#x then %#x", a1, a2)
	}
	if !r.Contains(a1) || r.Contains(0x2001) {
		t.Error("contains wrong")
	}
	if r.Used() == 0 || r.Avail() >= r.Size() {
		t.Error("usage accounting wrong")
	}
}

func TestRegionExhaustion(t *testing.T) {
	r := NewRegion("t", 0, 64)
	if _, ok := r.Alloc(65, 1); ok {
		t.Error("over-allocation succeeded")
	}
	if _, ok := r.Alloc(64, 1); !ok {
		t.Error("exact fit failed")
	}
	if _, ok := r.Alloc(1, 1); ok {
		t.Error("allocation from full region succeeded")
	}
	r.Reset()
	if _, ok := r.Alloc(64, 1); !ok {
		t.Error("reset did not rewind")
	}
}

func TestMustAllocPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAlloc did not panic on exhaustion")
		}
	}()
	r := NewRegion("t", 0, 8)
	r.MustAlloc(16, 1)
}

func TestFreeListReusesLIFO(t *testing.T) {
	fl := NewFreeList(NewRegion("t", 0x1000, 1<<20))
	a, reused := fl.Alloc(24)
	if reused {
		t.Error("first alloc cannot be reuse")
	}
	b, _ := fl.Alloc(24)
	fl.Free(a, 24)
	fl.Free(b, 24)
	c, reused := fl.Alloc(24)
	if !reused || c != b {
		t.Errorf("expected LIFO reuse of %#x, got %#x (reused=%v)", b, c, reused)
	}
	d, reused := fl.Alloc(24)
	if !reused || d != a {
		t.Errorf("expected reuse of %#x, got %#x", a, d)
	}
}

// Property: live blocks handed out by the free list never overlap.
func TestFreeListNoOverlapProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		fl := NewFreeList(NewRegion("t", 0x1000, 1<<22))
		type blk struct{ addr, size uint64 }
		var live []blk
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				// free a pseudo-random live block
				i := int(op) % len(live)
				fl.Free(live[i].addr, live[i].size)
				live = append(live[:i], live[i+1:]...)
				continue
			}
			size := uint64(op%100) + 1
			addr, _ := fl.Alloc(size)
			live = append(live, blk{addr, size})
		}
		for i := 0; i < len(live); i++ {
			for j := i + 1; j < len(live); j++ {
				a, b := live[i], live[j]
				if a.addr < b.addr+b.size && b.addr < a.addr+a.size {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCStack(t *testing.T) {
	s := NewCStack(0x1000)
	p1 := s.Push(64)
	if p1 != 0x1000-64 {
		t.Errorf("push: %#x", p1)
	}
	p2 := s.Push(32)
	if p2 != p1-32 || s.Depth() != 96 {
		t.Errorf("second push %#x depth %d", p2, s.Depth())
	}
	s.Pop(32)
	if s.SP() != p1 {
		t.Errorf("pop mismatch: %#x != %#x", s.SP(), p1)
	}
	s.Reset()
	if s.Depth() != 0 {
		t.Error("reset did not empty")
	}
}
