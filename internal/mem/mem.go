// Package mem lays out the simulated address space shared by the virtual
// machines and the microarchitecture simulator.
//
// Nothing is ever stored at these addresses — the VM keeps its real state
// in Go values — but every simulated object, VM frame, code region, and C
// stack slot is assigned an address here so that the cache hierarchy sees a
// realistic reference stream. The layout loosely mirrors a Linux x86-64
// process image running CPython: low text segments for the interpreter and
// C libraries, a JIT code arena, a data segment for globals and constants,
// a large heap, and a downward-growing C stack.
package mem

import "fmt"

// Fixed region bases. Regions are spaced far apart so they never collide
// even under the largest sweep configurations.
const (
	// InterpCodeBase is the text segment of the interpreter binary.
	InterpCodeBase uint64 = 0x0000_0000_0040_0000
	// CLibCodeBase is the text segment of modeled C libraries (pickle,
	// json, regex engines, libm, ...).
	CLibCodeBase uint64 = 0x0000_0000_00c0_0000
	// JITCodeBase is the arena where compiled traces are placed.
	JITCodeBase uint64 = 0x0000_0000_0400_0000
	// DataBase holds interpreter globals, type objects, and the
	// co_consts arrays of compiled code objects.
	DataBase uint64 = 0x0000_0000_0800_0000
	// HeapBase is the start of the simulated Python heap. The nursery,
	// old space, and refcount arenas are carved from it.
	HeapBase uint64 = 0x0000_0001_0000_0000
	// HeapSpan is the maximum span of the Python heap.
	HeapSpan uint64 = 0x0000_0007_0000_0000
	// CStackTop is the top of the downward-growing C stack used by the
	// C-calling-convention model.
	CStackTop uint64 = 0x0000_7fff_ffff_f000
)

// ExhaustedError reports that a region could not satisfy an allocation.
// Callers that allocate on behalf of guest programs (the simulated Python
// heap) map it to an in-language MemoryError; infrastructure regions sized
// far beyond any realistic demand treat it as an internal fault.
type ExhaustedError struct {
	Region string
	Size   uint64
	Used   uint64
	Want   uint64
}

func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("mem: region %s exhausted (size %d, used %d, want %d)",
		e.Region, e.Size, e.Used, e.Want)
}

// Region is a contiguous range of simulated addresses with a bump pointer.
type Region struct {
	name string
	base uint64
	size uint64
	cur  uint64
}

// NewRegion returns a region covering [base, base+size).
func NewRegion(name string, base, size uint64) *Region {
	return &Region{name: name, base: base, size: size, cur: base}
}

// Name returns the region's name.
func (r *Region) Name() string { return r.name }

// Base returns the first address of the region.
func (r *Region) Base() uint64 { return r.base }

// Size returns the region's capacity in bytes.
func (r *Region) Size() uint64 { return r.size }

// End returns one past the last address of the region.
func (r *Region) End() uint64 { return r.base + r.size }

// Used returns the number of bytes allocated so far.
func (r *Region) Used() uint64 { return r.cur - r.base }

// Avail returns the number of bytes remaining.
func (r *Region) Avail() uint64 { return r.size - r.Used() }

// Contains reports whether addr falls inside the region.
func (r *Region) Contains(addr uint64) bool {
	return addr >= r.base && addr < r.base+r.size
}

// Alloc bump-allocates n bytes aligned to align (a power of two) and
// returns the address, or 0 and false if the region is full.
func (r *Region) Alloc(n, align uint64) (uint64, bool) {
	if align == 0 {
		align = 1
	}
	p := (r.cur + align - 1) &^ (align - 1)
	if p+n > r.base+r.size {
		return 0, false
	}
	r.cur = p + n
	return p, true
}

// AllocErr is Alloc with a typed error on exhaustion, for callers that can
// recover (the simulated Python heap maps it to MemoryError).
func (r *Region) AllocErr(n, align uint64) (uint64, error) {
	p, ok := r.Alloc(n, align)
	if !ok {
		return 0, &ExhaustedError{Region: r.name, Size: r.size, Used: r.Used(), Want: n}
	}
	return p, nil
}

// MustAlloc is Alloc but panics on exhaustion — with a typed
// *ExhaustedError, so a recover boundary can report it structurally. Used
// for regions sized far beyond any realistic demand (code, data).
func (r *Region) MustAlloc(n, align uint64) uint64 {
	p, err := r.AllocErr(n, align)
	if err != nil {
		panic(err)
	}
	return p
}

// Reset rewinds the bump pointer to the region base.
func (r *Region) Reset() { r.cur = r.base }

// SetCur repositions the bump pointer; addr must lie inside the region.
func (r *Region) SetCur(addr uint64) {
	if addr < r.base || addr > r.base+r.size {
		panic(fmt.Sprintf("mem: SetCur(%#x) outside region %s [%#x,%#x)",
			addr, r.name, r.base, r.base+r.size))
	}
	r.cur = addr
}

// Cur returns the current bump pointer.
func (r *Region) Cur() uint64 { return r.cur }

// FreeList is a segregated-fit free-list allocator layered on a Region,
// modeling CPython's pymalloc behaviour: freed blocks are reused
// most-recently-freed-first, which keeps the reference stream cache-hot.
type FreeList struct {
	region  *Region
	classes map[uint64][]uint64 // size class -> LIFO of free addresses
	// Reused counts allocations satisfied from the free list.
	Reused uint64
	// Fresh counts allocations satisfied by bump allocation.
	Fresh uint64
	// FreeBytes is the total size of blocks currently on the free list;
	// region.Used() - FreeBytes is the exact live footprint of the
	// allocator, independent of how callers account payload sizes.
	FreeBytes uint64
}

// NewFreeList returns a free-list allocator over region.
func NewFreeList(region *Region) *FreeList {
	return &FreeList{region: region, classes: make(map[uint64][]uint64)}
}

// sizeClass rounds n up to its allocation class (16-byte granules, like
// pymalloc).
func sizeClass(n uint64) uint64 {
	if n == 0 {
		n = 1
	}
	return (n + 15) &^ 15
}

// Alloc returns an address for an n-byte block, preferring recently freed
// blocks of the same size class. The second result reports whether the
// block was reused from the free list.
func (f *FreeList) Alloc(n uint64) (addr uint64, reused bool) {
	addr, reused, err := f.AllocErr(n)
	if err != nil {
		panic(err)
	}
	return addr, reused
}

// AllocErr is Alloc with a typed *ExhaustedError instead of a panic when
// the backing region is full, so the heap can surface MemoryError.
func (f *FreeList) AllocErr(n uint64) (addr uint64, reused bool, err error) {
	c := sizeClass(n)
	if lst := f.classes[c]; len(lst) > 0 {
		addr = lst[len(lst)-1]
		f.classes[c] = lst[:len(lst)-1]
		f.Reused++
		f.FreeBytes -= c
		return addr, true, nil
	}
	addr, err = f.region.AllocErr(c, 16)
	if err != nil {
		return 0, false, err
	}
	f.Fresh++
	return addr, false, nil
}

// Free returns the n-byte block at addr to the free list.
func (f *FreeList) Free(addr, n uint64) {
	c := sizeClass(n)
	f.classes[c] = append(f.classes[c], addr)
	f.FreeBytes += c
}

// LiveBytes returns the allocator's exact live footprint: bytes handed out
// and not yet freed (size-class granularity).
func (f *FreeList) LiveBytes() uint64 { return f.region.Used() - f.FreeBytes }

// Reset drops all free-list state and rewinds the region.
func (f *FreeList) Reset() {
	f.classes = make(map[uint64][]uint64)
	f.Reused, f.Fresh = 0, 0
	f.FreeBytes = 0
	f.region.Reset()
}

// Region returns the backing region.
func (f *FreeList) Region() *Region { return f.region }

// CStack models the downward-growing C stack used by the C-calling-
// convention cost model. Push returns the new frame's base address.
type CStack struct {
	top uint64
	sp  uint64
}

// NewCStack returns a C stack whose first frame starts at top.
func NewCStack(top uint64) *CStack {
	return &CStack{top: top, sp: top}
}

// Push reserves n bytes and returns the new stack pointer.
func (s *CStack) Push(n uint64) uint64 {
	s.sp -= n
	return s.sp
}

// Pop releases n bytes.
func (s *CStack) Pop(n uint64) { s.sp += n }

// SP returns the current stack pointer.
func (s *CStack) SP() uint64 { return s.sp }

// Depth returns the number of bytes currently on the stack.
func (s *CStack) Depth() uint64 { return s.top - s.sp }

// Reset empties the stack.
func (s *CStack) Reset() { s.sp = s.top }
