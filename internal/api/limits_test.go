package api

import (
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"
	"time"
)

func TestNormalize(t *testing.T) {
	cases := []struct {
		name    string
		in      Limits
		wantErr string // substring of the error; "" means valid
	}{
		{"zero value", Limits{}, ""},
		{"all set", Limits{MaxSteps: 1, MaxHeapBytes: 1, MaxRecursionDepth: 1,
			Deadline: time.Second, MaxOutputBytes: 1}, ""},
		{"at deadline cap", Limits{Deadline: MaxDeadline}, ""},
		{"negative deadline", Limits{Deadline: -time.Second}, "deadlineMs must be >= 0"},
		{"over deadline cap", Limits{Deadline: MaxDeadline + 1}, "deadlineMs must be <="},
		{"negative recursion", Limits{MaxRecursionDepth: -1}, "maxRecursionDepth must be >= 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			norm, err := tc.in.Normalize()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Normalize(%+v) = %v, want nil", tc.in, err)
				}
				if norm != tc.in {
					t.Fatalf("Normalize changed a valid value: %+v -> %+v", tc.in, norm)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Normalize(%+v) error %v, want containing %q", tc.in, err, tc.wantErr)
			}
			var apiErr *Error
			if !errors.As(err, &apiErr) || apiErr.Code != CodeInvalidLimits {
				t.Fatalf("Normalize error %#v, want *Error with code %s", err, CodeInvalidLimits)
			}
		})
	}
}

func TestWithDefaults(t *testing.T) {
	d := Limits{MaxSteps: 100, MaxHeapBytes: 200, MaxRecursionDepth: 30,
		Deadline: 4 * time.Second, MaxOutputBytes: 500}

	if got := (Limits{}).WithDefaults(d); got != d {
		t.Fatalf("zero value WithDefaults = %+v, want defaults %+v", got, d)
	}

	set := Limits{MaxSteps: 1, MaxHeapBytes: 2, MaxRecursionDepth: 3,
		Deadline: time.Second, MaxOutputBytes: 5}
	if got := set.WithDefaults(d); got != set {
		t.Fatalf("fully-set WithDefaults = %+v, want unchanged %+v", got, set)
	}

	// Defense in depth: non-positive signed fields count as unset, so a
	// negative Deadline that slipped past validation can never produce a
	// non-positive watchdog horizon.
	neg := Limits{Deadline: -time.Second, MaxRecursionDepth: -1}
	got := neg.WithDefaults(d)
	if got.Deadline != d.Deadline || got.MaxRecursionDepth != d.MaxRecursionDepth {
		t.Fatalf("negative signed fields WithDefaults = %+v, want defaults inherited", got)
	}
}

func TestLimitsJSONRoundTrip(t *testing.T) {
	in := Limits{MaxSteps: 7, MaxHeapBytes: 1 << 20, MaxRecursionDepth: 40,
		Deadline: 1500 * time.Millisecond, MaxOutputBytes: 9}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if want := `"deadlineMs":1500`; !strings.Contains(string(b), want) {
		t.Fatalf("wire form %s missing %s", b, want)
	}
	var out Limits
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip %+v -> %s -> %+v", in, b, out)
	}
}

func TestLimitsJSONOverflowSaturates(t *testing.T) {
	// A deadlineMs too large for the ms->ns multiply must saturate above
	// MaxDeadline (so Normalize rejects it as over-cap), never wrap
	// negative and masquerade as unset/already-expired.
	for _, ms := range []int64{math.MaxInt64/int64(time.Millisecond) + 1, math.MaxInt64, 1 << 62} {
		var l Limits
		if err := json.Unmarshal([]byte(`{"deadlineMs":`+jsonInt(ms)+`}`), &l); err != nil {
			t.Fatalf("deadlineMs=%d: %v", ms, err)
		}
		if l.Deadline <= MaxDeadline {
			t.Fatalf("deadlineMs=%d decoded to %v, want saturated above MaxDeadline", ms, l.Deadline)
		}
		if _, err := l.Normalize(); err == nil {
			t.Fatalf("deadlineMs=%d passed Normalize after saturation", ms)
		}
	}
	var l Limits
	if err := json.Unmarshal([]byte(`{"deadlineMs":-5}`), &l); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Normalize(); err == nil {
		t.Fatal("negative deadlineMs passed Normalize")
	}
	if err := json.Unmarshal([]byte(`{"maxSteps":-1}`), &l); err == nil {
		t.Fatal("negative maxSteps decoded into a uint64 field without error")
	}
}

func jsonInt(v int64) string {
	b, _ := json.Marshal(v)
	return string(b)
}
