package api

import "repro/internal/core"

// Version is the current serving API version, echoed in every /v1
// result so clients and logs can tell payload generations apart.
const Version = "v1"

// Machine-readable error codes carried by the /v1 error envelope.
// Clients dispatch on Code; Message is for humans and may change.
const (
	CodeBadJSON          = "bad_json"
	CodeMissingSrc       = "missing_src"
	CodeBadMode          = "bad_mode"
	CodeInvalidLimits    = "invalid_limits"
	CodeBodyTooLarge     = "body_too_large"
	CodeMethodNotAllowed = "method_not_allowed"

	// Router (pyroute) error codes. A router rejection means the job was
	// never executed — clients may retry after the Retry-After hint.
	//
	// CodeNoBackends: every backend is ejected, draining, or down.
	CodeNoBackends = "no_backends"
	// CodeUpstreamError: the chosen backend failed in a way the router
	// must not retry (the job may have executed).
	CodeUpstreamError = "upstream_error"
	// CodeRetryBudget: the failure was retry-safe but the router's retry
	// budget is exhausted; retrying more would amplify an outage.
	CodeRetryBudget = "retry_budget_exhausted"
)

// HeaderRequestID is the request-id header both serving tiers speak: the
// router forwards the client-supplied id (generating one if absent) with
// a per-attempt suffix, and the backend echoes whatever id reached it,
// so one id ties the client's view, the router's log line, and the
// backend's log line together.
const HeaderRequestID = "X-Request-Id"

// Error is a machine-readable API error. It implements error so
// validation helpers (Limits.Normalize) can return it directly and
// handlers can surface it without re-wrapping.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *Error) Error() string { return e.Message }

// ErrorEnvelope is the /v1 error response body:
//
//	{"error": {"code": "invalid_limits", "message": "..."}}
//
// The legacy (unversioned) endpoints keep their flat
// {"error": "message"} shape for existing clients.
type ErrorEnvelope struct {
	Err Error `json:"error"`
}

// RunRequestV1 is the POST /v1/run body.
type RunRequestV1 struct {
	// Name labels the program in logs and results; defaults to
	// "request.py".
	Name string `json:"name,omitempty"`
	// Src is the MiniPy program text. Required.
	Src string `json:"src"`
	// Mode selects the runtime per request (cpython, pypy-nojit,
	// pypy-jit, v8like; default cpython).
	Mode string `json:"mode,omitempty"`
	// Limits overrides the server's default budgets; zero fields
	// inherit. Validated by Limits.Normalize.
	Limits *Limits `json:"limits,omitempty"`
	// Breakdown opts this request into live overhead attribution: the
	// job runs on the worker's attribution-core runner (slower) and the
	// result carries the per-category cycle breakdown.
	Breakdown bool `json:"breakdown,omitempty"`
}

// RunStatsV1 carries the execution counters of a successful run.
type RunStatsV1 struct {
	Bytecodes   uint64 `json:"bytecodes"`
	Allocs      uint64 `json:"allocs"`
	MinorGCs    uint64 `json:"minorGCs"`
	MajorGCs    uint64 `json:"majorGCs"`
	ErrorDeopts uint64 `json:"errorDeopts,omitempty"`
	// Inline-cache effectiveness of the quickened interpreter: hits and
	// misses across all site kinds, plus derived hit rate in [0, 1].
	ICHits    uint64  `json:"icHits,omitempty"`
	ICMisses  uint64  `json:"icMisses,omitempty"`
	ICHitRate float64 `json:"icHitRate,omitempty"`
}

// RunResultV1 is the POST /v1/run reply. A 200 means the job executed;
// the job's own outcome (Python error, limit trip, internal error) is in
// ExitClass/ExitCode. Shed requests return 503 with RetryAfterMs set.
type RunResultV1 struct {
	APIVersion string       `json:"apiVersion"`
	RequestID  string       `json:"requestId"`
	ExitClass  string       `json:"exitClass"`
	ExitCode   int          `json:"exitCode"`
	Stdout     string       `json:"stdout"`
	Error      string       `json:"error,omitempty"`
	Mode       string       `json:"mode"`
	Worker     int          `json:"worker"`
	QueuedMs   float64      `json:"queuedMs"`
	RunMs      float64      `json:"runMs"`
	RetryAfter float64      `json:"retryAfterMs,omitempty"`
	Stats      *RunStatsV1  `json:"stats,omitempty"`
	Breakdown  *core.Report `json:"breakdown,omitempty"`
}
