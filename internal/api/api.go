package api

import (
	"crypto/sha256"
	"encoding/hex"

	"repro/internal/core"
)

// Version is the current serving API version, echoed in every /v1
// result so clients and logs can tell payload generations apart.
const Version = "v1"

// Machine-readable error codes carried by the /v1 error envelope.
// Clients dispatch on Code; Message is for humans and may change.
const (
	CodeBadJSON          = "bad_json"
	CodeMissingSrc       = "missing_src"
	CodeBadMode          = "bad_mode"
	CodeInvalidLimits    = "invalid_limits"
	CodeBodyTooLarge     = "body_too_large"
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeBadIdempotencyKey: the request's idempotencyKey exceeds
	// MaxIdempotencyKey bytes.
	CodeBadIdempotencyKey = "bad_idempotency_key"
	// CodeIntegrity: the request body did not match its X-Content-Digest
	// — the bytes were damaged in transit. The job was never parsed, let
	// alone executed, so a routing tier may retry it freely.
	CodeIntegrity = "integrity_violation"

	// Program-store codes (run-by-reference, see internal/progstore).
	//
	// CodeMissingProgram: the run request carried neither src nor
	// programRef (or both — exactly one is required).
	CodeMissingProgram = "missing_program"
	// CodeUnknownProgram: the programRef is well-formed but no live
	// entry backs it on this backend — never registered, expired, or
	// invalidated. Re-register the source and retry.
	CodeUnknownProgram = "unknown_program"
	// CodeBadProgram: a registration's source failed to compile, or a
	// supplied programRef is not shaped like one (hex SHA-256).
	CodeBadProgram = "bad_program"

	// Router (pyroute) error codes. A router rejection means the job was
	// never executed — clients may retry after the Retry-After hint.
	//
	// CodeNoBackends: every backend is ejected, draining, or down.
	CodeNoBackends = "no_backends"
	// CodeUpstreamError: the chosen backend failed in a way the router
	// must not retry (the job may have executed).
	CodeUpstreamError = "upstream_error"
	// CodeRetryBudget: the failure was retry-safe but the router's retry
	// budget is exhausted; retrying more would amplify an outage.
	CodeRetryBudget = "retry_budget_exhausted"
)

// HeaderRequestID is the request-id header both serving tiers speak: the
// router forwards the client-supplied id (generating one if absent) with
// a per-attempt suffix, and the backend echoes whatever id reached it,
// so one id ties the client's view, the router's log line, and the
// backend's log line together.
const HeaderRequestID = "X-Request-Id"

// Content-integrity headers. Real fleets die mid-byte: a response can be
// truncated, a body can be bit-flipped by a failing middlebox, and
// neither may ever surface as a wrong answer. Both serving tiers stamp
// and verify SHA-256 body digests:
//
//   - HeaderContentDigest travels router -> backend on /v1/run. The
//     backend verifies it before parsing; a mismatch is rejected with
//     CodeIntegrity (the job never executed, so the router retries).
//   - HeaderResultDigest travels backend -> router on every /v1/run
//     response. The router verifies the buffered body against it; a
//     mismatch (or a missing digest on a 2xx) is a mid-flight failure —
//     replayed under an idempotency key, surfaced as upstream_error
//     otherwise — never passed through to the client.
const (
	HeaderContentDigest = "X-Content-Digest"
	HeaderResultDigest  = "X-Pyserve-Digest"
)

// Digest returns the hex SHA-256 of body: the value both integrity
// headers carry.
func Digest(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

// MaxIdempotencyKey bounds a client-supplied idempotency key; beyond it
// the request is rejected with CodeBadIdempotencyKey (a hostile client
// must not stuff megabytes into the dedup cache's key space).
const MaxIdempotencyKey = 128

// Error is a machine-readable API error. It implements error so
// validation helpers (Limits.Normalize) can return it directly and
// handlers can surface it without re-wrapping.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *Error) Error() string { return e.Message }

// ErrorEnvelope is the /v1 error response body:
//
//	{"error": {"code": "invalid_limits", "message": "..."}}
//
// The legacy (unversioned) endpoints keep their flat
// {"error": "message"} shape for existing clients.
type ErrorEnvelope struct {
	Err Error `json:"error"`
}

// RunRequestV1 is the POST /v1/run body.
type RunRequestV1 struct {
	// Name labels the program in logs and results; defaults to
	// "request.py".
	Name string `json:"name,omitempty"`
	// Src is the MiniPy program text. Exactly one of Src and ProgramRef
	// is required.
	Src string `json:"src,omitempty"`
	// ProgramRef runs a program previously registered via
	// POST /v1/programs, by its content address (hex SHA-256 of the
	// source). The backend executes its cached compiled form — and
	// warm-starts the worker from the program's IC seed when one has
	// been donated — without the request re-shipping source bytes.
	ProgramRef string `json:"programRef,omitempty"`
	// Mode selects the runtime per request (cpython, pypy-nojit,
	// pypy-jit, v8like; default cpython).
	Mode string `json:"mode,omitempty"`
	// Limits overrides the server's default budgets; zero fields
	// inherit. Validated by Limits.Normalize.
	Limits *Limits `json:"limits,omitempty"`
	// Breakdown opts this request into live overhead attribution: the
	// job runs on the worker's attribution-core runner (slower) and the
	// result carries the per-category cycle breakdown.
	Breakdown bool `json:"breakdown,omitempty"`
	// IdempotencyKey, when non-empty, declares the request idempotent
	// and keys it in the backend's result-dedup cache: a replay of the
	// same key within the cache TTL returns the recorded result instead
	// of executing again, and a routing tier may re-route mid-flight
	// failures of the request to another replica. Keys must be unique
	// per logical request (a UUID, or client-id + sequence); reusing a
	// key for a different program returns the first program's result.
	// At most MaxIdempotencyKey bytes.
	IdempotencyKey string `json:"idempotencyKey,omitempty"`
	// Lane is the priority lane under a step-sliced backend (0 is
	// highest; clamped to the backend's lane count). Ignored — and
	// harmless — on an exclusive-pool backend.
	Lane int `json:"lane,omitempty"`
	// Tenant is the fair-queueing identity under a step-sliced backend:
	// tenants within a lane share step throughput deficit-round-robin.
	// Empty is a valid (shared) tenant.
	Tenant string `json:"tenant,omitempty"`
}

// MaxTenant bounds the tenant label; beyond it the request is rejected
// (an unbounded label is a memory-growth vector in the fair queues).
const MaxTenant = 128

// LifeEventV1 is one step of a request's scheduler lifecycle trace:
// the state entered, and when, as milliseconds since the first event
// (QUEUED, which is therefore always at offset 0).
type LifeEventV1 struct {
	State    string  `json:"state"`
	OffsetMs float64 `json:"offsetMs"`
}

// RunStatsV1 carries the execution counters of a successful run.
type RunStatsV1 struct {
	Bytecodes   uint64 `json:"bytecodes"`
	Allocs      uint64 `json:"allocs"`
	MinorGCs    uint64 `json:"minorGCs"`
	MajorGCs    uint64 `json:"majorGCs"`
	ErrorDeopts uint64 `json:"errorDeopts,omitempty"`
	// Inline-cache effectiveness of the quickened interpreter: hits and
	// misses across all site kinds, plus derived hit rate in [0, 1].
	ICHits    uint64  `json:"icHits,omitempty"`
	ICMisses  uint64  `json:"icMisses,omitempty"`
	ICHitRate float64 `json:"icHitRate,omitempty"`
}

// RunResultV1 is the POST /v1/run reply. A 200 means the job executed;
// the job's own outcome (Python error, limit trip, internal error) is in
// ExitClass/ExitCode. Shed requests return 503 with RetryAfterMs set.
type RunResultV1 struct {
	APIVersion string       `json:"apiVersion"`
	RequestID  string       `json:"requestId"`
	ExitClass  string       `json:"exitClass"`
	ExitCode   int          `json:"exitCode"`
	Stdout     string       `json:"stdout"`
	Error      string       `json:"error,omitempty"`
	Mode       string       `json:"mode"`
	Worker     int          `json:"worker"`
	QueuedMs   float64      `json:"queuedMs"`
	RunMs      float64      `json:"runMs"`
	RetryAfter float64      `json:"retryAfterMs,omitempty"`
	Stats      *RunStatsV1  `json:"stats,omitempty"`
	Breakdown  *core.Report `json:"breakdown,omitempty"`

	// Exactly-once bookkeeping, present only for requests that carried
	// an idempotencyKey. Executions is the number of times the program
	// body actually ran under this key on the answering backend — the
	// execution-count stamp; anything above 1 is a dedup-layer bug.
	// Deduped marks a replay absorbed by the cache: the recorded result
	// was returned and nothing executed.
	Executions int  `json:"executions,omitempty"`
	Deduped    bool `json:"deduped,omitempty"`

	// Step-sliced scheduling trace, present only when the backend ran
	// the job under a scheduler. Preemptions counts quantum-boundary
	// parks (exact, even past the Lifecycle cap); Lifecycle is the
	// timestamped QUEUED→…→FINISHED transition trace.
	Preemptions int           `json:"preemptions,omitempty"`
	Lifecycle   []LifeEventV1 `json:"lifecycle,omitempty"`

	// ProgramCache stamps how the program store served this run:
	// "hit" (cached compiled form, no seed yet), "seeded" (cached form
	// plus an IC-seed warm start), "miss" (compiled for this request).
	// Empty on backends running without a store.
	ProgramCache string `json:"programCache,omitempty"`
	// ProgramRef echoes the content address the run resolved to, for
	// both run-by-reference and inline-source requests (inline sources
	// are registered read-through), so clients learn the ref to reuse.
	ProgramRef string `json:"programRef,omitempty"`
}

// Program-cache stamps carried by RunResultV1.ProgramCache.
const (
	ProgramCacheHit    = "hit"
	ProgramCacheSeeded = "seeded"
	ProgramCacheMiss   = "miss"
)

// MaxProgramSrc bounds a registration's source size. Oversized programs
// are rejected with CodeBodyTooLarge before hashing (the store is a
// shared cache; one hostile registration must not occupy megabytes).
const MaxProgramSrc = 1 << 20

// RegisterRequestV1 is the POST /v1/programs body: register a program
// source in the backend's content-addressed store.
type RegisterRequestV1 struct {
	// Name labels the program in compile errors; defaults to
	// "program.py".
	Name string `json:"name,omitempty"`
	// Src is the MiniPy program text. Required.
	Src string `json:"src"`
}

// RegisterResultV1 is the POST /v1/programs reply.
type RegisterResultV1 struct {
	APIVersion string `json:"apiVersion"`
	// ProgramRef is the program's content address: hex SHA-256 of Src.
	// Any replica of the fleet resolves the same source to the same ref.
	ProgramRef string `json:"programRef"`
	// Compiled reports that the store holds the compiled form (always
	// true on a 200; a failed compile is a 400 CodeBadProgram).
	Compiled bool `json:"compiled"`
	// ICSeedAvailable reports whether a portable IC seed has been
	// donated yet (the first completed run donates one).
	ICSeedAvailable bool `json:"icSeedAvailable"`
}

// ProgramInfoV1 is the GET /v1/programs/{ref} reply: store metadata for
// one registered program.
type ProgramInfoV1 struct {
	APIVersion string `json:"apiVersion"`
	ProgramRef string `json:"programRef"`
	SrcBytes   int    `json:"srcBytes"`
	Compiled   bool   `json:"compiled"`
	Hits       uint64 `json:"hits"`
	AgeMs      int64  `json:"ageMs"`
	ICSeed     bool   `json:"icSeed"`
	// ICSeedAgeMs / ICSeedSites describe the donated seed (present only
	// when ICSeed is true).
	ICSeedAgeMs int64 `json:"icSeedAgeMs,omitempty"`
	ICSeedSites int   `json:"icSeedSites,omitempty"`
}
