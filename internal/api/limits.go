// Package api defines the versioned serving surface shared by pyserve
// and the fuzz/soak tooling: the canonical resource-budget type
// (Limits), the /v1 request and result structs, and the machine-readable
// error envelope. Every layer that previously carried its own budget
// struct — the interpreter governor, the worker pool, the HTTP request
// body — now shares this one, and all clamping and validation lives in
// Normalize.
package api

import (
	"encoding/json"
	"fmt"
	"math"
	"time"
)

// Limits is the canonical resource budget: hard caps a hostile or buggy
// program cannot exceed. Each limit surfaces as an in-language exception
// (TimeoutError, MemoryError, RecursionError, OutputLimitError) that
// unwinds through normal PyError handling, so the host survives any
// program. Zero values mean unlimited.
//
// On the wire Deadline is carried as integer milliseconds (deadlineMs).
type Limits struct {
	// MaxSteps caps the bytecodes executed per run (compiled-trace
	// operations count against it too). Exceeding it raises TimeoutError.
	MaxSteps uint64
	// MaxHeapBytes caps the live heap footprint. The collector attempts
	// one emergency full collection before raising MemoryError.
	MaxHeapBytes uint64
	// MaxRecursionDepth caps the Python call depth, raising
	// RecursionError (the VM's built-in depth valve stays in place and
	// keeps raising RuntimeError, matching CPython 2.7).
	MaxRecursionDepth int
	// Deadline bounds wall-clock time per run, raising TimeoutError.
	Deadline time.Duration
	// MaxOutputBytes caps bytes written to stdout, raising
	// OutputLimitError.
	MaxOutputBytes uint64
}

// MaxDeadline caps a request deadline at 24 hours — far above any sane
// serving budget, far below the ~2^63 ns where a milliseconds→Duration
// conversion overflows into a negative (already-expired) deadline.
const MaxDeadline = 24 * time.Hour

// MaxDeadlineMs is MaxDeadline on the wire.
const MaxDeadlineMs = int64(MaxDeadline / time.Millisecond)

// Enabled reports whether any limit is set.
func (l Limits) Enabled() bool {
	return l.MaxSteps != 0 || l.MaxHeapBytes != 0 || l.MaxRecursionDepth != 0 ||
		l.Deadline != 0 || l.MaxOutputBytes != 0
}

// Normalize validates l and returns the canonical form. It is the single
// owner of budget validation: negative budgets are rejected (a negative
// Deadline is nonzero, so it would bypass serving defaults and skew
// watchdog derivation), and the deadline is capped at MaxDeadline.
// Errors are *Error values with machine-readable codes.
func (l Limits) Normalize() (Limits, error) {
	if l.Deadline < 0 {
		return l, &Error{Code: CodeInvalidLimits, Message: "limits.deadlineMs must be >= 0"}
	}
	if l.Deadline > MaxDeadline {
		return l, &Error{Code: CodeInvalidLimits,
			Message: fmt.Sprintf("limits.deadlineMs must be <= %d", MaxDeadlineMs)}
	}
	if l.MaxRecursionDepth < 0 {
		return l, &Error{Code: CodeInvalidLimits, Message: "limits.maxRecursionDepth must be >= 0"}
	}
	return l, nil
}

// WithDefaults resolves unset budgets against defaults d: zero (or, for
// the signed fields, non-positive) fields inherit the default. This is
// the serving pool's per-job resolution step; the result of defaulting a
// positive-Deadline d always has a positive Deadline, which watchdog
// horizons are derived from.
func (l Limits) WithDefaults(d Limits) Limits {
	if l.MaxSteps == 0 {
		l.MaxSteps = d.MaxSteps
	}
	if l.MaxHeapBytes == 0 {
		l.MaxHeapBytes = d.MaxHeapBytes
	}
	if l.MaxRecursionDepth <= 0 {
		l.MaxRecursionDepth = d.MaxRecursionDepth
	}
	if l.Deadline <= 0 {
		l.Deadline = d.Deadline
	}
	if l.MaxOutputBytes == 0 {
		l.MaxOutputBytes = d.MaxOutputBytes
	}
	return l
}

// limitsWire is the JSON shape: deadlines travel as integer
// milliseconds. The unsigned fields reject negative JSON numbers at
// decode time, before Normalize ever runs.
type limitsWire struct {
	MaxSteps          uint64 `json:"maxSteps,omitempty"`
	MaxHeapBytes      uint64 `json:"maxHeapBytes,omitempty"`
	MaxRecursionDepth int    `json:"maxRecursionDepth,omitempty"`
	DeadlineMs        int64  `json:"deadlineMs,omitempty"`
	MaxOutputBytes    uint64 `json:"maxOutputBytes,omitempty"`
}

// MarshalJSON renders the wire form (deadlineMs).
func (l Limits) MarshalJSON() ([]byte, error) {
	return json.Marshal(limitsWire{
		MaxSteps:          l.MaxSteps,
		MaxHeapBytes:      l.MaxHeapBytes,
		MaxRecursionDepth: l.MaxRecursionDepth,
		DeadlineMs:        int64(l.Deadline / time.Millisecond),
		MaxOutputBytes:    l.MaxOutputBytes,
	})
}

// UnmarshalJSON decodes the wire form. A deadlineMs too large for the
// ms→Duration multiply saturates to a value above MaxDeadline instead of
// overflowing negative, so Normalize reports it as an over-cap deadline
// rather than letting a wrapped negative masquerade as "unset".
func (l *Limits) UnmarshalJSON(b []byte) error {
	var w limitsWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	var d time.Duration
	switch {
	case w.DeadlineMs > math.MaxInt64/int64(time.Millisecond):
		d = math.MaxInt64 // saturate: > MaxDeadline, rejected by Normalize
	default:
		d = time.Duration(w.DeadlineMs) * time.Millisecond
	}
	*l = Limits{
		MaxSteps:          w.MaxSteps,
		MaxHeapBytes:      w.MaxHeapBytes,
		MaxRecursionDepth: w.MaxRecursionDepth,
		Deadline:          d,
		MaxOutputBytes:    w.MaxOutputBytes,
	}
	return nil
}
