package load

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/interp"
	"repro/internal/serve"
	"repro/internal/supervise"
	"repro/internal/telemetry"
)

var testLimits = interp.Limits{
	MaxSteps:       20_000_000,
	MaxHeapBytes:   128 << 20,
	Deadline:       5 * time.Second,
	MaxOutputBytes: 1 << 20,
}

func TestMixedCorpusStampsExpectations(t *testing.T) {
	corpus := MixedCorpus(10, 42, testLimits)
	if len(corpus) < 8 {
		t.Fatalf("corpus has %d programs, want >= 8", len(corpus))
	}
	okWithStdout := 0
	for _, p := range corpus {
		if p.Src == "" || p.Name == "" {
			t.Fatalf("corpus entry %q has empty name or source", p.Name)
		}
		if p.WantClass == "" {
			t.Fatalf("corpus entry %q has no expectation", p.Name)
		}
		if p.WantClass == "ok" && p.WantStdout != "" {
			okWithStdout++
		}
	}
	if okWithStdout == 0 {
		t.Fatal("no corpus entry carries a stdout expectation")
	}
	// Determinism: same seed, same corpus.
	again := MixedCorpus(10, 42, testLimits)
	for i := range corpus {
		if corpus[i].Src != again[i].Src || corpus[i].WantStdout != again[i].WantStdout {
			t.Fatalf("corpus entry %d differs across identically-seeded builds", i)
		}
	}
}

func TestRunAgainstRealBackend(t *testing.T) {
	reg := telemetry.NewRegistry()
	pool := supervise.NewPool(supervise.Config{
		Workers:       2,
		Metrics:       supervise.NewMetrics(reg),
		DefaultLimits: testLimits,
	})
	defer pool.Close()
	ts := httptest.NewServer(serve.New(pool, reg, time.Second, nil).Mux())
	defer ts.Close()

	rep, err := Run(Config{
		Target:      ts.URL,
		Corpus:      MixedCorpus(8, 7, testLimits),
		Concurrency: 4,
		Requests:    40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcomes["ok"]+rep.Outcomes["python_error"] != 40 {
		t.Fatalf("outcomes %v, want all 40 served", rep.Outcomes)
	}
	if rep.WrongAnswers != 0 {
		t.Fatalf("%d wrong answers against a healthy backend", rep.WrongAnswers)
	}
	if rep.Verified == 0 {
		t.Fatal("no responses were verified against expectations")
	}
	if !rep.WithinBudget {
		t.Fatalf("healthy run outside error budget: %+v", rep)
	}
	if rep.Latency.P50Ms <= 0 || rep.Latency.P99Ms < rep.Latency.P50Ms {
		t.Fatalf("implausible latency summary: %+v", rep.Latency)
	}
}

func TestRunDetectsWrongAnswers(t *testing.T) {
	// A backend that serves 200s with the wrong stdout: status-level
	// checks pass, answer verification must not.
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"apiVersion":"v1","exitClass":"ok","stdout":"wrong\n"}`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	rep, err := Run(Config{
		Target: ts.URL,
		Corpus: []Program{{Name: "lie", Src: "print(1)\n", WantClass: "ok", WantStdout: "1\n"}},
		Concurrency: 2,
		Requests:    10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WrongAnswers != 10 {
		t.Fatalf("WrongAnswers = %d, want 10", rep.WrongAnswers)
	}
	if rep.WithinBudget {
		t.Fatal("wrong answers must blow the error budget")
	}
}

func TestRunBudgetsSheds(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"apiVersion":"v1","exitClass":"shed","retryAfterMs":1000}`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	rep, err := Run(Config{
		Target:      ts.URL,
		Corpus:      []Program{{Name: "x", Src: "print(1)\n"}},
		Concurrency: 2,
		Requests:    10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BudgetedFailures != 10 || rep.UnbudgetedFailures != 0 {
		t.Fatalf("budgeted=%d unbudgeted=%d, want 10/0: sheds are budgeted", rep.BudgetedFailures, rep.UnbudgetedFailures)
	}
	if !rep.WithinBudget {
		t.Fatal("pure sheds must stay within the error budget")
	}
}

func TestRunByRefAgainstRealBackend(t *testing.T) {
	reg := telemetry.NewRegistry()
	pool := supervise.NewPool(supervise.Config{
		Workers:       2,
		Metrics:       supervise.NewMetrics(reg),
		DefaultLimits: testLimits,
	})
	defer pool.Close()
	ts := httptest.NewServer(serve.New(pool, reg, time.Second, nil).Mux())
	defer ts.Close()

	// ByRef registers the corpus first and ships only programRefs; the
	// answers must verify exactly like the inline drive.
	rep, err := Run(Config{
		Target:      ts.URL,
		Corpus:      MixedCorpus(8, 7, testLimits),
		Concurrency: 4,
		Requests:    40,
		ByRef:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcomes["ok"]+rep.Outcomes["python_error"] != 40 {
		t.Fatalf("outcomes %v, want all 40 served", rep.Outcomes)
	}
	if rep.WrongAnswers != 0 {
		t.Fatalf("%d wrong answers on the run-by-reference path", rep.WrongAnswers)
	}
	if rep.Verified == 0 {
		t.Fatal("no responses were verified against expectations")
	}
}
