// Package load is the serving stack's load generator core: it drives a
// mixed MiniPy corpus against one /v1/run endpoint at fixed concurrency
// and produces a machine-readable report — latency distribution, outcome
// counts, error-budget verdict, and (when the corpus carries
// expectations) a wrong-answer count against fresh-runner references.
//
// cmd/pyload is the CLI wrapper; the router chaos soak reuses the same
// engine so "what the benchmark measures" and "what the soak asserts"
// are one code path.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/difftest"
	"repro/internal/interp"
	"repro/internal/progstore"
	"repro/internal/runtime"
	"repro/internal/supervise"
)

// Program is one corpus entry. Want* carry the fresh-runner expectation
// when known; an empty WantClass skips verification for the entry.
// Limits, when non-zero, is sent with every request so the serving tier
// enforces the same budgets the reference run was stamped under — and so
// per-job heap reservations stay at the corpus's declared footprint
// instead of the server's (larger) default, which at high concurrency
// can push admission into watermark shedding.
type Program struct {
	Name       string        `json:"name"`
	Src        string        `json:"-"`
	WantClass  string        `json:"wantClass,omitempty"`
	WantStdout string        `json:"-"`
	Limits     interp.Limits `json:"-"`
}

// Config parameterizes one load run.
type Config struct {
	// Target is the base URL of the tier under test (router or a single
	// pyserve). Required.
	Target string
	// Corpus is the program mix; workers cycle through it in seeded
	// order. Required, non-empty.
	Corpus []Program
	// Concurrency is the number of in-flight requests (default 8).
	Concurrency int
	// Requests is the total request count (default 200).
	Requests int
	// Timeout bounds one request (default 30s).
	Timeout time.Duration
	// Seed orders the per-worker corpus walk (default 1).
	Seed uint64
	// AllowedFailureRatio is the error budget: the run passes while
	// unbudgeted failures (transport errors, unexpected 5xx, wrong
	// answers) stay at or below this fraction of requests (default 0).
	// Budgeted failures — sheds and routing rejections that carry
	// Retry-After semantics — are reported separately and do not count
	// against it.
	AllowedFailureRatio float64
	// IdempotencyKeys, when true, stamps every request with a unique
	// idempotency key ("idem-<seed>-<seq>"). This authorizes the router
	// to replay mid-flight failures and arms the exactly-once oracle:
	// the report then counts deduped replies and duplicate executions.
	IdempotencyKeys bool
	// ByRef, when true, registers every corpus program with the target's
	// POST /v1/programs before the drive and sends each request as a
	// run-by-reference (programRef instead of inline src) — the
	// program-store serving path under load.
	ByRef bool
	// Client overrides the HTTP client (tests); nil builds one from
	// Timeout.
	Client *http.Client
}

// Latency summarizes the per-request latency distribution.
type Latency struct {
	P50Ms  float64 `json:"p50Ms"`
	P90Ms  float64 `json:"p90Ms"`
	P99Ms  float64 `json:"p99Ms"`
	MeanMs float64 `json:"meanMs"`
	MaxMs  float64 `json:"maxMs"`
}

// Report is the machine-readable result of one load run.
type Report struct {
	Target      string  `json:"target"`
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency"`
	DurationSec float64 `json:"durationSec"`
	Throughput  float64 `json:"throughputRps"`
	Latency     Latency `json:"latency"`

	// Outcomes counts requests by terminal classification: "ok",
	// "python_error" (the program's own error, still a correct serve),
	// "shed", "no_backends", "retry_budget_exhausted" (budgeted),
	// "upstream_error", "http_<code>", "transport_error" (unbudgeted).
	Outcomes map[string]int `json:"outcomes"`

	// Verified counts responses checked against a fresh-runner
	// expectation; WrongAnswers counts the ones that disagreed.
	Verified     int `json:"verified"`
	WrongAnswers int `json:"wrongAnswers"`

	// Exactly-once accounting (IdempotencyKeys runs only).
	// DedupedReplies counts 200s served from a backend's dedup cache —
	// replays absorbed instead of re-executed. DuplicateExecutions
	// counts 200s whose executions stamp exceeded 1: the exactly-once
	// guarantee was broken. Must stay zero.
	DedupedReplies      int `json:"dedupedReplies,omitempty"`
	DuplicateExecutions int `json:"duplicateExecutions"`

	// Error budget verdict.
	BudgetedFailures    int     `json:"budgetedFailures"`
	UnbudgetedFailures  int     `json:"unbudgetedFailures"`
	AllowedFailureRatio float64 `json:"allowedFailureRatio"`
	FailureRatio        float64 `json:"failureRatio"`
	WithinBudget        bool    `json:"withinBudget"`
}

// budgeted reports whether outcome is a failure the serving tier is
// allowed to emit under stress: it told the client to back off and the
// job provably did not execute.
func budgeted(outcome string) bool {
	switch outcome {
	case "shed", "no_backends", "retry_budget_exhausted":
		return true
	}
	return false
}

// failure reports whether outcome is a failure at all ("ok" and
// "python_error" are correct serves).
func failure(outcome string) bool {
	return outcome != "ok" && outcome != "python_error"
}

// Run drives cfg.Requests requests and aggregates the report.
func Run(cfg Config) (*Report, error) {
	if cfg.Target == "" {
		return nil, fmt.Errorf("load: no target")
	}
	if len(cfg.Corpus) == 0 {
		return nil, fmt.Errorf("load: empty corpus")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 200
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{
			Timeout: cfg.Timeout,
			Transport: &http.Transport{
				MaxIdleConns:        cfg.Concurrency * 2,
				MaxIdleConnsPerHost: cfg.Concurrency * 2,
			},
		}
	}

	if cfg.ByRef {
		// Register the whole corpus up front: the drive itself then ships
		// only refs. A registration failure is a hard error — every
		// subsequent request would 404.
		for _, p := range cfg.Corpus {
			body, _ := json.Marshal(api.RegisterRequestV1{Name: p.Name, Src: p.Src})
			resp, err := client.Post(cfg.Target+"/v1/programs", "application/json", bytes.NewReader(body))
			if err != nil {
				return nil, fmt.Errorf("load: register %s: %v", p.Name, err)
			}
			rb, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return nil, fmt.Errorf("load: register %s: status %d: %s", p.Name, resp.StatusCode, rb)
			}
		}
	}

	var (
		next             atomic.Int64 // request sequence
		mu               sync.Mutex
		lats             []time.Duration
		outcomes         = make(map[string]int)
		verified, wrong  int
		deduped, dupExec int
	)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				seq := next.Add(1) - 1
				if seq >= int64(cfg.Requests) {
					return
				}
				// Seeded corpus walk: deterministic per seq, spread
				// across the corpus so all workers share the mix.
				p := cfg.Corpus[(uint64(seq)*0x9E3779B97F4A7C15+cfg.Seed)%uint64(len(cfg.Corpus))]
				r := oneRequest(client, &cfg, p, seq)

				mu.Lock()
				outcomes[r.outcome]++
				if r.lat > 0 {
					lats = append(lats, r.lat)
				}
				if r.deduped {
					deduped++
				}
				if r.execs > 1 {
					dupExec++
				}
				if p.WantClass != "" && !failure(r.outcome) {
					verified++
					if r.outcome != classOutcome(p.WantClass) ||
						(p.WantClass == "ok" && r.stdout != p.WantStdout) {
						wrong++
					}
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{
		Target:              cfg.Target,
		Requests:            cfg.Requests,
		Concurrency:         cfg.Concurrency,
		DurationSec:         elapsed.Seconds(),
		Outcomes:            outcomes,
		Verified:            verified,
		WrongAnswers:        wrong,
		DedupedReplies:      deduped,
		DuplicateExecutions: dupExec,
		AllowedFailureRatio: cfg.AllowedFailureRatio,
	}
	if elapsed > 0 {
		rep.Throughput = float64(cfg.Requests) / elapsed.Seconds()
	}
	for o, n := range outcomes {
		if !failure(o) {
			continue
		}
		if budgeted(o) {
			rep.BudgetedFailures += n
		} else {
			rep.UnbudgetedFailures += n
		}
	}
	unbudgeted := rep.UnbudgetedFailures + wrong
	rep.FailureRatio = float64(unbudgeted) / float64(cfg.Requests)
	rep.WithinBudget = rep.FailureRatio <= cfg.AllowedFailureRatio
	rep.Latency = summarize(lats)
	return rep, nil
}

// classOutcome maps a reference exit class to the outcome label a
// correct serve of that program produces.
func classOutcome(class string) string {
	if class == "ok" {
		return "ok"
	}
	return "python_error"
}

// reqResult is one request's classification.
type reqResult struct {
	outcome string
	stdout  string
	lat     time.Duration // zero for incomplete exchanges
	deduped bool          // 200 served from a backend dedup cache
	execs   int           // executions stamp (0 when absent)
}

// oneRequest performs one POST /v1/run and classifies the result.
// Latency is reported only for completed HTTP exchanges.
func oneRequest(client *http.Client, cfg *Config, p Program, seq int64) reqResult {
	rr := api.RunRequestV1{Name: p.Name, Src: p.Src}
	if cfg.ByRef {
		rr.Src = ""
		rr.ProgramRef = progstore.Ref(p.Src)
	}
	if cfg.IdempotencyKeys {
		// Unique per request: each job may be replayed, never conflated
		// with another. The seed keys the namespace so back-to-back runs
		// against a warm fleet cannot collide in a backend's dedup cache.
		rr.IdempotencyKey = fmt.Sprintf("idem-%d-%d", cfg.Seed, seq)
	}
	if p.Limits != (interp.Limits{}) {
		// Serve under the budgets the reference was stamped with: the
		// class verdict must not depend on the server's defaults. Only
		// the deterministic budgets go on the wire — the wall-clock
		// deadline is a stamping-time backstop, and enforcing it on a
		// loaded server would flip edge programs to timeout depending on
		// contention, not on the program.
		lim := p.Limits
		lim.Deadline = 0
		rr.Limits = &lim
	}
	body, _ := json.Marshal(rr)
	req, err := http.NewRequest(http.MethodPost, cfg.Target+"/v1/run", bytes.NewReader(body))
	if err != nil {
		return reqResult{outcome: "transport_error"}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.HeaderRequestID, fmt.Sprintf("load-%d", seq))

	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return reqResult{outcome: "transport_error"}
	}
	defer resp.Body.Close()
	rb, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return reqResult{outcome: "transport_error"}
	}
	lat := time.Since(start)

	switch {
	case resp.StatusCode == http.StatusOK:
		var res api.RunResultV1
		if json.Unmarshal(rb, &res) != nil {
			return reqResult{outcome: "transport_error", lat: lat}
		}
		out := reqResult{stdout: res.Stdout, lat: lat, deduped: res.Deduped, execs: res.Executions}
		if res.ExitClass == "ok" {
			out.outcome = "ok"
		} else {
			out.outcome = "python_error"
		}
		return out
	case resp.StatusCode == http.StatusServiceUnavailable:
		var env api.ErrorEnvelope
		if json.Unmarshal(rb, &env) == nil && env.Err.Code != "" {
			return reqResult{outcome: env.Err.Code, lat: lat} // no_backends / retry_budget_exhausted
		}
		return reqResult{outcome: "shed", lat: lat}
	case resp.StatusCode == http.StatusBadGateway:
		return reqResult{outcome: "upstream_error", lat: lat}
	default:
		return reqResult{outcome: fmt.Sprintf("http_%d", resp.StatusCode), lat: lat}
	}
}

// summarize sorts and summarizes a latency sample.
func summarize(lats []time.Duration) Latency {
	if len(lats) == 0 {
		return Latency{}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(q float64) float64 {
		i := int(q * float64(len(lats)-1))
		return float64(lats[i]) / float64(time.Millisecond)
	}
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	return Latency{
		P50Ms:  pct(0.50),
		P90Ms:  pct(0.90),
		P99Ms:  pct(0.99),
		MeanMs: float64(sum) / float64(len(lats)) / float64(time.Millisecond),
		MaxMs:  float64(lats[len(lats)-1]) / float64(time.Millisecond),
	}
}

// kernelTemplates are the hand-written compute-heavy corpus members:
// hot loops in the few-millisecond range, so a front tier's per-request
// overhead is measured against realistic work, not against no-ops.
var kernelTemplates = []struct {
	name string
	src  string
}{
	{"arith_sum", `s = 0
i = 0
while i < 120000:
    s = s + i * i - (i & 7)
    i = i + 1
print(s)
`},
	{"attr_norm", `class P:
    def __init__(self, x, y):
        self.x = x
        self.y = y
    def norm(self):
        return self.x * self.x + self.y * self.y

acc = 0
p = P(3, 4)
for i in xrange(60000):
    p.x = i & 255
    acc = acc + p.norm()
print(acc)
`},
	{"dict_churn", `d = {}
for i in xrange(30000):
    d[i & 511] = i
s = 0
for i in xrange(512):
    s = s + d.get(i, 0)
print(s)
print(len(d))
`},
	{"call_fib", `def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)

print(fib(19))
`},
	{"str_build", `parts = []
for i in xrange(4000):
    parts.append("x%d" % (i & 63))
s = "".join(parts)
print(len(s))
`},
}

// MixedCorpus builds n corpus programs: the hand-written compute kernels
// first, then difftest-generated programs for breadth, each stamped with
// its fresh-runner expectation (class and stdout) so load runs can
// verify answers, not just status codes. lim bounds the reference runs;
// generated programs whose reference trips a limit are skipped (they
// would time-depend on server load).
func MixedCorpus(n int, seed uint64, lim interp.Limits) []Program {
	var out []Program
	stamp := func(name, src string) bool {
		ref := supervise.ReferenceRun(name, src, runtime.CPython, lim)
		switch ref.Class {
		case supervise.ClassOK:
			out = append(out, Program{Name: name, Src: src, WantClass: "ok", WantStdout: ref.Output, Limits: lim})
			return true
		case supervise.ClassError:
			out = append(out, Program{Name: name, Src: src, WantClass: "python_error", Limits: lim})
			return true
		}
		return false
	}
	for _, k := range kernelTemplates {
		if len(out) >= n {
			break
		}
		stamp(k.name, k.src)
	}
	for g := uint64(0); len(out) < n && g < uint64(n)*4; g++ {
		src := difftest.Generate(seed + g)
		stamp(fmt.Sprintf("gen_%d", seed+g), src)
	}
	return out
}
