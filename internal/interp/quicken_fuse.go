package interp

import (
	"repro/internal/core"
	"repro/internal/pycode"
	"repro/internal/pyobj"
)

// Tier-2 superinstruction fusion and speculative unboxed-int rewrites.
//
// The fusion pass rewrites hot bytecode pairs in the per-VM quickened
// stream into single-dispatch superinstructions. Every fusion uses the
// "second slot intact" technique: only the head instruction's opcode
// changes; the second slot keeps its original instruction. The fused
// handler reads the second slot as an immediate operand and retires both
// (setting PC past the pair), while a jump that lands on the second slot
// executes it as the intact original — no jump-target analysis is needed
// for the pair's interior, only a guarantee that nothing jumps *between*
// the halves such that the head's changed stack contract is observed.
//
// Three fusions exist:
//
//   - COMPARE_POP_JUMP: COMPARE_OP + POP_JUMP_IF_{FALSE,TRUE}. One
//     dispatch instead of two, and the int fast path skips boxing the
//     intermediate bool entirely (a balanced elision: the generic pair
//     increfs and decrefs the bool singleton symmetrically).
//   - LOAD_FAST_LOAD_FAST: two adjacent local loads in one dispatch.
//   - LOAD_ATTR_CALL_METHOD / CALL_METHOD: the distance pair. The head
//     replaces LOAD_ATTR_IC before an argument run ending in
//     CALL_FUNCTION(argc); a method-cache hit pushes (callee, self) and
//     elides the BoundMethod allocation, a miss pushes (nil, attr-value)
//     and the rewritten CALL_METHOD dispatches on the nil marker. Both
//     halves still execute — the win is the allocation, not the dispatch.
//
// De-fusion safety: the atomic pairs (COMPARE_POP_JUMP,
// LOAD_FAST_LOAD_FAST) may be de-fused and re-fused at any dispatch
// boundary — a suspended frame is always parked inside a call
// instruction, never between the halves of an atomic pair. The attr-call
// pair is never de-fused once any frame is live: its two halves bracket
// stack state (the extra callee slot), so a mid-run rewrite would strand
// a suspended CALL_METHOD above a de-fused head. It deoptimizes
// per-execution through the nil-marker path instead, and is restored to
// LOAD_ATTR_IC + CALL_FUNCTION only when no frame is executing (the
// SetTracer-before-run case).

// fuseKind identifies a superinstruction rewrite.
type fuseKind uint8

const (
	fuseCmpJump fuseKind = iota
	fuseFastFast
	fuseAttrCall
	fuseFastAttr    // LOAD_FAST + LOAD_ATTR(_IC), borrowed receiver
	fuseFastStore   // LOAD_FAST + STORE_ATTR(_IC), borrowed receiver
	fuseFastBin     // LOAD_FAST + BINARY_{ADD,SUB,MUL}(_INT), borrowed rhs
	fuseConstBin    // LOAD_CONST + BINARY_{ADD,SUB,MUL}(_INT), borrowed rhs
	fuseGlobalBin   // LOAD_GLOBAL_IC + BINARY_{ADD,SUB,MUL}(_INT), borrowed rhs
	fuseFastFastCmp // LOAD_FAST_LOAD_FAST upgraded over a COMPARE_POP_JUMP
	fuseConstReturn // LOAD_CONST + RETURN_VALUE
	numFuseKinds
)

// atomicFuse maps each atomic fusion kind to its superinstruction opcode
// and the head opcode it restores to on de-fusion. The attr-call kind is
// absent: its two halves bracket stack state and it is only undone by
// defuseAll when no frame is live.
var atomicFuse = [numFuseKinds]struct{ fused, head pycode.Opcode }{
	fuseCmpJump:     {pycode.COMPARE_POP_JUMP, pycode.COMPARE_OP},
	fuseFastFast:    {pycode.LOAD_FAST_LOAD_FAST, pycode.LOAD_FAST},
	fuseFastAttr:    {pycode.LOAD_FAST_LOAD_ATTR, pycode.LOAD_FAST},
	fuseFastStore:   {pycode.LOAD_FAST_STORE_ATTR, pycode.LOAD_FAST},
	fuseFastBin:     {pycode.LOAD_FAST_BINARY, pycode.LOAD_FAST},
	fuseConstBin:    {pycode.LOAD_CONST_BINARY, pycode.LOAD_CONST},
	fuseGlobalBin:   {pycode.LOAD_GLOBAL_BINARY, pycode.LOAD_GLOBAL_IC},
	fuseFastFastCmp: {pycode.LOAD_FAST_FAST_CMP_JUMP, pycode.LOAD_FAST},
	fuseConstReturn: {pycode.LOAD_CONST_RETURN, pycode.LOAD_CONST},
}

// fusedSite records one fusion applied to a codeData's quickened stream.
type fusedSite struct {
	pc   int
	kind fuseKind
	// callPC is the CALL_FUNCTION slot of an attr-call pair (unused by
	// the atomic kinds, whose second slot is pc+1 and stays intact).
	callPC int
}

// fuseMaxArgScan bounds the argument-run scan of the attr-call pairing:
// call sites with more in-between instructions stay unfused.
const fuseMaxArgScan = 8

// jumpTargets returns a bitmap of instruction indices any control
// transfer in code can land on.
func jumpTargets(code *pycode.Code) []bool {
	t := make([]bool, len(code.Code))
	for _, in := range code.Code {
		switch in.Op {
		case pycode.JUMP_FORWARD, pycode.JUMP_ABSOLUTE,
			pycode.POP_JUMP_IF_FALSE, pycode.POP_JUMP_IF_TRUE,
			pycode.JUMP_IF_FALSE_OR_POP, pycode.JUMP_IF_TRUE_OR_POP,
			pycode.CONTINUE_LOOP, pycode.FOR_ITER, pycode.SETUP_LOOP:
			if int(in.Arg) < len(t) {
				t[int(in.Arg)] = true
			}
		}
	}
	return t
}

// fuseCode rewrites fusable pairs in cd's quickened stream. Runs at
// materialize time, after the monomorphic IC rewrites and before the
// speculative int pass (fusion claims COMPARE_OP heads in their base
// form).
func (vm *VM) fuseCode(code *pycode.Code, cd *codeData) {
	quick := cd.quick
	targets := jumpTargets(code)
	pair := func(i int, k fuseKind) {
		quick[i].Op = atomicFuse[k].fused
		cd.fused = append(cd.fused, fusedSite{pc: i, kind: k})
		vm.Stats.IC.Fused++
	}
	for i := 0; i+1 < len(quick); i++ {
		switch quick[i].Op {
		case pycode.COMPARE_OP:
			n := quick[i+1].Op
			if (n == pycode.POP_JUMP_IF_FALSE || n == pycode.POP_JUMP_IF_TRUE) && !targets[i+1] {
				pair(i, fuseCmpJump)
				i++
			}
		case pycode.LOAD_FAST:
			if targets[i+1] {
				continue
			}
			switch quick[i+1].Op {
			case pycode.LOAD_FAST:
				pair(i, fuseFastFast)
				i++
			case pycode.LOAD_ATTR_IC:
				// The attr-call distance pair is the bigger win (it
				// elides a BoundMethod allocation); only borrow the
				// receiver when the attr load does not feed a call.
				if _, call := findCallSlot(quick, targets, i+1); !call {
					pair(i, fuseFastAttr)
					i++
				}
			case pycode.STORE_ATTR_IC, pycode.STORE_ATTR:
				pair(i, fuseFastStore)
				i++
			case pycode.BINARY_ADD, pycode.BINARY_SUBTRACT, pycode.BINARY_MULTIPLY:
				pair(i, fuseFastBin)
				i++
			}
		case pycode.LOAD_CONST:
			if targets[i+1] {
				continue
			}
			switch quick[i+1].Op {
			case pycode.BINARY_ADD, pycode.BINARY_SUBTRACT, pycode.BINARY_MULTIPLY:
				pair(i, fuseConstBin)
				i++
			case pycode.RETURN_VALUE:
				pair(i, fuseConstReturn)
				i++
			}
		case pycode.LOAD_GLOBAL_IC:
			switch quick[i+1].Op {
			case pycode.BINARY_ADD, pycode.BINARY_SUBTRACT, pycode.BINARY_MULTIPLY:
				if !targets[i+1] {
					pair(i, fuseGlobalBin)
					i++
				}
			}
		case pycode.LOAD_ATTR_IC:
			if j, ok := findCallSlot(quick, targets, i); ok {
				quick[i].Op = pycode.LOAD_ATTR_CALL_METHOD
				quick[j].Op = pycode.CALL_METHOD
				cd.fused = append(cd.fused, fusedSite{pc: i, kind: fuseAttrCall, callPC: j})
				vm.Stats.IC.Fused++
			}
		}
	}
	// Second sweep: a LOAD_FAST_LOAD_FAST whose tail feeds a fused
	// COMPARE_POP_JUMP upgrades to the four-slot loop-header form. No new
	// target checks are needed: every interior slot is intact, and each
	// suffix (pc+1, pc+2, pc+3) executes standalone with the generic
	// stack contract if jumped into.
	for fi := range cd.fused {
		fs := &cd.fused[fi]
		if fs.kind == fuseFastFast && fs.pc+2 < len(quick) &&
			quick[fs.pc+2].Op == pycode.COMPARE_POP_JUMP {
			quick[fs.pc].Op = pycode.LOAD_FAST_FAST_CMP_JUMP
			fs.kind = fuseFastFastCmp
		}
	}
}

// findCallSlot scans forward from a LOAD_ATTR_IC head for the
// CALL_FUNCTION that consumes it, accepting only a straight-line run of
// pure pushes whose count matches the call's argc. Any jump target inside
// the window (head exclusive — landing on the head itself executes the
// whole pair with the generic stack contract) rejects the pairing: an
// entry between the halves would observe the head's extra stack slot, or
// reach CALL_METHOD without it.
func findCallSlot(quick []pycode.Instr, targets []bool, i int) (int, bool) {
	depth := 0
	for j := i + 1; j < len(quick) && j <= i+1+fuseMaxArgScan; j++ {
		if targets[j] {
			return 0, false
		}
		switch quick[j].Op {
		case pycode.LOAD_FAST, pycode.LOAD_CONST, pycode.LOAD_GLOBAL,
			pycode.LOAD_GLOBAL_IC, pycode.LOAD_NAME:
			depth++
		case pycode.CALL_FUNCTION:
			if int(quick[j].Arg) == depth {
				return j, true
			}
			return 0, false
		default:
			return 0, false
		}
	}
	return 0, false
}

// intFastCode rewrites remaining (unfused) arithmetic and comparison
// sites to their speculative unboxed-int forms. Only sites with a cache
// slot are rewritten: the slot's miss budget is what de-quickens a site
// whose operands turn out not to be small ints.
func (vm *VM) intFastCode(code *pycode.Code, cd *codeData) {
	for i := range cd.quick {
		if code.SiteOf[i] < 0 {
			continue
		}
		switch cd.quick[i].Op {
		case pycode.BINARY_ADD:
			cd.quick[i].Op = pycode.BINARY_ADD_INT
		case pycode.BINARY_SUBTRACT:
			cd.quick[i].Op = pycode.BINARY_SUB_INT
		case pycode.BINARY_MULTIPLY:
			cd.quick[i].Op = pycode.BINARY_MUL_INT
		case pycode.COMPARE_OP:
			if pycode.CmpOp(cd.quick[i].Arg) <= pycode.CmpGE {
				cd.quick[i].Op = pycode.COMPARE_OP_INT
			}
		}
	}
}

// defuseAtomic rewrites every fused atomic pair in cd back to its base
// head opcode (the second slot was never modified). Attr-call pairs are
// left alone — see the package comment for why.
func (vm *VM) defuseAtomic(cd *codeData) {
	if cd == nil || cd.quick == nil {
		return
	}
	for _, fs := range cd.fused {
		if fs.kind == fuseAttrCall {
			continue
		}
		if cd.quick[fs.pc].Op == atomicFuse[fs.kind].fused {
			cd.quick[fs.pc].Op = atomicFuse[fs.kind].head
			vm.Stats.IC.Defused++
		}
	}
}

// refuseAll re-applies the atomic fusions recorded in cd.fused (the
// even-numbered trips of the fusion-flush churn). A head that was
// de-quickened in the meantime is left generic — de-fused atomic heads
// are generic opcodes that never miss, so in practice the head is always
// restorable.
func (vm *VM) refuseAll(cd *codeData) {
	if cd == nil || cd.quick == nil {
		return
	}
	for _, fs := range cd.fused {
		if fs.kind == fuseAttrCall {
			continue
		}
		if cd.quick[fs.pc].Op == atomicFuse[fs.kind].head {
			cd.quick[fs.pc].Op = atomicFuse[fs.kind].fused
			vm.Stats.IC.Fused++
		}
	}
}

// defuseAll restores every fusion that is safe to undo: atomic pairs
// always, attr-call pairs only when no frame is live (their halves
// bracket stack state). Restored attr-call entries are dropped from the
// fused list; unrestorable ones are kept fused and keep deoptimizing
// per-execution through the nil-marker path.
func (vm *VM) defuseAll(cd *codeData) {
	if cd == nil || cd.quick == nil {
		return
	}
	vm.defuseAtomic(cd)
	kept := cd.fused[:0]
	for _, fs := range cd.fused {
		if fs.kind != fuseAttrCall {
			continue // atomic entries are dropped: nothing re-fuses them
		}
		if vm.frame != nil {
			kept = append(kept, fs)
			continue
		}
		if cd.quick[fs.pc].Op == pycode.LOAD_ATTR_CALL_METHOD {
			cd.quick[fs.pc].Op = pycode.LOAD_ATTR_IC
		}
		if cd.quick[fs.callPC].Op == pycode.CALL_METHOD {
			cd.quick[fs.callPC].Op = pycode.CALL_FUNCTION
		}
		vm.Stats.IC.Defused++
	}
	cd.fused = kept
}

// fuseTick advances the fusion-flush churn counter: every tier-2
// fast-path execution ticks it, and every fuseFlushEvery ticks the
// atomic fusions are de-fused (odd trips) or re-fused (even trips).
// Int-fast executions keep ticking while the pairs are de-fused, so the
// re-fusion trip is always reached.
func (vm *VM) fuseTick() {
	if vm.fuseFlushEvery == 0 {
		return
	}
	vm.fuseTicks++
	if vm.fuseTicks%vm.fuseFlushEvery != 0 {
		return
	}
	if vm.fuseFlushed {
		for _, cd := range vm.constCache {
			vm.refuseAll(cd)
		}
	} else {
		for _, cd := range vm.constCache {
			vm.defuseAtomic(cd)
		}
	}
	vm.fuseFlushed = !vm.fuseFlushed
}

// ---- fused handlers ----

// loadAttrCallMethod executes the head of an attr-call pair. The method
// fast path requires the site's MRU cache entry to be a guarded
// ICAttrMethod hit; it pushes (callee, self) — transferring the
// receiver's reference into the self slot — and skips the BoundMethod
// allocation the generic hit would pay. Every other outcome (value
// attribute, module function, cache miss) pushes (nil, attr-value) with
// exactly the generic LOAD_ATTR_IC semantics, except that the
// instruction is never rewritten back to LOAD_ATTR: the pair's stack
// contract is fixed, so a megamorphic head keeps its miss budget
// saturated but stays fused.
func (vm *VM) loadAttrCallMethod(f *pyobj.Frame, in pycode.Instr, pc int) {
	obj := vm.pop(f)
	site := f.Code.SiteOf[pc]
	c := &f.Caches[site]
	name := f.Code.Names[in.Arg]

	if o, isInst := obj.(*pyobj.Instance); isInst {
		mc := c
		if c.State == pyobj.ICPoly && len(c.Poly) > 0 {
			mc = &c.Poly[0] // elide through the MRU way only
		}
		if mc.State == pyobj.ICAttrMethod && mc.Class == o.Class && mc.CVer == o.Class.ChainVersion() {
			if _, _, shadowed := o.Dict.GetStr(name); !shadowed {
				e := vm.Eng
				e.Load(core.TypeCheck, obj.Hdr().Addr, false)
				e.Branch(core.TypeCheck, true)
				vm.icGuardEvents(f, site)
				e.Load(core.NameResolution, o.Dict.TableAddr, true)
				e.Branch(core.NameResolution, true)
				vm.Incref(mc.Fn)
				vm.push(f, mc.Fn)
				vm.push(f, o)
				vm.Stats.IC.FusedHits++
				vm.fuseTick()
				return
			}
		}
	}

	// Non-eliding path: LOAD_ATTR_IC semantics under a nil marker.
	var v pyobj.Object
	if c.State == pyobj.ICPoly {
		if pv, ok := vm.attrPolyLookup(f, obj, c, site, name); ok {
			v = pv
		}
	} else if hv, method, ok := vm.attrCacheHit(f, obj, c, site, name); ok {
		v = hv
		if method {
			vm.Stats.IC.MethodHits++
		} else {
			vm.Stats.IC.AttrHits++
		}
	}
	if v == nil {
		if c.State == pyobj.ICPoly {
			vm.Stats.IC.PolyMisses++
		} else {
			vm.Stats.IC.AttrMisses++
		}
		if c.State != pyobj.ICEmpty {
			vm.Stats.IC.Invalidations++
		}
		if c.Misses < 255 {
			c.Misses++
		}
		v = vm.getAttr(obj, name)
		if c.Misses < icMaxMisses {
			if _, ok := vm.refillAttrAfterMiss(c, obj, name); ok {
				vm.noteFill()
			}
		}
	}
	vm.push(f, nil)
	vm.push(f, v)
	vm.Decref(obj)
	vm.Stats.IC.FusedMisses++
}

// callMethod executes the rewritten CALL_FUNCTION of an attr-call pair:
// argc arguments above the head's two slots. A non-nil bottom slot is
// the elided method's callee — prepend self and call it directly,
// skipping the callable type dispatch the generic path pays. A nil
// bottom slot means the head took the generic path; the top slot is an
// ordinary callable.
func (vm *VM) callMethod(f *pyobj.Frame, argc int) {
	vm.Stats.Calls++
	e := vm.Eng
	args := make([]pyobj.Object, argc)
	for i := argc - 1; i >= 0; i-- {
		args[i] = vm.pop(f)
	}
	selfOrCallable := vm.pop(f)
	head := vm.pop(f)

	if head != nil {
		fn := head.(*pyobj.Func)
		// Self-prepend shuffle, as CallObject's BoundMethod arm.
		e.ALUn(core.FunctionSetup, 2)
		full := make([]pyobj.Object, 0, argc+1)
		full = append(full, selfOrCallable)
		full = append(full, args...)
		res := vm.callPy(fn, full)
		for _, a := range args {
			vm.Decref(a)
		}
		vm.Decref(selfOrCallable)
		vm.Decref(fn)
		vm.push(f, res)
		vm.fuseTick()
		return
	}

	// Generic CALL_FUNCTION tail on the attr result.
	e.Load(core.TypeCheck, selfOrCallable.Hdr().Addr, false)
	e.ALU(core.TypeCheck, true)
	e.Branch(core.TypeCheck, true)
	res := vm.CallObject(selfOrCallable, args)
	for _, a := range args {
		vm.Decref(a)
	}
	vm.Decref(selfOrCallable)
	vm.push(f, res)
}

// comparePopJump executes a fused COMPARE_OP + POP_JUMP_IF_{FALSE,TRUE}.
// The intact second slot supplies the jump sense and target. The int
// fast path computes the branch condition unboxed, skipping the bool
// singleton round-trip (incref+decref, balanced) and the second
// dispatch; every other operand shape falls back to the generic
// CompareOp + Truthy sequence with only the dispatch elided.
func (vm *VM) comparePopJump(f *pyobj.Frame, in pycode.Instr, pc int) {
	next := f.Insns[pc+1]
	b := vm.pop(f)
	a := vm.pop(f)
	op := pycode.CmpOp(in.Arg)

	var t bool
	ai, aok := a.(*pyobj.Int)
	bi, bok := b.(*pyobj.Int)
	// Speculation guard: one type-word load + branch, charged to
	// Dispatch (the category this machinery exists to shrink).
	vm.Eng.Load(core.Dispatch, a.Hdr().Addr, true)
	fast := vm.intFast && op <= pycode.CmpGE && aok && bok &&
		vm.intFastOK(ai.V) && vm.intFastOK(bi.V)
	vm.Eng.Branch(core.Dispatch, fast)
	if fast {
		vm.Eng.ALU(core.Execute, true)
		t = cmpResult(op, compareInt(ai.V, bi.V))
	} else {
		r := vm.CompareOp(op, a, b)
		t = vm.Truthy(r)
		vm.Decref(r)
	}
	vm.Decref(a)
	vm.Decref(b)

	vm.retireElided(f, next.Op)
	taken := t == (next.Op == pycode.POP_JUMP_IF_TRUE)
	vm.Eng.Branch(core.Execute, taken)
	if taken {
		f.PC = int(next.Arg)
	} else {
		f.PC = pc + 2
	}
	vm.Stats.IC.FusedHits++
	vm.fuseTick()
}

// loadFastLoadFast executes two adjacent local loads in one dispatch,
// replicating each load's events and UnboundLocalError check exactly.
func (vm *VM) loadFastLoadFast(f *pyobj.Frame, in pycode.Instr, pc int) {
	next := f.Insns[pc+1]
	vm.Eng.ALU(core.RegTransfer, false)
	vm.Eng.Load(core.Stack, f.LocalAddr(int(in.Arg)), true)
	v := f.Locals[in.Arg]
	vm.errCheck(v == nil)
	if v == nil {
		Raise("UnboundLocalError", "local variable '%s' referenced before assignment",
			f.Code.Varnames[in.Arg])
	}
	vm.Incref(v)
	vm.push(f, v)

	// Second load; its dispatch is elided but its bytecode retires.
	vm.retireElided(f, next.Op)
	vm.Eng.ALU(core.RegTransfer, false)
	vm.Eng.Load(core.Stack, f.LocalAddr(int(next.Arg)), true)
	w := f.Locals[next.Arg]
	vm.errCheck(w == nil)
	if w == nil {
		Raise("UnboundLocalError", "local variable '%s' referenced before assignment",
			f.Code.Varnames[next.Arg])
	}
	vm.Incref(w)
	vm.push(f, w)
	f.PC = pc + 2
	vm.Stats.IC.FusedHits++
	vm.fuseTick()
}

// ---- speculative unboxed-int handlers ----

// intFastOK applies the operand-magnitude cap (difftest's forced-deopt
// knob); 0 means only real int64 overflow deopts.
func (vm *VM) intFastOK(v int64) bool {
	return vm.intFastMaxAbs == 0 || (v <= vm.intFastMaxAbs && v >= -vm.intFastMaxAbs)
}

// intFastMiss charges a deopt to the site's miss budget and rewrites the
// instruction back to its generic form once the budget is exhausted.
// Unlike the fused pairs, the int-fast forms are single-slot rewrites,
// so de-quickening them mid-run is always safe.
func (vm *VM) intFastMiss(f *pyobj.Frame, pc int) {
	vm.Stats.IC.IntFastMisses++
	site := f.Code.SiteOf[pc]
	if site < 0 {
		return
	}
	c := &f.Caches[site]
	if c.Misses < 255 {
		c.Misses++
	}
	if c.Misses >= icMaxMisses {
		in := f.Insns[pc]
		f.Insns[pc] = pycode.Instr{Op: in.Op.Dequicken(), Arg: in.Arg}
		c.Reset()
		vm.Stats.IC.Dequickened++
	}
}

// intFastBin executes BINARY_{ADD,SUB,MUL}_INT: unboxed arithmetic with
// an exact overflow pre-check. Any deopt — non-int operand, magnitude
// cap, would-overflow — falls back to the generic BinaryOp, which
// re-derives the type/overflow errors with identical messages and
// events.
func (vm *VM) intFastBin(f *pyobj.Frame, op pycode.Opcode, pc int) {
	b := vm.pop(f)
	a := vm.pop(f)
	ai, aok := a.(*pyobj.Int)
	bi, bok := b.(*pyobj.Int)

	vm.Eng.Load(core.Dispatch, a.Hdr().Addr, true)
	fast := aok && bok && vm.intFastOK(ai.V) && vm.intFastOK(bi.V)
	var v int64
	if fast {
		v, fast = intFastArith(op, ai.V, bi.V)
	}
	vm.Eng.Branch(core.Dispatch, fast)
	if fast {
		vm.Eng.ALU(core.Execute, true)
		r := vm.NewInt(v)
		vm.Decref(a)
		vm.Decref(b)
		vm.push(f, r)
		vm.Stats.IC.IntFastHits++
		vm.fuseTick()
		return
	}

	vm.intFastMiss(f, pc)
	r := vm.BinaryOp(binKindOf(op.Dequicken()), a, b)
	vm.Decref(a)
	vm.Decref(b)
	vm.push(f, r)
	vm.fuseTick()
}

const minInt64 = -1 << 63

// intFastArith computes x OP y unboxed with an exact overflow pre-check,
// reporting false (a deopt) when the int64 result would be wrong.
func intFastArith(op pycode.Opcode, x, y int64) (int64, bool) {
	switch op {
	case pycode.BINARY_ADD_INT:
		v := x + y
		return v, !((x > 0 && y > 0 && v < 0) || (x < 0 && y < 0 && v >= 0))
	case pycode.BINARY_SUB_INT:
		v := x - y
		return v, !((x > 0 && y < 0 && v < 0) || (x < 0 && y > 0 && v >= 0))
	case pycode.BINARY_MUL_INT:
		v := x * y
		return v, x == 0 || (v/x == y && !(x == -1 && y == minInt64))
	}
	return 0, false
}

// compareOpInt executes COMPARE_OP_INT (an unfused comparison site
// rewritten speculatively): unboxed compare on the fast path, generic
// CompareOp on deopt.
func (vm *VM) compareOpInt(f *pyobj.Frame, in pycode.Instr, pc int) {
	b := vm.pop(f)
	a := vm.pop(f)
	op := pycode.CmpOp(in.Arg)
	ai, aok := a.(*pyobj.Int)
	bi, bok := b.(*pyobj.Int)

	vm.Eng.Load(core.Dispatch, a.Hdr().Addr, true)
	fast := aok && bok && vm.intFastOK(ai.V) && vm.intFastOK(bi.V)
	vm.Eng.Branch(core.Dispatch, fast)
	if fast {
		vm.Eng.ALU(core.Execute, true)
		r := vm.NewBool(cmpResult(op, compareInt(ai.V, bi.V)))
		vm.Decref(a)
		vm.Decref(b)
		vm.push(f, r)
		vm.Stats.IC.IntFastHits++
		vm.fuseTick()
		return
	}

	vm.intFastMiss(f, pc)
	r := vm.CompareOp(op, a, b)
	vm.Decref(a)
	vm.Decref(b)
	vm.push(f, r)
	vm.fuseTick()
}

// ---- operand-borrowing superinstruction handlers ----
//
// Each handler below reads the head's operand without pushing it: the
// owning reference (a frame local slot, co_consts, or a guarded
// global-dict entry) stays live for the whole handler, so the generic
// sequence's incref+push ... pop+decref round-trip is elided as a
// balanced pair — net reference counts are identical to the generic
// pair's. The head still pays the generic form's resolution events (the
// elision is stack and refcount traffic, not semantic work), and every
// elided slot retires a bytecode for budget and telemetry parity.

// localBorrow reads a local slot with LOAD_FAST's events and
// UnboundLocalError check, returning a borrowed reference.
func (vm *VM) localBorrow(f *pyobj.Frame, idx int) pyobj.Object {
	vm.Eng.ALU(core.RegTransfer, false)
	vm.Eng.Load(core.Stack, f.LocalAddr(idx), true)
	v := f.Locals[idx]
	vm.errCheck(v == nil)
	if v == nil {
		Raise("UnboundLocalError", "local variable '%s' referenced before assignment",
			f.Code.Varnames[idx])
	}
	return v
}

// constBorrow reads a co_consts slot with LOAD_CONST's events, returning
// a borrowed reference (consts are owned by the code object for the
// frame's whole lifetime).
func (vm *VM) constBorrow(f *pyobj.Frame, idx int) pyobj.Object {
	vm.Eng.ALU(core.RegTransfer, false)
	vm.Eng.Load(core.ConstLoad, f.ConstsAddr+uint64(idx)*8, true)
	return f.Consts[idx]
}

// retireElided accounts one fused-away slot: the dispatch's events are
// gone but the bytecode still retires against the step budget and the
// resource governor, so a fused program trips the exact same limits at
// the exact same retirement count as its generic execution. op is the
// elided slot's opcode, for the budget message.
func (vm *VM) retireElided(f *pyobj.Frame, op pycode.Opcode) {
	vm.iterations++
	vm.Stats.Bytecodes++
	if vm.MaxBytecodes != 0 && vm.iterations > vm.MaxBytecodes {
		Raise("RuntimeError", "bytecode budget exceeded in %s at pc=%d (op=%s)",
			f.Code.Name, f.PC, op.Dequicken())
	}
	if vm.iterations >= vm.nextCheck {
		vm.governorCheck(f, op)
	}
}

// loadFastLoadAttr executes LOAD_FAST + LOAD_ATTR(_IC) with a borrowed
// receiver. The second slot is read per execution: the attr site may
// de-quicken itself (icMiss rewrites slot pc+1 only) while the head
// stays fused, in which case the generic lookup runs instead.
func (vm *VM) loadFastLoadAttr(f *pyobj.Frame, in pycode.Instr, pc int) {
	obj := vm.localBorrow(f, int(in.Arg))
	next := f.Insns[pc+1]
	vm.retireElided(f, next.Op)
	var v pyobj.Object
	if next.Op == pycode.LOAD_ATTR_IC {
		v = vm.loadAttrIC(f, obj, next, pc+1)
	} else {
		v = vm.getAttr(obj, f.Code.Names[next.Arg])
	}
	vm.push(f, v)
	f.PC = pc + 2
	vm.Stats.IC.FusedHits++
	vm.fuseTick()
}

// loadFastStoreAttr executes LOAD_FAST + STORE_ATTR(_IC) with a
// borrowed receiver: the stored value is popped and released exactly as
// the generic pair does, only the receiver round-trip is elided.
func (vm *VM) loadFastStoreAttr(f *pyobj.Frame, in pycode.Instr, pc int) {
	obj := vm.localBorrow(f, int(in.Arg))
	next := f.Insns[pc+1]
	vm.retireElided(f, next.Op)
	v := vm.pop(f)
	if next.Op == pycode.STORE_ATTR_IC {
		vm.storeAttrIC(f, obj, next, pc+1, v)
	} else {
		vm.setAttr(obj, f.Code.Names[next.Arg], v)
	}
	vm.Decref(v)
	f.PC = pc + 2
	vm.Stats.IC.FusedHits++
	vm.fuseTick()
}

// binaryFusedTail finishes a borrowed-rhs binary pair: a is owned (it
// came off the stack), b is borrowed unless ownedB. When the second slot
// holds a speculative *_INT form the unboxed fast path runs under the
// usual one-load-one-branch guard; a deopt charges the slot's miss
// budget (possibly de-quickening slot pc+1 alone) and falls back to the
// generic BinaryOp for identical slow-path results and errors.
func (vm *VM) binaryFusedTail(f *pyobj.Frame, a, b pyobj.Object, pc int, ownedB bool) {
	next := f.Insns[pc+1]
	op := next.Op
	if gen := op.Dequicken(); gen != op {
		ai, aok := a.(*pyobj.Int)
		bi, bok := b.(*pyobj.Int)
		vm.Eng.Load(core.Dispatch, a.Hdr().Addr, true)
		fast := vm.intFast && aok && bok && vm.intFastOK(ai.V) && vm.intFastOK(bi.V)
		var v int64
		if fast {
			v, fast = intFastArith(op, ai.V, bi.V)
		}
		vm.Eng.Branch(core.Dispatch, fast)
		if fast {
			vm.Eng.ALU(core.Execute, true)
			r := vm.NewInt(v)
			vm.Decref(a)
			if ownedB {
				vm.Decref(b)
			}
			vm.push(f, r)
			vm.Stats.IC.IntFastHits++
			f.PC = pc + 2
			vm.Stats.IC.FusedHits++
			vm.fuseTick()
			return
		}
		vm.intFastMiss(f, pc+1)
		op = gen
	}
	r := vm.BinaryOp(binKindOf(op), a, b)
	vm.Decref(a)
	if ownedB {
		vm.Decref(b)
	}
	vm.push(f, r)
	f.PC = pc + 2
	vm.Stats.IC.FusedHits++
	vm.fuseTick()
}

// loadFastBinary executes LOAD_FAST + BINARY_{ADD,SUB,MUL}(_INT) with a
// borrowed right operand.
func (vm *VM) loadFastBinary(f *pyobj.Frame, in pycode.Instr, pc int) {
	b := vm.localBorrow(f, int(in.Arg))
	vm.retireElided(f, f.Insns[pc+1].Op)
	a := vm.pop(f)
	vm.binaryFusedTail(f, a, b, pc, false)
}

// loadConstBinary executes LOAD_CONST + BINARY_{ADD,SUB,MUL}(_INT) with
// a borrowed right operand.
func (vm *VM) loadConstBinary(f *pyobj.Frame, in pycode.Instr, pc int) {
	b := vm.constBorrow(f, int(in.Arg))
	vm.retireElided(f, f.Insns[pc+1].Op)
	a := vm.pop(f)
	vm.binaryFusedTail(f, a, b, pc, false)
}

// loadGlobalBinary executes LOAD_GLOBAL_IC + BINARY_{ADD,SUB,MUL}(_INT).
// On a guarded cache hit the right operand is borrowed from the global
// dict entry (the dict owns the reference and nothing can run between
// the fused halves). On a miss the generic LOAD_GLOBAL_IC handler runs —
// including its refill and its budget accounting, which may de-quicken
// the head back to plain LOAD_GLOBAL — and the pushed value is popped
// back into an owned right operand.
func (vm *VM) loadGlobalBinary(f *pyobj.Frame, in pycode.Instr, pc int) {
	site := f.Code.SiteOf[pc]
	c := &f.Caches[site]
	g := f.Globals
	var b pyobj.Object
	switch c.State {
	case pyobj.ICGlobal:
		if c.Dict == g && c.Ver == g.Version {
			vm.icGuardEvents(f, site)
			vm.Eng.Load(core.NameResolution, f.ICAddr+uint64(site)*icSlotBytes+8, true)
			b = c.Value
			vm.Stats.IC.GlobalHits++
		}
	case pyobj.ICGlobalBuiltin:
		if c.Dict == g && c.Ver == g.Version && c.BVer == vm.Builtins.Version {
			vm.icGuardEvents(f, site)
			vm.Eng.ALU(core.NameResolution, true)
			vm.Eng.Load(core.NameResolution, f.ICAddr+uint64(site)*icSlotBytes+8, true)
			b = c.Value
			vm.Stats.IC.GlobalHits++
		}
	}
	if b != nil {
		vm.retireElided(f, f.Insns[pc+1].Op)
		a := vm.pop(f)
		vm.binaryFusedTail(f, a, b, pc, false)
		return
	}
	vm.loadGlobalIC(f, in, pc)
	b = vm.pop(f)
	vm.retireElided(f, f.Insns[pc+1].Op)
	a := vm.pop(f)
	vm.binaryFusedTail(f, a, b, pc, true)
}

// loadFastFastCmpJump executes the four-slot loop-header form: two
// borrowed local loads feeding a fused compare-and-branch. The compare
// slot is read per execution — the fusion-flush churn may have de-fused
// the inner COMPARE_POP_JUMP back to COMPARE_OP(_INT), in which case the
// boxed compare result is pushed for the still-separate jump.
func (vm *VM) loadFastFastCmpJump(f *pyobj.Frame, in pycode.Instr, pc int) {
	a := vm.localBorrow(f, int(in.Arg))
	vm.retireElided(f, pycode.LOAD_FAST)
	b := vm.localBorrow(f, int(f.Insns[pc+1].Arg))
	cmp := f.Insns[pc+2]
	op := pycode.CmpOp(cmp.Arg)
	vm.retireElided(f, cmp.Op)

	var t bool
	ai, aok := a.(*pyobj.Int)
	bi, bok := b.(*pyobj.Int)
	vm.Eng.Load(core.Dispatch, a.Hdr().Addr, true)
	fast := vm.intFast && op <= pycode.CmpGE && aok && bok &&
		vm.intFastOK(ai.V) && vm.intFastOK(bi.V)
	vm.Eng.Branch(core.Dispatch, fast)
	if fast {
		vm.Eng.ALU(core.Execute, true)
		t = cmpResult(op, compareInt(ai.V, bi.V))
	} else {
		r := vm.CompareOp(op, a, b)
		t = vm.Truthy(r)
		vm.Decref(r)
	}

	if cmp.Op == pycode.COMPARE_POP_JUMP {
		jmp := f.Insns[pc+3]
		vm.retireElided(f, jmp.Op)
		taken := t == (jmp.Op == pycode.POP_JUMP_IF_TRUE)
		vm.Eng.Branch(core.Execute, taken)
		if taken {
			f.PC = int(jmp.Arg)
		} else {
			f.PC = pc + 4
		}
	} else {
		vm.push(f, vm.NewBool(t))
		f.PC = pc + 3
	}
	vm.Stats.IC.FusedHits++
	vm.fuseTick()
}
