package interp

import (
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/pyobj"
)

// registerJSONModule builds the json module: a real encoder/decoder over
// MiniPy objects, modeled as C-extension code (all events carry the CLib
// flag while it runs). The pickle/json family of benchmarks spends most of
// its time here, as the paper's C-library measurements show.
func (vm *VM) registerJSONModule() {
	entries := map[string]pyobj.Object{}

	dumpsID := vm.reg("json.dumps", 512, true, true,
		func(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
			vm.argCheck("json.dumps", args, 1, 1)
			var sb strings.Builder
			vm.jsonEncode(&sb, args[0], 0)
			return vm.NewStr(sb.String())
		})
	entries["dumps"] = vm.method("dumps", dumpsID)

	loadsID := vm.reg("json.loads", 768, true, true,
		func(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
			vm.argCheck("json.loads", args, 1, 1)
			s := vm.wantStr("json.loads", args[0])
			p := &jsonParser{vm: vm, s: s.V, dataAddr: s.DataAddr}
			v := p.value()
			p.ws()
			vm.errCheck(p.i != len(p.s))
			if p.i != len(p.s) {
				Raise("ValueError", "extra data at position %d", p.i)
			}
			return v
		})
	entries["loads"] = vm.method("loads", loadsID)

	vm.bindModule("json", entries)
}

// jsonEncode walks the object graph emitting per-node C-library work.
func (vm *VM) jsonEncode(sb *strings.Builder, o pyobj.Object, depth int) {
	if depth > 64 {
		Raise("ValueError", "object too deeply nested")
	}
	e := vm.Eng
	e.Load(core.Execute, o.Hdr().Addr, false)
	e.ALUn(core.Execute, 2)
	switch v := o.(type) {
	case *pyobj.None:
		sb.WriteString("null")
	case *pyobj.Bool:
		if v.V {
			sb.WriteString("true")
		} else {
			sb.WriteString("false")
		}
	case *pyobj.Int:
		e.Load(core.Execute, v.H.Addr+16, true)
		sb.WriteString(strconv.FormatInt(v.V, 10))
	case *pyobj.Float:
		e.Load(core.Execute, v.H.Addr+16, true)
		sb.WriteString(strconv.FormatFloat(v.V, 'g', -1, 64))
	case *pyobj.Str:
		vm.emitStrScan(v, len(v.V))
		sb.WriteByte('"')
		for i := 0; i < len(v.V); i++ {
			c := v.V[i]
			switch c {
			case '"':
				sb.WriteString(`\"`)
			case '\\':
				sb.WriteString(`\\`)
			case '\n':
				sb.WriteString(`\n`)
			case '\t':
				sb.WriteString(`\t`)
			case '\r':
				sb.WriteString(`\r`)
			default:
				sb.WriteByte(c)
			}
		}
		sb.WriteByte('"')
	case *pyobj.List:
		sb.WriteByte('[')
		for i, it := range v.Items {
			if i > 0 {
				sb.WriteByte(',')
			}
			e.Load(core.Execute, v.ItemAddr(minInt(i, eventCap)), false)
			vm.jsonEncode(sb, it, depth+1)
		}
		sb.WriteByte(']')
	case *pyobj.Tuple:
		sb.WriteByte('[')
		for i, it := range v.Items {
			if i > 0 {
				sb.WriteByte(',')
			}
			e.Load(core.Execute, v.ItemAddr(minInt(i, eventCap)), false)
			vm.jsonEncode(sb, it, depth+1)
		}
		sb.WriteByte(']')
	case *pyobj.Dict:
		sb.WriteByte('{')
		first := true
		v.ForEach(func(k, val pyobj.Object) {
			ks, ok := k.(*pyobj.Str)
			if !ok {
				Raise("TypeError", "json keys must be strings, got %s", pyobj.TypeName(k))
			}
			if !first {
				sb.WriteByte(',')
			}
			first = false
			e.Load(core.Execute, v.TableAddr, false)
			vm.jsonEncode(sb, ks, depth+1)
			sb.WriteByte(':')
			vm.jsonEncode(sb, val, depth+1)
		})
		sb.WriteByte('}')
	default:
		Raise("TypeError", "%s is not JSON serializable", pyobj.TypeName(o))
	}
}

type jsonParser struct {
	vm       *VM
	s        string
	i        int
	dataAddr uint64
}

// step emits the per-character scan traffic of the C parser.
func (p *jsonParser) step(n int) {
	if n > 64 {
		n = 64
	}
	for k := 0; k < n; k++ {
		p.vm.Eng.Load(core.Execute, p.dataAddr+uint64(p.i+k), false)
	}
	p.vm.Eng.ALU(core.Execute, true)
}

func (p *jsonParser) ws() {
	for p.i < len(p.s) && (p.s[p.i] == ' ' || p.s[p.i] == '\t' || p.s[p.i] == '\n' || p.s[p.i] == '\r') {
		p.i++
	}
}

func (p *jsonParser) fail(msg string) {
	p.vm.errCheck(true)
	Raise("ValueError", "%s at position %d", msg, p.i)
}

func (p *jsonParser) value() pyobj.Object {
	p.ws()
	if p.i >= len(p.s) {
		p.fail("unexpected end of JSON")
	}
	p.step(1)
	switch c := p.s[p.i]; {
	case c == '{':
		return p.object()
	case c == '[':
		return p.array()
	case c == '"':
		return p.vm.NewStr(p.parseString())
	case c == 't':
		p.expect("true")
		return p.vm.NewBool(true)
	case c == 'f':
		p.expect("false")
		return p.vm.NewBool(false)
	case c == 'n':
		p.expect("null")
		p.vm.Incref(p.vm.None)
		return p.vm.None
	default:
		return p.number()
	}
}

func (p *jsonParser) expect(word string) {
	if !strings.HasPrefix(p.s[p.i:], word) {
		p.fail("invalid literal")
	}
	p.step(len(word))
	p.i += len(word)
}

func (p *jsonParser) parseString() string {
	// assumes s[i] == '"'
	p.i++
	var sb strings.Builder
	for p.i < len(p.s) {
		c := p.s[p.i]
		p.step(1)
		if c == '"' {
			p.i++
			return sb.String()
		}
		if c == '\\' {
			p.i++
			if p.i >= len(p.s) {
				break
			}
			switch p.s[p.i] {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case '"', '\\', '/':
				sb.WriteByte(p.s[p.i])
			case 'u':
				if p.i+4 < len(p.s) {
					n, err := strconv.ParseUint(p.s[p.i+1:p.i+5], 16, 32)
					if err == nil && n < 256 {
						sb.WriteByte(byte(n))
					} else {
						sb.WriteByte('?')
					}
					p.i += 4
				}
			default:
				sb.WriteByte(p.s[p.i])
			}
			p.i++
			continue
		}
		sb.WriteByte(c)
		p.i++
	}
	p.fail("unterminated string")
	return ""
}

func (p *jsonParser) number() pyobj.Object {
	start := p.i
	for p.i < len(p.s) && strings.IndexByte("+-0123456789.eE", p.s[p.i]) >= 0 {
		p.i++
	}
	if start == p.i {
		p.fail("invalid value")
	}
	p.step(p.i - start)
	text := p.s[start:p.i]
	if !strings.ContainsAny(text, ".eE") {
		n, err := strconv.ParseInt(text, 10, 64)
		if err == nil {
			return p.vm.NewInt(n)
		}
	}
	f, err := strconv.ParseFloat(text, 64)
	if err != nil {
		p.fail("invalid number")
	}
	return p.vm.NewFloat(f)
}

func (p *jsonParser) array() pyobj.Object {
	p.i++ // [
	var items []pyobj.Object
	p.ws()
	if p.i < len(p.s) && p.s[p.i] == ']' {
		p.i++
		return p.vm.NewList(items)
	}
	for {
		items = append(items, p.value())
		p.ws()
		if p.i >= len(p.s) {
			p.fail("unterminated array")
		}
		if p.s[p.i] == ',' {
			p.i++
			continue
		}
		if p.s[p.i] == ']' {
			p.i++
			return p.vm.NewList(items)
		}
		p.fail("expected ',' or ']'")
	}
}

func (p *jsonParser) object() pyobj.Object {
	p.i++ // {
	d := p.vm.NewDict()
	p.ws()
	if p.i < len(p.s) && p.s[p.i] == '}' {
		p.i++
		return d
	}
	for {
		p.ws()
		if p.i >= len(p.s) || p.s[p.i] != '"' {
			p.fail("expected object key")
		}
		key := p.vm.NewStr(p.parseString())
		p.ws()
		if p.i >= len(p.s) || p.s[p.i] != ':' {
			p.fail("expected ':'")
		}
		p.i++
		val := p.value()
		p.vm.DictSet(d, key, val, core.Execute)
		p.vm.Decref(key)
		p.vm.Decref(val)
		p.ws()
		if p.i >= len(p.s) {
			p.fail("unterminated object")
		}
		if p.s[p.i] == ',' {
			p.i++
			continue
		}
		if p.s[p.i] == '}' {
			p.i++
			return d
		}
		p.fail("expected ',' or '}'")
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
