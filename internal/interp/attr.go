package interp

import (
	"repro/internal/core"
	"repro/internal/pyobj"
)

// getAttr implements LOAD_ATTR: instance-dict then class lookup for
// instances, method-table lookup producing bound builtin methods for
// built-in types, and namespace lookup for modules and classes. Returns a
// new reference.
func (vm *VM) getAttr(obj pyobj.Object, name string) pyobj.Object {
	e := vm.Eng
	e.Load(core.TypeCheck, obj.Hdr().Addr, false)
	e.Load(core.FunctionResolution, obj.PyType().SlotAddr(pyobj.SlotGetAttr), true)
	e.CCall(core.CFunctionCall, vm.hp.getAttr, indirectCCall)
	defer e.CReturn(core.CFunctionCall, indirectCCall)

	switch o := obj.(type) {
	case *pyobj.Instance:
		// Instance dict first.
		if v, ok := vm.DictGetStr(o.Dict, name, core.NameResolution); ok {
			vm.Incref(v)
			return v
		}
		// Then the class chain; functions become bound methods.
		cls := o.Class
		for c := cls; c != nil; c = c.Base {
			v, ok := vm.DictGetStr(c.Dict, name, core.NameResolution)
			if !ok {
				continue
			}
			if fn, isFn := v.(*pyobj.Func); isFn {
				// Bound-method allocation: classic CPython churn.
				bm := &pyobj.BoundMethod{Self: o, Fn: fn}
				vm.Heap.Allocate(bm, core.ObjectAllocation)
				e.Store(core.FunctionSetup, bm.H.Addr+16)
				e.Store(core.FunctionSetup, bm.H.Addr+24)
				vm.Incref(o)
				vm.Incref(fn)
				vm.barrier(bm, o)
				vm.barrier(bm, fn)
				return bm
			}
			vm.Incref(v)
			return v
		}
		vm.errCheck(true)
		Raise("AttributeError", "%s instance has no attribute '%s'", o.Class.Name, name)
	case *pyobj.Module:
		v, ok := vm.DictGetStr(o.Dict, name, core.NameResolution)
		vm.errCheck(!ok)
		if !ok {
			Raise("AttributeError", "module '%s' has no attribute '%s'", o.Name, name)
		}
		vm.Incref(v)
		return v
	case *pyobj.Class:
		v, probes, ok := o.Lookup(name)
		for i := 0; i < probes; i++ {
			e.Load(core.NameResolution, o.H.Addr+16, i > 0)
			e.ALU(core.NameResolution, true)
		}
		vm.errCheck(!ok)
		if !ok {
			Raise("AttributeError", "class %s has no attribute '%s'", o.Name, name)
		}
		vm.Incref(v)
		return v
	default:
		// Built-in type method table: produce a bound builtin.
		if id, ok := vm.lookupTypeMethod(obj.PyType().ID, name); ok {
			// Method-table probe.
			e.Load(core.NameResolution, obj.PyType().Addr+208, false)
			e.ALUn(core.NameResolution, 2)
			b := &pyobj.Builtin{Name: name, ID: id, CodeAddr: vm.builtinImpls[id].pc, Self: obj}
			vm.Heap.Allocate(b, core.ObjectAllocation)
			e.Store(core.FunctionSetup, b.H.Addr+16)
			vm.Incref(obj)
			vm.barrier(b, obj)
			return b
		}
	}
	vm.errCheck(true)
	Raise("AttributeError", "'%s' object has no attribute '%s'", pyobj.TypeName(obj), name)
	return nil
}

// setAttr implements STORE_ATTR (instances only, as in old-style classes).
func (vm *VM) setAttr(obj pyobj.Object, name string, v pyobj.Object) {
	e := vm.Eng
	e.Load(core.TypeCheck, obj.Hdr().Addr, false)
	e.Load(core.FunctionResolution, obj.PyType().SlotAddr(pyobj.SlotSetAttr), true)
	e.CCall(core.CFunctionCall, vm.hp.setAttr, indirectCCall)
	defer e.CReturn(core.CFunctionCall, indirectCCall)

	switch o := obj.(type) {
	case *pyobj.Instance:
		vm.DictSetStr(o.Dict, name, v, core.NameResolution)
		return
	case *pyobj.Class:
		vm.DictSetStr(o.Dict, name, v, core.NameResolution)
		return
	}
	Raise("AttributeError", "'%s' object attributes are read-only", pyobj.TypeName(obj))
}
