package interp

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/emit"
	"repro/internal/gc"
	"repro/internal/isa"
)

// runRC runs src on a refcount-mode (CPython-like) VM and returns stdout.
func runRC(t *testing.T, src string) string {
	t.Helper()
	var out strings.Builder
	vm := New(emit.NewEngine(isa.NullSink{}), gc.DefaultRefCountConfig(), &out)
	if err := vm.RunSource("<test>", src); err != nil {
		t.Fatalf("RunSource: %v\nsource:\n%s", err, src)
	}
	return out.String()
}

// runGen runs src on a generational-mode (PyPy-like) VM with a small
// nursery to exercise collections.
func runGen(t *testing.T, src string) string {
	t.Helper()
	var out strings.Builder
	vm := New(emit.NewEngine(isa.NullSink{}), gc.DefaultGenConfig(64<<10), &out)
	if err := vm.RunSource("<test>", src); err != nil {
		t.Fatalf("RunSource(gen): %v\nsource:\n%s", err, src)
	}
	return out.String()
}

// expect runs src on both memory managers and checks identical output.
func expect(t *testing.T, src, want string) {
	t.Helper()
	if got := runRC(t, src); got != want {
		t.Errorf("refcount output mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if got := runGen(t, src); got != want {
		t.Errorf("generational output mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestArithmetic(t *testing.T) {
	expect(t, `
print(1 + 2 * 3)
print(7 / 2)
print(-7 / 2)
print(7 % 3)
print(-7 % 3)
print(2 ** 10)
print(7 // 2)
print(1.5 + 2.25)
print(10.0 / 4)
print(1 << 10)
print(255 >> 4)
print(12 & 10, 12 | 10, 12 ^ 10)
print(-(5))
print(abs(-3), abs(2.5))
`, "7\n3\n-4\n1\n2\n1024\n3\n3.75\n2.5\n1024\n15\n8 14 6\n-5\n3 2.5\n")
}

func TestComparisonsAndBool(t *testing.T) {
	expect(t, `
print(1 < 2, 2 <= 2, 3 == 3, 3 != 4, 5 > 4, 5 >= 6)
print(1 < 2 < 3, 1 < 2 > 5)
print("abc" < "abd", "abc" == "abc")
print(not True, not 0, not [])
print(1 and 2, 0 and 2, 1 or 2, 0 or 2)
print(None is None, None is not None)
print(3 in [1, 2, 3], 4 not in [1, 2, 3])
print("ell" in "hello", "z" in "hello")
x = 10
print("yes" if x > 5 else "no")
`, "True True True True True False\nTrue False\nTrue True\nFalse True True\n2 0 1 2\nTrue False\nTrue True\nTrue False\nyes\n")
}

func TestControlFlow(t *testing.T) {
	expect(t, `
total = 0
i = 0
while i < 10:
    if i % 2 == 0:
        total += i
    i += 1
print(total)
for j in xrange(5):
    if j == 3:
        break
else_total = 0
for j in xrange(10):
    if j % 3 != 0:
        continue
    else_total += j
print(j, else_total)
n = 0
for a in range(3):
    for b in range(3):
        if b > a:
            break
        n += 1
print(n)
`, "20\n9 18\n6\n")
}

func TestFunctions(t *testing.T) {
	expect(t, `
def add(a, b):
    return a + b

def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)

def withdefault(a, b=10, c=20):
    return a + b + c

print(add(2, 3))
print(fib(15))
print(withdefault(1))
print(withdefault(1, 2))
print(withdefault(1, 2, 3))

def counter():
    global count
    count = count + 1
    return count

count = 0
counter()
counter()
print(count)
`, "5\n610\n31\n23\n6\n2\n")
}

func TestListsAndDicts(t *testing.T) {
	expect(t, `
l = [3, 1, 2]
l.append(5)
print(l, len(l))
l.sort()
print(l)
print(l[0], l[-1], l[1:3])
l[0] = 99
print(l.pop(), l)
d = {"a": 1, "b": 2}
d["c"] = 3
print(d["a"], d.get("z", -1), len(d))
print(sorted(d.keys()))
print("a" in d, "z" in d)
del d["b"]
print(len(d), d.has_key("b"))
t = (1, 2, 3)
print(t[1], len(t), t + (4,))
a, b = 1, 2
a, b = b, a
print(a, b)
m = {}
m[(1, 2)] = "tuplekey"
print(m[(1, 2)])
print("skip")
`, "[3, 1, 2, 5] 4\n[1, 2, 3, 5]\n1 5 [2, 3]\n5 [99, 2, 3]\n1 -1 3\n['a', 'b', 'c']\nTrue False\n2 False\n2 3 (1, 2, 3, 4)\n2 1\ntuplekey\nskip\n")
}

func TestStrings(t *testing.T) {
	expect(t, `
s = "Hello, World"
print(s.upper())
print(s.lower())
print(s.split(", "))
print("-".join(["a", "b", "c"]))
print(s.replace("World", "MiniPy"))
print(s.find("World"), s.find("xyz"))
print(s.startswith("Hello"), s.endswith("!"))
print(len(s), s[0], s[-1], s[7:])
print("  pad  ".strip())
print("%d items cost %.2f dollars (%s)" % (3, 1.5, "cheap"))
print("%05d|%-5d|%x" % (42, 42, 255))
print(str(3.5) + "!" + repr("q"))
print(ord("A"), chr(66))
n = 0
for ch in "abc":
    n += ord(ch)
print(n)
`, "HELLO, WORLD\nhello, world\n['Hello', 'World']\na-b-c\nHello, MiniPy\n7 -1\nTrue False\n12 H d World\npad\n3 items cost 1.50 dollars (cheap)\n00042|42   |ff\n3.5!'q'\n65 B\n294\n")
}

func TestClasses(t *testing.T) {
	expect(t, `
class Point:
    def __init__(self, x, y):
        self.x = x
        self.y = y

    def mag2(self):
        return self.x * self.x + self.y * self.y

    def shift(self, dx):
        self.x += dx

class Point3(Point):
    def __init__(self, x, y, z):
        Point.__init__(self, x, y)
        self.z = z

    def mag2(self):
        return self.x * self.x + self.y * self.y + self.z * self.z

p = Point(3, 4)
print(p.mag2())
p.shift(1)
print(p.x, p.y)
q = Point3(1, 2, 3)
print(q.mag2())
print(isinstance(q, Point), isinstance(p, Point3))

class Counter:
    def __init__(self):
        self.n = 0
    def tick(self):
        self.n += 1
        return self.n

c = Counter()
c.tick()
c.tick()
print(c.tick())
`, "25\n4 4\n14\nTrue False\n3\n")
}

func TestBuiltins(t *testing.T) {
	expect(t, `
def double(x):
    return x * 2

def positive(x):
    return x > 0

print(min(3, 1, 2), max([4, 9, 2]))
print(sum([1, 2, 3]), sum([0.5, 0.25]))
print(int("42"), int(3.9), float("2.5"), int("ff", 16))
print(list("abc"), tuple([1, 2]))
print(zip([1, 2, 3], ["a", "b"]))
print(map(double, [1, 2, 3]))
print(filter(positive, [-2, 3, -4, 5]))
print(divmod(17, 5), divmod(-17, 5))
print(round(2.675, 2), round(7.5))
print(range(3), range(1, 7, 2))
print(cmp(1, 2), cmp(2, 2), cmp(3, 2))
print(hash("x") == hash("x"), hash(1) == hash(1.0))
`, "1 9\n6 0.75\n42 3 2.5 255\n['a', 'b', 'c'] (1, 2)\n[(1, 'a'), (2, 'b')]\n[2, 4, 6]\n[3, 5]\n(3, 2) (-4, 3)\n2.68 8.0\n[0, 1, 2] [1, 3, 5]\n-1 0 1\nTrue True\n")
}

func TestModules(t *testing.T) {
	expect(t, `
print(math.sqrt(16.0))
print(math.floor(3.7), math.ceil(3.2))
print("%.4f" % math.pi)
print("%.4f" % math.sin(0.0))
random.seed(42)
a = random.randint(1, 100)
random.seed(42)
b = random.randint(1, 100)
print(a == b, 1 <= a and a <= 100)
`, "4.0\n3.0 4.0\n3.1416\n0.0000\nTrue True\n")
}

func TestJSONRoundtrip(t *testing.T) {
	expect(t, `
data = {"name": "test", "vals": [1, 2.5, None, True], "nested": {"k": "v"}}
s = json.dumps(data)
back = json.loads(s)
print(back["name"], back["vals"][1], back["nested"]["k"])
print(back["vals"][2] is None, back["vals"][3] is True)
print(json.loads("[1, 2, 3]"))
print(json.loads('"hi\\nthere"'))
`, "test 2.5 v\nTrue True\n[1, 2, 3]\nhi\nthere\n")
}

func TestPickleRoundtrip(t *testing.T) {
	expect(t, `
data = [1, "two", 3.5, (4, 5), {"six": 7}, None, True]
s = pickle.dumps(data)
back = pickle.loads(s)
print(back[0], back[1], back[2], back[3], back[4]["six"])
print(back[5] is None, back[6] is True)
print(back == data)
`, "1 two 3.5 (4, 5) 7\nTrue True\nTrue\n")
}

func TestRegex(t *testing.T) {
	expect(t, `
print(re.search("[0-9]+", "abc 123 def"))
print(re.match("[a-z]+", "hello world"))
print(re.findall("[0-9]+", "a1 b22 c333"))
print(re.sub("[0-9]+", "#", "a1 b22 c333"))
print(re.match("h(el)+lo", "helelello"))
print(re.search("cat|dog", "hotdog"))
print(re.findall("\\w+@\\w+\\.com", "a@b.com x c@d.com"))
print(re.match("a{2,3}", "aaaa"))
print(re.search("^start", "start here") is None)
print(re.split("[,;]", "a,b;c"))
`, "123\nhello\n['1', '22', '333']\na# b# c#\nhelelello\ndog\n['a@b.com', 'c@d.com']\naaa\nFalse\n['a', 'b', 'c']\n")
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src  string
		kind string
	}{
		{`print(1 / 0)`, "ZeroDivisionError"},
		{`l = [1]` + "\n" + `print(l[5])`, "IndexError"},
		{`d = {}` + "\n" + `print(d["missing"])`, "KeyError"},
		{`print(undefined_name)`, "NameError"},
		{`print("a" + 1)`, "TypeError"},
		{`x = [1] ` + "\n" + `x.unknown_method()`, "AttributeError"},
	}
	for _, c := range cases {
		var out strings.Builder
		vm := New(emit.NewEngine(isa.NullSink{}), gc.DefaultRefCountConfig(), &out)
		err := vm.RunSource("<err>", c.src)
		if err == nil {
			t.Errorf("expected %s from %q, got nil", c.kind, c.src)
			continue
		}
		pe, ok := err.(*PyError)
		if !ok {
			t.Errorf("expected PyError, got %T: %v", err, err)
			continue
		}
		if pe.Kind != c.kind {
			t.Errorf("expected %s from %q, got %s: %s", c.kind, c.src, pe.Kind, pe.Msg)
		}
	}
}

func TestGenCollectionsPreserveSemantics(t *testing.T) {
	// Allocation-heavy program with a tiny nursery: many minor GCs must
	// not corrupt results.
	src := `
result = []
for i in xrange(2000):
    l = [i, i + 1, i + 2]
    d = {"k": i}
    s = "str" + str(i)
    if i % 500 == 0:
        result.append(l[2] + d["k"])
print(result)
print(len(result))
`
	want := "[2, 1002, 2002, 3002]\n4\n"
	var out strings.Builder
	vm := New(emit.NewEngine(isa.NullSink{}), gc.DefaultGenConfig(16<<10), &out)
	if err := vm.RunSource("<gc>", src); err != nil {
		t.Fatalf("RunSource: %v", err)
	}
	if out.String() != want {
		t.Errorf("got %q want %q", out.String(), want)
	}
	if vm.Heap.Stats.MinorGCs == 0 {
		t.Errorf("expected minor collections with 16k nursery, got none")
	}
}

func TestEventStreamNonEmpty(t *testing.T) {
	var sink isa.CountSink
	var out strings.Builder
	vm := New(emit.NewEngine(&sink), gc.DefaultRefCountConfig(), &out)
	if err := vm.RunSource("<count>", "x = 0\nfor i in xrange(100):\n    x += i\nprint(x)"); err != nil {
		t.Fatal(err)
	}
	if out.String() != "4950\n" {
		t.Fatalf("wrong output %q", out.String())
	}
	if sink.Total == 0 {
		t.Fatal("no events emitted")
	}
	// Every overhead group must appear in a loop like this.
	for _, name := range []string{"dispatch", "stack"} {
		_ = name
	}
	if sink.Mem == 0 || sink.Branch == 0 {
		t.Fatalf("expected memory and branch events, got mem=%d branch=%d", sink.Mem, sink.Branch)
	}
}

// TestRefcountOwnershipOnEarlyAbort: every reference a container's dealloc
// decrefs must have been owned (incref'd or transferred at store time).
// Violations hide in completed runs behind the slack of still-live objects,
// but surface as an aggregate deficit when a run aborts early — here via a
// mid-program raise after function objects (class bodies) have died, the
// historical trigger: dying body functions decref'd the shared constant
// pool and a borrowed globals reference, draining None and the module
// globals dict below their true counts.
func TestRefcountOwnershipOnEarlyAbort(t *testing.T) {
	src := `class A:
    pass
class B:
    pass
class C(A):
    pass
obj = C()
s = [1, 2, 3, 4][0:2]
print(len(s))
boom = 1 / 0
`
	var out strings.Builder
	vm := New(emit.NewEngine(isa.NullSink{}), gc.DefaultRefCountConfig(), &out)
	err := vm.RunSource("<abort>", src)
	if err == nil || !strings.Contains(err.Error(), "ZeroDivisionError") {
		t.Fatalf("want ZeroDivisionError, got %v", err)
	}
	h := vm.StatsSnapshot().Heap
	if h.Decrefs > h.Increfs+h.Allocations {
		t.Fatalf("refcount imbalance after abort: %d decrefs > %d increfs + %d allocations",
			h.Decrefs, h.Increfs, h.Allocations)
	}
	if h.BadDecrefs != 0 {
		t.Fatalf("%d decrefs hit an object with RC <= 0", h.BadDecrefs)
	}
}

// TestConcurrentVMConstruction builds VMs from many goroutines at once
// and immediately exercises method lookup on each. Run under -race this
// guards the typeMethods publication: a partially populated (or
// concurrently written) shared table would trip the race detector or
// produce a missing-method AttributeError.
func TestConcurrentVMConstruction(t *testing.T) {
	const goroutines = 16
	src := "l = [3, 1, 2]\nl.sort()\nd = {'a': 1}\nprint(l, d.get('a'))\n"
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		go func() {
			var out strings.Builder
			vm := New(emit.NewEngine(isa.NullSink{}), gc.DefaultRefCountConfig(), &out)
			if err := vm.RunSource("<concurrent>", src); err != nil {
				errs <- err
				return
			}
			if got, want := out.String(), "[1, 2, 3] 1\n"; got != want {
				errs <- fmt.Errorf("output %q, want %q", got, want)
				return
			}
			errs <- nil
		}()
	}
	for i := 0; i < goroutines; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
