package interp_test

// The quickening-equivalence layer: tier-1 inline caches and the full
// tier-2 pipeline (polymorphic stubs, superinstruction fusion,
// speculative unboxed-int rewrites) are pure performance transforms.
// For every difftest corpus program, a sweep of generated programs,
// and the int64 boundary cases, all three tiers must agree on program
// output, exception identity, module-dict version bumps, and — for
// clean runs — the net reference-count balance
// (Increfs + Allocations - Decrefs), which counts objects still live
// at exit and so must not depend on which dispatch path ran. Gross
// incref/decref totals legitimately differ: fused operand borrowing
// elides balanced pairs.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/difftest"
	"repro/internal/emit"
	"repro/internal/gc"
	"repro/internal/interp"
	"repro/internal/isa"
)

type tierOutcome struct {
	Output  string
	Err     string
	DictVer uint32
	NetRefs int64
}

// tier 0 = generic (quickening off), 1 = tier-1 (monomorphic ICs only),
// 2 = full tier-2.
var tierNames = [3]string{"generic", "tier-1", "tier-2"}

func runTier(t *testing.T, name, src string, tier int) tierOutcome {
	t.Helper()
	var out strings.Builder
	vm := interp.New(emit.NewEngine(isa.NullSink{}), gc.DefaultRefCountConfig(), &out)
	vm.MaxBytecodes = difftest.DefaultBudget
	switch tier {
	case 0:
		vm.SetQuicken(false)
	case 1:
		vm.SetPolyICs(false)
		vm.SetFusion(false)
		vm.SetIntFast(false)
	}
	res := tierOutcome{}
	if err := vm.RunSource(name, src); err != nil {
		res.Err = err.Error()
	}
	res.Output = out.String()
	if vm.Globals != nil {
		res.DictVer = vm.Globals.Version
	}
	st := vm.Heap.Stats
	res.NetRefs = int64(st.Increfs) + int64(st.Allocations) - int64(st.Decrefs)
	return res
}

// exportSeed runs src to completion on a throwaway donor VM and exports
// its portable IC seed — the progstore seed-donation path, in miniature.
// Nil when the run quickened nothing.
func exportSeed(t *testing.T, name, src string) *interp.ICSeed {
	t.Helper()
	code, err := interp.Compile(name, src)
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	var out strings.Builder
	vm := interp.New(emit.NewEngine(isa.NullSink{}), gc.DefaultRefCountConfig(), &out)
	vm.MaxBytecodes = difftest.DefaultBudget
	_ = vm.RunCode(code)
	return vm.ExportICSeed(code)
}

// runSeeded runs src on a fresh full-tier VM warm-started from seed.
func runSeeded(t *testing.T, name, src string, seed *interp.ICSeed) tierOutcome {
	t.Helper()
	var out strings.Builder
	vm := interp.New(emit.NewEngine(isa.NullSink{}), gc.DefaultRefCountConfig(), &out)
	vm.MaxBytecodes = difftest.DefaultBudget
	vm.SetICSeed(seed)
	res := tierOutcome{}
	if err := vm.RunSource(name, src); err != nil {
		res.Err = err.Error()
	}
	res.Output = out.String()
	if vm.Globals != nil {
		res.DictVer = vm.Globals.Version
	}
	st := vm.Heap.Stats
	res.NetRefs = int64(st.Increfs) + int64(st.Allocations) - int64(st.Decrefs)
	return res
}

// foreignSeedSrc is an unrelated attribute-heavy program whose exported
// seed is maximally wrong for any other program: the cross-seeded leg
// arms it anyway, and behaviour still may not change (wrong entries are
// rejected by the hit-path guards and cost at most a refill).
const foreignSeedSrc = `
class P:
    def __init__(self, a):
        self.a = a
    def bump(self):
        self.a = self.a + 1
        return self.a
p = P(0)
q = P(100)
total = 0
i = 0
while i < 50:
    total = total + p.bump() + q.bump()
    i = i + 1
print(total)
`

// compareOutcome applies the equivalence rules: output, exception
// identity, and module-dict version always; net refcounts only for
// clean runs (an exception unwinds through tier-specific code with
// tier-specific temporaries).
func compareOutcome(t *testing.T, name, leg string, base, got tierOutcome) {
	t.Helper()
	if got.Output != base.Output {
		t.Errorf("%s: %s output diverged from generic\n--- generic ---\n%s--- %s ---\n%s",
			name, leg, base.Output, leg, got.Output)
	}
	if got.Err != base.Err {
		t.Errorf("%s: %s exception diverged: generic %q, %s %q",
			name, leg, base.Err, leg, got.Err)
	}
	if got.DictVer != base.DictVer {
		t.Errorf("%s: %s module-dict version diverged: generic %d, %s %d",
			name, leg, base.DictVer, leg, got.DictVer)
	}
	if base.Err == "" && got.NetRefs != base.NetRefs {
		t.Errorf("%s: %s net refcount balance diverged: generic %d, %s %d",
			name, leg, base.NetRefs, leg, got.NetRefs)
	}
}

// assertTiersAgree runs src at all three tiers plus the seeded-cold
// legs (own-donor seed and a foreign program's seed) and fails on any
// divergence. The seeded legs prove the progstore IC-seed contract:
// a seed — right or wrong — may only pre-fill caches, never change
// output, exception identity, dict versions, or net refcounts.
func assertTiersAgree(t *testing.T, name, src string) {
	t.Helper()
	base := runTier(t, name, src, 0)
	for tier := 1; tier <= 2; tier++ {
		compareOutcome(t, name, tierNames[tier], base, runTier(t, name, src, tier))
	}
	compareOutcome(t, name, "seeded-cold", base, runSeeded(t, name, src, exportSeed(t, name, src)))
	compareOutcome(t, name, "cross-seeded", base,
		runSeeded(t, name, src, exportSeed(t, "foreign.py", foreignSeedSrc)))
}

func TestQuickenEquivCorpus(t *testing.T) {
	corpus, err := difftest.LoadCorpus("../difftest/corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) == 0 {
		t.Fatal("empty difftest corpus")
	}
	for name, src := range corpus {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			assertTiersAgree(t, name, src)
		})
	}
}

func TestQuickenEquivGenerated(t *testing.T) {
	if testing.Short() {
		t.Skip("generated equivalence sweep skipped in -short mode")
	}
	const seeds = 24
	for seed := uint64(1); seed <= seeds; seed++ {
		seed := seed
		name := fmt.Sprintf("gen_%03d", seed)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			assertTiersAgree(t, name, difftest.Generate(seed))
		})
	}
}

// int64 boundary programs: the unboxed-int speculation must deopt on
// the exact overflow edge and reproduce the generic OverflowError (or
// clean result) bit-for-bit.
var boundaryPrograms = map[string]string{
	"boundary_pos_edge": `
big = 9223372036854775807
print(big - 1)
print(big - 1 + 1)
x = big + 1
print(x)
`,
	"boundary_neg_edge": `
neg = 0 - 9223372036854775807
neg = neg - 1
print(neg)
y = neg - 1
print(y)
`,
	"boundary_mul": `
half = 3037000499
print(half * half)
z = half * half * 4
print(z)
`,
	"boundary_clean_loop": `
acc = 9223372036854775000
i = 0
while i < 800:
    acc = acc + 1
    i = i + 1
print(acc)
`,
}

func TestQuickenEquivInt64Boundary(t *testing.T) {
	sawOverflow := false
	for name, src := range boundaryPrograms {
		assertTiersAgree(t, name, src)
		if out := runTier(t, name, src, 0); strings.Contains(out.Err, "OverflowError") {
			sawOverflow = true
		}
	}
	if !sawOverflow {
		t.Error("no boundary program tripped OverflowError; the deopt edge is untested")
	}
}
