package interp_test

// The quickening-equivalence layer: tier-1 inline caches and the full
// tier-2 pipeline (polymorphic stubs, superinstruction fusion,
// speculative unboxed-int rewrites) are pure performance transforms.
// For every difftest corpus program, a sweep of generated programs,
// and the int64 boundary cases, all three tiers must agree on program
// output, exception identity, module-dict version bumps, and — for
// clean runs — the net reference-count balance
// (Increfs + Allocations - Decrefs), which counts objects still live
// at exit and so must not depend on which dispatch path ran. Gross
// incref/decref totals legitimately differ: fused operand borrowing
// elides balanced pairs.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/difftest"
	"repro/internal/emit"
	"repro/internal/gc"
	"repro/internal/interp"
	"repro/internal/isa"
)

type tierOutcome struct {
	Output  string
	Err     string
	DictVer uint32
	NetRefs int64
}

// tier 0 = generic (quickening off), 1 = tier-1 (monomorphic ICs only),
// 2 = full tier-2.
var tierNames = [3]string{"generic", "tier-1", "tier-2"}

func runTier(t *testing.T, name, src string, tier int) tierOutcome {
	t.Helper()
	var out strings.Builder
	vm := interp.New(emit.NewEngine(isa.NullSink{}), gc.DefaultRefCountConfig(), &out)
	vm.MaxBytecodes = difftest.DefaultBudget
	switch tier {
	case 0:
		vm.SetQuicken(false)
	case 1:
		vm.SetPolyICs(false)
		vm.SetFusion(false)
		vm.SetIntFast(false)
	}
	res := tierOutcome{}
	if err := vm.RunSource(name, src); err != nil {
		res.Err = err.Error()
	}
	res.Output = out.String()
	if vm.Globals != nil {
		res.DictVer = vm.Globals.Version
	}
	st := vm.Heap.Stats
	res.NetRefs = int64(st.Increfs) + int64(st.Allocations) - int64(st.Decrefs)
	return res
}

// assertTiersAgree runs src at all three tiers and fails on any
// divergence. Net refcounts are only compared for clean runs: an
// exception unwinds through tier-specific code with tier-specific
// temporaries, so only output/error/dict-version identity is required
// there.
func assertTiersAgree(t *testing.T, name, src string) {
	t.Helper()
	base := runTier(t, name, src, 0)
	for tier := 1; tier <= 2; tier++ {
		got := runTier(t, name, src, tier)
		if got.Output != base.Output {
			t.Errorf("%s: %s output diverged from generic\n--- generic ---\n%s--- %s ---\n%s",
				name, tierNames[tier], base.Output, tierNames[tier], got.Output)
		}
		if got.Err != base.Err {
			t.Errorf("%s: %s exception diverged: generic %q, %s %q",
				name, tierNames[tier], base.Err, tierNames[tier], got.Err)
		}
		if got.DictVer != base.DictVer {
			t.Errorf("%s: %s module-dict version diverged: generic %d, %s %d",
				name, tierNames[tier], base.DictVer, tierNames[tier], got.DictVer)
		}
		if base.Err == "" && got.NetRefs != base.NetRefs {
			t.Errorf("%s: %s net refcount balance diverged: generic %d, %s %d",
				name, tierNames[tier], base.NetRefs, tierNames[tier], got.NetRefs)
		}
	}
}

func TestQuickenEquivCorpus(t *testing.T) {
	corpus, err := difftest.LoadCorpus("../difftest/corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) == 0 {
		t.Fatal("empty difftest corpus")
	}
	for name, src := range corpus {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			assertTiersAgree(t, name, src)
		})
	}
}

func TestQuickenEquivGenerated(t *testing.T) {
	if testing.Short() {
		t.Skip("generated equivalence sweep skipped in -short mode")
	}
	const seeds = 24
	for seed := uint64(1); seed <= seeds; seed++ {
		seed := seed
		name := fmt.Sprintf("gen_%03d", seed)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			assertTiersAgree(t, name, difftest.Generate(seed))
		})
	}
}

// int64 boundary programs: the unboxed-int speculation must deopt on
// the exact overflow edge and reproduce the generic OverflowError (or
// clean result) bit-for-bit.
var boundaryPrograms = map[string]string{
	"boundary_pos_edge": `
big = 9223372036854775807
print(big - 1)
print(big - 1 + 1)
x = big + 1
print(x)
`,
	"boundary_neg_edge": `
neg = 0 - 9223372036854775807
neg = neg - 1
print(neg)
y = neg - 1
print(y)
`,
	"boundary_mul": `
half = 3037000499
print(half * half)
z = half * half * 4
print(z)
`,
	"boundary_clean_loop": `
acc = 9223372036854775000
i = 0
while i < 800:
    acc = acc + 1
    i = i + 1
print(acc)
`,
}

func TestQuickenEquivInt64Boundary(t *testing.T) {
	sawOverflow := false
	for name, src := range boundaryPrograms {
		assertTiersAgree(t, name, src)
		if out := runTier(t, name, src, 0); strings.Contains(out.Err, "OverflowError") {
			sawOverflow = true
		}
	}
	if !sawOverflow {
		t.Error("no boundary program tripped OverflowError; the deopt edge is untested")
	}
}
