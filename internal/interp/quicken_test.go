package interp

import (
	"strings"
	"testing"

	"repro/internal/emit"
	"repro/internal/gc"
	"repro/internal/isa"
)

// runQuick runs src on a quickened refcount VM and returns stdout plus
// the VM for stat inspection.
func runQuick(t *testing.T, src string) (string, *VM) {
	t.Helper()
	var out strings.Builder
	vm := New(emit.NewEngine(isa.NullSink{}), gc.DefaultRefCountConfig(), &out)
	if err := vm.RunSource("<test>", src); err != nil {
		t.Fatalf("RunSource: %v\nsource:\n%s", err, src)
	}
	return out.String(), vm
}

// runQuickWith runs src on a quickened refcount VM after applying cfg
// (for pinning individual tier-2 knobs), returning stdout plus the VM.
func runQuickWith(t *testing.T, src string, cfg func(*VM)) (string, *VM) {
	t.Helper()
	var out strings.Builder
	vm := New(emit.NewEngine(isa.NullSink{}), gc.DefaultRefCountConfig(), &out)
	cfg(vm)
	if err := vm.RunSource("<test>", src); err != nil {
		t.Fatalf("RunSource: %v\nsource:\n%s", err, src)
	}
	return out.String(), vm
}

// runCold runs src with quickening disabled.
func runCold(t *testing.T, src string) string {
	t.Helper()
	var out strings.Builder
	vm := New(emit.NewEngine(isa.NullSink{}), gc.DefaultRefCountConfig(), &out)
	vm.SetQuicken(false)
	if err := vm.RunSource("<test>", src); err != nil {
		t.Fatalf("RunSource(cold): %v\nsource:\n%s", err, src)
	}
	if vm.Stats.IC.Hits() != 0 || vm.Stats.IC.Sites != 0 {
		t.Fatalf("cold VM recorded IC activity: %+v", vm.Stats.IC)
	}
	return out.String()
}

// expectQuick runs src quickened, cold, and under worst-case cache churn
// (flush after every fill), requiring identical output everywhere.
func expectQuick(t *testing.T, src, want string) ICStats {
	t.Helper()
	got, vm := runQuick(t, src)
	if got != want {
		t.Errorf("quickened output mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if cold := runCold(t, src); cold != got {
		t.Errorf("quickened vs cold divergence\n--- quickened ---\n%s--- cold ---\n%s", got, cold)
	}
	var out strings.Builder
	churn := New(emit.NewEngine(isa.NullSink{}), gc.DefaultRefCountConfig(), &out)
	churn.SetICFlushEvery(1)
	if err := churn.RunSource("<test>", src); err != nil {
		t.Fatalf("RunSource(churn): %v", err)
	}
	if out.String() != got {
		t.Errorf("quickened vs churn divergence\n--- quickened ---\n%s--- churn ---\n%s", got, out.String())
	}
	return vm.Stats.IC
}

func TestICGlobalHits(t *testing.T) {
	src := `
base = 7
def f():
    s = 0
    i = 0
    while i < 200:
        s = s + base
        i = i + 1
    return s
print(f())
`
	ic := expectQuick(t, src, "1400\n")
	if ic.GlobalHits < 150 {
		t.Errorf("GlobalHits = %d, want >= 150 (stats: %+v)", ic.GlobalHits, ic)
	}
	if ic.Sites == 0 {
		t.Errorf("no IC sites allocated")
	}
}

func TestICGlobalBuiltinHits(t *testing.T) {
	src := `
def f():
    s = 0
    i = 0
    while i < 100:
        s = s + len([1, 2, 3])
        i = i + 1
    return s
print(f())
`
	ic := expectQuick(t, src, "300\n")
	if ic.GlobalHits < 80 {
		t.Errorf("GlobalHits = %d, want >= 80 for builtin-resolved site", ic.GlobalHits)
	}
}

func TestICGlobalInvalidationByStore(t *testing.T) {
	// Each iteration rebinds the global between reads: every read after a
	// store must observe the new value, and the version guard must record
	// the invalidation.
	src := `
x = 0
def bump(v):
    global x
    x = v
def read():
    return x
i = 0
total = 0
while i < 30:
    bump(i)
    total = total + read()
    i = i + 1
print(total)
print(x)
`
	ic := expectQuick(t, src, "435\n29\n")
	if ic.Invalidations == 0 {
		t.Errorf("expected guard invalidations from global rebinding, got stats %+v", ic)
	}
}

func TestICDequickenOnChurn(t *testing.T) {
	// The same read site invalidated every iteration exhausts its miss
	// budget (icMaxMisses) and must de-quicken — while still producing
	// correct values for every read.
	src := `
x = 0
def bump(v):
    global x
    x = v
def read():
    return x
i = 0
total = 0
while i < 60:
    bump(i)
    total = total + read()
    i = i + 1
print(total)
`
	ic := expectQuick(t, src, "1770\n")
	if ic.Dequickened == 0 {
		t.Errorf("expected de-quickening after sustained churn, got stats %+v", ic)
	}
}

func TestICAttrSlotHits(t *testing.T) {
	src := `
class P:
    def __init__(self, x, y):
        self.x = x
        self.y = y
def norm1(p, n):
    s = 0
    i = 0
    while i < n:
        s = s + p.x + p.y
        i = i + 1
    return s
p = P(3, 4)
print(norm1(p, 100))
`
	ic := expectQuick(t, src, "700\n")
	if ic.AttrHits < 150 {
		t.Errorf("AttrHits = %d, want >= 150 (stats: %+v)", ic.AttrHits, ic)
	}
}

func TestICAttrSlotAcrossInstances(t *testing.T) {
	// The slot cache keys on dict layout, not instance identity: iterating
	// same-shaped instances must keep hitting.
	src := `
class P:
    def __init__(self, x):
        self.x = x
items = []
i = 0
while i < 50:
    items.append(P(i))
    i = i + 1
def total(items):
    s = 0
    for it in items:
        s = s + it.x
    return s
print(total(items))
`
	ic := expectQuick(t, src, "1225\n")
	if ic.AttrHits < 30 {
		t.Errorf("AttrHits = %d, want >= 30 across same-shaped instances", ic.AttrHits)
	}
}

func TestICMethodHits(t *testing.T) {
	src := `
class C:
    def val(self):
        return 5
def f(c, n):
    s = 0
    i = 0
    while i < n:
        s = s + c.val()
        i = i + 1
    return s
print(f(C(), 100))
`
	// Fusion rewrites this call site into LOAD_ATTR_CALL_METHOD, whose
	// eliding fast path counts under FusedHits; disable it to exercise
	// the tier-1 monomorphic method cache this test is about (the fused
	// form has its own coverage in quicken_tier2_test.go).
	got, vm := runQuickWith(t, src, func(vm *VM) { vm.SetFusion(false) })
	if got != "500\n" {
		t.Errorf("output = %q, want %q", got, "500\n")
	}
	if cold := runCold(t, src); cold != got {
		t.Errorf("quickened vs cold divergence\n--- quickened ---\n%s--- cold ---\n%s", got, cold)
	}
	ic := vm.Stats.IC
	if ic.MethodHits < 80 {
		t.Errorf("MethodHits = %d, want >= 80 (stats: %+v)", ic.MethodHits, ic)
	}
}

func TestICMethodRebindInvalidation(t *testing.T) {
	// Rebinding a class method bumps the class dict version; the chain
	// guard must miss and the site must resolve the new function.
	src := `
class C:
    def val(self):
        return 1
def two(self):
    return 2
def f(c, n):
    s = 0
    i = 0
    while i < n:
        s = s + c.val()
        i = i + 1
    return s
c = C()
a = f(c, 20)
C.val = two
b = f(c, 20)
print(a, b)
`
	ic := expectQuick(t, src, "20 40\n")
	if ic.Invalidations == 0 {
		t.Errorf("expected invalidation from method rebinding, got %+v", ic)
	}
}

func TestICMethodShadowedByInstanceAttr(t *testing.T) {
	// A populated class-method cache must not bypass an instance attribute
	// that later shadows the method on a *different* instance of the same
	// class: the hit path's shadow probe catches it.
	src := `
class C:
    def val(self):
        return 1
def f(c):
    return c.val
a = C()
b = C()
i = 0
while i < 10:
    m = f(a)
    i = i + 1
print(f(a)())
b.val = 99
print(f(b))
print(f(a)())
`
	expectQuick(t, src, "1\n99\n1\n")
}

func TestICInheritedMethodBaseRebind(t *testing.T) {
	// The chain version covers base classes: rebinding a method on the
	// base must invalidate caches filled through the subclass.
	src := `
class A:
    def who(self):
        return "a"
class B(A):
    pass
def f(b, n):
    r = ""
    i = 0
    while i < n:
        r = b.who()
        i = i + 1
    return r
b = B()
x = f(b, 10)
def other(self):
    return "z"
A.who = other
y = f(b, 10)
print(x, y)
`
	expectQuick(t, src, "a z\n")
}

func TestICTypeMethodHits(t *testing.T) {
	src := `
def f(n):
    xs = []
    i = 0
    while i < n:
        xs.append(i)
        i = i + 1
    return len(xs)
print(f(100))
`
	ic := expectQuick(t, src, "100\n")
	if ic.MethodHits < 80 {
		t.Errorf("MethodHits = %d, want >= 80 for list.append site", ic.MethodHits)
	}
}

func TestICStoreAttrHits(t *testing.T) {
	src := `
class Counter:
    def __init__(self):
        self.n = 0
c = Counter()
def run(c, k):
    i = 0
    while i < k:
        c.n = c.n + 1
        i = i + 1
run(c, 100)
print(c.n)
`
	ic := expectQuick(t, src, "100\n")
	if ic.StoreHits < 80 {
		t.Errorf("StoreHits = %d, want >= 80 (stats: %+v)", ic.StoreHits, ic)
	}
}

func TestICAttrSlotSurvivesDictGrowth(t *testing.T) {
	// Filling the cache on c.v and then inserting many more attributes
	// grows and rehashes the instance dict; the entry-index hint must keep
	// reading the live value, never a stale slot.
	src := `
class C:
    pass
c = C()
c.v = 1
def f(c):
    return c.v
i = 0
while i < 10:
    x = f(c)
    i = i + 1
c.a0 = 0
c.a1 = 1
c.a2 = 2
c.a3 = 3
c.a4 = 4
c.a5 = 5
c.a6 = 6
c.a7 = 7
c.a8 = 8
c.a9 = 9
c.b0 = 0
c.b1 = 1
c.v = 42
print(f(c))
`
	expectQuick(t, src, "42\n")
}

func TestICFlushResetsCaches(t *testing.T) {
	src := `
base = 3
def f(n):
    s = 0
    i = 0
    while i < n:
        s = s + base
        i = i + 1
    return s
print(f(50))
`
	var out strings.Builder
	vm := New(emit.NewEngine(isa.NullSink{}), gc.DefaultRefCountConfig(), &out)
	if err := vm.RunSource("<test>", src); err != nil {
		t.Fatal(err)
	}
	before := vm.Stats.IC.Invalidations
	vm.FlushICs()
	if vm.Stats.IC.Invalidations <= before {
		t.Errorf("FlushICs invalidated nothing (before=%d after=%d)", before, vm.Stats.IC.Invalidations)
	}
	if out.String() != "150\n" {
		t.Errorf("output = %q", out.String())
	}
}

func TestICStatsHitRate(t *testing.T) {
	var s ICStats
	if r := s.HitRate(); r != 0 {
		t.Errorf("empty HitRate = %v, want 0", r)
	}
	s.GlobalHits, s.AttrMisses = 3, 1
	if r := s.HitRate(); r != 0.75 {
		t.Errorf("HitRate = %v, want 0.75", r)
	}
}

// TestQuickenedOracleSuite runs a grab bag of semantically tricky
// programs through quickened, cold, and churn interpreters, demanding
// identical output — the in-package miniature of the difftest leg.
func TestQuickenedOracleSuite(t *testing.T) {
	srcs := []struct{ name, src, want string }{
		{"mixed-receiver-kinds", `
class Box:
    def __init__(self, v):
        self.v = v
    def get(self):
        return self.v
xs = []
i = 0
while i < 10:
    xs.append(Box(i))
    i = i + 1
total = 0
for b in xs:
    total = total + b.get() + len(xs)
print(total)
`, "145\n"},
		{"class-redefinition", `
i = 0
while i < 3:
    class C:
        def v(self):
            return i
    print(C().v())
    i = i + 1
`, "0\n1\n2\n"},
		{"polymorphic-site", `
class A:
    def v(self):
        return 1
class B:
    def v(self):
        return 2
def get(o):
    return o.v()
objs = [A(), B(), A(), B(), A()]
total = 0
j = 0
while j < 20:
    for o in objs:
        total = total + get(o)
    j = j + 1
print(total)
`, "140\n"},
		{"shadow-flip-flop", `
class C:
    def v(self):
        return "cls"
def g(o):
    return o.v
r = []
i = 0
while i < 3:
    a = C()
    m = g(a)
    r.append(m())
    a.v = "inst"
    r.append(g(a))
    i = i + 1
print(r)
`, "['cls', 'inst', 'cls', 'inst', 'cls', 'inst']\n"},
	}
	for _, tc := range srcs {
		t.Run(tc.name, func(t *testing.T) {
			expectQuick(t, tc.src, tc.want)
		})
	}
}
