package interp

import (
	"repro/internal/emit"
	"repro/internal/pyobj"
)

// This file exposes the interpreter operations the JIT's residual trace
// operations fall back to. The implementations are the same event-emitting
// helpers the bytecode handlers use, so residual operations cost exactly
// what the interpreter would pay.

// GetAttr performs attribute lookup (LOAD_ATTR semantics), returning a new
// reference.
func (vm *VM) GetAttr(obj pyobj.Object, name string) pyobj.Object {
	return vm.getAttr(obj, name)
}

// SetAttr performs attribute assignment (STORE_ATTR semantics).
func (vm *VM) SetAttr(obj pyobj.Object, name string, v pyobj.Object) {
	vm.setAttr(obj, name, v)
}

// CharStr returns the interned single-character string for b.
func (vm *VM) CharStr(b byte) *pyobj.Str { return vm.charStr(b) }

// LookupGlobalPure resolves a global or builtin name without emitting
// events (the JIT's guard re-validation path).
func (vm *VM) LookupGlobalPure(globals *pyobj.Dict, name string) (pyobj.Object, bool) {
	if globals != nil {
		if v, _, ok := globals.GetStr(name); ok {
			return v, true
		}
	}
	v, _, ok := vm.Builtins.GetStr(name)
	return v, ok
}

// JITSpace returns a code allocator over the JIT arena for compiled
// traces.
func (vm *VM) JITSpace() *emit.CodeSpace { return vm.jitSpace }

// BackEdgeCounterAddr returns a simulated address for a loop's profiling
// counter (in the data segment).
func (vm *VM) BackEdgeCounterAddr() uint64 { return vm.dataAlloc(8) }

// CountJITIteration accounts compiled-trace work against the bytecode
// budget (MaxBytecodes safety valve) and the resource governor's step and
// deadline limits. A raise from here unwinds through the trace executor,
// which deoptimizes (reconstructing interpreter state at the loop header)
// before letting the error continue.
func (vm *VM) CountJITIteration(nops int) {
	vm.iterations += uint64(nops)
	if vm.MaxBytecodes != 0 && vm.iterations > vm.MaxBytecodes {
		Raise("RuntimeError", "bytecode budget exceeded in compiled code")
	}
	if vm.iterations >= vm.nextCheck {
		vm.governorCheckJIT()
	}
}
