package interp

import (
	"repro/internal/core"
	"repro/internal/pyobj"
)

// GetIter implements iter(o): resolve tp_iter, allocate the iterator
// object (CPython allocates a fresh iterator per loop — allocation churn).
func (vm *VM) GetIter(o pyobj.Object) pyobj.Object {
	e := vm.Eng
	e.Load(core.TypeCheck, o.Hdr().Addr, false)
	e.Load(core.FunctionResolution, o.PyType().SlotAddr(pyobj.SlotIter), true)
	e.CCall(core.CFunctionCall, vm.hp.getIter, indirectCCall)
	defer e.CReturn(core.CFunctionCall, indirectCCall)

	var it pyobj.Object
	switch c := o.(type) {
	case *pyobj.List:
		iter := &pyobj.ListIter{L: c}
		vm.Heap.Allocate(iter, core.ObjectAllocation)
		vm.Incref(c)
		it = iter
	case *pyobj.Tuple:
		iter := &pyobj.TupleIter{T: c}
		vm.Heap.Allocate(iter, core.ObjectAllocation)
		vm.Incref(c)
		it = iter
	case *pyobj.Str:
		iter := &pyobj.StrIter{S: c}
		vm.Heap.Allocate(iter, core.ObjectAllocation)
		vm.Incref(c)
		it = iter
	case *pyobj.Range:
		iter := &pyobj.RangeIter{Cur: c.Start, Stop: c.Stop, Step: c.Step}
		vm.Heap.Allocate(iter, core.ObjectAllocation)
		it = iter
	case *pyobj.Dict:
		iter := &pyobj.DictIter{D: c, Mode: pyobj.DictIterKeys}
		vm.Heap.Allocate(iter, core.ObjectAllocation)
		vm.Incref(c)
		it = iter
	case *pyobj.ListIter, *pyobj.TupleIter, *pyobj.StrIter, *pyobj.RangeIter, *pyobj.DictIter:
		vm.Incref(c)
		it = c
	default:
		Raise("TypeError", "'%s' object is not iterable", pyobj.TypeName(o))
	}
	// Iterator field initialization.
	e.Store(core.ObjectAllocation, it.Hdr().Addr+16)
	e.Store(core.ObjectAllocation, it.Hdr().Addr+24)
	vm.barrier(it, o)
	return it
}

// IterNext advances an iterator: the tp_iternext indirect C call plus the
// per-type stepping work. ok=false on exhaustion.
func (vm *VM) IterNext(it pyobj.Object) (pyobj.Object, bool) {
	e := vm.Eng
	e.Load(core.FunctionResolution, it.PyType().SlotAddr(pyobj.SlotIterNext), true)
	e.CCall(core.CFunctionCall, vm.hp.iterNext, indirectCCall)
	defer e.CReturn(core.CFunctionCall, indirectCCall)

	switch c := it.(type) {
	case *pyobj.RangeIter:
		// cur/stop loads, termination test, boxed index, step.
		e.Load(core.Execute, c.H.Addr+16, false)
		e.Load(core.Execute, c.H.Addr+24, false)
		e.ALU(core.Execute, true)
		done := (c.Step > 0 && c.Cur >= c.Stop) || (c.Step < 0 && c.Cur <= c.Stop)
		e.Branch(core.Execute, done)
		if done {
			return nil, false
		}
		v := vm.NewInt(c.Cur)
		c.Cur += c.Step
		e.Store(core.Execute, c.H.Addr+16)
		return v, true
	case *pyobj.ListIter:
		e.Load(core.Execute, c.H.Addr+24, false)  // index
		e.Load(core.Execute, c.L.H.Addr+16, true) // ob_size
		vm.errCheck(false)
		done := c.Idx >= len(c.L.Items)
		e.Branch(core.Execute, done)
		if done {
			return nil, false
		}
		e.Load(core.Execute, c.L.ItemAddr(c.Idx), true)
		v := c.L.Items[c.Idx]
		c.Idx++
		e.Store(core.Execute, c.H.Addr+24)
		vm.Incref(v)
		return v, true
	case *pyobj.TupleIter:
		e.Load(core.Execute, c.H.Addr+24, false)
		done := c.Idx >= len(c.T.Items)
		e.Branch(core.Execute, done)
		if done {
			return nil, false
		}
		e.Load(core.Execute, c.T.ItemAddr(c.Idx), true)
		v := c.T.Items[c.Idx]
		c.Idx++
		e.Store(core.Execute, c.H.Addr+24)
		vm.Incref(v)
		return v, true
	case *pyobj.StrIter:
		e.Load(core.Execute, c.H.Addr+24, false)
		done := c.Idx >= len(c.S.V)
		e.Branch(core.Execute, done)
		if done {
			return nil, false
		}
		e.Load(core.Execute, c.S.DataAddr+uint64(c.Idx), true)
		b := c.S.V[c.Idx]
		c.Idx++
		e.Store(core.Execute, c.H.Addr+24)
		return vm.charStr(b), true
	case *pyobj.DictIter:
		for c.Idx < len(c.D.Entries) {
			ent := &c.D.Entries[c.Idx]
			c.Idx++
			e.Load(core.Execute, c.D.TableAddr+uint64(c.Idx%maxInt(c.D.TableCap, 1))*24, false)
			e.Branch(core.Execute, ent.Live())
			if !ent.Live() {
				continue
			}
			e.Store(core.Execute, c.H.Addr+24)
			switch c.Mode {
			case pyobj.DictIterKeys:
				vm.Incref(ent.Key)
				return ent.Key, true
			case pyobj.DictIterValues:
				vm.Incref(ent.Value)
				return ent.Value, true
			default:
				pair := vm.NewTuple([]pyobj.Object{ent.Key, ent.Value})
				vm.Incref(ent.Key)
				vm.Incref(ent.Value)
				return pair, true
			}
		}
		return nil, false
	}
	Raise("TypeError", "'%s' object is not an iterator", pyobj.TypeName(it))
	return nil, false
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
