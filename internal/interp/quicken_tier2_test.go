package interp

import (
	"strings"
	"testing"

	"repro/internal/emit"
	"repro/internal/faults"
	"repro/internal/gc"
	"repro/internal/isa"
)

// polySrc drives one LOAD_ATTR site through two receiver classes with
// different dict layouts — the shape that must promote the monomorphic
// cache to a polymorphic stub chain instead of burning its miss budget.
const polySrc = `
class A:
    def __init__(self):
        self.v = 1
class B:
    def __init__(self):
        self.pad = 0
        self.v = 2
def total(objs):
    t = 0
    i = 0
    while i < 200:
        t = t + objs[i % 2].v
        i = i + 1
    return t
print(total([A(), B()]))
`

const polyWant = "300\n"

func TestPolyPromotionOnBimorphicSite(t *testing.T) {
	got, vm := runQuick(t, polySrc)
	if got != polyWant {
		t.Fatalf("output %q, want %q", got, polyWant)
	}
	if cold := runCold(t, polySrc); cold != got {
		t.Fatalf("cold output %q, quickened %q", cold, got)
	}
	ic := vm.Stats.IC
	if ic.PolyPromotions == 0 {
		t.Errorf("bimorphic site never promoted to a poly stub: %+v", ic)
	}
	if ic.PolyHits == 0 {
		t.Errorf("no polymorphic-stub hits on an alternating two-class site: %+v", ic)
	}
	if ic.Dequickened != 0 {
		t.Errorf("bimorphic site de-quickened instead of promoting: %+v", ic)
	}
	// After both classes are cached the site should hit nearly always.
	if ic.PolyHits < 150 {
		t.Errorf("poly hits %d too low for 200 alternating accesses: %+v", ic.PolyHits, ic)
	}
}

// TestPolyColdMatchesPoly pins the poly-cold difftest leg's contract at
// the unit level: disabling promotion changes only the counters, never
// the output.
func TestPolyColdMatchesPoly(t *testing.T) {
	got, vm := runQuickWith(t, polySrc, func(vm *VM) {
		vm.SetPolyICs(false)
		vm.SetFusion(false)
		vm.SetIntFast(false)
	})
	if got != polyWant {
		t.Fatalf("tier-1 output %q, want %q", got, polyWant)
	}
	ic := vm.Stats.IC
	if ic.PolyHits != 0 || ic.PolyPromotions != 0 || ic.FusedHits != 0 || ic.IntFastHits != 0 {
		t.Errorf("tier-1 pin recorded tier-2 activity: %+v", ic)
	}
	// Without promotion the alternating site must exhaust its miss
	// budget and demote back to the generic opcode.
	if ic.Dequickened == 0 {
		t.Errorf("alternating site without poly stubs never de-quickened: %+v", ic)
	}
}

// TestMegamorphicSiteDequickens: six receiver classes exceed the stub
// chain's maximum width; the site must give up and rewrite back to the
// generic opcode rather than thrash forever.
func TestMegamorphicSiteDequickens(t *testing.T) {
	src := `
class C0:
    def __init__(self):
        self.v = 0
class C1:
    def __init__(self):
        self.a = 0
        self.v = 1
class C2:
    def __init__(self):
        self.a = 0
        self.b = 0
        self.v = 2
class C3:
    def __init__(self):
        self.a = 0
        self.b = 0
        self.c = 0
        self.v = 3
class C4:
    def __init__(self):
        self.a = 0
        self.b = 0
        self.c = 0
        self.d = 0
        self.v = 4
class C5:
    def __init__(self):
        self.a = 0
        self.b = 0
        self.c = 0
        self.d = 0
        self.e = 0
        self.v = 5
objs = [C0(), C1(), C2(), C3(), C4(), C5()]
t = 0
i = 0
while i < 300:
    t = t + objs[i % 6].v
    i = i + 1
print(t)
`
	const want = "750\n"
	got, vm := runQuick(t, src)
	if got != want {
		t.Fatalf("output %q, want %q", got, want)
	}
	if cold := runCold(t, src); cold != got {
		t.Fatalf("cold output %q, quickened %q", cold, got)
	}
	ic := vm.Stats.IC
	if ic.Dequickened == 0 {
		t.Errorf("megamorphic site never de-quickened: %+v", ic)
	}
	if ic.PolyPromotions == 0 {
		t.Errorf("megamorphic site never even tried promotion: %+v", ic)
	}
}

// fusionSrc is the dispatch-bench shape: its loop contains every fused
// pair the tier-2 pass emits (compare+jump header, fast+fast, borrowed
// attribute load/store, const and global binary operands, const return).
const fusionSrc = `
STEP = 3
class Acc:
    def __init__(self):
        self.total = 0
    def bump(self, v):
        self.total = self.total + v
def run(n):
    a = Acc()
    i = 0
    while i < n:
        a.bump(STEP)
        a.total = a.total + STEP
        i = i + 1
    return a.total
print(run(500))
`

const fusionWant = "3000\n"

func TestFusionChurnStaysCorrect(t *testing.T) {
	for _, every := range []uint64{1, 2, 16} {
		got, vm := runQuickWith(t, fusionSrc, func(vm *VM) {
			vm.SetFuseFlushEvery(every)
		})
		if got != fusionWant {
			t.Fatalf("flushEvery=%d output %q, want %q", every, got, fusionWant)
		}
		ic := vm.Stats.IC
		if ic.Defused == 0 {
			t.Errorf("flushEvery=%d: churn never de-fused a superinstruction: %+v", every, ic)
		}
		if ic.Fused <= ic.Defused/2 {
			t.Errorf("flushEvery=%d: de-fused sites never re-fused (fused %d, defused %d)",
				every, ic.Fused, ic.Defused)
		}
	}
	if cold := runCold(t, fusionSrc); cold != fusionWant {
		t.Fatalf("cold output %q, want %q", cold, fusionWant)
	}
}

func TestFusionOffStillCorrect(t *testing.T) {
	got, vm := runQuickWith(t, fusionSrc, func(vm *VM) {
		vm.SetFusion(false)
	})
	if got != fusionWant {
		t.Fatalf("fusion-off output %q, want %q", got, fusionWant)
	}
	ic := vm.Stats.IC
	if ic.Fused != 0 || ic.FusedHits != 0 {
		t.Errorf("fusion disabled but fused counters moved: %+v", ic)
	}
	// The IC and intfast tiers keep working without fusion.
	if ic.Hits() == 0 || ic.IntFastHits == 0 {
		t.Errorf("fusion-off run lost its other tiers: %+v", ic)
	}
}

// TestIntFastMaxAbsForcesDeopt pins the intfast-overflow leg's knob: a
// tiny magnitude cap makes the speculative unboxed path bail once the
// accumulator outgrows it, with identical results.
func TestIntFastMaxAbsForcesDeopt(t *testing.T) {
	src := `
acc = 0
i = 0
while i < 2000:
    acc = acc + 7
    i = i + 1
print(acc)
`
	const want = "14000\n"
	got, vm := runQuickWith(t, src, func(vm *VM) {
		vm.SetIntFastMaxAbs(1 << 10)
	})
	if got != want {
		t.Fatalf("output %q, want %q", got, want)
	}
	ic := vm.Stats.IC
	if ic.IntFastMisses == 0 {
		t.Errorf("capped intfast path never deopted: %+v", ic)
	}
	if ic.IntFastHits == 0 {
		t.Errorf("capped intfast path never hit below the cap: %+v", ic)
	}
	if uncapped, _ := runQuick(t, src); uncapped != want {
		t.Fatalf("uncapped output %q, want %q", uncapped, want)
	}
}

// TestIntFastOverflowDeoptsToGenericRaise: an addition that would wrap
// int64 must leave the unboxed fast path through the pre-check deopt
// and reproduce the generic handler's OverflowError exactly.
func TestIntFastOverflowDeoptsToGenericRaise(t *testing.T) {
	src := `
big = 9223372036854775807
step = 1
i = 0
while i < 10:
    big = big - 1
    i = i + 1
print(big)
x = big + 20
print(x)
`
	run := func(quicken bool) (string, string, *VM) {
		var out strings.Builder
		vm := New(emit.NewEngine(isa.NullSink{}), gc.DefaultRefCountConfig(), &out)
		vm.SetQuicken(quicken)
		errStr := ""
		if err := vm.RunSource("<overflow>", src); err != nil {
			errStr = err.Error()
		}
		return out.String(), errStr, vm
	}
	coldOut, coldErr, _ := run(false)
	quickOut, quickErr, vm := run(true)
	if coldErr == "" || !strings.Contains(coldErr, "OverflowError") {
		t.Fatalf("cold run did not overflow: err=%q out=%q", coldErr, coldOut)
	}
	if quickOut != coldOut || quickErr != coldErr {
		t.Fatalf("tier-2 diverged at the overflow boundary:\ncold  out=%q err=%q\nquick out=%q err=%q",
			coldOut, coldErr, quickOut, quickErr)
	}
	if vm.Stats.IC.IntFastMisses == 0 {
		t.Errorf("overflow-boundary arithmetic never deopted the unboxed path: %+v", vm.Stats.IC)
	}
}

// TestGuardChainCorruptFaultIsAbsorbed: the chaos fault that pretends a
// poly stub chain's guards are stale must only force re-fills — never a
// wrong answer. Mirrors the difftest chaos soak at the unit level.
func TestGuardChainCorruptFaultIsAbsorbed(t *testing.T) {
	var out strings.Builder
	vm := New(emit.NewEngine(isa.NullSink{}), gc.DefaultRefCountConfig(), &out)
	vm.Heap.SetFaults(faults.NewEveryNth(faults.GuardChainCorrupt, 3))
	if err := vm.RunSource("<chaos>", polySrc); err != nil {
		t.Fatalf("RunSource under GuardChainCorrupt: %v", err)
	}
	if out.String() != polyWant {
		t.Fatalf("output under GuardChainCorrupt %q, want %q", out.String(), polyWant)
	}
	if vm.Stats.IC.PolyMisses == 0 {
		t.Errorf("forced guard-chain corruption produced no poly misses: %+v", vm.Stats.IC)
	}
}

// TestFusedSuperinstructionsFire asserts the fusion pass actually
// rewrites the bench shape (counters, not just correctness): the loop
// executes fused dispatches and unboxed-int fast paths by the hundreds.
func TestFusedSuperinstructionsFire(t *testing.T) {
	got, vm := runQuick(t, fusionSrc)
	if got != fusionWant {
		t.Fatalf("output %q, want %q", got, fusionWant)
	}
	ic := vm.Stats.IC
	if ic.Fused == 0 {
		t.Fatalf("fusion pass rewrote nothing: %+v", ic)
	}
	// 500 iterations, several fused pairs per iteration.
	if ic.FusedHits < 1000 {
		t.Errorf("fused hits %d, want >= 1000 over 500 bench iterations: %+v", ic.FusedHits, ic)
	}
	if ic.IntFastHits < 500 {
		t.Errorf("intfast hits %d, want >= 500: %+v", ic.IntFastHits, ic)
	}
}
