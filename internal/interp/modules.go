package interp

import (
	"math"

	"repro/internal/core"
	"repro/internal/pyobj"
)

// registerMathModule builds the math module. Its functions are modeled
// C-library code (libm): events carry the CLib flag.
func (vm *VM) registerMathModule() {
	entries := map[string]pyobj.Object{}
	mf := func(name string, f func(float64) float64, events int) {
		id := vm.reg("math."+name, 48, false, true,
			func(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
				vm.argCheck("math."+name, args, 1, 1)
				x := vm.wantFloat("math."+name, args[0])
				for i := 0; i < events; i++ {
					vm.Eng.FPU(core.Execute, true)
				}
				r := f(x)
				vm.errCheck(math.IsNaN(r) && !math.IsNaN(x))
				return vm.NewFloat(r)
			})
		entries[name] = vm.method(name, id)
	}
	mf("sqrt", math.Sqrt, 3)
	mf("sin", math.Sin, 8)
	mf("cos", math.Cos, 8)
	mf("tan", math.Tan, 10)
	mf("asin", math.Asin, 10)
	mf("acos", math.Acos, 10)
	mf("atan", math.Atan, 8)
	mf("exp", math.Exp, 8)
	mf("log", math.Log, 8)
	mf("log10", math.Log10, 8)
	mf("floor", math.Floor, 1)
	mf("ceil", math.Ceil, 1)
	mf("fabs", math.Abs, 1)
	mf("sinh", math.Sinh, 10)
	mf("cosh", math.Cosh, 10)

	powID := vm.reg("math.pow", 48, false, true,
		func(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
			vm.argCheck("math.pow", args, 2, 2)
			x := vm.wantFloat("math.pow", args[0])
			y := vm.wantFloat("math.pow", args[1])
			vm.Eng.FDiv(core.Execute, true)
			return vm.NewFloat(math.Pow(x, y))
		})
	entries["pow"] = vm.method("pow", powID)

	atan2ID := vm.reg("math.atan2", 48, false, true,
		func(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
			vm.argCheck("math.atan2", args, 2, 2)
			y := vm.wantFloat("math.atan2", args[0])
			x := vm.wantFloat("math.atan2", args[1])
			for i := 0; i < 10; i++ {
				vm.Eng.FPU(core.Execute, true)
			}
			return vm.NewFloat(math.Atan2(y, x))
		})
	entries["atan2"] = vm.method("atan2", atan2ID)

	fmodID := vm.reg("math.fmod", 32, false, true,
		func(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
			vm.argCheck("math.fmod", args, 2, 2)
			x := vm.wantFloat("math.fmod", args[0])
			y := vm.wantFloat("math.fmod", args[1])
			vm.errCheck(y == 0)
			if y == 0 {
				Raise("ValueError", "math domain error")
			}
			vm.Eng.FDiv(core.Execute, true)
			return vm.NewFloat(math.Mod(x, y))
		})
	entries["fmod"] = vm.method("fmod", fmodID)

	entries["pi"] = &pyobj.Float{
		H: pyobj.Header{Addr: vm.dataAlloc(24), Size: 24, Immortal: true}, V: math.Pi}
	entries["e"] = &pyobj.Float{
		H: pyobj.Header{Addr: vm.dataAlloc(24), Size: 24, Immortal: true}, V: math.E}

	vm.bindModule("math", entries)
}

// registerRandomModule builds a deterministic random module (xorshift64,
// reset between measurement runs so every run-time sees the same stream).
func (vm *VM) registerRandomModule() {
	entries := map[string]pyobj.Object{}

	randomID := vm.reg("random.random", 48, true, true,
		func(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
			vm.argCheck("random.random", args, 0, 0)
			vm.Eng.ALUn(core.Execute, 4)
			return vm.NewFloat(float64(vm.nextRand()>>11) / float64(1<<53))
		})
	entries["random"] = vm.method("random", randomID)

	randintID := vm.reg("random.randint", 48, true, true,
		func(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
			vm.argCheck("random.randint", args, 2, 2)
			lo := vm.wantInt("random.randint", args[0])
			hi := vm.wantInt("random.randint", args[1])
			vm.errCheck(hi < lo)
			if hi < lo {
				Raise("ValueError", "empty range for randint()")
			}
			vm.Eng.ALUn(core.Execute, 4)
			span := uint64(hi - lo + 1)
			return vm.NewInt(lo + int64(vm.nextRand()%span))
		})
	entries["randint"] = vm.method("randint", randintID)

	randrangeID := vm.reg("random.randrange", 48, true, true,
		func(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
			vm.argCheck("random.randrange", args, 1, 2)
			lo, hi := int64(0), int64(0)
			if len(args) == 1 {
				hi = vm.wantInt("random.randrange", args[0])
			} else {
				lo = vm.wantInt("random.randrange", args[0])
				hi = vm.wantInt("random.randrange", args[1])
			}
			vm.errCheck(hi <= lo)
			if hi <= lo {
				Raise("ValueError", "empty range for randrange()")
			}
			vm.Eng.ALUn(core.Execute, 4)
			return vm.NewInt(lo + int64(vm.nextRand()%uint64(hi-lo)))
		})
	entries["randrange"] = vm.method("randrange", randrangeID)

	seedID := vm.reg("random.seed", 24, true, true,
		func(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
			vm.argCheck("random.seed", args, 0, 1)
			seed := uint64(0x9E3779B97F4A7C15)
			if len(args) == 1 {
				if n, ok := pyobj.AsInt(args[0]); ok {
					seed = uint64(n)*0x9E3779B97F4A7C15 + 1
				}
			}
			vm.rng = seed
			return nil
		})
	entries["seed"] = vm.method("seed", seedID)

	choiceID := vm.reg("random.choice", 32, true, true,
		func(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
			vm.argCheck("random.choice", args, 1, 1)
			l := vm.wantList("random.choice", args[0])
			vm.errCheck(len(l.Items) == 0)
			if len(l.Items) == 0 {
				Raise("IndexError", "choice from empty sequence")
			}
			vm.Eng.ALUn(core.Execute, 2)
			v := l.Items[vm.nextRand()%uint64(len(l.Items))]
			vm.Incref(v)
			return v
		})
	entries["choice"] = vm.method("choice", choiceID)

	shuffleID := vm.reg("random.shuffle", 64, true, true,
		func(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
			vm.argCheck("random.shuffle", args, 1, 1)
			l := vm.wantList("random.shuffle", args[0])
			for i := len(l.Items) - 1; i > 0; i-- {
				j := int(vm.nextRand() % uint64(i+1))
				vm.Eng.Load(core.Execute, l.ItemAddr(i), false)
				vm.Eng.Load(core.Execute, l.ItemAddr(j), false)
				vm.Eng.Store(core.Execute, l.ItemAddr(i))
				vm.Eng.Store(core.Execute, l.ItemAddr(j))
				l.Items[i], l.Items[j] = l.Items[j], l.Items[i]
			}
			return nil
		})
	entries["shuffle"] = vm.method("shuffle", shuffleID)

	vm.bindModule("random", entries)
}

// registerTimeModule exposes a deterministic virtual clock derived from
// the executed-bytecode count, so benchmark self-timing is reproducible.
func (vm *VM) registerTimeModule() {
	entries := map[string]pyobj.Object{}
	clockID := vm.reg("time.clock", 24, true, true,
		func(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
			return vm.NewFloat(float64(vm.iterations) * 1e-7)
		})
	entries["clock"] = vm.method("clock", clockID)
	entries["time"] = vm.method("time", clockID)
	vm.bindModule("time", entries)
}
