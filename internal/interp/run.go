package interp

import (
	"runtime/debug"

	"repro/internal/core"
	"repro/internal/emit"
	"repro/internal/pycode"
	"repro/internal/pyobj"
)

// maxRecursion bounds the Python call depth, as CPython's recursion check
// does.
const maxRecursion = 4000

// RunSource compiles and runs a MiniPy program, returning any Python-level
// error.
func (vm *VM) RunSource(file, src string) error {
	code, err := compileCached(file, src)
	if err != nil {
		return err
	}
	return vm.RunCode(code)
}

// RunCode executes a module code object in a fresh module namespace.
//
// This is the host's crash-isolation boundary. Python-level errors come
// back as *PyError. Any other panic reaching here is a runtime bug; it is
// converted — not re-raised — into an *InternalError that preserves the
// original panic value, the Go stack at the panic site, and a snapshot of
// the VM (frame stack, bytecode count, GC stats), so one hostile program
// can never take down a host serving many.
func (vm *VM) RunCode(code *pycode.Code) (err error) {
	vm.unwound = vm.unwound[:0]
	vm.unwoundTotal = 0
	vm.armGovernor()
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if pe, ok := r.(*PyError); ok {
			err = pe
			vm.unwound = vm.unwound[:0]
			return
		}
		err = vm.internalError(r, debug.Stack())
	}()
	vm.Globals = vm.NewDict()
	if vm.icSeed != nil {
		vm.bindSeed(code)
	}
	cd := vm.materialize(code)
	f := vm.newFrame(nil, code, vm.Globals, nil, cd)
	res := vm.runFrame(f)
	vm.Decref(res)
	vm.freeFrame(f)
	return nil
}

// materialize assigns simulated addresses to a code object's bytecode,
// constant pool, and names, creating the immortal constant objects
// (CPython's unmarshal step).
func (vm *VM) materialize(code *pycode.Code) *codeData {
	if cd, ok := vm.constCache[code]; ok {
		return cd
	}
	cd := &codeData{
		codeAddr:   vm.dataAlloc(uint64(len(code.Code))*3 + 16),
		constsAddr: vm.dataAlloc(uint64(len(code.Consts))*8 + 16),
		namesAddr:  vm.dataAlloc(uint64(len(code.Names))*8 + 16),
	}
	cd.consts = make([]pyobj.Object, len(code.Consts))
	for i := range code.Consts {
		cd.consts[i] = vm.constObject(code.Consts[i])
	}
	cd.nameObjs = make([]*pyobj.Str, len(code.Names))
	for i, n := range code.Names {
		cd.nameObjs[i] = vm.Intern(n)
	}
	vm.quickenCode(code, cd)
	vm.constCache[code] = cd
	return cd
}

// constObject materializes one constant as an immortal object.
func (vm *VM) constObject(k pycode.Const) pyobj.Object {
	switch k.Kind {
	case pycode.ConstNone:
		return vm.None
	case pycode.ConstBool:
		if k.Int != 0 {
			return vm.True
		}
		return vm.False
	case pycode.ConstInt:
		if k.Int >= smallIntMin && k.Int <= smallIntMax {
			return vm.smallInts[k.Int-smallIntMin]
		}
		return &pyobj.Int{H: pyobj.Header{Addr: vm.dataAlloc(24), Size: 24, Immortal: true}, V: k.Int}
	case pycode.ConstFloat:
		return &pyobj.Float{H: pyobj.Header{Addr: vm.dataAlloc(24), Size: 24, Immortal: true}, V: k.Float}
	case pycode.ConstStr:
		return vm.Intern(k.Str)
	case pycode.ConstTuple:
		items := make([]pyobj.Object, len(k.Tuple))
		for i := range k.Tuple {
			items[i] = vm.constObject(k.Tuple[i])
		}
		size := uint64(40 + len(items)*8)
		return &pyobj.Tuple{H: pyobj.Header{Addr: vm.dataAlloc(size), Size: uint32(size), Immortal: true}, Items: items}
	case pycode.ConstCode:
		return &pyobj.CodeObj{H: pyobj.Header{Addr: vm.dataAlloc(48), Size: 48, Immortal: true}, Code: k.Code}
	}
	panic("interp: unknown constant kind")
}

// newFrame allocates an execution frame — heap churn charged to the
// object-allocation category, with the setup stores charged to function
// setup, mirroring PyFrame_New.
func (vm *VM) newFrame(fn *pyobj.Func, code *pycode.Code, globals, names *pyobj.Dict, cd *codeData) *pyobj.Frame {
	f := &pyobj.Frame{
		Code:       code,
		Fn:         fn,
		Locals: make([]pyobj.Object, len(code.Varnames)),
		// One slot beyond the compiler's worst case: a fused attr-call
		// head (quicken_fuse.go) pushes (callee, self) where the generic
		// LOAD_ATTR pushed one value, and at most one fused window is
		// live per frame.
		Stack: make([]pyobj.Object, code.StackSize+1),
		Globals:    globals,
		Names:      names,
		Consts:     cd.consts,
		ConstsAddr: cd.constsAddr,
		CodeAddr:   cd.codeAddr,
		Insns:      code.Code,
	}
	if cd.quick != nil {
		f.Insns = cd.quick
		f.Caches = cd.caches
		f.ICAddr = cd.icAddr
	}
	vm.Eng.CCall(core.CFunctionCall, vm.hp.frameAlloc, emit.DefaultCCall)
	vm.Heap.Allocate(f, core.ObjectAllocation)
	// Frame header initialization: code/globals/back pointers.
	vm.Eng.Store(core.FunctionSetup, f.H.Addr+16)
	vm.Eng.Store(core.FunctionSetup, f.H.Addr+24)
	vm.Eng.Store(core.FunctionSetup, f.H.Addr+32)
	vm.Eng.CReturn(core.CFunctionCall, emit.DefaultCCall)
	vm.Stats.FrameAlloc++
	return f
}

// freeFrame releases a dead frame (refcount mode returns its block to the
// free list; nursery frames simply die young).
func (vm *VM) freeFrame(f *pyobj.Frame) {
	for i, l := range f.Locals {
		if l != nil {
			vm.Decref(l)
			f.Locals[i] = nil
		}
	}
	for i := 0; i < f.Sp; i++ {
		if f.Stack[i] != nil {
			vm.Decref(f.Stack[i])
			f.Stack[i] = nil
		}
	}
	vm.Heap.FreeObject(f, core.ObjectAllocation)
}

// dispatch emits the fetch/decode events of one bytecode and moves the
// engine to the opcode's handler block.
func (vm *VM) dispatch(f *pyobj.Frame, op pycode.Opcode) {
	vm.iterations++
	vm.Stats.Bytecodes++
	if vm.MaxBytecodes != 0 && vm.iterations > vm.MaxBytecodes {
		// The de-quickened mnemonic keeps the message identical whether
		// or not the site happened to be quickened when the budget hit.
		Raise("RuntimeError", "bytecode budget exceeded in %s at pc=%d (op=%s)",
			f.Code.Name, f.PC, op.Dequicken())
	}
	// Resource governor: one compare against a precomputed threshold
	// covers the step budget and deadline polling (governor.go). No
	// events are emitted — enforcement stays out of overhead attribution.
	if vm.iterations >= vm.nextCheck {
		vm.governorCheck(f, op)
	}
	vm.Eng.At(vm.hp.dispatchLoop)
	vm.Eng.Load(core.Dispatch, f.CodeAddr+uint64(f.PC)*3, true)
	vm.Eng.ALU(core.Dispatch, true) // opcode extract
	vm.Eng.ALU(core.Dispatch, true) // oparg extract / bounds
	vm.Eng.IndJump(core.Dispatch, vm.opPC[op])
}

// runFrame executes f until RETURN_VALUE and returns the result (with a
// reference). Python calls recurse through Go calls, as in CPython.
func (vm *VM) runFrame(f *pyobj.Frame) pyobj.Object {
	back := vm.frame
	f.Back = back
	vm.frame = f
	vm.depth++
	if vm.depth > vm.maxDepth {
		vm.maxDepth = vm.depth
	}
	// completed distinguishes a normal return from a panic unwind: the
	// crash snapshot must be captured here, because this deferred cleanup
	// pops the frame chain before any outer recover can see it. Registered
	// ahead of the recursion check so a depth raise unwinds cleanly too.
	completed := false
	defer func() {
		if !completed {
			vm.noteUnwind(f)
		}
		vm.depth--
		vm.frame = back
	}()
	vm.errCheck(vm.depth > vm.recursionLimit)
	if vm.depth > vm.recursionLimit {
		vm.raiseRecursion()
	}

	// Execute the frame's instruction stream: the per-VM quickened copy
	// when inline caches are armed, the shared Code.Code otherwise. PC
	// indices are identical in both, so everything downstream (jumps,
	// JIT back-edge hooks, crash snapshots) is quickening-oblivious.
	code := f.Insns
	tracer := vm.tracer
	for {
		in := code[f.PC]
		if tracer != nil && tracer.Recording() {
			// The trace recorder sees only generic opcodes: a recorded
			// trace carries its own guards (which re-validate the live
			// dict state at execution time), so feeding it the
			// de-quickened form keeps the JIT and the interpreter's
			// caches observing one and the same guard state.
			tracer.RecordInstr(f, f.PC, pycode.Instr{Op: in.Op.Dequicken(), Arg: in.Arg})
		}
		vm.dispatch(f, in.Op)
		pc := f.PC
		f.PC++
		switch in.Op {
		case pycode.POP_TOP:
			vm.Decref(vm.pop(f))
		case pycode.DUP_TOP:
			v := vm.top(f)
			vm.Incref(v)
			vm.push(f, v)
		case pycode.DUP_TOP_TWO:
			a := vm.peek(f, 2)
			b := vm.peek(f, 1)
			vm.Incref(a)
			vm.Incref(b)
			vm.push(f, a)
			vm.push(f, b)
		case pycode.ROT_TWO:
			a := vm.pop(f)
			b := vm.pop(f)
			vm.push(f, a)
			vm.push(f, b)
		case pycode.ROT_THREE:
			a := vm.pop(f)
			b := vm.pop(f)
			c := vm.pop(f)
			vm.push(f, a)
			vm.push(f, c)
			vm.push(f, b)

		case pycode.LOAD_CONST:
			vm.Eng.ALU(core.RegTransfer, false) // co_consts address
			vm.Eng.Load(core.ConstLoad, f.ConstsAddr+uint64(in.Arg)*8, true)
			v := f.Consts[in.Arg]
			vm.Incref(v)
			vm.push(f, v)
		case pycode.LOAD_FAST:
			vm.Eng.ALU(core.RegTransfer, false)
			vm.Eng.Load(core.Stack, f.LocalAddr(int(in.Arg)), true)
			v := f.Locals[in.Arg]
			vm.errCheck(v == nil)
			if v == nil {
				Raise("UnboundLocalError", "local variable '%s' referenced before assignment",
					f.Code.Varnames[in.Arg])
			}
			vm.Incref(v)
			vm.push(f, v)
		case pycode.STORE_FAST:
			vm.Eng.ALU(core.RegTransfer, false)
			v := vm.pop(f)
			old := f.Locals[in.Arg]
			vm.Eng.Store(core.Stack, f.LocalAddr(int(in.Arg)))
			f.Locals[in.Arg] = v
			vm.barrier(f, v)
			if old != nil {
				vm.Decref(old)
			}

		case pycode.LOAD_GLOBAL, pycode.LOAD_NAME:
			vm.loadName(f, in)
		case pycode.LOAD_GLOBAL_IC:
			vm.loadGlobalIC(f, in, pc)
		case pycode.STORE_GLOBAL:
			v := vm.pop(f)
			vm.DictSetStr(f.Globals, f.Code.Names[in.Arg], v, core.NameResolution)
			vm.Decref(v)
		case pycode.STORE_NAME:
			v := vm.pop(f)
			target := f.Globals
			if f.Names != nil {
				target = f.Names
			}
			vm.DictSetStr(target, f.Code.Names[in.Arg], v, core.NameResolution)
			vm.Decref(v)

		case pycode.LOAD_ATTR:
			obj := vm.pop(f)
			v := vm.getAttr(obj, f.Code.Names[in.Arg])
			vm.push(f, v)
			vm.Decref(obj)
		case pycode.LOAD_ATTR_IC:
			obj := vm.pop(f)
			v := vm.loadAttrIC(f, obj, in, pc)
			vm.push(f, v)
			vm.Decref(obj)
		case pycode.STORE_ATTR:
			obj := vm.pop(f)
			v := vm.pop(f)
			vm.setAttr(obj, f.Code.Names[in.Arg], v)
			vm.Decref(v)
			vm.Decref(obj)
		case pycode.STORE_ATTR_IC:
			obj := vm.pop(f)
			v := vm.pop(f)
			vm.storeAttrIC(f, obj, in, pc, v)
			vm.Decref(v)
			vm.Decref(obj)

		case pycode.UNARY_NEGATIVE:
			v := vm.pop(f)
			r := vm.unaryNeg(v)
			vm.Decref(v)
			vm.push(f, r)
		case pycode.UNARY_NOT:
			v := vm.pop(f)
			t := vm.Truthy(v)
			vm.Decref(v)
			vm.push(f, vm.NewBool(!t))

		case pycode.BINARY_ADD, pycode.BINARY_SUBTRACT, pycode.BINARY_MULTIPLY,
			pycode.BINARY_DIVIDE, pycode.BINARY_FLOOR_DIVIDE, pycode.BINARY_MODULO,
			pycode.BINARY_POWER, pycode.BINARY_LSHIFT, pycode.BINARY_RSHIFT,
			pycode.BINARY_AND, pycode.BINARY_OR, pycode.BINARY_XOR,
			pycode.INPLACE_ADD, pycode.INPLACE_SUBTRACT, pycode.INPLACE_MULTIPLY,
			pycode.INPLACE_DIVIDE, pycode.INPLACE_FLOOR_DIVIDE, pycode.INPLACE_MODULO,
			pycode.INPLACE_AND, pycode.INPLACE_OR, pycode.INPLACE_XOR,
			pycode.INPLACE_LSHIFT, pycode.INPLACE_RSHIFT:
			b := vm.pop(f)
			a := vm.pop(f)
			r := vm.BinaryOp(binKindOf(in.Op), a, b)
			vm.Decref(a)
			vm.Decref(b)
			vm.push(f, r)

		case pycode.BINARY_SUBSCR:
			k := vm.pop(f)
			o := vm.pop(f)
			r := vm.GetItem(o, k)
			vm.Decref(k)
			vm.Decref(o)
			vm.push(f, r)
		case pycode.STORE_SUBSCR:
			k := vm.pop(f)
			o := vm.pop(f)
			v := vm.pop(f)
			vm.SetItem(o, k, v)
			vm.Decref(k)
			vm.Decref(o)
			vm.Decref(v)
		case pycode.DELETE_SUBSCR:
			k := vm.pop(f)
			o := vm.pop(f)
			vm.DelItem(o, k)
			vm.Decref(k)
			vm.Decref(o)

		case pycode.COMPARE_OP:
			b := vm.pop(f)
			a := vm.pop(f)
			r := vm.CompareOp(pycode.CmpOp(in.Arg), a, b)
			vm.Decref(a)
			vm.Decref(b)
			vm.push(f, r)

		case pycode.BUILD_LIST:
			n := int(in.Arg)
			items := make([]pyobj.Object, n)
			for i := n - 1; i >= 0; i-- {
				items[i] = vm.pop(f)
			}
			vm.push(f, vm.NewList(items))
		case pycode.BUILD_TUPLE:
			n := int(in.Arg)
			items := make([]pyobj.Object, n)
			for i := n - 1; i >= 0; i-- {
				items[i] = vm.pop(f)
			}
			vm.push(f, vm.NewTuple(items))
		case pycode.BUILD_MAP:
			vm.push(f, vm.NewDict())
		case pycode.STORE_MAP:
			k := vm.pop(f)
			v := vm.pop(f)
			d, ok := vm.top(f).(*pyobj.Dict)
			if !ok {
				Raise("TypeError", "STORE_MAP on non-dict")
			}
			vm.DictSet(d, k, v, core.Execute)
			vm.Decref(k)
			vm.Decref(v)
		case pycode.BUILD_SLICE:
			var step pyobj.Object = vm.None
			if in.Arg == 3 {
				step = vm.pop(f)
			} else {
				vm.Incref(step) // the slice owns its default-step reference
			}
			hi := vm.pop(f)
			lo := vm.pop(f)
			sl := &pyobj.Slice{Start: lo, Stop: hi, Step: step}
			vm.Heap.Allocate(sl, core.Execute)
			vm.push(f, sl)
		case pycode.UNPACK_SEQUENCE:
			vm.unpackSequence(f, int(in.Arg))

		case pycode.JUMP_FORWARD:
			vm.Eng.Jump(core.Dispatch)
			f.PC = int(in.Arg)
		case pycode.JUMP_ABSOLUTE:
			vm.Eng.Jump(core.Dispatch)
			target := int(in.Arg)
			if target <= pc && tracer != nil {
				if tracer.OnBackEdge(f, target) {
					continue // compiled code advanced the frame
				}
			}
			f.PC = target
		case pycode.POP_JUMP_IF_FALSE:
			v := vm.pop(f)
			t := vm.Truthy(v)
			vm.Decref(v)
			vm.Eng.Branch(core.Execute, !t)
			if !t {
				f.PC = int(in.Arg)
			}
		case pycode.POP_JUMP_IF_TRUE:
			v := vm.pop(f)
			t := vm.Truthy(v)
			vm.Decref(v)
			vm.Eng.Branch(core.Execute, t)
			if t {
				f.PC = int(in.Arg)
			}
		case pycode.JUMP_IF_FALSE_OR_POP:
			v := vm.top(f)
			t := vm.Truthy(v)
			vm.Eng.Branch(core.Execute, !t)
			if !t {
				f.PC = int(in.Arg)
			} else {
				vm.Decref(vm.pop(f))
			}
		case pycode.JUMP_IF_TRUE_OR_POP:
			v := vm.top(f)
			t := vm.Truthy(v)
			vm.Eng.Branch(core.Execute, t)
			if t {
				f.PC = int(in.Arg)
			} else {
				vm.Decref(vm.pop(f))
			}

		case pycode.SETUP_LOOP:
			// Push a loop block: block-stack pointer math + stores.
			vm.Eng.ALU(core.RichControlFlow, false)
			vm.Eng.Store(core.RichControlFlow, f.H.Addr+40)
			f.Blocks = append(f.Blocks, pyobj.Block{Handler: in.Arg, StackDepth: int32(f.Sp)})
		case pycode.POP_BLOCK:
			vm.Eng.ALU(core.RichControlFlow, false)
			vm.Eng.Load(core.RichControlFlow, f.H.Addr+40, false)
			f.Blocks = f.Blocks[:len(f.Blocks)-1]
		case pycode.BREAK_LOOP:
			vm.Eng.ALU(core.RichControlFlow, false)
			vm.Eng.Load(core.RichControlFlow, f.H.Addr+40, false)
			b := f.Blocks[len(f.Blocks)-1]
			f.Blocks = f.Blocks[:len(f.Blocks)-1]
			for f.Sp > int(b.StackDepth) {
				vm.Decref(vm.pop(f))
			}
			vm.Eng.Jump(core.RichControlFlow)
			f.PC = int(b.Handler)
		case pycode.CONTINUE_LOOP:
			vm.Eng.Jump(core.RichControlFlow)
			target := int(in.Arg)
			if target <= pc && tracer != nil {
				if tracer.OnBackEdge(f, target) {
					continue
				}
			}
			f.PC = target

		case pycode.GET_ITER:
			v := vm.pop(f)
			it := vm.GetIter(v)
			vm.Decref(v)
			vm.push(f, it)
		case pycode.FOR_ITER:
			it := vm.top(f)
			v, ok := vm.IterNext(it)
			if ok {
				vm.push(f, v)
			} else {
				vm.Decref(vm.pop(f)) // exhausted iterator
				vm.Eng.Jump(core.Dispatch)
				f.PC = int(in.Arg)
			}

		case pycode.CALL_FUNCTION:
			vm.callFunction(f, int(in.Arg))

		// Tier-2 superinstructions and speculative int forms
		// (quicken_fuse.go). Only the per-VM quickened stream ever
		// contains these.
		case pycode.LOAD_ATTR_CALL_METHOD:
			vm.loadAttrCallMethod(f, in, pc)
		case pycode.CALL_METHOD:
			vm.callMethod(f, int(in.Arg))
		case pycode.COMPARE_POP_JUMP:
			vm.comparePopJump(f, in, pc)
		case pycode.LOAD_FAST_LOAD_FAST:
			vm.loadFastLoadFast(f, in, pc)
		case pycode.BINARY_ADD_INT, pycode.BINARY_SUB_INT, pycode.BINARY_MUL_INT:
			vm.intFastBin(f, in.Op, pc)
		case pycode.COMPARE_OP_INT:
			vm.compareOpInt(f, in, pc)

		// Operand-borrowing superinstructions (quicken_fuse.go).
		case pycode.LOAD_FAST_LOAD_ATTR:
			vm.loadFastLoadAttr(f, in, pc)
		case pycode.LOAD_FAST_STORE_ATTR:
			vm.loadFastStoreAttr(f, in, pc)
		case pycode.LOAD_FAST_BINARY:
			vm.loadFastBinary(f, in, pc)
		case pycode.LOAD_CONST_BINARY:
			vm.loadConstBinary(f, in, pc)
		case pycode.LOAD_GLOBAL_BINARY:
			vm.loadGlobalBinary(f, in, pc)
		case pycode.LOAD_FAST_FAST_CMP_JUMP:
			vm.loadFastFastCmpJump(f, in, pc)
		case pycode.LOAD_CONST_RETURN:
			// Fused LOAD_CONST + RETURN_VALUE: the result never touches
			// the operand stack.
			v := vm.constBorrow(f, int(in.Arg))
			vm.Incref(v)
			vm.retireElided(f, pycode.RETURN_VALUE)
			vm.Eng.ALU(core.FunctionSetup, false)
			vm.Stats.IC.FusedHits++
			vm.fuseTick()
			completed = true
			return v

		case pycode.MAKE_FUNCTION:
			vm.makeFunction(f, int(in.Arg))
		case pycode.RETURN_VALUE:
			// Return: result handoff, frame teardown.
			v := vm.pop(f)
			vm.Eng.ALU(core.FunctionSetup, false)
			completed = true
			return v
		case pycode.BUILD_CLASS:
			vm.buildClass(f, f.Code.Names[in.Arg])

		case pycode.PRINT_ITEM:
			v := vm.pop(f)
			vm.writeOut(formatForPrint(v))
			vm.Decref(v)
		case pycode.PRINT_NEWLINE:
			vm.writeOut("\n")
		case pycode.NOP:
			// nothing
		default:
			Raise("SystemError", "unknown opcode %s", in.Op)
		}
	}
}

// loadName implements LOAD_GLOBAL (function scope) and LOAD_NAME
// (module/class scope): map lookups charged to name resolution.
func (vm *VM) loadName(f *pyobj.Frame, in pycode.Instr) {
	name := f.Code.Names[in.Arg]
	if f.Names != nil && in.Op == pycode.LOAD_NAME {
		if v, ok := vm.DictGetStr(f.Names, name, core.NameResolution); ok {
			vm.Incref(v)
			vm.push(f, v)
			return
		}
	}
	if v, ok := vm.DictGetStr(f.Globals, name, core.NameResolution); ok {
		vm.Incref(v)
		vm.push(f, v)
		return
	}
	v, ok := vm.DictGetStr(vm.Builtins, name, core.NameResolution)
	vm.errCheck(!ok)
	if !ok {
		Raise("NameError", "name '%s' is not defined", name)
	}
	vm.Incref(v)
	vm.push(f, v)
}

// makeFunction implements MAKE_FUNCTION: pops the code object and ndefaults
// default values, producing a function object.
func (vm *VM) makeFunction(f *pyobj.Frame, ndefaults int) {
	co, ok := vm.pop(f).(*pyobj.CodeObj)
	if !ok {
		Raise("SystemError", "MAKE_FUNCTION without code object")
	}
	defaults := make([]pyobj.Object, ndefaults)
	for i := ndefaults - 1; i >= 0; i-- {
		defaults[i] = vm.pop(f)
	}
	cd := vm.materialize(co.Code)
	fn := &pyobj.Func{
		Name:       co.Code.Name,
		Code:       co.Code,
		Globals:    f.Globals,
		Defaults:   defaults,
		ConstObjs:  cd.consts,
		CodeAddr:   cd.codeAddr,
		ConstsAddr: cd.constsAddr,
	}
	vm.Heap.Allocate(fn, core.Execute)
	vm.Eng.Store(core.Execute, fn.H.Addr+16)
	vm.Eng.Store(core.Execute, fn.H.Addr+24)
	for _, d := range defaults {
		vm.barrier(fn, d)
	}
	vm.Incref(f.Globals) // the function owns its globals reference
	vm.barrier(fn, f.Globals)
	vm.push(f, fn)
}

// buildClass implements BUILD_CLASS: pops the body function and base,
// executes the body in a fresh namespace, and produces the class object.
func (vm *VM) buildClass(f *pyobj.Frame, name string) {
	bodyFn, ok := vm.pop(f).(*pyobj.Func)
	if !ok {
		Raise("SystemError", "BUILD_CLASS without body function")
	}
	baseObj := vm.pop(f)
	var base *pyobj.Class
	if _, isNone := baseObj.(*pyobj.None); !isNone {
		b, ok := baseObj.(*pyobj.Class)
		if !ok {
			Raise("TypeError", "class base must be a class, not %s", pyobj.TypeName(baseObj))
		}
		base = b
	}

	ns := vm.NewDict()
	cd := vm.materialize(bodyFn.Code)
	bf := vm.newFrame(bodyFn, bodyFn.Code, bodyFn.Globals, ns, cd)
	res := vm.runFrame(bf)
	vm.Decref(res)
	vm.freeFrame(bf)

	cls := &pyobj.Class{Name: name, Dict: ns, Base: base}
	vm.Heap.Allocate(cls, core.Execute)
	vm.Eng.Store(core.Execute, cls.H.Addr+16)
	vm.barrier(cls, ns)
	if base != nil {
		vm.barrier(cls, base)
	}
	vm.Decref(bodyFn)
	if base == nil {
		// No base: consume the pushed None. Otherwise the stack's
		// reference transfers into cls.Base (decref'd at class dealloc).
		vm.Decref(baseObj)
	}
	vm.push(f, cls)
}

// unpackSequence implements UNPACK_SEQUENCE: pops a sequence and pushes
// its n elements so the leftmost ends up on top.
func (vm *VM) unpackSequence(f *pyobj.Frame, n int) {
	seq := vm.pop(f)
	vm.Eng.Load(core.TypeCheck, seq.Hdr().Addr, false)
	var items []pyobj.Object
	switch s := seq.(type) {
	case *pyobj.Tuple:
		vm.Eng.Branch(core.TypeCheck, true)
		items = s.Items
	case *pyobj.List:
		vm.Eng.Branch(core.TypeCheck, true)
		items = s.Items
	default:
		Raise("TypeError", "cannot unpack %s", pyobj.TypeName(seq))
	}
	vm.errCheck(len(items) != n)
	if len(items) != n {
		Raise("ValueError", "unpack expected %d values, got %d", n, len(items))
	}
	for i := n - 1; i >= 0; i-- {
		vm.Eng.Load(core.Execute, itemAddrOf(seq, i), false)
		vm.Incref(items[i])
		vm.push(f, items[i])
	}
	vm.Decref(seq)
}

func itemAddrOf(seq pyobj.Object, i int) uint64 {
	switch s := seq.(type) {
	case *pyobj.Tuple:
		return s.ItemAddr(i)
	case *pyobj.List:
		return s.ItemAddr(i)
	}
	return 0
}

func binKindOf(op pycode.Opcode) BinKind {
	switch op {
	case pycode.BINARY_ADD, pycode.INPLACE_ADD:
		return BinAdd
	case pycode.BINARY_SUBTRACT, pycode.INPLACE_SUBTRACT:
		return BinSub
	case pycode.BINARY_MULTIPLY, pycode.INPLACE_MULTIPLY:
		return BinMul
	case pycode.BINARY_DIVIDE, pycode.INPLACE_DIVIDE:
		return BinDiv
	case pycode.BINARY_FLOOR_DIVIDE, pycode.INPLACE_FLOOR_DIVIDE:
		return BinFloorDiv
	case pycode.BINARY_MODULO, pycode.INPLACE_MODULO:
		return BinMod
	case pycode.BINARY_POWER:
		return BinPow
	case pycode.BINARY_LSHIFT, pycode.INPLACE_LSHIFT:
		return BinLShift
	case pycode.BINARY_RSHIFT, pycode.INPLACE_RSHIFT:
		return BinRShift
	case pycode.BINARY_AND, pycode.INPLACE_AND:
		return BinAnd
	case pycode.BINARY_OR, pycode.INPLACE_OR:
		return BinOr
	case pycode.BINARY_XOR, pycode.INPLACE_XOR:
		return BinXor
	}
	panic("interp: not a binary opcode")
}
