package interp

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/pyobj"
)

// strFormat implements Python 2 % formatting for the directive subset the
// benchmark suite uses: %d %i %s %r %f %g %x %o %c %% with width,
// precision, zero-pad, and left-align flags.
func (vm *VM) strFormat(format *pyobj.Str, arg pyobj.Object) pyobj.Object {
	var args []pyobj.Object
	if t, ok := arg.(*pyobj.Tuple); ok {
		args = t.Items
	} else {
		args = []pyobj.Object{arg}
	}

	vm.emitStrScan(format, len(format.V))
	var sb strings.Builder
	ai := 0
	next := func(verb byte) pyobj.Object {
		vm.errCheck(ai >= len(args))
		if ai >= len(args) {
			Raise("TypeError", "not enough arguments for format string (%%%c)", verb)
		}
		v := args[ai]
		ai++
		return v
	}

	s := format.V
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '%' {
			sb.WriteByte(c)
			continue
		}
		i++
		vm.errCheck(i >= len(s))
		if i >= len(s) {
			Raise("ValueError", "incomplete format")
		}
		// Flags.
		leftAlign, zeroPad, plus, space := false, false, false, false
		for i < len(s) {
			switch s[i] {
			case '-':
				leftAlign = true
			case '0':
				zeroPad = true
			case '+':
				plus = true
			case ' ':
				space = true
			default:
				goto flagsDone
			}
			i++
		}
	flagsDone:
		// Width.
		width := 0
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			width = width*10 + int(s[i]-'0')
			i++
		}
		// Precision.
		prec := -1
		if i < len(s) && s[i] == '.' {
			i++
			prec = 0
			for i < len(s) && s[i] >= '0' && s[i] <= '9' {
				prec = prec*10 + int(s[i]-'0')
				i++
			}
		}
		vm.errCheck(i >= len(s))
		if i >= len(s) {
			Raise("ValueError", "incomplete format")
		}
		verb := s[i]
		vm.Eng.ALUn(core.Execute, 2)

		var out string
		switch verb {
		case '%':
			out = "%"
		case 'd', 'i':
			n, ok := pyobj.AsInt(next(verb))
			if !ok {
				f, fok := pyobj.AsFloat(args[ai-1])
				if !fok {
					Raise("TypeError", "%%d format: a number is required")
				}
				n = int64(f)
			}
			out = strconv.FormatInt(n, 10)
		case 'x':
			n, ok := pyobj.AsInt(next(verb))
			if !ok {
				Raise("TypeError", "%%x format: an integer is required")
			}
			out = strconv.FormatInt(n, 16)
		case 'o':
			n, ok := pyobj.AsInt(next(verb))
			if !ok {
				Raise("TypeError", "%%o format: an integer is required")
			}
			out = strconv.FormatInt(n, 8)
		case 'f', 'F':
			f, ok := pyobj.AsFloat(next(verb))
			if !ok {
				Raise("TypeError", "float argument required")
			}
			p := prec
			if p < 0 {
				p = 6
			}
			out = strconv.FormatFloat(f, 'f', p, 64)
		case 'e', 'E':
			f, ok := pyobj.AsFloat(next(verb))
			if !ok {
				Raise("TypeError", "float argument required")
			}
			p := prec
			if p < 0 {
				p = 6
			}
			out = strconv.FormatFloat(f, byte(verb), p, 64)
		case 'g', 'G':
			f, ok := pyobj.AsFloat(next(verb))
			if !ok {
				Raise("TypeError", "float argument required")
			}
			p := prec
			if p < 0 {
				p = 6
			}
			out = strconv.FormatFloat(f, 'g', p, 64)
		case 's':
			out = pyobj.StrOf(next(verb))
			if prec >= 0 && prec < len(out) {
				out = out[:prec]
			}
		case 'r':
			out = pyobj.Repr(next(verb))
			if prec >= 0 && prec < len(out) {
				out = out[:prec]
			}
		case 'c':
			v := next(verb)
			if n, ok := pyobj.AsInt(v); ok {
				out = string(byte(n))
			} else if sv, ok := v.(*pyobj.Str); ok && len(sv.V) == 1 {
				out = sv.V
			} else {
				Raise("TypeError", "%%c requires int or char")
			}
		default:
			Raise("ValueError", "unsupported format character '%c'", verb)
		}

		// Sign flags apply to every numeric conversion: '+' forces a
		// sign, ' ' reserves the sign column for non-negatives ('+'
		// wins when both are given, as in CPython).
		isNum := strings.IndexByte("dixofFeEgG", verb) >= 0
		if isNum && !strings.HasPrefix(out, "-") {
			if plus {
				out = "+" + out
			} else if space {
				out = " " + out
			}
		}

		if width > len(out) {
			pad := width - len(out)
			switch {
			case leftAlign:
				out += strings.Repeat(" ", pad)
			case zeroPad && isNum:
				if strings.HasPrefix(out, "-") || strings.HasPrefix(out, "+") {
					out = out[:1] + strings.Repeat("0", pad) + out[1:]
				} else {
					out = strings.Repeat("0", pad) + out
				}
			default:
				out = strings.Repeat(" ", pad) + out
			}
		}
		sb.WriteString(out)
	}
	vm.errCheck(ai < len(args))
	if ai < len(args) {
		Raise("TypeError", "not all arguments converted during string formatting")
	}
	return vm.NewStr(sb.String())
}

// ensure fmt is linked for error paths.
var _ = fmt.Sprintf
