package interp

import (
	"math"

	"repro/internal/core"
	"repro/internal/pycode"
	"repro/internal/pyobj"
)

// BinKind identifies a binary operation semantic.
type BinKind uint8

// Binary operation kinds.
const (
	BinAdd BinKind = iota
	BinSub
	BinMul
	BinDiv
	BinFloorDiv
	BinMod
	BinPow
	BinLShift
	BinRShift
	BinAnd
	BinOr
	BinXor
)

var binNames = [...]string{"+", "-", "*", "/", "//", "%", "**", "<<", ">>", "&", "|", "^"}

// String returns the operator's source form.
func (k BinKind) String() string { return binNames[k] }

// eventCap bounds per-operation event loops (copies, scans) so a single
// huge container operation cannot flood the simulator; the cache effect of
// a long streaming copy saturates well before the cap.
const eventCap = 1024

// BinaryOp evaluates a <op> b with CPython's cost structure: an inline
// fast path for int add/sub (as ceval.c fast-cases), and a C call through
// the number-protocol function pointers for everything else.
func (vm *VM) BinaryOp(kind BinKind, a, b pyobj.Object) pyobj.Object {
	e := vm.Eng
	// Type checks: load both type pointers and compare.
	e.Load(core.TypeCheck, a.Hdr().Addr, false)
	e.Load(core.TypeCheck, b.Hdr().Addr, false)
	e.ALU(core.TypeCheck, true)

	ai, aIsInt := a.(*pyobj.Int)
	bi, bIsInt := b.(*pyobj.Int)
	fast := aIsInt && bIsInt && (kind == BinAdd || kind == BinSub)
	e.Branch(core.TypeCheck, fast)
	if fast {
		// Unbox, compute, overflow-check, box.
		e.Load(core.Boxing, ai.H.Addr+16, true)
		e.Load(core.Boxing, bi.H.Addr+16, true)
		var v int64
		if kind == BinAdd {
			v = ai.V + bi.V
		} else {
			v = ai.V - bi.V
		}
		e.ALU(core.Execute, true)
		overflow := (kind == BinAdd && ((ai.V > 0 && bi.V > 0 && v < 0) || (ai.V < 0 && bi.V < 0 && v >= 0))) ||
			(kind == BinSub && ((ai.V > 0 && bi.V < 0 && v < 0) || (ai.V < 0 && bi.V > 0 && v >= 0)))
		vm.errCheck(overflow)
		if overflow {
			Raise("OverflowError", "integer overflow in %s", kind)
		}
		return vm.NewInt(v)
	}

	// Slow path: resolve the type's number slot and call it.
	e.Load(core.FunctionResolution, a.PyType().SlotAddr(slotForBin(kind)), true)
	e.CCall(core.CFunctionCall, vm.hp.binOpSlow, indirectCCall)
	defer e.CReturn(core.CFunctionCall, indirectCCall)

	switch {
	case aIsInt && bIsInt:
		return vm.intBinOp(kind, ai.V, bi.V)
	default:
		if af, aok := pyobj.AsFloat(a); aok {
			if bf, bok := pyobj.AsFloat(b); bok {
				_, aInt := pyobj.AsInt(a)
				_, bInt := pyobj.AsInt(b)
				if aInt && bInt {
					ai2, _ := pyobj.AsInt(a)
					bi2, _ := pyobj.AsInt(b)
					return vm.intBinOp(kind, ai2, bi2)
				}
				return vm.floatBinOp(kind, af, bf)
			}
		}
	}
	if as, ok := a.(*pyobj.Str); ok {
		return vm.strBinOp(kind, as, b)
	}
	if al, ok := a.(*pyobj.List); ok {
		return vm.listBinOp(kind, al, b)
	}
	if at, ok := a.(*pyobj.Tuple); ok {
		return vm.tupleBinOp(kind, at, b)
	}
	Raise("TypeError", "unsupported operand type(s) for %s: '%s' and '%s'",
		kind, pyobj.TypeName(a), pyobj.TypeName(b))
	return nil
}

func slotForBin(kind BinKind) int {
	switch kind {
	case BinAdd:
		return pyobj.SlotAdd
	case BinSub:
		return pyobj.SlotSub
	case BinMul:
		return pyobj.SlotMul
	case BinDiv, BinFloorDiv:
		return pyobj.SlotDiv
	case BinMod:
		return pyobj.SlotMod
	case BinPow:
		return pyobj.SlotPow
	}
	return pyobj.SlotAdd
}

// intBinOp performs integer arithmetic inside the number-protocol C call:
// unbox loads, the ALU work, error checks, and the boxing of the result.
func (vm *VM) intBinOp(kind BinKind, a, b int64) pyobj.Object {
	e := vm.Eng
	e.Load(core.Boxing, 0, true)
	e.Load(core.Boxing, 0, true)
	switch kind {
	case BinAdd, BinSub:
		e.ALU(core.Execute, true)
		if kind == BinAdd {
			return vm.checkedInt(a+b, (a > 0 && b > 0 && a+b < 0) || (a < 0 && b < 0 && a+b >= 0))
		}
		return vm.checkedInt(a-b, (a > 0 && b < 0 && a-b < 0) || (a < 0 && b > 0 && a-b >= 0))
	case BinMul:
		e.Mul(core.Execute, true)
		v := a * b
		overflow := a != 0 && (v/a != b)
		return vm.checkedInt(v, overflow)
	case BinDiv, BinFloorDiv:
		vm.errCheck(b == 0)
		if b == 0 {
			Raise("ZeroDivisionError", "integer division or modulo by zero")
		}
		e.Div(core.Execute, true)
		q := a / b
		if (a%b != 0) && ((a < 0) != (b < 0)) {
			q--
		}
		e.ALU(core.Execute, true) // floor adjustment
		return vm.NewInt(q)
	case BinMod:
		vm.errCheck(b == 0)
		if b == 0 {
			Raise("ZeroDivisionError", "integer division or modulo by zero")
		}
		e.Div(core.Execute, true)
		r := a % b
		if r != 0 && ((r < 0) != (b < 0)) {
			r += b
		}
		e.ALU(core.Execute, true)
		return vm.NewInt(r)
	case BinPow:
		if b < 0 {
			return vm.floatBinOp(BinPow, float64(a), float64(b))
		}
		// Square-and-multiply: one Mul event per step.
		result := int64(1)
		base := a
		exp := b
		for exp > 0 {
			e.Mul(core.Execute, true)
			if exp&1 == 1 {
				prev := result
				result *= base
				if base != 0 && result/base != prev {
					vm.errCheck(true)
					Raise("OverflowError", "integer overflow in **")
				}
			}
			nb := base * base
			if base != 0 && exp > 1 && nb/base != base {
				vm.errCheck(true)
				Raise("OverflowError", "integer overflow in **")
			}
			base = nb
			exp >>= 1
		}
		vm.errCheck(false)
		return vm.NewInt(result)
	case BinLShift:
		vm.errCheck(b < 0)
		if b < 0 {
			Raise("ValueError", "negative shift count")
		}
		if b >= 63 {
			vm.errCheck(true)
			Raise("OverflowError", "shift count too large")
		}
		e.ALU(core.Execute, true)
		v := a << uint(b)
		return vm.checkedInt(v, v>>uint(b) != a)
	case BinRShift:
		vm.errCheck(b < 0)
		if b < 0 {
			Raise("ValueError", "negative shift count")
		}
		e.ALU(core.Execute, true)
		if b >= 63 {
			if a < 0 {
				return vm.NewInt(-1)
			}
			return vm.NewInt(0)
		}
		return vm.NewInt(a >> uint(b))
	case BinAnd:
		e.ALU(core.Execute, true)
		return vm.NewInt(a & b)
	case BinOr:
		e.ALU(core.Execute, true)
		return vm.NewInt(a | b)
	case BinXor:
		e.ALU(core.Execute, true)
		return vm.NewInt(a ^ b)
	}
	panic("interp: unhandled int binop")
}

func (vm *VM) checkedInt(v int64, overflow bool) pyobj.Object {
	vm.errCheck(overflow)
	if overflow {
		Raise("OverflowError", "integer overflow")
	}
	return vm.NewInt(v)
}

// floatBinOp performs float arithmetic: unbox, FPU work, error checks,
// boxed result (floats have no small-value cache, so every result
// allocates).
func (vm *VM) floatBinOp(kind BinKind, a, b float64) pyobj.Object {
	e := vm.Eng
	e.Load(core.Boxing, 0, true)
	e.Load(core.Boxing, 0, true)
	var v float64
	switch kind {
	case BinAdd:
		e.FPU(core.Execute, true)
		v = a + b
	case BinSub:
		e.FPU(core.Execute, true)
		v = a - b
	case BinMul:
		e.FPU(core.Execute, true)
		v = a * b
	case BinDiv:
		vm.errCheck(b == 0)
		if b == 0 {
			Raise("ZeroDivisionError", "float division by zero")
		}
		e.FDiv(core.Execute, true)
		v = a / b
	case BinFloorDiv:
		vm.errCheck(b == 0)
		if b == 0 {
			Raise("ZeroDivisionError", "float division by zero")
		}
		e.FDiv(core.Execute, true)
		e.FPU(core.Execute, true)
		v = math.Floor(a / b)
	case BinMod:
		vm.errCheck(b == 0)
		if b == 0 {
			Raise("ZeroDivisionError", "float modulo")
		}
		e.FDiv(core.Execute, true)
		v = math.Mod(a, b)
		if v != 0 && (v < 0) != (b < 0) {
			v += b
		}
	case BinPow:
		e.FDiv(core.Execute, true) // pow latency class
		v = math.Pow(a, b)
	default:
		Raise("TypeError", "unsupported operand type(s) for %s: 'float'", kind)
	}
	vm.errCheck(false) // NaN/inf check
	return vm.NewFloat(v)
}

// strBinOp implements str + str, str * int, and str % args formatting.
func (vm *VM) strBinOp(kind BinKind, a *pyobj.Str, b pyobj.Object) pyobj.Object {
	switch kind {
	case BinAdd:
		bs, ok := b.(*pyobj.Str)
		if !ok {
			Raise("TypeError", "cannot concatenate 'str' and '%s'", pyobj.TypeName(b))
		}
		vm.emitStrScan(a, len(a.V))
		vm.emitStrScan(bs, len(bs.V))
		return vm.NewStr(a.V + bs.V)
	case BinMul:
		n, ok := pyobj.AsInt(b)
		if !ok {
			Raise("TypeError", "can't multiply str by non-int")
		}
		if n < 0 {
			n = 0
		}
		if int(n)*len(a.V) > 64<<20 {
			Raise("MemoryError", "repeated string too large")
		}
		out := make([]byte, 0, int(n)*len(a.V))
		for i := int64(0); i < n; i++ {
			out = append(out, a.V...)
		}
		vm.emitStrScan(a, len(out))
		return vm.NewStr(string(out))
	case BinMod:
		return vm.strFormat(a, b)
	}
	Raise("TypeError", "unsupported operand type(s) for %s: 'str'", kind)
	return nil
}

// emitStrScan emits the load traffic of scanning/copying n bytes of a
// string (word granularity, capped).
func (vm *VM) emitStrScan(s *pyobj.Str, n int) {
	words := (n + 7) / 8
	if words > eventCap {
		words = eventCap
	}
	for i := 0; i < words; i++ {
		vm.Eng.Load(core.Execute, s.DataAddr+uint64(i*8), false)
	}
}

// listBinOp implements list + list and list * int.
func (vm *VM) listBinOp(kind BinKind, a *pyobj.List, b pyobj.Object) pyobj.Object {
	switch kind {
	case BinAdd:
		bl, ok := b.(*pyobj.List)
		if !ok {
			Raise("TypeError", "can only concatenate list to list")
		}
		items := make([]pyobj.Object, 0, len(a.Items)+len(bl.Items))
		items = append(items, a.Items...)
		items = append(items, bl.Items...)
		vm.emitSeqCopy(len(items))
		for _, it := range items {
			vm.Incref(it)
		}
		return vm.NewList(items)
	case BinMul:
		n, ok := pyobj.AsInt(b)
		if !ok {
			Raise("TypeError", "can't multiply list by non-int")
		}
		if n < 0 {
			n = 0
		}
		items := make([]pyobj.Object, 0, int(n)*len(a.Items))
		for i := int64(0); i < n; i++ {
			items = append(items, a.Items...)
		}
		vm.emitSeqCopy(len(items))
		for _, it := range items {
			vm.Incref(it)
		}
		return vm.NewList(items)
	}
	Raise("TypeError", "unsupported operand type(s) for %s: 'list'", kind)
	return nil
}

// tupleBinOp implements tuple + tuple and tuple * int.
func (vm *VM) tupleBinOp(kind BinKind, a *pyobj.Tuple, b pyobj.Object) pyobj.Object {
	switch kind {
	case BinAdd:
		bt, ok := b.(*pyobj.Tuple)
		if !ok {
			Raise("TypeError", "can only concatenate tuple to tuple")
		}
		items := make([]pyobj.Object, 0, len(a.Items)+len(bt.Items))
		items = append(items, a.Items...)
		items = append(items, bt.Items...)
		vm.emitSeqCopy(len(items))
		for _, it := range items {
			vm.Incref(it)
		}
		return vm.NewTuple(items)
	case BinMul:
		n, ok := pyobj.AsInt(b)
		if !ok {
			Raise("TypeError", "can't multiply tuple by non-int")
		}
		if n < 0 {
			n = 0
		}
		items := make([]pyobj.Object, 0, int(n)*len(a.Items))
		for i := int64(0); i < n; i++ {
			items = append(items, a.Items...)
		}
		vm.emitSeqCopy(len(items))
		for _, it := range items {
			vm.Incref(it)
		}
		return vm.NewTuple(items)
	}
	Raise("TypeError", "unsupported operand type(s) for %s: 'tuple'", kind)
	return nil
}

// emitSeqCopy emits capped pointer-copy traffic for sequence operations.
func (vm *VM) emitSeqCopy(n int) {
	if n > eventCap {
		n = eventCap
	}
	for i := 0; i < n; i++ {
		vm.Eng.ALU(core.Execute, false)
	}
}

// unaryNeg negates a number.
func (vm *VM) unaryNeg(v pyobj.Object) pyobj.Object {
	vm.Eng.Load(core.TypeCheck, v.Hdr().Addr, false)
	switch n := v.(type) {
	case *pyobj.Int:
		vm.Eng.Branch(core.TypeCheck, true)
		vm.Eng.Load(core.Boxing, n.H.Addr+16, true)
		vm.Eng.ALU(core.Execute, true)
		vm.errCheck(n.V == math.MinInt64)
		return vm.NewInt(-n.V)
	case *pyobj.Float:
		vm.Eng.Branch(core.TypeCheck, true)
		vm.Eng.Load(core.Boxing, n.H.Addr+16, true)
		vm.Eng.FPU(core.Execute, true)
		return vm.NewFloat(-n.V)
	case *pyobj.Bool:
		vm.Eng.Branch(core.TypeCheck, true)
		if n.V {
			return vm.NewInt(-1)
		}
		return vm.NewInt(0)
	}
	Raise("TypeError", "bad operand type for unary -: '%s'", pyobj.TypeName(v))
	return nil
}

// CompareOp evaluates a <cmp> b. Int comparisons are fast-pathed as in
// ceval.c; everything else pays the rich-comparison C call.
func (vm *VM) CompareOp(op pycode.CmpOp, a, b pyobj.Object) pyobj.Object {
	e := vm.Eng
	// The operator switch: rich control flow.
	e.ALU(core.RichControlFlow, false)
	e.Branch(core.RichControlFlow, true)

	switch op {
	case pycode.CmpIs:
		e.ALU(core.Execute, false)
		return vm.NewBool(a == b)
	case pycode.CmpIsNot:
		e.ALU(core.Execute, false)
		return vm.NewBool(a != b)
	case pycode.CmpIn, pycode.CmpNotIn:
		r := vm.contains(b, a)
		if op == pycode.CmpNotIn {
			r = !r
		}
		return vm.NewBool(r)
	}

	e.Load(core.TypeCheck, a.Hdr().Addr, false)
	e.Load(core.TypeCheck, b.Hdr().Addr, false)
	e.ALU(core.TypeCheck, true)
	ai, aIsInt := a.(*pyobj.Int)
	bi, bIsInt := b.(*pyobj.Int)
	fast := aIsInt && bIsInt
	e.Branch(core.TypeCheck, fast)
	if fast {
		e.Load(core.Boxing, ai.H.Addr+16, true)
		e.Load(core.Boxing, bi.H.Addr+16, true)
		e.ALU(core.Execute, true)
		return vm.NewBool(cmpResult(op, compareInt(ai.V, bi.V)))
	}

	// Rich comparison through tp_compare.
	e.Load(core.FunctionResolution, a.PyType().SlotAddr(pyobj.SlotCompare), true)
	e.CCall(core.CFunctionCall, vm.hp.cmpSlow, indirectCCall)
	defer e.CReturn(core.CFunctionCall, indirectCCall)

	if op == pycode.CmpEQ || op == pycode.CmpNE {
		eq := vm.equalWithEvents(a, b)
		return vm.NewBool(eq == (op == pycode.CmpEQ))
	}
	c, ok := vm.orderWithEvents(a, b)
	vm.errCheck(!ok)
	if !ok {
		Raise("TypeError", "unorderable types: %s %s %s", pyobj.TypeName(a), op, pyobj.TypeName(b))
	}
	return vm.NewBool(cmpResult(op, c))
}

func compareInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpResult(op pycode.CmpOp, c int) bool {
	switch op {
	case pycode.CmpLT:
		return c < 0
	case pycode.CmpLE:
		return c <= 0
	case pycode.CmpEQ:
		return c == 0
	case pycode.CmpNE:
		return c != 0
	case pycode.CmpGT:
		return c > 0
	case pycode.CmpGE:
		return c >= 0
	}
	return false
}

// equalWithEvents computes Python equality, emitting comparison traffic.
func (vm *VM) equalWithEvents(a, b pyobj.Object) bool {
	switch av := a.(type) {
	case *pyobj.Str:
		if bv, ok := b.(*pyobj.Str); ok {
			n := len(av.V)
			if len(bv.V) < n {
				n = len(bv.V)
			}
			vm.emitStrScan(av, n)
			return av.V == bv.V
		}
		return false
	case *pyobj.Float, *pyobj.Int, *pyobj.Bool:
		vm.Eng.FPU(core.Execute, true)
		return pyobj.Equal(a, b)
	case *pyobj.Tuple:
		vm.emitSeqCopy(len(av.Items))
		return pyobj.Equal(a, b)
	case *pyobj.List:
		vm.emitSeqCopy(len(av.Items))
		return pyobj.Equal(a, b)
	case *pyobj.None:
		return pyobj.Equal(a, b)
	}
	return a == b
}

// orderWithEvents computes ordering, emitting comparison traffic.
func (vm *VM) orderWithEvents(a, b pyobj.Object) (int, bool) {
	if as, ok := a.(*pyobj.Str); ok {
		if bs, ok := b.(*pyobj.Str); ok {
			n := len(as.V)
			if len(bs.V) < n {
				n = len(bs.V)
			}
			vm.emitStrScan(as, n)
			_ = bs
		}
	}
	if af, ok := pyobj.AsFloat(a); ok {
		if bf, ok := pyobj.AsFloat(b); ok {
			vm.Eng.FPU(core.Execute, true)
			_ = af
			_ = bf
		}
	}
	return pyobj.Compare(a, b)
}

// contains implements `needle in container`.
func (vm *VM) contains(container, needle pyobj.Object) bool {
	e := vm.Eng
	e.Load(core.TypeCheck, container.Hdr().Addr, false)
	e.Load(core.FunctionResolution, container.PyType().SlotAddr(pyobj.SlotContains), true)
	e.CCall(core.CFunctionCall, vm.hp.cmpSlow, indirectCCall)
	defer e.CReturn(core.CFunctionCall, indirectCCall)

	switch c := container.(type) {
	case *pyobj.Dict:
		res, found := c.Contains(needle)
		if res.Probes == 0 {
			if _, ok := pyobj.EncodeKey(needle); !ok {
				Raise("TypeError", "unhashable type: '%s'", pyobj.TypeName(needle))
			}
		}
		vm.dictProbeEvents(c, res, 0, core.Execute)
		return found
	case *pyobj.List:
		for i, it := range c.Items {
			if i < eventCap {
				e.Load(core.Execute, c.ItemAddr(i), false)
				e.ALU(core.Execute, true)
				e.Branch(core.Execute, false)
			}
			if pyobj.Equal(it, needle) {
				return true
			}
		}
		return false
	case *pyobj.Tuple:
		for i, it := range c.Items {
			if i < eventCap {
				e.Load(core.Execute, c.ItemAddr(i), false)
				e.ALU(core.Execute, true)
			}
			if pyobj.Equal(it, needle) {
				return true
			}
		}
		return false
	case *pyobj.Str:
		ns, ok := needle.(*pyobj.Str)
		if !ok {
			Raise("TypeError", "'in <string>' requires string as left operand")
		}
		vm.emitStrScan(c, len(c.V))
		return containsStr(c.V, ns.V)
	case *pyobj.Range:
		n, ok := pyobj.AsInt(needle)
		if !ok {
			return false
		}
		e.ALUn(core.Execute, 2)
		if c.Step > 0 {
			return n >= c.Start && n < c.Stop && (n-c.Start)%c.Step == 0
		}
		return n <= c.Start && n > c.Stop && (c.Start-n)%(-c.Step) == 0
	}
	Raise("TypeError", "argument of type '%s' is not iterable", pyobj.TypeName(container))
	return false
}

func containsStr(haystack, needle string) bool {
	if len(needle) == 0 {
		return true
	}
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}
