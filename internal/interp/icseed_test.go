package interp_test

// Unit tests for the portable IC seed (icseed.go): export from a warm
// VM, import into a fresh one, and the SeedCorrupt chaos leg. The
// contract under test is the progstore warm-start invariant — a seed
// may pre-fill inline caches (SeedFills) or be discarded (SeedDrops),
// but can never change program behaviour.

import (
	"strings"
	"testing"

	"repro/internal/difftest"
	"repro/internal/emit"
	"repro/internal/faults"
	"repro/internal/gc"
	"repro/internal/interp"
	"repro/internal/isa"
)

// seedTestSrc exercises every portable seed kind: global-builtin loads
// (print), attribute slot loads/stores, and method loads on instances.
const seedTestSrc = `
class Counter:
    def __init__(self):
        self.n = 0
    def inc(self):
        self.n = self.n + 1
        return self.n
c = Counter()
d = Counter()
total = 0
i = 0
while i < 200:
    total = total + c.inc() + d.inc()
    i = i + 1
print(total)
`

func newSeedVM(out *strings.Builder) *interp.VM {
	vm := interp.New(emit.NewEngine(isa.NullSink{}), gc.DefaultRefCountConfig(), out)
	vm.MaxBytecodes = difftest.DefaultBudget
	return vm
}

func TestICSeedExportAndWarmFill(t *testing.T) {
	code, err := interp.Compile("seed.py", seedTestSrc)
	if err != nil {
		t.Fatal(err)
	}

	// Donor: run warm, export.
	var donorOut strings.Builder
	donor := newSeedVM(&donorOut)
	if err := donor.RunCode(code); err != nil {
		t.Fatalf("donor run: %v", err)
	}
	seed := donor.ExportICSeed(code)
	if seed == nil || seed.Sites() == 0 {
		t.Fatalf("warm donor exported no seed sites (seed=%v)", seed)
	}

	// Cold baseline for comparison.
	var coldOut strings.Builder
	cold := newSeedVM(&coldOut)
	if err := cold.RunCode(code); err != nil {
		t.Fatalf("cold run: %v", err)
	}

	// Seeded: a fresh VM warm-started from the donor.
	var seededOut strings.Builder
	seeded := newSeedVM(&seededOut)
	seeded.SetICSeed(seed)
	if err := seeded.RunCode(code); err != nil {
		t.Fatalf("seeded run: %v", err)
	}
	if seededOut.String() != coldOut.String() {
		t.Errorf("seeded output diverged:\ncold:   %q\nseeded: %q", coldOut.String(), seededOut.String())
	}
	if seeded.Stats.IC.SeedFills == 0 {
		t.Error("seeded run recorded no SeedFills — the seed never landed")
	}
	// The point of the seed: the fresh VM misses less than a cold one.
	if seeded.Stats.IC.Misses() >= cold.Stats.IC.Misses() {
		t.Errorf("seeded IC misses (%d) not below cold (%d): warm start is not warming",
			seeded.Stats.IC.Misses(), cold.Stats.IC.Misses())
	}
}

// TestICSeedCorruptAdvisory arms the SeedCorrupt fault at every seed
// import site: every entry's guard-checked hint fields are damaged
// before the fill. Behaviour must be bit-identical to a cold run —
// corruption costs refills, never semantics.
func TestICSeedCorruptAdvisory(t *testing.T) {
	code, err := interp.Compile("seedcorrupt.py", seedTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	var donorOut strings.Builder
	donor := newSeedVM(&donorOut)
	if err := donor.RunCode(code); err != nil {
		t.Fatal(err)
	}
	seed := donor.ExportICSeed(code)
	if seed == nil {
		t.Fatal("no seed exported")
	}

	inj := faults.NewEveryNth(faults.SeedCorrupt, 1)
	var out strings.Builder
	vm := newSeedVM(&out)
	vm.Heap.SetFaults(inj)
	vm.SetICSeed(seed)
	if err := vm.RunCode(code); err != nil {
		t.Fatalf("corrupt-seeded run errored: %v", err)
	}
	if out.String() != donorOut.String() {
		t.Errorf("corrupt seed changed output:\nwant %q\ngot  %q", donorOut.String(), out.String())
	}
	if inj.Fired[faults.SeedCorrupt] == 0 {
		t.Error("SeedCorrupt never fired — the fault site is not wired")
	}
}

// TestICSeedForeignDropped arms a seed exported from a structurally
// different program: units whose paths or opcodes do not line up must
// be dropped, not applied, and behaviour must not change.
func TestICSeedForeignDropped(t *testing.T) {
	foreign := "x = 1\ny = 2\nprint(x + y)\n"
	fcode, err := interp.Compile("foreign.py", foreign)
	if err != nil {
		t.Fatal(err)
	}
	var fout strings.Builder
	fvm := newSeedVM(&fout)
	if err := fvm.RunCode(fcode); err != nil {
		t.Fatal(err)
	}
	seed := fvm.ExportICSeed(fcode)

	code, err := interp.Compile("seed.py", seedTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	var coldOut strings.Builder
	cold := newSeedVM(&coldOut)
	if err := cold.RunCode(code); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	vm := newSeedVM(&out)
	vm.SetICSeed(seed) // may be nil if the foreign program quickened nothing
	if err := vm.RunCode(code); err != nil {
		t.Fatalf("foreign-seeded run errored: %v", err)
	}
	if out.String() != coldOut.String() {
		t.Errorf("foreign seed changed output:\nwant %q\ngot  %q", coldOut.String(), out.String())
	}
}
