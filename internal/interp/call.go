package interp

import (
	"repro/internal/core"
	"repro/internal/emit"
	"repro/internal/pyobj"
)

// callFunction implements CALL_FUNCTION: argc arguments above the callable
// on the stack. Pushes the result.
func (vm *VM) callFunction(f *pyobj.Frame, argc int) {
	vm.Stats.Calls++
	e := vm.Eng

	// Gather arguments (stack loads).
	args := make([]pyobj.Object, argc)
	for i := argc - 1; i >= 0; i-- {
		args[i] = vm.pop(f)
	}
	callable := vm.pop(f)

	// Determine the callable kind: type check + dispatch on tp_call.
	e.Load(core.TypeCheck, callable.Hdr().Addr, false)
	e.ALU(core.TypeCheck, true)
	e.Branch(core.TypeCheck, true)

	res := vm.CallObject(callable, args)

	// Consume the references of callable and args.
	for _, a := range args {
		vm.Decref(a)
	}
	vm.Decref(callable)
	vm.push(f, res)
}

// CallObject invokes any callable with the given arguments (borrowed
// references) and returns a new reference to the result. Exposed for the
// JIT's residual calls and for builtins that call back into Python
// (sort keys, map).
func (vm *VM) CallObject(callable pyobj.Object, args []pyobj.Object) pyobj.Object {
	switch c := callable.(type) {
	case *pyobj.Func:
		return vm.callPy(c, args)
	case *pyobj.BoundMethod:
		// Prepend self: argument shuffle (function setup).
		vm.Eng.ALUn(core.FunctionSetup, 2)
		full := make([]pyobj.Object, 0, len(args)+1)
		full = append(full, c.Self)
		full = append(full, args...)
		return vm.callPy(c.Fn, full)
	case *pyobj.Builtin:
		return vm.callBuiltin(c, args)
	case *pyobj.Class:
		return vm.instantiate(c, args)
	}
	Raise("TypeError", "'%s' object is not callable", pyobj.TypeName(callable))
	return nil
}

// callPy invokes a Python function: arity handling, frame allocation,
// argument-to-locals copying, recursive execution, frame teardown.
func (vm *VM) callPy(fn *pyobj.Func, args []pyobj.Object) pyobj.Object {
	e := vm.Eng
	code := fn.Code

	// Arity check.
	nreq := code.NumParams - len(fn.Defaults)
	vm.errCheck(len(args) > code.NumParams || len(args) < nreq)
	if len(args) > code.NumParams || len(args) < nreq {
		Raise("TypeError", "%s() takes %d arguments (%d given)",
			fn.Name, code.NumParams, len(args))
	}

	// fast_function: frame setup.
	e.CCall(core.CFunctionCall, vm.hp.callPy, emit.DefaultCCall)
	cd := vm.materialize(code)
	nf := vm.newFrame(fn, code, fn.Globals, nil, cd)

	// Copy arguments into fast locals.
	for i, a := range args {
		e.Load(core.FunctionSetup, 0, false)
		e.Store(core.FunctionSetup, nf.LocalAddr(i))
		nf.Locals[i] = a
		vm.Incref(a)
		vm.barrier(nf, a)
	}
	// Fill defaults for missing trailing parameters.
	for i := len(args); i < code.NumParams; i++ {
		d := fn.Defaults[i-nreq]
		e.Load(core.FunctionSetup, fn.H.Addr+24, false)
		e.Store(core.FunctionSetup, nf.LocalAddr(i))
		nf.Locals[i] = d
		vm.Incref(d)
		vm.barrier(nf, d)
	}
	e.CReturn(core.CFunctionCall, emit.DefaultCCall)

	res := vm.runFrame(nf)

	// Teardown: return-value plumbing + frame free.
	e.ALU(core.FunctionSetup, false)
	e.Store(core.FunctionSetup, nf.H.Addr+32)
	vm.freeFrame(nf)
	return res
}

// callBuiltin invokes a C function: args-tuple packing (METH_VARARGS), the
// indirect call through the method table, and unpacking of the result.
func (vm *VM) callBuiltin(b *pyobj.Builtin, args []pyobj.Object) pyobj.Object {
	vm.Stats.CCalls++
	e := vm.Eng
	impl := vm.builtinImpls[b.ID]

	// METH_VARARGS packing: allocate the argument tuple.
	var self pyobj.Object = b.Self
	var argTuple *pyobj.Tuple
	if impl.packArgs {
		argTuple = &pyobj.Tuple{Items: args}
		vm.Heap.Allocate(argTuple, core.FunctionSetup)
		for i := range args {
			e.Store(core.FunctionSetup, argTuple.ItemAddr(i))
		}
	} else {
		// METH_O / fastcall: register marshaling only.
		for range args {
			e.ALU(core.FunctionSetup, false)
		}
	}

	// The call through the PyCFunction pointer.
	e.Load(core.FunctionResolution, b.H.Addr+24, true)
	cost := emit.CCallCost{SavedRegs: 3, FrameBytes: 64, Indirect: true}
	e.CCall(core.CFunctionCall, impl.pc, cost)
	prevCLib := e.SetCLib(impl.clib)
	res := impl.fn(vm, self, args)
	e.SetCLib(prevCLib)
	e.CReturn(core.CFunctionCall, cost)

	// Free the args tuple (allocation churn).
	if argTuple != nil {
		argTuple.Items = nil
		vm.Heap.FreeObject(argTuple, core.ObjectAllocation)
	}
	if res == nil {
		res = vm.None
		vm.Incref(res)
	}
	return res
}

// instantiate creates an instance of cls and runs __init__ when present.
func (vm *VM) instantiate(cls *pyobj.Class, args []pyobj.Object) pyobj.Object {
	e := vm.Eng

	inst := &pyobj.Instance{Class: cls}
	vm.Heap.Allocate(inst, core.Execute)
	e.Store(core.Execute, inst.H.Addr+16)
	inst.Dict = vm.NewDict()
	e.Store(core.Execute, inst.H.Addr+24)
	vm.Incref(cls)
	vm.barrier(inst, cls)
	vm.barrier(inst, inst.Dict)

	initV, probes, ok := cls.Lookup("__init__")
	for i := 0; i < probes; i++ {
		e.Load(core.NameResolution, cls.H.Addr+16, i > 0)
		e.ALU(core.NameResolution, true)
	}
	if ok {
		initFn, isFn := initV.(*pyobj.Func)
		if !isFn {
			Raise("TypeError", "__init__ must be a function")
		}
		full := make([]pyobj.Object, 0, len(args)+1)
		full = append(full, inst)
		full = append(full, args...)
		r := vm.callPy(initFn, full)
		vm.Decref(r)
	} else {
		vm.errCheck(len(args) != 0)
		if len(args) != 0 {
			Raise("TypeError", "this constructor takes no arguments")
		}
	}
	return inst
}
