package interp

import (
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/pyobj"
)

// builtinImpl is one registered C function.
type builtinImpl struct {
	name     string
	fn       func(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object
	pc       uint64 // simulated entry point
	packArgs bool   // METH_VARARGS-style args-tuple packing
	clib     bool   // counts as C-library code (modeled extension module)
}

type typeMethodKey struct {
	t    pyobj.TypeID
	name string
}

// typeMethods is shared by all VMs: builtin IDs are allocated in a fixed
// registration order, so every VM computes an identical table. Each VM
// builds its own complete copy during registerBuiltins; the first to
// finish publishes it via typeMethodsOnce. The map is only ever visible
// fully populated, and Once's happens-before edge makes the publication
// safe to read without further synchronization — concurrent VM
// construction is race-free.
var (
	typeMethods     map[typeMethodKey]pyobj.BuiltinID
	typeMethodsOnce sync.Once
)

// lookupTypeMethod finds a built-in type's method implementation.
func (vm *VM) lookupTypeMethod(t pyobj.TypeID, name string) (pyobj.BuiltinID, bool) {
	id, ok := typeMethods[typeMethodKey{t, name}]
	return id, ok
}

// reg registers a builtin implementation and returns its ID.
func (vm *VM) reg(name string, codeInstrs int, packArgs, clib bool,
	fn func(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object) pyobj.BuiltinID {
	id := pyobj.BuiltinID(len(vm.builtinImpls))
	vm.builtinImpls = append(vm.builtinImpls, builtinImpl{
		name: name, fn: fn, pc: vm.clibSpace.Block(codeInstrs),
		packArgs: packArgs, clib: clib,
	})
	return id
}

// bind places a global builtin descriptor in the builtins namespace.
func (vm *VM) bind(name string, id pyobj.BuiltinID) {
	b := &pyobj.Builtin{
		H:    pyobj.Header{Addr: vm.dataAlloc(32), Size: 32, Immortal: true},
		Name: name, ID: id, CodeAddr: vm.builtinImpls[id].pc,
	}
	vm.Builtins.SetStr(name, vm.Intern(name), b)
}

// bindModule creates an immortal builtin module and binds it in builtins.
func (vm *VM) bindModule(name string, entries map[string]pyobj.Object) *pyobj.Module {
	d := vm.newImmortalDict()
	// Deterministic insertion order.
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		d.SetStr(k, vm.Intern(k), entries[k])
	}
	m := &pyobj.Module{
		H:    pyobj.Header{Addr: vm.dataAlloc(32), Size: 32, Immortal: true},
		Name: name, Dict: d,
	}
	vm.Builtins.SetStr(name, vm.Intern(name), m)
	return m
}

// method builds an immortal builtin descriptor for use inside module
// namespaces.
func (vm *VM) method(name string, id pyobj.BuiltinID) *pyobj.Builtin {
	return &pyobj.Builtin{
		H:    pyobj.Header{Addr: vm.dataAlloc(32), Size: 32, Immortal: true},
		Name: name, ID: id, CodeAddr: vm.builtinImpls[id].pc,
	}
}

// argCheck validates a builtin's arity.
func (vm *VM) argCheck(name string, args []pyobj.Object, min, max int) {
	vm.errCheck(len(args) < min || (max >= 0 && len(args) > max))
	if len(args) < min || (max >= 0 && len(args) > max) {
		Raise("TypeError", "%s() takes %d to %d arguments (%d given)", name, min, max, len(args))
	}
}

func (vm *VM) wantInt(name string, o pyobj.Object) int64 {
	v, ok := pyobj.AsInt(o)
	vm.errCheck(!ok)
	if !ok {
		Raise("TypeError", "%s: an integer is required, got %s", name, pyobj.TypeName(o))
	}
	vm.Eng.Load(core.Boxing, o.Hdr().Addr+16, true)
	return v
}

func (vm *VM) wantFloat(name string, o pyobj.Object) float64 {
	v, ok := pyobj.AsFloat(o)
	vm.errCheck(!ok)
	if !ok {
		Raise("TypeError", "%s: a float is required, got %s", name, pyobj.TypeName(o))
	}
	vm.Eng.Load(core.Boxing, o.Hdr().Addr+16, true)
	return v
}

func (vm *VM) wantStr(name string, o pyobj.Object) *pyobj.Str {
	s, ok := o.(*pyobj.Str)
	vm.errCheck(!ok)
	if !ok {
		Raise("TypeError", "%s: a string is required, got %s", name, pyobj.TypeName(o))
	}
	return s
}

func (vm *VM) wantList(name string, o pyobj.Object) *pyobj.List {
	l, ok := o.(*pyobj.List)
	vm.errCheck(!ok)
	if !ok {
		Raise("TypeError", "%s: a list is required, got %s", name, pyobj.TypeName(o))
	}
	return l
}

// iterate walks any iterable, calling f for each element (borrowed ref).
func (vm *VM) iterate(o pyobj.Object, f func(pyobj.Object)) {
	it := vm.GetIter(o)
	for {
		v, ok := vm.IterNext(it)
		if !ok {
			break
		}
		f(v)
		vm.Decref(v)
	}
	vm.Decref(it)
}

// registerBuiltins wires every builtin function, type method, and module.
// Every VM registers its own implementations (IDs and simulated code
// addresses are identical across VMs) and accumulates the type-method
// table locally; the complete table is published once at the end, so
// readers never observe a partially populated map.
func (vm *VM) registerBuiltins() {
	local := make(map[typeMethodKey]pyobj.BuiltinID)
	tm := func(t pyobj.TypeID, name string, id pyobj.BuiltinID) {
		local[typeMethodKey{t, name}] = id
	}

	// ---- Global functions ----
	vm.bind("print", vm.reg("print", 64, true, false, biPrint))
	vm.bind("len", vm.reg("len", 24, false, false, biLen))
	vm.bind("range", vm.reg("range", 48, true, false, biRange))
	vm.bind("xrange", vm.reg("xrange", 32, true, false, biXRange))
	vm.bind("abs", vm.reg("abs", 24, false, false, biAbs))
	vm.bind("min", vm.reg("min", 48, true, false, biMin))
	vm.bind("max", vm.reg("max", 48, true, false, biMax))
	vm.bind("sum", vm.reg("sum", 48, true, false, biSum))
	vm.bind("int", vm.reg("int", 48, true, false, biInt))
	vm.bind("float", vm.reg("float", 48, true, false, biFloat))
	vm.bind("str", vm.reg("str", 64, false, false, biStr))
	vm.bind("repr", vm.reg("repr", 64, false, false, biRepr))
	vm.bind("bool", vm.reg("bool", 24, false, false, biBool))
	vm.bind("list", vm.reg("list", 48, true, false, biList))
	vm.bind("tuple", vm.reg("tuple", 48, true, false, biTuple))
	vm.bind("dict", vm.reg("dict", 32, true, false, biDict))
	vm.bind("ord", vm.reg("ord", 16, false, false, biOrd))
	vm.bind("chr", vm.reg("chr", 16, false, false, biChr))
	vm.bind("divmod", vm.reg("divmod", 32, true, false, biDivmod))
	vm.bind("sorted", vm.reg("sorted", 96, true, false, biSorted))
	vm.bind("zip", vm.reg("zip", 48, true, false, biZip))
	vm.bind("map", vm.reg("map", 48, true, false, biMap))
	vm.bind("filter", vm.reg("filter", 48, true, false, biFilter))
	vm.bind("round", vm.reg("round", 24, true, false, biRound))
	vm.bind("isinstance", vm.reg("isinstance", 24, true, false, biIsInstance))
	vm.bind("type", vm.reg("type", 16, false, false, biType))
	vm.bind("hash", vm.reg("hash", 24, false, false, biHash))
	vm.bind("id", vm.reg("id", 16, false, false, biID))
	vm.bind("cmp", vm.reg("cmp", 24, true, false, biCmp))

	// ---- list methods ----
	tm(pyobj.TList, "append", vm.reg("list.append", 24, false, false, miListAppend))
	tm(pyobj.TList, "pop", vm.reg("list.pop", 32, true, false, miListPop))
	tm(pyobj.TList, "sort", vm.reg("list.sort", 128, true, false, miListSort))
	tm(pyobj.TList, "extend", vm.reg("list.extend", 48, false, false, miListExtend))
	tm(pyobj.TList, "insert", vm.reg("list.insert", 48, true, false, miListInsert))
	tm(pyobj.TList, "index", vm.reg("list.index", 48, false, false, miListIndex))
	tm(pyobj.TList, "remove", vm.reg("list.remove", 48, false, false, miListRemove))
	tm(pyobj.TList, "reverse", vm.reg("list.reverse", 32, true, false, miListReverse))
	tm(pyobj.TList, "count", vm.reg("list.count", 32, false, false, miListCount))

	// ---- dict methods ----
	tm(pyobj.TDict, "get", vm.reg("dict.get", 32, true, false, miDictGet))
	tm(pyobj.TDict, "keys", vm.reg("dict.keys", 48, true, false, miDictKeys))
	tm(pyobj.TDict, "values", vm.reg("dict.values", 48, true, false, miDictValues))
	tm(pyobj.TDict, "items", vm.reg("dict.items", 64, true, false, miDictItems))
	tm(pyobj.TDict, "has_key", vm.reg("dict.has_key", 24, false, false, miDictHasKey))
	tm(pyobj.TDict, "setdefault", vm.reg("dict.setdefault", 32, true, false, miDictSetdefault))
	tm(pyobj.TDict, "pop", vm.reg("dict.pop", 32, true, false, miDictPop))
	tm(pyobj.TDict, "copy", vm.reg("dict.copy", 64, true, false, miDictCopy))
	tm(pyobj.TDict, "update", vm.reg("dict.update", 64, false, false, miDictUpdate))
	tm(pyobj.TDict, "iterkeys", vm.reg("dict.iterkeys", 24, true, false, miDictIterkeys))
	tm(pyobj.TDict, "itervalues", vm.reg("dict.itervalues", 24, true, false, miDictItervalues))
	tm(pyobj.TDict, "iteritems", vm.reg("dict.iteritems", 24, true, false, miDictIteritems))

	// ---- str methods ----
	vm.registerStrMethods(tm)

	// ---- tuple methods ----
	tm(pyobj.TTuple, "index", vm.reg("tuple.index", 32, false, false, miTupleIndex))
	tm(pyobj.TTuple, "count", vm.reg("tuple.count", 32, false, false, miTupleCount))

	// ---- modules (modeled C libraries) ----
	vm.registerMathModule()
	vm.registerRandomModule()
	vm.registerTimeModule()
	vm.registerJSONModule()
	vm.registerPickleModule()
	vm.registerReModule()

	// Publish the fully built table exactly once. Every table is
	// identical, so losers simply discard theirs.
	typeMethodsOnce.Do(func() { typeMethods = local })
}

// ---- Global builtin implementations ----

func biPrint(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = formatForPrint(a)
	}
	out := strings.Join(parts, " ")
	// Model the write(2) path: stores into the I/O buffer.
	n := (len(out) + 8) / 8
	if n > 256 {
		n = 256
	}
	for i := 0; i < n; i++ {
		vm.Eng.Store(core.Execute, mem_ioBuf+uint64(i*8))
	}
	vm.writeOut(out)
	vm.writeOut("\n")
	return nil
}

// mem_ioBuf is the simulated stdio buffer address.
const mem_ioBuf = 0x0000_0000_0f00_0000

func biLen(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("len", args, 1, 1)
	o := args[0]
	vm.Eng.Load(core.TypeCheck, o.Hdr().Addr, false)
	vm.Eng.Load(core.Execute, o.Hdr().Addr+16, true) // ob_size
	switch c := o.(type) {
	case *pyobj.Str:
		return vm.NewInt(int64(len(c.V)))
	case *pyobj.List:
		return vm.NewInt(int64(len(c.Items)))
	case *pyobj.Tuple:
		return vm.NewInt(int64(len(c.Items)))
	case *pyobj.Dict:
		return vm.NewInt(int64(c.Len()))
	case *pyobj.Range:
		return vm.NewInt(c.Len())
	}
	Raise("TypeError", "object of type '%s' has no len()", pyobj.TypeName(o))
	return nil
}

func rangeArgs(vm *VM, name string, args []pyobj.Object) (int64, int64, int64) {
	vm.argCheck(name, args, 1, 3)
	var start, stop, step int64 = 0, 0, 1
	switch len(args) {
	case 1:
		stop = vm.wantInt(name, args[0])
	case 2:
		start = vm.wantInt(name, args[0])
		stop = vm.wantInt(name, args[1])
	case 3:
		start = vm.wantInt(name, args[0])
		stop = vm.wantInt(name, args[1])
		step = vm.wantInt(name, args[2])
		vm.errCheck(step == 0)
		if step == 0 {
			Raise("ValueError", "%s() arg 3 must not be zero", name)
		}
	}
	return start, stop, step
}

// biRange is Python 2 range(): it materializes a real list of boxed ints.
func biRange(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
	start, stop, step := rangeArgs(vm, "range", args)
	r := pyobj.Range{Start: start, Stop: stop, Step: step}
	n := r.Len()
	if n > 64<<20 {
		Raise("MemoryError", "range too large")
	}
	items := make([]pyobj.Object, 0, n)
	for v := start; (step > 0 && v < stop) || (step < 0 && v > stop); v += step {
		items = append(items, vm.NewInt(v))
	}
	return vm.NewList(items)
}

func biXRange(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
	start, stop, step := rangeArgs(vm, "xrange", args)
	return vm.NewRange(start, stop, step)
}

func biAbs(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("abs", args, 1, 1)
	switch v := args[0].(type) {
	case *pyobj.Int:
		vm.Eng.ALU(core.Execute, true)
		if v.V < 0 {
			return vm.NewInt(-v.V)
		}
		vm.Incref(v)
		return v
	case *pyobj.Float:
		vm.Eng.FPU(core.Execute, true)
		if v.V < 0 {
			return vm.NewFloat(-v.V)
		}
		vm.Incref(v)
		return v
	case *pyobj.Bool:
		if v.V {
			return vm.NewInt(1)
		}
		return vm.NewInt(0)
	}
	Raise("TypeError", "bad operand type for abs(): '%s'", pyobj.TypeName(args[0]))
	return nil
}

func minmax(vm *VM, name string, args []pyobj.Object, wantMax bool) pyobj.Object {
	vm.argCheck(name, args, 1, -1)
	var items []pyobj.Object
	if len(args) == 1 {
		vm.iterate(args[0], func(v pyobj.Object) {
			vm.Incref(v)
			items = append(items, v)
		})
	} else {
		for _, a := range args {
			vm.Incref(a)
			items = append(items, a)
		}
	}
	vm.errCheck(len(items) == 0)
	if len(items) == 0 {
		Raise("ValueError", "%s() arg is an empty sequence", name)
	}
	best := items[0]
	for _, v := range items[1:] {
		vm.Eng.ALU(core.Execute, true)
		vm.Eng.Branch(core.Execute, false)
		c, ok := pyobj.Compare(v, best)
		if !ok {
			Raise("TypeError", "%s(): unorderable types", name)
		}
		if (wantMax && c > 0) || (!wantMax && c < 0) {
			best = v
		}
	}
	vm.Incref(best)
	for _, v := range items {
		vm.Decref(v)
	}
	return best
}

func biMin(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
	return minmax(vm, "min", args, false)
}

func biMax(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
	return minmax(vm, "max", args, true)
}

func biSum(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("sum", args, 1, 2)
	var isum int64
	var fsum float64
	isInt := true
	if len(args) == 2 {
		if f, ok := args[1].(*pyobj.Float); ok {
			isInt = false
			fsum = f.V
		} else {
			isum = vm.wantInt("sum", args[1])
		}
	}
	vm.iterate(args[0], func(v pyobj.Object) {
		vm.Eng.ALU(core.Execute, true)
		if isInt {
			if iv, ok := pyobj.AsInt(v); ok {
				isum += iv
				return
			}
			isInt = false
			fsum = float64(isum)
		}
		fv, ok := pyobj.AsFloat(v)
		if !ok {
			Raise("TypeError", "sum(): unsupported operand type '%s'", pyobj.TypeName(v))
		}
		fsum += fv
	})
	if isInt {
		return vm.NewInt(isum)
	}
	return vm.NewFloat(fsum)
}

func biInt(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("int", args, 0, 2)
	if len(args) == 0 {
		return vm.NewInt(0)
	}
	switch v := args[0].(type) {
	case *pyobj.Int:
		vm.Incref(v)
		return v
	case *pyobj.Bool:
		if v.V {
			return vm.NewInt(1)
		}
		return vm.NewInt(0)
	case *pyobj.Float:
		vm.Eng.FPU(core.Execute, true)
		return vm.NewInt(int64(v.V))
	case *pyobj.Str:
		base := int64(10)
		if len(args) == 2 {
			base = vm.wantInt("int", args[1])
		}
		vm.emitStrScan(v, len(v.V))
		s := strings.TrimSpace(v.V)
		n, err := strconv.ParseInt(s, int(base), 64)
		vm.errCheck(err != nil)
		if err != nil {
			Raise("ValueError", "invalid literal for int(): %q", v.V)
		}
		return vm.NewInt(n)
	}
	Raise("TypeError", "int() argument must be a string or a number")
	return nil
}

func biFloat(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("float", args, 0, 1)
	if len(args) == 0 {
		return vm.NewFloat(0)
	}
	switch v := args[0].(type) {
	case *pyobj.Float:
		vm.Incref(v)
		return v
	case *pyobj.Int:
		return vm.NewFloat(float64(v.V))
	case *pyobj.Bool:
		if v.V {
			return vm.NewFloat(1)
		}
		return vm.NewFloat(0)
	case *pyobj.Str:
		vm.emitStrScan(v, len(v.V))
		f, err := strconv.ParseFloat(strings.TrimSpace(v.V), 64)
		vm.errCheck(err != nil)
		if err != nil {
			Raise("ValueError", "could not convert string to float: %q", v.V)
		}
		return vm.NewFloat(f)
	}
	Raise("TypeError", "float() argument must be a string or a number")
	return nil
}

func biStr(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
	if len(args) == 0 {
		vm.Incref(vm.emptyStr)
		return vm.emptyStr
	}
	vm.argCheck("str", args, 1, 1)
	if s, ok := args[0].(*pyobj.Str); ok {
		vm.Incref(s)
		return s
	}
	out := pyobj.StrOf(args[0])
	vm.Eng.ALUn(core.Execute, 4)
	return vm.NewStr(out)
}

func biRepr(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("repr", args, 1, 1)
	vm.Eng.ALUn(core.Execute, 4)
	return vm.NewStr(pyobj.Repr(args[0]))
}

func biBool(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("bool", args, 0, 1)
	if len(args) == 0 {
		return vm.NewBool(false)
	}
	return vm.NewBool(vm.Truthy(args[0]))
}

func biList(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("list", args, 0, 1)
	if len(args) == 0 {
		return vm.NewList(nil)
	}
	var items []pyobj.Object
	vm.iterate(args[0], func(v pyobj.Object) {
		vm.Incref(v)
		items = append(items, v)
	})
	return vm.NewList(items)
}

func biTuple(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("tuple", args, 0, 1)
	if len(args) == 0 {
		return vm.NewTuple(nil)
	}
	if t, ok := args[0].(*pyobj.Tuple); ok {
		vm.Incref(t)
		return t
	}
	var items []pyobj.Object
	vm.iterate(args[0], func(v pyobj.Object) {
		vm.Incref(v)
		items = append(items, v)
	})
	return vm.NewTuple(items)
}

func biDict(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("dict", args, 0, 1)
	d := vm.NewDict()
	if len(args) == 1 {
		switch src := args[0].(type) {
		case *pyobj.Dict:
			src.ForEach(func(k, v pyobj.Object) {
				vm.DictSet(d, k, v, core.Execute)
			})
		default:
			vm.iterate(args[0], func(pair pyobj.Object) {
				t, ok := pair.(*pyobj.Tuple)
				if !ok || len(t.Items) != 2 {
					Raise("TypeError", "dict update sequence elements must be pairs")
				}
				vm.DictSet(d, t.Items[0], t.Items[1], core.Execute)
			})
		}
	}
	return d
}

func biOrd(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("ord", args, 1, 1)
	s := vm.wantStr("ord", args[0])
	vm.errCheck(len(s.V) != 1)
	if len(s.V) != 1 {
		Raise("TypeError", "ord() expected a character, got string of length %d", len(s.V))
	}
	return vm.NewInt(int64(s.V[0]))
}

func biChr(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("chr", args, 1, 1)
	n := vm.wantInt("chr", args[0])
	vm.errCheck(n < 0 || n > 255)
	if n < 0 || n > 255 {
		Raise("ValueError", "chr() arg not in range(256)")
	}
	return vm.charStr(byte(n))
}

func biDivmod(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("divmod", args, 2, 2)
	a := vm.wantInt("divmod", args[0])
	b := vm.wantInt("divmod", args[1])
	vm.errCheck(b == 0)
	if b == 0 {
		Raise("ZeroDivisionError", "integer division or modulo by zero")
	}
	vm.Eng.Div(core.Execute, true)
	q := a / b
	r := a % b
	if r != 0 && (r < 0) != (b < 0) {
		q--
		r += b
	}
	return vm.NewTuple([]pyobj.Object{vm.NewInt(q), vm.NewInt(r)})
}

// sortObjects sorts items in place with per-comparison events.
func (vm *VM) sortObjects(items []pyobj.Object) {
	failed := false
	sort.SliceStable(items, func(i, j int) bool {
		vm.Eng.Load(core.Execute, items[i].Hdr().Addr, false)
		vm.Eng.Load(core.Execute, items[j].Hdr().Addr, false)
		vm.Eng.ALU(core.Execute, true)
		vm.Eng.Branch(core.Execute, false)
		c, ok := pyobj.Compare(items[i], items[j])
		if !ok {
			failed = true
			return false
		}
		return c < 0
	})
	vm.errCheck(failed)
	if failed {
		Raise("TypeError", "unorderable types in sort")
	}
}

func biSorted(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("sorted", args, 1, 1)
	var items []pyobj.Object
	vm.iterate(args[0], func(v pyobj.Object) {
		vm.Incref(v)
		items = append(items, v)
	})
	vm.sortObjects(items)
	return vm.NewList(items)
}

func biZip(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("zip", args, 1, -1)
	var cols [][]pyobj.Object
	minLen := -1
	for _, a := range args {
		var col []pyobj.Object
		vm.iterate(a, func(v pyobj.Object) {
			vm.Incref(v)
			col = append(col, v)
		})
		if minLen < 0 || len(col) < minLen {
			minLen = len(col)
		}
		cols = append(cols, col)
	}
	rows := make([]pyobj.Object, minLen)
	for i := 0; i < minLen; i++ {
		row := make([]pyobj.Object, len(cols))
		for j := range cols {
			row[j] = cols[j][i]
		}
		rows[i] = vm.NewTuple(row)
	}
	// Release leftovers beyond minLen.
	for _, col := range cols {
		for i := minLen; i < len(col); i++ {
			vm.Decref(col[i])
		}
	}
	return vm.NewList(rows)
}

func biMap(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("map", args, 2, 2)
	var out []pyobj.Object
	vm.iterate(args[1], func(v pyobj.Object) {
		out = append(out, vm.CallObject(args[0], []pyobj.Object{v}))
	})
	return vm.NewList(out)
}

func biFilter(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("filter", args, 2, 2)
	var out []pyobj.Object
	useIdentity := false
	if _, ok := args[0].(*pyobj.None); ok {
		useIdentity = true
	}
	vm.iterate(args[1], func(v pyobj.Object) {
		keep := false
		if useIdentity {
			keep = vm.Truthy(v)
		} else {
			r := vm.CallObject(args[0], []pyobj.Object{v})
			keep = vm.Truthy(r)
			vm.Decref(r)
		}
		if keep {
			vm.Incref(v)
			out = append(out, v)
		}
	})
	return vm.NewList(out)
}

func biRound(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("round", args, 1, 2)
	f := vm.wantFloat("round", args[0])
	digits := int64(0)
	if len(args) == 2 {
		digits = vm.wantInt("round", args[1])
	}
	vm.Eng.FPU(core.Execute, true)
	scale := 1.0
	for i := int64(0); i < digits; i++ {
		scale *= 10
	}
	for i := int64(0); i > digits; i-- {
		scale /= 10
	}
	v := f * scale
	// Python 2 rounds half away from zero.
	var r float64
	if v >= 0 {
		r = float64(int64(v + 0.5))
	} else {
		r = float64(int64(v - 0.5))
	}
	return vm.NewFloat(r / scale)
}

func biIsInstance(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("isinstance", args, 2, 2)
	inst, ok := args[0].(*pyobj.Instance)
	cls, ok2 := args[1].(*pyobj.Class)
	if !ok || !ok2 {
		return vm.NewBool(false)
	}
	for c := inst.Class; c != nil; c = c.Base {
		vm.Eng.ALU(core.Execute, true)
		if c == cls {
			return vm.NewBool(true)
		}
	}
	return vm.NewBool(false)
}

func biType(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("type", args, 1, 1)
	// MiniPy returns the type's interned name; name equality matches
	// type identity for built-in types.
	s := vm.Intern(pyobj.TypeName(args[0]))
	vm.Incref(s)
	return s
}

func biHash(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("hash", args, 1, 1)
	enc, ok := pyobj.EncodeKey(args[0])
	vm.errCheck(!ok)
	if !ok {
		Raise("TypeError", "unhashable type: '%s'", pyobj.TypeName(args[0]))
	}
	vm.Eng.ALUn(core.Execute, 3)
	return vm.NewInt(int64(pyobj.HashKey(enc)) & 0x7fffffffffffffff)
}

func biID(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("id", args, 1, 1)
	return vm.NewInt(int64(args[0].Hdr().Addr))
}

func biCmp(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("cmp", args, 2, 2)
	vm.Eng.ALU(core.Execute, true)
	if pyobj.Equal(args[0], args[1]) {
		return vm.NewInt(0)
	}
	c, ok := pyobj.Compare(args[0], args[1])
	vm.errCheck(!ok)
	if !ok {
		Raise("TypeError", "cmp(): unorderable types")
	}
	return vm.NewInt(int64(c))
}
