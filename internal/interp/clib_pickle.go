package interp

import (
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/pyobj"
)

// registerPickleModule builds the pickle module: a textual serialization
// protocol over MiniPy objects (ints, floats, strings, bools, None,
// lists, tuples, dicts), modeled as C-extension code. The wire format is
// a simple tagged prefix encoding — the point is the memory and compute
// behaviour, not wire compatibility.
func (vm *VM) registerPickleModule() {
	entries := map[string]pyobj.Object{}

	dumpsID := vm.reg("pickle.dumps", 640, true, true,
		func(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
			vm.argCheck("pickle.dumps", args, 1, 2)
			var sb strings.Builder
			vm.pickleEncode(&sb, args[0], 0)
			return vm.NewStr(sb.String())
		})
	entries["dumps"] = vm.method("dumps", dumpsID)

	loadsID := vm.reg("pickle.loads", 640, true, true,
		func(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
			vm.argCheck("pickle.loads", args, 1, 1)
			s := vm.wantStr("pickle.loads", args[0])
			p := &pickleParser{vm: vm, s: s.V, dataAddr: s.DataAddr}
			v := p.value()
			vm.errCheck(p.i != len(p.s))
			if p.i != len(p.s) {
				Raise("ValueError", "trailing pickle data")
			}
			return v
		})
	entries["loads"] = vm.method("loads", loadsID)

	// HIGHEST_PROTOCOL constant for source compatibility.
	entries["HIGHEST_PROTOCOL"] = vm.smallInts[2-smallIntMin]

	vm.bindModule("pickle", entries)
	vm.bindModule("cPickle", entries)
}

// pickleEncode serializes o. Format: one tag byte, a length or value,
// ';' separators for containers.
func (vm *VM) pickleEncode(sb *strings.Builder, o pyobj.Object, depth int) {
	if depth > 128 {
		Raise("ValueError", "object too deeply nested to pickle")
	}
	e := vm.Eng
	e.Load(core.Execute, o.Hdr().Addr, false)
	e.ALUn(core.Execute, 3)
	switch v := o.(type) {
	case *pyobj.None:
		sb.WriteByte('N')
	case *pyobj.Bool:
		if v.V {
			sb.WriteString("T")
		} else {
			sb.WriteString("F")
		}
	case *pyobj.Int:
		e.Load(core.Execute, v.H.Addr+16, true)
		sb.WriteByte('I')
		sb.WriteString(strconv.FormatInt(v.V, 10))
		sb.WriteByte(';')
	case *pyobj.Float:
		e.Load(core.Execute, v.H.Addr+16, true)
		sb.WriteByte('D')
		sb.WriteString(strconv.FormatFloat(v.V, 'g', 17, 64))
		sb.WriteByte(';')
	case *pyobj.Str:
		vm.emitStrScan(v, len(v.V))
		sb.WriteByte('S')
		sb.WriteString(strconv.Itoa(len(v.V)))
		sb.WriteByte(':')
		sb.WriteString(v.V)
	case *pyobj.List:
		sb.WriteByte('L')
		sb.WriteString(strconv.Itoa(len(v.Items)))
		sb.WriteByte(':')
		for i, it := range v.Items {
			e.Load(core.Execute, v.ItemAddr(minInt(i, eventCap)), false)
			vm.pickleEncode(sb, it, depth+1)
		}
	case *pyobj.Tuple:
		sb.WriteByte('U')
		sb.WriteString(strconv.Itoa(len(v.Items)))
		sb.WriteByte(':')
		for i, it := range v.Items {
			e.Load(core.Execute, v.ItemAddr(minInt(i, eventCap)), false)
			vm.pickleEncode(sb, it, depth+1)
		}
	case *pyobj.Dict:
		sb.WriteByte('M')
		sb.WriteString(strconv.Itoa(v.Len()))
		sb.WriteByte(':')
		v.ForEach(func(k, val pyobj.Object) {
			e.Load(core.Execute, v.TableAddr, false)
			vm.pickleEncode(sb, k, depth+1)
			vm.pickleEncode(sb, val, depth+1)
		})
	default:
		Raise("TypeError", "cannot pickle '%s' object", pyobj.TypeName(o))
	}
}

type pickleParser struct {
	vm       *VM
	s        string
	i        int
	dataAddr uint64
}

func (p *pickleParser) step(n int) {
	if n > 64 {
		n = 64
	}
	for k := 0; k < n; k++ {
		p.vm.Eng.Load(core.Execute, p.dataAddr+uint64(p.i+k), false)
	}
	p.vm.Eng.ALU(core.Execute, true)
}

func (p *pickleParser) fail(msg string) {
	p.vm.errCheck(true)
	Raise("ValueError", "bad pickle: %s at %d", msg, p.i)
}

// readInt parses digits up to the delimiter.
func (p *pickleParser) readInt(delim byte) int64 {
	start := p.i
	for p.i < len(p.s) && p.s[p.i] != delim {
		p.i++
	}
	if p.i >= len(p.s) {
		p.fail("missing delimiter")
	}
	p.step(p.i - start)
	n, err := strconv.ParseInt(p.s[start:p.i], 10, 64)
	if err != nil {
		p.fail("bad integer")
	}
	p.i++ // delimiter
	return n
}

func (p *pickleParser) value() pyobj.Object {
	if p.i >= len(p.s) {
		p.fail("truncated")
	}
	tag := p.s[p.i]
	p.step(1)
	p.i++
	switch tag {
	case 'N':
		p.vm.Incref(p.vm.None)
		return p.vm.None
	case 'T':
		return p.vm.NewBool(true)
	case 'F':
		return p.vm.NewBool(false)
	case 'I':
		return p.vm.NewInt(p.readInt(';'))
	case 'D':
		start := p.i
		for p.i < len(p.s) && p.s[p.i] != ';' {
			p.i++
		}
		if p.i >= len(p.s) {
			p.fail("missing delimiter")
		}
		p.step(p.i - start)
		f, err := strconv.ParseFloat(p.s[start:p.i], 64)
		if err != nil {
			p.fail("bad float")
		}
		p.i++
		return p.vm.NewFloat(f)
	case 'S':
		n := p.readInt(':')
		if n < 0 || p.i+int(n) > len(p.s) {
			p.fail("bad string length")
		}
		v := p.s[p.i : p.i+int(n)]
		p.step(int(n))
		p.i += int(n)
		return p.vm.NewStr(v)
	case 'L', 'U':
		n := p.readInt(':')
		items := make([]pyobj.Object, 0, n)
		for k := int64(0); k < n; k++ {
			items = append(items, p.value())
		}
		if tag == 'L' {
			return p.vm.NewList(items)
		}
		return p.vm.NewTuple(items)
	case 'M':
		n := p.readInt(':')
		d := p.vm.NewDict()
		for k := int64(0); k < n; k++ {
			key := p.value()
			val := p.value()
			p.vm.DictSet(d, key, val, core.Execute)
			p.vm.Decref(key)
			p.vm.Decref(val)
		}
		return d
	}
	p.fail("unknown tag")
	return nil
}
