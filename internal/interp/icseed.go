package interp

import (
	"strconv"

	"repro/internal/faults"
	"repro/internal/pycode"
	"repro/internal/pyobj"
)

// Portable IC seeds: the program store's warm-start payload. A VM that
// has executed a program exports the *shape* of its quickened copy —
// which sites resolved where, which layout hints held, which sites went
// megamorphic — and a fresh VM imports that shape at materialize time so
// its first execution starts tier-1-warm instead of cold.
//
// The cardinal rule is that a seed is ADVISORY ONLY. Inline caches hold
// per-VM pointers (dicts, classes, function objects) that cannot travel
// between VMs, so a seed never carries a value or a pointer — only
// shape facts that the importing VM re-validates or re-derives against
// its own live state:
//
//   - SeedGlobalBuiltin re-resolves the name in the importing VM's own
//     builtins and stamps the importing VM's own dict versions.
//   - SeedAttrSlot / SeedStoreSlot carry only the entry index; the
//     encoded-key layout hint is re-derived from the site's own name,
//     and the hit path's guard (index in range, encoding matches)
//     self-validates against the live instance dict on every hit.
//   - SeedAttrType carries only the receiver TypeID; the builtin method
//     id is re-derived through the importing VM's own type-method
//     table, never trusted from the seed (the hit path constructs a
//     callable from that id without further checks, so a seeded id
//     would be a semantic hazard).
//   - SeedDequickened rewrites a site the donor proved megamorphic back
//     to its generic form before the tier-2 passes run.
//
// A wrong, stale, or corrupted seed (see faults.SeedCorrupt) therefore
// costs at most a guard miss and a refill — exactly the cold-start cost
// it was trying to save — and can never change program output,
// exception identity, dict versions, or net refcounts. The
// quickening-equivalence suite runs seeded-cold legs to hold this.

// SeedKind classifies one seeded site.
type SeedKind uint8

// Seed kinds. Only self-validating shapes are exported: ICGlobal,
// ICAttrClass/Method/Module, and ICPoly chains guard on per-VM pointer
// identity and so cannot travel.
const (
	// SeedGlobalBuiltin: the site resolved to a builtin. The importing
	// VM re-resolves the name in its own builtins.
	SeedGlobalBuiltin SeedKind = iota
	// SeedAttrSlot: LOAD_ATTR hit an instance-dict data slot at
	// EntryIdx (layout hint re-derived locally).
	SeedAttrSlot
	// SeedStoreSlot: STORE_ATTR updated an instance-dict slot at
	// EntryIdx.
	SeedStoreSlot
	// SeedAttrType: LOAD_ATTR resolved in the immutable builtin
	// type-method table for TypeID.
	SeedAttrType
	// SeedDequickened: the donor exhausted the site's miss budget; the
	// importer skips straight to generic bytecode.
	SeedDequickened
)

// SeedSite is one seeded bytecode site within a code unit.
type SeedSite struct {
	PC       int32        `json:"pc"`
	Kind     SeedKind     `json:"kind"`
	EntryIdx int32        `json:"entryIdx,omitempty"`
	TypeID   pyobj.TypeID `json:"typeId,omitempty"`
}

// SeedUnit is the seeded-site list of one code unit.
type SeedUnit struct {
	Sites []SeedSite `json:"sites"`
}

// ICSeed is a portable warm-start hint set for one program. Units are
// keyed by the code unit's constant path from the module root ("" for
// the root, "3" for consts[3], "3.1" for consts[3]'s consts[1], ...) —
// a structural key both the exporting and importing process derive
// identically from the compiled form, with no pointers involved.
type ICSeed struct {
	Units map[string]SeedUnit `json:"units"`
}

// Sites returns the total seeded-site count across units.
func (s *ICSeed) Sites() int {
	if s == nil {
		return 0
	}
	n := 0
	for _, u := range s.Units {
		n += len(u.Sites)
	}
	return n
}

// walkCodeTree visits every code unit reachable from root through
// ConstCode constants, with its constant path.
func walkCodeTree(root *pycode.Code, visit func(path string, code *pycode.Code)) {
	var rec func(path string, c *pycode.Code)
	rec = func(path string, c *pycode.Code) {
		visit(path, c)
		for i := range c.Consts {
			if c.Consts[i].Kind != pycode.ConstCode {
				continue
			}
			p := strconv.Itoa(i)
			if path != "" {
				p = path + "." + p
			}
			rec(p, c.Consts[i].Code)
		}
	}
	rec("", root)
}

// ExportICSeed captures the portable shape of the VM's quickened copies
// for every code unit reachable from root. Returns nil when nothing
// seedable was observed (quickening off, or no sites settled into a
// portable state).
func (vm *VM) ExportICSeed(root *pycode.Code) *ICSeed {
	if root == nil {
		return nil
	}
	seed := &ICSeed{Units: make(map[string]SeedUnit)}
	walkCodeTree(root, func(path string, code *pycode.Code) {
		cd := vm.constCache[code]
		if cd == nil || cd.quick == nil || len(code.SiteOf) != len(code.Code) {
			return
		}
		var sites []SeedSite
		for pc := range code.Code {
			site := code.SiteOf[pc]
			if site < 0 || int(site) >= len(cd.caches) {
				continue
			}
			// Only IC-quickenable sites export; the speculative int
			// rewrites are re-derived locally by the tier-2 pass.
			if _, ok := pycode.QuickenedOf(code.Code[pc].Op); !ok {
				continue
			}
			if cd.quick[pc].Op == code.Code[pc].Op {
				// The donor de-quickened this site: megamorphic.
				sites = append(sites, SeedSite{PC: int32(pc), Kind: SeedDequickened})
				continue
			}
			c := &cd.caches[site]
			switch c.State {
			case pyobj.ICGlobalBuiltin:
				sites = append(sites, SeedSite{PC: int32(pc), Kind: SeedGlobalBuiltin})
			case pyobj.ICAttrSlot:
				sites = append(sites, SeedSite{PC: int32(pc), Kind: SeedAttrSlot, EntryIdx: c.EntryIdx})
			case pyobj.ICStoreSlot:
				sites = append(sites, SeedSite{PC: int32(pc), Kind: SeedStoreSlot, EntryIdx: c.EntryIdx})
			case pyobj.ICAttrType:
				sites = append(sites, SeedSite{PC: int32(pc), Kind: SeedAttrType, TypeID: c.TypeID})
			}
		}
		if len(sites) > 0 {
			seed.Units[path] = SeedUnit{Sites: sites}
		}
	})
	if len(seed.Units) == 0 {
		return nil
	}
	return seed
}

// SetICSeed arms (or with nil, disarms) a portable IC seed for the next
// RunCode. The seed binds to the module code RunCode receives and
// applies to every code unit as it materializes; code already
// materialized on this VM is unaffected (it is already warm).
func (vm *VM) SetICSeed(s *ICSeed) {
	vm.icSeed = s
	vm.seedUnits = nil
}

// bindSeed resolves the armed seed's structural unit keys against the
// actual code tree about to run, so quickenCode can look its unit up by
// code pointer alone (nested units materialize lazily mid-run, with no
// path context at that point).
func (vm *VM) bindSeed(root *pycode.Code) {
	if vm.icSeed == nil || len(vm.icSeed.Units) == 0 {
		return
	}
	units := make(map[*pycode.Code]*SeedUnit, len(vm.icSeed.Units))
	walkCodeTree(root, func(path string, code *pycode.Code) {
		if u, ok := vm.icSeed.Units[path]; ok {
			uc := u
			units[code] = &uc
		}
	})
	vm.seedUnits = units
}

// seedQuickened imports the armed seed's unit for code into a freshly
// built quickened copy. Runs after cache-slot allocation and before the
// tier-2 passes (a dequicken hint must land before fusion claims the
// site). Every fill either self-validates at hit time or is re-derived
// from the importing VM's own state; the SeedCorrupt fault perturbs
// guard-checked hint fields to prove that discipline under chaos.
func (vm *VM) seedQuickened(code *pycode.Code, cd *codeData) {
	unit := vm.seedUnits[code]
	if unit == nil {
		return
	}
	inj := vm.Heap.Faults()
	for _, s := range unit.Sites {
		pc := int(s.PC)
		if pc < 0 || pc >= len(cd.quick) {
			vm.Stats.IC.SeedDrops++
			continue
		}
		site := code.SiteOf[pc]
		if site < 0 || int(site) >= len(cd.caches) {
			vm.Stats.IC.SeedDrops++
			continue
		}
		corrupt := inj.Should(faults.SeedCorrupt)
		c := &cd.caches[site]
		name := ""
		if int(code.Code[pc].Arg) < len(code.Names) {
			name = code.Names[code.Code[pc].Arg]
		}
		switch s.Kind {
		case SeedDequickened:
			// Megamorphic on the donor: skip the guard tax entirely.
			cd.quick[pc] = code.Code[pc]
			vm.Stats.IC.SeedFills++
		case SeedGlobalBuiltin:
			if cd.quick[pc].Op != pycode.LOAD_GLOBAL_IC || vm.Globals == nil || name == "" {
				vm.Stats.IC.SeedDrops++
				continue
			}
			// The builtin resolution is only valid while globals does not
			// shadow the name — the version guard proves continued
			// absence, so absence must hold at fill time.
			if _, _, shadowed := vm.Globals.GetStr(name); shadowed {
				vm.Stats.IC.SeedDrops++
				continue
			}
			v, _, ok := vm.Builtins.GetStr(name)
			if !ok {
				vm.Stats.IC.SeedDrops++
				continue
			}
			c.Reset()
			c.State = pyobj.ICGlobalBuiltin
			c.Dict, c.Ver = vm.Globals, vm.Globals.Version
			c.BVer = vm.Builtins.Version
			c.Value = v
			if corrupt {
				// Damage the version guard: the site must read as a miss
				// and refill, never serve a wrong value.
				c.Ver++
			}
			vm.Stats.IC.SeedFills++
		case SeedAttrSlot, SeedStoreSlot:
			want := pycode.LOAD_ATTR_IC
			st := pyobj.ICAttrSlot
			if s.Kind == SeedStoreSlot {
				want = pycode.STORE_ATTR_IC
				st = pyobj.ICStoreSlot
			}
			if cd.quick[pc].Op != want || name == "" || s.EntryIdx < 0 {
				vm.Stats.IC.SeedDrops++
				continue
			}
			idx := s.EntryIdx
			if corrupt {
				idx++ // self-validated at hit time: in-range + encoding match
			}
			c.Reset()
			c.State = st
			c.Enc = "s:" + name // derived locally, never trusted from the seed
			c.EntryIdx = idx
			vm.Stats.IC.SeedFills++
		case SeedAttrType:
			if cd.quick[pc].Op != pycode.LOAD_ATTR_IC || name == "" {
				vm.Stats.IC.SeedDrops++
				continue
			}
			tid := s.TypeID
			if corrupt {
				tid++ // guard compares live receiver TypeID against this
			}
			// Re-derive the builtin id through this VM's own table: the
			// hit path constructs a callable from BID unvalidated, so a
			// seeded id must never be trusted.
			id, found := vm.lookupTypeMethod(tid, name)
			if !found {
				vm.Stats.IC.SeedDrops++
				continue
			}
			c.Reset()
			c.State = pyobj.ICAttrType
			c.TypeID = tid
			c.BID = id
			vm.Stats.IC.SeedFills++
		default:
			vm.Stats.IC.SeedDrops++
		}
	}
}
