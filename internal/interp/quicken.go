package interp

import (
	"repro/internal/core"
	"repro/internal/pycode"
	"repro/internal/pyobj"
)

// Quickening + inline caches: the interpreter-level answer to the
// paper's dominant overhead categories (name resolution, attribute
// lookup, dispatch-adjacent C helper calls). At materialize time each
// code object gets a per-VM copy of its instruction stream with
// LOAD_GLOBAL / LOAD_ATTR / STORE_ATTR rewritten to quickened forms, plus
// one monomorphic cache slot per site (pycode.Code.SiteOf). Caches are
// populated lazily by the first execution of a site; a guard failure
// falls back to the generic path, refills, and — once a site's miss
// budget is exhausted — rewrites the instruction back to its generic
// form (de-quickening), so a megamorphic or churn-heavy site stops
// paying guard costs.
//
// The hit paths are engineered to be behaviour-identical to the generic
// paths: same values, same refcount traffic, same allocations (a method
// hit still allocates the BoundMethod), same write barriers, same dict
// version bumps. Only the lookup machinery — and its micro-events — is
// elided, which is exactly what the paper's overhead model says an
// optimized interpreter saves. The 10-leg differential oracle holds the
// quickened interpreter bit-identical to the cold one.

const (
	// icMaxMisses is a site's lifetime miss budget before it is
	// de-quickened. Benign refills (a fresh module namespace, a newly
	// defined class of the same shape) reset the counter; repeated
	// invalidation of the same guard identity — globals() mutation in a
	// loop, method rebinding — exhausts it.
	icMaxMisses = 16
	// icSlotBytes is the simulated size of one cache slot (guard word,
	// version word, value pointer, spare), for guard-load addressing.
	icSlotBytes = 32
)

// ICStats counts inline-cache activity per site kind.
type ICStats struct {
	GlobalHits   uint64
	GlobalMisses uint64
	AttrHits     uint64
	AttrMisses   uint64
	MethodHits   uint64
	MethodMisses uint64
	StoreHits    uint64
	StoreMisses  uint64
	// Fills counts cache (re)populations; Invalidations counts misses
	// that found a populated slot (guard broken) plus explicit flushes;
	// Dequickened counts sites rewritten back to generic form; Sites
	// counts cache slots allocated at materialize time.
	Fills         uint64
	Invalidations uint64
	Dequickened   uint64
	Sites         uint64
	// SeedFills counts cache slots warm-started from a portable IC seed
	// (icseed.go); SeedDrops counts seed entries discarded as stale,
	// out of range, or unresolvable — a dropped entry just leaves the
	// site cold, exactly as if it had never been seeded.
	SeedFills uint64
	SeedDrops uint64

	// Tier-2 counters. Poly* covers polymorphic stub traffic (a hit
	// anywhere in the chain; a miss that exhausted it); PolyPromotions
	// counts mono→poly and chain-extension transitions. Fused counts
	// pairs rewritten into superinstructions, Defused the reverse
	// rewrites; FusedHits/FusedMisses count fused fast-path executions
	// and their per-execution deopts. IntFast* counts the speculative
	// unboxed-int paths (a miss is a deopt to the generic handler).
	PolyHits       uint64
	PolyMisses     uint64
	PolyPromotions uint64
	Fused          uint64
	Defused        uint64
	FusedHits      uint64
	FusedMisses    uint64
	IntFastHits    uint64
	IntFastMisses  uint64
}

// Hits sums hit counters across site kinds.
func (s ICStats) Hits() uint64 {
	return s.GlobalHits + s.AttrHits + s.MethodHits + s.StoreHits +
		s.PolyHits + s.FusedHits + s.IntFastHits
}

// Misses sums miss counters across site kinds.
func (s ICStats) Misses() uint64 {
	return s.GlobalMisses + s.AttrMisses + s.MethodMisses + s.StoreMisses +
		s.PolyMisses + s.FusedMisses + s.IntFastMisses
}

// HitRate returns hits / (hits + misses), or 0 with no activity.
func (s ICStats) HitRate() float64 {
	h, m := s.Hits(), s.Misses()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// SetQuicken enables or disables bytecode quickening for code objects
// materialized from now on; disabling also drops any quickened copies
// already built (frames currently executing keep the stream they
// started with). Call before running for a fully cold interpreter.
func (vm *VM) SetQuicken(on bool) {
	vm.quicken = on
	if !on {
		for _, cd := range vm.constCache {
			cd.quick, cd.caches, cd.fused = nil, nil, nil
		}
	}
}

// SetPolyICs gates tier-2 polymorphic promotion: when off, a
// monomorphic site that misses refills monomorphically (tier-1
// behaviour, the difftest poly-cold leg).
func (vm *VM) SetPolyICs(on bool) { vm.polyICs = on }

// SetFusion gates the superinstruction pass for code materialized from
// now on; disabling also de-fuses streams already built.
func (vm *VM) SetFusion(on bool) {
	vm.fusion = on
	if !on {
		for _, cd := range vm.constCache {
			vm.defuseAll(cd)
		}
	}
}

// SetIntFast gates the speculative unboxed-int rewrites for code
// materialized from now on (already-rewritten sites deopt per execution
// once their miss budget de-quickens them).
func (vm *VM) SetIntFast(on bool) { vm.intFast = on }

// SetFuseFlushEvery arms fusion churn: after every n tier-2 fast-path
// executions, every fusable pair is de-fused (odd trips) or re-fused
// (even trips). The differential oracle's fusion-flush leg uses it to
// prove mid-run de-fusion/re-fusion cannot change program behaviour.
// n == 0 disables.
func (vm *VM) SetFuseFlushEvery(n uint64) { vm.fuseFlushEvery = n }

// SetIntFastMaxAbs caps the operand magnitude the speculative int fast
// path accepts; operands beyond the cap take the deopt path exactly as
// a real overflow would. The difftest intfast-overflow leg sets 1 to
// force constant deopting. 0 restores the default (int64 overflow only).
func (vm *VM) SetIntFastMaxAbs(v int64) { vm.intFastMaxAbs = v }

// Quickened reports whether bytecode quickening is enabled.
func (vm *VM) Quickened() bool { return vm.quicken }

// SetICFlushEvery arms periodic cache invalidation: after every n cache
// fills, every inline cache in the VM is flushed. The differential
// oracle's churn leg uses it to prove mid-run invalidation cannot change
// program behaviour. n == 0 disables.
func (vm *VM) SetICFlushEvery(n uint64) { vm.icFlushEvery = n }

// FlushICs invalidates every populated inline cache in the VM (guard
// state is rebuilt lazily on next execution). Miss budgets are reset
// too: a flush is an external event, not evidence of a bad site.
func (vm *VM) FlushICs() {
	for _, cd := range vm.constCache {
		for i := range cd.caches {
			if cd.caches[i].State != pyobj.ICEmpty {
				cd.caches[i].Reset()
				vm.Stats.IC.Invalidations++
			} else {
				cd.caches[i].Misses = 0
			}
		}
	}
}

// quickenCode builds cd's quickened instruction copy and cache slots.
// Per-VM on purpose: code objects are shared across concurrently
// executing VMs (warm worker pools run one compiled program on many
// workers), so the shared Code must stay immutable.
func (vm *VM) quickenCode(code *pycode.Code, cd *codeData) {
	if !vm.quicken || code.NumICSites == 0 || len(code.SiteOf) != len(code.Code) {
		return
	}
	quick := make([]pycode.Instr, len(code.Code))
	copy(quick, code.Code)
	for i, in := range code.Code {
		if code.SiteOf[i] < 0 {
			continue
		}
		if q, ok := pycode.QuickenedOf(in.Op); ok {
			quick[i].Op = q
		}
	}
	cd.quick = quick
	cd.caches = make([]pyobj.ICache, code.NumICSites)
	cd.icAddr = vm.dataAlloc(uint64(code.NumICSites)*icSlotBytes + 16)
	vm.Stats.IC.Sites += uint64(code.NumICSites)
	// Portable IC seed import (icseed.go): warm-start the fresh cache
	// slots from a donor VM's observed shapes. Before the tier-2 passes
	// so a dequicken hint lands before fusion can claim the site.
	if vm.seedUnits != nil {
		vm.seedQuickened(code, cd)
	}
	// Tier-2 passes. Fusion first (it claims COMPARE_OP/LOAD_ATTR pairs
	// in their base form), then the speculative int rewrites over
	// whatever arithmetic sites remain unfused. Fusion never runs under
	// a tracer: a recorded trace must see one generic op per dispatch.
	if vm.fusion && vm.tracer == nil {
		vm.fuseCode(code, cd)
	}
	if vm.intFast {
		vm.intFastCode(code, cd)
	}
}

// icGuardEvents emits a hit path's guard check: one load of the cache
// slot, the compare, and the (predictable) guard branch — against the
// generic path's C helper call plus hash/probe traffic.
func (vm *VM) icGuardEvents(f *pyobj.Frame, site int32) {
	a := f.ICAddr + uint64(site)*icSlotBytes
	vm.Eng.Load(core.NameResolution, a, true)
	vm.Eng.ALU(core.NameResolution, true)
	vm.Eng.Branch(core.NameResolution, true)
}

// icMiss records a guard failure at site pc, de-quickening the
// instruction once the site's miss budget is exhausted. Returns whether
// the site is still quickened (a de-quickened site is never refilled).
func (vm *VM) icMiss(f *pyobj.Frame, pc int, c *pyobj.ICache) bool {
	if c.State != pyobj.ICEmpty {
		vm.Stats.IC.Invalidations++
	}
	if c.Misses < 255 {
		c.Misses++
	}
	if c.Misses >= icMaxMisses {
		in := f.Insns[pc]
		f.Insns[pc] = pycode.Instr{Op: in.Op.Dequicken(), Arg: in.Arg}
		c.Reset()
		vm.Stats.IC.Dequickened++
		return false
	}
	return true
}

// icRefill resets c for a new fill, preserving the miss budget unless
// the miss was benign (first fill, or a guard identity that legitimately
// changed — a fresh module namespace, a newly defined class — rather
// than churn on the same identity). The caller sets the new state.
func icRefill(c *pyobj.ICache, benign bool) {
	m := c.Misses
	c.Reset()
	if !benign {
		c.Misses = m
	}
}

// noteFill does post-fill bookkeeping, including the churn leg's
// periodic flush (which may immediately invalidate the fill it follows —
// worst-case invalidation pressure, by design).
func (vm *VM) noteFill() {
	vm.Stats.IC.Fills++
	vm.icFills++
	if vm.icFlushEvery != 0 && vm.icFills%vm.icFlushEvery == 0 {
		vm.FlushICs()
	}
}

// ---- LOAD_GLOBAL_IC ----

// loadGlobalIC executes a quickened LOAD_GLOBAL: a dict-version-guarded
// cache of the resolved binding. Bindings that resolved in builtins also
// guard the globals version — the name appearing in globals later must
// shadow the cached builtin.
func (vm *VM) loadGlobalIC(f *pyobj.Frame, in pycode.Instr, pc int) {
	site := f.Code.SiteOf[pc]
	c := &f.Caches[site]
	g := f.Globals
	switch c.State {
	case pyobj.ICGlobal:
		if c.Dict == g && c.Ver == g.Version {
			vm.icGuardEvents(f, site)
			vm.Eng.Load(core.NameResolution, f.ICAddr+uint64(site)*icSlotBytes+8, true)
			v := c.Value
			vm.Incref(v)
			vm.push(f, v)
			vm.Stats.IC.GlobalHits++
			return
		}
	case pyobj.ICGlobalBuiltin:
		if c.Dict == g && c.Ver == g.Version && c.BVer == vm.Builtins.Version {
			vm.icGuardEvents(f, site)
			vm.Eng.ALU(core.NameResolution, true) // builtins-version compare
			vm.Eng.Load(core.NameResolution, f.ICAddr+uint64(site)*icSlotBytes+8, true)
			v := c.Value
			vm.Incref(v)
			vm.push(f, v)
			vm.Stats.IC.GlobalHits++
			return
		}
	}

	// Miss: run the generic lookup (full events; may raise NameError,
	// in which case the miss stays counted and the cache stays cold),
	// then refill from pure lookups.
	vm.Stats.IC.GlobalMisses++
	quick := vm.icMiss(f, pc, c)
	vm.loadName(f, in)
	if !quick {
		return
	}
	name := f.Code.Names[in.Arg]
	benign := c.State == pyobj.ICEmpty || c.Dict != g
	if v, _, ok := g.GetStr(name); ok {
		icRefill(c, benign)
		c.State = pyobj.ICGlobal
		c.Dict, c.Ver = g, g.Version
		c.Value = v
		vm.noteFill()
	} else if v, _, ok := vm.Builtins.GetStr(name); ok {
		icRefill(c, benign)
		c.State = pyobj.ICGlobalBuiltin
		c.Dict, c.Ver = g, g.Version
		c.BVer = vm.Builtins.Version
		c.Value = v
		vm.noteFill()
	}
}

// ---- LOAD_ATTR_IC ----

// loadAttrIC executes a quickened LOAD_ATTR. Four monomorphic shapes are
// cached: an instance-dict data slot (entry-index + key layout hint,
// valid across same-shaped instances), a class-chain resolution (class
// identity + chain version; function results still allocate their bound
// method per hit, as CPython does), a module binding (dict version), and
// a builtin type method (TypeID against the immutable type-method
// table). Returns a new reference.
func (vm *VM) loadAttrIC(f *pyobj.Frame, obj pyobj.Object, in pycode.Instr, pc int) pyobj.Object {
	site := f.Code.SiteOf[pc]
	c := &f.Caches[site]
	name := f.Code.Names[in.Arg]

	if c.State == pyobj.ICPoly {
		if v, ok := vm.attrPolyLookup(f, obj, c, site, name); ok {
			return v
		}
	} else if v, method, ok := vm.attrCacheHit(f, obj, c, site, name); ok {
		if method {
			vm.Stats.IC.MethodHits++
		} else {
			vm.Stats.IC.AttrHits++
		}
		return v
	}

	// Miss: generic path (full events; may raise AttributeError), then
	// refill — possibly promoting the site to a polymorphic stub. The
	// miss is provisionally counted as an attribute miss and reclassified
	// if the fill resolves to a method.
	if c.State == pyobj.ICPoly {
		vm.Stats.IC.PolyMisses++
	} else {
		vm.Stats.IC.AttrMisses++
	}
	wasPoly := c.State == pyobj.ICPoly
	quick := vm.icMiss(f, pc, c)
	v := vm.getAttr(obj, name)
	if quick {
		if method, ok := vm.refillAttrAfterMiss(c, obj, name); ok {
			vm.noteFill()
			if method && !wasPoly {
				vm.Stats.IC.AttrMisses--
				vm.Stats.IC.MethodMisses++
			}
		}
	}
	return v
}

// attrCacheHit attempts the guarded hit of one monomorphic cache entry
// for a LOAD_ATTR of obj. On a hit it emits the guard events, performs
// the generic path's exact object-model work (bound-method allocation
// included), and returns the value as a new reference plus whether the
// entry was a method resolution. On a guard mismatch it emits nothing
// and reports false.
func (vm *VM) attrCacheHit(f *pyobj.Frame, obj pyobj.Object, c *pyobj.ICache, site int32, name string) (v pyobj.Object, method, ok bool) {
	e := vm.Eng
	switch o := obj.(type) {
	case *pyobj.Instance:
		switch c.State {
		case pyobj.ICAttrSlot:
			d := o.Dict
			if idx := int(c.EntryIdx); idx < len(d.Entries) && d.Entries[idx].Enc == c.Enc {
				e.Load(core.TypeCheck, obj.Hdr().Addr, false)
				e.Branch(core.TypeCheck, true)
				vm.icGuardEvents(f, site)
				ent := &d.Entries[idx]
				e.Load(core.NameResolution, d.SlotAddr(ent.Hash, 0)+8, true)
				v := ent.Value
				vm.Incref(v)
				return v, false, true
			}
		case pyobj.ICAttrClass, pyobj.ICAttrMethod:
			if c.Class == o.Class && c.CVer == o.Class.ChainVersion() {
				// The instance dict may shadow a class attribute: one
				// cheap membership probe (miss expected and modeled as a
				// single slot touch) before trusting the class cache.
				if _, _, shadowed := o.Dict.GetStr(name); !shadowed {
					e.Load(core.TypeCheck, obj.Hdr().Addr, false)
					e.Branch(core.TypeCheck, true)
					vm.icGuardEvents(f, site)
					e.Load(core.NameResolution, o.Dict.TableAddr, true)
					e.Branch(core.NameResolution, true)
					if c.State == pyobj.ICAttrMethod {
						// Bound-method allocation: identical churn to the
						// generic path — the cache saves the lookup, not
						// the object model.
						bm := &pyobj.BoundMethod{Self: o, Fn: c.Fn}
						vm.Heap.Allocate(bm, core.ObjectAllocation)
						e.Store(core.FunctionSetup, bm.H.Addr+16)
						e.Store(core.FunctionSetup, bm.H.Addr+24)
						vm.Incref(o)
						vm.Incref(c.Fn)
						vm.barrier(bm, o)
						vm.barrier(bm, c.Fn)
						return bm, true, true
					}
					v := c.Value
					vm.Incref(v)
					return v, false, true
				}
			}
		}
	case *pyobj.Module:
		if c.State == pyobj.ICAttrModule && c.Dict == o.Dict && c.Ver == o.Dict.Version {
			e.Load(core.TypeCheck, obj.Hdr().Addr, false)
			e.Branch(core.TypeCheck, true)
			vm.icGuardEvents(f, site)
			e.Load(core.NameResolution, f.ICAddr+uint64(site)*icSlotBytes+8, true)
			v := c.Value
			vm.Incref(v)
			return v, false, true
		}
	default:
		if c.State == pyobj.ICAttrType && obj.PyType().ID == c.TypeID {
			e.Load(core.TypeCheck, obj.Hdr().Addr, false)
			e.Branch(core.TypeCheck, true)
			vm.icGuardEvents(f, site)
			b := &pyobj.Builtin{Name: name, ID: c.BID, CodeAddr: vm.builtinImpls[c.BID].pc, Self: obj}
			vm.Heap.Allocate(b, core.ObjectAllocation)
			e.Store(core.FunctionSetup, b.H.Addr+16)
			vm.Incref(obj)
			vm.barrier(b, obj)
			return b, true, true
		}
	}
	return nil, false, false
}

// fillAttrCache repopulates c from pure (event-free) lookups after the
// generic path succeeded. Reports whether the fill happened and whether
// the site resolved to a method. Class receivers are never cached: class
// attribute access from user code is rare and class dicts mutate during
// class-body execution.
func (vm *VM) fillAttrCache(c *pyobj.ICache, obj pyobj.Object, name string) (method, ok bool) {
	switch o := obj.(type) {
	case *pyobj.Instance:
		if _, res, found := o.Dict.GetStr(name); found {
			icRefill(c, c.State == pyobj.ICEmpty)
			c.State = pyobj.ICAttrSlot
			c.Enc = "s:" + name
			c.EntryIdx = int32(res.EntryIdx)
			return false, true
		}
		if v, _, found := o.Class.Lookup(name); found {
			benign := c.State == pyobj.ICEmpty || c.Class != o.Class
			icRefill(c, benign)
			c.Class = o.Class
			c.CVer = o.Class.ChainVersion()
			if fn, isFn := v.(*pyobj.Func); isFn {
				c.State = pyobj.ICAttrMethod
				c.Fn = fn
				return true, true
			}
			c.State = pyobj.ICAttrClass
			c.Value = v
			return false, true
		}
	case *pyobj.Module:
		if v, _, found := o.Dict.GetStr(name); found {
			icRefill(c, c.State == pyobj.ICEmpty || c.Dict != o.Dict)
			c.State = pyobj.ICAttrModule
			c.Dict, c.Ver = o.Dict, o.Dict.Version
			c.Value = v
			return false, true
		}
	case *pyobj.Class:
		// Uncached by design.
	default:
		if id, found := vm.lookupTypeMethod(obj.PyType().ID, name); found {
			icRefill(c, c.State == pyobj.ICEmpty)
			c.State = pyobj.ICAttrType
			c.TypeID = obj.PyType().ID
			c.BID = id
			return true, true
		}
	}
	return false, false
}

// ---- STORE_ATTR_IC ----

// storeAttrIC executes a quickened STORE_ATTR: an update-in-place of an
// existing instance-dict entry under the same layout hint as
// ICAttrSlot. Inserts (first store of a fresh attribute) always take the
// generic path — an insert moves dict state the hint cannot describe.
func (vm *VM) storeAttrIC(f *pyobj.Frame, obj pyobj.Object, in pycode.Instr, pc int, v pyobj.Object) {
	site := f.Code.SiteOf[pc]
	c := &f.Caches[site]
	if c.State == pyobj.ICPoly {
		if vm.storePolyLookup(f, obj, c, site, v) {
			return
		}
	} else if vm.storeCacheHit(f, obj, c, site, v) {
		vm.Stats.IC.StoreHits++
		return
	}

	if c.State == pyobj.ICPoly {
		vm.Stats.IC.PolyMisses++
	} else {
		vm.Stats.IC.StoreMisses++
	}
	quick := vm.icMiss(f, pc, c)
	vm.setAttr(obj, f.Code.Names[in.Arg], v)
	if !quick {
		return
	}
	if vm.refillStoreAfterMiss(c, obj, f.Code.Names[in.Arg]) {
		vm.noteFill()
	}
}

// storeCacheHit attempts the guarded in-place update of one monomorphic
// ICStoreSlot entry. On a hit it mirrors the generic overwrite exactly:
// old-value load, new reference, version bump, store, write barrier.
func (vm *VM) storeCacheHit(f *pyobj.Frame, obj pyobj.Object, c *pyobj.ICache, site int32, v pyobj.Object) bool {
	o, isInst := obj.(*pyobj.Instance)
	if !isInst || c.State != pyobj.ICStoreSlot {
		return false
	}
	d := o.Dict
	idx := int(c.EntryIdx)
	if idx >= len(d.Entries) || d.Entries[idx].Enc != c.Enc {
		return false
	}
	e := vm.Eng
	e.Load(core.TypeCheck, obj.Hdr().Addr, false)
	e.Branch(core.TypeCheck, true)
	vm.icGuardEvents(f, site)
	ent := &d.Entries[idx]
	slot := d.SlotAddr(ent.Hash, 0) + 8
	e.Load(core.NameResolution, slot, true)
	d.Version++
	ent.Value = v
	vm.Incref(v)
	e.Store(core.NameResolution, slot)
	vm.barrier(d, v)
	return true
}
