package interp

import (
	"fmt"
	"time"

	"repro/internal/api"
	"repro/internal/gc"
	"repro/internal/pycode"
	"repro/internal/pyobj"
)

// Limits is the resource governor's configuration: the canonical
// api.Limits budget set. Clamping and validation live in
// api.Limits.Normalize; the governor just enforces whatever it is given.
// Zero values mean unlimited.
//
// Governor checks deliberately emit NO micro-events: enforcement is host
// bookkeeping, not simulated Python work, and must not distort the paper's
// overhead-category attribution (see EXPERIMENTS.md).
type Limits = api.Limits

// deadlineStride is how many bytecodes run between wall-clock polls. At
// interpreter speeds this bounds deadline overshoot to well under a
// millisecond while keeping time.Now off the dispatch fast path.
const deadlineStride = 8192

// SetLimits installs the resource limits. Call before RunCode; the step
// and wall-clock budgets are (re-)armed at each RunCode entry.
func (vm *VM) SetLimits(l Limits) {
	vm.limits = l
	if l.MaxRecursionDepth > 0 {
		vm.recursionLimit = l.MaxRecursionDepth
	} else {
		vm.recursionLimit = maxRecursion
	}
	vm.Heap.SetLimit(l.MaxHeapBytes)
	vm.scheduleGovernor()
}

// Limits returns the installed resource limits.
func (vm *VM) Limits() Limits { return vm.limits }

// SetYield installs a cooperative step-slice hook: every quantum
// bytecodes the governor slow path calls fn, which may block — parking
// the VM's goroutine while the Python frame stack stays live in the VM —
// and returns how long the VM was parked. The parked duration is
// credited to the wall-clock deadline so scheduler delay is never
// charged against the job's own budget. The quantum arms its own
// nextCheck term independent of Limits, so a job with no step budget
// (nextCheck otherwise ^uint64(0)) still reaches yield points and can be
// preempted. quantum 0 or fn nil disarms slicing.
func (vm *VM) SetYield(quantum uint64, fn func() time.Duration) {
	if quantum == 0 || fn == nil {
		vm.sliceSteps, vm.yieldFn = 0, nil
	} else {
		vm.sliceSteps, vm.yieldFn = quantum, fn
	}
	vm.sliceBase = vm.iterations
	vm.scheduleGovernor()
}

// armGovernor starts a RunCode invocation's step and wall-clock budgets.
func (vm *VM) armGovernor() {
	vm.stepBase = vm.iterations
	if d := vm.limits.Deadline; d > 0 {
		vm.deadlineAt = time.Now().Add(d)
	} else {
		vm.deadlineAt = time.Time{}
	}
	vm.outBytes = 0
	vm.sliceBase = vm.iterations
	vm.scheduleGovernor()
}

// scheduleGovernor computes nextCheck, the absolute iteration count at
// which dispatch must run the governor slow path. Keeping a single
// precomputed threshold means the dispatch hot path pays one compare for
// the whole governor, however many limits are armed.
func (vm *VM) scheduleGovernor() {
	next := ^uint64(0)
	if l := vm.limits.MaxSteps; l != 0 {
		// Saturating add: with MaxSteps near ^uint64(0) the sum wraps,
		// which would either park the threshold behind the current
		// iteration count (slow-path entry on every dispatch) or disarm
		// a budget that should be armed. A saturated threshold means
		// "unreachable", which is exactly what a 2^64-step budget is.
		c := vm.stepBase + l
		if c < vm.stepBase {
			c = ^uint64(0)
		} else if c != ^uint64(0) {
			c++
		}
		if c < next {
			next = c
		}
	}
	if !vm.deadlineAt.IsZero() {
		if c := vm.iterations + deadlineStride; c < next {
			next = c
		}
	}
	if vm.sliceSteps != 0 {
		// Same saturating discipline as the step budget: a quantum near
		// ^uint64(0) must read as "unreachable", not wrap behind the
		// current iteration count.
		c := vm.sliceBase + vm.sliceSteps
		if c < vm.sliceBase {
			c = ^uint64(0)
		}
		if c < next {
			next = c
		}
	}
	vm.nextCheck = next
}

// maybeYield runs the step-slice hook if the quantum has elapsed,
// crediting parked time to the deadline. Shared by both governor slow
// paths; emits no micro-events (scheduling is host bookkeeping and must
// not distort overhead-category attribution).
func (vm *VM) maybeYield() {
	if vm.sliceSteps == 0 || vm.iterations-vm.sliceBase < vm.sliceSteps {
		return
	}
	parked := vm.yieldFn()
	if parked > 0 && !vm.deadlineAt.IsZero() {
		vm.deadlineAt = vm.deadlineAt.Add(parked)
	}
	vm.sliceBase = vm.iterations
}

// governorCheck is the dispatch-loop slow path, entered when iterations
// crosses nextCheck: enforce the step budget, poll the deadline, and
// reschedule.
func (vm *VM) governorCheck(f *pyobj.Frame, op pycode.Opcode) {
	if l := vm.limits.MaxSteps; l != 0 && vm.iterations-vm.stepBase > l {
		Raise("TimeoutError", "step budget of %d bytecodes exceeded in %s at pc=%d (op=%s)",
			l, f.Code.Name, f.PC, op.Dequicken())
	}
	vm.maybeYield()
	vm.pollDeadline()
	vm.scheduleGovernor()
}

// governorCheckJIT is governorCheck for compiled-trace iteration
// accounting, where no frame/opcode context is cheap to name.
func (vm *VM) governorCheckJIT() {
	if l := vm.limits.MaxSteps; l != 0 && vm.iterations-vm.stepBase > l {
		Raise("TimeoutError", "step budget of %d bytecodes exceeded in compiled code", l)
	}
	vm.maybeYield()
	vm.pollDeadline()
	vm.scheduleGovernor()
}

// pollDeadline raises TimeoutError once the wall-clock deadline passes.
// Installed as the heap's tick callback so collections check it too: an
// allocation-bound hostile program spends most of its time in GC.
func (vm *VM) pollDeadline() {
	if vm.deadlineAt.IsZero() || time.Now().Before(vm.deadlineAt) {
		return
	}
	Raise("TimeoutError", "execution deadline of %v exceeded", vm.limits.Deadline)
}

// raiseMemoryError is the heap's OOM handler: allocation failure —
// whether from the heap limit, arena exhaustion, or an injected fault —
// surfaces as a Python MemoryError, never a host panic.
func (vm *VM) raiseMemoryError(need uint64) {
	Raise("MemoryError", "out of memory: allocation of %d bytes failed", need)
}

// raiseRecursion reports a blown call depth. The governor's configured
// limit raises RecursionError; the VM's built-in valve keeps CPython
// 2.7's RuntimeError.
func (vm *VM) raiseRecursion() {
	if vm.limits.MaxRecursionDepth > 0 {
		Raise("RecursionError", "maximum recursion depth (%d) exceeded", vm.recursionLimit)
	}
	Raise("RuntimeError", "maximum recursion depth exceeded")
}

// writeOut writes program output through the output-byte cap.
func (vm *VM) writeOut(s string) {
	if l := vm.limits.MaxOutputBytes; l != 0 {
		vm.outBytes += uint64(len(s))
		if vm.outBytes > l {
			Raise("OutputLimitError", "output limit of %d bytes exceeded", l)
		}
	}
	fmt.Fprint(vm.Stdout, s)
}

// ---- Crash isolation ----

// FrameInfo is one entry of a crash snapshot's frame stack.
type FrameInfo struct {
	Func string
	PC   int
	Op   string
}

func (fi FrameInfo) String() string {
	return fmt.Sprintf("%s at pc=%d (op=%s)", fi.Func, fi.PC, fi.Op)
}

// CrashState is the VM state captured when an internal failure unwinds:
// enough to diagnose the crash without a debugger attached to the host.
type CrashState struct {
	// Frames is the Python frame stack at the point of failure,
	// innermost first (capped at maxUnwindNotes entries, each with a
	// bounded function-name rendering).
	Frames []FrameInfo
	// Depth is the true unwound call depth, which may exceed
	// len(Frames) when the snapshot cap clipped the stack.
	Depth     int
	Bytecodes uint64
	Heap      gc.Stats
}

// InternalError wraps a Go panic that escaped the interpreter: a runtime
// bug, never program-visible Python semantics. It carries the original
// panic value, the Go stack at the panic site, and a VM state snapshot,
// so converting the panic to an error loses nothing.
type InternalError struct {
	// Cause is the original panic value.
	Cause interface{}
	// Stack is the Go stack trace captured at recovery.
	Stack []byte
	// State snapshots the VM at the moment of failure.
	State CrashState
}

func (e *InternalError) Error() string {
	msg := fmt.Sprintf("InternalError: %v", e.Cause)
	if len(e.State.Frames) > 0 {
		msg += fmt.Sprintf(" [in %s; depth=%d, %d bytecodes executed]",
			e.State.Frames[0], e.State.Depth, e.State.Bytecodes)
	}
	return msg
}

// Unwrap exposes an underlying error cause to errors.Is/As.
func (e *InternalError) Unwrap() error {
	if err, ok := e.Cause.(error); ok {
		return err
	}
	return nil
}

// Crash-snapshot size caps. A worker that crashes while 4000 Python
// frames deep would otherwise snapshot thousands of FrameInfos, render a
// megabyte Go stack, and potentially hold an arbitrarily large panic
// value — the crash *report* must never become its own memory exhaustion.
const (
	// maxUnwindNotes caps the crash snapshot's frame stack.
	maxUnwindNotes = 32
	// maxFuncRepr caps a snapshot frame's function-name rendering.
	maxFuncRepr = 128
	// maxCauseRepr caps the rendered panic value carried by the error.
	maxCauseRepr = 2048
	// maxStackBytes caps the captured Go stack trace (deep Python
	// recursion recurses through Go, so an uncapped trace scales with
	// the crash depth).
	maxStackBytes = 16 << 10
)

// truncRepr bounds s to max bytes, marking the cut.
func truncRepr(s string, max int) string {
	if len(s) <= max {
		return s
	}
	return s[:max] + "...[truncated]"
}

// noteUnwind records f in the crash snapshot while a panic unwinds
// through runFrame. By the time RunCode's recover runs, the frame chain
// has already been popped by runFrame's deferred cleanup, so the stack
// must be captured during the unwind itself.
func (vm *VM) noteUnwind(f *pyobj.Frame) {
	vm.unwoundTotal++
	if len(vm.unwound) >= maxUnwindNotes {
		return
	}
	fi := FrameInfo{Func: truncRepr(f.Code.Name, maxFuncRepr), PC: f.PC}
	if f.PC >= 0 && f.PC < len(f.Code.Code) {
		fi.Op = f.Code.Code[f.PC].Op.String()
	}
	vm.unwound = append(vm.unwound, fi)
}

// internalError assembles the InternalError for a recovered panic. Every
// variable-size component is bounded: frames were capped during the
// unwind, the Go stack is clipped to maxStackBytes, and the panic value
// is rendered once into a capped string instead of being retained (a
// huge panic value would otherwise live as long as the error does).
func (vm *VM) internalError(cause interface{}, stack []byte) *InternalError {
	if len(stack) > maxStackBytes {
		stack = append(stack[:maxStackBytes:maxStackBytes], []byte("\n...[stack truncated]")...)
	}
	e := &InternalError{
		Cause: boundCause(cause),
		Stack: stack,
		State: CrashState{
			Frames:    append([]FrameInfo(nil), vm.unwound...),
			Depth:     vm.unwoundTotal,
			Bytecodes: vm.Stats.Bytecodes,
			Heap:      vm.Heap.Stats,
		},
	}
	vm.unwound = vm.unwound[:0]
	vm.unwoundTotal = 0
	return e
}

// boundCause reduces a panic value to a bounded footprint while keeping
// error identity: small error values pass through untouched (so
// errors.Is/As keep working); anything else is rendered to a capped
// string.
func boundCause(cause interface{}) interface{} {
	if err, ok := cause.(error); ok && len(err.Error()) <= maxCauseRepr {
		return err
	}
	return truncRepr(fmt.Sprint(cause), maxCauseRepr)
}
