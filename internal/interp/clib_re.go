package interp

import (
	"strings"

	"repro/internal/core"
	"repro/internal/pyobj"
)

// registerReModule builds the re module: a backtracking regular-expression
// engine over MiniPy strings, modeled as C-extension code. Supported
// syntax: literals, '.', escapes (\d \D \w \W \s \S and escaped
// metacharacters), classes [a-z0-9_] with negation, quantifiers * + ?
// {m,n}, alternation |, grouping (...), and anchors ^ $.
//
// re.compile returns the pattern string; compiled programs are cached in
// the VM keyed by pattern text, so the compile cost is paid once per
// pattern as in CPython's sre.
func (vm *VM) registerReModule() {
	entries := map[string]pyobj.Object{}

	compileID := vm.reg("re.compile", 1024, true, true,
		func(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
			vm.argCheck("re.compile", args, 1, 2)
			pat := vm.wantStr("re.compile", args[0])
			vm.compileRegex(pat.V)
			vm.Incref(pat)
			return pat
		})
	entries["compile"] = vm.method("compile", compileID)

	searchID := vm.reg("re.search", 512, true, true,
		func(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
			vm.argCheck("re.search", args, 2, 2)
			prog := vm.compileRegex(vm.wantStr("re.search", args[0]).V)
			s := vm.wantStr("re.search", args[1])
			m := newMatcher(vm, prog, s)
			if start, end, ok := m.search(0); ok {
				return vm.NewStr(s.V[start:end])
			}
			vm.Incref(vm.None)
			return vm.None
		})
	entries["search"] = vm.method("search", searchID)

	matchID := vm.reg("re.match", 512, true, true,
		func(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
			vm.argCheck("re.match", args, 2, 2)
			prog := vm.compileRegex(vm.wantStr("re.match", args[0]).V)
			s := vm.wantStr("re.match", args[1])
			m := newMatcher(vm, prog, s)
			if end, ok := m.matchAt(0); ok {
				return vm.NewStr(s.V[:end])
			}
			vm.Incref(vm.None)
			return vm.None
		})
	entries["match"] = vm.method("match", matchID)

	findallID := vm.reg("re.findall", 768, true, true,
		func(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
			vm.argCheck("re.findall", args, 2, 2)
			prog := vm.compileRegex(vm.wantStr("re.findall", args[0]).V)
			s := vm.wantStr("re.findall", args[1])
			m := newMatcher(vm, prog, s)
			var items []pyobj.Object
			pos := 0
			for pos <= len(s.V) {
				start, end, ok := m.search(pos)
				if !ok {
					break
				}
				items = append(items, vm.NewStr(s.V[start:end]))
				if end == start {
					pos = end + 1
				} else {
					pos = end
				}
			}
			return vm.NewList(items)
		})
	entries["findall"] = vm.method("findall", findallID)

	subID := vm.reg("re.sub", 768, true, true,
		func(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
			vm.argCheck("re.sub", args, 3, 3)
			prog := vm.compileRegex(vm.wantStr("re.sub", args[0]).V)
			repl := vm.wantStr("re.sub", args[1])
			s := vm.wantStr("re.sub", args[2])
			m := newMatcher(vm, prog, s)
			var sb strings.Builder
			pos := 0
			for pos <= len(s.V) {
				start, end, ok := m.search(pos)
				if !ok {
					break
				}
				sb.WriteString(s.V[pos:start])
				sb.WriteString(repl.V)
				if end == start {
					if start < len(s.V) {
						sb.WriteByte(s.V[start])
					}
					pos = end + 1
				} else {
					pos = end
				}
			}
			if pos <= len(s.V) {
				sb.WriteString(s.V[pos:])
			}
			return vm.NewStr(sb.String())
		})
	entries["sub"] = vm.method("sub", subID)

	splitID := vm.reg("re.split", 512, true, true,
		func(vm *VM, _ pyobj.Object, args []pyobj.Object) pyobj.Object {
			vm.argCheck("re.split", args, 2, 2)
			prog := vm.compileRegex(vm.wantStr("re.split", args[0]).V)
			s := vm.wantStr("re.split", args[1])
			m := newMatcher(vm, prog, s)
			var items []pyobj.Object
			pos, last := 0, 0
			for pos <= len(s.V) {
				start, end, ok := m.search(pos)
				if !ok || end == start {
					break
				}
				items = append(items, vm.NewStr(s.V[last:start]))
				pos, last = end, end
			}
			items = append(items, vm.NewStr(s.V[last:]))
			return vm.NewList(items)
		})
	entries["split"] = vm.method("split", splitID)

	vm.bindModule("re", entries)
}

// ---- regex program ----

type reNode struct {
	kind     reKind
	ch       byte
	class    *[32]byte // bitmap for class kind
	children []*reNode // seq/alt/group
	sub      *reNode   // quantified child
	min, max int       // repeat bounds (max<0 = unbounded)
}

type reKind uint8

const (
	reChar reKind = iota
	reAny
	reClass
	reSeq
	reAlt
	reRepeat
	reBegin
	reEnd
)

type rePattern struct {
	root *reNode
}

// compileRegex parses pattern (cached per VM), emitting compile-cost
// events on a cache miss.
func (vm *VM) compileRegex(pattern string) *rePattern {
	if vm.regexCache == nil {
		vm.regexCache = map[string]*rePattern{}
	}
	if p, ok := vm.regexCache[pattern]; ok {
		vm.Eng.ALUn(core.Execute, 2) // cache hit probe
		return p
	}
	// Compilation cost: parser work proportional to pattern length.
	for i := 0; i < len(pattern); i++ {
		vm.Eng.ALUn(core.Execute, 4)
		vm.Eng.Store(core.Execute, mem_ioBuf+0x10000+uint64(i*16))
	}
	rp := &reParser{s: pattern}
	root := rp.alt()
	if rp.i != len(pattern) {
		Raise("ValueError", "unbalanced parenthesis in regex %q", pattern)
	}
	p := &rePattern{root: root}
	vm.regexCache[pattern] = p
	return p
}

type reParser struct {
	s string
	i int
}

func (p *reParser) alt() *reNode {
	first := p.seq()
	if p.i >= len(p.s) || p.s[p.i] != '|' {
		return first
	}
	alts := []*reNode{first}
	for p.i < len(p.s) && p.s[p.i] == '|' {
		p.i++
		alts = append(alts, p.seq())
	}
	return &reNode{kind: reAlt, children: alts}
}

func (p *reParser) seq() *reNode {
	var items []*reNode
	for p.i < len(p.s) && p.s[p.i] != '|' && p.s[p.i] != ')' {
		items = append(items, p.quant())
	}
	if len(items) == 1 {
		return items[0]
	}
	return &reNode{kind: reSeq, children: items}
}

func (p *reParser) quant() *reNode {
	atom := p.atom()
	for p.i < len(p.s) {
		switch p.s[p.i] {
		case '*':
			p.i++
			atom = &reNode{kind: reRepeat, sub: atom, min: 0, max: -1}
		case '+':
			p.i++
			atom = &reNode{kind: reRepeat, sub: atom, min: 1, max: -1}
		case '?':
			p.i++
			atom = &reNode{kind: reRepeat, sub: atom, min: 0, max: 1}
		case '{':
			j := strings.IndexByte(p.s[p.i:], '}')
			if j < 0 {
				Raise("ValueError", "unbalanced brace in regex")
			}
			body := p.s[p.i+1 : p.i+j]
			p.i += j + 1
			min, max := 0, -1
			if k := strings.IndexByte(body, ','); k >= 0 {
				min = atoiSafe(body[:k])
				if k+1 < len(body) {
					max = atoiSafe(body[k+1:])
				}
			} else {
				min = atoiSafe(body)
				max = min
			}
			atom = &reNode{kind: reRepeat, sub: atom, min: min, max: max}
		default:
			return atom
		}
	}
	return atom
}

func atoiSafe(s string) int {
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			Raise("ValueError", "bad repeat count in regex")
		}
		n = n*10 + int(s[i]-'0')
	}
	return n
}

func classBit(bm *[32]byte, c byte) { bm[c>>3] |= 1 << (c & 7) }

func classHas(bm *[32]byte, c byte) bool { return bm[c>>3]&(1<<(c&7)) != 0 }

func escapeClass(c byte) (*[32]byte, bool) {
	bm := new([32]byte)
	switch c {
	case 'd', 'D':
		for b := byte('0'); b <= '9'; b++ {
			classBit(bm, b)
		}
	case 'w', 'W':
		for b := byte('a'); b <= 'z'; b++ {
			classBit(bm, b)
		}
		for b := byte('A'); b <= 'Z'; b++ {
			classBit(bm, b)
		}
		for b := byte('0'); b <= '9'; b++ {
			classBit(bm, b)
		}
		classBit(bm, '_')
	case 's', 'S':
		for _, b := range []byte{' ', '\t', '\n', '\r', '\v', '\f'} {
			classBit(bm, b)
		}
	default:
		return nil, false
	}
	if c == 'D' || c == 'W' || c == 'S' {
		for i := range bm {
			bm[i] = ^bm[i]
		}
	}
	return bm, true
}

func (p *reParser) atom() *reNode {
	if p.i >= len(p.s) {
		Raise("ValueError", "truncated regex")
	}
	c := p.s[p.i]
	switch c {
	case '(':
		p.i++
		// Non-capturing prefix (?: is accepted and ignored.
		if strings.HasPrefix(p.s[p.i:], "?:") {
			p.i += 2
		}
		inner := p.alt()
		if p.i >= len(p.s) || p.s[p.i] != ')' {
			Raise("ValueError", "missing ) in regex")
		}
		p.i++
		return inner
	case '[':
		p.i++
		bm := new([32]byte)
		negate := false
		if p.i < len(p.s) && p.s[p.i] == '^' {
			negate = true
			p.i++
		}
		first := true
		for p.i < len(p.s) && (p.s[p.i] != ']' || first) {
			first = false
			lo := p.s[p.i]
			if lo == '\\' && p.i+1 < len(p.s) {
				p.i++
				if sub, ok := escapeClass(p.s[p.i]); ok {
					for k := range bm {
						bm[k] |= sub[k]
					}
					p.i++
					continue
				}
				lo = escapeChar(p.s[p.i])
			}
			p.i++
			if p.i+1 < len(p.s) && p.s[p.i] == '-' && p.s[p.i+1] != ']' {
				hi := p.s[p.i+1]
				p.i += 2
				for b := lo; b <= hi && b >= lo; b++ {
					classBit(bm, b)
					if b == 255 {
						break
					}
				}
				continue
			}
			classBit(bm, lo)
		}
		if p.i >= len(p.s) {
			Raise("ValueError", "missing ] in regex")
		}
		p.i++ // ]
		if negate {
			for i := range bm {
				bm[i] = ^bm[i]
			}
			// Never match newline-less sentinel beyond string.
		}
		return &reNode{kind: reClass, class: bm}
	case '.':
		p.i++
		return &reNode{kind: reAny}
	case '^':
		p.i++
		return &reNode{kind: reBegin}
	case '$':
		p.i++
		return &reNode{kind: reEnd}
	case '\\':
		p.i++
		if p.i >= len(p.s) {
			Raise("ValueError", "trailing backslash in regex")
		}
		e := p.s[p.i]
		p.i++
		if bm, ok := escapeClass(e); ok {
			return &reNode{kind: reClass, class: bm}
		}
		return &reNode{kind: reChar, ch: escapeChar(e)}
	case '*', '+', '?', '{':
		Raise("ValueError", "nothing to repeat in regex")
	}
	p.i++
	return &reNode{kind: reChar, ch: c}
}

func escapeChar(c byte) byte {
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	}
	return c
}

// ---- matcher ----

type matcher struct {
	vm      *VM
	prog    *rePattern
	s       string
	addr    uint64
	steps   int
	emitted int
}

const reStepLimit = 2_000_000

func newMatcher(vm *VM, prog *rePattern, s *pyobj.Str) *matcher {
	return &matcher{vm: vm, prog: prog, s: s.V, addr: s.DataAddr}
}

// step emits the per-character comparison traffic (capped).
func (m *matcher) step(pos int) {
	m.steps++
	if m.steps > reStepLimit {
		Raise("RuntimeError", "regex backtracking limit exceeded")
	}
	if m.emitted < 1<<18 {
		m.emitted++
		m.vm.Eng.Load(core.Execute, m.addr+uint64(pos), false)
		m.vm.Eng.ALU(core.Execute, true)
		m.vm.Eng.Branch(core.Execute, false)
	}
}

// matchNode attempts node at pos, calling cont with the end position of
// each successful alternative until cont returns true.
func (m *matcher) matchNode(n *reNode, pos int, cont func(int) bool) bool {
	switch n.kind {
	case reChar:
		m.step(pos)
		if pos < len(m.s) && m.s[pos] == n.ch {
			return cont(pos + 1)
		}
		return false
	case reAny:
		m.step(pos)
		if pos < len(m.s) && m.s[pos] != '\n' {
			return cont(pos + 1)
		}
		return false
	case reClass:
		m.step(pos)
		if pos < len(m.s) && classHas(n.class, m.s[pos]) {
			return cont(pos + 1)
		}
		return false
	case reBegin:
		if pos == 0 {
			return cont(pos)
		}
		return false
	case reEnd:
		if pos == len(m.s) {
			return cont(pos)
		}
		return false
	case reSeq:
		return m.matchSeq(n.children, 0, pos, cont)
	case reAlt:
		for _, alt := range n.children {
			if m.matchNode(alt, pos, cont) {
				return true
			}
		}
		return false
	case reRepeat:
		return m.matchRepeat(n, pos, 0, cont)
	}
	return false
}

func (m *matcher) matchSeq(nodes []*reNode, idx, pos int, cont func(int) bool) bool {
	if idx == len(nodes) {
		return cont(pos)
	}
	return m.matchNode(nodes[idx], pos, func(next int) bool {
		return m.matchSeq(nodes, idx+1, next, cont)
	})
}

// matchRepeat implements greedy bounded/unbounded repetition with
// backtracking.
func (m *matcher) matchRepeat(n *reNode, pos, count int, cont func(int) bool) bool {
	if n.max >= 0 && count >= n.max {
		return cont(pos)
	}
	// Greedy: try one more copy first.
	matched := m.matchNode(n.sub, pos, func(next int) bool {
		if next == pos {
			// Zero-width match: stop expanding to avoid livelock.
			return count >= n.min && cont(next)
		}
		return m.matchRepeat(n, next, count+1, cont)
	})
	if matched {
		return true
	}
	if count >= n.min {
		return cont(pos)
	}
	return false
}

// matchAt anchors a match at start, returning the end of the leftmost
// greedy match.
func (m *matcher) matchAt(start int) (int, bool) {
	end := -1
	m.matchNode(m.prog.root, start, func(e int) bool {
		end = e
		return true
	})
	if end < 0 {
		return 0, false
	}
	return end, true
}

// search finds the leftmost match at or after from.
func (m *matcher) search(from int) (int, int, bool) {
	for start := from; start <= len(m.s); start++ {
		if end, ok := m.matchAt(start); ok {
			return start, end, true
		}
	}
	return 0, 0, false
}
