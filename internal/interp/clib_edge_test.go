package interp

import "testing"

// Edge-case regression tests for the C-helper library surfaces the
// differential oracle leans on: clib_re degenerate patterns, strformat
// nested specs, and byte-string behaviour on multi-byte (UTF-8) text.
// Each case pins the CPython-2.7-style behaviour on both memory managers.

func TestReEmptyPatterns(t *testing.T) {
	// An empty pattern matches at every position, including the end.
	expect(t, `print(re.findall("", "abc"))`, "['', '', '', '']\n")
	// Empty-match substitution inserts between every character.
	expect(t, `print(re.sub("", "-", "ab"))`, "-a-b-\n")
	// Splitting on an empty pattern returns the string whole.
	expect(t, `print(re.split("", "ab"))`, "['ab']\n")
	// A star pattern alternates real and empty matches.
	expect(t, `print(re.findall("x*", "axb"))`, "['', 'x', '', '']\n")
	// Splitting the empty string yields one empty field.
	expect(t, `print(re.split(",", ""))`, "['']\n")
	// No match on the empty subject.
	expect(t, `print(re.findall("a+", ""))`, "[]\n")
	// Substitution with an empty replacement deletes matches.
	expect(t, `print(re.sub("b+", "", "abba"))`, "aa\n")
}

func TestReGroupsAndClasses(t *testing.T) {
	expect(t, `print(re.findall("[0-9]+", "a1 b22 c333"))`, "['1', '22', '333']\n")
	// MiniPy groups are structural only (no captures), so findall
	// returns the full match even when the pattern has a group —
	// unlike CPython, which would return the last group capture.
	expect(t, `print(re.findall("(ab)+", "ababxab"))`, "['abab', 'ab']\n")
	expect(t, `print(re.sub("[aeiou]", "_", "differential"))`, "d_ff_r_nt__l\n")
	expect(t, `print(re.split("[,;]", "a,b;c"))`, "['a', 'b', 'c']\n")
}

func TestStrformatNestedSpecs(t *testing.T) {
	// Flag + zero-pad + width + precision on a float.
	expect(t, `print("%+08.3f" % (3.14159,))`, "+003.142\n")
	// Left-justify with precision.
	expect(t, `print("%-8.2f|" % (2.5,))`, "2.50    |\n")
	// Space flag: blank for positives, minus for negatives.
	expect(t, `print("% d|% d" % (5, -5))`, " 5|-5\n")
	// Zero-pad vs left-justify on ints.
	expect(t, `print("%05d|%-5d|" % (42, 42))`, "00042|42   |\n")
	// String precision truncates, width pads either side.
	expect(t, `print("%8.3s|" % ("abcdef",))`, "     abc|\n")
	expect(t, `print("%-8.3s|" % ("abcdef",))`, "abc     |\n")
	// Precision 0 rounds to even; long precision keeps digits.
	expect(t, `print("%.0f|%.5f" % (2.5, 1.0/3.0))`, "2|0.33333\n")
	// Hex with zero-pad and left-justify.
	expect(t, `print("%x|%08x|%-8x|" % (255, 255, 255))`, "ff|000000ff|ff      |\n")
	// repr verb, char verb from int and str, literal percent.
	expect(t, `print("%r" % ("ab",))`, "'ab'\n")
	expect(t, `print("%c%c" % (65, "z"))`, "Az\n")
	expect(t, `print("%%|%d" % (9,))`, "%|9\n")
}

func TestUnicodeByteStrings(t *testing.T) {
	// MiniPy strings are byte strings: len counts bytes, slicing cuts
	// bytes, and %-width pads by byte count — while upper() is
	// unicode-aware. These pin the byte-semantics the oracle's canonical
	// output comparison relies on.
	expect(t, `print(len("héllo wörld"))`, "13\n")
	expect(t, `print("héllo wörld".upper())`, "HÉLLO WÖRLD\n")
	expect(t, `print("%14s|" % ("héllo wörld",))`, " héllo wörld|\n")
	expect(t, `print("héllo"[0:3])`, "hé\n")
	expect(t, `print("ä" * 3)`, "äää\n")
	expect(t, `print("ä" == "ä", "ä" < "b")`, "True False\n")
}
