package interp

import (
	"sync"

	"repro/internal/pycode"
	"repro/internal/pycompile"
)

var (
	srcCacheMu sync.Mutex
	srcCache   = map[string]*pycode.Code{}
)

// compileCached compiles a source file, memoizing by file name + source so
// repeated runs of the same benchmark share one code object (and therefore
// one set of materialized constants per VM).
func compileCached(file, src string) (*pycode.Code, error) {
	key := file + "\x00" + src
	srcCacheMu.Lock()
	if c, ok := srcCache[key]; ok {
		srcCacheMu.Unlock()
		return c, nil
	}
	srcCacheMu.Unlock()
	code, err := pycompile.CompileSource(file, src)
	if err != nil {
		return nil, err
	}
	srcCacheMu.Lock()
	srcCache[key] = code
	srcCacheMu.Unlock()
	return code, nil
}
