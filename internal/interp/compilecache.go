package interp

import (
	"sync"

	"repro/internal/pycode"
	"repro/internal/pycompile"
)

var (
	srcCacheMu sync.Mutex
	srcCache   = map[string]*pycode.Code{}
)

// Compile compiles a source file through the process-wide memoized
// cache — the same code-object identity RunSource uses, which matters
// to callers that run a program and then export its IC seed (the
// export walks the VM's materialization of exactly this object).
func Compile(file, src string) (*pycode.Code, error) {
	return compileCached(file, src)
}

// compileCached compiles a source file, memoizing by file name + source so
// repeated runs of the same benchmark share one code object (and therefore
// one set of materialized constants per VM).
func compileCached(file, src string) (*pycode.Code, error) {
	key := file + "\x00" + src
	srcCacheMu.Lock()
	if c, ok := srcCache[key]; ok {
		srcCacheMu.Unlock()
		return c, nil
	}
	srcCacheMu.Unlock()
	code, err := pycompile.CompileSource(file, src)
	if err != nil {
		return nil, err
	}
	srcCacheMu.Lock()
	srcCache[key] = code
	srcCacheMu.Unlock()
	return code, nil
}
