// Package interp is the MiniPy virtual machine: a CPython-2.7-style
// stack-based bytecode interpreter instrumented at the operation level.
// Every action — dispatch, stack traffic, type checks, boxing, name
// resolution, C helper calls, refcounting — emits categorized micro-events
// through the emit.Engine, reproducing the paper's annotated-interpreter
// methodology.
package interp

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/emit"
	"repro/internal/gc"
	"repro/internal/mem"
	"repro/internal/pycode"
	"repro/internal/pyobj"
)

// smallIntMin/Max bound CPython's preallocated small-integer cache.
const (
	smallIntMin = -5
	smallIntMax = 256
)

// Tracer observes interpreter execution; the JIT installs one to record
// traces and to intercept hot loop back-edges.
type Tracer interface {
	// OnBackEdge is called when a backward JUMP_ABSOLUTE (a loop
	// iteration boundary) is about to execute in frame f toward target.
	// If it returns true, the tracer has advanced the frame itself
	// (executed compiled code); the interpreter re-reads f.PC.
	OnBackEdge(f *pyobj.Frame, target int) bool
	// RecordInstr is called before each bytecode executes while
	// recording is active.
	RecordInstr(f *pyobj.Frame, pc int, in pycode.Instr)
	// Recording reports whether a recording session is active.
	Recording() bool
}

// PyError is a Python-level error (TypeError, IndexError, ...). MiniPy has
// no try/except, so a raised error aborts execution and surfaces to the
// host as a Go error.
type PyError struct {
	Kind string
	Msg  string
}

func (e *PyError) Error() string { return e.Kind + ": " + e.Msg }

// Raise panics with a PyError; the VM recovers it at the Run boundary.
func Raise(kind, format string, args ...interface{}) {
	panic(&PyError{Kind: kind, Msg: fmt.Sprintf(format, args...)})
}

// VM is one MiniPy runtime instance.
type VM struct {
	Eng  *emit.Engine
	Heap *gc.Heap

	// Stdout receives program output.
	Stdout io.Writer

	// MaxBytecodes aborts execution with a RuntimeError after this many
	// bytecodes (0 = unlimited). A safety valve for runaway programs.
	MaxBytecodes uint64

	// ExtraRoots, when set, contributes additional GC roots (the JIT's
	// live trace registers during compiled-code execution).
	ExtraRoots func(visit func(pyobj.Object))

	// Singletons and caches (immortal, data segment).
	None      *pyobj.None
	True      *pyobj.Bool
	False     *pyobj.Bool
	smallInts [smallIntMax - smallIntMin + 1]*pyobj.Int
	interned  map[string]*pyobj.Str
	emptyStr  *pyobj.Str

	// Namespaces.
	Builtins *pyobj.Dict
	Globals  *pyobj.Dict

	// Data segment for immortal objects.
	data *mem.Region

	// Code layout.
	interpSpace *emit.CodeSpace
	clibSpace   *emit.CodeSpace
	jitSpace    *emit.CodeSpace
	opPC        [pycode.NumOpcodes]uint64
	hp          helperPCs

	// Per-code materialized constants.
	constCache map[*pycode.Code]*codeData

	// Quickening + inline caches (quicken.go). quicken gates bytecode
	// rewriting at materialize time; icFlushEvery, when nonzero, flushes
	// every cache after that many fills (the difftest invalidation-churn
	// leg). icFills counts lifetime cache fills.
	quicken      bool
	icFlushEvery uint64
	icFills      uint64
	// Tier-2 quickening (quicken_poly.go / quicken_fuse.go). polyICs
	// gates promotion of missing monomorphic sites to polymorphic stubs;
	// fusion gates the superinstruction pass (always off under a tracer —
	// recorded traces must see one instruction per dispatch); intFast
	// gates the speculative unboxed-int rewrites. fuseFlushEvery, when
	// nonzero, de-fuses (odd trips) and re-fuses (even trips) every
	// fusable pair after that many tier-2 fast-path executions — the
	// difftest fusion-churn leg. intFastMaxAbs caps the operand magnitude
	// the int fast path accepts (difftest's forced-deopt leg sets it to
	// 1; 0 means no cap beyond real int64 overflow).
	polyICs        bool
	fusion         bool
	intFast        bool
	fuseFlushEvery uint64
	fuseTicks      uint64
	fuseFlushed    bool
	intFastMaxAbs  int64
	// Portable IC seed (icseed.go). icSeed is the armed warm-start hint
	// set; seedUnits is its per-run binding from code pointers to units,
	// built by bindSeed when RunCode starts.
	icSeed    *ICSeed
	seedUnits map[*pycode.Code]*SeedUnit

	// Builtin implementations indexed by BuiltinID.
	builtinImpls []builtinImpl

	// Execution state.
	frame      *pyobj.Frame
	depth      int
	maxDepth   int
	tracer     Tracer
	regexCache map[string]*rePattern
	rng        uint64 // deterministic PRNG state for the random module
	iterations uint64 // executed bytecodes (diagnostics)

	// Resource governor state (governor.go). nextCheck is the iteration
	// count at which dispatch enters the governor slow path — one compare
	// on the hot path covers every armed limit.
	limits         Limits
	nextCheck      uint64
	stepBase       uint64
	deadlineAt     time.Time
	recursionLimit int
	outBytes       uint64
	// Cooperative step-slicing (governor.go). When yieldFn is installed,
	// the governor slow path invokes it every sliceSteps bytecodes; the
	// hook may block (parking the VM's goroutine with the Python frame
	// stack intact) and returns the parked duration, which is credited
	// back to deadlineAt so scheduling delay never trips the wall-clock
	// budget. Independent of Limits: an unlimited job still yields.
	sliceSteps uint64
	sliceBase  uint64
	yieldFn    func() time.Duration
	// unwound captures the frame stack while a Go panic unwinds
	// (crash-isolation snapshot; see noteUnwind). unwoundTotal counts
	// every unwound frame, including those past the snapshot cap.
	unwound      []FrameInfo
	unwoundTotal int

	// Counters.
	Stats VMStats
}

// VMStats counts interpreter activity.
type VMStats struct {
	Bytecodes  uint64
	Calls      uint64
	CCalls     uint64
	FrameAlloc uint64
	// IC counts inline-cache activity per site kind (quicken.go).
	IC ICStats
}

type codeData struct {
	consts     []pyobj.Object
	constsAddr uint64
	codeAddr   uint64
	namesAddr  uint64
	nameObjs   []*pyobj.Str
	// quick is this VM's quickened copy of Code.Code (nil when
	// quickening is off or the code object has no cache sites); caches
	// are the per-site inline-cache slots indexed by Code.SiteOf, and
	// icAddr is the simulated address of the slot array. Per-VM by
	// design: code objects are shared across concurrently executing
	// VMs, so neither the rewritten instructions nor the mutable cache
	// state may live on the code object.
	quick  []pycode.Instr
	caches []pyobj.ICache
	icAddr uint64
	// fused records the superinstruction rewrites applied to quick, for
	// mid-run de-fusion/re-fusion (quicken_fuse.go). Atomic pairs
	// (COMPARE_POP_JUMP, LOAD_FAST_LOAD_FAST) are rewritable at any
	// dispatch boundary; attr-call pairs are never de-fused (their two
	// halves bracket live stack state) and deoptimize per-execution
	// through the nil-marker path instead.
	fused []fusedSite
}

// helperPCs are the code blocks of the interpreter's C helper routines.
type helperPCs struct {
	dispatchLoop,
	dictGet, dictSet, binOpSlow, cmpSlow, getItem, setItem,
	getAttr, setAttr, iterNext, getIter, callPy, callC, allocObj,
	buildSeq, unpack, strOps, truthy, frameAlloc uint64
}

// New creates a VM over the engine with the given heap. The caller wires
// heap roots via vm (SetRoots is called here).
func New(eng *emit.Engine, heapCfg gc.Config, stdout io.Writer) *VM {
	interpRegion := mem.NewRegion("interp-code", mem.InterpCodeBase, mem.CLibCodeBase-mem.InterpCodeBase)
	clibRegion := mem.NewRegion("clib-code", mem.CLibCodeBase, mem.JITCodeBase-mem.CLibCodeBase)
	vm := &VM{
		Eng:         eng,
		Stdout:      stdout,
		interned:    make(map[string]*pyobj.Str),
		data:        mem.NewRegion("data", mem.DataBase, mem.HeapBase-mem.DataBase),
		interpSpace: emit.NewCodeSpace(interpRegion),
		clibSpace:   emit.NewCodeSpace(clibRegion),
		constCache:  make(map[*pycode.Code]*codeData),
		quicken:     true,
		polyICs:     true,
		fusion:      true,
		intFast:     true,
		rng:         0x9E3779B97F4A7C15,
	}
	vm.jitSpace = emit.NewCodeSpace(mem.NewRegion("jit-code", mem.JITCodeBase, mem.DataBase-mem.JITCodeBase))
	vm.Heap = gc.New(heapCfg, eng, vm.interpSpace)
	vm.Heap.SetRoots(gc.RootFunc(vm.roots))
	// Allocation failure of any kind surfaces as MemoryError, and GC entry
	// polls the execution deadline (no-ops until limits are armed).
	vm.Heap.SetOOM(vm.raiseMemoryError)
	vm.Heap.SetTick(vm.pollDeadline)
	vm.recursionLimit = maxRecursion
	vm.nextCheck = ^uint64(0)

	// Opcode handler code blocks (the big dispatch switch's arms).
	for op := 0; op < pycode.NumOpcodes; op++ {
		vm.opPC[op] = vm.interpSpace.Block(96)
	}
	vm.hp = helperPCs{
		dispatchLoop: vm.interpSpace.Block(48),
		dictGet:      vm.interpSpace.Block(64),
		dictSet:      vm.interpSpace.Block(96),
		binOpSlow:    vm.interpSpace.Block(160),
		cmpSlow:      vm.interpSpace.Block(128),
		getItem:      vm.interpSpace.Block(96),
		setItem:      vm.interpSpace.Block(96),
		getAttr:      vm.interpSpace.Block(128),
		setAttr:      vm.interpSpace.Block(96),
		iterNext:     vm.interpSpace.Block(64),
		getIter:      vm.interpSpace.Block(64),
		callPy:       vm.interpSpace.Block(192),
		callC:        vm.interpSpace.Block(96),
		allocObj:     vm.interpSpace.Block(48),
		buildSeq:     vm.interpSpace.Block(64),
		unpack:       vm.interpSpace.Block(64),
		strOps:       vm.interpSpace.Block(256),
		truthy:       vm.interpSpace.Block(48),
		frameAlloc:   vm.interpSpace.Block(64),
	}

	vm.initSingletons()
	vm.Builtins = vm.newImmortalDict()
	vm.registerBuiltins()
	vm.Globals = nil // created per module run
	return vm
}

// SetTracer installs the JIT tracer. Superinstruction fusion is
// incompatible with trace recording (a fused dispatch retires two
// logical bytecodes, but RecordInstr must see exactly one generic op per
// dispatch), so installing a tracer de-fuses every existing quickened
// stream and disables the fusion pass for future materializations.
func (vm *VM) SetTracer(t Tracer) {
	vm.tracer = t
	if t != nil {
		for _, cd := range vm.constCache {
			vm.defuseAll(cd)
		}
	}
}

// SetStdout redirects program output to w (the differential oracle's
// output-capture hook). Passing nil discards output.
func (vm *VM) SetStdout(w io.Writer) {
	if w == nil {
		w = io.Discard
	}
	vm.Stdout = w
}

// Snapshot is a point-in-time copy of the VM's activity counters together
// with the heap's, for cross-mode invariant checking.
type Snapshot struct {
	VM       VMStats
	Heap     gc.Stats
	MaxDepth int
	// Bytecodes mirrors VM.Bytecodes for convenience.
	Bytecodes uint64
}

// StatsSnapshot returns the current VM + heap counters.
func (vm *VM) StatsSnapshot() Snapshot {
	return Snapshot{
		VM:        vm.Stats,
		Heap:      vm.Heap.Stats,
		MaxDepth:  vm.maxDepth,
		Bytecodes: vm.Stats.Bytecodes,
	}
}

// roots enumerates GC roots: the live frame chain (locals and evaluation
// stacks), module globals, and builtins.
func (vm *VM) roots(visit func(pyobj.Object)) {
	if vm.ExtraRoots != nil {
		vm.ExtraRoots(visit)
	}
	for f := vm.frame; f != nil; f = f.Back {
		visit(f)
	}
	if vm.Globals != nil {
		visit(vm.Globals)
	}
	visit(vm.Builtins)
}

// ---- Immortal object construction (data segment, no heap traffic) ----

func (vm *VM) dataAlloc(size uint64) uint64 { return vm.data.MustAlloc(size, 16) }

// typeAddrsOnce guards the one-time assignment of the shared
// pyobj.Types addresses: every VM's data segment starts at the same
// fixed base, so all VMs compute identical addresses, and concurrent VM
// construction (worker pools) must not race on the write.
var typeAddrsOnce sync.Once

func (vm *VM) initSingletons() {
	// Type objects live at the start of the data segment so slot
	// addresses are valid. Every VM reserves the space; the first
	// publishes the (identical) addresses into the shared type objects.
	assigned := false
	typeAddrsOnce.Do(func() {
		assigned = true
		for _, t := range pyobj.Types {
			t.Addr = vm.dataAlloc(256)
		}
	})
	if !assigned {
		for range pyobj.Types {
			vm.dataAlloc(256)
		}
	}
	vm.None = &pyobj.None{H: pyobj.Header{Addr: vm.dataAlloc(16), Size: 16, Immortal: true}}
	vm.True = &pyobj.Bool{H: pyobj.Header{Addr: vm.dataAlloc(24), Size: 24, Immortal: true}, V: true}
	vm.False = &pyobj.Bool{H: pyobj.Header{Addr: vm.dataAlloc(24), Size: 24, Immortal: true}, V: false}
	for i := range vm.smallInts {
		vm.smallInts[i] = &pyobj.Int{
			H: pyobj.Header{Addr: vm.dataAlloc(24), Size: 24, Immortal: true},
			V: int64(i + smallIntMin),
		}
	}
	vm.emptyStr = vm.Intern("")
}

// Intern returns the canonical immortal Str for s, creating it on first
// use (names, constants, and common runtime strings are interned, as in
// CPython).
func (vm *VM) Intern(s string) *pyobj.Str {
	if o, ok := vm.interned[s]; ok {
		return o
	}
	size := uint64(40 + len(s))
	o := &pyobj.Str{H: pyobj.Header{Addr: vm.dataAlloc(size), Size: uint32(size), Immortal: true}, V: s}
	o.DataAddr = o.H.Addr + 40
	vm.interned[s] = o
	return o
}

// newImmortalDict builds a dict in the data segment (builtins, module
// namespaces of builtin modules).
func (vm *VM) newImmortalDict() *pyobj.Dict {
	d := pyobj.NewDictData()
	d.H = pyobj.Header{Addr: vm.dataAlloc(48), Size: 48, Immortal: true}
	d.TableAddr = vm.dataAlloc(uint64(d.TableCap) * 24)
	return d
}

// growImmortalDict re-places an immortal dict's table after growth.
func (vm *VM) placeDictTable(d *pyobj.Dict, cat core.Category) {
	if d.Hdr().Immortal {
		d.TableAddr = vm.dataAlloc(uint64(d.TableCap) * 24)
		return
	}
	d.TableAddr = vm.Heap.AllocPayload(uint64(d.TableCap)*24, cat)
}

// ---- Heap object constructors (emit allocation + init events) ----

// NewInt boxes v. Small ints come from the immortal cache — CPython's
// fast path: range check + table load instead of an allocation.
func (vm *VM) NewInt(v int64) *pyobj.Int {
	vm.Eng.ALU(core.Boxing, false) // range check lo
	vm.Eng.Branch(core.Boxing, v >= smallIntMin && v <= smallIntMax)
	if v >= smallIntMin && v <= smallIntMax {
		o := vm.smallInts[v-smallIntMin]
		vm.Eng.Load(core.Boxing, o.H.Addr, false)
		vm.Heap.Incref(o)
		return o
	}
	o := &pyobj.Int{V: v}
	vm.Heap.Allocate(o, core.Boxing)
	vm.Eng.Store(core.Boxing, o.H.Addr+16)
	return o
}

// NewFloat boxes v.
func (vm *VM) NewFloat(v float64) *pyobj.Float {
	o := &pyobj.Float{V: v}
	vm.Heap.Allocate(o, core.Boxing)
	vm.Eng.Store(core.Boxing, o.H.Addr+16)
	return o
}

// NewBool returns the True/False singleton.
func (vm *VM) NewBool(v bool) *pyobj.Bool {
	if v {
		vm.Heap.Incref(vm.True)
		return vm.True
	}
	vm.Heap.Incref(vm.False)
	return vm.False
}

// NewStr allocates a heap string, emitting stores for the character data.
func (vm *VM) NewStr(s string) *pyobj.Str {
	o := &pyobj.Str{V: s}
	vm.Heap.Allocate(o, core.Execute)
	if len(s) > 24 {
		o.DataAddr = vm.Heap.AllocPayload(uint64(len(s)), core.Execute)
	} else {
		o.DataAddr = o.H.Addr + 40
	}
	// Length store plus data stores, word granularity (capped).
	vm.Eng.Store(core.Execute, o.H.Addr+16)
	words := (len(s) + 7) / 8
	if words > 64 {
		words = 64
	}
	for i := 0; i < words; i++ {
		vm.Eng.Store(core.Execute, o.DataAddr+uint64(i*8))
	}
	return o
}

// NewList allocates a list with the given elements (takes ownership of the
// references).
func (vm *VM) NewList(items []pyobj.Object) *pyobj.List {
	o := &pyobj.List{Items: items}
	capacity := len(items)
	if capacity < 4 {
		capacity = 4
	}
	o.ItemsCap = capacity
	vm.Heap.Allocate(o, core.Execute)
	o.ItemsAddr = vm.Heap.AllocPayload(uint64(capacity)*8, core.Execute)
	vm.Eng.Store(core.Execute, o.H.Addr+16) // ob_size
	for i := range items {
		vm.Eng.Store(core.Execute, o.ItemAddr(i))
		vm.barrier(o, items[i])
	}
	return o
}

// NewTuple allocates a tuple (elements stored inline).
func (vm *VM) NewTuple(items []pyobj.Object) *pyobj.Tuple {
	o := &pyobj.Tuple{Items: items}
	vm.Heap.Allocate(o, core.Execute)
	for i := range items {
		vm.Eng.Store(core.Execute, o.ItemAddr(i))
		vm.barrier(o, items[i])
	}
	return o
}

// NewDict allocates an empty dict.
func (vm *VM) NewDict() *pyobj.Dict {
	d := pyobj.NewDictData()
	vm.Heap.Allocate(d, core.Execute)
	d.TableAddr = vm.Heap.AllocPayload(uint64(d.TableCap)*24, core.Execute)
	return d
}

// NewRange allocates an xrange object.
func (vm *VM) NewRange(start, stop, step int64) *pyobj.Range {
	o := &pyobj.Range{Start: start, Stop: stop, Step: step}
	vm.Heap.Allocate(o, core.Execute)
	vm.Eng.Store(core.Execute, o.H.Addr+16)
	vm.Eng.Store(core.Execute, o.H.Addr+24)
	return o
}

// barrier applies the generational write barrier for a reference store.
func (vm *VM) barrier(owner, target pyobj.Object) {
	vm.Heap.WriteBarrier(owner, target)
}

// ---- Reference-count helpers ----

// Incref/Decref forward to the heap (no-ops under generational GC).
func (vm *VM) Incref(o pyobj.Object) { vm.Heap.Incref(o) }
func (vm *VM) Decref(o pyobj.Object) { vm.Heap.Decref(o) }

// ---- Value stack (emits reg-transfer address math + stack traffic) ----

func (vm *VM) push(f *pyobj.Frame, v pyobj.Object) {
	vm.Eng.ALU(core.RegTransfer, false) // compute stack slot address
	vm.Eng.Store(core.Stack, f.StackAddr(f.Sp))
	f.Stack[f.Sp] = v
	f.Sp++
}

func (vm *VM) pop(f *pyobj.Frame) pyobj.Object {
	f.Sp--
	vm.Eng.ALU(core.RegTransfer, false)
	vm.Eng.Load(core.Stack, f.StackAddr(f.Sp), false)
	v := f.Stack[f.Sp]
	f.Stack[f.Sp] = nil
	return v
}

func (vm *VM) top(f *pyobj.Frame) pyobj.Object {
	vm.Eng.ALU(core.RegTransfer, false)
	vm.Eng.Load(core.Stack, f.StackAddr(f.Sp-1), false)
	return f.Stack[f.Sp-1]
}

func (vm *VM) peek(f *pyobj.Frame, depth int) pyobj.Object {
	vm.Eng.ALU(core.RegTransfer, false)
	vm.Eng.Load(core.Stack, f.StackAddr(f.Sp-depth), false)
	return f.Stack[f.Sp-depth]
}

func (vm *VM) set(f *pyobj.Frame, depth int, v pyobj.Object) {
	vm.Eng.ALU(core.RegTransfer, false)
	vm.Eng.Store(core.Stack, f.StackAddr(f.Sp-depth))
	f.Stack[f.Sp-depth] = v
}

// ---- Dict operations with event emission ----

// dictProbeEvents emits the hash + probe traffic of a dict operation,
// charged to cat (NameResolution for namespace lookups, Execute for
// program dicts — the paper's origin-PC distinction).
func (vm *VM) dictProbeEvents(d *pyobj.Dict, res pyobj.LookupResult, hashAddr uint64, cat core.Category) {
	if hashAddr != 0 {
		// Interned keys carry a cached hash: single load.
		vm.Eng.Load(cat, hashAddr, false)
	} else {
		vm.Eng.ALUn(cat, 2) // hash computation
	}
	probes := res.Probes
	if probes < 1 {
		probes = 1
	}
	for p := 0; p < probes; p++ {
		vm.Eng.ALU(cat, true)                           // slot index
		vm.Eng.Load(cat, d.SlotAddr(res.Hash, p), true) // key pointer
		vm.Eng.ALU(cat, true)                           // compare
		vm.Eng.Branch(cat, p == probes-1)
	}
}

// DictGetStr looks up an interned name in a namespace dict, emitting a C
// call to the lookup helper plus probe traffic.
func (vm *VM) DictGetStr(d *pyobj.Dict, name string, cat core.Category) (pyobj.Object, bool) {
	vm.Eng.CCall(core.CFunctionCall, vm.hp.dictGet, emit.DefaultCCall)
	ko := vm.Intern(name)
	v, res, ok := d.GetStr(name)
	vm.dictProbeEvents(d, res, ko.H.Addr+24, cat)
	if ok {
		vm.Eng.Load(cat, d.SlotAddr(res.Hash, res.Probes-1)+8, true) // value pointer
	}
	vm.Eng.CReturn(core.CFunctionCall, emit.DefaultCCall)
	return v, ok
}

// DictGet looks up an arbitrary key (program dict access).
func (vm *VM) DictGet(d *pyobj.Dict, key pyobj.Object, cat core.Category) (pyobj.Object, bool) {
	vm.Eng.CCall(core.CFunctionCall, vm.hp.dictGet, emit.DefaultCCall)
	v, res, ok := d.Get(key)
	if !ok && res.Probes == 0 {
		vm.Eng.CReturn(core.CFunctionCall, emit.DefaultCCall)
		Raise("TypeError", "unhashable type: '%s'", pyobj.TypeName(key))
	}
	hashAddr := uint64(0)
	if _, isStr := key.(*pyobj.Str); isStr && key.Hdr().Immortal {
		hashAddr = key.Hdr().Addr + 24
	}
	vm.dictProbeEvents(d, res, hashAddr, cat)
	if ok {
		vm.Eng.Load(cat, d.SlotAddr(res.Hash, res.Probes-1)+8, true)
	}
	vm.Eng.CReturn(core.CFunctionCall, emit.DefaultCCall)
	return v, ok
}

// DictSet stores key -> value in d (program or namespace store), handling
// table growth, refcounts, and the write barrier.
func (vm *VM) DictSet(d *pyobj.Dict, key, value pyobj.Object, cat core.Category) {
	vm.Eng.CCall(core.CFunctionCall, vm.hp.dictSet, emit.DefaultCCall)
	res, ok := d.Set(key, value)
	if !ok {
		vm.Eng.CReturn(core.CFunctionCall, emit.DefaultCCall)
		Raise("TypeError", "unhashable type: '%s'", pyobj.TypeName(key))
	}
	hashAddr := uint64(0)
	if _, isStr := key.(*pyobj.Str); isStr && key.Hdr().Immortal {
		hashAddr = key.Hdr().Addr + 24
	}
	vm.dictProbeEvents(d, res, hashAddr, cat)
	if res.Found {
		// Overwrite: decref the old value.
		vm.Eng.Load(cat, d.SlotAddr(res.Hash, res.Probes-1)+8, true)
	} else {
		vm.Incref(key)
	}
	vm.Incref(value)
	vm.Eng.Store(cat, d.SlotAddr(res.Hash, res.Probes-1)+8)
	vm.barrier(d, key)
	vm.barrier(d, value)
	if res.Grew {
		vm.placeDictTable(d, cat)
		// Rehash traffic: one load+store per live entry (capped).
		n := d.Len()
		if n > 256 {
			n = 256
		}
		for i := 0; i < n; i++ {
			vm.Eng.Load(cat, d.TableAddr+uint64(i)*24, false)
			vm.Eng.Store(cat, d.TableAddr+uint64(i)*24)
		}
	}
	vm.Eng.CReturn(core.CFunctionCall, emit.DefaultCCall)
}

// DictSetStr stores an interned-name binding (namespace stores, class
// namespaces, instance attributes).
func (vm *VM) DictSetStr(d *pyobj.Dict, name string, value pyobj.Object, cat core.Category) {
	vm.DictSet(d, vm.Intern(name), value, cat)
}

// ---- Error-check helper ----

// errCheck emits an error-check compare+branch; failed carries whether the
// error path is taken (which raises).
func (vm *VM) errCheck(failed bool) {
	vm.Eng.ALU(core.ErrorCheck, false)
	vm.Eng.Branch(core.ErrorCheck, failed)
}

// Truthy evaluates Python truth with events (bool fast path; richer types
// via the rich-control-flow category, as the paper's condition-evaluation
// overhead).
func (vm *VM) Truthy(o pyobj.Object) bool {
	vm.Eng.Load(core.TypeCheck, o.Hdr().Addr, false)
	switch v := o.(type) {
	case *pyobj.Bool:
		vm.Eng.Branch(core.TypeCheck, true)
		vm.Eng.Load(core.Boxing, v.H.Addr+16, true)
		return v.V
	case *pyobj.Int:
		vm.Eng.Branch(core.TypeCheck, true)
		vm.Eng.Load(core.Boxing, v.H.Addr+16, true)
		vm.Eng.ALU(core.Execute, true)
		return v.V != 0
	default:
		vm.Eng.Branch(core.TypeCheck, false)
		// Slow path: PyObject_IsTrue through tp_len/tp_nonzero.
		vm.Eng.Load(core.FunctionResolution, o.PyType().SlotAddr(pyobj.SlotLen), true)
		vm.Eng.CCall(core.CFunctionCall, vm.hp.truthy, indirectCCall)
		vm.Eng.ALUn(core.RichControlFlow, 2)
		t := pyobj.Truthy(o)
		vm.Eng.Branch(core.RichControlFlow, t)
		vm.Eng.CReturn(core.CFunctionCall, indirectCCall)
		return t
	}
}

var indirectCCall = emit.CCallCost{SavedRegs: 3, FrameBytes: 48, Indirect: true}

// Iterations returns the number of bytecodes executed.
func (vm *VM) Iterations() uint64 { return vm.iterations }

// FrameDepth returns the current Python call depth.
func (vm *VM) FrameDepth() int { return vm.depth }

// CurrentFrame returns the executing frame (JIT support).
func (vm *VM) CurrentFrame() *pyobj.Frame { return vm.frame }

// nextRand steps the deterministic xorshift PRNG backing the random
// module.
func (vm *VM) nextRand() uint64 {
	x := vm.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	vm.rng = x
	return x
}

// ResetRand reseeds the PRNG (between measurement runs for determinism).
func (vm *VM) ResetRand() { vm.rng = 0x9E3779B97F4A7C15 }

// formatForPrint renders an object as the print builtin does.
func formatForPrint(o pyobj.Object) string {
	return pyobj.StrOf(o)
}

// joinReprs is shared by error messages.
func joinReprs(items []pyobj.Object) string {
	parts := make([]string, len(items))
	for i, it := range items {
		parts[i] = pyobj.Repr(it)
	}
	return strings.Join(parts, ", ")
}
