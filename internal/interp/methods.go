package interp

import (
	"strings"

	"repro/internal/core"
	"repro/internal/pyobj"
)

// ---- list methods ----

func miListAppend(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("list.append", args, 1, 1)
	vm.ListAppend(vm.wantList("list.append", self), args[0])
	return nil
}

func miListPop(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("list.pop", args, 0, 1)
	l := vm.wantList("list.pop", self)
	vm.errCheck(len(l.Items) == 0)
	if len(l.Items) == 0 {
		Raise("IndexError", "pop from empty list")
	}
	idx := len(l.Items) - 1
	if len(args) == 1 {
		idx = vm.normIndex(vm.wantInt("list.pop", args[0]), len(l.Items), "pop index out of range")
	}
	v := l.Items[idx]
	moved := len(l.Items) - idx - 1
	if moved > eventCap {
		moved = eventCap
	}
	for i := 0; i < moved; i++ {
		vm.Eng.Load(core.Execute, l.ItemAddr(idx+i+1), false)
		vm.Eng.Store(core.Execute, l.ItemAddr(idx+i))
	}
	vm.Eng.Store(core.Execute, l.H.Addr+16)
	l.Items = append(l.Items[:idx], l.Items[idx+1:]...)
	// Transfer the list's reference to the caller.
	return v
}

func miListSort(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("list.sort", args, 0, 1)
	l := vm.wantList("list.sort", self)
	if len(args) == 1 {
		// key function variant
		type keyed struct {
			key pyobj.Object
			val pyobj.Object
		}
		ks := make([]keyed, len(l.Items))
		for i, v := range l.Items {
			ks[i] = keyed{key: vm.CallObject(args[0], []pyobj.Object{v}), val: v}
		}
		keys := make([]pyobj.Object, len(ks))
		perm := make([]int, len(ks))
		for i := range ks {
			keys[i] = ks[i].key
			perm[i] = i
		}
		vm.sortPermutation(keys, perm)
		out := make([]pyobj.Object, len(ks))
		for i, p := range perm {
			out[i] = ks[p].val
		}
		copy(l.Items, out)
		for i := range ks {
			vm.Decref(ks[i].key)
		}
		return nil
	}
	vm.sortObjects(l.Items)
	// Result stores.
	n := len(l.Items)
	if n > eventCap {
		n = eventCap
	}
	for i := 0; i < n; i++ {
		vm.Eng.Store(core.Execute, l.ItemAddr(i))
	}
	return nil
}

// sortPermutation stably sorts perm by keys with comparison events.
func (vm *VM) sortPermutation(keys []pyobj.Object, perm []int) {
	failed := false
	stableSortBy(perm, func(a, b int) bool {
		vm.Eng.ALU(core.Execute, true)
		vm.Eng.Branch(core.Execute, false)
		c, ok := pyobj.Compare(keys[a], keys[b])
		if !ok {
			failed = true
			return false
		}
		return c < 0
	})
	vm.errCheck(failed)
	if failed {
		Raise("TypeError", "unorderable sort keys")
	}
}

// stableSortBy is insertion-based merge sort over ints (avoids pulling in
// reflect-heavy sort for a permutation).
func stableSortBy(a []int, less func(x, y int) bool) {
	if len(a) < 2 {
		return
	}
	buf := make([]int, len(a))
	var ms func(lo, hi int)
	ms = func(lo, hi int) {
		if hi-lo < 2 {
			return
		}
		mid := (lo + hi) / 2
		ms(lo, mid)
		ms(mid, hi)
		i, j, k := lo, mid, lo
		for i < mid && j < hi {
			if less(a[j], a[i]) {
				buf[k] = a[j]
				j++
			} else {
				buf[k] = a[i]
				i++
			}
			k++
		}
		for i < mid {
			buf[k] = a[i]
			i++
			k++
		}
		for j < hi {
			buf[k] = a[j]
			j++
			k++
		}
		copy(a[lo:hi], buf[lo:hi])
	}
	ms(0, len(a))
}

func miListExtend(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("list.extend", args, 1, 1)
	l := vm.wantList("list.extend", self)
	vm.iterate(args[0], func(v pyobj.Object) {
		vm.ListAppend(l, v)
	})
	return nil
}

func miListInsert(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("list.insert", args, 2, 2)
	l := vm.wantList("list.insert", self)
	n := vm.wantInt("list.insert", args[0])
	idx := int(n)
	if idx < 0 {
		idx += len(l.Items)
		if idx < 0 {
			idx = 0
		}
	}
	if idx > len(l.Items) {
		idx = len(l.Items)
	}
	vm.ListAppend(l, args[0]) // grow by one (placeholder)
	moved := len(l.Items) - idx - 1
	if moved > eventCap {
		moved = eventCap
	}
	for i := 0; i < moved; i++ {
		vm.Eng.Load(core.Execute, l.ItemAddr(len(l.Items)-2-i), false)
		vm.Eng.Store(core.Execute, l.ItemAddr(len(l.Items)-1-i))
	}
	copy(l.Items[idx+1:], l.Items[idx:len(l.Items)-1])
	// Replace the placeholder reference with the real element.
	vm.Decref(args[0])
	l.Items[idx] = args[1]
	vm.Incref(args[1])
	vm.barrier(l, args[1])
	vm.Eng.Store(core.Execute, l.ItemAddr(idx))
	return nil
}

func miListIndex(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("list.index", args, 1, 1)
	l := vm.wantList("list.index", self)
	for i, v := range l.Items {
		if i < eventCap {
			vm.Eng.Load(core.Execute, l.ItemAddr(i), false)
			vm.Eng.ALU(core.Execute, true)
		}
		if pyobj.Equal(v, args[0]) {
			return vm.NewInt(int64(i))
		}
	}
	vm.errCheck(true)
	Raise("ValueError", "%s is not in list", pyobj.Repr(args[0]))
	return nil
}

func miListRemove(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("list.remove", args, 1, 1)
	l := vm.wantList("list.remove", self)
	for i, v := range l.Items {
		if i < eventCap {
			vm.Eng.Load(core.Execute, l.ItemAddr(i), false)
			vm.Eng.ALU(core.Execute, true)
		}
		if pyobj.Equal(v, args[0]) {
			old := l.Items[i]
			copy(l.Items[i:], l.Items[i+1:])
			l.Items = l.Items[:len(l.Items)-1]
			vm.Decref(old)
			return nil
		}
	}
	vm.errCheck(true)
	Raise("ValueError", "list.remove(x): x not in list")
	return nil
}

func miListReverse(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("list.reverse", args, 0, 0)
	l := vm.wantList("list.reverse", self)
	n := len(l.Items)
	for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
		if i < eventCap {
			vm.Eng.Load(core.Execute, l.ItemAddr(i), false)
			vm.Eng.Load(core.Execute, l.ItemAddr(j), false)
			vm.Eng.Store(core.Execute, l.ItemAddr(i))
			vm.Eng.Store(core.Execute, l.ItemAddr(j))
		}
		l.Items[i], l.Items[j] = l.Items[j], l.Items[i]
	}
	return nil
}

func miListCount(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("list.count", args, 1, 1)
	l := vm.wantList("list.count", self)
	var n int64
	for i, v := range l.Items {
		if i < eventCap {
			vm.Eng.Load(core.Execute, l.ItemAddr(i), false)
			vm.Eng.ALU(core.Execute, true)
		}
		if pyobj.Equal(v, args[0]) {
			n++
		}
	}
	return vm.NewInt(n)
}

// ---- dict methods ----

func wantDict(vm *VM, name string, o pyobj.Object) *pyobj.Dict {
	d, ok := o.(*pyobj.Dict)
	vm.errCheck(!ok)
	if !ok {
		Raise("TypeError", "%s: a dict is required", name)
	}
	return d
}

func miDictGet(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("dict.get", args, 1, 2)
	d := wantDict(vm, "dict.get", self)
	v, found := vm.DictGet(d, args[0], core.Execute)
	if found {
		vm.Incref(v)
		return v
	}
	if len(args) == 2 {
		vm.Incref(args[1])
		return args[1]
	}
	vm.Incref(vm.None)
	return vm.None
}

func miDictKeys(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("dict.keys", args, 0, 0)
	d := wantDict(vm, "dict.keys", self)
	var items []pyobj.Object
	d.ForEach(func(k, _ pyobj.Object) {
		vm.Eng.Load(core.Execute, d.TableAddr, false)
		vm.Incref(k)
		items = append(items, k)
	})
	return vm.NewList(items)
}

func miDictValues(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("dict.values", args, 0, 0)
	d := wantDict(vm, "dict.values", self)
	var items []pyobj.Object
	d.ForEach(func(_, v pyobj.Object) {
		vm.Eng.Load(core.Execute, d.TableAddr, false)
		vm.Incref(v)
		items = append(items, v)
	})
	return vm.NewList(items)
}

func miDictItems(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("dict.items", args, 0, 0)
	d := wantDict(vm, "dict.items", self)
	var items []pyobj.Object
	d.ForEach(func(k, v pyobj.Object) {
		vm.Eng.Load(core.Execute, d.TableAddr, false)
		vm.Incref(k)
		vm.Incref(v)
		items = append(items, vm.NewTuple([]pyobj.Object{k, v}))
	})
	return vm.NewList(items)
}

func miDictHasKey(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("dict.has_key", args, 1, 1)
	d := wantDict(vm, "dict.has_key", self)
	_, found := vm.DictGet(d, args[0], core.Execute)
	return vm.NewBool(found)
}

func miDictSetdefault(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("dict.setdefault", args, 1, 2)
	d := wantDict(vm, "dict.setdefault", self)
	if v, found := vm.DictGet(d, args[0], core.Execute); found {
		vm.Incref(v)
		return v
	}
	var def pyobj.Object = vm.None
	if len(args) == 2 {
		def = args[1]
	}
	vm.DictSet(d, args[0], def, core.Execute)
	vm.Incref(def)
	return def
}

func miDictPop(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("dict.pop", args, 1, 2)
	d := wantDict(vm, "dict.pop", self)
	if v, found := vm.DictGet(d, args[0], core.Execute); found {
		vm.Incref(v)
		vm.DelItem(d, args[0])
		return v
	}
	if len(args) == 2 {
		vm.Incref(args[1])
		return args[1]
	}
	Raise("KeyError", "%s", pyobj.Repr(args[0]))
	return nil
}

func miDictCopy(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("dict.copy", args, 0, 0)
	d := wantDict(vm, "dict.copy", self)
	out := vm.NewDict()
	d.ForEach(func(k, v pyobj.Object) {
		vm.DictSet(out, k, v, core.Execute)
	})
	return out
}

func miDictUpdate(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	vm.argCheck("dict.update", args, 1, 1)
	d := wantDict(vm, "dict.update", self)
	src := wantDict(vm, "dict.update", args[0])
	src.ForEach(func(k, v pyobj.Object) {
		vm.DictSet(d, k, v, core.Execute)
	})
	return nil
}

func dictIter(vm *VM, self pyobj.Object, mode pyobj.DictIterMode, name string) pyobj.Object {
	d := wantDict(vm, name, self)
	it := &pyobj.DictIter{D: d, Mode: mode}
	vm.Heap.Allocate(it, core.ObjectAllocation)
	vm.Incref(d)
	vm.barrier(it, d)
	return it
}

func miDictIterkeys(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	return dictIter(vm, self, pyobj.DictIterKeys, "dict.iterkeys")
}

func miDictItervalues(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	return dictIter(vm, self, pyobj.DictIterValues, "dict.itervalues")
}

func miDictIteritems(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	return dictIter(vm, self, pyobj.DictIterItems, "dict.iteritems")
}

// ---- tuple methods ----

func miTupleIndex(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	t, ok := self.(*pyobj.Tuple)
	if !ok {
		Raise("TypeError", "tuple.index: a tuple is required")
	}
	vm.argCheck("tuple.index", args, 1, 1)
	for i, v := range t.Items {
		vm.Eng.ALU(core.Execute, true)
		if pyobj.Equal(v, args[0]) {
			return vm.NewInt(int64(i))
		}
	}
	Raise("ValueError", "tuple.index(x): x not in tuple")
	return nil
}

func miTupleCount(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	t, ok := self.(*pyobj.Tuple)
	if !ok {
		Raise("TypeError", "tuple.count: a tuple is required")
	}
	vm.argCheck("tuple.count", args, 1, 1)
	var n int64
	for _, v := range t.Items {
		vm.Eng.ALU(core.Execute, true)
		if pyobj.Equal(v, args[0]) {
			n++
		}
	}
	return vm.NewInt(n)
}

// ---- str methods ----

func (vm *VM) registerStrMethods(tm func(pyobj.TypeID, string, pyobj.BuiltinID)) {
	t := pyobj.TStr
	tm(t, "join", vm.reg("str.join", 96, false, false, miStrJoin))
	tm(t, "split", vm.reg("str.split", 96, true, false, miStrSplit))
	tm(t, "upper", vm.reg("str.upper", 48, true, false, miStrUpper))
	tm(t, "lower", vm.reg("str.lower", 48, true, false, miStrLower))
	tm(t, "strip", vm.reg("str.strip", 48, true, false, miStrStrip))
	tm(t, "lstrip", vm.reg("str.lstrip", 32, true, false, miStrLstrip))
	tm(t, "rstrip", vm.reg("str.rstrip", 32, true, false, miStrRstrip))
	tm(t, "replace", vm.reg("str.replace", 96, false, false, miStrReplace))
	tm(t, "find", vm.reg("str.find", 64, false, false, miStrFind))
	tm(t, "rfind", vm.reg("str.rfind", 64, false, false, miStrRfind))
	tm(t, "startswith", vm.reg("str.startswith", 32, false, false, miStrStartswith))
	tm(t, "endswith", vm.reg("str.endswith", 32, false, false, miStrEndswith))
	tm(t, "count", vm.reg("str.count", 48, false, false, miStrCount))
	tm(t, "zfill", vm.reg("str.zfill", 32, true, false, miStrZfill))
	tm(t, "isdigit", vm.reg("str.isdigit", 24, true, false, miStrIsdigit))
	tm(t, "isalpha", vm.reg("str.isalpha", 24, true, false, miStrIsalpha))
	tm(t, "ljust", vm.reg("str.ljust", 32, true, false, miStrLjust))
	tm(t, "rjust", vm.reg("str.rjust", 32, true, false, miStrRjust))
}

func wantSelfStr(vm *VM, name string, o pyobj.Object) *pyobj.Str {
	s, ok := o.(*pyobj.Str)
	if !ok {
		Raise("TypeError", "%s requires a str receiver", name)
	}
	return s
}

func miStrJoin(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	sep := wantSelfStr(vm, "str.join", self)
	vm.argCheck("str.join", args, 1, 1)
	var parts []string
	total := 0
	vm.iterate(args[0], func(v pyobj.Object) {
		s, ok := v.(*pyobj.Str)
		if !ok {
			Raise("TypeError", "sequence item: expected string, %s found", pyobj.TypeName(v))
		}
		parts = append(parts, s.V)
		total += len(s.V)
	})
	vm.emitStrScan(sep, total)
	return vm.NewStr(strings.Join(parts, sep.V))
}

func miStrSplit(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	s := wantSelfStr(vm, "str.split", self)
	vm.argCheck("str.split", args, 0, 2)
	vm.emitStrScan(s, len(s.V))
	var parts []string
	if len(args) == 0 {
		parts = strings.Fields(s.V)
	} else {
		sep := vm.wantStr("str.split", args[0])
		if len(args) == 2 {
			n := vm.wantInt("str.split", args[1])
			parts = strings.SplitN(s.V, sep.V, int(n)+1)
		} else {
			parts = strings.Split(s.V, sep.V)
		}
	}
	items := make([]pyobj.Object, len(parts))
	for i, p := range parts {
		items[i] = vm.NewStr(p)
	}
	return vm.NewList(items)
}

func miStrUpper(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	s := wantSelfStr(vm, "str.upper", self)
	vm.emitStrScan(s, len(s.V))
	return vm.NewStr(strings.ToUpper(s.V))
}

func miStrLower(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	s := wantSelfStr(vm, "str.lower", self)
	vm.emitStrScan(s, len(s.V))
	return vm.NewStr(strings.ToLower(s.V))
}

func stripArg(vm *VM, name string, args []pyobj.Object) string {
	if len(args) == 1 {
		return vm.wantStr(name, args[0]).V
	}
	return " \t\n\r\v\f"
}

func miStrStrip(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	s := wantSelfStr(vm, "str.strip", self)
	vm.argCheck("str.strip", args, 0, 1)
	vm.emitStrScan(s, 8)
	return vm.NewStr(strings.Trim(s.V, stripArg(vm, "str.strip", args)))
}

func miStrLstrip(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	s := wantSelfStr(vm, "str.lstrip", self)
	vm.emitStrScan(s, 8)
	return vm.NewStr(strings.TrimLeft(s.V, stripArg(vm, "str.lstrip", args)))
}

func miStrRstrip(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	s := wantSelfStr(vm, "str.rstrip", self)
	vm.emitStrScan(s, 8)
	return vm.NewStr(strings.TrimRight(s.V, stripArg(vm, "str.rstrip", args)))
}

func miStrReplace(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	s := wantSelfStr(vm, "str.replace", self)
	vm.argCheck("str.replace", args, 2, 2)
	old := vm.wantStr("str.replace", args[0])
	new := vm.wantStr("str.replace", args[1])
	vm.emitStrScan(s, len(s.V))
	return vm.NewStr(strings.ReplaceAll(s.V, old.V, new.V))
}

func miStrFind(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	s := wantSelfStr(vm, "str.find", self)
	vm.argCheck("str.find", args, 1, 2)
	sub := vm.wantStr("str.find", args[0])
	start := 0
	if len(args) == 2 {
		start = int(vm.wantInt("str.find", args[1]))
		if start < 0 {
			start += len(s.V)
		}
		if start < 0 {
			start = 0
		}
		if start > len(s.V) {
			return vm.NewInt(-1)
		}
	}
	vm.emitStrScan(s, len(s.V)-start)
	i := strings.Index(s.V[start:], sub.V)
	if i < 0 {
		return vm.NewInt(-1)
	}
	return vm.NewInt(int64(i + start))
}

func miStrRfind(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	s := wantSelfStr(vm, "str.rfind", self)
	vm.argCheck("str.rfind", args, 1, 1)
	sub := vm.wantStr("str.rfind", args[0])
	vm.emitStrScan(s, len(s.V))
	return vm.NewInt(int64(strings.LastIndex(s.V, sub.V)))
}

func miStrStartswith(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	s := wantSelfStr(vm, "str.startswith", self)
	vm.argCheck("str.startswith", args, 1, 1)
	p := vm.wantStr("str.startswith", args[0])
	vm.emitStrScan(s, len(p.V))
	return vm.NewBool(strings.HasPrefix(s.V, p.V))
}

func miStrEndswith(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	s := wantSelfStr(vm, "str.endswith", self)
	vm.argCheck("str.endswith", args, 1, 1)
	p := vm.wantStr("str.endswith", args[0])
	vm.emitStrScan(s, len(p.V))
	return vm.NewBool(strings.HasSuffix(s.V, p.V))
}

func miStrCount(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	s := wantSelfStr(vm, "str.count", self)
	vm.argCheck("str.count", args, 1, 1)
	sub := vm.wantStr("str.count", args[0])
	vm.emitStrScan(s, len(s.V))
	if len(sub.V) == 0 {
		return vm.NewInt(int64(len(s.V) + 1))
	}
	return vm.NewInt(int64(strings.Count(s.V, sub.V)))
}

func miStrZfill(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	s := wantSelfStr(vm, "str.zfill", self)
	vm.argCheck("str.zfill", args, 1, 1)
	w := int(vm.wantInt("str.zfill", args[0]))
	v := s.V
	neg := strings.HasPrefix(v, "-")
	if neg {
		v = v[1:]
		w--
	}
	for len(v) < w {
		v = "0" + v
	}
	if neg {
		v = "-" + v
	}
	vm.emitStrScan(s, len(v))
	return vm.NewStr(v)
}

func miStrIsdigit(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	s := wantSelfStr(vm, "str.isdigit", self)
	vm.emitStrScan(s, len(s.V))
	if len(s.V) == 0 {
		return vm.NewBool(false)
	}
	for i := 0; i < len(s.V); i++ {
		if s.V[i] < '0' || s.V[i] > '9' {
			return vm.NewBool(false)
		}
	}
	return vm.NewBool(true)
}

func miStrIsalpha(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	s := wantSelfStr(vm, "str.isalpha", self)
	vm.emitStrScan(s, len(s.V))
	if len(s.V) == 0 {
		return vm.NewBool(false)
	}
	for i := 0; i < len(s.V); i++ {
		c := s.V[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z') {
			return vm.NewBool(false)
		}
	}
	return vm.NewBool(true)
}

func miStrLjust(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	s := wantSelfStr(vm, "str.ljust", self)
	vm.argCheck("str.ljust", args, 1, 1)
	w := int(vm.wantInt("str.ljust", args[0]))
	v := s.V
	for len(v) < w {
		v += " "
	}
	vm.emitStrScan(s, len(v))
	return vm.NewStr(v)
}

func miStrRjust(vm *VM, self pyobj.Object, args []pyobj.Object) pyobj.Object {
	s := wantSelfStr(vm, "str.rjust", self)
	vm.argCheck("str.rjust", args, 1, 1)
	w := int(vm.wantInt("str.rjust", args[0]))
	v := s.V
	for len(v) < w {
		v = " " + v
	}
	vm.emitStrScan(s, len(v))
	return vm.NewStr(v)
}
