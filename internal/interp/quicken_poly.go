package interp

import (
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/pyobj"
)

// Tier-2 polymorphic inline caches. A monomorphic LOAD_ATTR/STORE_ATTR
// site that misses with a *different* guard identity (another class,
// another instance layout) is promoted to a 2–4-way polymorphic stub: a
// linear chain of monomorphic entries walked in MRU order, each attempt
// paying one compare+branch (charged to NameResolution, like the mono
// guard). Same-identity churn (a version bump on the cached class or
// layout) refills in place instead — a chain of dead versions would
// never hit again. The chain shares the site's 16-miss de-quickening
// budget: a megamorphic site still converges to generic bytecode.
//
// The chaos-mode GuardChainCorrupt fault forces a whole-chain miss even
// though some entry would have matched: the site then takes the generic
// lookup and refills, which must be behaviour-identical (the cache only
// ever elides lookup work, never changes its result).

// attrPolyLookup walks an ICPoly chain for a LOAD_ATTR site. On a hit
// the matching entry moves to the front and the value (a new reference,
// bound method included) is returned. A miss — chain exhausted, or a
// forced GuardChainCorrupt — reports false and the caller runs the
// generic path.
func (vm *VM) attrPolyLookup(f *pyobj.Frame, obj pyobj.Object, c *pyobj.ICache, site int32, name string) (pyobj.Object, bool) {
	if vm.Heap.Faults().Should(faults.GuardChainCorrupt) {
		return nil, false
	}
	for i := range c.Poly {
		v, _, ok := vm.attrCacheHit(f, obj, &c.Poly[i], site, name)
		if ok {
			if i != 0 {
				c.Poly[0], c.Poly[i] = c.Poly[i], c.Poly[0]
			}
			vm.Stats.IC.PolyHits++
			return v, true
		}
		// Failed chain entry: the compare and fall-through branch.
		vm.Eng.ALU(core.NameResolution, true)
		vm.Eng.Branch(core.NameResolution, false)
	}
	return nil, false
}

// storePolyLookup walks an ICPoly chain for a STORE_ATTR site,
// performing the guarded in-place update on a hit.
func (vm *VM) storePolyLookup(f *pyobj.Frame, obj pyobj.Object, c *pyobj.ICache, site int32, v pyobj.Object) bool {
	if vm.Heap.Faults().Should(faults.GuardChainCorrupt) {
		return false
	}
	for i := range c.Poly {
		if vm.storeCacheHit(f, obj, &c.Poly[i], site, v) {
			if i != 0 {
				c.Poly[0], c.Poly[i] = c.Poly[i], c.Poly[0]
			}
			vm.Stats.IC.PolyHits++
			return true
		}
		vm.Eng.ALU(core.NameResolution, true)
		vm.Eng.Branch(core.NameResolution, false)
	}
	return false
}

// sameAttrIdentity reports whether two filled entries guard the same
// shape — the distinction between version churn (refill in place) and
// genuine polymorphism (grow the chain).
func sameAttrIdentity(a, b *pyobj.ICache) bool {
	if a.State != b.State {
		// ICAttrClass vs ICAttrMethod on the same class is still the
		// same resolution site shape-wise; treat as same identity so a
		// method rebound to a value refills rather than chains.
		classish := func(s pyobj.ICState) bool {
			return s == pyobj.ICAttrClass || s == pyobj.ICAttrMethod
		}
		if !(classish(a.State) && classish(b.State)) {
			return false
		}
	}
	switch a.State {
	case pyobj.ICAttrSlot, pyobj.ICStoreSlot:
		return a.Enc == b.Enc && a.EntryIdx == b.EntryIdx
	case pyobj.ICAttrClass, pyobj.ICAttrMethod:
		return a.Class == b.Class
	case pyobj.ICAttrModule:
		return a.Dict == b.Dict
	case pyobj.ICAttrType:
		return a.TypeID == b.TypeID
	}
	return false
}

// polyInsert places a freshly filled entry into an ICPoly chain:
// replacing a stale same-identity entry in place, appending while the
// chain has room, or overwriting the LRU tail once it is full.
func (vm *VM) polyInsert(c *pyobj.ICache, e *pyobj.ICache) {
	for i := range c.Poly {
		if sameAttrIdentity(&c.Poly[i], e) {
			c.Poly[i] = *e
			return
		}
	}
	if len(c.Poly) < pyobj.PolyWays {
		c.Poly = append(c.Poly, *e)
	} else {
		c.Poly[len(c.Poly)-1] = *e
	}
	vm.Stats.IC.PolyPromotions++
}

// refillAttrAfterMiss repopulates a LOAD_ATTR site after the generic
// path succeeded, promoting monomorphic sites to polymorphic stubs when
// the miss brought a new guard identity. Reports whether the fill
// happened and whether it resolved to a method.
func (vm *VM) refillAttrAfterMiss(c *pyobj.ICache, obj pyobj.Object, name string) (method, ok bool) {
	if !vm.polyICs || c.State == pyobj.ICEmpty {
		return vm.fillAttrCache(c, obj, name)
	}
	var e pyobj.ICache
	m, filled := vm.fillAttrCache(&e, obj, name)
	if !filled {
		return false, false
	}
	e.Misses = 0
	if c.State == pyobj.ICPoly {
		vm.polyInsert(c, &e)
		return m, true
	}
	if sameAttrIdentity(c, &e) {
		// Version churn on the cached shape: plain monomorphic refill
		// (identical to tier-1 behaviour).
		misses := c.Misses
		*c = e
		c.Misses = misses
		return m, true
	}
	// Mono -> poly promotion: the old entry stays reachable behind the
	// new (MRU-first) one. The site's miss budget carries over — the
	// chain buys hit coverage, not budget amnesty.
	old := *c
	old.Poly = nil
	misses := c.Misses
	c.Reset()
	c.State = pyobj.ICPoly
	c.Misses = misses
	c.Poly = append(make([]pyobj.ICache, 0, pyobj.PolyWays), e, old)
	vm.Stats.IC.PolyPromotions++
	return m, true
}

// refillStoreAfterMiss is refillAttrAfterMiss for STORE_ATTR sites.
func (vm *VM) refillStoreAfterMiss(c *pyobj.ICache, obj pyobj.Object, name string) bool {
	o, isInst := obj.(*pyobj.Instance)
	if !isInst {
		return false
	}
	_, res, found := o.Dict.GetStr(name)
	if !found {
		return false
	}
	fill := func(e *pyobj.ICache) {
		e.State = pyobj.ICStoreSlot
		e.Enc = "s:" + name
		e.EntryIdx = int32(res.EntryIdx)
	}
	if !vm.polyICs || c.State == pyobj.ICEmpty {
		icRefill(c, c.State == pyobj.ICEmpty)
		fill(c)
		return true
	}
	var e pyobj.ICache
	fill(&e)
	if c.State == pyobj.ICPoly {
		vm.polyInsert(c, &e)
		return true
	}
	if sameAttrIdentity(c, &e) {
		misses := c.Misses
		*c = e
		c.Misses = misses
		return true
	}
	old := *c
	old.Poly = nil
	misses := c.Misses
	c.Reset()
	c.State = pyobj.ICPoly
	c.Misses = misses
	c.Poly = append(make([]pyobj.ICache, 0, pyobj.PolyWays), e, old)
	vm.Stats.IC.PolyPromotions++
	return true
}
