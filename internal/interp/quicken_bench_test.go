package interp

import (
	"strings"
	"testing"
	"time"

	"repro/internal/benchgate"
	"repro/internal/emit"
	"repro/internal/gc"
	"repro/internal/isa"
	"repro/internal/pycompile"
)

// dispatchBenchSrc is the attribute/global-heavy dispatch workload the
// quickening speedup is measured on: every loop iteration does global
// reads, a method call, and attribute loads and stores.
const dispatchBenchSrc = `
STEP = 3
class Acc:
    def __init__(self):
        self.total = 0
    def bump(self, v):
        self.total = self.total + v
def run(n):
    a = Acc()
    i = 0
    while i < n:
        a.bump(STEP)
        a.total = a.total + STEP
        i = i + 1
    return a.total
print(run(20000))
`

const dispatchBenchWant = "120000\n"

// timeDispatch runs the bench program once on a fresh VM and returns the
// wall-clock of the RunCode call alone (compile excluded; the code
// object is shared).
func timeDispatch(t *testing.T, quicken bool) time.Duration {
	t.Helper()
	code, err := pycompile.CompileSource("dispatch.py", dispatchBenchSrc)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	vm := New(emit.NewEngine(isa.NullSink{}), gc.DefaultRefCountConfig(), &out)
	vm.SetQuicken(quicken)
	start := time.Now()
	if err := vm.RunCode(code); err != nil {
		t.Fatal(err)
	}
	d := time.Since(start)
	if out.String() != dispatchBenchWant {
		t.Fatalf("quicken=%v output %q, want %q", quicken, out.String(), dispatchBenchWant)
	}
	if quicken {
		if rate := vm.Stats.IC.HitRate(); rate < 0.9 {
			t.Fatalf("IC hit rate %.3f on monomorphic bench, want >= 0.9 (%+v)", rate, vm.Stats.IC)
		}
	}
	return d
}

// TestQuickenedDispatchGuard is the performance regression gate: on the
// attribute/global-heavy dispatch benchmark the tier-2 quickened
// interpreter must beat the cold one by the factor the shared
// benchgate table demands (2.0x — polymorphic stubs, superinstruction
// fusion and the unboxed-int fast paths together). Best-of-N timing
// with retries keeps scheduler noise from flaking the gate.
func TestQuickenedDispatchGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short mode")
	}
	const (
		reps     = 5
		attempts = 3
	)
	requiredGain := benchgate.Lookup("dispatch-quickened").MinSpeedup
	best := 0.0
	for attempt := 1; attempt <= attempts; attempt++ {
		cold, quick := time.Duration(1<<62), time.Duration(1<<62)
		for i := 0; i < reps; i++ {
			if d := timeDispatch(t, false); d < cold {
				cold = d
			}
			if d := timeDispatch(t, true); d < quick {
				quick = d
			}
		}
		speedup := float64(cold) / float64(quick)
		if speedup > best {
			best = speedup
		}
		t.Logf("attempt %d: cold %v, quickened %v, speedup %.2fx", attempt, cold, quick, speedup)
		if best >= requiredGain {
			return
		}
	}
	t.Fatalf("quickened interpreter speedup %.2fx, want >= %.2fx on dispatch-heavy bench", best, requiredGain)
}

func benchmarkDispatch(b *testing.B, quicken bool) {
	code, err := pycompile.CompileSource("dispatch.py", dispatchBenchSrc)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out strings.Builder
		vm := New(emit.NewEngine(isa.NullSink{}), gc.DefaultRefCountConfig(), &out)
		vm.SetQuicken(quicken)
		if err := vm.RunCode(code); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDispatchCold(b *testing.B)      { benchmarkDispatch(b, false) }
func BenchmarkDispatchQuickened(b *testing.B) { benchmarkDispatch(b, true) }
