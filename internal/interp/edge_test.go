package interp

import (
	"strings"
	"testing"

	"repro/internal/emit"
	"repro/internal/gc"
	"repro/internal/isa"
)

func TestSlices(t *testing.T) {
	expect(t, `
l = [0, 1, 2, 3, 4, 5]
print(l[1:4], l[:2], l[4:], l[:], l[-2:], l[:-2])
print(l[::2], l[::-1], l[4:1:-1])
s = "abcdef"
print(s[1:4], s[-3:], s[::-1], s[::2])
t = (0, 1, 2, 3)
print(t[1:3])
print(l[10:], l[2:100])
`, "[1, 2, 3] [0, 1] [4, 5] [0, 1, 2, 3, 4, 5] [4, 5] [0, 1, 2, 3]\n"+
		"[0, 2, 4] [5, 4, 3, 2, 1, 0] [4, 3, 2]\nbcd def fedcba ace\n(1, 2)\n[] [2, 3, 4, 5]\n")
}

func TestNegativeIndexing(t *testing.T) {
	expect(t, `
l = [10, 20, 30]
print(l[-1], l[-3])
l[-1] = 99
print(l)
s = "hello"
print(s[-1], s[-5])
t = (1, 2)
print(t[-2])
`, "30 10\n[10, 20, 99]\no h\n1\n")
}

func TestAugmentedTargets(t *testing.T) {
	expect(t, `
l = [1, 2, 3]
l[1] += 10
print(l)
d = {"k": 5}
d["k"] *= 3
print(d["k"])
class C:
    def __init__(self):
        self.v = 2
c = C()
c.v <<= 4
print(c.v)
x = 7
x //= 2
x **= 2
print(x)
`, "[1, 12, 3]\n15\n32\n9\n")
}

func TestWhileElseFree(t *testing.T) {
	// deeply nested breaks/continues across mixed loop kinds
	expect(t, `
total = 0
for a in xrange(4):
    b = 0
    while True:
        b += 1
        if b > a:
            break
        for c in xrange(3):
            if c == 2:
                continue
            total += c
print(total, b)
`, "6 4\n")
}

func TestStringEdge(t *testing.T) {
	expect(t, `
print("" == "", "" < "a")
print("-".join([]))
print("abc".find(""), "".find("x"))
print("aaa".replace("a", "aa"))
print("%s" % ((1, 2),))
print("%%d is %d" % 7)
print("a" * 0 + "b" * 3)
print("Ab3".isdigit(), "123".isdigit(), "abc".isalpha())
print("  x\ty ".split())
`, "True True\n\n0 -1\naaaaaa\n(1, 2)\n%d is 7\nbbb\nFalse True True\n['x', 'y']\n")
}

func TestDictIterationOrderInsertion(t *testing.T) {
	expect(t, `
d = {}
d["b"] = 1
d["a"] = 2
d["c"] = 3
print(d.keys())
del d["a"]
d["a"] = 9
print(d.keys())
print(d.values())
print(d.items())
for k in d.iterkeys():
    print(k)
`, "['b', 'a', 'c']\n['b', 'c', 'a']\n[1, 3, 9]\n[('b', 1), ('c', 3), ('a', 9)]\nb\nc\na\n")
}

func TestIntFloatBoundaries(t *testing.T) {
	expect(t, `
print(2 ** 62)
print(-2 ** 62)
print(1.0 / 3.0 > 0.333, 1.0 / 3.0 < 0.334)
print(7 / -2, -7 / -2, 7 % -2)
print(5.5 // 2.0, -5.5 // 2.0, 5.5 % 2.0)
print(int(-3.9), int("  12  "))
print(2 ** 0.5 > 1.41, 2 ** -1)
`, "4611686018427387904\n-4611686018427387904\nTrue True\n-4 3 -1\n2.0 -3.0 1.5\n-3 12\nTrue 0.5\n")
}

func TestOverflowRaises(t *testing.T) {
	var cases = []string{
		"print(2 ** 63)",
		"print(2 ** 62 * 4)",
		"print(9223372036854775807 + 1)",
	}
	for _, src := range cases {
		if got := runErrKind(t, src); got != "OverflowError" {
			t.Errorf("%q raised %q, want OverflowError", src, got)
		}
	}
}

func runErrKind(t *testing.T, src string) string {
	t.Helper()
	var out strings.Builder
	vm := New(emit.NewEngine(isa.NullSink{}), gc.DefaultRefCountConfig(), &out)
	err := vm.RunSource("<edge>", src)
	if err == nil {
		return ""
	}
	if pe, ok := err.(*PyError); ok {
		return pe.Kind
	}
	return err.Error()
}

func TestRecursionLimit(t *testing.T) {
	if got := runErrKind(t, "def f(n):\n    return f(n + 1)\nf(0)\n"); got != "RuntimeError" {
		t.Errorf("infinite recursion raised %q", got)
	}
}

func TestBuiltinShadowing(t *testing.T) {
	expect(t, `
def len(x):
    return 42

print(len([1, 2]))
`, "42\n")
}

func TestDefaultArgEvaluatedAtDef(t *testing.T) {
	expect(t, `
base = 10
def f(x=base):
    return x
base = 99
print(f(), f(1))
`, "10 1\n")
}

func TestMethodChaining(t *testing.T) {
	expect(t, `
print("  A-b-C  ".strip().lower().split("-"))
l = []
l.append([1, 2])
print(l[0].pop())
`, "['a', 'b', 'c']\n2\n")
}
