package interp

import (
	"repro/internal/core"
	"repro/internal/pyobj"
)

// GetItem implements o[k] with CPython's structure: a list[int] fast path
// in the handler, everything else through the tp_getitem C call.
func (vm *VM) GetItem(o, k pyobj.Object) pyobj.Object {
	e := vm.Eng
	e.Load(core.TypeCheck, o.Hdr().Addr, false)
	l, oIsList := o.(*pyobj.List)
	ki, kIsInt := k.(*pyobj.Int)
	fast := oIsList && kIsInt
	e.Branch(core.TypeCheck, fast)
	if fast {
		e.Load(core.Boxing, ki.H.Addr+16, true)
		idx := vm.normIndex(ki.V, len(l.Items), "list index out of range")
		e.Load(core.Execute, l.H.Addr+24, true) // ob_item pointer
		e.Load(core.Execute, l.ItemAddr(idx), true)
		v := l.Items[idx]
		vm.Incref(v)
		return v
	}

	e.Load(core.FunctionResolution, o.PyType().SlotAddr(pyobj.SlotGetItem), true)
	e.CCall(core.CFunctionCall, vm.hp.getItem, indirectCCall)
	defer e.CReturn(core.CFunctionCall, indirectCCall)

	if sl, ok := k.(*pyobj.Slice); ok {
		return vm.getSlice(o, sl)
	}

	switch c := o.(type) {
	case *pyobj.Dict:
		v, found := vm.DictGet(c, k, core.Execute)
		vm.errCheck(!found)
		if !found {
			Raise("KeyError", "%s", pyobj.Repr(k))
		}
		vm.Incref(v)
		return v
	case *pyobj.List:
		n, ok := pyobj.AsInt(k)
		if !ok {
			Raise("TypeError", "list indices must be integers, not %s", pyobj.TypeName(k))
		}
		idx := vm.normIndex(n, len(c.Items), "list index out of range")
		e.Load(core.Execute, c.ItemAddr(idx), true)
		v := c.Items[idx]
		vm.Incref(v)
		return v
	case *pyobj.Tuple:
		n, ok := pyobj.AsInt(k)
		if !ok {
			Raise("TypeError", "tuple indices must be integers, not %s", pyobj.TypeName(k))
		}
		idx := vm.normIndex(n, len(c.Items), "tuple index out of range")
		e.Load(core.Execute, c.ItemAddr(idx), true)
		v := c.Items[idx]
		vm.Incref(v)
		return v
	case *pyobj.Str:
		n, ok := pyobj.AsInt(k)
		if !ok {
			Raise("TypeError", "string indices must be integers, not %s", pyobj.TypeName(k))
		}
		idx := vm.normIndex(n, len(c.V), "string index out of range")
		e.Load(core.Execute, c.DataAddr+uint64(idx), true)
		// CPython's one-character string cache.
		return vm.charStr(c.V[idx])
	}
	Raise("TypeError", "'%s' object is not subscriptable", pyobj.TypeName(o))
	return nil
}

// charStr returns the interned single-character string for b.
func (vm *VM) charStr(b byte) *pyobj.Str {
	s := vm.Intern(string(b))
	vm.Incref(s)
	return s
}

// normIndex applies Python's negative-index rule with a bounds check.
func (vm *VM) normIndex(n int64, length int, msg string) int {
	vm.Eng.ALU(core.ErrorCheck, false)
	vm.Eng.Branch(core.ErrorCheck, n < 0)
	if n < 0 {
		n += int64(length)
	}
	vm.errCheck(n < 0 || n >= int64(length))
	if n < 0 || n >= int64(length) {
		Raise("IndexError", "%s", msg)
	}
	return int(n)
}

// sliceBounds resolves a slice object against a sequence length (step 1
// and -1 only; extended steps resolve element by element).
func (vm *VM) sliceBounds(sl *pyobj.Slice, length int) (start, stop, step int) {
	step = 1
	if _, isNone := sl.Step.(*pyobj.None); !isNone {
		n, ok := pyobj.AsInt(sl.Step)
		if !ok || n == 0 {
			Raise("ValueError", "slice step must be a non-zero integer")
		}
		step = int(n)
	}
	lo, hasLo := int64(0), false
	if _, isNone := sl.Start.(*pyobj.None); !isNone {
		n, ok := pyobj.AsInt(sl.Start)
		if !ok {
			Raise("TypeError", "slice indices must be integers")
		}
		lo, hasLo = n, true
	}
	hi, hasHi := int64(0), false
	if _, isNone := sl.Stop.(*pyobj.None); !isNone {
		n, ok := pyobj.AsInt(sl.Stop)
		if !ok {
			Raise("TypeError", "slice indices must be integers")
		}
		hi, hasHi = n, true
	}
	clamp := func(v int64) int {
		if v < 0 {
			v += int64(length)
		}
		if v < 0 {
			v = 0
		}
		if v > int64(length) {
			v = int64(length)
		}
		return int(v)
	}
	if step > 0 {
		start, stop = 0, length
		if hasLo {
			start = clamp(lo)
		}
		if hasHi {
			stop = clamp(hi)
		}
	} else {
		start, stop = length-1, -1
		if hasLo {
			start = clamp(lo)
			if lo >= int64(length) {
				start = length - 1
			}
		}
		if hasHi {
			if hi < 0 && hi+int64(length) < 0 {
				stop = -1
			} else {
				stop = clamp(hi)
				if hasHi && hi < 0 {
					stop = int(hi + int64(length))
				}
			}
		}
	}
	vm.Eng.ALUn(core.Execute, 3)
	return start, stop, step
}

// getSlice materializes o[lo:hi:step] as a new sequence.
func (vm *VM) getSlice(o pyobj.Object, sl *pyobj.Slice) pyobj.Object {
	switch c := o.(type) {
	case *pyobj.List:
		start, stop, step := vm.sliceBounds(sl, len(c.Items))
		items := sliceIndices(start, stop, step, func(i int) pyobj.Object {
			vm.Eng.Load(core.Execute, c.ItemAddr(i), false)
			vm.Incref(c.Items[i])
			return c.Items[i]
		})
		return vm.NewList(items)
	case *pyobj.Tuple:
		start, stop, step := vm.sliceBounds(sl, len(c.Items))
		items := sliceIndices(start, stop, step, func(i int) pyobj.Object {
			vm.Eng.Load(core.Execute, c.ItemAddr(i), false)
			vm.Incref(c.Items[i])
			return c.Items[i]
		})
		return vm.NewTuple(items)
	case *pyobj.Str:
		start, stop, step := vm.sliceBounds(sl, len(c.V))
		if step == 1 {
			if start > stop {
				start = stop
			}
			vm.emitStrScan(c, stop-start)
			return vm.NewStr(c.V[start:stop])
		}
		var b []byte
		for i := start; (step > 0 && i < stop) || (step < 0 && i > stop); i += step {
			b = append(b, c.V[i])
		}
		vm.emitStrScan(c, len(b))
		return vm.NewStr(string(b))
	}
	Raise("TypeError", "'%s' object is not sliceable", pyobj.TypeName(o))
	return nil
}

func sliceIndices(start, stop, step int, get func(int) pyobj.Object) []pyobj.Object {
	var items []pyobj.Object
	if step > 0 {
		for i := start; i < stop; i += step {
			items = append(items, get(i))
		}
	} else {
		for i := start; i > stop; i += step {
			items = append(items, get(i))
		}
	}
	return items
}

// SetItem implements o[k] = v with the list[int] fast path.
func (vm *VM) SetItem(o, k, v pyobj.Object) {
	e := vm.Eng
	e.Load(core.TypeCheck, o.Hdr().Addr, false)
	l, oIsList := o.(*pyobj.List)
	ki, kIsInt := k.(*pyobj.Int)
	fast := oIsList && kIsInt
	e.Branch(core.TypeCheck, fast)
	if fast {
		e.Load(core.Boxing, ki.H.Addr+16, true)
		idx := vm.normIndex(ki.V, len(l.Items), "list assignment index out of range")
		old := l.Items[idx]
		e.Store(core.Execute, l.ItemAddr(idx))
		l.Items[idx] = v
		vm.Incref(v)
		vm.barrier(l, v)
		vm.Decref(old)
		return
	}

	e.Load(core.FunctionResolution, o.PyType().SlotAddr(pyobj.SlotSetItem), true)
	e.CCall(core.CFunctionCall, vm.hp.setItem, indirectCCall)
	defer e.CReturn(core.CFunctionCall, indirectCCall)

	switch c := o.(type) {
	case *pyobj.Dict:
		vm.DictSet(c, k, v, core.Execute)
		return
	case *pyobj.List:
		n, ok := pyobj.AsInt(k)
		if !ok {
			Raise("TypeError", "list indices must be integers, not %s", pyobj.TypeName(k))
		}
		idx := vm.normIndex(n, len(c.Items), "list assignment index out of range")
		old := c.Items[idx]
		e.Store(core.Execute, c.ItemAddr(idx))
		c.Items[idx] = v
		vm.Incref(v)
		vm.barrier(c, v)
		vm.Decref(old)
		return
	}
	Raise("TypeError", "'%s' object does not support item assignment", pyobj.TypeName(o))
}

// DelItem implements del o[k].
func (vm *VM) DelItem(o, k pyobj.Object) {
	e := vm.Eng
	e.Load(core.TypeCheck, o.Hdr().Addr, false)
	e.Load(core.FunctionResolution, o.PyType().SlotAddr(pyobj.SlotSetItem), true)
	e.CCall(core.CFunctionCall, vm.hp.setItem, indirectCCall)
	defer e.CReturn(core.CFunctionCall, indirectCCall)

	switch c := o.(type) {
	case *pyobj.Dict:
		var oldKey, oldVal pyobj.Object
		if v, r, ok := c.Get(k); ok && r.Found {
			oldKey = c.Entries[r.EntryIdx].Key
			oldVal = v
		}
		res, found := c.Delete(k)
		vm.dictProbeEvents(c, res, 0, core.Execute)
		vm.errCheck(!found)
		if !found {
			Raise("KeyError", "%s", pyobj.Repr(k))
		}
		// The dict drops its references to the stored key and value.
		if oldKey != nil {
			vm.Decref(oldKey)
		}
		if oldVal != nil {
			vm.Decref(oldVal)
		}
		// Periodically compact heavily deleted dicts.
		if len(c.Entries) > 64 && c.Len()*2 < len(c.Entries) {
			c.Compact()
		}
		return
	case *pyobj.List:
		n, ok := pyobj.AsInt(k)
		if !ok {
			Raise("TypeError", "list indices must be integers")
		}
		idx := vm.normIndex(n, len(c.Items), "list index out of range")
		old := c.Items[idx]
		// Shift tail left: load+store per moved element (capped).
		moved := len(c.Items) - idx - 1
		if moved > eventCap {
			moved = eventCap
		}
		for i := 0; i < moved; i++ {
			e.Load(core.Execute, c.ItemAddr(idx+i+1), false)
			e.Store(core.Execute, c.ItemAddr(idx+i))
		}
		c.Items = append(c.Items[:idx], c.Items[idx+1:]...)
		vm.Decref(old)
		return
	}
	Raise("TypeError", "'%s' object doesn't support item deletion", pyobj.TypeName(o))
}

// ListAppend grows l by v (list.append and BUILD_LIST helpers), modeling
// CPython's over-allocating realloc.
func (vm *VM) ListAppend(l *pyobj.List, v pyobj.Object) {
	e := vm.Eng
	if len(l.Items) >= l.ItemsCap {
		newCap := l.ItemsCap + l.ItemsCap/8 + 6
		oldAddr := l.ItemsAddr
		oldBytes := uint64(l.ItemsCap) * 8
		l.ItemsAddr = vm.Heap.AllocPayload(uint64(newCap)*8, core.Execute)
		l.ItemsCap = newCap
		// Copy the old element pointers (capped).
		n := len(l.Items)
		if n > eventCap {
			n = eventCap
		}
		for i := 0; i < n; i++ {
			e.Load(core.Execute, oldAddr+uint64(i)*8, false)
			e.Store(core.Execute, l.ItemAddr(i))
		}
		vm.Heap.FreePayload(oldAddr, oldBytes)
	}
	e.Store(core.Execute, l.ItemAddr(len(l.Items)))
	e.Store(core.Execute, l.H.Addr+16) // ob_size
	l.Items = append(l.Items, v)
	vm.Incref(v)
	vm.barrier(l, v)
}
