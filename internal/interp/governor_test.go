package interp

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/emit"
	"repro/internal/gc"
	"repro/internal/isa"
	"repro/internal/pycode"
	"repro/internal/pyobj"
)

// newLimited builds a VM with the given heap config and limits.
func newLimited(heap gc.Config, l Limits) (*VM, *strings.Builder) {
	var out strings.Builder
	vm := New(emit.NewEngine(isa.NullSink{}), heap, &out)
	vm.SetLimits(l)
	return vm, &out
}

// errKind returns the PyError kind of err, or "" if it is not a PyError.
func errKind(err error) string {
	var pe *PyError
	if errors.As(err, &pe) {
		return pe.Kind
	}
	return ""
}

// TestStepBudgetExactBoundary pins the budget's off-by-one behaviour: a
// budget of exactly the program's bytecode count completes; one less trips
// TimeoutError on the dispatch back-edge.
func TestStepBudgetExactBoundary(t *testing.T) {
	src := `
acc = 0
for i in xrange(50):
    acc = acc + i
print(acc)
`
	// Measure the program's exact bytecode count.
	vm, _ := newLimited(gc.DefaultRefCountConfig(), Limits{})
	if err := vm.RunSource("<measure>", src); err != nil {
		t.Fatalf("unlimited run: %v", err)
	}
	total := vm.Stats.Bytecodes
	if total == 0 {
		t.Fatal("no bytecodes counted")
	}

	vm, out := newLimited(gc.DefaultRefCountConfig(), Limits{MaxSteps: total})
	if err := vm.RunSource("<exact>", src); err != nil {
		t.Fatalf("budget == program length should complete, got: %v", err)
	}
	if !strings.Contains(out.String(), "1225") {
		t.Fatalf("wrong output: %q", out.String())
	}

	vm, _ = newLimited(gc.DefaultRefCountConfig(), Limits{MaxSteps: total - 1})
	err := vm.RunSource("<short>", src)
	if errKind(err) != "TimeoutError" {
		t.Fatalf("budget == length-1: want TimeoutError, got %v", err)
	}

	// The governor re-arms per RunCode: the same VM must be reusable, and
	// a sweep of tiny budgets must always terminate with TimeoutError,
	// never a hang or panic.
	for budget := uint64(1); budget <= 60; budget++ {
		vm.SetLimits(Limits{MaxSteps: budget})
		if err := vm.RunSource("<sweep>", src); errKind(err) != "TimeoutError" {
			t.Fatalf("budget %d: want TimeoutError, got %v", budget, err)
		}
	}
}

// TestStepBudgetMessageNamesSite checks the TimeoutError pinpoints where
// the budget died (frame, pc, opcode).
func TestStepBudgetMessageNamesSite(t *testing.T) {
	vm, _ := newLimited(gc.DefaultRefCountConfig(), Limits{MaxSteps: 10})
	err := vm.RunSource("<loop>", "i = 0\nwhile True:\n    i = i + 1\n")
	if errKind(err) != "TimeoutError" {
		t.Fatalf("want TimeoutError, got %v", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "step budget of 10 bytecodes") || !strings.Contains(msg, "pc=") {
		t.Errorf("message should name budget and site: %q", msg)
	}
}

// TestHeapLimitRaisesMemoryError: an allocation bomb against a heap cap
// surfaces as MemoryError under both memory managers, and the VM survives
// to run the next program.
func TestHeapLimitRaisesMemoryError(t *testing.T) {
	bomb := `
l = []
while True:
    l.append("0123456789abcdef0123456789abcdef")
`
	for _, cfg := range []gc.Config{gc.DefaultRefCountConfig(), gc.DefaultGenConfig(64 << 10)} {
		vm, _ := newLimited(cfg, Limits{MaxHeapBytes: 1 << 20})
		err := vm.RunSource("<bomb>", bomb)
		if errKind(err) != "MemoryError" {
			t.Fatalf("%v heap: want MemoryError, got %v", cfg.Kind, err)
		}
		// The heap must still be usable after the OOM unwound.
		vm.SetLimits(Limits{})
		var after strings.Builder
		vm.Stdout = &after
		if err := vm.RunSource("<after>", "print(sum([1, 2, 3]))"); err != nil {
			t.Fatalf("%v heap: VM unusable after MemoryError: %v", cfg.Kind, err)
		}
		if after.String() != "6\n" {
			t.Fatalf("%v heap: wrong output after recovery: %q", cfg.Kind, after.String())
		}
	}
}

// TestRecursionLimitInsideCHelper: the configured depth cap fires even
// when frames are pushed from inside a C helper (map calling back into
// Python), raising RecursionError rather than overflowing the Go stack.
func TestRecursionLimitInsideCHelper(t *testing.T) {
	src := `
def boom(x):
    return boom(x + 1)

print(map(boom, [1, 2, 3]))
`
	vm, _ := newLimited(gc.DefaultRefCountConfig(), Limits{MaxRecursionDepth: 50})
	err := vm.RunSource("<rec>", src)
	if errKind(err) != "RecursionError" {
		t.Fatalf("want RecursionError, got %v", err)
	}
	if !strings.Contains(err.Error(), "maximum recursion depth (50) exceeded") {
		t.Errorf("message should carry the configured limit: %q", err.Error())
	}
	// Depth bookkeeping must have unwound fully.
	if err := vm.RunSource("<after>", "print(1)"); err != nil {
		t.Fatalf("VM unusable after RecursionError: %v", err)
	}
}

// TestDefaultRecursionValveKeepsRuntimeError: without a governor limit the
// built-in valve still reports CPython 2.7's RuntimeError.
func TestDefaultRecursionValveKeepsRuntimeError(t *testing.T) {
	vm, _ := newLimited(gc.DefaultRefCountConfig(), Limits{})
	err := vm.RunSource("<rec>", "def f(x):\n    return f(x)\nf(0)\n")
	if errKind(err) != "RuntimeError" {
		t.Fatalf("want RuntimeError from the default valve, got %v", err)
	}
}

// TestDeadlineFiresDuringGC: an allocation-bound program spends most of
// its time collecting; the deadline must still fire because GC entry
// polls it.
func TestDeadlineFiresDuringGC(t *testing.T) {
	src := `
l = []
i = 0
while True:
    l.append([i, i + 1, i + 2])
    if len(l) > 512:
        l = []
    i = i + 1
`
	vm, _ := newLimited(gc.DefaultGenConfig(32<<10), Limits{Deadline: 20 * time.Millisecond})
	start := time.Now()
	err := vm.RunSource("<gc-bound>", src)
	if errKind(err) != "TimeoutError" {
		t.Fatalf("want TimeoutError, got %v", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("deadline enforcement took %v", el)
	}
}

// TestOutputLimitExactBoundary: output of exactly the cap passes; one byte
// over raises OutputLimitError, through both the print statement and the
// print builtin.
func TestOutputLimitExactBoundary(t *testing.T) {
	// "abc\n" is 4 bytes per iteration, 10 iterations = 40 bytes.
	src := `
for i in xrange(10):
    print("abc")
`
	vm, out := newLimited(gc.DefaultRefCountConfig(), Limits{MaxOutputBytes: 40})
	if err := vm.RunSource("<fit>", src); err != nil {
		t.Fatalf("output == cap should pass, got: %v", err)
	}
	if len(out.String()) != 40 {
		t.Fatalf("want 40 bytes, got %d", len(out.String()))
	}

	vm, out = newLimited(gc.DefaultRefCountConfig(), Limits{MaxOutputBytes: 39})
	err := vm.RunSource("<over>", src)
	if errKind(err) != "OutputLimitError" {
		t.Fatalf("want OutputLimitError, got %v", err)
	}
	// Nothing after the cap may have been written.
	if n := len(out.String()); n > 39 {
		t.Fatalf("wrote %d bytes past a 39-byte cap", n)
	}
}

// TestInternalErrorCarriesCrashState: a Go-level panic inside the
// interpreter (an unknown opcode here) is converted at the RunCode
// boundary into an InternalError with the frame stack captured during
// unwinding — never re-panicked into the host.
func TestInternalErrorCarriesCrashState(t *testing.T) {
	code := &pycode.Code{
		Name:     "broken",
		Filename: "<broken>",
		Code: []pycode.Instr{
			{Op: pycode.Opcode(250)}, // not a real opcode
		},
	}
	vm, _ := newLimited(gc.DefaultRefCountConfig(), Limits{})
	err := vm.RunCode(code)
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("want InternalError, got %v", err)
	}
	if len(ie.State.Frames) == 0 {
		t.Fatal("crash state should capture the unwound frame stack")
	}
	if ie.State.Frames[0].Func != "broken" {
		t.Errorf("innermost frame: want broken, got %+v", ie.State.Frames[0])
	}
	if len(ie.Stack) == 0 {
		t.Error("Go stack trace missing from InternalError")
	}
	// The VM survives and the next program runs clean.
	var out strings.Builder
	vm.Stdout = &out
	if err := vm.RunSource("<after>", "print(2 + 2)"); err != nil {
		t.Fatalf("VM unusable after InternalError: %v", err)
	}
	if out.String() != "4\n" {
		t.Fatalf("wrong output after recovery: %q", out.String())
	}
}

// TestGovernorDisabledIsInert: zero limits never interfere, whatever the
// program does.
// TestStepBudgetSaturatesNearMaxUint64: a step budget near ^uint64(0)
// must behave as "unlimited", not wrap the scheduled check threshold.
// Before the saturating add, stepBase + MaxSteps + 1 wrapped to a value
// at or behind the current iteration count, forcing the governor slow
// path on every single dispatch — and, after a prior run advanced
// stepBase, could park the threshold where a budget that should be armed
// never fired.
func TestStepBudgetSaturatesNearMaxUint64(t *testing.T) {
	src := "print(sum(range(100)))\n"
	for _, steps := range []uint64{
		math.MaxUint64,
		math.MaxUint64 - 1,
		math.MaxUint64 / 2,
	} {
		vm, out := newLimited(gc.DefaultRefCountConfig(), Limits{MaxSteps: steps})
		if err := vm.RunSource("<huge>", src); err != nil {
			t.Fatalf("MaxSteps=%d: %v", steps, err)
		}
		if out.String() != "4950\n" {
			t.Fatalf("MaxSteps=%d: output %q", steps, out.String())
		}
		// The threshold must sit saturated at (or effectively at) the
		// far end, never behind the iterations already executed.
		if vm.nextCheck <= vm.iterations {
			t.Fatalf("MaxSteps=%d: nextCheck %d not past iterations %d",
				steps, vm.nextCheck, vm.iterations)
		}
		// A second run on the same VM (stepBase now nonzero) must stay
		// healthy too — this is the case that could wrap into the
		// disarmed regime.
		if err := vm.RunSource("<huge2>", src); err != nil {
			t.Fatalf("MaxSteps=%d second run: %v", steps, err)
		}
		if vm.nextCheck <= vm.iterations {
			t.Fatalf("MaxSteps=%d second run: nextCheck %d not past iterations %d",
				steps, vm.nextCheck, vm.iterations)
		}
	}

	// A saturated budget must still coexist with a live deadline poll:
	// the deadline schedules the nearer threshold and still trips.
	vm, _ := newLimited(gc.DefaultRefCountConfig(), Limits{
		MaxSteps: math.MaxUint64,
		Deadline: time.Millisecond,
	})
	err := vm.RunSource("<spin>", "i = 0\nwhile True:\n    i = i + 1\n")
	if errKind(err) != "TimeoutError" {
		t.Fatalf("deadline under saturated step budget: want TimeoutError, got %v", err)
	}
}

func TestGovernorDisabledIsInert(t *testing.T) {
	if (Limits{}).Enabled() {
		t.Fatal("zero Limits must report disabled")
	}
	vm, out := newLimited(gc.DefaultRefCountConfig(), Limits{})
	if vm.nextCheck != ^uint64(0) {
		t.Fatalf("disabled governor must park nextCheck, got %d", vm.nextCheck)
	}
	if err := vm.RunSource("<plain>", "print(sum(range(100)))"); err != nil {
		t.Fatalf("run: %v", err)
	}
	if out.String() != "4950\n" {
		t.Fatalf("output: %q", out.String())
	}
}

// TestCrashSnapshotBounded: however deep the crash and however large the
// panic value and Go stack, the assembled InternalError stays a bounded
// report — the crash *reporting* path must never be its own memory
// exhaustion (a worker pool quarantines crashed VMs by shipping this
// error around).
func TestCrashSnapshotBounded(t *testing.T) {
	vm, _ := newLimited(gc.DefaultRefCountConfig(), Limits{})
	code := &pycode.Code{
		Name:     strings.Repeat("f", 4096), // absurd function name
		Filename: "<deep>",
		Code:     []pycode.Instr{{Op: pycode.NOP}},
	}
	f := &pyobj.Frame{Code: code}
	const depth = 5000
	for i := 0; i < depth; i++ {
		vm.noteUnwind(f)
	}
	hugeCause := strings.Repeat("x", 1<<20)
	hugeStack := []byte(strings.Repeat("goroutine 1 [running]\n", 1<<15))
	ie := vm.internalError(hugeCause, hugeStack)

	if len(ie.State.Frames) != maxUnwindNotes {
		t.Fatalf("frames: want cap %d, got %d", maxUnwindNotes, len(ie.State.Frames))
	}
	if ie.State.Depth != depth {
		t.Errorf("true depth: want %d, got %d", depth, ie.State.Depth)
	}
	if n := len(ie.State.Frames[0].Func); n > maxFuncRepr+len("...[truncated]") {
		t.Errorf("frame func name not capped: %d bytes", n)
	}
	if n := len(ie.Stack); n > maxStackBytes+64 {
		t.Errorf("Go stack not capped: %d bytes", n)
	}
	repr, ok := ie.Cause.(string)
	if !ok {
		t.Fatalf("huge non-error cause should be rendered to string, got %T", ie.Cause)
	}
	if len(repr) > maxCauseRepr+32 {
		t.Errorf("cause repr not capped: %d bytes", len(repr))
	}
	if n := len(ie.Error()); n > maxCauseRepr+1024 {
		t.Errorf("Error() rendering not bounded: %d bytes", n)
	}
	// The snapshot buffers reset for the next run.
	if len(vm.unwound) != 0 || vm.unwoundTotal != 0 {
		t.Error("unwind buffers not reset after snapshot")
	}
}

// TestCrashSnapshotKeepsErrorIdentity: a small error panic value passes
// through uncapped so errors.Is/As through Unwrap keep working.
func TestCrashSnapshotKeepsErrorIdentity(t *testing.T) {
	sentinel := errors.New("sentinel bug")
	vm, _ := newLimited(gc.DefaultRefCountConfig(), Limits{})
	ie := vm.internalError(sentinel, nil)
	if !errors.Is(ie, sentinel) {
		t.Fatal("small error cause must survive for errors.Is")
	}
}

// ---- Step-slice yield hook (scheduler preemption points) ----

// TestYieldUnlimitedJobStillParks is the regression test for the
// "unlimited jobs never yield" bug: with no limits armed, nextCheck used
// to stay ^uint64(0) and a job could never be preempted. The slice
// quantum must install its own nextCheck term independent of Limits.
func TestYieldUnlimitedJobStillParks(t *testing.T) {
	src := `
acc = 0
for i in xrange(2000):
    acc = acc + i
print(acc)
`
	vm, out := newLimited(gc.DefaultRefCountConfig(), Limits{}) // no limits at all
	var yields int
	vm.SetYield(64, func() time.Duration {
		yields++
		return 0
	})
	if vm.nextCheck == ^uint64(0) {
		t.Fatal("quantum armed but nextCheck still unreachable")
	}
	if err := vm.RunSource("<unlimited>", src); err != nil {
		t.Fatalf("run: %v", err)
	}
	if yields == 0 {
		t.Fatal("unlimited job never reached a yield point")
	}
	if !strings.Contains(out.String(), "1999000") {
		t.Fatalf("wrong output: %q", out.String())
	}
	// Disarming restores the unreachable threshold for a limitless VM.
	vm.SetYield(0, nil)
	if vm.nextCheck != ^uint64(0) {
		t.Fatalf("disarmed unlimited VM: nextCheck = %d", vm.nextCheck)
	}
}

// TestYieldActuallyParksGoroutine: the yield hook may block — the VM's
// goroutine parks with the Python frame stack live — and execution
// resumes exactly where it left off when the hook returns.
func TestYieldActuallyParksGoroutine(t *testing.T) {
	src := `
acc = 0
for i in xrange(500):
    acc = acc + i
print(acc)
`
	vm, out := newLimited(gc.DefaultRefCountConfig(), Limits{})
	parked := make(chan struct{})
	resume := make(chan struct{})
	first := true
	vm.SetYield(64, func() time.Duration {
		if first {
			first = false
			parked <- struct{}{}
			<-resume
		}
		return 0
	})
	done := make(chan error, 1)
	go func() { done <- vm.RunSource("<park>", src) }()
	select {
	case <-parked:
	case err := <-done:
		t.Fatalf("run finished without yielding: %v", err)
	}
	// The job is parked mid-loop; nothing should complete until resumed.
	select {
	case err := <-done:
		t.Fatalf("parked job completed: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(resume)
	if err := <-done; err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !strings.Contains(out.String(), "124750") {
		t.Fatalf("wrong output after park/resume: %q", out.String())
	}
}

// TestYieldCreditsDeadline: time spent parked by the scheduler must not
// count against the job's own wall-clock budget — the hook's returned
// parked duration is credited to deadlineAt.
func TestYieldCreditsDeadline(t *testing.T) {
	src := `
acc = 0
for i in xrange(3000):
    acc = acc + i
print(acc)
`
	vm, _ := newLimited(gc.DefaultRefCountConfig(), Limits{Deadline: 40 * time.Millisecond})
	once := true
	vm.SetYield(64, func() time.Duration {
		if once {
			once = false
			// Park well past the job's whole deadline, then report it.
			d := 80 * time.Millisecond
			time.Sleep(d)
			return d
		}
		return 0
	})
	if err := vm.RunSource("<credit>", src); err != nil {
		t.Fatalf("parked time charged against deadline: %v", err)
	}

	// Control: same park without the credit (hook lies and returns 0)
	// must trip the deadline — proving the credit is what saved the run
	// above, not timing slack.
	vm2, _ := newLimited(gc.DefaultRefCountConfig(), Limits{Deadline: 40 * time.Millisecond})
	once2 := true
	vm2.SetYield(64, func() time.Duration {
		if once2 {
			once2 = false
			time.Sleep(80 * time.Millisecond)
		}
		return 0
	})
	if err := vm2.RunSource("<nocredit>", src); errKind(err) != "TimeoutError" {
		t.Fatalf("uncredited park should trip deadline, got %v", err)
	}
}

// TestYieldCoexistsWithStepBudget: slicing must not change step-budget
// semantics — the budget still trips at the same boundary with a quantum
// armed, and yields keep happening up to that point.
func TestYieldCoexistsWithStepBudget(t *testing.T) {
	src := `
acc = 0
for i in xrange(50):
    acc = acc + i
print(acc)
`
	vm, _ := newLimited(gc.DefaultRefCountConfig(), Limits{})
	if err := vm.RunSource("<measure>", src); err != nil {
		t.Fatalf("unlimited run: %v", err)
	}
	total := vm.Stats.Bytecodes

	for _, q := range []uint64{1, 7, 64} {
		vm, out := newLimited(gc.DefaultRefCountConfig(), Limits{MaxSteps: total})
		yields := 0
		vm.SetYield(q, func() time.Duration { yields++; return 0 })
		if err := vm.RunSource("<exact>", src); err != nil {
			t.Fatalf("quantum %d: budget == length should complete, got %v", q, err)
		}
		if !strings.Contains(out.String(), "1225") {
			t.Fatalf("quantum %d: wrong output %q", q, out.String())
		}
		if yields == 0 {
			t.Fatalf("quantum %d: no yields in a %d-bytecode run", q, total)
		}

		vm, _ = newLimited(gc.DefaultRefCountConfig(), Limits{MaxSteps: total - 1})
		vm.SetYield(q, func() time.Duration { return 0 })
		if err := vm.RunSource("<short>", src); errKind(err) != "TimeoutError" {
			t.Fatalf("quantum %d: budget-1 want TimeoutError, got %v", q, err)
		}
	}
}
