// Package telemetry is the serving stack's always-on metrics core: a
// small, allocation-free set of instruments (sharded atomic counters,
// log-bucketed latency histograms, point-in-time gauges) plus a
// Prometheus text-format exposition writer.
//
// The design discipline mirrors the resource governor's: telemetry is
// host bookkeeping, never simulated work. Nothing here emits micro-events
// or touches the attribution pipeline, and the record path takes no locks
// and performs no allocations — a counter add is one atomic RMW on a
// padded cache line, a histogram observation is two. All record methods
// are safe on nil receivers, so an unwired subsystem pays a single
// predictable branch.
//
// Scrapes (Registry.WritePrometheus) are the slow path: they read the
// same atomic cells the recorders write, so a scrape concurrent with
// recording sees a torn-but-monotonic snapshot — every counter value is
// one that existed at some instant, never garbage, and successive scrapes
// never go backwards. Recording is ordered so a histogram's bucket totals
// always cover at least its count (see Histogram).
package telemetry

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// shards is the number of cells a Counter spreads its adds across. Power
// of two; sized so a machine's worth of Ps rarely collide on one line.
const shards = 16

// cell is a cache-line-padded atomic counter, so adjacent shards (and
// adjacent histogram buckets) never false-share.
type cell struct {
	n atomic.Uint64
	_ [7]uint64
}

// shardSeq hands out shard hints round-robin as Ps first ask for one.
var shardSeq atomic.Uint32

// shardPool caches one shard hint per P: Get/Put are per-P and
// allocation-free at steady state, so concurrent recorders on different
// Ps settle onto different cells without any global contention point.
var shardPool = sync.Pool{New: func() interface{} {
	h := new(uint32)
	*h = shardSeq.Add(1) * 0x9E3779B9 // golden-ratio spread
	return h
}}

// shard returns this goroutine's (really: this P's) preferred shard.
func shard() uint32 {
	h := shardPool.Get().(*uint32)
	s := *h
	shardPool.Put(h)
	return s & (shards - 1)
}

// Counter is a monotonically increasing sharded atomic counter. The zero
// value is unusable; obtain one from Registry.Counter or CounterVec. All
// methods are safe on a nil receiver (no-op / zero).
type Counter struct {
	cells [shards]cell
}

// Add adds n to the counter.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.cells[shard()].n.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the counter's current total.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var t uint64
	for i := range c.cells {
		t += c.cells[i].n.Load()
	}
	return t
}

// CounterVec is a fixed family of counters keyed by one label whose value
// set is known at construction (exit classes, overhead categories). The
// record path indexes an array — no map lookups, no allocation.
type CounterVec struct {
	children []*Counter
}

// Add adds n to the child at label index i. Out-of-range indexes are
// dropped rather than panicking (a malformed class must not take down
// the record path). Safe on a nil receiver.
func (v *CounterVec) Add(i int, n uint64) {
	if v == nil || i < 0 || i >= len(v.children) {
		return
	}
	v.children[i].Add(n)
}

// Inc adds one to the child at label index i.
func (v *CounterVec) Inc(i int) { v.Add(i, 1) }

// Value returns the current total of the child at label index i.
func (v *CounterVec) Value(i int) uint64 {
	if v == nil || i < 0 || i >= len(v.children) {
		return 0
	}
	return v.children[i].Value()
}

// collector is one registered metric family, exposable in Prometheus
// text format.
type collector interface {
	expose(w io.Writer) error
}

// Registry holds registered metric families and renders them in
// registration order. Registration takes a lock; recording never does.
type Registry struct {
	mu   sync.Mutex
	fams []collector
	seen map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{seen: make(map[string]bool)}
}

// register validates the family name and appends the collector.
func (r *Registry) register(name string, c collector) {
	if !validName(name) {
		panic("telemetry: invalid metric name " + name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seen[name] {
		panic("telemetry: duplicate metric name " + name)
	}
	r.seen[name] = true
	r.fams = append(r.fams, c)
}

// validName checks the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, &counterFam{name: name, help: help, children: []counterChild{{labels: "", c: c}}})
	return c
}

// CounterVec registers a counter family keyed by one label over a fixed
// value set.
func (r *Registry) CounterVec(name, help, label string, values []string) *CounterVec {
	fam := &counterFam{name: name, help: help}
	v := &CounterVec{}
	for _, val := range values {
		c := &Counter{}
		v.children = append(v.children, c)
		fam.children = append(fam.children, counterChild{labels: renderLabel(label, val), c: c})
	}
	r.register(name, fam)
	return v
}

// GaugeFunc registers a point-in-time gauge evaluated at scrape time.
// The callback runs on the scrape path only, so it may take locks (e.g.
// snapshotting pool occupancy under the pool mutex).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, &gaugeFam{name: name, help: help, fn: fn})
}

// GaugeFuncVec registers a gauge family keyed by one label over a fixed
// value set, evaluated at scrape time: fn(i) is called with the label
// index for each series (e.g. per-backend health in a routing tier).
// Like GaugeFunc, the callback runs on the scrape path only.
func (r *Registry) GaugeFuncVec(name, help, label string, values []string, fn func(i int) float64) {
	fam := &gaugeVecFam{name: name, help: help, fn: fn}
	for _, val := range values {
		fam.labels = append(fam.labels, renderLabel(label, val))
	}
	r.register(name, fam)
}

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]collector, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	for _, f := range fams {
		if err := f.expose(w); err != nil {
			return err
		}
	}
	return nil
}

// renderLabel renders a single-pair label set, escaping the value per the
// exposition format.
func renderLabel(label, value string) string {
	return "{" + label + `="` + escapeLabel(value) + `"}`
}

func escapeLabel(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

// counterFam renders one counter family.
type counterFam struct {
	name, help string
	children   []counterChild
}

type counterChild struct {
	labels string
	c      *Counter
}

func (f *counterFam) expose(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", f.name, f.help, f.name); err != nil {
		return err
	}
	for _, ch := range f.children {
		if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, ch.labels, ch.c.Value()); err != nil {
			return err
		}
	}
	return nil
}

// gaugeFam renders one callback gauge.
type gaugeFam struct {
	name, help string
	fn         func() float64
}

func (f *gaugeFam) expose(w io.Writer) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
		f.name, f.help, f.name, f.name, formatFloat(f.fn()))
	return err
}

// gaugeVecFam renders one labelled callback-gauge family.
type gaugeVecFam struct {
	name, help string
	labels     []string
	fn         func(i int) float64
}

func (f *gaugeVecFam) expose(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", f.name, f.help, f.name); err != nil {
		return err
	}
	for i, labels := range f.labels {
		if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labels, formatFloat(f.fn(i))); err != nil {
			return err
		}
	}
	return nil
}

// formatFloat renders a float the way Prometheus expects (shortest
// round-trip representation).
func formatFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}
