package telemetry

import (
	"fmt"
	"io"
	"math/bits"
	"time"
)

// Histogram bucket layout: fixed powers-of-two upper bounds in
// nanoseconds. Bucket i covers values up to 2^(histFirstExp+i) ns
// inclusive; one overflow bucket catches everything beyond the last
// finite bound. 28 finite buckets from 1.024 µs to ~137 s span every
// latency a served job can legally exhibit (the watchdog condemns
// anything slower).
const (
	histFirstExp = 10 // first finite upper bound: 2^10 ns = 1.024 µs
	histBuckets  = 28 // last finite upper bound: 2^37 ns ≈ 137 s
)

// Histogram is a log-bucketed latency histogram with a lock-free,
// allocation-free record path: one atomic add on the value's bucket and
// one on the sum cell, each on its own padded cache line. The zero value
// is unusable; obtain one from Registry.Histogram or HistogramVec. All
// methods are safe on a nil receiver.
//
// Recording increments the bucket before any reader could derive the
// count, and Snapshot derives the count from the bucket totals, so a
// concurrent scrape always sees cumulative bucket counts that are
// self-consistent (the +Inf cumulative equals the reported count) and
// monotonic across scrapes.
type Histogram struct {
	buckets [histBuckets + 1]cell // [histBuckets] is the +Inf overflow
	sum     cell                  // total observed nanoseconds
}

// bucketFor maps a nanosecond value to its bucket index. Upper bounds
// are inclusive: bucketFor(1024) == 0, bucketFor(1025) == 1.
func bucketFor(ns uint64) int {
	if ns <= 1 {
		return 0
	}
	i := bits.Len64(ns-1) - histFirstExp
	if i < 0 {
		return 0
	}
	if i > histBuckets {
		return histBuckets
	}
	return i
}

// BucketBound returns bucket i's inclusive upper bound; the overflow
// bucket reports the maximum duration.
func BucketBound(i int) time.Duration {
	if i >= histBuckets {
		return time.Duration(1<<63 - 1)
	}
	return time.Duration(uint64(1) << (histFirstExp + i))
}

// NumBuckets is the number of histogram buckets including the overflow.
const NumBuckets = histBuckets + 1

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	ns := uint64(d)
	h.buckets[bucketFor(ns)].n.Add(1)
	h.sum.n.Add(ns)
}

// HistogramSnapshot is a point-in-time read of a histogram.
type HistogramSnapshot struct {
	// Buckets are per-bucket (non-cumulative) observation counts;
	// Buckets[NumBuckets-1] is the overflow bucket.
	Buckets [NumBuckets]uint64
	// Count is the total number of observations (the sum of Buckets).
	Count uint64
	// Sum is the total observed time in nanoseconds. Read after the
	// buckets, so it may lag Count by in-flight observations.
	Sum uint64
}

// Snapshot reads the histogram. Safe concurrently with Observe.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].n.Load()
		s.Count += s.Buckets[i]
	}
	s.Sum = h.sum.n.Load()
	return s
}

// HistogramVec is a fixed family of histograms keyed by one label whose
// value set is known at construction. The record path indexes an array.
type HistogramVec struct {
	children []*Histogram
}

// Observe records d on the child at label index i; out-of-range indexes
// are dropped. Safe on a nil receiver.
func (v *HistogramVec) Observe(i int, d time.Duration) {
	if v == nil || i < 0 || i >= len(v.children) {
		return
	}
	v.children[i].Observe(d)
}

// Snapshot reads the child at label index i.
func (v *HistogramVec) Snapshot(i int) HistogramSnapshot {
	if v == nil || i < 0 || i >= len(v.children) {
		return HistogramSnapshot{}
	}
	return v.children[i].Snapshot()
}

// Histogram registers and returns a new histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	h := &Histogram{}
	r.register(name, &histFam{name: name, help: help, children: []histChild{{labels: "", h: h}}})
	return h
}

// HistogramVec registers a histogram family keyed by one label over a
// fixed value set.
func (r *Registry) HistogramVec(name, help, label string, values []string) *HistogramVec {
	fam := &histFam{name: name, help: help}
	v := &HistogramVec{}
	for _, val := range values {
		h := &Histogram{}
		v.children = append(v.children, h)
		fam.children = append(fam.children, histChild{labels: renderLabel(label, val), h: h})
	}
	r.register(name, fam)
	return v
}

// histFam renders one histogram family. Latencies are exposed in
// seconds, per Prometheus convention; bucket bounds are the power-of-two
// nanosecond bounds converted.
type histFam struct {
	name, help string
	children   []histChild
}

type histChild struct {
	labels string
	h      *Histogram
}

func (f *histFam) expose(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", f.name, f.help, f.name); err != nil {
		return err
	}
	for _, ch := range f.children {
		s := ch.h.Snapshot()
		if err := exposeChild(w, f.name, ch.labels, s); err != nil {
			return err
		}
	}
	return nil
}

// exposeChild writes one histogram series: cumulative buckets, +Inf, sum
// (in seconds), and count.
func exposeChild(w io.Writer, name, labels string, s HistogramSnapshot) error {
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += s.Buckets[i]
		le := float64(uint64(1)<<(histFirstExp+i)) / 1e9
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(labels, formatFloat(le)), cum); err != nil {
			return err
		}
	}
	cum += s.Buckets[histBuckets]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(labels, "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(float64(s.Sum)/1e9)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, cum)
	return err
}

// bucketLabels merges the child's label set with the le label.
func bucketLabels(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}
