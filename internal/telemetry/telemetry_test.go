package telemetry

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	if c.Value() != 0 {
		t.Fatalf("fresh counter = %d", c.Value())
	}
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
}

func TestNilReceiversAreInert(t *testing.T) {
	var c *Counter
	var h *Histogram
	var cv *CounterVec
	var hv *HistogramVec
	c.Add(1)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	h.Observe(time.Second)
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram has observations")
	}
	cv.Add(0, 1)
	cv.Inc(3)
	if cv.Value(0) != 0 {
		t.Fatal("nil counter vec has a value")
	}
	hv.Observe(0, time.Second)
	if s := hv.Snapshot(0); s.Count != 0 {
		t.Fatal("nil histogram vec has observations")
	}
}

func TestVecOutOfRangeDropped(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("vec_total", "help", "k", []string{"a", "b"})
	cv.Inc(-1)
	cv.Inc(2)
	cv.Inc(1)
	if cv.Value(0) != 0 || cv.Value(1) != 1 {
		t.Fatalf("vec = %d/%d, want 0/1", cv.Value(0), cv.Value(1))
	}
	hv := r.HistogramVec("vec_seconds", "help", "k", []string{"a"})
	hv.Observe(7, time.Second)
	if s := hv.Snapshot(0); s.Count != 0 {
		t.Fatalf("out-of-range observe landed: %+v", s)
	}
}

// TestHistogramBucketBoundaries pins the bucket map at the powers-of-two
// edges: an upper bound is inclusive, one past it rolls to the next
// bucket, and everything past the last finite bound lands in overflow.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		ns     uint64
		bucket int
	}{
		{0, 0},
		{1, 0},
		{1023, 0},
		{1024, 0}, // 2^10: inclusive upper bound of bucket 0
		{1025, 1}, // one past the bound rolls over
		{2048, 1}, // 2^11
		{2049, 2},
		{1 << 20, 10}, // 2^20 = bound of bucket 10
		{1<<20 + 1, 11},
		{1 << 37, histBuckets - 1}, // last finite bound, inclusive
		{1<<37 + 1, histBuckets},   // overflow
		{^uint64(0) >> 1, histBuckets},
	}
	for _, tc := range cases {
		if got := bucketFor(tc.ns); got != tc.bucket {
			t.Errorf("bucketFor(%d) = %d, want %d", tc.ns, got, tc.bucket)
		}
	}

	// Observe at each boundary and check the snapshot places them.
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "help")
	h.Observe(1024 * time.Nanosecond)
	h.Observe(1025 * time.Nanosecond)
	h.Observe(time.Duration(1)<<37 + 1) // overflow
	h.Observe(-time.Second)             // clamps to zero → bucket 0
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	if s.Buckets[0] != 2 || s.Buckets[1] != 1 || s.Buckets[histBuckets] != 1 {
		t.Fatalf("bucket placement: %v", s.Buckets)
	}
	wantSum := uint64(1024 + 1025 + (1<<37 + 1))
	if s.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", s.Sum, wantSum)
	}
}

func TestBucketBoundMatchesBucketFor(t *testing.T) {
	for i := 0; i < histBuckets; i++ {
		b := uint64(BucketBound(i))
		if got := bucketFor(b); got != i {
			t.Errorf("bound of bucket %d maps to bucket %d", i, got)
		}
		if got := bucketFor(b + 1); got != i+1 {
			t.Errorf("bound+1 of bucket %d maps to bucket %d, want %d", i, got, i+1)
		}
	}
}

// TestConcurrentRecordersAndScrapes is the package's -race gate: parallel
// recorders hammer a counter, a counter vec, and a histogram while
// concurrent scrapers take snapshots and renders; every snapshot must be
// self-consistent (histogram count equals its bucket total, by
// construction) and monotonic with respect to the previous one.
func TestConcurrentRecordersAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "help")
	cv := r.CounterVec("conc_class_total", "help", "class", []string{"a", "b", "c"})
	h := r.Histogram("conc_seconds", "help")
	r.GaugeFunc("conc_gauge", "help", func() float64 { return float64(c.Value()) })

	const (
		recorders = 8
		perG      = 2000
	)
	var wg sync.WaitGroup
	for g := 0; g < recorders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				cv.Inc(i % 3)
				h.Observe(time.Duration(i%1000) * time.Microsecond)
			}
		}(g)
	}

	stop := make(chan struct{})
	scrapeErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		var lastCount, lastCounter uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			var bucketTotal uint64
			for _, b := range s.Buckets {
				bucketTotal += b
			}
			if bucketTotal != s.Count {
				scrapeErr <- fmt.Errorf("snapshot count %d != bucket total %d", s.Count, bucketTotal)
				return
			}
			if s.Count < lastCount {
				scrapeErr <- fmt.Errorf("histogram count went backwards: %d < %d", s.Count, lastCount)
				return
			}
			lastCount = s.Count
			v := c.Value()
			if v < lastCounter {
				scrapeErr <- fmt.Errorf("counter went backwards: %d < %d", v, lastCounter)
				return
			}
			lastCounter = v
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				scrapeErr <- err
				return
			}
		}
	}()

	// Recorders and scraper all share wg; stop the scraper once the
	// counter shows every recorder finished.
	waitTotal := uint64(recorders * perG)
	for c.Value() < waitTotal {
		select {
		case err := <-scrapeErr:
			t.Fatal(err)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-scrapeErr:
		t.Fatal(err)
	default:
	}

	if c.Value() != waitTotal {
		t.Fatalf("counter = %d, want %d", c.Value(), waitTotal)
	}
	var vecTotal uint64
	for i := 0; i < 3; i++ {
		vecTotal += cv.Value(i)
	}
	if vecTotal != waitTotal {
		t.Fatalf("vec total = %d, want %d", vecTotal, waitTotal)
	}
	if s := h.Snapshot(); s.Count != waitTotal {
		t.Fatalf("histogram count = %d, want %d", s.Count, waitTotal)
	}
}

// TestExpositionFormat checks the rendered text: HELP/TYPE headers,
// counter and gauge lines, cumulative histogram buckets ending at +Inf,
// and label escaping.
func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Total jobs.")
	c.Add(7)
	cv := r.CounterVec("class_total", "Per class.", "class", []string{`we"ird`, "ok"})
	cv.Add(1, 3)
	r.GaugeFunc("workers", "Live workers.", func() float64 { return 4 })
	h := r.Histogram("lat_seconds", "Latency.")
	h.Observe(1024 * time.Nanosecond) // bucket 0
	h.Observe(3 * time.Microsecond)   // bucket 2 (bound 4.096 µs)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# HELP jobs_total Total jobs.\n# TYPE jobs_total counter\njobs_total 7\n",
		`class_total{class="we\"ird"} 0`,
		`class_total{class="ok"} 3`,
		"# TYPE workers gauge\nworkers 4\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="1.024e-06"} 1`,
		`lat_seconds_bucket{le="4.096e-06"} 2`,
		`lat_seconds_bucket{le="+Inf"} 2`,
		"lat_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}

	// Buckets must be cumulative and non-decreasing.
	var last uint64
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "lat_seconds_bucket") {
			continue
		}
		var v uint64
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &v); err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("bucket counts not cumulative: %q after %d", line, last)
		}
		last = v
	}
}

func TestRegistryRejectsBadAndDuplicateNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_name", "h")
	for _, bad := range []string{"", "9lead", "sp ace", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q accepted", bad)
				}
			}()
			r.Counter(bad, "h")
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate name accepted")
			}
		}()
		r.Counter("ok_name", "h")
	}()
}
