package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestGrowableCounterVecSlots(t *testing.T) {
	reg := NewRegistry()
	v := reg.GrowableCounterVec("grow_total", "help", "backend", []string{"a", "b"})
	if got := v.Slot("a"); got != 0 {
		t.Fatalf("Slot(a) = %d, want 0", got)
	}
	if got := v.Slot("b"); got != 1 {
		t.Fatalf("Slot(b) = %d, want 1", got)
	}
	c := v.Slot("c")
	if c != 2 {
		t.Fatalf("Slot(c) = %d, want 2", c)
	}
	// Re-asking for an existing value returns the original slot.
	if got := v.Slot("a"); got != 0 {
		t.Fatalf("Slot(a) after growth = %d, want 0", got)
	}
	v.Inc(0)
	v.Add(c, 5)
	if got := v.Value(0); got != 1 {
		t.Fatalf("Value(0) = %d, want 1", got)
	}
	if got := v.Value(c); got != 5 {
		t.Fatalf("Value(c) = %d, want 5", got)
	}
	// Out-of-range and negative indexes are dropped, not panics.
	v.Inc(99)
	v.Inc(-1)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		`grow_total{backend="a"} 1`,
		`grow_total{backend="b"} 0`,
		`grow_total{backend="c"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestGrowableCounterVecConcurrent(t *testing.T) {
	reg := NewRegistry()
	v := reg.GrowableCounterVec("grow_conc_total", "help", "backend", nil)
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Every worker records on a shared slot while half of them
			// also grow the vec: growth must never tear the record path.
			shared := v.Slot("shared")
			for i := 0; i < perWorker; i++ {
				v.Inc(shared)
				if w%2 == 0 && i%100 == 0 {
					v.Slot(string(rune('a' + w)))
				}
			}
		}(w)
	}
	wg.Wait()
	if got := v.Value(v.Slot("shared")); got != workers*perWorker {
		t.Fatalf("shared slot = %d, want %d", got, workers*perWorker)
	}
}

func TestGrowableHistogramVec(t *testing.T) {
	reg := NewRegistry()
	v := reg.GrowableHistogramVec("grow_seconds", "help", "backend", []string{"a"})
	v.Observe(0, 2*time.Millisecond)
	b := v.Slot("b")
	v.Observe(b, 4*time.Millisecond)
	if got := v.Snapshot(0).Count; got != 1 {
		t.Fatalf("Snapshot(0).Count = %d, want 1", got)
	}
	if got := v.Snapshot(b).Count; got != 1 {
		t.Fatalf("Snapshot(b).Count = %d, want 1", got)
	}
	v.Observe(99, time.Millisecond) // dropped
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, `grow_seconds_count{backend="a"} 1`) {
		t.Errorf("exposition missing series a:\n%s", out)
	}
	if !strings.Contains(out, `grow_seconds_count{backend="b"} 1`) {
		t.Errorf("exposition missing series b:\n%s", out)
	}
}

func TestDynamicGaugeFunc(t *testing.T) {
	reg := NewRegistry()
	series := []LabelValue{{Value: "x", V: 1}}
	var mu sync.Mutex
	reg.DynamicGaugeFunc("dyn_up", "help", "backend", func() []LabelValue {
		mu.Lock()
		defer mu.Unlock()
		out := make([]LabelValue, len(series))
		copy(out, series)
		return out
	})
	var sb strings.Builder
	_ = reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `dyn_up{backend="x"} 1`) {
		t.Fatalf("first scrape missing series x:\n%s", sb.String())
	}
	mu.Lock()
	series = []LabelValue{{Value: "y", V: 0}}
	mu.Unlock()
	sb.Reset()
	_ = reg.WritePrometheus(&sb)
	out := sb.String()
	if strings.Contains(out, `backend="x"`) {
		t.Errorf("second scrape still exposes removed series x:\n%s", out)
	}
	if !strings.Contains(out, `dyn_up{backend="y"} 0`) {
		t.Errorf("second scrape missing series y:\n%s", out)
	}
}

func TestGrowableNilReceivers(t *testing.T) {
	var c *GrowableCounterVec
	var h *GrowableHistogramVec
	if got := c.Slot("a"); got != -1 {
		t.Errorf("nil Slot = %d, want -1", got)
	}
	c.Inc(0)
	c.Add(1, 2)
	if got := c.Value(0); got != 0 {
		t.Errorf("nil Value = %d, want 0", got)
	}
	if got := h.Slot("a"); got != -1 {
		t.Errorf("nil hist Slot = %d, want -1", got)
	}
	h.Observe(0, time.Second)
	if got := h.Snapshot(0).Count; got != 0 {
		t.Errorf("nil Snapshot count = %d, want 0", got)
	}
}
