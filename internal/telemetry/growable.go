package telemetry

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// growable.go extends the fixed-cardinality instrument families with
// variants whose label-value set can grow after registration. They exist
// for the routing tier's hot-reloadable fleet: backends are added and
// removed at runtime, so "one series per backend" cannot be a
// construction-time decision anymore.
//
// The record-path discipline is unchanged: recording loads one atomic
// slice pointer and indexes it — no locks, no allocation. Growth
// (Slot) is the slow path: it takes a mutex, copies the child slice, and
// publishes the extended copy atomically, so concurrent recorders only
// ever see fully-formed states. Label values are never removed — a
// series, once born, reports forever (Prometheus semantics: counters
// from a removed backend stop moving, they do not disappear).

// GrowableCounterVec is a counter family keyed by one label whose value
// set may grow after registration via Slot. All methods are safe on a
// nil receiver.
type GrowableCounterVec struct {
	label string

	mu    sync.Mutex
	slots map[string]int
	state atomic.Pointer[[]counterChild]
}

// GrowableCounterVec registers a growable counter family keyed by label.
// values seeds the initial slots (may be empty).
func (r *Registry) GrowableCounterVec(name, help, label string, values []string) *GrowableCounterVec {
	v := &GrowableCounterVec{label: label, slots: make(map[string]int)}
	empty := []counterChild{}
	v.state.Store(&empty)
	r.register(name, &growCounterFam{name: name, help: help, vec: v})
	for _, val := range values {
		v.Slot(val)
	}
	return v
}

// Slot returns the index of the series for value, creating it if absent.
// Indexes are stable for the lifetime of the vec: a value re-added later
// gets its original slot back.
func (v *GrowableCounterVec) Slot(value string) int {
	if v == nil {
		return -1
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if i, ok := v.slots[value]; ok {
		return i
	}
	old := *v.state.Load()
	next := make([]counterChild, len(old), len(old)+1)
	copy(next, old)
	next = append(next, counterChild{labels: renderLabel(v.label, value), c: &Counter{}})
	i := len(next) - 1
	v.slots[value] = i
	v.state.Store(&next)
	return i
}

// Add adds n to the series at slot i; out-of-range slots are dropped.
func (v *GrowableCounterVec) Add(i int, n uint64) {
	if v == nil || i < 0 {
		return
	}
	st := *v.state.Load()
	if i >= len(st) {
		return
	}
	st[i].c.Add(n)
}

// Inc adds one to the series at slot i.
func (v *GrowableCounterVec) Inc(i int) { v.Add(i, 1) }

// Value returns the current total of the series at slot i.
func (v *GrowableCounterVec) Value(i int) uint64 {
	if v == nil || i < 0 {
		return 0
	}
	st := *v.state.Load()
	if i >= len(st) {
		return 0
	}
	return st[i].c.Value()
}

// growCounterFam renders a growable counter family at scrape time.
type growCounterFam struct {
	name, help string
	vec        *GrowableCounterVec
}

func (f *growCounterFam) expose(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", f.name, f.help, f.name); err != nil {
		return err
	}
	for _, ch := range *f.vec.state.Load() {
		if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, ch.labels, ch.c.Value()); err != nil {
			return err
		}
	}
	return nil
}

// GrowableHistogramVec is a histogram family keyed by one label whose
// value set may grow after registration via Slot. All methods are safe
// on a nil receiver.
type GrowableHistogramVec struct {
	label string

	mu    sync.Mutex
	slots map[string]int
	state atomic.Pointer[[]histChild]
}

// GrowableHistogramVec registers a growable histogram family keyed by
// label. values seeds the initial slots (may be empty).
func (r *Registry) GrowableHistogramVec(name, help, label string, values []string) *GrowableHistogramVec {
	v := &GrowableHistogramVec{label: label, slots: make(map[string]int)}
	empty := []histChild{}
	v.state.Store(&empty)
	r.register(name, &growHistFam{name: name, help: help, vec: v})
	for _, val := range values {
		v.Slot(val)
	}
	return v
}

// Slot returns the index of the series for value, creating it if absent.
func (v *GrowableHistogramVec) Slot(value string) int {
	if v == nil {
		return -1
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if i, ok := v.slots[value]; ok {
		return i
	}
	old := *v.state.Load()
	next := make([]histChild, len(old), len(old)+1)
	copy(next, old)
	next = append(next, histChild{labels: renderLabel(v.label, value), h: &Histogram{}})
	i := len(next) - 1
	v.slots[value] = i
	v.state.Store(&next)
	return i
}

// Observe records d on the series at slot i; out-of-range slots are
// dropped.
func (v *GrowableHistogramVec) Observe(i int, d time.Duration) {
	if v == nil || i < 0 {
		return
	}
	st := *v.state.Load()
	if i >= len(st) {
		return
	}
	st[i].h.Observe(d)
}

// Snapshot reads the series at slot i.
func (v *GrowableHistogramVec) Snapshot(i int) HistogramSnapshot {
	if v == nil || i < 0 {
		return HistogramSnapshot{}
	}
	st := *v.state.Load()
	if i >= len(st) {
		return HistogramSnapshot{}
	}
	return st[i].h.Snapshot()
}

// growHistFam renders a growable histogram family at scrape time.
type growHistFam struct {
	name, help string
	vec        *GrowableHistogramVec
}

func (f *growHistFam) expose(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", f.name, f.help, f.name); err != nil {
		return err
	}
	for _, ch := range *f.vec.state.Load() {
		if err := exposeChild(w, f.name, ch.labels, ch.h.Snapshot()); err != nil {
			return err
		}
	}
	return nil
}

// LabelValue is one series of a dynamic gauge family: a label value and
// its current reading.
type LabelValue struct {
	Value string
	V     float64
}

// DynamicGaugeFunc registers a gauge family whose series set is computed
// fresh at every scrape: fn returns the (label value, reading) pairs to
// expose. It exists for state whose population changes at runtime (the
// routing tier's live fleet). The callback runs on the scrape path only,
// so it may take locks and allocate.
func (r *Registry) DynamicGaugeFunc(name, help, label string, fn func() []LabelValue) {
	r.register(name, &dynGaugeFam{name: name, help: help, label: label, fn: fn})
}

type dynGaugeFam struct {
	name, help, label string
	fn                func() []LabelValue
}

func (f *dynGaugeFam) expose(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", f.name, f.help, f.name); err != nil {
		return err
	}
	for _, lv := range f.fn() {
		if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabel(f.label, lv.Value), formatFloat(lv.V)); err != nil {
			return err
		}
	}
	return nil
}
