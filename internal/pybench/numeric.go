package pybench

func init() {
	register(&Benchmark{
		Name:   "nbody",
		JSName: "n-body",
		Source: `
def advance(bodies, pairs, dt, steps):
    s = 0
    while s < steps:
        for pair in pairs:
            b1 = pair[0]
            b2 = pair[1]
            dx = b1[0][0] - b2[0][0]
            dy = b1[0][1] - b2[0][1]
            dz = b1[0][2] - b2[0][2]
            d2 = dx * dx + dy * dy + dz * dz
            mag = dt / (d2 * math.sqrt(d2))
            m1 = b1[2] * mag
            m2 = b2[2] * mag
            v1 = b1[1]
            v2 = b2[1]
            v1[0] -= dx * m2
            v1[1] -= dy * m2
            v1[2] -= dz * m2
            v2[0] += dx * m1
            v2[1] += dy * m1
            v2[2] += dz * m1
        for b in bodies:
            p = b[0]
            v = b[1]
            p[0] += dt * v[0]
            p[1] += dt * v[1]
            p[2] += dt * v[2]
        s += 1

def energy(bodies):
    e = 0.0
    n = len(bodies)
    i = 0
    while i < n:
        b1 = bodies[i]
        e += 0.5 * b1[2] * (b1[1][0] ** 2 + b1[1][1] ** 2 + b1[1][2] ** 2)
        j = i + 1
        while j < n:
            b2 = bodies[j]
            dx = b1[0][0] - b2[0][0]
            dy = b1[0][1] - b2[0][1]
            dz = b1[0][2] - b2[0][2]
            e -= (b1[2] * b2[2]) / math.sqrt(dx * dx + dy * dy + dz * dz)
            j += 1
        i += 1
    return e

def make_bodies():
    sm = 4.0 * math.pi * math.pi
    dp = 365.24
    return [
        [[0.0, 0.0, 0.0], [0.0, 0.0, 0.0], sm],
        [[4.841431442, -1.160320044, -0.103622044],
         [0.001660076 * dp, 0.007699011 * dp, -0.000069046 * dp], 0.000954791 * sm],
        [[8.343366718, 4.124798564, -0.403523417],
         [-0.002767425 * dp, 0.004998528 * dp, 0.000230417 * dp], 0.000285885 * sm],
        [[12.894369562, -15.111151401, -0.223307578],
         [0.002964601 * dp, 0.002378471 * dp, -0.000029658 * dp], 0.000043662 * sm],
        [[15.379697114, -25.919314609, 0.179258772],
         [0.002680677 * dp, 0.001628241 * dp, -0.000095159 * dp], 0.000051513 * sm]]

bodies = make_bodies()
pairs = []
i = 0
while i < len(bodies):
    j = i + 1
    while j < len(bodies):
        pairs.append((bodies[i], bodies[j]))
        j += 1
    i += 1
print("%.6f" % energy(bodies))
advance(bodies, pairs, 0.01, 800)
print("%.6f" % energy(bodies))
`,
	})

	register(&Benchmark{
		Name:   "float",
		Fig8:   true,
		JSName: "float-mm",
		Source: `
class Point:
    def __init__(self, i):
        self.x = math.sin(i)
        self.y = math.cos(i) * 3.0
        self.z = (self.x * self.x) / 2.0

    def normalize(self):
        norm = math.sqrt(self.x * self.x + self.y * self.y + self.z * self.z)
        self.x = self.x / norm
        self.y = self.y / norm
        self.z = self.z / norm

def maximize(points):
    next_p = points[0]
    i = 1
    while i < len(points):
        p = points[i]
        if next_p.x < p.x:
            next_p.x = p.x
        if next_p.y < p.y:
            next_p.y = p.y
        if next_p.z < p.z:
            next_p.z = p.z
        i += 1
    return next_p

def benchmark(n):
    points = []
    for i in xrange(n):
        points.append(Point(float(i)))
    for p in points:
        p.normalize()
    return maximize(points)

p = benchmark(2500)
print("%.9f %.9f %.9f" % (p.x, p.y, p.z))
`,
		AllocHeavy: true,
	})

	register(&Benchmark{
		Name: "fannkuch",
		Source: `
def fannkuch(n):
    perm1 = range(n)
    count = range(n)
    max_flips = 0
    checksum = 0
    m = n - 1
    r = n
    nperm = 0
    while True:
        while r != 1:
            count[r - 1] = r
            r -= 1
        if perm1[0] != 0 and perm1[m] != m:
            perm = list(perm1)
            flips = 0
            k = perm[0]
            while k != 0:
                i = 0
                j = k
                while i < j:
                    t = perm[i]
                    perm[i] = perm[j]
                    perm[j] = t
                    i += 1
                    j -= 1
                flips += 1
                k = perm[0]
            if flips > max_flips:
                max_flips = flips
            if nperm % 2 == 0:
                checksum += flips
            else:
                checksum -= flips
        while True:
            if r == n:
                return (checksum, max_flips)
            p0 = perm1[0]
            i = 0
            while i < r:
                perm1[i] = perm1[i + 1]
                i += 1
            perm1[r] = p0
            count[r] -= 1
            if count[r] > 0:
                break
            r += 1
        nperm += 1

res = fannkuch(7)
print(res[0], res[1])
`,
		Nursery: true,
	})

	register(&Benchmark{
		Name:   "spectral_norm",
		JSName: "navier-stokes",
		Source: `
def eval_A(i, j):
    return 1.0 / ((i + j) * (i + j + 1) / 2 + i + 1)

def eval_A_times_u(u, n):
    out = []
    for i in xrange(n):
        s = 0.0
        for j in xrange(n):
            s += eval_A(i, j) * u[j]
        out.append(s)
    return out

def eval_At_times_u(u, n):
    out = []
    for i in xrange(n):
        s = 0.0
        for j in xrange(n):
            s += eval_A(j, i) * u[j]
        out.append(s)
    return out

def eval_AtA_times_u(u, n):
    return eval_At_times_u(eval_A_times_u(u, n), n)

def spectral(n):
    u = [1.0] * n
    v = []
    for dummy in xrange(6):
        v = eval_AtA_times_u(u, n)
        u = eval_AtA_times_u(v, n)
    vBv = 0.0
    vv = 0.0
    for i in xrange(n):
        vBv += u[i] * v[i]
        vv += v[i] * v[i]
    return math.sqrt(vBv / vv)

print("%.9f" % spectral(80))
`,
	})

	register(&Benchmark{
		Name: "pidigits",
		Source: `
# pi digits via Machin's formula in fixed-point bignum arithmetic.
# MiniPy ints are fixed width, so the benchmark carries its own long
# arithmetic as base-10000 limb lists - the same work that dominates the
# real pidigits.
def big_scale(digits):
    out = [1]
    for i in xrange(digits):
        carry = 0
        j = 0
        while j < len(out):
            v = out[j] * 10 + carry
            out[j] = v % 10000
            carry = v / 10000
            j += 1
        if carry:
            out.append(carry)
    return out

def big_div_small(a, m):
    out = [0] * len(a)
    rem = 0
    i = len(a) - 1
    while i >= 0:
        cur = rem * 10000 + a[i]
        out[i] = cur / m
        rem = cur % m
        i -= 1
    while len(out) > 1 and out[-1] == 0:
        out.pop()
    return out

def big_add(a, b):
    out = []
    carry = 0
    n = max(len(a), len(b))
    for i in xrange(n):
        v = carry
        if i < len(a):
            v += a[i]
        if i < len(b):
            v += b[i]
        out.append(v % 10000)
        carry = v / 10000
    if carry:
        out.append(carry)
    return out

def big_sub(a, b):
    out = []
    borrow = 0
    for i in xrange(len(a)):
        v = a[i] - borrow
        if i < len(b):
            v -= b[i]
        if v < 0:
            v += 10000
            borrow = 1
        else:
            borrow = 0
        out.append(v)
    while len(out) > 1 and out[-1] == 0:
        out.pop()
    return out

def big_mul_small(a, m):
    out = []
    carry = 0
    for d in a:
        v = d * m + carry
        out.append(v % 10000)
        carry = v / 10000
    while carry > 0:
        out.append(carry % 10000)
        carry = carry / 10000
    while len(out) > 1 and out[-1] == 0:
        out.pop()
    return out

def is_zero(a):
    for d in a:
        if d != 0:
            return False
    return True

def arctan_inv(x, scale):
    # arctan(1/x) * 10^digits, by Taylor series in fixed point.
    term = big_div_small(scale, x)
    total = list(term)
    x2 = x * x
    k = 1
    sign = -1
    while not is_zero(term):
        term = big_div_small(term, x2)
        if is_zero(term):
            break
        part = big_div_small(term, 2 * k + 1)
        if sign > 0:
            total = big_add(total, part)
        else:
            total = big_sub(total, part)
        sign = -sign
        k += 1
    return total

def machin_pi(digits):
    scale = big_scale(digits + 5)
    a = big_mul_small(arctan_inv(5, scale), 16)
    b = big_mul_small(arctan_inv(239, scale), 4)
    return big_sub(a, b)

pi = machin_pi(90)
acc = 0
for limb in pi:
    acc = (acc * 31 + limb) % 1000003
print(len(pi), acc)
`,
	})

	register(&Benchmark{
		Name:   "scimark_fft",
		JSName: "3d-cube",
		Source: `
def fft_transform(data, n):
    # iterative radix-2 over interleaved re/im list
    i = 0
    j = 0
    while i < n:
        if i < j:
            tr = data[2 * i]
            ti = data[2 * i + 1]
            data[2 * i] = data[2 * j]
            data[2 * i + 1] = data[2 * j + 1]
            data[2 * j] = tr
            data[2 * j + 1] = ti
        m = n / 2
        while m >= 1 and j >= m:
            j -= m
            m = m / 2
        j += m
        i += 1
    step = 1
    while step < n:
        theta = -math.pi / step
        wr = 1.0
        wi = 0.0
        wpr = math.cos(theta)
        wpi = math.sin(theta)
        m = 0
        while m < step:
            i = m
            while i < n:
                k = i + step
                tr = wr * data[2 * k] - wi * data[2 * k + 1]
                ti = wr * data[2 * k + 1] + wi * data[2 * k]
                data[2 * k] = data[2 * i] - tr
                data[2 * k + 1] = data[2 * i + 1] - ti
                data[2 * i] += tr
                data[2 * i + 1] += ti
                i += 2 * step
            wtemp = wr
            wr = wr * wpr - wi * wpi
            wi = wi * wpr + wtemp * wpi
            m += 1
        step *= 2

n = 256
data = []
for i in xrange(n):
    data.append(math.sin(0.1 * i))
    data.append(0.0)
for rep in xrange(8):
    fft_transform(data, n)
acc = 0.0
for v in data:
    acc += v * v
print("%.6f" % math.sqrt(acc / n))
`,
	})

	register(&Benchmark{
		Name: "scimark_sor",
		Source: `
def sor(grid, w, h, omega, iters):
    it = 0
    while it < iters:
        y = 1
        while y < h - 1:
            row = grid[y]
            up = grid[y - 1]
            down = grid[y + 1]
            x = 1
            while x < w - 1:
                row[x] = omega * 0.25 * (up[x] + down[x] + row[x - 1] + row[x + 1]) + (1.0 - omega) * row[x]
                x += 1
            y += 1
        it += 1

w = 40
h = 40
grid = []
for y in xrange(h):
    row = []
    for x in xrange(w):
        row.append(float((x * y) % 17) / 17.0)
    grid.append(row)
sor(grid, w, h, 1.25, 12)
acc = 0.0
for row in grid:
    for v in row:
        acc += v
print("%.6f" % acc)
`,
	})

	register(&Benchmark{
		Name: "scimark_lu",
		Source: `
def lu_factor(a, pivot, n):
    j = 0
    while j < n:
        jp = j
        t = abs(a[j][j])
        i = j + 1
        while i < n:
            ab = abs(a[i][j])
            if ab > t:
                jp = i
                t = ab
            i += 1
        pivot[j] = jp
        if jp != j:
            tmp = a[j]
            a[j] = a[jp]
            a[jp] = tmp
        if a[j][j] != 0.0 and j < n - 1:
            recp = 1.0 / a[j][j]
            k = j + 1
            while k < n:
                a[k][j] = a[k][j] * recp
                k += 1
        if j < n - 1:
            ii = j + 1
            while ii < n:
                aii = a[ii]
                aj = a[j]
                f = aii[j]
                jj = j + 1
                while jj < n:
                    aii[jj] -= f * aj[jj]
                    jj += 1
                ii += 1
        j += 1

n = 24
a = []
seed = 1234
for i in xrange(n):
    row = []
    for j in xrange(n):
        seed = (seed * 1103515245 + 12345) % 2147483648
        row.append(float(seed % 1000) / 1000.0 + 0.001)
    a.append(row)
pivot = [0] * n
for rep in xrange(20):
    b = []
    for row in a:
        b.append(list(row))
    lu_factor(b, pivot, n)
acc = 0.0
for i in xrange(n):
    acc += b[i][i]
print("%.6f" % acc)
`,
	})

	register(&Benchmark{
		Name: "scimark_monte",
		Source: `
def monte_carlo(n):
    random.seed(17)
    under = 0
    for i in xrange(n):
        x = random.random()
        y = random.random()
        if x * x + y * y <= 1.0:
            under += 1
    return 4.0 * under / n

print("%.6f" % monte_carlo(40000))
`,
		CLibHeavy: false,
	})

	register(&Benchmark{
		Name: "scimark_sparse",
		Source: `
def sparse_matmult(vals, rows, cols, x, y, iters):
    n = len(rows) - 1
    it = 0
    while it < iters:
        r = 0
        while r < n:
            s = 0.0
            i = rows[r]
            end = rows[r + 1]
            while i < end:
                s += x[cols[i]] * vals[i]
                i += 1
            y[r] = s
            r += 1
        it += 1

n = 300
nz = 5
vals = []
cols = []
rows = [0]
seed = 7
for r in xrange(n):
    for k in xrange(nz):
        seed = (seed * 1103515245 + 12345) % 2147483648
        cols.append(seed % n)
        vals.append(float(seed % 97) / 97.0)
    rows.append(len(vals))
x = [1.0] * n
y = [0.0] * n
sparse_matmult(vals, rows, cols, x, y, 40)
acc = 0.0
for v in y:
    acc += v
print("%.6f" % acc)
`,
	})

	register(&Benchmark{
		Name: "nqueens",
		Source: `
def solve(n, row, cols, diag1, diag2):
    if row == n:
        return 1
    count = 0
    for col in xrange(n):
        d1 = row - col + n
        d2 = row + col
        if cols[col] == 0 and diag1[d1] == 0 and diag2[d2] == 0:
            cols[col] = 1
            diag1[d1] = 1
            diag2[d2] = 1
            count += solve(n, row + 1, cols, diag1, diag2)
            cols[col] = 0
            diag1[d1] = 0
            diag2[d2] = 0
    return count

n = 7
print(solve(n, 0, [0] * n, [0] * (2 * n + 1), [0] * (2 * n + 1)))
`,
	})

	register(&Benchmark{
		Name:    "chaos",
		Nursery: false,
		Source: `
class GVector:
    def __init__(self, x, y):
        self.x = x
        self.y = y

    def linear_combination(self, other, l1, l2):
        return GVector(self.x * l1 + other.x * l2, self.y * l1 + other.y * l2)

def transform_point(point, target, factor):
    return point.linear_combination(target, 1.0 - factor, factor)

def chaos_game(n):
    random.seed(1234)
    corners = [GVector(0.0, 0.0), GVector(1.0, 0.0), GVector(0.5, 0.866)]
    point = GVector(0.3, 0.3)
    xacc = 0.0
    yacc = 0.0
    for i in xrange(n):
        target = corners[random.randint(0, 2)]
        point = transform_point(point, target, 0.5)
        xacc += point.x
        yacc += point.y
    return (xacc / n, yacc / n)

res = chaos_game(12000)
print("%.6f %.6f" % (res[0], res[1]))
`,
		AllocHeavy: true,
	})

	register(&Benchmark{
		Name:   "go",
		Fig8:   true,
		JSName: "earley-boyer",
		Source: `
# Simplified Go playouts: random legal moves on a small board with
# capture-free scoring, modeled on the benchmark suite's go program.
SIZE = 9
EMPTY = 0
BLACK = 1
WHITE = 2

def neighbors(pos):
    out = []
    x = pos % SIZE
    y = pos / SIZE
    if x > 0:
        out.append(pos - 1)
    if x < SIZE - 1:
        out.append(pos + 1)
    if y > 0:
        out.append(pos - SIZE)
    if y < SIZE - 1:
        out.append(pos + SIZE)
    return out

def playout(board, moves):
    color = BLACK
    placed = 0
    tries = 0
    while placed < moves and tries < moves * 4:
        tries += 1
        pos = random.randint(0, SIZE * SIZE - 1)
        if board[pos] != EMPTY:
            continue
        # avoid filling own single-point eyes
        ncount = 0
        own = 0
        for nb in neighbors(pos):
            ncount += 1
            if board[nb] == color:
                own += 1
        if own == ncount:
            continue
        board[pos] = color
        placed += 1
        if color == BLACK:
            color = WHITE
        else:
            color = BLACK
    return placed

def score(board):
    black = 0
    white = 0
    for v in board:
        if v == BLACK:
            black += 1
        elif v == WHITE:
            white += 1
    return black - white

random.seed(42)
total = 0
for game in xrange(60):
    board = [EMPTY] * (SIZE * SIZE)
    playout(board, 70)
    total += score(board)
print(total)
`,
	})

	register(&Benchmark{
		Name: "meteor_contest",
		Source: `
# Bitboard puzzle search in the style of meteor_contest: place pieces on a
# small board using bitmask backtracking.
WIDTH = 5
HEIGHT = 5

def first_free(used, cells):
    i = 0
    while i < cells:
        if used & (1 << i) == 0:
            return i
        i += 1
    return -1

def solve(used, pieces_left, masks, count, depth):
    cells = WIDTH * HEIGHT
    if pieces_left == 0:
        return count + 1
    if depth > 6:
        return count
    anchor = first_free(used, cells)
    if anchor < 0:
        return count
    for mask in masks:
        shifted = mask << anchor
        if shifted >= (1 << cells):
            continue
        if shifted & (1 << anchor) == 0:
            continue
        if used & shifted == 0:
            count = solve(used | shifted, pieces_left - 1, masks, count, depth + 1)
    return count

masks = [3, 7, 35, 33, 97, 1, 15]
print(solve(0, 4, masks, 0, 0))
`,
	})
}
