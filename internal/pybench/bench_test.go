package pybench

import (
	"flag"
	"os"
	"sort"
	"strings"
	"testing"

	"repro/internal/runtime"
)

var update = flag.Bool("update", false, "regenerate testdata/checksums.txt")

const checksumFile = "testdata/checksums.txt"

// loadChecksums parses the golden file: "name<TAB>output-with-\n-escaped".
func loadChecksums(t *testing.T) map[string]string {
	t.Helper()
	data, err := os.ReadFile(checksumFile)
	if err != nil {
		t.Fatalf("read %s: %v (run with -update to generate)", checksumFile, err)
	}
	out := map[string]string{}
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, "\t", 2)
		if len(parts) != 2 {
			t.Fatalf("malformed golden line %q", line)
		}
		out[parts[0]] = strings.ReplaceAll(parts[1], "\\n", "\n")
	}
	return out
}

// runOn executes a benchmark on the given mode without timing simulation.
func runOn(t *testing.T, b *Benchmark, mode runtime.Mode) string {
	t.Helper()
	cfg := runtime.DefaultConfig(mode)
	cfg.Core = runtime.CountOnly
	cfg.Warmups = 0
	cfg.Measures = 1
	cfg.MaxBytecodes = 500_000_000
	r, err := runtime.NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(b.Name, b.Source)
	if err != nil {
		t.Fatalf("%s on %s: %v", b.Name, mode, err)
	}
	return res.Output
}

// TestChecksums verifies every benchmark against the golden outputs on the
// CPython-mode interpreter (or regenerates them with -update).
func TestChecksums(t *testing.T) {
	if *update {
		var lines []string
		for _, b := range All() {
			out := runOn(t, b, runtime.CPython)
			if out == "" {
				t.Fatalf("%s produced no output", b.Name)
			}
			lines = append(lines, b.Name+"\t"+strings.ReplaceAll(out, "\n", "\\n"))
		}
		sort.Strings(lines)
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(checksumFile, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d checksums", len(lines))
		return
	}
	golden := loadChecksums(t)
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			want, ok := golden[b.Name]
			if !ok {
				t.Fatalf("no golden checksum (run go test -run TestChecksums -update)")
			}
			if got := runOn(t, b, runtime.CPython); got != want {
				t.Errorf("output changed\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
	for name := range golden {
		if _, err := ByName(name); err != nil {
			t.Errorf("golden entry %q has no benchmark", name)
		}
	}
}

// TestCrossRuntimeConsistency verifies all four run-time configurations
// compute identical outputs for every benchmark — the repository's
// strongest end-to-end invariant (interpreter, both collectors, and both
// JIT flavours share semantics).
func TestCrossRuntimeConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: runs every benchmark on four runtimes")
	}
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			ref := runOn(t, b, runtime.CPython)
			for _, mode := range []runtime.Mode{runtime.PyPyNoJIT, runtime.PyPyJIT, runtime.V8Like} {
				if got := runOn(t, b, mode); got != ref {
					t.Errorf("%s output differs from cpython\n--- %s ---\n%s--- cpython ---\n%s",
						mode, mode, got, ref)
				}
			}
		})
	}
}

// TestSuiteShape sanity-checks the figure sets.
func TestSuiteShape(t *testing.T) {
	if n := len(All()); n < 30 {
		t.Errorf("suite too small: %d benchmarks", n)
	}
	if n := len(Fig8Set()); n != 8 {
		names := []string{}
		for _, b := range Fig8Set() {
			names = append(names, b.Name)
		}
		t.Errorf("Fig 8 set should have 8 benchmarks, got %d: %v", n, names)
	}
	if n := len(NurserySet()); n != 8 {
		names := []string{}
		for _, b := range NurserySet() {
			names = append(names, b.Name)
		}
		t.Errorf("nursery set should have 8 benchmarks, got %d: %v", n, names)
	}
	if n := len(JetStreamSet()); n < 8 {
		t.Errorf("JetStream set too small: %d", n)
	}
	seen := map[string]bool{}
	for _, b := range All() {
		if b.Source == "" {
			t.Errorf("%s has no source", b.Name)
		}
		if seen[b.Name] {
			t.Errorf("duplicate %s", b.Name)
		}
		seen[b.Name] = true
	}
}
