package pybench

// String- and template-heavy benchmarks: template engines (spitfire, mako,
// chameleon), markup generation (pyxl_bench), tokenization (html5lib,
// eparse), formatting (logging_format), and repository-log walking
// (dulwich_log).

func init() {
	register(&Benchmark{
		Name:       "spitfire",
		AllocHeavy: true,
		Nursery:    true,
		Fig8:       true,
		Source: `
# Spitfire-style template rendering: build an HTML table row by row with
# string interpolation, accumulating into a list of fragments.
def render_table(rows, cols):
    out = []
    out.append("<table>")
    for r in xrange(rows):
        out.append("<tr class='r%d'>" % (r % 2))
        for c in xrange(cols):
            out.append("<td>%d</td>" % (r * cols + c))
        out.append("</tr>")
    out.append("</table>")
    return "".join(out)

total = 0
for rep in xrange(6):
    html = render_table(100, 10)
    total += len(html)
print(total)
`,
	})

	register(&Benchmark{
		Name:       "spitfire_cstringio",
		AllocHeavy: true,
		Source: `
# The cStringIO variant accumulates into one growing buffer string
# instead of a fragment list (worse: quadratic-ish concatenation churn).
def render_table(rows, cols):
    buf = []
    line = ""
    for r in xrange(rows):
        line = "<tr class='r%d'>" % (r % 2)
        for c in xrange(cols):
            line = line + "<td>%d</td>" % (r * cols + c)
        line = line + "</tr>"
        buf.append(line)
    return "".join(buf)

total = 0
for rep in xrange(6):
    html = render_table(90, 10)
    total += len(html)
print(total)
`,
	})

	register(&Benchmark{
		Name:       "mako",
		AllocHeavy: true,
		JSName:     "tagcloud",
		Source: `
# Mako-style templating: compile a template into segments once, then
# render many contexts against it.
def compile_template(tmpl):
    segs = []
    i = 0
    while i < len(tmpl):
        j = tmpl.find("${", i)
        if j < 0:
            segs.append((0, tmpl[i:]))
            break
        if j > i:
            segs.append((0, tmpl[i:j]))
        k = tmpl.find("}", j)
        segs.append((1, tmpl[j + 2:k]))
        i = k + 1
    return segs

def render(segs, ctx):
    out = []
    for seg in segs:
        if seg[0] == 0:
            out.append(seg[1])
        else:
            out.append(str(ctx[seg[1]]))
    return "".join(out)

template = "<html><head><title>${title}</title></head><body><h1>${title}</h1><p>User ${user} has ${points} points (rank ${rank}).</p><ul><li>${a}</li><li>${b}</li><li>${c}</li></ul></body></html>"
segs = compile_template(template)
total = 0
for i in xrange(900):
    ctx = {"title": "Page %d" % i, "user": "u%d" % (i % 50),
           "points": i * 3, "rank": i % 10, "a": i, "b": i * i % 997, "c": "x" * (i % 5)}
    total += len(render(segs, ctx))
print(total)
`,
	})

	register(&Benchmark{
		Name:       "chameleon",
		AllocHeavy: true,
		Source: `
# Chameleon-style attribute templating: walk a node tree substituting
# attributes, serializing to markup.
class Node:
    def __init__(self, tag, attrs, children, text):
        self.tag = tag
        self.attrs = attrs
        self.children = children
        self.text = text

def build_tree(depth, fan):
    if depth == 0:
        return Node("span", {"class": "leaf"}, [], "leaf")
    kids = []
    for i in xrange(fan):
        kids.append(build_tree(depth - 1, fan))
    return Node("div", {"class": "level%d" % depth, "data-n": str(depth * fan)}, kids, "")

def serialize(node, out, ctx):
    out.append("<")
    out.append(node.tag)
    for k in sorted(node.attrs.keys()):
        out.append(" %s='%s'" % (k, node.attrs[k]))
    out.append(">")
    if node.text != "":
        out.append(node.text + str(ctx))
    for child in node.children:
        serialize(child, out, ctx)
    out.append("</%s>" % node.tag)

tree = build_tree(4, 3)
total = 0
for rep in xrange(12):
    out = []
    serialize(tree, out, rep)
    total += len("".join(out))
print(total)
`,
	})

	register(&Benchmark{
		Name:    "logging_format",
		Nursery: true,
		Source: `
# logging_format: format log records that are below the logger's level, so
# all the work is in record construction and % formatting.
class Record:
    def __init__(self, level, msg, args):
        self.level = level
        self.msg = msg
        self.args = args

    def get_message(self):
        return self.msg % self.args

class Logger:
    def __init__(self, level):
        self.level = level
        self.formatted = 0
        self.emitted = 0

    def log(self, level, msg, args):
        record = Record(level, msg, args)
        text = record.get_message()
        self.formatted += len(text)
        if level >= self.level:
            self.emitted += 1

logger = Logger(30)
for i in xrange(2500):
    logger.log(10, "debug %d: value=%r elapsed=%.3fms host=%s", (i, i * 3, i * 0.125, "h%d" % (i % 4)))
    if i % 50 == 0:
        logger.log(40, "error %d occurred after %d retries", (i, i % 7))
print(logger.formatted, logger.emitted)
`,
		AllocHeavy: true,
	})

	register(&Benchmark{
		Name:       "pyxl_bench",
		AllocHeavy: true,
		Nursery:    true,
		Source: `
# pyxl-style: HTML built from element objects with attribute dicts.
class Element:
    def __init__(self, tag):
        self.tag = tag
        self.attrs = {}
        self.children = []

    def attr(self, k, v):
        self.attrs[k] = v
        return self

    def add(self, child):
        self.children.append(child)
        return self

    def to_string(self, out):
        out.append("<" + self.tag)
        for k in sorted(self.attrs.keys()):
            out.append(' %s="%s"' % (k, self.attrs[k]))
        out.append(">")
        for c in self.children:
            if isinstance(c, Element):
                c.to_string(out)
            else:
                out.append(str(c))
        out.append("</" + self.tag + ">")

def build_page(n):
    page = Element("html")
    body = Element("body")
    page.add(body)
    table = Element("table").attr("class", "data")
    body.add(table)
    for i in xrange(n):
        row = Element("tr").attr("id", "row%d" % i)
        row.add(Element("td").attr("class", "k").add(i))
        row.add(Element("td").attr("class", "v").add(i * i % 1009))
        table.add(row)
    return page

total = 0
for rep in xrange(6):
    out = []
    build_page(70).to_string(out)
    total += len("".join(out))
print(total)
`,
	})

	register(&Benchmark{
		Name:       "html5lib",
		AllocHeavy: true,
		JSName:     "code-first-load",
		Nursery:    true,
		Source: `
# html5lib-style tokenizer: scan markup into tag/attr/text tokens.
def build_page(n):
    parts = ["<!DOCTYPE html><html><head><title>t</title></head><body>"]
    for i in xrange(n):
        parts.append("<div id=d%d class='c%d even'><a href='/l/%d' rel=nofollow>link %d</a> text &amp; more <br/><img src=i%d.png alt=''/></div>" % (i, i % 7, i, i, i))
    parts.append("</body></html>")
    return "".join(parts)

def tokenize(html):
    tokens = []
    i = 0
    n = len(html)
    while i < n:
        if html[i] == "<":
            j = html.find(">", i)
            if j < 0:
                break
            tag = html[i + 1:j]
            closing = tag.startswith("/")
            if closing:
                tag = tag[1:]
            selfclose = tag.endswith("/")
            if selfclose:
                tag = tag[:len(tag) - 1]
            fields = tag.split(" ")
            name = fields[0]
            attrs = {}
            for f in fields[1:]:
                eq = f.find("=")
                if eq >= 0:
                    attrs[f[:eq]] = f[eq + 1:].strip("'\"")
                elif f != "":
                    attrs[f] = ""
            tokens.append((name, closing, len(attrs)))
            i = j + 1
        else:
            j = html.find("<", i)
            if j < 0:
                j = n
            text = html[i:j]
            if text.strip() != "":
                tokens.append(("#text", False, len(text)))
            i = j
    return tokens

html = build_page(120)
total = 0
for rep in xrange(4):
    tokens = tokenize(html)
    for tok in tokens:
        total += tok[2]
print(len(tokens), total)
`,
	})

	register(&Benchmark{
		Name:    "eparse",
		Fig8:    true,
		Nursery: true,
		Source: `
# eparse: tokenize and parse arithmetic expressions into trees, then
# evaluate them (the spark-parser benchmark's core loop).
def tokenize(s):
    toks = []
    i = 0
    n = len(s)
    while i < n:
        c = s[i]
        if c == " ":
            i += 1
            continue
        if c in "0123456789":
            j = i
            while j < n and s[j] in "0123456789":
                j += 1
            toks.append(("num", int(s[i:j])))
            i = j
            continue
        if c in "abcdefghijklmnopqrstuvwxyz":
            j = i
            while j < n and s[j] in "abcdefghijklmnopqrstuvwxyz":
                j += 1
            toks.append(("name", s[i:j]))
            i = j
            continue
        toks.append(("op", c))
        i += 1
    toks.append(("end", ""))
    return toks

class Parser:
    def __init__(self, toks, env):
        self.toks = toks
        self.pos = 0
        self.env = env

    def peek(self):
        return self.toks[self.pos]

    def next(self):
        t = self.toks[self.pos]
        self.pos += 1
        return t

    def parse_atom(self):
        t = self.next()
        if t[0] == "num":
            return t[1]
        if t[0] == "name":
            return self.env[t[1]]
        if t[0] == "op" and t[1] == "(":
            v = self.parse_expr()
            self.next()
            return v
        return 0

    def parse_term(self):
        v = self.parse_atom()
        while True:
            t = self.peek()
            if t[0] == "op" and t[1] == "*":
                self.next()
                v = v * self.parse_atom()
            elif t[0] == "op" and t[1] == "/":
                self.next()
                d = self.parse_atom()
                if d != 0:
                    v = v / d
            else:
                return v

    def parse_expr(self):
        v = self.parse_term()
        while True:
            t = self.peek()
            if t[0] == "op" and t[1] == "+":
                self.next()
                v = v + self.parse_term()
            elif t[0] == "op" and t[1] == "-":
                self.next()
                v = v - self.parse_term()
            else:
                return v

env = {"x": 3, "y": 7, "zz": 11}
total = 0
for i in xrange(300):
    expr = "%d + x * (y - %d) / 2 + zz * %d - (x + y) * %d" % (i, i % 5, i % 9, i % 3)
    p = Parser(tokenize(expr), env)
    total += p.parse_expr()
print(total)
`,
	})

	register(&Benchmark{
		Name:       "dulwich_log",
		AllocHeavy: true,
		Source: `
# dulwich_log: walk a synthetic commit graph in topological order and
# format each entry, as git-log over a repository of dict objects.
def build_history(n):
    commits = {}
    for i in xrange(n):
        parents = []
        if i > 0:
            parents.append("c%04d" % (i - 1))
        if i % 7 == 3 and i > 4:
            parents.append("c%04d" % (i - 4))
        commits["c%04d" % i] = {
            "parents": parents,
            "author": "dev%d" % (i % 6),
            "time": 1500000000 + i * 137,
            "message": "commit %d: tweak module %d\n\nlonger body text %d" % (i, i % 12, i)}
    return commits

def walk(commits, head):
    seen = {}
    order = []
    stack = [head]
    while len(stack) > 0:
        sha = stack.pop()
        if sha in seen:
            continue
        seen[sha] = True
        order.append(sha)
        c = commits[sha]
        for p in c["parents"]:
            stack.append(p)
    return order

def format_entry(sha, c):
    lines = []
    lines.append("commit %s" % sha)
    lines.append("Author: %s" % c["author"])
    lines.append("Date: %d" % c["time"])
    msg = c["message"].split("\n")
    for line in msg:
        lines.append("    " + line)
    return "\n".join(lines)

commits = build_history(220)
order = walk(commits, "c0219")
total = 0
for sha in order:
    total += len(format_entry(sha, commits[sha]))
print(len(order), total)
`,
	})

	register(&Benchmark{
		Name: "rietveld",
		Source: `
# rietveld: code-review style workload - unified diff between synthetic
# file versions plus template-ish rendering of the result.
def make_file(n, variant):
    lines = []
    for i in xrange(n):
        if variant == 1 and i % 13 == 5:
            lines.append("changed line %d v2" % i)
        elif variant == 1 and i % 29 == 11:
            continue
        else:
            lines.append("line %d content alpha beta" % i)
    return lines

def diff(a, b):
    # simple LCS-free diff: match forward with lookahead window
    out = []
    i = 0
    j = 0
    while i < len(a) and j < len(b):
        if a[i] == b[j]:
            out.append(" " + a[i])
            i += 1
            j += 1
            continue
        found = -1
        k = j + 1
        while k < len(b) and k < j + 5:
            if a[i] == b[k]:
                found = k
                break
            k += 1
        if found >= 0:
            while j < found:
                out.append("+" + b[j])
                j += 1
        else:
            out.append("-" + a[i])
            i += 1
    while i < len(a):
        out.append("-" + a[i])
        i += 1
    while j < len(b):
        out.append("+" + b[j])
        j += 1
    return out

old = make_file(300, 0)
new = make_file(300, 1)
total = 0
for rep in xrange(6):
    d = diff(old, new)
    adds = 0
    dels = 0
    for line in d:
        if line.startswith("+"):
            adds += 1
        elif line.startswith("-"):
            dels += 1
    total += len(d) + adds * 2 + dels * 3
print(total)
`,
	})
}
