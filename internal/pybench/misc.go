package pybench

// Remaining suite members: the SymPy-style symbolic-math family, AES-like
// byte crunching (crypto_pyaes), DEFLATE-style decompression (pyflate),
// and the microbenchmark-ish unpack_seq and tuple_gc.

// symPrelude implements polynomials as {exponent: coefficient} dicts —
// the dictionary-heavy shape of the sympy benchmarks.
const symPrelude = `
def poly_add(a, b):
    out = {}
    for e in a.keys():
        out[e] = a[e]
    for e in b.keys():
        if e in out:
            out[e] = out[e] + b[e]
            if out[e] == 0:
                del out[e]
        else:
            out[e] = b[e]
    return out

def poly_mul(a, b):
    out = {}
    for ea in a.keys():
        for eb in b.keys():
            e = ea + eb
            c = a[ea] * b[eb]
            if e in out:
                out[e] = out[e] + c
                if out[e] == 0:
                    del out[e]
            else:
                out[e] = c
    return out

def poly_scale(a, k):
    out = {}
    for e in a.keys():
        out[e] = a[e] * k
    return out

def poly_eval(a, x):
    total = 0
    for e in a.keys():
        term = a[e]
        p = 0
        while p < e:
            term = term * x
            p += 1
        total += term
    return total

def poly_str(a):
    parts = []
    for e in sorted(a.keys()):
        c = a[e]
        if e == 0:
            parts.append(str(c))
        elif e == 1:
            parts.append("%d*x" % c)
        else:
            parts.append("%d*x**%d" % (c, e))
    return " + ".join(parts)
`

func init() {
	register(&Benchmark{
		Name:       "sym_expand",
		AllocHeavy: true,
		Source: symPrelude + `
# expand((x+1)(x+2)...(x+n)) repeatedly
total = 0
for rep in xrange(10):
    p = {0: 1}
    for k in xrange(1, 13):
        p = poly_mul(p, {0: k, 1: 1})
    total += len(p) + poly_eval(p, 1) % 1000003
print(total)
`,
	})

	register(&Benchmark{
		Name:       "sym_sum",
		AllocHeavy: true,
		Source: symPrelude + `
# sum many polynomials with overlapping support
total = 0
acc = {}
for i in xrange(600):
    term = {i % 17: i + 1, (i * 3) % 23: -(i % 5) - 1, 0: 1}
    acc = poly_add(acc, term)
for e in sorted(acc.keys()):
    total += e * acc[e]
print(total % 1000003, len(acc))
`,
	})

	register(&Benchmark{
		Name:       "sym_str",
		AllocHeavy: true,
		Source: symPrelude + `
# stringify symbolic expressions
total = 0
p = {0: 1}
for k in xrange(1, 10):
    p = poly_mul(p, {0: -k, 1: 1})
    s = poly_str(p)
    total += len(s)
for rep in xrange(120):
    total += len(poly_str(p))
print(total)
`,
	})

	register(&Benchmark{
		Name:       "sym_integrate",
		AllocHeavy: true,
		Fig8:       true,
		Source: symPrelude + `
def poly_integrate(a):
    # antiderivative with rational coefficients as (num, den) pairs
    out = {}
    for e in a.keys():
        out[e + 1] = (a[e], e + 1)
    return out

def poly_diff(a):
    out = {}
    for e in a.keys():
        if e > 0:
            out[e - 1] = a[e] * e
    return out

total = 0
for rep in xrange(25):
    p = {0: 3, 1: -2, 3: 5, 6: 1, 9: -4}
    for step in xrange(6):
        p = poly_diff(poly_mul(p, {0: 1, 1: 1}))
    integ = poly_integrate(p)
    for e in sorted(integ.keys()):
        pair = integ[e]
        total += pair[0] / pair[1] + e
print(total % 1000003)
`,
	})

	register(&Benchmark{
		Name:    "crypto_pyaes",
		Nursery: false,
		JSName:  "crypto-aes",
		Source: `
# AES-like block transformation over byte lists: substitution through an
# S-box table, row rotation, column mixing in GF(256)-style arithmetic,
# and round-key XOR - the access pattern of pyaes without the full cipher.
def build_sbox():
    sbox = []
    for i in xrange(256):
        v = i
        v = (v * 7 + 99) % 256
        v = v ^ (v * 2 % 256) ^ (v / 4)
        sbox.append(v % 256)
    return sbox

def xtime(b):
    b = b * 2
    if b >= 256:
        b = (b - 256) ^ 27
    return b

def encrypt_block(block, sbox, round_keys):
    state = list(block)
    for rk in round_keys:
        i = 0
        while i < 16:
            state[i] = sbox[state[i]]
            i += 1
        # rotate rows
        state[1], state[5], state[9], state[13] = state[5], state[9], state[13], state[1]
        state[2], state[6], state[10], state[14] = state[10], state[14], state[2], state[6]
        state[3], state[7], state[11], state[15] = state[15], state[3], state[7], state[11]
        # mix columns (simplified)
        c = 0
        while c < 16:
            a0 = state[c]
            a1 = state[c + 1]
            a2 = state[c + 2]
            a3 = state[c + 3]
            state[c] = xtime(a0) ^ a1 ^ a2 ^ a3
            state[c + 1] = a0 ^ xtime(a1) ^ a2 ^ a3
            state[c + 2] = a0 ^ a1 ^ xtime(a2) ^ a3
            state[c + 3] = a0 ^ a1 ^ a2 ^ xtime(a3)
            c += 4
        i = 0
        while i < 16:
            state[i] = state[i] ^ rk[i]
            i += 1
    return state

sbox = build_sbox()
round_keys = []
for r in xrange(10):
    rk = []
    for i in xrange(16):
        rk.append((r * 31 + i * 17) % 256)
    round_keys.append(rk)

total = 0
block = range(16)
for n in xrange(120):
    block = encrypt_block(block, sbox, round_keys)
    total = (total + block[0] + block[15]) % 1000003
print(total)
`,
	})

	register(&Benchmark{
		Name: "pyflate",
		Source: `
# pyflate-style bit-level decompression: huffman decode of a synthetic
# canonical code over a generated bitstream.
class BitReader:
    def __init__(self, data):
        self.data = data
        self.pos = 0
        self.bit = 0

    def read_bit(self):
        byte = self.data[self.pos]
        b = (byte >> self.bit) & 1
        self.bit += 1
        if self.bit == 8:
            self.bit = 0
            self.pos += 1
        return b

    def read_bits(self, n):
        v = 0
        i = 0
        while i < n:
            v |= self.read_bit() << i
            i += 1
        return v

def build_huffman():
    # canonical code: symbols 0-3 get 2 bits, 4-11 get 4 bits
    table = {}
    code = 0
    for sym in xrange(4):
        table[(2, code)] = sym
        code += 1
    code = code << 2
    for sym in xrange(4, 12):
        table[(4, code)] = sym
        code += 1
    return table

def decode(reader, table, count):
    out = []
    for i in xrange(count):
        length = 0
        code = 0
        while True:
            code = (code << 1) | reader.read_bit()
            length += 1
            key = (length, code)
            if key in table:
                out.append(table[key])
                break
            if length > 8:
                out.append(0)
                break
    return out

def build_stream(nbytes):
    data = []
    seed = 77
    for i in xrange(nbytes):
        seed = (seed * 1103515245 + 12345) % 2147483648
        data.append((seed / 65536) % 256)
    return data

data = build_stream(1800)
table = build_huffman()
total = 0
reader = BitReader(data)
symbols = decode(reader, table, 3000)
for s in symbols:
    total += s
print(total, len(symbols))
`,
	})

	register(&Benchmark{
		Name:    "unpack_seq",
		Fig8:    true,
		Nursery: true,
		Source: `
# unpack_seq: tuple unpacking microbenchmark, as in the suite.
def do_unpacking(loops, t):
    total = 0
    for dummy in xrange(loops):
        a, b, c, d, e, f, g, h = t
        total += a + h
        b, a, d, c, f, e, h, g = a, b, c, d, e, f, g, h
        total += a + g
    return total

t = (1, 2, 3, 4, 5, 6, 7, 8)
print(do_unpacking(8000, t))
`,
	})

	register(&Benchmark{
		Name:       "tuple_gc",
		AllocHeavy: true,
		Source: `
# tuple_gc: allocate short-lived tuples at high rate (GC stress).
def churn(n):
    keep = None
    total = 0
    for i in xrange(n):
        t = (i, i + 1, (i * 2, i * 3), "s%d" % (i % 10))
        if i % 1024 == 0:
            keep = t
        total += t[0] + t[2][1]
    return total + keep[1]

print(churn(15000))
`,
	})

	register(&Benchmark{
		Name: "pyflate_bwt",
		Source: `
# companion workload: run-length + move-to-front coding (bzip-style
# stages of pyflate).
def mtf_encode(data):
    alphabet = range(256)
    out = []
    for b in data:
        idx = alphabet.index(b)
        out.append(idx)
        alphabet.pop(idx)
        alphabet.insert(0, b)
    return out

def rle_encode(data):
    out = []
    i = 0
    n = len(data)
    while i < n:
        j = i
        while j < n and data[j] == data[i] and j - i < 255:
            j += 1
        out.append((data[i], j - i))
        i = j
    return out

data = []
seed = 5
for i in xrange(900):
    seed = (seed * 1103515245 + 12345) % 2147483648
    data.append((seed / 1048576) % 32)
coded = mtf_encode(data)
runs = rle_encode(coded)
total = 0
for r in runs:
    total += r[0] * r[1]
print(total, len(runs))
`,
	})

	register(&Benchmark{
		Name:       "json_v8",
		CLibHeavy:  true,
		JSName:     "json-parse-financial",
		AllocHeavy: true,
		Source: `
# JetStream-style JSON parse/serialize round trips on financial-ish data.
def build_quotes(n):
    out = []
    for i in xrange(n):
        out.append({"symbol": "TCK%02d" % (i % 40),
                    "bid": 100.0 + i * 0.25,
                    "ask": 100.5 + i * 0.25,
                    "volume": i * 100 % 99999,
                    "flags": [i % 2 == 0, i % 3 == 0]})
    return out

quotes = build_quotes(80)
total = 0
for rep in xrange(15):
    blob = json.dumps(quotes)
    back = json.loads(blob)
    total += len(blob) + len(back)
print(total)
`,
	})
}
