// Package pybench is the MiniPy benchmark suite: ports of the programs the
// paper measures from the official Python performance suite and the PyPy
// benchmark suite, written in the MiniPy subset. Each benchmark prints a
// checksum so that every run-time configuration can be verified to compute
// the same result.
//
// Workload sizes are tuned so a CPython-mode interpreted run executes
// roughly 0.3-3 million bytecodes — large enough for stable attribution,
// small enough that full-suite sweeps finish in minutes.
package pybench

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/pycode"
	"repro/internal/pycompile"
)

// Benchmark is one suite entry.
type Benchmark struct {
	// Name matches the paper's benchmark name.
	Name string
	// Source is the MiniPy program.
	Source string
	// Checksum is the expected program output (validated by tests).
	Checksum string
	// AllocHeavy marks benchmarks with enough allocation to exercise
	// the nursery sweeps (Figs 10-12, 14-15).
	AllocHeavy bool
	// CLibHeavy marks benchmarks dominated by modeled C-library code
	// (pickle/json/regex families).
	CLibHeavy bool
	// Fig8 marks the per-benchmark microarchitecture sweep set.
	Fig8 bool
	// Nursery marks the per-benchmark nursery sweep set (Figs 14-15).
	Nursery bool
	// JSName is the JetStream-style alias used when the benchmark runs
	// on the v8like runtime (Figs 6, 9, 16); empty = not in that set.
	JSName string

	once sync.Once
	code *pycode.Code
}

var registry []*Benchmark
var byName = map[string]*Benchmark{}

func register(b *Benchmark) {
	if _, dup := byName[b.Name]; dup {
		panic("pybench: duplicate benchmark " + b.Name)
	}
	registry = append(registry, b)
	byName[b.Name] = b
}

// All returns every benchmark, sorted by name.
func All() []*Benchmark {
	out := make([]*Benchmark, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns all benchmark names, sorted.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, b := range all {
		names[i] = b.Name
	}
	return names
}

// ByName returns the named benchmark.
func ByName(name string) (*Benchmark, error) {
	b, ok := byName[name]
	if !ok {
		return nil, fmt.Errorf("pybench: unknown benchmark %q", name)
	}
	return b, nil
}

// Select returns the benchmarks matching pred.
func Select(pred func(*Benchmark) bool) []*Benchmark {
	var out []*Benchmark
	for _, b := range All() {
		if pred(b) {
			out = append(out, b)
		}
	}
	return out
}

// NurserySet returns the per-benchmark nursery sweep set (Figs 14-15).
func NurserySet() []*Benchmark {
	return Select(func(b *Benchmark) bool { return b.Nursery })
}

// Fig8Set returns the per-benchmark microarchitecture sweep set.
func Fig8Set() []*Benchmark {
	return Select(func(b *Benchmark) bool { return b.Fig8 })
}

// JetStreamSet returns the benchmarks run on the v8like runtime.
func JetStreamSet() []*Benchmark {
	return Select(func(b *Benchmark) bool { return b.JSName != "" })
}

// Compiled returns the benchmark's compiled code object, memoized.
func (b *Benchmark) Compiled() *pycode.Code {
	b.once.Do(func() {
		code, err := pycompile.CompileSource(b.Name, b.Source)
		if err != nil {
			panic(fmt.Sprintf("pybench: %s does not compile: %v", b.Name, err))
		}
		b.code = code
	})
	return b.code
}
