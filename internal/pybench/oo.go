package pybench

// Object-oriented benchmarks: richards, deltablue, raytrace, hexiom,
// telco. Condensed ports that keep each benchmark's dominant behaviour —
// virtual dispatch and linked structures (richards), constraint graphs
// (deltablue), vector-object arithmetic (raytrace), search over board
// states (hexiom), and decimal-style billing arithmetic (telco).

func init() {
	register(&Benchmark{
		Name: "richards",
		Fig8: true,
		Source: `
# Condensed Richards OS-kernel simulation: four task types exchanging
# packets through a scheduler, driven by state held in task objects.
IDLE = 0
WORKER = 1
HANDLER_A = 2
HANDLER_B = 3

class Packet:
    def __init__(self, link, ident, kind):
        self.link = link
        self.ident = ident
        self.kind = kind
        self.datum = 0
        self.data = [0, 0, 0, 0]

class Task:
    def __init__(self, ident, priority, queue):
        self.ident = ident
        self.priority = priority
        self.queue = queue
        self.ready = queue is not None
        self.holdCount = 0
        self.state = 0

    def add_packet(self, packet):
        packet.link = None
        if self.queue is None:
            self.queue = packet
        else:
            p = self.queue
            while p.link is not None:
                p = p.link
            p.link = packet
        self.ready = True

    def take_packet(self):
        p = self.queue
        self.queue = p.link
        if self.queue is None:
            self.ready = False
        return p

class Scheduler:
    def __init__(self):
        self.tasks = []
        self.hold_count = 0
        self.queue_count = 0

    def add(self, task):
        self.tasks.append(task)

    def run(self, cycles):
        n = 0
        while n < cycles:
            progressed = False
            for task in self.tasks:
                if not task.ready:
                    continue
                progressed = True
                self.step(task)
            if not progressed:
                break
            n += 1

    def step(self, task):
        if task.ident == IDLE:
            task.state += 1
            if task.state % 2 == 0:
                target = self.tasks[WORKER]
            else:
                target = self.tasks[HANDLER_A]
            pkt = Packet(None, task.ident, task.state % 4)
            target.add_packet(pkt)
            self.queue_count += 1
        elif task.ident == WORKER:
            if task.queue is not None:
                pkt = task.take_packet()
                pkt.datum = (pkt.datum + task.state) % 26
                k = 0
                while k < 4:
                    pkt.data[k] = (pkt.data[k] + pkt.datum + k) % 26
                    k += 1
                task.state += 1
                self.tasks[HANDLER_B].add_packet(pkt)
                self.queue_count += 1
            else:
                task.ready = False
        elif task.ident == HANDLER_A:
            if task.queue is not None:
                pkt = task.take_packet()
                self.hold_count += pkt.kind
                task.holdCount += 1
            else:
                task.ready = False
        else:
            if task.queue is not None:
                pkt = task.take_packet()
                acc = 0
                for v in pkt.data:
                    acc += v
                self.hold_count += acc % 7
                task.holdCount += 1
            else:
                task.ready = False

def run_richards(iterations):
    total_hold = 0
    total_queue = 0
    for it in xrange(iterations):
        sched = Scheduler()
        sched.add(Task(IDLE, 0, Packet(None, 0, 0)))
        sched.add(Task(WORKER, 1000, Packet(None, 1, 1)))
        sched.add(Task(HANDLER_A, 2000, Packet(None, 2, 2)))
        sched.add(Task(HANDLER_B, 3000, Packet(None, 3, 3)))
        sched.run(220)
        total_hold += sched.hold_count
        total_queue += sched.queue_count
    return (total_hold, total_queue)

res = run_richards(12)
print(res[0], res[1])
`,
		AllocHeavy: true,
		JSName:     "richards",
	})

	register(&Benchmark{
		Name: "deltablue",
		Source: `
# Condensed DeltaBlue: one-way dataflow constraint solver with a chain of
# equality constraints and a stay constraint, re-planned after edits.
class Variable:
    def __init__(self, name, value):
        self.name = name
        self.value = value
        self.determined_by = None
        self.walk_strength = 0
        self.stay = True
        self.constraints = []

class EqualityConstraint:
    def __init__(self, v1, v2, strength):
        self.v1 = v1
        self.v2 = v2
        self.strength = strength
        self.is_satisfied = False
        v1.constraints.append(self)
        v2.constraints.append(self)

    def choose_output(self):
        if self.v1.walk_strength < self.v2.walk_strength:
            return self.v1
        return self.v2

    def execute(self):
        out = self.choose_output()
        if out is self.v1:
            self.v1.value = self.v2.value
        else:
            self.v2.value = self.v1.value
        out.determined_by = self
        out.walk_strength = self.strength
        self.is_satisfied = True

class Planner:
    def __init__(self):
        self.constraints = []

    def add(self, c):
        self.constraints.append(c)

    def extract_plan(self):
        plan = []
        for c in self.constraints:
            if c.strength > 0:
                plan.append(c)
        return plan

    def execute_plan(self):
        plan = self.extract_plan()
        for c in plan:
            c.execute()

def chain_test(n, edits):
    planner = Planner()
    variables = []
    for i in xrange(n):
        variables.append(Variable("v%d" % i, 0))
    i = 0
    while i < n - 1:
        planner.add(EqualityConstraint(variables[i], variables[i + 1], n - i))
        i += 1
    total = 0
    for e in xrange(edits):
        variables[0].value = e * 3 + 1
        planner.execute_plan()
        total += variables[n - 1].value
    return total

print(chain_test(60, 70))
`,
		AllocHeavy: true,
		JSName:     "delta-blue",
	})

	register(&Benchmark{
		Name: "raytrace",
		Source: `
class Vec:
    def __init__(self, x, y, z):
        self.x = x
        self.y = y
        self.z = z

def vadd(a, b):
    return Vec(a.x + b.x, a.y + b.y, a.z + b.z)

def vsub(a, b):
    return Vec(a.x - b.x, a.y - b.y, a.z - b.z)

def vscale(a, s):
    return Vec(a.x * s, a.y * s, a.z * s)

def vdot(a, b):
    return a.x * b.x + a.y * b.y + a.z * b.z

def vnorm(a):
    m = math.sqrt(vdot(a, a))
    return Vec(a.x / m, a.y / m, a.z / m)

class Sphere:
    def __init__(self, center, radius, reflect):
        self.center = center
        self.radius = radius
        self.reflect = reflect

    def intersect(self, orig, dir):
        oc = vsub(orig, self.center)
        b = 2.0 * vdot(oc, dir)
        c = vdot(oc, oc) - self.radius * self.radius
        disc = b * b - 4.0 * c
        if disc < 0.0:
            return -1.0
        sq = math.sqrt(disc)
        t = (-b - sq) / 2.0
        if t > 0.001:
            return t
        t = (-b + sq) / 2.0
        if t > 0.001:
            return t
        return -1.0

def trace(spheres, orig, dir, depth):
    best_t = -1.0
    best_s = None
    for s in spheres:
        t = s.intersect(orig, dir)
        if t > 0.0 and (best_t < 0.0 or t < best_t):
            best_t = t
            best_s = s
    if best_s is None:
        return 0.1 + 0.4 * (dir.y + 1.0)
    hit = vadd(orig, vscale(dir, best_t))
    normal = vnorm(vsub(hit, best_s.center))
    light = vnorm(Vec(0.6, 1.0, 0.4))
    diffuse = vdot(normal, light)
    if diffuse < 0.0:
        diffuse = 0.0
    color = 0.2 + 0.7 * diffuse
    if depth < 2 and best_s.reflect > 0.0:
        rdir = vsub(dir, vscale(normal, 2.0 * vdot(dir, normal)))
        color = color * (1.0 - best_s.reflect) + best_s.reflect * trace(spheres, hit, vnorm(rdir), depth + 1)
    return color

def render(w, h):
    spheres = [
        Sphere(Vec(0.0, -0.5, 3.0), 1.0, 0.3),
        Sphere(Vec(1.5, 0.3, 4.0), 0.8, 0.6),
        Sphere(Vec(-1.5, 0.2, 2.5), 0.6, 0.0),
        Sphere(Vec(0.0, -101.0, 3.0), 100.0, 0.1)]
    orig = Vec(0.0, 0.0, -1.0)
    acc = 0.0
    for py in xrange(h):
        for px in xrange(w):
            dx = (px - w / 2) / float(w)
            dy = -(py - h / 2) / float(h)
            dir = vnorm(Vec(dx, dy, 1.0))
            acc += trace(spheres, orig, dir, 0)
    return acc

print("%.6f" % render(48, 36))
`,
		AllocHeavy: true,
		JSName:     "3d-raytrace",
	})

	register(&Benchmark{
		Name: "hexiom",
		Source: `
# Condensed Hexiom solver: place numbered tiles on a small hex-ish board
# so each tile's number equals its count of occupied neighbours;
# depth-first search with pruning.
def build_neighbors(w, h):
    nbs = []
    for i in xrange(w * h):
        x = i % w
        y = i / w
        cur = []
        if x > 0:
            cur.append(i - 1)
        if x < w - 1:
            cur.append(i + 1)
        if y > 0:
            cur.append(i - w)
            if x < w - 1:
                cur.append(i - w + 1)
        if y < h - 1:
            cur.append(i + w)
            if x > 0:
                cur.append(i + w - 1)
        nbs.append(cur)
    return nbs

def check(board, nbs, pos):
    v = board[pos]
    if v < 0:
        return True
    occupied = 0
    empty = 0
    for nb in nbs[pos]:
        if board[nb] >= 0:
            occupied += 1
        elif board[nb] == -1:
            empty += 1
    if occupied > v:
        return False
    if occupied + empty < v:
        return False
    return True

def solve(board, nbs, tiles, idx, count):
    if idx == len(board):
        for pos in xrange(len(board)):
            v = board[pos]
            if v < 0:
                continue
            occupied = 0
            for nb in nbs[pos]:
                if board[nb] >= 0:
                    occupied += 1
            if occupied != v:
                return count
        return count + 1
    for t in xrange(len(tiles)):
        if tiles[t] == 0:
            continue
        tiles[t] -= 1
        board[idx] = t - 1
        ok = True
        if not check(board, nbs, idx):
            ok = False
        if ok and idx > 0:
            if not check(board, nbs, idx - 1):
                ok = False
        if ok:
            count = solve(board, nbs, tiles, idx + 1, count)
        tiles[t] += 1
        board[idx] = -2
    return count

w = 3
h = 3
nbs = build_neighbors(w, h)
board = [-2] * (w * h)
# tiles[0] = blanks (-1), tiles[k] = number k-1
tiles = [4, 1, 2, 2]
print(solve(board, nbs, tiles, 0, 0))
`,
		Nursery: false,
	})

	register(&Benchmark{
		Name:    "telco",
		Nursery: true,
		Source: `
# Telco-style billing: fixed-point call pricing with banker's-style
# rounding and tax, over a synthetic call stream.
def round_half_even_cents(amount_tenths_of_cents):
    q = amount_tenths_of_cents / 10
    r = amount_tenths_of_cents % 10
    if r > 5:
        q += 1
    elif r == 5:
        if q % 2 == 1:
            q += 1
    return q

def bill(durations):
    btotal = 0
    dtotal = 0
    ttotal = 0
    lines = []
    for d in durations:
        if d % 2 == 0:
            rate = 9
        else:
            rate = 27
        price = d * rate
        cents = round_half_even_cents(price)
        btotal += cents
        if rate == 27:
            dist = round_half_even_cents(price * 3 / 4)
            dtotal += dist
        tax = round_half_even_cents(cents * 65 / 10)
        ttotal += tax
        lines.append("%d.%02d" % (cents / 100, cents % 100))
    return (btotal, dtotal, ttotal, len(lines))

random.seed(99)
durations = []
for i in xrange(2600):
    durations.append(random.randint(1, 2400))
res = bill(durations)
print(res[0], res[1], res[2], res[3])
`,
	})
}
