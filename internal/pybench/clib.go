package pybench

// C-library-dominated benchmarks: the pickle, json, and regex families.
// The paper finds these spend most of their time (>64%) in C library code;
// here that code is the modeled pickle/json/re extension modules.

// buildDataPrelude constructs the shared nested data set.
const buildDataPrelude = `
def build_record(i):
    return {"id": i,
            "name": "user-%d" % i,
            "score": i * 0.75,
            "tags": ["alpha", "beta", "g%d" % (i % 10)],
            "active": i % 3 == 0,
            "address": {"street": "%d Main St" % (i * 7 % 100),
                        "zip": "%05d" % (i * 13 % 99999)}}

def build_records(n):
    out = []
    for i in xrange(n):
        out.append(build_record(i))
    return out
`

func init() {
	register(&Benchmark{
		Name:      "pickle",
		CLibHeavy: true,
		Source: buildDataPrelude + `
records = build_records(60)
total = 0
for rep in xrange(40):
    s = pickle.dumps(records)
    total += len(s)
print(total % 1000003, len(s))
`,
	})

	register(&Benchmark{
		Name:      "unpickle",
		CLibHeavy: true,
		Source: buildDataPrelude + `
records = build_records(60)
blob = pickle.dumps(records)
total = 0
for rep in xrange(40):
    back = pickle.loads(blob)
    total += len(back) + back[3]["id"]
print(total, len(blob))
`,
		AllocHeavy: true,
	})

	register(&Benchmark{
		Name:      "pickle_list",
		CLibHeavy: true,
		Source: `
data = []
for i in xrange(400):
    data.append(i * 3)
    data.append("item-%d" % i)
total = 0
for rep in xrange(60):
    s = pickle.dumps(data)
    total += len(s)
print(total % 1000003)
`,
	})

	register(&Benchmark{
		Name:      "pickle_dict",
		CLibHeavy: true,
		Source: `
data = {}
for i in xrange(300):
    data["key-%d" % i] = [i, i * 2, "v%d" % i]
total = 0
for rep in xrange(40):
    s = pickle.dumps(data)
    total += len(s)
print(total % 1000003)
`,
	})

	register(&Benchmark{
		Name:       "unpickle_list",
		CLibHeavy:  true,
		AllocHeavy: true,
		Source: `
data = []
for i in xrange(400):
    data.append(i * 3)
    data.append("item-%d" % i)
blob = pickle.dumps(data)
total = 0
for rep in xrange(60):
    back = pickle.loads(blob)
    total += back[0] + back[2] + len(back)
print(total)
`,
	})

	register(&Benchmark{
		Name:      "json_dumps",
		CLibHeavy: true,
		Source: buildDataPrelude + `
records = build_records(50)
total = 0
for rep in xrange(40):
    s = json.dumps(records)
    total += len(s)
print(total % 1000003, len(s))
`,
	})

	register(&Benchmark{
		Name:       "json_loads",
		CLibHeavy:  true,
		AllocHeavy: true,
		Source: buildDataPrelude + `
records = build_records(50)
blob = json.dumps(records)
total = 0
for rep in xrange(30):
    back = json.loads(blob)
    total += len(back) + back[7]["id"]
print(total, len(blob))
`,
	})

	register(&Benchmark{
		Name:      "regex_v8",
		CLibHeavy: true,
		Fig8:      true,
		JSName:    "regexp-2010",
		Source: `
# Patterns over synthetic web-ish text, in the spirit of the regex-v8
# workload distilled from browser sessions.
def build_text(n):
    parts = []
    for i in xrange(n):
        parts.append("GET /page/%d?user=u%d&session=s%d HTTP/1.1 host%d.example.com " % (i, i * 7 % 50, i * 13 % 97, i % 5))
        parts.append("<div class='c%d' id='e%d'>value %d,%d</div> " % (i % 9, i, i * 3, i * 5))
    return "".join(parts)

text = build_text(60)
total = 0
total += len(re.findall("GET /page/[0-9]+", text))
total += len(re.findall("user=u[0-9]+", text))
total += len(re.findall("<div class='c[0-9]'", text))
total += len(re.findall("[0-9]+,[0-9]+", text))
total += len(re.findall("host[0-9]\\.example\\.com", text))
subbed = re.sub("session=s[0-9]+", "session=X", text)
total += len(re.findall("session=X", subbed))
print(total, len(text))
`,
	})

	register(&Benchmark{
		Name:      "regex_dna",
		CLibHeavy: true,
		JSName:    "regex-dna",
		Source: `
def build_dna(n):
    bases = "ACGT"
    parts = []
    seed = 42
    for i in xrange(n):
        seed = (seed * 1103515245 + 12345) % 2147483648
        parts.append(bases[(seed / 65536) % 4])
    return "".join(parts)

seq = build_dna(3000)
variants = [
    "AGGT",
    "[CT]GGT",
    "AG[AG]GT",
    "AGG[CG]T",
    "GG[AT]A",
    "GT[CT]A",
    "GG..CA"]
total = 0
for pat in variants:
    total += len(re.findall(pat, seq))
cleaned = re.sub("TTT+", "T", seq)
print(total, len(cleaned))
`,
	})

	register(&Benchmark{
		Name:      "regex_effbot",
		CLibHeavy: true,
		Source: `
def build_log(n):
    parts = []
    for i in xrange(n):
        parts.append("2018-0%d-%02d %02d:%02d:%02d [worker-%d] level=%d msg='op %d done in %dms'\n" %
                     (i % 9 + 1, i % 28 + 1, i % 24, i * 7 % 60, i * 13 % 60, i % 8, i % 5, i, i * 3 % 500))
    return "".join(parts)

log = build_log(100)
total = 0
total += len(re.findall("[0-9]+ms", log))
total += len(re.findall("worker-[0-7]", log))
total += len(re.findall("level=[0-4]", log))
total += len(re.findall("\\d\\d:\\d\\d:\\d\\d", log))
m = re.search("msg='op 42 done in \\d+ms'", log)
if m is not None:
    total += len(m)
print(total)
`,
	})

	register(&Benchmark{
		Name:      "regex_compile",
		CLibHeavy: true,
		Source: `
# Repeatedly compile distinct pattern strings (defeating the pattern
# cache), as the real regex_compile stresses sre_compile.
total = 0
for rep in xrange(3):
    for i in xrange(60):
        pat = "(ab|cd)e{1,%d}[f-h]+i?j%d" % (i % 5 + 1, i)
        p = re.compile(pat)
        total += len(p)
    for i in xrange(40):
        pat = "w%d[0-9a-f]{2,4}(x|y|z)*" % i
        p = re.compile(pat)
        total += len(p)
s = "abeefghij7 w3a1fx cdeffgi"
total += len(re.findall("(ab|cd)e+[f-h]+", s))
print(total)
`,
	})
}
