package pycompile_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/emit"
	"repro/internal/gc"
	"repro/internal/interp"
	"repro/internal/isa"
	. "repro/internal/pycompile"
)

func TestTokenizeIndentation(t *testing.T) {
	toks, err := Tokenize("<t>", "if a:\n    b = 1\n    if c:\n        d = 2\ne = 3\n")
	if err != nil {
		t.Fatal(err)
	}
	indents, dedents := 0, 0
	for _, tok := range toks {
		switch tok.Kind {
		case TokIndent:
			indents++
		case TokDedent:
			dedents++
		}
	}
	if indents != 2 || dedents != 2 {
		t.Errorf("indents=%d dedents=%d", indents, dedents)
	}
}

func TestTokenizeLiterals(t *testing.T) {
	toks, err := Tokenize("<t>", `x = 0x1f + 42 + 3.5 + 1e3 + "s\n" + 'q'`)
	if err != nil {
		t.Fatal(err)
	}
	var ints []int64
	var floats []float64
	var strs []string
	for _, tok := range toks {
		switch tok.Kind {
		case TokInt:
			ints = append(ints, tok.Int)
		case TokFloat:
			floats = append(floats, tok.Float)
		case TokStr:
			strs = append(strs, tok.Text)
		}
	}
	if len(ints) != 2 || ints[0] != 31 || ints[1] != 42 {
		t.Errorf("ints %v", ints)
	}
	if len(floats) != 2 || floats[0] != 3.5 || floats[1] != 1000 {
		t.Errorf("floats %v", floats)
	}
	if len(strs) != 2 || strs[0] != "s\n" || strs[1] != "q" {
		t.Errorf("strs %q", strs)
	}
}

func TestTokenizeBracketContinuation(t *testing.T) {
	toks, err := Tokenize("<t>", "x = [1,\n     2,\n     3]\n")
	if err != nil {
		t.Fatal(err)
	}
	newlines := 0
	for _, tok := range toks {
		if tok.Kind == TokNewline {
			newlines++
		}
	}
	// One logical newline after the statement plus the lexer's EOF
	// newline; the two line breaks inside the brackets are suppressed.
	if newlines > 2 {
		t.Errorf("newlines inside brackets must be suppressed, got %d", newlines)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"def f(:\n    pass\n",
		"x = (1 + \n", // unterminated
		"if x\n    y = 1\n",
		"import os\n",
		"try:\n    pass\n",
		"for 1 in y:\n    pass\n",
		"1 = 2\n",
		"break\n",         // outside loop (compile error)
		"def f():\n\n",    // empty block
		"x = 'unclosed\n", // unterminated string
	}
	for _, src := range cases {
		if _, err := CompileSource("<e>", src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestCompileFixtures(t *testing.T) {
	srcs := []string{
		"x = 1\ny = x + 2\nprint(y)\n",
		"def f(a, b=2):\n    return a * b\nprint(f(3))\n",
		"for i in xrange(3):\n    if i == 1:\n        continue\n    print(i)\n",
		"class C:\n    def m(self):\n        return 1\nc = C()\nprint(c.m())\n",
		"a, b = 1, 2\nd = {a: b}\nl = [x for x in []] if False else [1]\n" +
			"print(d[1], l[0])\n",
	}
	for i, src := range srcs {
		if i == 4 {
			continue // list comprehension intentionally unsupported
		}
		code, err := CompileSource("<f>", src)
		if err != nil {
			t.Errorf("fixture %d: %v", i, err)
			continue
		}
		if err := code.Validate(); err != nil {
			t.Errorf("fixture %d produced invalid code: %v", i, err)
		}
	}
}

// ---- Random-expression differential test ----

// pyExpr is a random integer expression with Python-2 semantics.
type pyExpr struct {
	src string
	val int64
	ok  bool // false when evaluation raised (div by zero etc.)
}

// genExpr builds a random expression tree of the given depth.
func genExpr(r *rand.Rand, depth int) pyExpr {
	if depth == 0 || r.Intn(3) == 0 {
		v := int64(r.Intn(200) - 100)
		return pyExpr{src: fmt.Sprintf("(%d)", v), val: v, ok: true}
	}
	a := genExpr(r, depth-1)
	b := genExpr(r, depth-1)
	ops := []string{"+", "-", "*", "/", "%", "&", "|", "^"}
	op := ops[r.Intn(len(ops))]
	e := pyExpr{src: "(" + a.src + " " + op + " " + b.src + ")"}
	if !a.ok || !b.ok {
		e.ok = false
		return e
	}
	switch op {
	case "+":
		e.val, e.ok = a.val+b.val, true
	case "-":
		e.val, e.ok = a.val-b.val, true
	case "*":
		e.val, e.ok = a.val*b.val, true
	case "/":
		if b.val == 0 {
			e.ok = false
		} else {
			q := a.val / b.val
			if (a.val%b.val != 0) && ((a.val < 0) != (b.val < 0)) {
				q--
			}
			e.val, e.ok = q, true
		}
	case "%":
		if b.val == 0 {
			e.ok = false
		} else {
			m := a.val % b.val
			if m != 0 && ((m < 0) != (b.val < 0)) {
				m += b.val
			}
			e.val, e.ok = m, true
		}
	case "&":
		e.val, e.ok = a.val&b.val, true
	case "|":
		e.val, e.ok = a.val|b.val, true
	case "^":
		e.val, e.ok = a.val^b.val, true
	}
	return e
}

// TestRandomExpressionsMatchGo compiles random arithmetic expressions and
// checks the interpreter computes the same value as a Go evaluator using
// Python-2 division semantics.
func TestRandomExpressionsMatchGo(t *testing.T) {
	r := rand.New(rand.NewSource(12345))
	checked := 0
	for i := 0; i < 400; i++ {
		e := genExpr(r, 4)
		if !e.ok {
			continue
		}
		checked++
		var out strings.Builder
		vm := interp.New(emit.NewEngine(isa.NullSink{}), gc.DefaultRefCountConfig(), &out)
		if err := vm.RunSource("<expr>", "print"+"("+e.src+")\n"); err != nil {
			t.Fatalf("expr %s failed: %v", e.src, err)
		}
		want := fmt.Sprintf("%d\n", e.val)
		if out.String() != want {
			t.Fatalf("expr %s = %s, want %s", e.src, out.String(), want)
		}
	}
	if checked < 100 {
		t.Fatalf("too few valid expressions checked: %d", checked)
	}
}

// Property: compiled code always validates, whatever jump structure the
// source produces.
func TestCompiledCodeAlwaysValidates(t *testing.T) {
	f := func(n uint8, deep bool) bool {
		depth := int(n%4) + 1
		var sb strings.Builder
		sb.WriteString("def f(x):\n")
		indent := "    "
		for i := 0; i < depth; i++ {
			fmt.Fprintf(&sb, "%sif x > %d:\n", indent, i)
			indent += "    "
			fmt.Fprintf(&sb, "%sx = x - %d\n", indent, i+1)
		}
		fmt.Fprintf(&sb, "%sreturn x\n", indent)
		sb.WriteString("print(f(10))\n")
		code, err := CompileSource("<gen>", sb.String())
		if err != nil {
			return false
		}
		return code.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChainedComparisonCompiles(t *testing.T) {
	var out strings.Builder
	vm := interp.New(emit.NewEngine(isa.NullSink{}), gc.DefaultRefCountConfig(), &out)
	err := vm.RunSource("<chain>", `
def check(a, b, c):
    return a < b < c

print(check(1, 2, 3), check(1, 3, 2), check(3, 1, 2))
print(0 <= 5 < 10 <= 10)
`)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != "True False False\nTrue\n" {
		t.Errorf("chained comparisons: %q", out.String())
	}
}
