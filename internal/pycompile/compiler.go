package pycompile

import (
	"fmt"

	"repro/internal/pycode"
)

// CompileSource parses and compiles a MiniPy source file to a module code
// object.
func CompileSource(file, src string) (*pycode.Code, error) {
	mod, err := Parse(file, src)
	if err != nil {
		return nil, err
	}
	return CompileModule(file, mod)
}

// CompileModule compiles a parsed module.
func CompileModule(file string, mod *Module) (*pycode.Code, error) {
	fc := newFuncCompiler(file, "<module>", nil, true)
	if err := fc.stmts(mod.Body); err != nil {
		return nil, err
	}
	fc.emitReturnNone(0)
	code := fc.finish()
	if err := code.Validate(); err != nil {
		return nil, fmt.Errorf("pycompile: internal error: %w", err)
	}
	// Inline-cache site allocation happens here, before the code object
	// escapes: published code is shared across VMs, so the site table
	// must be complete and immutable by the time anyone executes it.
	code.AllocateICSites()
	return code, nil
}

// CompileError reports a semantic error during compilation.
type CompileError struct {
	File string
	Line int
	Msg  string
}

func (e *CompileError) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}

type funcCompiler struct {
	file     string
	name     string
	isModule bool

	instrs []pycode.Instr
	lines  []int32

	consts    []pycode.Const
	names     []string
	nameIdx   map[string]int
	varnames  []string
	varIdx    map[string]int
	numParams int

	globals map[string]bool // names declared global
	locals  map[string]bool // names assigned somewhere in the body

	loopStarts []int // bytecode index of innermost loop starts (for continue)
	loopDepth  int
	scanned    bool

	depth    int
	maxDepth int
}

func newFuncCompiler(file, name string, params []string, isModule bool) *funcCompiler {
	fc := &funcCompiler{
		file:     file,
		name:     name,
		isModule: isModule,
		nameIdx:  make(map[string]int),
		varIdx:   make(map[string]int),
		globals:  make(map[string]bool),
		locals:   make(map[string]bool),
	}
	for _, p := range params {
		fc.localSlot(p)
		fc.locals[p] = true
	}
	fc.numParams = len(params)
	return fc
}

func (fc *funcCompiler) errf(line int, format string, args ...interface{}) error {
	return &CompileError{File: fc.file, Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (fc *funcCompiler) finish() *pycode.Code {
	return &pycode.Code{
		Name:      fc.name,
		Filename:  fc.file,
		NumParams: fc.numParams,
		Varnames:  fc.varnames,
		Names:     fc.names,
		Consts:    fc.consts,
		Code:      fc.instrs,
		StackSize: fc.maxDepth + 16,
		Lines:     fc.lines,
		IsModule:  fc.isModule,
	}
}

// emit appends an instruction, tracking a conservative stack-depth
// estimate, and returns its index.
func (fc *funcCompiler) emit(line int, op pycode.Opcode, arg int32, effect int) int {
	fc.instrs = append(fc.instrs, pycode.Instr{Op: op, Arg: arg})
	fc.lines = append(fc.lines, int32(line))
	fc.depth += effect
	if fc.depth < 0 {
		fc.depth = 0
	}
	if fc.depth > fc.maxDepth {
		fc.maxDepth = fc.depth
	}
	return len(fc.instrs) - 1
}

// patch sets the jump target of the instruction at idx to the next
// instruction to be emitted.
func (fc *funcCompiler) patch(idx int) {
	fc.instrs[idx].Arg = int32(len(fc.instrs))
}

func (fc *funcCompiler) here() int32 { return int32(len(fc.instrs)) }

func (fc *funcCompiler) constIdx(k pycode.Const) int32 {
	for i := range fc.consts {
		if fc.consts[i].Equal(k) {
			return int32(i)
		}
	}
	fc.consts = append(fc.consts, k)
	return int32(len(fc.consts) - 1)
}

func (fc *funcCompiler) nameSlot(name string) int32 {
	if i, ok := fc.nameIdx[name]; ok {
		return int32(i)
	}
	fc.names = append(fc.names, name)
	fc.nameIdx[name] = len(fc.names) - 1
	return int32(len(fc.names) - 1)
}

func (fc *funcCompiler) localSlot(name string) int32 {
	if i, ok := fc.varIdx[name]; ok {
		return int32(i)
	}
	fc.varnames = append(fc.varnames, name)
	fc.varIdx[name] = len(fc.varnames) - 1
	return int32(len(fc.varnames) - 1)
}

func (fc *funcCompiler) emitReturnNone(line int) {
	fc.emit(line, pycode.LOAD_CONST, fc.constIdx(pycode.NoneConst()), 1)
	fc.emit(line, pycode.RETURN_VALUE, 0, -1)
}

// collectLocals records every name assigned in the statement list so that
// loads can be classified local vs global before any store is seen.
func (fc *funcCompiler) collectLocals(body []Stmt) {
	var walkTarget func(e Expr)
	walkTarget = func(e Expr) {
		switch t := e.(type) {
		case *Name:
			if !fc.globals[t.Ident] {
				fc.locals[t.Ident] = true
			}
		case *TupleLit:
			for _, el := range t.Elems {
				walkTarget(el)
			}
		case *ListLit:
			for _, el := range t.Elems {
				walkTarget(el)
			}
		}
	}
	var walk func(stmts []Stmt)
	walk = func(stmts []Stmt) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *Global:
				for _, n := range st.Names {
					fc.globals[n] = true
					delete(fc.locals, n)
				}
			case *Assign:
				for _, t := range st.Targets {
					walkTarget(t)
				}
			case *AugAssign:
				walkTarget(st.Target)
			case *For:
				walkTarget(st.Target)
				walk(st.Body)
			case *While:
				walk(st.Body)
			case *If:
				walk(st.Body)
				walk(st.Orelse)
			case *FuncDef:
				if !fc.globals[st.Name] {
					fc.locals[st.Name] = true
				}
			case *ClassDef:
				if !fc.globals[st.Name] {
					fc.locals[st.Name] = true
				}
			}
		}
	}
	walk(body)
}

func (fc *funcCompiler) stmts(body []Stmt) error {
	if !fc.isModule && !fc.scanned {
		// First call on a function body: pre-scan for locals so loads
		// classify correctly before any store is seen. (Module and
		// class bodies use NAME ops and need no scan.)
		fc.scanned = true
		fc.collectLocals(body)
	}
	for _, s := range body {
		if err := fc.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (fc *funcCompiler) stmt(s Stmt) error {
	switch st := s.(type) {
	case *ExprStmt:
		if err := fc.expr(st.Value); err != nil {
			return err
		}
		fc.emit(st.Line(), pycode.POP_TOP, 0, -1)
		return nil
	case *Assign:
		if err := fc.expr(st.Value); err != nil {
			return err
		}
		for i, t := range st.Targets {
			if i < len(st.Targets)-1 {
				fc.emit(st.Line(), pycode.DUP_TOP, 0, 1)
			}
			if err := fc.store(t); err != nil {
				return err
			}
		}
		return nil
	case *AugAssign:
		return fc.augAssign(st)
	case *Return:
		if fc.isModule {
			return fc.errf(st.Line(), "return outside function")
		}
		if st.Value != nil {
			if err := fc.expr(st.Value); err != nil {
				return err
			}
		} else {
			fc.emit(st.Line(), pycode.LOAD_CONST, fc.constIdx(pycode.NoneConst()), 1)
		}
		fc.emit(st.Line(), pycode.RETURN_VALUE, 0, -1)
		return nil
	case *If:
		return fc.ifStmt(st)
	case *While:
		return fc.whileStmt(st)
	case *For:
		return fc.forStmt(st)
	case *Break:
		if fc.loopDepth == 0 {
			return fc.errf(st.Line(), "break outside loop")
		}
		fc.emit(st.Line(), pycode.BREAK_LOOP, 0, 0)
		return nil
	case *Continue:
		if fc.loopDepth == 0 {
			return fc.errf(st.Line(), "continue outside loop")
		}
		fc.emit(st.Line(), pycode.CONTINUE_LOOP, int32(fc.loopStarts[len(fc.loopStarts)-1]), 0)
		return nil
	case *Pass:
		return nil
	case *Global:
		if fc.isModule {
			return nil // no-op at module level
		}
		for _, n := range st.Names {
			fc.globals[n] = true
		}
		return nil
	case *FuncDef:
		return fc.funcDef(st)
	case *ClassDef:
		return fc.classDef(st)
	case *DelStmt:
		sub := st.Target.(*Subscript)
		if err := fc.expr(sub.V); err != nil {
			return err
		}
		if err := fc.subscriptKey(sub.Index); err != nil {
			return err
		}
		fc.emit(st.Line(), pycode.DELETE_SUBSCR, 0, -2)
		return nil
	}
	return fc.errf(s.Line(), "unsupported statement %T", s)
}

func (fc *funcCompiler) funcDef(st *FuncDef) error {
	sub := newFuncCompiler(fc.file, st.Name, st.Params, false)
	if err := sub.stmts(st.Body); err != nil {
		return err
	}
	sub.emitReturnNone(st.Line())
	code := sub.finish()
	for _, d := range st.Defaults {
		if err := fc.expr(d); err != nil {
			return err
		}
	}
	fc.emit(st.Line(), pycode.LOAD_CONST, fc.constIdx(pycode.CodeConst(code)), 1)
	fc.emit(st.Line(), pycode.MAKE_FUNCTION, int32(len(st.Defaults)), -len(st.Defaults))
	return fc.storeName(st.Line(), st.Name)
}

func (fc *funcCompiler) classDef(st *ClassDef) error {
	if st.Base != nil {
		if err := fc.expr(st.Base); err != nil {
			return err
		}
	} else {
		fc.emit(st.Line(), pycode.LOAD_CONST, fc.constIdx(pycode.NoneConst()), 1)
	}
	// Compile the class body as a names-scope code object.
	sub := newFuncCompiler(fc.file, st.Name, nil, true)
	if err := sub.stmts(st.Body); err != nil {
		return err
	}
	sub.emitReturnNone(st.Line())
	body := sub.finish()
	fc.emit(st.Line(), pycode.LOAD_CONST, fc.constIdx(pycode.CodeConst(body)), 1)
	fc.emit(st.Line(), pycode.MAKE_FUNCTION, 0, 0)
	fc.emit(st.Line(), pycode.BUILD_CLASS, fc.nameSlot(st.Name), -1)
	return fc.storeName(st.Line(), st.Name)
}

func (fc *funcCompiler) ifStmt(st *If) error {
	if err := fc.expr(st.Cond); err != nil {
		return err
	}
	jFalse := fc.emit(st.Line(), pycode.POP_JUMP_IF_FALSE, 0, -1)
	if err := fc.stmts(st.Body); err != nil {
		return err
	}
	if len(st.Orelse) > 0 {
		jEnd := fc.emit(st.Line(), pycode.JUMP_FORWARD, 0, 0)
		fc.patch(jFalse)
		if err := fc.stmts(st.Orelse); err != nil {
			return err
		}
		fc.patch(jEnd)
	} else {
		fc.patch(jFalse)
	}
	return nil
}

func (fc *funcCompiler) whileStmt(st *While) error {
	setup := fc.emit(st.Line(), pycode.SETUP_LOOP, 0, 0)
	start := len(fc.instrs)
	if err := fc.expr(st.Cond); err != nil {
		return err
	}
	jExit := fc.emit(st.Line(), pycode.POP_JUMP_IF_FALSE, 0, -1)
	fc.loopStarts = append(fc.loopStarts, start)
	fc.loopDepth++
	if err := fc.stmts(st.Body); err != nil {
		return err
	}
	fc.loopDepth--
	fc.loopStarts = fc.loopStarts[:len(fc.loopStarts)-1]
	fc.emit(st.Line(), pycode.JUMP_ABSOLUTE, int32(start), 0)
	fc.patch(jExit)
	fc.emit(st.Line(), pycode.POP_BLOCK, 0, 0)
	fc.patch(setup)
	return nil
}

func (fc *funcCompiler) forStmt(st *For) error {
	setup := fc.emit(st.Line(), pycode.SETUP_LOOP, 0, 0)
	if err := fc.expr(st.Iter); err != nil {
		return err
	}
	fc.emit(st.Line(), pycode.GET_ITER, 0, 0)
	start := len(fc.instrs)
	jExhaust := fc.emit(st.Line(), pycode.FOR_ITER, 0, 1)
	if err := fc.store(st.Target); err != nil {
		return err
	}
	fc.loopStarts = append(fc.loopStarts, start)
	fc.loopDepth++
	if err := fc.stmts(st.Body); err != nil {
		return err
	}
	fc.loopDepth--
	fc.loopStarts = fc.loopStarts[:len(fc.loopStarts)-1]
	fc.emit(st.Line(), pycode.JUMP_ABSOLUTE, int32(start), -1)
	fc.patch(jExhaust)
	fc.emit(st.Line(), pycode.POP_BLOCK, 0, 0)
	fc.patch(setup)
	return nil
}

func (fc *funcCompiler) augAssign(st *AugAssign) error {
	line := st.Line()
	switch t := st.Target.(type) {
	case *Name:
		if err := fc.loadName(line, t.Ident); err != nil {
			return err
		}
		if err := fc.expr(st.Value); err != nil {
			return err
		}
		fc.emit(line, st.Op.InplaceOpcode(), 0, -1)
		return fc.storeName(line, t.Ident)
	case *Subscript:
		if err := fc.expr(t.V); err != nil {
			return err
		}
		if err := fc.subscriptKey(t.Index); err != nil {
			return err
		}
		fc.emit(line, pycode.DUP_TOP_TWO, 0, 2)
		fc.emit(line, pycode.BINARY_SUBSCR, 0, -1)
		if err := fc.expr(st.Value); err != nil {
			return err
		}
		fc.emit(line, st.Op.InplaceOpcode(), 0, -1)
		fc.emit(line, pycode.ROT_THREE, 0, 0)
		fc.emit(line, pycode.STORE_SUBSCR, 0, -3)
		return nil
	case *Attribute:
		if err := fc.expr(t.V); err != nil {
			return err
		}
		fc.emit(line, pycode.DUP_TOP, 0, 1)
		fc.emit(line, pycode.LOAD_ATTR, fc.nameSlot(t.Name), 0)
		if err := fc.expr(st.Value); err != nil {
			return err
		}
		fc.emit(line, st.Op.InplaceOpcode(), 0, -1)
		fc.emit(line, pycode.ROT_TWO, 0, 0)
		fc.emit(line, pycode.STORE_ATTR, fc.nameSlot(t.Name), -2)
		return nil
	}
	return fc.errf(line, "unsupported augmented-assignment target %T", st.Target)
}

// store compiles a store of the value on the stack top into target.
func (fc *funcCompiler) store(target Expr) error {
	line := target.Line()
	switch t := target.(type) {
	case *Name:
		return fc.storeName(line, t.Ident)
	case *Subscript:
		// Stack: [value]; want [value, obj, key] for STORE_SUBSCR.
		if err := fc.expr(t.V); err != nil {
			return err
		}
		if err := fc.subscriptKey(t.Index); err != nil {
			return err
		}
		fc.emit(line, pycode.STORE_SUBSCR, 0, -3)
		return nil
	case *Attribute:
		if err := fc.expr(t.V); err != nil {
			return err
		}
		fc.emit(line, pycode.STORE_ATTR, fc.nameSlot(t.Name), -2)
		return nil
	case *TupleLit:
		fc.emit(line, pycode.UNPACK_SEQUENCE, int32(len(t.Elems)), len(t.Elems)-1)
		for _, el := range t.Elems {
			if err := fc.store(el); err != nil {
				return err
			}
		}
		return nil
	case *ListLit:
		fc.emit(line, pycode.UNPACK_SEQUENCE, int32(len(t.Elems)), len(t.Elems)-1)
		for _, el := range t.Elems {
			if err := fc.store(el); err != nil {
				return err
			}
		}
		return nil
	}
	return fc.errf(line, "unsupported assignment target %T", target)
}

func (fc *funcCompiler) storeName(line int, name string) error {
	switch {
	case fc.isModule:
		fc.emit(line, pycode.STORE_NAME, fc.nameSlot(name), -1)
	case fc.globals[name]:
		fc.emit(line, pycode.STORE_GLOBAL, fc.nameSlot(name), -1)
	default:
		fc.emit(line, pycode.STORE_FAST, fc.localSlot(name), -1)
	}
	return nil
}

func (fc *funcCompiler) loadName(line int, name string) error {
	switch {
	case fc.isModule:
		fc.emit(line, pycode.LOAD_NAME, fc.nameSlot(name), 1)
	case !fc.globals[name] && fc.locals[name]:
		fc.emit(line, pycode.LOAD_FAST, fc.localSlot(name), 1)
	default:
		fc.emit(line, pycode.LOAD_GLOBAL, fc.nameSlot(name), 1)
	}
	return nil
}

// subscriptKey compiles the index of a subscript; slices build a slice
// object.
func (fc *funcCompiler) subscriptKey(index Expr) error {
	if sl, ok := index.(*SliceExpr); ok {
		line := sl.Line()
		comp := func(e Expr) error {
			if e == nil {
				fc.emit(line, pycode.LOAD_CONST, fc.constIdx(pycode.NoneConst()), 1)
				return nil
			}
			return fc.expr(e)
		}
		if err := comp(sl.Lo); err != nil {
			return err
		}
		if err := comp(sl.Hi); err != nil {
			return err
		}
		n := int32(2)
		if sl.Step != nil {
			if err := fc.expr(sl.Step); err != nil {
				return err
			}
			n = 3
		}
		fc.emit(line, pycode.BUILD_SLICE, n, -int(n)+1)
		return nil
	}
	return fc.expr(index)
}

func (fc *funcCompiler) expr(e Expr) error {
	line := e.Line()
	switch ex := e.(type) {
	case *Name:
		return fc.loadName(line, ex.Ident)
	case *NumInt:
		fc.emit(line, pycode.LOAD_CONST, fc.constIdx(pycode.IntConst(ex.V)), 1)
		return nil
	case *NumFloat:
		fc.emit(line, pycode.LOAD_CONST, fc.constIdx(pycode.FloatConst(ex.V)), 1)
		return nil
	case *StrLit:
		fc.emit(line, pycode.LOAD_CONST, fc.constIdx(pycode.StrConst(ex.V)), 1)
		return nil
	case *BoolLit:
		fc.emit(line, pycode.LOAD_CONST, fc.constIdx(pycode.BoolConst(ex.V)), 1)
		return nil
	case *NoneLit:
		fc.emit(line, pycode.LOAD_CONST, fc.constIdx(pycode.NoneConst()), 1)
		return nil
	case *BinOp:
		if err := fc.expr(ex.L); err != nil {
			return err
		}
		if err := fc.expr(ex.R); err != nil {
			return err
		}
		fc.emit(line, ex.Op.Opcode(), 0, -1)
		return nil
	case *UnaryOp:
		if err := fc.expr(ex.V); err != nil {
			return err
		}
		switch ex.Op {
		case UnaryNeg:
			fc.emit(line, pycode.UNARY_NEGATIVE, 0, 0)
		case UnaryNot:
			fc.emit(line, pycode.UNARY_NOT, 0, 0)
		case UnaryPos:
			// no-op
		}
		return nil
	case *BoolOp:
		jop := pycode.JUMP_IF_FALSE_OR_POP
		if ex.Op == BoolOr {
			jop = pycode.JUMP_IF_TRUE_OR_POP
		}
		var jumps []int
		for i, v := range ex.Values {
			if err := fc.expr(v); err != nil {
				return err
			}
			if i < len(ex.Values)-1 {
				jumps = append(jumps, fc.emit(line, jop, 0, -1))
			}
		}
		for _, j := range jumps {
			fc.patch(j)
		}
		return nil
	case *Compare:
		return fc.compare(ex)
	case *Call:
		if err := fc.expr(ex.Fn); err != nil {
			return err
		}
		for _, a := range ex.Args {
			if err := fc.expr(a); err != nil {
				return err
			}
		}
		fc.emit(line, pycode.CALL_FUNCTION, int32(len(ex.Args)), -len(ex.Args))
		return nil
	case *Subscript:
		if err := fc.expr(ex.V); err != nil {
			return err
		}
		if err := fc.subscriptKey(ex.Index); err != nil {
			return err
		}
		fc.emit(line, pycode.BINARY_SUBSCR, 0, -1)
		return nil
	case *Attribute:
		if err := fc.expr(ex.V); err != nil {
			return err
		}
		fc.emit(line, pycode.LOAD_ATTR, fc.nameSlot(ex.Name), 0)
		return nil
	case *ListLit:
		for _, el := range ex.Elems {
			if err := fc.expr(el); err != nil {
				return err
			}
		}
		fc.emit(line, pycode.BUILD_LIST, int32(len(ex.Elems)), -len(ex.Elems)+1)
		return nil
	case *TupleLit:
		for _, el := range ex.Elems {
			if err := fc.expr(el); err != nil {
				return err
			}
		}
		fc.emit(line, pycode.BUILD_TUPLE, int32(len(ex.Elems)), -len(ex.Elems)+1)
		return nil
	case *DictLit:
		fc.emit(line, pycode.BUILD_MAP, int32(len(ex.Keys)), 1)
		for i := range ex.Keys {
			if err := fc.expr(ex.Values[i]); err != nil {
				return err
			}
			if err := fc.expr(ex.Keys[i]); err != nil {
				return err
			}
			fc.emit(line, pycode.STORE_MAP, 0, -2)
		}
		return nil
	case *CondExpr:
		if err := fc.expr(ex.Cond); err != nil {
			return err
		}
		jElse := fc.emit(line, pycode.POP_JUMP_IF_FALSE, 0, -1)
		if err := fc.expr(ex.Body); err != nil {
			return err
		}
		jEnd := fc.emit(line, pycode.JUMP_FORWARD, 0, 0)
		fc.patch(jElse)
		fc.depth-- // the two arms produce one value
		if err := fc.expr(ex.Orelse); err != nil {
			return err
		}
		fc.patch(jEnd)
		return nil
	case *SliceExpr:
		return fc.errf(line, "slice outside subscript")
	}
	return fc.errf(line, "unsupported expression %T", e)
}

// compare compiles a possibly chained comparison using CPython's
// DUP/ROT/JUMP_IF_FALSE_OR_POP pattern.
func (fc *funcCompiler) compare(ex *Compare) error {
	line := ex.Line()
	if err := fc.expr(ex.Left); err != nil {
		return err
	}
	if len(ex.Ops) == 1 {
		if err := fc.expr(ex.Rights[0]); err != nil {
			return err
		}
		fc.emit(line, pycode.COMPARE_OP, int32(ex.Ops[0]), -1)
		return nil
	}
	var shortJumps []int
	for i := 0; i < len(ex.Ops)-1; i++ {
		if err := fc.expr(ex.Rights[i]); err != nil {
			return err
		}
		fc.emit(line, pycode.DUP_TOP, 0, 1)
		fc.emit(line, pycode.ROT_THREE, 0, 0)
		fc.emit(line, pycode.COMPARE_OP, int32(ex.Ops[i]), -1)
		shortJumps = append(shortJumps, fc.emit(line, pycode.JUMP_IF_FALSE_OR_POP, 0, -1))
	}
	if err := fc.expr(ex.Rights[len(ex.Ops)-1]); err != nil {
		return err
	}
	fc.emit(line, pycode.COMPARE_OP, int32(ex.Ops[len(ex.Ops)-1]), -1)
	jEnd := fc.emit(line, pycode.JUMP_FORWARD, 0, 0)
	for _, j := range shortJumps {
		fc.patch(j)
	}
	// Short-circuit landing: stack is [leftover, result]; discard the
	// leftover middle operand.
	fc.emit(line, pycode.ROT_TWO, 0, 0)
	fc.emit(line, pycode.POP_TOP, 0, -1)
	fc.patch(jEnd)
	return nil
}
