package pycompile

import (
	"fmt"

	"repro/internal/pycode"
)

// Parser builds an AST from the token stream.
type Parser struct {
	lx   *Lexer
	file string
	tok  Token
	peek *Token
}

// Parse parses a MiniPy source file into a Module.
func Parse(file, src string) (*Module, error) {
	p := &Parser{lx: NewLexer(file, src), file: file}
	if err := p.advance(); err != nil {
		return nil, err
	}
	mod := &Module{pos: pos{1}}
	for p.tok.Kind != TokEOF {
		if p.tok.Kind == TokNewline {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		mod.Body = append(mod.Body, st...)
	}
	return mod, nil
}

func (p *Parser) errf(format string, args ...interface{}) error {
	return &SyntaxError{File: p.file, Line: p.tok.Line, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) advance() error {
	if p.peek != nil {
		p.tok = *p.peek
		p.peek = nil
		return nil
	}
	t, err := p.lx.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *Parser) peekTok() (Token, error) {
	if p.peek == nil {
		t, err := p.lx.Next()
		if err != nil {
			return Token{}, err
		}
		p.peek = &t
	}
	return *p.peek, nil
}

func (p *Parser) isOp(text string) bool {
	return p.tok.Kind == TokOp && p.tok.Text == text
}

func (p *Parser) isKw(text string) bool {
	return p.tok.Kind == TokKeyword && p.tok.Text == text
}

func (p *Parser) expectOp(text string) error {
	if !p.isOp(text) {
		return p.errf("expected %q, found %s", text, p.tok)
	}
	return p.advance()
}

func (p *Parser) expectKw(text string) error {
	if !p.isKw(text) {
		return p.errf("expected %q, found %s", text, p.tok)
	}
	return p.advance()
}

func (p *Parser) expectNewline() error {
	if p.tok.Kind != TokNewline && p.tok.Kind != TokEOF {
		return p.errf("expected end of line, found %s", p.tok)
	}
	if p.tok.Kind == TokNewline {
		return p.advance()
	}
	return nil
}

// statement parses one statement, which may expand to several (e.g.
// semicolon-separated simple statements).
func (p *Parser) statement() ([]Stmt, error) {
	if p.tok.Kind == TokKeyword {
		switch p.tok.Text {
		case "def":
			st, err := p.funcDef()
			return wrap(st, err)
		case "class":
			st, err := p.classDef()
			return wrap(st, err)
		case "if":
			st, err := p.ifStmt()
			return wrap(st, err)
		case "while":
			st, err := p.whileStmt()
			return wrap(st, err)
		case "for":
			st, err := p.forStmt()
			return wrap(st, err)
		case "import", "from", "try", "except", "finally", "raise",
			"with", "yield", "lambda", "assert":
			return nil, p.errf("%q is not supported in MiniPy", p.tok.Text)
		}
	}
	return p.simpleStmtLine()
}

func wrap(st Stmt, err error) ([]Stmt, error) {
	if err != nil {
		return nil, err
	}
	return []Stmt{st}, nil
}

// simpleStmtLine parses semicolon-separated simple statements up to
// newline.
func (p *Parser) simpleStmtLine() ([]Stmt, error) {
	var out []Stmt
	for {
		st, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
		if p.isOp(";") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.Kind == TokNewline || p.tok.Kind == TokEOF {
				break
			}
			continue
		}
		break
	}
	if err := p.expectNewline(); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *Parser) simpleStmt() (Stmt, error) {
	line := p.tok.Line
	if p.tok.Kind == TokKeyword {
		switch p.tok.Text {
		case "return":
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.Kind == TokNewline || p.tok.Kind == TokEOF || p.isOp(";") {
				return &Return{pos: pos{line}}, nil
			}
			v, err := p.exprOrTuple()
			if err != nil {
				return nil, err
			}
			return &Return{pos: pos{line}, Value: v}, nil
		case "break":
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &Break{pos{line}}, nil
		case "continue":
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &Continue{pos{line}}, nil
		case "pass":
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &Pass{pos{line}}, nil
		case "global":
			if err := p.advance(); err != nil {
				return nil, err
			}
			var names []string
			for {
				if p.tok.Kind != TokName {
					return nil, p.errf("expected name after global")
				}
				names = append(names, p.tok.Text)
				if err := p.advance(); err != nil {
					return nil, err
				}
				if !p.isOp(",") {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			return &Global{pos: pos{line}, Names: names}, nil
		case "del":
			if err := p.advance(); err != nil {
				return nil, err
			}
			t, err := p.exprOrTuple()
			if err != nil {
				return nil, err
			}
			if _, ok := t.(*Subscript); !ok {
				return nil, p.errf("del supports only subscript targets")
			}
			return &DelStmt{pos: pos{line}, Target: t}, nil
		}
	}

	// Expression, assignment, or augmented assignment.
	e, err := p.exprOrTuple()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind == TokOp {
		switch p.tok.Text {
		case "=":
			targets := []Expr{e}
			var value Expr
			for p.isOp("=") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				v, err := p.exprOrTuple()
				if err != nil {
					return nil, err
				}
				if p.isOp("=") {
					targets = append(targets, v)
					continue
				}
				value = v
			}
			for _, t := range targets {
				if err := checkTarget(p, t); err != nil {
					return nil, err
				}
			}
			return &Assign{pos: pos{line}, Targets: targets, Value: value}, nil
		case "+=", "-=", "*=", "/=", "//=", "%=", "**=", "<<=", ">>=", "&=", "|=", "^=":
			op, err := augOp(p.tok.Text)
			if err != nil {
				return nil, p.errf("%v", err)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			v, err := p.exprOrTuple()
			if err != nil {
				return nil, err
			}
			if err := checkTarget(p, e); err != nil {
				return nil, err
			}
			return &AugAssign{pos: pos{line}, Target: e, Op: op, Value: v}, nil
		}
	}
	return &ExprStmt{pos: pos{line}, Value: e}, nil
}

func augOp(text string) (BinOpKind, error) {
	switch text {
	case "+=":
		return OpAdd, nil
	case "-=":
		return OpSub, nil
	case "*=":
		return OpMul, nil
	case "/=":
		return OpDiv, nil
	case "//=":
		return OpFloorDiv, nil
	case "%=":
		return OpMod, nil
	case "**=":
		return OpPow, nil
	case "<<=":
		return OpLShift, nil
	case ">>=":
		return OpRShift, nil
	case "&=":
		return OpBitAnd, nil
	case "|=":
		return OpBitOr, nil
	case "^=":
		return OpBitXor, nil
	}
	return 0, fmt.Errorf("unknown augmented operator %q", text)
}

func isTarget(e Expr) bool {
	switch t := e.(type) {
	case *Name, *Subscript, *Attribute:
		return true
	case *TupleLit:
		for _, el := range t.Elems {
			if !isTarget(el) {
				return false
			}
		}
		return true
	case *ListLit:
		for _, el := range t.Elems {
			if !isTarget(el) {
				return false
			}
		}
		return true
	}
	return false
}

func checkTarget(p *Parser, e Expr) error {
	if !isTarget(e) {
		return p.errf("invalid assignment target")
	}
	return nil
}

// suite parses ':' NEWLINE INDENT stmts DEDENT, or ':' simple-stmt-line.
func (p *Parser) suite() ([]Stmt, error) {
	if err := p.expectOp(":"); err != nil {
		return nil, err
	}
	if p.tok.Kind != TokNewline {
		// Inline suite: if x: y = 1
		return p.simpleStmtLine()
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	for p.tok.Kind == TokNewline {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.Kind != TokIndent {
		return nil, p.errf("expected indented block")
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	var body []Stmt
	for p.tok.Kind != TokDedent && p.tok.Kind != TokEOF {
		if p.tok.Kind == TokNewline {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		body = append(body, st...)
	}
	if p.tok.Kind == TokDedent {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if len(body) == 0 {
		return nil, p.errf("empty block")
	}
	return body, nil
}

func (p *Parser) funcDef() (Stmt, error) {
	line := p.tok.Line
	if err := p.expectKw("def"); err != nil {
		return nil, err
	}
	if p.tok.Kind != TokName {
		return nil, p.errf("expected function name")
	}
	name := p.tok.Text
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var params []string
	var defaults []Expr
	for !p.isOp(")") {
		if p.tok.Kind != TokName {
			return nil, p.errf("expected parameter name")
		}
		params = append(params, p.tok.Text)
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.isOp("=") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			d, err := p.expr()
			if err != nil {
				return nil, err
			}
			defaults = append(defaults, d)
		} else if len(defaults) > 0 {
			return nil, p.errf("non-default parameter after default parameter")
		}
		if p.isOp(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	body, err := p.suite()
	if err != nil {
		return nil, err
	}
	return &FuncDef{pos: pos{line}, Name: name, Params: params, Defaults: defaults, Body: body}, nil
}

func (p *Parser) classDef() (Stmt, error) {
	line := p.tok.Line
	if err := p.expectKw("class"); err != nil {
		return nil, err
	}
	if p.tok.Kind != TokName {
		return nil, p.errf("expected class name")
	}
	name := p.tok.Text
	if err := p.advance(); err != nil {
		return nil, err
	}
	var base Expr
	if p.isOp("(") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if !p.isOp(")") {
			b, err := p.expr()
			if err != nil {
				return nil, err
			}
			base = b
			if p.isOp(",") {
				return nil, p.errf("multiple inheritance is not supported")
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	// `class C(object):` means no base in MiniPy.
	if n, ok := base.(*Name); ok && n.Ident == "object" {
		base = nil
	}
	body, err := p.suite()
	if err != nil {
		return nil, err
	}
	return &ClassDef{pos: pos{line}, Name: name, Base: base, Body: body}, nil
}

func (p *Parser) ifStmt() (Stmt, error) {
	line := p.tok.Line
	if err := p.advance(); err != nil { // if or elif
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	body, err := p.suite()
	if err != nil {
		return nil, err
	}
	node := &If{pos: pos{line}, Cond: cond, Body: body}
	if p.isKw("elif") {
		el, err := p.ifStmt()
		if err != nil {
			return nil, err
		}
		node.Orelse = []Stmt{el}
	} else if p.isKw("else") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		orelse, err := p.suite()
		if err != nil {
			return nil, err
		}
		node.Orelse = orelse
	}
	return node, nil
}

func (p *Parser) whileStmt() (Stmt, error) {
	line := p.tok.Line
	if err := p.expectKw("while"); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	body, err := p.suite()
	if err != nil {
		return nil, err
	}
	return &While{pos: pos{line}, Cond: cond, Body: body}, nil
}

func (p *Parser) forStmt() (Stmt, error) {
	line := p.tok.Line
	if err := p.expectKw("for"); err != nil {
		return nil, err
	}
	target, err := p.targetList()
	if err != nil {
		return nil, err
	}
	if err := checkTarget(p, target); err != nil {
		return nil, err
	}
	if err := p.expectKw("in"); err != nil {
		return nil, err
	}
	iter, err := p.exprOrTuple()
	if err != nil {
		return nil, err
	}
	body, err := p.suite()
	if err != nil {
		return nil, err
	}
	return &For{pos: pos{line}, Target: target, Iter: iter, Body: body}, nil
}

// targetList parses a for-loop target: postfix expressions (names,
// subscripts, attributes, parenthesized tuples) separated by commas,
// without consuming the `in` keyword as a comparison operator.
func (p *Parser) targetList() (Expr, error) {
	first, err := p.postfix()
	if err != nil {
		return nil, err
	}
	if !p.isOp(",") {
		return first, nil
	}
	elems := []Expr{first}
	for p.isOp(",") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.isKw("in") {
			break
		}
		e, err := p.postfix()
		if err != nil {
			return nil, err
		}
		elems = append(elems, e)
	}
	return &TupleLit{pos: pos{first.Line()}, Elems: elems}, nil
}

// exprOrTuple parses expr (, expr)* as a tuple when commas appear.
func (p *Parser) exprOrTuple() (Expr, error) {
	first, err := p.expr()
	if err != nil {
		return nil, err
	}
	if !p.isOp(",") {
		return first, nil
	}
	elems := []Expr{first}
	for p.isOp(",") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		// Trailing comma.
		if p.tok.Kind == TokNewline || p.tok.Kind == TokEOF ||
			(p.tok.Kind == TokOp && (p.tok.Text == ")" || p.tok.Text == "]" ||
				p.tok.Text == "}" || p.tok.Text == "=" || p.tok.Text == ";" || p.tok.Text == ":")) {
			break
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		elems = append(elems, e)
	}
	return &TupleLit{pos: pos{first.Line()}, Elems: elems}, nil
}

// expr parses a conditional expression (the lowest precedence).
func (p *Parser) expr() (Expr, error) {
	e, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	if p.isKw("if") {
		line := p.tok.Line
		if err := p.advance(); err != nil {
			return nil, err
		}
		cond, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("else"); err != nil {
			return nil, err
		}
		orelse, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &CondExpr{pos: pos{line}, Cond: cond, Body: e, Orelse: orelse}, nil
	}
	return e, nil
}

func (p *Parser) orExpr() (Expr, error) {
	e, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	if !p.isKw("or") {
		return e, nil
	}
	vals := []Expr{e}
	for p.isKw("or") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		v, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
	}
	return &BoolOp{pos: pos{e.Line()}, Op: BoolOr, Values: vals}, nil
}

func (p *Parser) andExpr() (Expr, error) {
	e, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	if !p.isKw("and") {
		return e, nil
	}
	vals := []Expr{e}
	for p.isKw("and") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		v, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
	}
	return &BoolOp{pos: pos{e.Line()}, Op: BoolAnd, Values: vals}, nil
}

func (p *Parser) notExpr() (Expr, error) {
	if p.isKw("not") {
		line := p.tok.Line
		if err := p.advance(); err != nil {
			return nil, err
		}
		v, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryOp{pos: pos{line}, Op: UnaryNot, V: v}, nil
	}
	return p.comparison()
}

func (p *Parser) comparison() (Expr, error) {
	left, err := p.arith()
	if err != nil {
		return nil, err
	}
	var ops []pycode.CmpOp
	var rights []Expr
	for {
		var op pycode.CmpOp
		matched := true
		switch {
		case p.isOp("<"):
			op = pycode.CmpLT
		case p.isOp("<="):
			op = pycode.CmpLE
		case p.isOp("=="):
			op = pycode.CmpEQ
		case p.isOp("!="):
			op = pycode.CmpNE
		case p.isOp(">"):
			op = pycode.CmpGT
		case p.isOp(">="):
			op = pycode.CmpGE
		case p.isKw("in"):
			op = pycode.CmpIn
		case p.isKw("is"):
			op = pycode.CmpIs
		case p.isKw("not"):
			// "not in"
			nt, err := p.peekTok()
			if err != nil {
				return nil, err
			}
			if nt.Kind == TokKeyword && nt.Text == "in" {
				if err := p.advance(); err != nil {
					return nil, err
				}
				op = pycode.CmpNotIn
			} else {
				matched = false
			}
		default:
			matched = false
		}
		if !matched {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if op == pycode.CmpIs && p.isKw("not") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			op = pycode.CmpIsNot
		}
		r, err := p.arith()
		if err != nil {
			return nil, err
		}
		ops = append(ops, op)
		rights = append(rights, r)
	}
	if len(ops) == 0 {
		return left, nil
	}
	return &Compare{pos: pos{left.Line()}, Left: left, Ops: ops, Rights: rights}, nil
}

// Precedence-climbing for arithmetic/bitwise operators.
var binPrec = map[string]int{
	"|": 1, "^": 2, "&": 3, "<<": 4, ">>": 4,
	"+": 5, "-": 5, "*": 6, "/": 6, "//": 6, "%": 6,
}

var binKind = map[string]BinOpKind{
	"|": OpBitOr, "^": OpBitXor, "&": OpBitAnd, "<<": OpLShift, ">>": OpRShift,
	"+": OpAdd, "-": OpSub, "*": OpMul, "/": OpDiv, "//": OpFloorDiv, "%": OpMod,
}

func (p *Parser) arith() (Expr, error) { return p.binary(1) }

func (p *Parser) binary(minPrec int) (Expr, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokOp {
		prec, ok := binPrec[p.tok.Text]
		if !ok || prec < minPrec {
			break
		}
		kind := binKind[p.tok.Text]
		line := p.tok.Line
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		left = &BinOp{pos: pos{line}, Op: kind, L: left, R: right}
	}
	return left, nil
}

func (p *Parser) unary() (Expr, error) {
	line := p.tok.Line
	if p.isOp("-") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		v, err := p.unary()
		if err != nil {
			return nil, err
		}
		// Fold negative literals.
		switch n := v.(type) {
		case *NumInt:
			return &NumInt{pos: pos{line}, V: -n.V}, nil
		case *NumFloat:
			return &NumFloat{pos: pos{line}, V: -n.V}, nil
		}
		return &UnaryOp{pos: pos{line}, Op: UnaryNeg, V: v}, nil
	}
	if p.isOp("+") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		return p.unary()
	}
	if p.isOp("~") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		v, err := p.unary()
		if err != nil {
			return nil, err
		}
		// ~x == -x - 1; desugar to keep the opcode set small.
		return &BinOp{pos: pos{line}, Op: OpSub,
			L: &UnaryOp{pos: pos{line}, Op: UnaryNeg, V: v},
			R: &NumInt{pos: pos{line}, V: 1}}, nil
	}
	return p.power()
}

func (p *Parser) power() (Expr, error) {
	base, err := p.postfix()
	if err != nil {
		return nil, err
	}
	if p.isOp("**") {
		line := p.tok.Line
		if err := p.advance(); err != nil {
			return nil, err
		}
		exp, err := p.unary() // right associative
		if err != nil {
			return nil, err
		}
		return &BinOp{pos: pos{line}, Op: OpPow, L: base, R: exp}, nil
	}
	return base, nil
}

func (p *Parser) postfix() (Expr, error) {
	e, err := p.atom()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.isOp("("):
			line := p.tok.Line
			if err := p.advance(); err != nil {
				return nil, err
			}
			var args []Expr
			for !p.isOp(")") {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.isOp(",") {
					if err := p.advance(); err != nil {
						return nil, err
					}
					continue
				}
				break
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			e = &Call{pos: pos{line}, Fn: e, Args: args}
		case p.isOp("["):
			line := p.tok.Line
			if err := p.advance(); err != nil {
				return nil, err
			}
			idx, err := p.subscriptIndex()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp("]"); err != nil {
				return nil, err
			}
			e = &Subscript{pos: pos{line}, V: e, Index: idx}
		case p.isOp("."):
			line := p.tok.Line
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.Kind != TokName {
				return nil, p.errf("expected attribute name")
			}
			name := p.tok.Text
			if err := p.advance(); err != nil {
				return nil, err
			}
			e = &Attribute{pos: pos{line}, V: e, Name: name}
		default:
			return e, nil
		}
	}
}

// subscriptIndex parses either a plain expression or a slice lo:hi[:step].
func (p *Parser) subscriptIndex() (Expr, error) {
	line := p.tok.Line
	var lo Expr
	var err error
	if !p.isOp(":") {
		lo, err = p.exprOrTuple()
		if err != nil {
			return nil, err
		}
		if !p.isOp(":") {
			return lo, nil
		}
	}
	// It's a slice.
	if err := p.expectOp(":"); err != nil {
		return nil, err
	}
	var hi, step Expr
	if !p.isOp("]") && !p.isOp(":") {
		hi, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if p.isOp(":") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if !p.isOp("]") {
			step, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
	}
	return &SliceExpr{pos: pos{line}, Lo: lo, Hi: hi, Step: step}, nil
}

func (p *Parser) atom() (Expr, error) {
	line := p.tok.Line
	switch p.tok.Kind {
	case TokName:
		name := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Name{pos: pos{line}, Ident: name}, nil
	case TokInt:
		v := p.tok.Int
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &NumInt{pos: pos{line}, V: v}, nil
	case TokFloat:
		v := p.tok.Float
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &NumFloat{pos: pos{line}, V: v}, nil
	case TokStr:
		v := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		// Adjacent string literal concatenation.
		for p.tok.Kind == TokStr {
			v += p.tok.Text
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		return &StrLit{pos: pos{line}, V: v}, nil
	case TokKeyword:
		switch p.tok.Text {
		case "True", "False":
			b := p.tok.Text == "True"
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &BoolLit{pos: pos{line}, V: b}, nil
		case "None":
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &NoneLit{pos{line}}, nil
		}
		return nil, p.errf("unexpected keyword %q in expression", p.tok.Text)
	case TokOp:
		switch p.tok.Text {
		case "(":
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.isOp(")") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				return &TupleLit{pos: pos{line}}, nil
			}
			e, err := p.exprOrTuple()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		case "[":
			if err := p.advance(); err != nil {
				return nil, err
			}
			var elems []Expr
			for !p.isOp("]") {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				elems = append(elems, e)
				if p.isOp(",") {
					if err := p.advance(); err != nil {
						return nil, err
					}
					continue
				}
				break
			}
			if err := p.expectOp("]"); err != nil {
				return nil, err
			}
			return &ListLit{pos: pos{line}, Elems: elems}, nil
		case "{":
			if err := p.advance(); err != nil {
				return nil, err
			}
			var keys, vals []Expr
			for !p.isOp("}") {
				k, err := p.expr()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(":"); err != nil {
					return nil, err
				}
				v, err := p.expr()
				if err != nil {
					return nil, err
				}
				keys = append(keys, k)
				vals = append(vals, v)
				if p.isOp(",") {
					if err := p.advance(); err != nil {
						return nil, err
					}
					continue
				}
				break
			}
			if err := p.expectOp("}"); err != nil {
				return nil, err
			}
			return &DictLit{pos: pos{line}, Keys: keys, Values: vals}, nil
		}
	}
	return nil, p.errf("unexpected token %s in expression", p.tok)
}
