// Package pycompile compiles the MiniPy language — the Python-2.7 subset
// used by the benchmark suite — to pycode bytecode. It contains an
// indentation-aware lexer, a recursive-descent parser producing an AST,
// and a single-pass bytecode compiler with jump patching.
package pycompile

import "repro/internal/pycode"

// Node is the common interface of AST nodes.
type Node interface {
	// Line returns the 1-based source line of the node.
	Line() int
}

type pos struct{ line int }

func (p pos) Line() int { return p.line }

// Stmt is a statement node.
type Stmt interface {
	Node
	stmt()
}

// Expr is an expression node.
type Expr interface {
	Node
	expr()
}

// ---- Statements ----

// Module is the root of a parsed source file.
type Module struct {
	pos
	Body []Stmt
}

// FuncDef is a def statement.
type FuncDef struct {
	pos
	Name     string
	Params   []string
	Defaults []Expr // defaults for the trailing parameters
	Body     []Stmt
}

// ClassDef is a class statement with an optional single base.
type ClassDef struct {
	pos
	Name string
	Base Expr // nil for no base
	Body []Stmt
}

// Return is a return statement.
type Return struct {
	pos
	Value Expr // nil for bare return
}

// If is an if/elif/else chain (elif is nested in Orelse).
type If struct {
	pos
	Cond   Expr
	Body   []Stmt
	Orelse []Stmt
}

// While is a while loop.
type While struct {
	pos
	Cond Expr
	Body []Stmt
}

// For is a for-in loop.
type For struct {
	pos
	Target Expr // Name or TupleLit of Names
	Iter   Expr
	Body   []Stmt
}

// Assign is targets = value. Multiple targets (a = b = expr) assign the
// same value left to right; each target may be a Name, Subscript,
// Attribute, or a tuple/list of targets.
type Assign struct {
	pos
	Targets []Expr
	Value   Expr
}

// AugAssign is target op= value.
type AugAssign struct {
	pos
	Target Expr
	Op     BinOpKind
	Value  Expr
}

// ExprStmt is an expression evaluated for effect.
type ExprStmt struct {
	pos
	Value Expr
}

// Break, Continue, Pass are simple statements.
type Break struct{ pos }
type Continue struct{ pos }
type Pass struct{ pos }

// Global declares names as module-level inside a function.
type Global struct {
	pos
	Names []string
}

// DelStmt deletes a subscript (del d[k]).
type DelStmt struct {
	pos
	Target Expr
}

func (*FuncDef) stmt()   {}
func (*ClassDef) stmt()  {}
func (*Return) stmt()    {}
func (*If) stmt()        {}
func (*While) stmt()     {}
func (*For) stmt()       {}
func (*Assign) stmt()    {}
func (*AugAssign) stmt() {}
func (*ExprStmt) stmt()  {}
func (*Break) stmt()     {}
func (*Continue) stmt()  {}
func (*Pass) stmt()      {}
func (*Global) stmt()    {}
func (*DelStmt) stmt()   {}

// ---- Expressions ----

// BinOpKind identifies a binary arithmetic/bitwise operator.
type BinOpKind uint8

// Binary operators.
const (
	OpAdd BinOpKind = iota
	OpSub
	OpMul
	OpDiv
	OpFloorDiv
	OpMod
	OpPow
	OpLShift
	OpRShift
	OpBitAnd
	OpBitOr
	OpBitXor
)

// Opcode returns the BINARY_* opcode for the operator.
func (k BinOpKind) Opcode() pycode.Opcode {
	switch k {
	case OpAdd:
		return pycode.BINARY_ADD
	case OpSub:
		return pycode.BINARY_SUBTRACT
	case OpMul:
		return pycode.BINARY_MULTIPLY
	case OpDiv:
		return pycode.BINARY_DIVIDE
	case OpFloorDiv:
		return pycode.BINARY_FLOOR_DIVIDE
	case OpMod:
		return pycode.BINARY_MODULO
	case OpPow:
		return pycode.BINARY_POWER
	case OpLShift:
		return pycode.BINARY_LSHIFT
	case OpRShift:
		return pycode.BINARY_RSHIFT
	case OpBitAnd:
		return pycode.BINARY_AND
	case OpBitOr:
		return pycode.BINARY_OR
	case OpBitXor:
		return pycode.BINARY_XOR
	}
	panic("pycompile: unknown BinOpKind")
}

// InplaceOpcode returns the INPLACE_* opcode for the operator.
func (k BinOpKind) InplaceOpcode() pycode.Opcode {
	switch k {
	case OpAdd:
		return pycode.INPLACE_ADD
	case OpSub:
		return pycode.INPLACE_SUBTRACT
	case OpMul:
		return pycode.INPLACE_MULTIPLY
	case OpDiv:
		return pycode.INPLACE_DIVIDE
	case OpFloorDiv:
		return pycode.INPLACE_FLOOR_DIVIDE
	case OpMod:
		return pycode.INPLACE_MODULO
	case OpLShift:
		return pycode.INPLACE_LSHIFT
	case OpRShift:
		return pycode.INPLACE_RSHIFT
	case OpBitAnd:
		return pycode.INPLACE_AND
	case OpBitOr:
		return pycode.INPLACE_OR
	case OpBitXor:
		return pycode.INPLACE_XOR
	case OpPow:
		return pycode.BINARY_POWER // no inplace power
	}
	panic("pycompile: unknown BinOpKind")
}

// Name references a variable.
type Name struct {
	pos
	Ident string
}

// NumInt is an integer literal.
type NumInt struct {
	pos
	V int64
}

// NumFloat is a float literal.
type NumFloat struct {
	pos
	V float64
}

// StrLit is a string literal.
type StrLit struct {
	pos
	V string
}

// BoolLit is True/False; NoneLit is None.
type BoolLit struct {
	pos
	V bool
}
type NoneLit struct{ pos }

// BinOp is a binary arithmetic/bitwise operation.
type BinOp struct {
	pos
	Op   BinOpKind
	L, R Expr
}

// UnaryKind identifies a unary operator.
type UnaryKind uint8

// Unary operators.
const (
	UnaryNeg UnaryKind = iota
	UnaryNot
	UnaryPos
)

// UnaryOp is a unary operation.
type UnaryOp struct {
	pos
	Op UnaryKind
	V  Expr
}

// BoolOpKind is and/or.
type BoolOpKind uint8

// Boolean operators.
const (
	BoolAnd BoolOpKind = iota
	BoolOr
)

// BoolOp is a short-circuiting and/or chain.
type BoolOp struct {
	pos
	Op     BoolOpKind
	Values []Expr
}

// Compare is a (possibly chained) comparison.
type Compare struct {
	pos
	Left   Expr
	Ops    []pycode.CmpOp
	Rights []Expr
}

// Call is a function call with positional arguments.
type Call struct {
	pos
	Fn   Expr
	Args []Expr
}

// Subscript is v[index]; Index may be a SliceExpr.
type Subscript struct {
	pos
	V     Expr
	Index Expr
}

// SliceExpr is lo:hi[:step] inside a subscript; components may be nil.
type SliceExpr struct {
	pos
	Lo, Hi, Step Expr
}

// Attribute is v.name.
type Attribute struct {
	pos
	V    Expr
	Name string
}

// ListLit, TupleLit, DictLit are container displays.
type ListLit struct {
	pos
	Elems []Expr
}
type TupleLit struct {
	pos
	Elems []Expr
}
type DictLit struct {
	pos
	Keys   []Expr
	Values []Expr
}

// CondExpr is a conditional expression: body if cond else orelse.
type CondExpr struct {
	pos
	Cond, Body, Orelse Expr
}

func (*Name) expr()      {}
func (*NumInt) expr()    {}
func (*NumFloat) expr()  {}
func (*StrLit) expr()    {}
func (*BoolLit) expr()   {}
func (*NoneLit) expr()   {}
func (*BinOp) expr()     {}
func (*UnaryOp) expr()   {}
func (*BoolOp) expr()    {}
func (*Compare) expr()   {}
func (*Call) expr()      {}
func (*Subscript) expr() {}
func (*SliceExpr) expr() {}
func (*Attribute) expr() {}
func (*ListLit) expr()   {}
func (*TupleLit) expr()  {}
func (*DictLit) expr()   {}
func (*CondExpr) expr()  {}
