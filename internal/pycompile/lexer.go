package pycompile

import (
	"fmt"
	"strings"
)

// TokKind identifies a token class.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokNewline
	TokIndent
	TokDedent
	TokName
	TokKeyword
	TokInt
	TokFloat
	TokStr
	TokOp // operators and punctuation, Text holds the lexeme
)

// Token is one lexical token.
type Token struct {
	Kind  TokKind
	Text  string
	Int   int64
	Float float64
	Line  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "EOF"
	case TokNewline:
		return "NEWLINE"
	case TokIndent:
		return "INDENT"
	case TokDedent:
		return "DEDENT"
	case TokInt:
		return fmt.Sprintf("INT(%d)", t.Int)
	case TokFloat:
		return fmt.Sprintf("FLOAT(%g)", t.Float)
	case TokStr:
		return fmt.Sprintf("STR(%q)", t.Text)
	case TokKeyword:
		return "kw:" + t.Text
	}
	return t.Text
}

var keywords = map[string]bool{
	"def": true, "return": true, "if": true, "elif": true, "else": true,
	"while": true, "for": true, "in": true, "not": true, "and": true,
	"or": true, "break": true, "continue": true, "pass": true,
	"class": true, "global": true, "is": true, "del": true,
	"True": true, "False": true, "None": true, "lambda": true,
	"import": true, "from": true, "try": true, "except": true,
	"finally": true, "raise": true, "with": true, "yield": true,
	"assert": true, "print": false, // print is a builtin name in MiniPy
}

// SyntaxError reports a lexing or parsing failure with position.
type SyntaxError struct {
	File string
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}

// Lexer tokenizes MiniPy source with Python's indentation rules.
type Lexer struct {
	src     string
	file    string
	pos     int
	line    int
	indents []int
	pending []Token // queued INDENT/DEDENT tokens
	paren   int     // bracket nesting depth: newlines are ignored inside
	atBOL   bool    // at beginning of logical line
	done    bool
}

// NewLexer returns a lexer over src.
func NewLexer(file, src string) *Lexer {
	// Normalize line endings and ensure trailing newline.
	src = strings.ReplaceAll(src, "\r\n", "\n")
	if !strings.HasSuffix(src, "\n") {
		src += "\n"
	}
	return &Lexer{src: src, file: file, line: 1, indents: []int{0}, atBOL: true}
}

func (l *Lexer) errf(format string, args ...interface{}) error {
	return &SyntaxError{File: l.file, Line: l.line, Msg: fmt.Sprintf(format, args...)}
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if len(l.pending) > 0 {
		t := l.pending[0]
		l.pending = l.pending[1:]
		return t, nil
	}
	if l.done {
		return Token{Kind: TokEOF, Line: l.line}, nil
	}

	if l.atBOL && l.paren == 0 {
		if tok, emitted, err := l.handleIndent(); err != nil {
			return Token{}, err
		} else if emitted {
			return tok, nil
		}
	}

	// Skip spaces and comments within a line.
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' {
			l.pos++
			continue
		}
		if c == '#' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if c == '\\' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '\n' {
			l.pos += 2
			l.line++
			continue
		}
		break
	}

	if l.pos >= len(l.src) {
		return l.finish()
	}

	c := l.src[l.pos]
	if c == '\n' {
		l.pos++
		ln := l.line
		l.line++
		if l.paren > 0 {
			return l.Next() // implicit continuation inside brackets
		}
		l.atBOL = true
		return Token{Kind: TokNewline, Line: ln}, nil
	}

	if isNameStart(c) {
		start := l.pos
		for l.pos < len(l.src) && isNameCont(l.src[l.pos]) {
			l.pos++
		}
		word := l.src[start:l.pos]
		if keywords[word] {
			return Token{Kind: TokKeyword, Text: word, Line: l.line}, nil
		}
		return Token{Kind: TokName, Text: word, Line: l.line}, nil
	}

	if c >= '0' && c <= '9' || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])) {
		return l.lexNumber()
	}

	if c == '"' || c == '\'' {
		return l.lexString()
	}

	return l.lexOperator()
}

func (l *Lexer) finish() (Token, error) {
	l.done = true
	// Emit NEWLINE then DEDENTs to level 0, then EOF.
	for len(l.indents) > 1 {
		l.indents = l.indents[:len(l.indents)-1]
		l.pending = append(l.pending, Token{Kind: TokDedent, Line: l.line})
	}
	l.pending = append(l.pending, Token{Kind: TokEOF, Line: l.line})
	return Token{Kind: TokNewline, Line: l.line}, nil
}

// handleIndent processes leading whitespace at the start of a logical line
// and queues INDENT/DEDENT tokens.
func (l *Lexer) handleIndent() (Token, bool, error) {
	for {
		// Measure indentation.
		col := 0
		start := l.pos
		for l.pos < len(l.src) {
			switch l.src[l.pos] {
			case ' ':
				col++
				l.pos++
				continue
			case '\t':
				col += 8 - col%8
				l.pos++
				continue
			}
			break
		}
		if l.pos >= len(l.src) {
			l.atBOL = false
			return Token{}, false, nil
		}
		// Blank or comment-only lines don't affect indentation.
		if l.src[l.pos] == '\n' {
			l.pos++
			l.line++
			continue
		}
		if l.src[l.pos] == '#' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		_ = start
		l.atBOL = false
		cur := l.indents[len(l.indents)-1]
		switch {
		case col > cur:
			l.indents = append(l.indents, col)
			return Token{Kind: TokIndent, Line: l.line}, true, nil
		case col < cur:
			var toks []Token
			for len(l.indents) > 1 && l.indents[len(l.indents)-1] > col {
				l.indents = l.indents[:len(l.indents)-1]
				toks = append(toks, Token{Kind: TokDedent, Line: l.line})
			}
			if l.indents[len(l.indents)-1] != col {
				return Token{}, false, l.errf("inconsistent dedent")
			}
			l.pending = append(l.pending, toks[1:]...)
			return toks[0], true, nil
		}
		return Token{}, false, nil
	}
}

func (l *Lexer) lexNumber() (Token, error) {
	start := l.pos
	ln := l.line
	isFloat := false
	// Hex literal.
	if l.src[l.pos] == '0' && l.pos+1 < len(l.src) && (l.src[l.pos+1] == 'x' || l.src[l.pos+1] == 'X') {
		l.pos += 2
		v := int64(0)
		digits := 0
		for l.pos < len(l.src) {
			c := l.src[l.pos]
			var d int64
			switch {
			case c >= '0' && c <= '9':
				d = int64(c - '0')
			case c >= 'a' && c <= 'f':
				d = int64(c-'a') + 10
			case c >= 'A' && c <= 'F':
				d = int64(c-'A') + 10
			default:
				goto hexDone
			}
			v = v*16 + d
			digits++
			l.pos++
		}
	hexDone:
		if digits == 0 {
			return Token{}, l.errf("malformed hex literal")
		}
		return Token{Kind: TokInt, Int: v, Line: ln}, nil
	}
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' &&
		!(l.pos+1 < len(l.src) && isNameStart(l.src[l.pos+1])) { // avoid 1..attr (not valid anyway)
		isFloat = true
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		save := l.pos
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.pos++
		}
		if l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			isFloat = true
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		} else {
			l.pos = save
		}
	}
	text := l.src[start:l.pos]
	// py2 long suffix.
	if l.pos < len(l.src) && (l.src[l.pos] == 'L' || l.src[l.pos] == 'l') {
		l.pos++
	}
	if isFloat {
		var f float64
		if _, err := fmt.Sscanf(text, "%g", &f); err != nil {
			return Token{}, l.errf("malformed float %q", text)
		}
		return Token{Kind: TokFloat, Float: f, Line: ln}, nil
	}
	var v int64
	for i := 0; i < len(text); i++ {
		v = v*10 + int64(text[i]-'0')
	}
	return Token{Kind: TokInt, Int: v, Line: ln}, nil
}

func (l *Lexer) lexString() (Token, error) {
	quote := l.src[l.pos]
	ln := l.line
	l.pos++
	// Triple-quoted strings.
	triple := false
	if l.pos+1 < len(l.src) && l.src[l.pos] == quote && l.src[l.pos+1] == quote {
		triple = true
		l.pos += 2
	}
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			e := l.src[l.pos]
			l.pos++
			switch e {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case '0':
				sb.WriteByte(0)
			case '\\', '\'', '"':
				sb.WriteByte(e)
			case '\n':
				l.line++
			case 'x':
				if l.pos+1 < len(l.src) {
					hi, lo := hexVal(l.src[l.pos]), hexVal(l.src[l.pos+1])
					if hi >= 0 && lo >= 0 {
						sb.WriteByte(byte(hi*16 + lo))
						l.pos += 2
						continue
					}
				}
				return Token{}, l.errf("malformed \\x escape")
			default:
				sb.WriteByte('\\')
				sb.WriteByte(e)
			}
			continue
		}
		if triple {
			if c == quote && l.pos+2 < len(l.src) && l.src[l.pos+1] == quote && l.src[l.pos+2] == quote {
				l.pos += 3
				return Token{Kind: TokStr, Text: sb.String(), Line: ln}, nil
			}
			if c == '\n' {
				l.line++
			}
			sb.WriteByte(c)
			l.pos++
			continue
		}
		if c == quote {
			l.pos++
			return Token{Kind: TokStr, Text: sb.String(), Line: ln}, nil
		}
		if c == '\n' {
			return Token{}, l.errf("unterminated string")
		}
		sb.WriteByte(c)
		l.pos++
	}
	return Token{}, l.errf("unterminated string")
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}

var twoCharOps = []string{
	"**", "//", "<<", ">>", "<=", ">=", "==", "!=", "+=", "-=", "*=", "/=",
	"%=", "&=", "|=", "^=",
}
var threeCharOps = []string{"**=", "//=", "<<=", ">>="}

func (l *Lexer) lexOperator() (Token, error) {
	ln := l.line
	rest := l.src[l.pos:]
	for _, op := range threeCharOps {
		if strings.HasPrefix(rest, op) {
			l.pos += 3
			return Token{Kind: TokOp, Text: op, Line: ln}, nil
		}
	}
	for _, op := range twoCharOps {
		if strings.HasPrefix(rest, op) {
			l.pos += 2
			return Token{Kind: TokOp, Text: op, Line: ln}, nil
		}
	}
	c := l.src[l.pos]
	switch c {
	case '(', '[', '{':
		l.paren++
	case ')', ']', '}':
		if l.paren > 0 {
			l.paren--
		}
	}
	switch c {
	case '+', '-', '*', '/', '%', '<', '>', '=', '(', ')', '[', ']',
		'{', '}', ',', ':', '.', '&', '|', '^', '~', ';':
		l.pos++
		return Token{Kind: TokOp, Text: string(c), Line: ln}, nil
	}
	return Token{}, l.errf("unexpected character %q", c)
}

func isDigit(c byte) bool     { return c >= '0' && c <= '9' }
func isNameStart(c byte) bool { return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' }
func isNameCont(c byte) bool  { return isNameStart(c) || isDigit(c) }

// Tokenize returns all tokens of src, for tests and debugging.
func Tokenize(file, src string) ([]Token, error) {
	lx := NewLexer(file, src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
